//===- jvm/Policy.cpp -----------------------------------------------------===//

#include "jvm/Policy.h"

using namespace classfuzz;

static JvmPolicy hotSpotBase() {
  JvmPolicy P;
  P.VendorId = "hotspot";
  // HotSpot: eager whole-class verification; treats non-static <clinit>
  // as an ordinary method (Problem 1); checks throws-clause class
  // accessibility (Problem 3); misses unsafe reference parameter casts
  // (Problem 2).
  P.StrictClinitStatic = false;
  P.Verification = CheckMode::Eager;
  P.RequireCode = CheckMode::Eager;
  P.CheckConcreteAbstractMethod = CheckMode::Lazy;
  P.CheckUninitializedMerge = false;
  P.StrictInvokeArgTypes = false;
  P.CheckThrowsAccessibility = true;
  return P;
}

JvmPolicy classfuzz::makeHotSpot7Policy() {
  JvmPolicy P = hotSpotBase();
  P.Name = "HotSpot for Java 7";
  P.JavaVersion = "1.7.0";
  P.MaxClassFileMajor = 51;
  P.RuntimeLib = "jre7";
  // Pre-JDK8 HotSpot releases did not yet reject final superclasses as
  // aggressively (the sun.beans EnumEditor case surfaced with JRE8).
  P.CheckFinalSuperclass = true;
  return P;
}

JvmPolicy classfuzz::makeHotSpot8Policy() {
  JvmPolicy P = hotSpotBase();
  P.Name = "HotSpot for Java 8";
  P.JavaVersion = "1.8.0";
  P.MaxClassFileMajor = 52;
  P.RuntimeLib = "jre8";
  return P;
}

JvmPolicy classfuzz::makeHotSpot9Policy() {
  JvmPolicy P = hotSpotBase();
  P.Name = "HotSpot for Java 9";
  P.JavaVersion = "1.9.0-internal";
  P.MaxClassFileMajor = 53;
  P.RuntimeLib = "jre9";
  // JDK 9 tightened duplicate-member and flag-consistency checking.
  P.CheckClassFlagConsistency = true;
  P.CheckMemberFlagConsistency = true;
  return P;
}

JvmPolicy classfuzz::makeJ9Policy() {
  JvmPolicy P;
  P.Name = "J9 for IBM SDK8";
  P.VendorId = "j9";
  P.JavaVersion = "1.8.0";
  P.MaxClassFileMajor = 52;
  P.RuntimeLib = "jre8";
  // J9: strict eager format checking -- rejects non-static <clinit>
  // ("no Code attribute specified", Problem 1) and abstract methods in
  // concrete classes at load time -- but verifies a method's bytecode
  // only when it is first invoked (Problem 2 mailing-list finding).
  P.StrictClinitStatic = true;
  P.RequireCode = CheckMode::Eager;
  P.CheckConcreteAbstractMethod = CheckMode::Eager;
  P.Verification = CheckMode::Lazy;
  P.StructuralVerifyOnLink = true;
  P.StrictPrimitiveMerge = true;
  P.CheckUninitializedMerge = false;
  P.StrictInvokeArgTypes = false;
  P.CheckThrowsAccessibility = false;
  return P;
}

JvmPolicy classfuzz::makeGijPolicy() {
  JvmPolicy P;
  P.Name = "GIJ 5.1.0";
  P.VendorId = "gij";
  P.JavaVersion = "1.5.0";
  // GIJ conforms to Java 1.5 but happens to process version-51 classes
  // (§3.3 Problem 4), so the loader accepts major <= 51.
  P.MaxClassFileMajor = 51;
  P.RuntimeLib = "jre5";
  // The most lenient implementation of the five (Problem 4): accepts
  // illegal inheritance for interfaces, non-public interface members,
  // malformed <init>, duplicate fields, interface main methods, and a
  // non-static main; its verifier is eager and *stricter* on type merges
  // and unsafe parameter casts than HotSpot (Problem 2).
  P.StrictClinitStatic = false;
  P.RequireCode = CheckMode::Lazy;
  P.CheckInitShape = false;
  P.CheckDuplicateFields = false;
  P.CheckDuplicateMethods = true;
  P.CheckInterfaceSuper = false;
  P.CheckInterfaceMemberFlags = false;
  P.CheckClassFlagConsistency = false;
  P.CheckMemberFlagConsistency = false;
  P.CheckDescriptors = false;
  P.CheckConcreteAbstractMethod = CheckMode::Off;
  P.Verification = CheckMode::Eager;
  P.CheckFinalSuperclass = false;
  P.CheckUninitializedMerge = true;
  P.StrictInvokeArgTypes = true;
  P.CheckThrowsAccessibility = false;
  P.CheckHierarchyKinds = false;
  P.RequireStaticMain = false;
  P.AllowInterfaceMain = true;
  P.CheckMemberAccess = false;
  return P;
}

std::vector<JvmPolicy> classfuzz::allJvmPolicies() {
  return {makeHotSpot7Policy(), makeHotSpot8Policy(), makeHotSpot9Policy(),
          makeJ9Policy(), makeGijPolicy()};
}

JvmPolicy classfuzz::referenceJvmPolicy() { return makeHotSpot9Policy(); }
