//===- jvm/ExecProbes.h - Shared probe sites of the execution tiers ------===//
//
// Part of classfuzz-cpp (PLDI 2016 classfuzz reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Coverage probe identities for the execution loop, shared verbatim by
/// every ExecTier. Probe ids are (file id << 16 | site); the execution
/// loop's sites are *named constants* instead of __LINE__ so that the
/// switch, threaded, and baseline tiers emit bit-identical tracefiles
/// for the same run -- the cross-tier equivalence suite and the
/// δ-diversity tuples both depend on that. Sites live in 0x4000..0x40FF,
/// disjoint from real line numbers (< 0x2000 in practice), from the
/// per-opcode dispatch space (0x8000 | opcode), and from Vm.cpp's abort
/// census space (0x4000 in file 3, not file 4).
///
//===----------------------------------------------------------------------===//

#ifndef CLASSFUZZ_JVM_EXECPROBES_H
#define CLASSFUZZ_JVM_EXECPROBES_H

#include <cstdint>

namespace classfuzz {
namespace exec_probes {

/// The interpreter's CF_COV_FILE id (4 = Interp; see jvm/README).
constexpr uint32_t InterpFileId = 4;

/// Named sites of the execution loop, identical across tiers.
enum Site : uint32_t {
  InvokeEntry = 0x4001,         ///< Statement: method invocation started.
  DepthExceeded = 0x4002,       ///< Branch: call depth limit.
  MissingCode = 0x4003,         ///< Branch: invoked method without Code.
  MalformedBytecode = 0x4004,   ///< Branch: decoder rejected the method.
  BudgetExhausted = 0x4005,     ///< Branch: step budget hit zero.
  FellOffCode = 0x4006,         ///< Branch: pc left the decoded stream.
  FieldMissing = 0x4007,        ///< Branch: get/putstatic resolution failed.
  FieldStaticMismatch = 0x4008, ///< Branch: static-ness of resolved field.
  MethodMissing = 0x4009,       ///< Branch: invoke resolution failed.
  MethodStaticMismatch = 0x400A, ///< Branch: static-ness of resolved method.
};

constexpr uint32_t id(Site S) { return (InterpFileId << 16) | S; }

/// The per-opcode dispatch probe (the statement-coverage analog of
/// bytecodeInterpreter.cpp's case labels), identical across tiers.
constexpr uint32_t opcodeId(uint8_t Op) {
  return (InterpFileId << 16) | 0x8000u | Op;
}

} // namespace exec_probes
} // namespace classfuzz

#endif // CLASSFUZZ_JVM_EXECPROBES_H
