//===- jvm/JvmTypes.cpp ---------------------------------------------------===//

#include "jvm/JvmTypes.h"

using namespace classfuzz;

const char *classfuzz::phaseName(JvmPhase Phase) {
  switch (Phase) {
  case JvmPhase::Loading:
    return "loading";
  case JvmPhase::Linking:
    return "linking";
  case JvmPhase::Initialization:
    return "initialization";
  case JvmPhase::Execution:
    return "execution";
  case JvmPhase::Completed:
    return "completed";
  }
  return "?";
}

const char *classfuzz::errorKindName(JvmErrorKind Kind) {
  switch (Kind) {
  case JvmErrorKind::None:
    return "None";
  case JvmErrorKind::ClassFormatError:
    return "ClassFormatError";
  case JvmErrorKind::UnsupportedClassVersionError:
    return "UnsupportedClassVersionError";
  case JvmErrorKind::NoClassDefFoundError:
    return "NoClassDefFoundError";
  case JvmErrorKind::ClassCircularityError:
    return "ClassCircularityError";
  case JvmErrorKind::VerifyError:
    return "VerifyError";
  case JvmErrorKind::IncompatibleClassChangeError:
    return "IncompatibleClassChangeError";
  case JvmErrorKind::AbstractMethodError:
    return "AbstractMethodError";
  case JvmErrorKind::IllegalAccessError:
    return "IllegalAccessError";
  case JvmErrorKind::InstantiationError:
    return "InstantiationError";
  case JvmErrorKind::NoSuchFieldError:
    return "NoSuchFieldError";
  case JvmErrorKind::NoSuchMethodError:
    return "NoSuchMethodError";
  case JvmErrorKind::UnsatisfiedLinkError:
    return "UnsatisfiedLinkError";
  case JvmErrorKind::ExceptionInInitializerError:
    return "ExceptionInInitializerError";
  case JvmErrorKind::MainMethodNotFound:
    return "MainMethodNotFound";
  case JvmErrorKind::NullPointerException:
    return "NullPointerException";
  case JvmErrorKind::ArithmeticException:
    return "ArithmeticException";
  case JvmErrorKind::ClassCastException:
    return "ClassCastException";
  case JvmErrorKind::ArrayIndexOutOfBoundsException:
    return "ArrayIndexOutOfBoundsException";
  case JvmErrorKind::NegativeArraySizeException:
    return "NegativeArraySizeException";
  case JvmErrorKind::StackOverflowError:
    return "StackOverflowError";
  case JvmErrorKind::OutOfMemoryError:
    return "OutOfMemoryError";
  case JvmErrorKind::UserException:
    return "UserException";
  case JvmErrorKind::InternalError:
    return "InternalError";
  }
  return "?";
}

std::string JvmResult::toString() const {
  if (Invoked)
    return "ok";
  std::string Out = errorKindName(Error);
  Out += " (";
  Out += phaseName(Phase);
  Out += ")";
  if (!Message.empty()) {
    Out += ": ";
    Out += Message;
  }
  return Out;
}
