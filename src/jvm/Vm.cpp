//===- jvm/Vm.cpp - Startup pipeline: load, link, initialize, invoke -----===//

#include "jvm/Vm.h"

#include "classfile/ClassReader.h"
#include "classfile/Descriptor.h"
#include "coverage/Probes.h"
#include "jvm/ExecEngine.h"
#include "jvm/FormatChecker.h"
#include "jvm/Verifier.h"
#include "telemetry/Telemetry.h"

CF_COV_FILE(3)

using namespace classfuzz;

Vm::Vm(const JvmPolicy &Policy, const ClassPath &Env, CoverageRecorder *Cov)
    : Policy(Policy), Env(Env), Cov(Cov) {
  StepsRemaining = Policy.MaxInterpSteps;
  Engine = makeExecEngine(*this, Policy.Tier);
}

bool Vm::invoke(LoadedClass &LC, const MethodInfo &M, std::vector<Value> Args,
                Value &Ret) {
  return Engine->invoke(LC, M, std::move(Args), Ret);
}

Vm::~Vm() {
  // Per-run resource telemetry, recorded at teardown so every exit path
  // (normal completion and aborts alike) is covered. Observation only;
  // worker threads record concurrently through relaxed atomics.
  if (!telemetry::enabled())
    return;
  static telemetry::Counter &Runs = telemetry::metrics().counter("jvm.instances");
  static telemetry::Counter &Steps =
      telemetry::metrics().counter("jvm.interp_steps");
  static telemetry::Gauge &HeapHighWater =
      telemetry::metrics().gauge("jvm.heap.high_water");
  Runs.inc();
  Steps.inc(Policy.MaxInterpSteps - StepsRemaining);
  HeapHighWater.recordMax(static_cast<int64_t>(Heap.size()));
}

namespace {

constexpr size_t NumPhases = static_cast<size_t>(JvmPhase::Completed) + 1;
constexpr size_t NumErrorKinds =
    static_cast<size_t>(JvmErrorKind::InternalError) + 1;

/// Maps an error kind to the canonical startup phase it belongs to
/// (Table 1). The paper's 0..4 encoding classifies by error type, so a
/// lazily-thrown VerifyError (J9) still counts as a linking rejection.
JvmPhase canonicalPhase(JvmErrorKind Kind, JvmPhase Current) {
  switch (Kind) {
  case JvmErrorKind::ClassFormatError:
  case JvmErrorKind::UnsupportedClassVersionError:
  case JvmErrorKind::ClassCircularityError:
    return JvmPhase::Loading;
  case JvmErrorKind::NoClassDefFoundError:
    // Listed under both loading and initializing in Table 1: keep the
    // phase it actually occurred in, but never later than execution.
    return Current;
  case JvmErrorKind::VerifyError:
  case JvmErrorKind::IncompatibleClassChangeError:
  case JvmErrorKind::AbstractMethodError:
  case JvmErrorKind::IllegalAccessError:
  case JvmErrorKind::InstantiationError:
  case JvmErrorKind::NoSuchFieldError:
  case JvmErrorKind::NoSuchMethodError:
  case JvmErrorKind::UnsatisfiedLinkError:
    return JvmPhase::Linking;
  case JvmErrorKind::ExceptionInInitializerError:
    return JvmPhase::Initialization;
  default:
    return Current;
  }
}

/// Default value for a static field slot.
Value defaultValueFor(const std::string &Descriptor) {
  JType T;
  if (!parseFieldDescriptor(Descriptor, T) || T.isReferenceLike())
    return Value::null();
  switch (T.Kind) {
  case TypeKind::Long:
    return Value::makeLong(0);
  case TypeKind::Float:
    return Value::makeFloat(0);
  case TypeKind::Double:
    return Value::makeDouble(0);
  default:
    return Value::makeInt(0);
  }
}

std::string packageOf(const std::string &InternalName) {
  size_t Slash = InternalName.rfind('/');
  return Slash == std::string::npos ? std::string()
                                    : InternalName.substr(0, Slash);
}

} // namespace

void Vm::abort(JvmPhase Phase, JvmErrorKind Kind, std::string Message) {
  if (Aborted)
    return;
  // Error-reporting probe: which error path of the reference JVM fired
  // (errors funnel through shared reporting code in real VMs too).
  covStmt(Cov, (CovFileId << 16) | 0x4000u |
                   static_cast<uint32_t>(Kind) << 3 |
                   static_cast<uint32_t>(Phase));
  Aborted = true;
  Result.Invoked = false;
  Result.Phase = canonicalPhase(Kind, Phase);
  Result.Error = Kind;
  Result.Message = std::move(Message);

  // Abort census keyed (canonical phase, error kind) -- the Table 1 cell
  // this rejection lands in. One relaxed increment when enabled.
  if (telemetry::enabled()) {
    static telemetry::CounterGrid &Aborts = telemetry::metrics().grid(
        "jvm.aborts", NumPhases, NumErrorKinds,
        [](size_t Row) {
          return std::string(phaseName(static_cast<JvmPhase>(Row)));
        },
        [](size_t Col) {
          return std::string(errorKindName(static_cast<JvmErrorKind>(Col)));
        });
    Aborts.inc(static_cast<size_t>(Result.Phase),
               static_cast<size_t>(Result.Error));
  }
}

const ClassFile *Vm::lookupClassFile(const std::string &Name) {
  auto LoadedIt = Classes.find(Name);
  if (LoadedIt != Classes.end())
    return &LoadedIt->second->CF;
  auto CacheIt = ParsedCache.find(Name);
  if (CacheIt != ParsedCache.end())
    return CacheIt->second ? &*CacheIt->second : nullptr;
  const Bytes *Data = Env.lookup(Name);
  if (!Data) {
    ParsedCache.emplace(Name, std::nullopt);
    return nullptr;
  }
  auto Parsed = parseClassFile(*Data);
  if (!Parsed) {
    ParsedCache.emplace(Name, std::nullopt);
    return nullptr;
  }
  auto [It, Inserted] = ParsedCache.emplace(Name, Parsed.take());
  (void)Inserted;
  return &*It->second;
}

Vm::LoadedClass *Vm::loadClass(const std::string &Name) {
  COV_STMT(Cov);
  auto It = Classes.find(Name);
  if (It != Classes.end())
    return It->second.get();

  if (COV_BRANCH(Cov, LoadingInProgress.count(Name))) {
    abort(JvmPhase::Loading, JvmErrorKind::ClassCircularityError, Name);
    return nullptr;
  }

  const Bytes *Data = Env.lookup(Name);
  if (COV_BRANCH(Cov, !Data)) {
    abort(CurrentPhase, JvmErrorKind::NoClassDefFoundError, Name);
    return nullptr;
  }

  auto Parsed = parseClassFile(*Data);
  if (COV_BRANCH(Cov, !Parsed.ok())) {
    abort(JvmPhase::Loading, JvmErrorKind::ClassFormatError, Parsed.error());
    return nullptr;
  }
  ClassFile CF = Parsed.take();

  if (COV_BRANCH(Cov, CF.ThisClass != Name)) {
    abort(JvmPhase::Loading, JvmErrorKind::NoClassDefFoundError,
          Name + " (wrong name: " + CF.ThisClass + ")");
    return nullptr;
  }

  // Parser-path probes: which cases of the classfile parser ran for
  // this class (constant-pool tag cases, flag-bit handling, member-count
  // loop trip buckets) -- the statement-coverage analog of HotSpot's
  // classFileParser.cpp.
  if (Cov) {
    for (uint16_t I = 1; I < CF.CP.count(); ++I) {
      CpTag Tag = CF.CP.at(I).Tag;
      if (Tag != CpTag::Invalid)
        covStmt(Cov, (CovFileId << 16) | 0xE000u |
                         static_cast<uint32_t>(Tag));
    }
    for (uint32_t Bit = 0; Bit != 16; ++Bit)
      if (CF.AccessFlags & (1u << Bit))
        covStmt(Cov, (CovFileId << 16) | 0xE100u | Bit);
    covStmt(Cov, (CovFileId << 16) | 0xE200u |
                     std::min<uint32_t>(
                         static_cast<uint32_t>(CF.Methods.size()), 15));
    covStmt(Cov, (CovFileId << 16) | 0xE300u |
                     std::min<uint32_t>(
                         static_cast<uint32_t>(CF.Fields.size()), 15));
    covStmt(Cov, (CovFileId << 16) | 0xE400u |
                     std::min<uint32_t>(
                         static_cast<uint32_t>(CF.Interfaces.size()), 7));
    for (const MethodInfo &M : CF.Methods) {
      for (uint32_t Bit = 0; Bit != 16; ++Bit)
        if (M.AccessFlags & (1u << Bit))
          covStmt(Cov, (CovFileId << 16) | 0xE500u | Bit);
      covBranch(Cov, (CovFileId << 16) | 0xE600u, M.Code.has_value());
      covBranch(Cov, (CovFileId << 16) | 0xE601u, !M.Exceptions.empty());
    }
    for (const FieldInfo &F : CF.Fields)
      for (uint32_t Bit = 0; Bit != 16; ++Bit)
        if (F.AccessFlags & (1u << Bit))
          covStmt(Cov, (CovFileId << 16) | 0xE700u | Bit);
  }

  if (auto Failure = checkClassFormat(CF, Policy, Cov)) {
    abort(JvmPhase::Loading, Failure->Kind, Failure->Message);
    return nullptr;
  }

  // Load the supertypes (with circularity detection).
  LoadingInProgress.insert(Name);
  if (!CF.SuperClass.empty() && !loadClass(CF.SuperClass)) {
    LoadingInProgress.erase(Name);
    return nullptr;
  }
  for (const std::string &Iface : CF.Interfaces) {
    if (!loadClass(Iface)) {
      LoadingInProgress.erase(Name);
      return nullptr;
    }
  }
  LoadingInProgress.erase(Name);

  auto LC = std::make_unique<LoadedClass>();
  LC->CF = std::move(CF);
  // Prepare static field slots (JVMS "preparation", done here for
  // simplicity; observable behavior is identical). ConstantValue
  // attributes initialize their slot without running <clinit>.
  for (const FieldInfo &F : LC->CF.Fields) {
    if (!F.isStatic())
      continue;
    Value V = defaultValueFor(F.Descriptor);
    if (F.ConstantValue) {
      COV_STMT(Cov);
      switch (F.ConstantValue->Kind) {
      case 'i':
        V = Value::makeInt(static_cast<int32_t>(F.ConstantValue->IntValue));
        break;
      case 'j':
        V = Value::makeLong(F.ConstantValue->IntValue);
        break;
      case 'f':
        V = Value::makeFloat(F.ConstantValue->FpValue);
        break;
      case 'd':
        V = Value::makeDouble(F.ConstantValue->FpValue);
        break;
      default:
        V = Value::makeRef(allocString(F.ConstantValue->StrValue));
        break;
      }
    }
    LC->Statics[F.Name + ":" + F.Descriptor] = V;
  }

  LoadedClass *Out = LC.get();
  Classes[Name] = std::move(LC);
  return Out;
}

bool Vm::verifyWholeClass(LoadedClass &LC) {
  COV_STMT(Cov);
  if (LC.Verified)
    return true;
  ClassLookupFn Lookup = [this](const std::string &N) {
    return lookupClassFile(N);
  };
  for (const MethodInfo &M : LC.CF.Methods) {
    if (auto Failure = verifyMethod(LC.CF, M, Policy, Lookup, Cov)) {
      abort(JvmPhase::Linking, Failure->Kind, Failure->Message);
      return false;
    }
    LC.VerifiedMethods.insert(M.Name + M.Descriptor);
  }
  LC.Verified = true;
  return true;
}

bool Vm::linkClass(LoadedClass &LC) {
  COV_STMT(Cov);
  if (LC.State != ClassState::Loaded)
    return true;

  // Link supers first.
  if (!LC.CF.SuperClass.empty()) {
    auto It = Classes.find(LC.CF.SuperClass);
    if (It != Classes.end() && !linkClass(*It->second))
      return false;
  }
  for (const std::string &Iface : LC.CF.Interfaces) {
    auto It = Classes.find(Iface);
    if (It != Classes.end() && !linkClass(*It->second))
      return false;
  }

  const ClassFile *Super =
      LC.CF.SuperClass.empty() ? nullptr : lookupClassFile(LC.CF.SuperClass);

  if (Policy.CheckHierarchyKinds && Super) {
    if (COV_BRANCH(Cov, !LC.CF.isInterface() &&
                            (Super->AccessFlags & ACC_INTERFACE))) {
      abort(JvmPhase::Linking, JvmErrorKind::IncompatibleClassChangeError,
            "class " + LC.CF.ThisClass + " has interface " +
                LC.CF.SuperClass + " as super class");
      return false;
    }
    for (const std::string &IfaceName : LC.CF.Interfaces) {
      const ClassFile *Iface = lookupClassFile(IfaceName);
      if (COV_BRANCH(Cov, Iface && !(Iface->AccessFlags & ACC_INTERFACE))) {
        abort(JvmPhase::Linking, JvmErrorKind::IncompatibleClassChangeError,
              "class " + LC.CF.ThisClass + " implements non-interface " +
                  IfaceName);
        return false;
      }
    }
  }

  if (Policy.CheckFinalSuperclass && Super &&
      COV_BRANCH(Cov, Super->AccessFlags & ACC_FINAL)) {
    abort(JvmPhase::Linking, JvmErrorKind::VerifyError,
          "Cannot inherit from final class " + LC.CF.SuperClass);
    return false;
  }

  // Problem 3: accessibility of classes named in throws clauses.
  if (Policy.CheckThrowsAccessibility) {
    for (const MethodInfo &M : LC.CF.Methods) {
      for (const std::string &ExcName : M.Exceptions) {
        const ClassFile *Exc = lookupClassFile(ExcName);
        if (!Exc)
          continue; // Unresolvable: deferred (lazy resolution).
        bool SamePackage =
            packageOf(ExcName) == packageOf(LC.CF.ThisClass);
        if (COV_BRANCH(Cov, !(Exc->AccessFlags & ACC_PUBLIC) &&
                                !SamePackage)) {
          abort(JvmPhase::Linking, JvmErrorKind::IllegalAccessError,
                "class " + LC.CF.ThisClass + " cannot access class " +
                    ExcName + " declared in throws clause");
          return false;
        }
      }
    }
  }

  if (Policy.Verification == CheckMode::Eager && !verifyWholeClass(LC))
    return false;
  if (Policy.Verification == CheckMode::Lazy &&
      Policy.StructuralVerifyOnLink) {
    for (const MethodInfo &M : LC.CF.Methods) {
      if (auto Failure = verifyMethodStructural(LC.CF, M, Policy, Cov)) {
        abort(JvmPhase::Linking, Failure->Kind, Failure->Message);
        return false;
      }
    }
  }

  LC.State = ClassState::Linked;
  return true;
}

bool Vm::ensureInvocable(LoadedClass &LC, const MethodInfo &M) {
  COV_STMT(Cov);
  if (auto Failure = checkMethodInvocable(LC.CF, M, Policy, Cov)) {
    abort(CurrentPhase, Failure->Kind, Failure->Message);
    return false;
  }
  if (Policy.Verification == CheckMode::Lazy &&
      !LC.VerifiedMethods.count(M.Name + M.Descriptor)) {
    ClassLookupFn Lookup = [this](const std::string &N) {
      return lookupClassFile(N);
    };
    if (auto Failure = verifyMethod(LC.CF, M, Policy, Lookup, Cov)) {
      abort(CurrentPhase, Failure->Kind, Failure->Message);
      return false;
    }
    LC.VerifiedMethods.insert(M.Name + M.Descriptor);
  }
  return true;
}

bool Vm::initializeClass(LoadedClass &LC) {
  COV_STMT(Cov);
  if (LC.State == ClassState::Initialized ||
      LC.State == ClassState::Initializing)
    return true;
  if (LC.State == ClassState::Loaded && !linkClass(LC))
    return false;

  LC.State = ClassState::Initializing;

  // Initialize the superclass chain first (JVMS §5.5).
  if (!LC.CF.SuperClass.empty()) {
    auto It = Classes.find(LC.CF.SuperClass);
    if (It != Classes.end() && !initializeClass(*It->second)) {
      LC.State = ClassState::Linked;
      return false;
    }
  }

  // Run the class initializer, if this policy recognizes one.
  for (const MethodInfo &M : LC.CF.Methods) {
    if (!isInitializationMethod(M, Policy))
      continue;
    if (!M.Code)
      break; // Strict policies rejected this at format check already.
    if (!ensureInvocable(LC, M))
      return false;
    Value Ret;
    if (!invoke(LC, M, {}, Ret)) {
      if (PendingException != 0) {
        HeapObject *Exc = deref(PendingException);
        std::string What = Exc ? Exc->ClassName : "exception";
        PendingException = 0;
        abort(JvmPhase::Initialization,
              JvmErrorKind::ExceptionInInitializerError,
              "initialization of " + LC.CF.ThisClass + " threw " + What);
      }
      return false;
    }
    break;
  }

  LC.State = ClassState::Initialized;
  return true;
}

JvmResult Vm::run(const std::string &MainClassName) {
  COV_STMT(Cov);
  Result = JvmResult();
  Aborted = false;
  CurrentPhase = JvmPhase::Loading;

  LoadedClass *LC = loadClass(MainClassName);
  if (!LC)
    return Result;

  CurrentPhase = JvmPhase::Linking;
  if (!linkClass(*LC))
    return Result;

  CurrentPhase = JvmPhase::Initialization;
  if (!initializeClass(*LC))
    return Result;

  CurrentPhase = JvmPhase::Execution;

  if (COV_BRANCH(Cov, LC->CF.isInterface() && !Policy.AllowInterfaceMain)) {
    abort(JvmPhase::Execution, JvmErrorKind::MainMethodNotFound,
          "interface " + MainClassName + " cannot be executed");
    return Result;
  }

  const MethodInfo *Main =
      LC->CF.findMethod("main", "([Ljava/lang/String;)V");
  if (COV_BRANCH(Cov, !Main)) {
    abort(JvmPhase::Execution, JvmErrorKind::MainMethodNotFound,
          "main method not found in class " + MainClassName);
    return Result;
  }
  if (Policy.RequireStaticMain &&
      COV_BRANCH(Cov, !Main->isStatic() ||
                          !(Main->AccessFlags & ACC_PUBLIC))) {
    abort(JvmPhase::Execution, JvmErrorKind::MainMethodNotFound,
          "main method is not public static");
    return Result;
  }

  if (!ensureInvocable(*LC, *Main))
    return Result;

  // java <class>: argument is an empty String[].
  int32_t ArgsRef = allocArray("java/lang/String", 0);
  if (Aborted)
    return Result;

  Value Ret;
  std::vector<Value> Args;
  if (Main->isStatic()) {
    Args.push_back(Value::makeRef(ArgsRef));
  } else {
    // Lenient policies (GIJ) instantiate the class and call main on it.
    int32_t Receiver = allocObject(MainClassName);
    Args.push_back(Value::makeRef(Receiver));
    Args.push_back(Value::makeRef(ArgsRef));
  }

  if (!invoke(*LC, *Main, std::move(Args), Ret)) {
    if (PendingException != 0) {
      HeapObject *Exc = deref(PendingException);
      std::string ClassName = Exc ? Exc->ClassName : "java/lang/Throwable";
      PendingException = 0;
      JvmErrorKind Kind = JvmErrorKind::UserException;
      if (ClassName == "java/lang/NullPointerException")
        Kind = JvmErrorKind::NullPointerException;
      else if (ClassName == "java/lang/ArithmeticException")
        Kind = JvmErrorKind::ArithmeticException;
      else if (ClassName == "java/lang/ClassCastException")
        Kind = JvmErrorKind::ClassCastException;
      else if (ClassName == "java/lang/ArrayIndexOutOfBoundsException")
        Kind = JvmErrorKind::ArrayIndexOutOfBoundsException;
      else if (ClassName == "java/lang/NegativeArraySizeException")
        Kind = JvmErrorKind::NegativeArraySizeException;
      abort(JvmPhase::Execution, Kind,
            "uncaught exception " + ClassName + " in main");
    }
    return Result;
  }

  Result.Invoked = true;
  Result.Phase = JvmPhase::Completed;
  return Result;
}
