//===- jvm/Value.h - Runtime values and heap objects ---------------------===//
//
// Part of classfuzz-cpp (PLDI 2016 classfuzz reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The interpreter's value model: a tagged scalar (int/long/float/double/
/// reference) and a simple heap object (class instance, string, or array).
/// References are 1-based indices into the Vm's heap; 0 is null.
///
/// Wide types (long/double) occupy ONE interpreter stack slot (the
/// verifier models the spec's two-slot discipline; the interpreter's
/// pop2/dup handling compensates). Code mixing raw two-slot stack
/// shuffles over wide values beyond pop2 is rejected by the interpreter
/// as unsupported rather than misexecuted.
///
//===----------------------------------------------------------------------===//

#ifndef CLASSFUZZ_JVM_VALUE_H
#define CLASSFUZZ_JVM_VALUE_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace classfuzz {

/// A JVM runtime value.
struct Value {
  enum class Tag : uint8_t { Int, Long, Float, Double, Ref };

  Tag T = Tag::Int;
  int64_t I = 0;  ///< Int/Long payload.
  double D = 0;   ///< Float/Double payload.
  int32_t R = 0;  ///< Ref payload: heap id, 0 = null.

  static Value makeInt(int32_t V) {
    Value Out;
    Out.T = Tag::Int;
    Out.I = V;
    return Out;
  }
  static Value makeLong(int64_t V) {
    Value Out;
    Out.T = Tag::Long;
    Out.I = V;
    return Out;
  }
  static Value makeFloat(double V) {
    Value Out;
    Out.T = Tag::Float;
    Out.D = V;
    return Out;
  }
  static Value makeDouble(double V) {
    Value Out;
    Out.T = Tag::Double;
    Out.D = V;
    return Out;
  }
  static Value makeRef(int32_t HeapId) {
    Value Out;
    Out.T = Tag::Ref;
    Out.R = HeapId;
    return Out;
  }
  static Value null() { return makeRef(0); }

  bool isNull() const { return T == Tag::Ref && R == 0; }
  int32_t asInt() const { return static_cast<int32_t>(I); }
};

/// One heap cell: a plain instance, a string, or an array.
struct HeapObject {
  std::string ClassName; ///< Internal name ("java/lang/String", "[I", ...).
  std::map<std::string, Value> Fields; ///< Keyed "name:descriptor".
  bool IsString = false;
  std::string Str; ///< Payload when IsString.
  bool IsArray = false;
  std::vector<Value> Elems; ///< Payload when IsArray.
};

} // namespace classfuzz

#endif // CLASSFUZZ_JVM_VALUE_H
