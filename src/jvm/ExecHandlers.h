//===- jvm/ExecHandlers.h - Shared op handlers of the fast tiers ---------===//
//
// Part of classfuzz-cpp (PLDI 2016 classfuzz reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The op semantics shared by the threaded and baseline tiers, written
/// once as inline ExecContext methods over the predecoded stream. Each
/// handler is a line-for-line port of the corresponding case of the
/// legacy switch interpreter (Interp.cpp) -- the two fast tiers differ
/// only in how they *dispatch* to these bodies (computed goto vs
/// pre-bound thunk arrays), so they are equivalent by construction; the
/// cross-tier suite then checks both against the switch tier.
///
/// Internal header: include only from ThreadedInterp.cpp and
/// BaselineTier.cpp.
///
//===----------------------------------------------------------------------===//

#ifndef CLASSFUZZ_JVM_EXECHANDLERS_H
#define CLASSFUZZ_JVM_EXECHANDLERS_H

#include "classfile/Opcodes.h"
#include "coverage/Probes.h"
#include "jvm/ExecEngine.h"
#include "jvm/ExecProbes.h"
#include "jvm/Predecode.h"

#include <cstdint>
#include <string>
#include <vector>

namespace classfuzz {

/// What a handler asks the dispatch loop to do next.
enum class Ctl : uint8_t {
  Next,   ///< Continue at ExecContext::NextIndex (set to fall-through
          ///< before dispatch; branch handlers overwrite it).
  Unwind, ///< Re-enter the loop head at the *current* instruction: a
          ///< pending exception (or a fresh abort) gets examined there,
          ///< exactly like the switch interpreter's `continue`.
  Return, ///< Frame is done; ExecContext::Ok carries success.
};

/// Baseline-tier inline caches, one slot per member site. The threaded
/// tier passes nullptr and always takes the slow path (matching the
/// switch interpreter probe-for-probe); the baseline tier caches
/// successful resolutions. Cache hits are trace-safe because tracefiles
/// are sets and a hit only skips probe sites the filling miss already
/// fired with identical ids and directions.
struct InlineCaches {
  struct FieldIC {
    bool Cached = false;
    Vm::LoadedClass *Holder = nullptr;
  };
  struct MethodIC {
    bool Cached = false;
    std::string DispatchClass; ///< Monomorphic key.
    Vm::LoadedClass *Holder = nullptr;
    const MethodInfo *Method = nullptr;
  };
  std::vector<FieldIC> Fields;   ///< Indexed by member-site index.
  std::vector<MethodIC> Methods; ///< Indexed by member-site index.
  JitStats *Stats = nullptr;
};

/// What an engine-specific predecode fetch hands to the shared frame
/// driver: the lowered method plus the tier's inline caches (nullptr for
/// the threaded tier).
struct FetchedMethod {
  const PredecodedMethod *PM = nullptr;
  InlineCaches *IC = nullptr;
};

/// One executing frame over a predecoded method.
struct ExecContext {
  Vm &VM;
  Vm::LoadedClass &LC;
  const MethodInfo &M;
  const PredecodedMethod &PM;
  CoverageRecorder *Cov;
  InlineCaches *IC; ///< nullptr on the threaded tier.

  std::vector<Value> Stack;
  std::vector<Value> Locals;
  uint32_t Index = 0;     ///< Current instruction.
  uint32_t NextIndex = 0; ///< Where Ctl::Next goes.
  Value RetVal;
  bool Ok = false; ///< Frame result, valid once a handler returns Return.

  ExecContext(Vm &VM, Vm::LoadedClass &LC, const MethodInfo &M,
              const PredecodedMethod &PM, InlineCaches *IC)
      : VM(VM), LC(LC), M(M), PM(PM), Cov(VM.Cov), IC(IC) {}

  // --- frame plumbing ------------------------------------------------------

  /// Lays out the argument slots (wide values take two), matching the
  /// switch interpreter's prologue.
  void bindArgs(const std::vector<Value> &Args) {
    size_t ArgSlots = 0;
    for (const Value &V : Args)
      ArgSlots +=
          (V.T == Value::Tag::Long || V.T == Value::Tag::Double) ? 2 : 1;
    Locals.resize(std::max<size_t>(M.Code->MaxLocals, ArgSlots));
    size_t Slot = 0;
    for (const Value &V : Args) {
      Locals[Slot] = V;
      Slot += (V.T == Value::Tag::Long || V.T == Value::Tag::Double) ? 2 : 1;
    }
  }

  Value popv() {
    if (Stack.empty()) {
      VM.abort(VM.CurrentPhase, JvmErrorKind::InternalError,
               "operand stack underflow at runtime");
      return Value();
    }
    Value V = Stack.back();
    Stack.pop_back();
    return V;
  }

  Ctl fail() {
    Ok = false;
    return Ctl::Return;
  }
  Ctl ret(bool Success) {
    Ok = Success;
    return Ctl::Return;
  }
  Ctl branchTo(uint32_t Target) {
    NextIndex = Target;
    return Ctl::Next;
  }

  const PInsn &insn() const { return PM.Insns[Index]; }
  /// Abort flag, readable by the dispatch skins (which are not friends
  /// of Vm themselves).
  bool aborted() const { return VM.Aborted; }

  // --- handlers ------------------------------------------------------------
  // One per Handler token; families take the PInsn for Op/operands.

  Ctl doNop(const PInsn &) { return Ctl::Next; }

  Ctl doAconstNull(const PInsn &) {
    Stack.push_back(Value::null());
    return Ctl::Next;
  }

  Ctl doIPush(const PInsn &I) {
    Stack.push_back(Value::makeInt(I.A));
    return Ctl::Next;
  }

  Ctl doLPush(const PInsn &I) {
    Stack.push_back(Value::makeLong(I.A));
    return Ctl::Next;
  }

  Ctl doFPush(const PInsn &I) {
    Stack.push_back(Value::makeFloat(I.A));
    return Ctl::Next;
  }

  Ctl doDPush(const PInsn &I) {
    Stack.push_back(Value::makeDouble(I.A));
    return Ctl::Next;
  }

  Ctl doLdc(const PInsn &I) {
    uint16_t CpIndex = static_cast<uint16_t>(I.A);
    if (!LC.CF.CP.isValidIndex(CpIndex)) {
      VM.abort(VM.CurrentPhase, JvmErrorKind::VerifyError,
               "ldc of invalid constant pool index");
      return fail();
    }
    const CpEntry &E = LC.CF.CP.at(CpIndex);
    switch (E.Tag) {
    case CpTag::Integer:
      Stack.push_back(Value::makeInt(E.IntValue));
      break;
    case CpTag::Float:
      Stack.push_back(Value::makeFloat(E.FloatValue));
      break;
    case CpTag::Long:
      Stack.push_back(Value::makeLong(E.LongValue));
      break;
    case CpTag::Double:
      Stack.push_back(Value::makeDouble(E.DoubleValue));
      break;
    case CpTag::String: {
      auto S = LC.CF.CP.getUtf8(E.Ref1);
      Stack.push_back(Value::makeRef(VM.allocString(S ? *S : "")));
      break;
    }
    case CpTag::Class:
      Stack.push_back(Value::makeRef(VM.allocObject("java/lang/Class")));
      break;
    default:
      VM.abort(VM.CurrentPhase, JvmErrorKind::VerifyError,
               "ldc of unloadable constant");
      return fail();
    }
    return Ctl::Next;
  }

  Ctl doIinc(const PInsn &I) {
    if (static_cast<size_t>(I.A) < Locals.size())
      Locals[I.A].I += I.B;
    return Ctl::Next;
  }

  Ctl doGoto(const PInsn &I) { return branchTo(I.Target); }

  Ctl doReturn(const PInsn &) { return ret(true); }

  Ctl doVReturn(const PInsn &) {
    RetVal = popv();
    return ret(!VM.Aborted);
  }

  Ctl doAthrow(const PInsn &) {
    Value V = popv();
    if (V.isNull())
      VM.throwBuiltin(JvmErrorKind::NullPointerException,
                      "java/lang/NullPointerException", "athrow of null");
    else
      VM.PendingException = V.R;
    return Ctl::Unwind;
  }

  Ctl doPop(const PInsn &) {
    popv();
    return Ctl::Next;
  }

  Ctl doPop2(const PInsn &) {
    popv();
    if (!Stack.empty() && Stack.back().T != Value::Tag::Long &&
        Stack.back().T != Value::Tag::Double)
      popv();
    return Ctl::Next;
  }

  Ctl doDup(const PInsn &) {
    Value V = popv();
    Stack.push_back(V);
    Stack.push_back(V);
    return Ctl::Next;
  }

  Ctl doDupX1(const PInsn &) {
    Value A = popv(), B = popv();
    Stack.push_back(A);
    Stack.push_back(B);
    Stack.push_back(A);
    return Ctl::Next;
  }

  Ctl doSwap(const PInsn &) {
    Value A = popv(), B = popv();
    Stack.push_back(A);
    Stack.push_back(B);
    return Ctl::Next;
  }

  Ctl doArrayLength(const PInsn &) {
    Value V = popv();
    HeapObject *Arr = VM.deref(V.R);
    if (!Arr) {
      VM.throwBuiltin(JvmErrorKind::NullPointerException,
                      "java/lang/NullPointerException", "arraylength");
      return Ctl::Unwind;
    }
    Stack.push_back(Value::makeInt(static_cast<int32_t>(Arr->Elems.size())));
    return Ctl::Next;
  }

  Ctl doNewArray(const PInsn &) {
    Value Len = popv();
    if (Len.asInt() < 0) {
      VM.throwBuiltin(JvmErrorKind::NegativeArraySizeException,
                      "java/lang/NegativeArraySizeException",
                      std::to_string(Len.asInt()));
      return Ctl::Unwind;
    }
    int32_t Ref = VM.allocObject("[I");
    if (VM.Aborted)
      return fail();
    VM.Heap[Ref - 1].IsArray = true;
    VM.Heap[Ref - 1].Elems.assign(static_cast<size_t>(Len.asInt()),
                                  Value::makeInt(0));
    Stack.push_back(Value::makeRef(Ref));
    return Ctl::Next;
  }

  Ctl doANewArray(const PInsn &I) {
    Value Len = popv();
    const ClassSite &S = PM.ClassSites[I.A];
    if (Len.asInt() < 0) {
      VM.throwBuiltin(JvmErrorKind::NegativeArraySizeException,
                      "java/lang/NegativeArraySizeException",
                      std::to_string(Len.asInt()));
      return Ctl::Unwind;
    }
    int32_t Ref =
        VM.allocArray(S.Ok ? S.Name : "java/lang/Object", Len.asInt());
    if (VM.Aborted)
      return fail();
    Stack.push_back(Value::makeRef(Ref));
    return Ctl::Next;
  }

  Ctl doALoad(const PInsn &) {
    Value Index = popv();
    Value ArrV = popv();
    HeapObject *Arr = VM.deref(ArrV.R);
    if (!Arr) {
      VM.throwBuiltin(JvmErrorKind::NullPointerException,
                      "java/lang/NullPointerException", "array load");
      return Ctl::Unwind;
    }
    int32_t Idx = Index.asInt();
    if (Idx < 0 || static_cast<size_t>(Idx) >= Arr->Elems.size()) {
      VM.throwBuiltin(JvmErrorKind::ArrayIndexOutOfBoundsException,
                      "java/lang/ArrayIndexOutOfBoundsException",
                      std::to_string(Idx));
      return Ctl::Unwind;
    }
    Stack.push_back(Arr->Elems[Idx]);
    return Ctl::Next;
  }

  Ctl doAStore(const PInsn &) {
    Value V = popv();
    Value Index = popv();
    Value ArrV = popv();
    HeapObject *Arr = VM.deref(ArrV.R);
    if (!Arr) {
      VM.throwBuiltin(JvmErrorKind::NullPointerException,
                      "java/lang/NullPointerException", "array store");
      return Ctl::Unwind;
    }
    int32_t Idx = Index.asInt();
    if (Idx < 0 || static_cast<size_t>(Idx) >= Arr->Elems.size()) {
      VM.throwBuiltin(JvmErrorKind::ArrayIndexOutOfBoundsException,
                      "java/lang/ArrayIndexOutOfBoundsException",
                      std::to_string(Idx));
      return Ctl::Unwind;
    }
    Arr->Elems[Idx] = V;
    return Ctl::Next;
  }

  Ctl doNew(const PInsn &I) {
    const ClassSite &S = PM.ClassSites[I.A];
    if (!S.Ok) {
      VM.abort(VM.CurrentPhase, JvmErrorKind::VerifyError,
               "new of invalid class constant");
      return fail();
    }
    Vm::LoadedClass *Target = VM.loadClass(S.Name);
    if (!Target)
      return fail();
    if (!VM.initializeClass(*Target))
      return fail();
    if (Target->CF.isInterface() ||
        (Target->CF.AccessFlags & ACC_ABSTRACT)) {
      VM.abort(VM.CurrentPhase, JvmErrorKind::InstantiationError, S.Name);
      return fail();
    }
    int32_t Ref = VM.allocObject(S.Name);
    if (VM.Aborted)
      return fail();
    Stack.push_back(Value::makeRef(Ref));
    return Ctl::Next;
  }

  Ctl doCheckcast(const PInsn &I) {
    const ClassSite &S = PM.ClassSites[I.A];
    // Resolution happens when the instruction executes (JVMS §5.4.3):
    // a missing class raises NoClassDefFoundError even for null.
    if (S.Ok && !VM.loadClass(S.Name))
      return fail();
    Value V = popv();
    if (!V.isNull() && S.Ok && !VM.refInstanceOf(V.R, S.Name)) {
      VM.throwBuiltin(JvmErrorKind::ClassCastException,
                      "java/lang/ClassCastException",
                      VM.classOfRef(V.R) + " cannot be cast to " + S.Name);
      return Ctl::Unwind;
    }
    Stack.push_back(V);
    return Ctl::Next;
  }

  Ctl doInstanceOf(const PInsn &I) {
    const ClassSite &S = PM.ClassSites[I.A];
    if (S.Ok && !VM.loadClass(S.Name))
      return fail();
    Value V = popv();
    Stack.push_back(Value::makeInt(
        !V.isNull() && S.Ok && VM.refInstanceOf(V.R, S.Name) ? 1 : 0));
    return Ctl::Next;
  }

  Ctl doMonitor(const PInsn &) {
    popv(); // Single-threaded model: monitors are no-ops.
    return Ctl::Next;
  }

  Ctl doStaticField(const PInsn &I, bool IsGet) {
    const MemberSite &S = PM.MemberSites[I.A];
    if (!S.Ok) {
      VM.abort(VM.CurrentPhase, JvmErrorKind::VerifyError, S.Error);
      return fail();
    }
    Vm::LoadedClass *Holder = nullptr;
    InlineCaches::FieldIC *C = IC ? &IC->Fields[I.A] : nullptr;
    if (C && C->Cached) {
      ++IC->Stats->IcHits;
      Holder = C->Holder;
    } else {
      Holder = VM.resolveField(S.Ref.ClassName, S.Ref.Name,
                               S.Ref.Descriptor);
      if (VM.Aborted)
        return fail();
      if (covBranch(Cov, exec_probes::id(exec_probes::FieldMissing),
                    !Holder)) {
        VM.abort(VM.CurrentPhase, JvmErrorKind::NoSuchFieldError,
                 S.Ref.ClassName + "." + S.Ref.Name);
        return fail();
      }
      const FieldInfo *Field = Holder->CF.findField(S.Ref.Name);
      if (covBranch(Cov, exec_probes::id(exec_probes::FieldStaticMismatch),
                    Field && !Field->isStatic())) {
        VM.abort(VM.CurrentPhase,
                 JvmErrorKind::IncompatibleClassChangeError,
                 "expected static field " + S.Ref.Name);
        return fail();
      }
      if (Field &&
          !VM.checkMemberAccess(LC.CF.ThisClass, Holder->CF.ThisClass,
                                Field->AccessFlags, S.Ref.Name))
        return fail();
      if (C) {
        C->Cached = true;
        C->Holder = Holder;
        ++IC->Stats->IcMisses;
      }
    }
    if (!VM.initializeClass(*Holder))
      return fail();
    std::string Key = S.Ref.Name + ":" + S.Ref.Descriptor;
    if (IsGet)
      Stack.push_back(Holder->Statics[Key]);
    else
      Holder->Statics[Key] = popv();
    return Ctl::Next;
  }

  Ctl doInstanceField(const PInsn &I, bool IsGet) {
    const MemberSite &S = PM.MemberSites[I.A];
    if (!S.Ok) {
      VM.abort(VM.CurrentPhase, JvmErrorKind::VerifyError, S.Error);
      return fail();
    }
    Value Stored;
    if (!IsGet)
      Stored = popv();
    Value Receiver = popv();
    HeapObject *Obj = VM.deref(Receiver.R);
    if (!Obj) {
      VM.throwBuiltin(JvmErrorKind::NullPointerException,
                      "java/lang/NullPointerException",
                      "field access on null");
      return Ctl::Unwind;
    }
    std::string Key = S.Ref.Name + ":" + S.Ref.Descriptor;
    if (IsGet) {
      auto FieldIt = Obj->Fields.find(Key);
      Stack.push_back(FieldIt != Obj->Fields.end() ? FieldIt->second
                                                   : Value::null());
    } else {
      Obj->Fields[Key] = Stored;
    }
    return Ctl::Next;
  }

  Ctl doInvoke(const PInsn &I) {
    uint8_t Op = I.Op;
    const MemberSite &S = PM.MemberSites[I.A];
    if (!S.Ok) {
      VM.abort(VM.CurrentPhase, JvmErrorKind::VerifyError, S.Error);
      return fail();
    }
    if (!S.DescOk) {
      VM.abort(VM.CurrentPhase, JvmErrorKind::VerifyError,
               "malformed descriptor at invoke: " + S.Ref.Descriptor);
      return fail();
    }
    const MethodDescriptor &MD = S.Desc;
    // Pop arguments (right to left), then the receiver if any.
    std::vector<Value> CallArgs(MD.Params.size());
    for (size_t K = MD.Params.size(); K-- > 0;)
      CallArgs[K] = popv();
    std::string DispatchClass = S.Ref.ClassName;
    if (Op != OP_invokestatic) {
      Value Receiver = popv();
      if (Receiver.isNull()) {
        VM.throwBuiltin(JvmErrorKind::NullPointerException,
                        "java/lang/NullPointerException",
                        "invoke on null receiver");
        return Ctl::Unwind;
      }
      if (Op == OP_invokevirtual || Op == OP_invokeinterface)
        DispatchClass = VM.classOfRef(Receiver.R);
      if (DispatchClass.size() > 0 && DispatchClass[0] == '[')
        DispatchClass = "java/lang/Object"; // Array methods.
      CallArgs.insert(CallArgs.begin(), Receiver);
    }
    if (VM.Aborted)
      return fail();

    bool WantStatic = Op == OP_invokestatic;
    Vm::LoadedClass *Holder = nullptr;
    const MethodInfo *Callee = nullptr;
    InlineCaches::MethodIC *C = IC ? &IC->Methods[I.A] : nullptr;
    if (C && C->Cached && C->DispatchClass == DispatchClass) {
      // Monomorphic hit: resolution, access, static-ness, and lazy
      // verification were all settled by the filling miss; per-call
      // initialization still runs (it is state-dependent).
      ++IC->Stats->IcHits;
      Holder = C->Holder;
      Callee = C->Method;
      if (WantStatic && !VM.initializeClass(*Holder))
        return fail();
    } else {
      Vm::ResolvedMethod Resolved =
          VM.resolveMethod(DispatchClass, S.Ref.Name, S.Ref.Descriptor);
      if (VM.Aborted)
        return fail();
      if (!Resolved.Method && Op != OP_invokestatic)
        Resolved = VM.resolveMethod(S.Ref.ClassName, S.Ref.Name,
                                    S.Ref.Descriptor);
      if (VM.Aborted)
        return fail();
      if (covBranch(Cov, exec_probes::id(exec_probes::MethodMissing),
                    !Resolved.Method)) {
        VM.abort(VM.CurrentPhase, JvmErrorKind::NoSuchMethodError,
                 S.Ref.ClassName + "." + S.Ref.Name + S.Ref.Descriptor);
        return fail();
      }
      if (covBranch(Cov,
                    exec_probes::id(exec_probes::MethodStaticMismatch),
                    Resolved.Method->isStatic() != WantStatic)) {
        VM.abort(VM.CurrentPhase,
                 JvmErrorKind::IncompatibleClassChangeError,
                 S.Ref.Name + " static-ness mismatch");
        return fail();
      }
      if (!VM.checkMemberAccess(LC.CF.ThisClass,
                                Resolved.Holder->CF.ThisClass,
                                Resolved.Method->AccessFlags, S.Ref.Name))
        return fail();
      if (WantStatic && !VM.initializeClass(*Resolved.Holder))
        return fail();
      if (!VM.ensureInvocable(*Resolved.Holder, *Resolved.Method))
        return fail();
      Holder = Resolved.Holder;
      Callee = Resolved.Method;
      if (C) {
        C->Cached = true;
        C->DispatchClass = DispatchClass;
        C->Holder = Holder;
        C->Method = Callee;
        ++IC->Stats->IcMisses;
      }
    }

    Value CallRet;
    if (!VM.invoke(*Holder, *Callee, std::move(CallArgs), CallRet)) {
      if (VM.PendingException != 0)
        return Ctl::Unwind; // Exception propagates; search handlers here.
      return fail();
    }
    if (MD.ReturnType.Kind != TypeKind::Void)
      Stack.push_back(CallRet);
    return Ctl::Next;
  }

  Ctl doLoad(const PInsn &I) {
    size_t Slot = static_cast<size_t>(I.A);
    Stack.push_back(Slot < Locals.size() ? Locals[Slot] : Value());
    return Ctl::Next;
  }

  Ctl doStore(const PInsn &I) {
    size_t Slot = static_cast<size_t>(I.A);
    Value V = popv();
    if (Slot < Locals.size())
      Locals[Slot] = V;
    return Ctl::Next;
  }

  Ctl doIArith(const PInsn &I) {
    uint8_t Op = I.Op;
    Value B = popv(), A = popv();
    int32_t X = A.asInt(), Y = B.asInt();
    int32_t Out = 0;
    if ((Op == OP_idiv || Op == OP_irem) && Y == 0) {
      VM.throwBuiltin(JvmErrorKind::ArithmeticException,
                      "java/lang/ArithmeticException", "/ by zero");
      return Ctl::Unwind;
    }
    switch (Op) {
    case OP_iadd:
      Out = static_cast<int32_t>(static_cast<uint32_t>(X) +
                                 static_cast<uint32_t>(Y));
      break;
    case OP_isub:
      Out = static_cast<int32_t>(static_cast<uint32_t>(X) -
                                 static_cast<uint32_t>(Y));
      break;
    case OP_imul:
      Out = static_cast<int32_t>(static_cast<uint32_t>(X) *
                                 static_cast<uint32_t>(Y));
      break;
    case OP_idiv:
      Out = (X == INT32_MIN && Y == -1) ? INT32_MIN : X / Y;
      break;
    case OP_irem:
      Out = (X == INT32_MIN && Y == -1) ? 0 : X % Y;
      break;
    case OP_ishl:
      Out = static_cast<int32_t>(static_cast<uint32_t>(X) << (Y & 31));
      break;
    case OP_ishr:
      Out = X >> (Y & 31);
      break;
    case 0x7C: // iushr
      Out = static_cast<int32_t>(static_cast<uint32_t>(X) >> (Y & 31));
      break;
    case OP_iand:
      Out = X & Y;
      break;
    case OP_ior:
      Out = X | Y;
      break;
    case OP_ixor:
      Out = X ^ Y;
      break;
    }
    Stack.push_back(Value::makeInt(Out));
    return Ctl::Next;
  }

  Ctl doINeg(const PInsn &) {
    Value A = popv();
    Stack.push_back(Value::makeInt(-A.asInt()));
    return Ctl::Next;
  }

  Ctl doConv(const PInsn &I) {
    Value A = popv();
    switch (I.Op) {
    case OP_i2l:
      Stack.push_back(Value::makeLong(A.asInt()));
      break;
    case 0x86: // i2f
      Stack.push_back(Value::makeFloat(A.asInt()));
      break;
    case 0x87: // i2d
      Stack.push_back(Value::makeDouble(A.asInt()));
      break;
    case 0x88: // l2i
      Stack.push_back(Value::makeInt(static_cast<int32_t>(A.I)));
      break;
    case OP_i2b:
      Stack.push_back(Value::makeInt(static_cast<int8_t>(A.asInt())));
      break;
    case 0x92: // i2c
      Stack.push_back(Value::makeInt(static_cast<uint16_t>(A.asInt())));
      break;
    case 0x93: // i2s
      Stack.push_back(Value::makeInt(static_cast<int16_t>(A.asInt())));
      break;
    default:
      // Other fp/long conversions: pass through payload coarsely.
      Stack.push_back(A);
      break;
    }
    return Ctl::Next;
  }

  Ctl doIf(const PInsn &I) {
    int32_t V = popv().asInt();
    bool Taken = false;
    switch (I.Op) {
    case OP_ifeq:
      Taken = V == 0;
      break;
    case OP_ifne:
      Taken = V != 0;
      break;
    case OP_iflt:
      Taken = V < 0;
      break;
    case OP_ifge:
      Taken = V >= 0;
      break;
    case OP_ifgt:
      Taken = V > 0;
      break;
    case OP_ifle:
      Taken = V <= 0;
      break;
    }
    return Taken ? branchTo(I.Target) : Ctl::Next;
  }

  Ctl doIfICmp(const PInsn &I) {
    int32_t B = popv().asInt();
    int32_t A = popv().asInt();
    bool Taken = false;
    switch (I.Op) {
    case OP_if_icmpeq:
      Taken = A == B;
      break;
    case OP_if_icmpne:
      Taken = A != B;
      break;
    case OP_if_icmplt:
      Taken = A < B;
      break;
    case OP_if_icmpge:
      Taken = A >= B;
      break;
    case OP_if_icmpgt:
      Taken = A > B;
      break;
    case OP_if_icmple:
      Taken = A <= B;
      break;
    }
    return Taken ? branchTo(I.Target) : Ctl::Next;
  }

  Ctl doIfACmp(const PInsn &I) {
    Value B = popv(), A = popv();
    bool Equal = A.R == B.R;
    return ((I.Op == OP_if_acmpeq) == Equal) ? branchTo(I.Target)
                                             : Ctl::Next;
  }

  Ctl doIfNull(const PInsn &I) {
    Value V = popv();
    return ((I.Op == OP_ifnull) == V.isNull()) ? branchTo(I.Target)
                                               : Ctl::Next;
  }

  Ctl doSwitch(const PInsn &I) {
    popv();
    return branchTo(I.Target); // Default target.
  }

  Ctl doUnsupported(const PInsn &I) {
    VM.abort(VM.CurrentPhase, JvmErrorKind::InternalError,
             "unsupported opcode at runtime: " + opcodeName(I.Op));
    return fail();
  }

  // --- the shared loop head ------------------------------------------------

  /// Runs the per-instruction loop head in the switch interpreter's exact
  /// order: abort check, pending-exception handler search (no step
  /// charge), budget charge, fell-off-the-code check, per-opcode dispatch
  /// probe. Returns false when the frame must exit (Ok is already set);
  /// true when the instruction at Index should be dispatched (NextIndex
  /// holds the fall-through).
  bool loopHead() {
    for (;;) {
      if (VM.Aborted) {
        Ok = false;
        return false;
      }
      if (VM.PendingException != 0) {
        // Search this frame's exception table. Index is always a valid
        // instruction here: every path that raises an exception unwinds
        // without advancing.
        bool Handled = false;
        uint32_t Pc = PM.Insns[Index].Offset;
        for (const ExceptionTableEntry &E : M.Code->ExceptionTable) {
          if (Pc < E.StartPc || Pc >= E.EndPc)
            continue;
          if (!E.CatchType.empty() &&
              !VM.refInstanceOf(VM.PendingException, E.CatchType))
            continue;
          Stack.clear();
          Stack.push_back(Value::makeRef(VM.PendingException));
          VM.PendingException = 0;
          // A handler pc that is not an instruction start becomes the
          // fell-off VerifyError on the next iteration, as in the
          // switch interpreter.
          Index = PM.indexOfOffset(E.HandlerPc);
          Handled = true;
          break;
        }
        if (!Handled) {
          Ok = false; // Unwind to the caller.
          return false;
        }
        continue;
      }

      if (covBranch(Cov, exec_probes::id(exec_probes::BudgetExhausted),
                    VM.StepsRemaining == 0)) {
        VM.abort(VM.CurrentPhase, JvmErrorKind::InternalError,
                 "interpreter step budget exhausted");
        Ok = false;
        return false;
      }
      --VM.StepsRemaining;

      if (covBranch(Cov, exec_probes::id(exec_probes::FellOffCode),
                    Index >= PM.Insns.size())) {
        VM.abort(VM.CurrentPhase, JvmErrorKind::VerifyError,
                 "execution fell off the code of " + M.Name);
        Ok = false;
        return false;
      }

      // Per-opcode statement probe (the interpreter dispatch analog of
      // statement coverage over bytecodeInterpreter.cpp).
      covStmt(Cov, exec_probes::opcodeId(PM.Insns[Index].Op));
      NextIndex = Index + 1;
      return true;
    }
  }

  // --- the shared invoke path ----------------------------------------------

  /// The invoke path shared by the fast tiers: the switch interpreter's
  /// prologue (entry probe, depth limit, native dispatch, missing-code
  /// and malformed-bytecode checks) followed by the dispatch loop. A
  /// static member so it shares ExecContext's friendship with Vm.
  /// \p Fetch supplies the tier's cached lowering (called only for
  /// non-native methods with code); \p Dispatch executes one instruction
  /// (or, for the computed-goto skin, the rest of the frame) and returns
  /// its Ctl.
  template <typename FetchFn, typename DispatchFn>
  static bool execInvoke(Vm &VM, Vm::LoadedClass &LC, const MethodInfo &M,
                         std::vector<Value> Args, Value &Ret, FetchFn Fetch,
                         DispatchFn Dispatch) {
    CoverageRecorder *Cov = VM.Cov;
    covStmt(Cov, exec_probes::id(exec_probes::InvokeEntry));
    if (VM.Aborted)
      return false;
    if (covBranch(Cov, exec_probes::id(exec_probes::DepthExceeded),
                  VM.CallDepth >= VM.Policy.MaxCallDepth)) {
      VM.abort(VM.CurrentPhase, JvmErrorKind::StackOverflowError,
               "call depth exceeded in " + LC.CF.ThisClass + "." + M.Name);
      return false;
    }

    if (M.isNative())
      return VM.callNative(LC, M, Args, Ret);

    if (covBranch(Cov, exec_probes::id(exec_probes::MissingCode),
                  !M.Code)) {
      // ensureInvocable should have rejected this; raise the deferred
      // error.
      VM.abort(VM.CurrentPhase, JvmErrorKind::ClassFormatError,
               "method " + M.Name + M.Descriptor +
                   " lacks a Code attribute");
      return false;
    }

    FetchedMethod FM = Fetch();
    // The malformed-bytecode branch fires per invocation (not per
    // predecode), exactly as the switch interpreter's per-invoke decode.
    if (covBranch(Cov, exec_probes::id(exec_probes::MalformedBytecode),
                  !FM.PM->Valid)) {
      VM.abort(VM.CurrentPhase, JvmErrorKind::VerifyError,
               "malformed bytecode reached execution in " + M.Name);
      return false;
    }

    ++VM.CallDepth;
    ExecContext C(VM, LC, M, *FM.PM, FM.IC);
    C.bindArgs(Args);
    for (;;) {
      if (!C.loopHead())
        break;
      Ctl Act = Dispatch(C);
      if (Act == Ctl::Return)
        break;
      if (Act == Ctl::Next) {
        if (VM.Aborted) {
          C.Ok = false;
          break;
        }
        C.Index = C.NextIndex;
      }
      // Ctl::Unwind: re-enter the loop head at the current instruction.
    }
    --VM.CallDepth;
    if (C.Ok)
      Ret = C.RetVal;
    return C.Ok;
  }
};

} // namespace classfuzz

#endif // CLASSFUZZ_JVM_EXECHANDLERS_H
