//===- jvm/FormatChecker.cpp ----------------------------------------------===//

#include "jvm/FormatChecker.h"

#include "classfile/Descriptor.h"
#include "coverage/Probes.h"

CF_COV_FILE(1)

using namespace classfuzz;

bool classfuzz::isInitializationMethod(const MethodInfo &Method,
                                       const JvmPolicy &Policy) {
  if (Method.Name != "<clinit>")
    return false;
  if (Policy.StrictClinitStatic)
    return true; // J9: any <clinit> is the initializer (and is checked).
  // SE 9 clarification: only static ()V <clinit> is an initializer;
  // "other methods named <clinit> are of no consequence".
  return (Method.AccessFlags & ACC_STATIC) && Method.Descriptor == "()V";
}

namespace {

/// True when more than one of public/private/protected is set.
bool conflictingVisibility(uint16_t Flags) {
  int Count = 0;
  Count += (Flags & ACC_PUBLIC) ? 1 : 0;
  Count += (Flags & ACC_PRIVATE) ? 1 : 0;
  Count += (Flags & ACC_PROTECTED) ? 1 : 0;
  return Count > 1;
}

std::optional<CheckFailure> fail(JvmErrorKind Kind, std::string Message) {
  return CheckFailure{Kind, std::move(Message)};
}

std::optional<CheckFailure> checkClassFlags(const ClassFile &CF,
                                            const JvmPolicy &Policy,
                                            CoverageRecorder *Cov) {
  COV_STMT(Cov);
  if (!Policy.CheckClassFlagConsistency)
    return std::nullopt;
  if (COV_BRANCH(Cov, (CF.AccessFlags & ACC_FINAL) &&
                          (CF.AccessFlags & ACC_ABSTRACT)))
    return fail(JvmErrorKind::ClassFormatError,
                "class " + CF.ThisClass + " is both final and abstract");
  if (COV_BRANCH(Cov, CF.isInterface() && !(CF.AccessFlags & ACC_ABSTRACT)))
    return fail(JvmErrorKind::ClassFormatError,
                "interface " + CF.ThisClass + " lacks ACC_ABSTRACT");
  if (COV_BRANCH(Cov, CF.isInterface() && (CF.AccessFlags & ACC_FINAL)))
    return fail(JvmErrorKind::ClassFormatError,
                "interface " + CF.ThisClass + " must not be final");
  return std::nullopt;
}

std::optional<CheckFailure> checkFields(const ClassFile &CF,
                                        const JvmPolicy &Policy,
                                        CoverageRecorder *Cov) {
  COV_STMT(Cov);
  for (size_t I = 0; I != CF.Fields.size(); ++I) {
    const FieldInfo &F = CF.Fields[I];
    COV_STMT(Cov);
    if (Policy.CheckMemberFlagConsistency) {
      if (COV_BRANCH(Cov, conflictingVisibility(F.AccessFlags)))
        return fail(JvmErrorKind::ClassFormatError,
                    "field " + F.Name + " has conflicting visibility flags");
      if (COV_BRANCH(Cov, (F.AccessFlags & ACC_FINAL) &&
                              (F.AccessFlags & ACC_VOLATILE)))
        return fail(JvmErrorKind::ClassFormatError,
                    "field " + F.Name + " is both final and volatile");
    }
    if (Policy.CheckInterfaceMemberFlags && CF.isInterface()) {
      constexpr uint16_t Required = ACC_PUBLIC | ACC_STATIC | ACC_FINAL;
      if (COV_BRANCH(Cov, (F.AccessFlags & Required) != Required))
        return fail(JvmErrorKind::ClassFormatError,
                    "interface field " + F.Name +
                        " must be public static final");
    }
    if (Policy.CheckDescriptors &&
        COV_BRANCH(Cov, !isValidFieldDescriptor(F.Descriptor)))
      return fail(JvmErrorKind::ClassFormatError,
                  "field " + F.Name + " has malformed descriptor \"" +
                      F.Descriptor + "\"");
    if (Policy.CheckDuplicateFields) {
      for (size_t J = 0; J != I; ++J) {
        const FieldInfo &Other = CF.Fields[J];
        if (COV_BRANCH(Cov, Other.Name == F.Name &&
                                Other.Descriptor == F.Descriptor))
          return fail(JvmErrorKind::ClassFormatError,
                      "duplicate field " + F.Name + ":" + F.Descriptor);
      }
    }
  }
  return std::nullopt;
}

std::optional<CheckFailure> checkMethodFlags(const ClassFile &CF,
                                             const MethodInfo &M,
                                             const JvmPolicy &Policy,
                                             CoverageRecorder *Cov) {
  COV_STMT(Cov);
  if (Policy.CheckMemberFlagConsistency) {
    if (COV_BRANCH(Cov, conflictingVisibility(M.AccessFlags)))
      return fail(JvmErrorKind::ClassFormatError,
                  "method " + M.Name + " has conflicting visibility flags");
    constexpr uint16_t AbstractForbidden =
        ACC_FINAL | ACC_STATIC | ACC_NATIVE | ACC_SYNCHRONIZED | ACC_PRIVATE;
    if (COV_BRANCH(Cov, (M.AccessFlags & ACC_ABSTRACT) &&
                            (M.AccessFlags & AbstractForbidden) &&
                            M.Name != "<clinit>"))
      return fail(JvmErrorKind::ClassFormatError,
                  "abstract method " + M.Name +
                      " has incompatible modifiers");
  }
  if (Policy.CheckInterfaceMemberFlags && CF.isInterface() &&
      M.Name != "<clinit>") {
    // Pre-default-method (classfile version <= 51) rule: interface
    // methods are public and abstract.
    constexpr uint16_t Required = ACC_PUBLIC | ACC_ABSTRACT;
    if (COV_BRANCH(Cov, (M.AccessFlags & Required) != Required))
      return fail(JvmErrorKind::ClassFormatError,
                  "interface method " + M.Name + " must be public abstract");
  }
  return std::nullopt;
}

std::optional<CheckFailure> checkInitShape(const MethodInfo &M,
                                           const JvmPolicy &Policy,
                                           CoverageRecorder *Cov) {
  COV_STMT(Cov);
  if (!Policy.CheckInitShape || M.Name != "<init>")
    return std::nullopt;
  // Problem 4: <init> must not be static, final, synchronized or
  // abstract, and must return void; GIJ skips both rules. (The spec also
  // forbids native <init>, but our runtime library models constructors
  // as natives, so that bit is deliberately not checked.)
  constexpr uint16_t Forbidden =
      ACC_STATIC | ACC_FINAL | ACC_SYNCHRONIZED | ACC_ABSTRACT;
  if (COV_BRANCH(Cov, (M.AccessFlags & Forbidden) != 0))
    return fail(JvmErrorKind::ClassFormatError,
                "<init> has illegal modifiers");
  MethodDescriptor MD;
  if (COV_BRANCH(Cov, parseMethodDescriptor(M.Descriptor, MD) &&
                          MD.ReturnType.Kind != TypeKind::Void))
    return fail(JvmErrorKind::ClassFormatError,
                "<init> must return void, not " +
                    MD.ReturnType.toJavaName());
  return std::nullopt;
}

std::optional<CheckFailure> checkClinit(const MethodInfo &M,
                                        const JvmPolicy &Policy,
                                        CoverageRecorder *Cov) {
  COV_STMT(Cov);
  if (M.Name != "<clinit>")
    return std::nullopt;
  if (Policy.StrictClinitStatic) {
    // J9 reading (pre-clarification): any method named <clinit> is the
    // initializer and must be a static ()V with code (Figure 2's
    // "no Code attribute specified ... method=<clinit>()V").
    if (COV_BRANCH(Cov, !(M.AccessFlags & ACC_STATIC)))
      return fail(JvmErrorKind::ClassFormatError,
                  "method <clinit> must be static");
    if (COV_BRANCH(Cov, !M.Code && !M.isNative()))
      return fail(JvmErrorKind::ClassFormatError,
                  "no Code attribute specified, method=<clinit>" +
                      M.Descriptor + ", pc=0");
  }
  return std::nullopt;
}

std::optional<CheckFailure> checkCodePresence(const ClassFile &CF,
                                              const MethodInfo &M,
                                              const JvmPolicy &Policy,
                                              CoverageRecorder *Cov) {
  COV_STMT(Cov);
  bool MustHaveCode = !M.isAbstract() && !M.isNative();
  if (Policy.CheckMemberFlagConsistency &&
      COV_BRANCH(Cov, !MustHaveCode && M.Code.has_value()))
    return fail(JvmErrorKind::ClassFormatError,
                "method " + M.Name + " must not have a Code attribute");
  if (Policy.RequireCode == CheckMode::Eager &&
      COV_BRANCH(Cov, MustHaveCode && !M.Code.has_value())) {
    // A non-static <clinit> under the lenient reading is an ordinary
    // abstract-like method only if flagged abstract; otherwise missing
    // code is a format error here too.
    return fail(JvmErrorKind::ClassFormatError,
                "method " + M.Name + M.Descriptor +
                    " lacks a Code attribute");
  }
  if (Policy.CheckConcreteAbstractMethod == CheckMode::Eager &&
      COV_BRANCH(Cov, M.isAbstract() && !CF.isInterface() &&
                          !(CF.AccessFlags & ACC_ABSTRACT)))
    return fail(JvmErrorKind::ClassFormatError,
                "abstract method " + M.Name + " in non-abstract class " +
                    CF.ThisClass);
  return std::nullopt;
}

} // namespace

std::optional<CheckFailure>
classfuzz::checkClassFormat(const ClassFile &CF, const JvmPolicy &Policy,
                            CoverageRecorder *Cov) {
  COV_STMT(Cov);

  if (COV_BRANCH(Cov, CF.MajorVersion > Policy.MaxClassFileMajor))
    return fail(JvmErrorKind::UnsupportedClassVersionError,
                CF.ThisClass + " has unsupported major version " +
                    std::to_string(CF.MajorVersion));

  if (auto Failure = checkClassFlags(CF, Policy, Cov))
    return Failure;

  // Interfaces must directly extend java/lang/Object (GIJ misses this,
  // Problem 4's first bullet).
  if (Policy.CheckInterfaceSuper &&
      COV_BRANCH(Cov, CF.isInterface() &&
                          CF.SuperClass != "java/lang/Object"))
    return fail(JvmErrorKind::ClassFormatError,
                "interface " + CF.ThisClass +
                    " has superclass other than java/lang/Object");

  if (auto Failure = checkFields(CF, Policy, Cov))
    return Failure;

  for (size_t I = 0; I != CF.Methods.size(); ++I) {
    const MethodInfo &M = CF.Methods[I];
    COV_STMT(Cov);
    if (Policy.CheckDescriptors &&
        COV_BRANCH(Cov, !isValidMethodDescriptor(M.Descriptor)))
      return fail(JvmErrorKind::ClassFormatError,
                  "method " + M.Name + " has malformed descriptor \"" +
                      M.Descriptor + "\"");
    if (auto Failure = checkMethodFlags(CF, M, Policy, Cov))
      return Failure;
    if (auto Failure = checkInitShape(M, Policy, Cov))
      return Failure;
    if (auto Failure = checkClinit(M, Policy, Cov))
      return Failure;
    if (auto Failure = checkCodePresence(CF, M, Policy, Cov))
      return Failure;
    if (Policy.CheckDuplicateMethods) {
      for (size_t J = 0; J != I; ++J) {
        const MethodInfo &Other = CF.Methods[J];
        if (COV_BRANCH(Cov, Other.Name == M.Name &&
                                Other.Descriptor == M.Descriptor))
          return fail(JvmErrorKind::ClassFormatError,
                      "duplicate method " + M.Name + M.Descriptor);
      }
    }
  }

  return std::nullopt;
}

std::optional<CheckFailure>
classfuzz::checkMethodInvocable(const ClassFile &CF, const MethodInfo &Method,
                                const JvmPolicy &Policy,
                                CoverageRecorder *Cov) {
  COV_STMT(Cov);
  if (COV_BRANCH(Cov, Method.isAbstract())) {
    if (Policy.CheckConcreteAbstractMethod == CheckMode::Off &&
        !Method.Code)
      return fail(JvmErrorKind::AbstractMethodError,
                  "invoking abstract method " + Method.Name);
    if (Policy.CheckConcreteAbstractMethod == CheckMode::Lazy)
      return fail(JvmErrorKind::AbstractMethodError,
                  CF.ThisClass + "." + Method.Name);
  }
  if (COV_BRANCH(Cov, !Method.Code && !Method.isNative()))
    return fail(JvmErrorKind::ClassFormatError,
                "method " + Method.Name + Method.Descriptor +
                    " lacks a Code attribute");
  return std::nullopt;
}
