//===- jvm/FormatChecker.cpp ----------------------------------------------===//

#include "jvm/FormatChecker.h"

#include "classfile/Descriptor.h"
#include "coverage/Probes.h"

CF_COV_FILE(1)

using namespace classfuzz;

bool classfuzz::isInitializationMethod(const MethodInfo &Method,
                                       const JvmPolicy &Policy) {
  if (Method.Name != "<clinit>")
    return false;
  if (Policy.StrictClinitStatic)
    return true; // J9: any <clinit> is the initializer (and is checked).
  // SE 9 clarification: only static ()V <clinit> is an initializer;
  // "other methods named <clinit> are of no consequence".
  return (Method.AccessFlags & ACC_STATIC) && Method.Descriptor == "()V";
}

namespace {

/// True when more than one of public/private/protected is set.
bool conflictingVisibility(uint16_t Flags) {
  int Count = 0;
  Count += (Flags & ACC_PUBLIC) ? 1 : 0;
  Count += (Flags & ACC_PRIVATE) ? 1 : 0;
  Count += (Flags & ACC_PROTECTED) ? 1 : 0;
  return Count > 1;
}

CheckFailure fail(JvmErrorKind Kind, std::string Message) {
  return CheckFailure{Kind, std::move(Message)};
}

// Each check* reports every failure it finds to the sink and keeps
// going; a false return means the sink asked to stop (the VM's
// first-failure path), and the caller unwinds immediately.

bool checkClassFlags(const ClassFile &CF, const JvmPolicy &Policy,
                     CoverageRecorder *Cov, const FormatSink &Sink) {
  COV_STMT(Cov);
  if (!Policy.CheckClassFlagConsistency)
    return true;
  if (COV_BRANCH(Cov, (CF.AccessFlags & ACC_FINAL) &&
                          (CF.AccessFlags & ACC_ABSTRACT)))
    if (!Sink(fail(JvmErrorKind::ClassFormatError,
                   "class " + CF.ThisClass + " is both final and abstract")))
      return false;
  if (COV_BRANCH(Cov, CF.isInterface() && !(CF.AccessFlags & ACC_ABSTRACT)))
    if (!Sink(fail(JvmErrorKind::ClassFormatError,
                   "interface " + CF.ThisClass + " lacks ACC_ABSTRACT")))
      return false;
  if (COV_BRANCH(Cov, CF.isInterface() && (CF.AccessFlags & ACC_FINAL)))
    if (!Sink(fail(JvmErrorKind::ClassFormatError,
                   "interface " + CF.ThisClass + " must not be final")))
      return false;
  return true;
}

bool checkFields(const ClassFile &CF, const JvmPolicy &Policy,
                 CoverageRecorder *Cov, const FormatSink &Sink) {
  COV_STMT(Cov);
  for (size_t I = 0; I != CF.Fields.size(); ++I) {
    const FieldInfo &F = CF.Fields[I];
    COV_STMT(Cov);
    if (Policy.CheckMemberFlagConsistency) {
      if (COV_BRANCH(Cov, conflictingVisibility(F.AccessFlags)))
        if (!Sink(fail(JvmErrorKind::ClassFormatError,
                       "field " + F.Name +
                           " has conflicting visibility flags")))
          return false;
      if (COV_BRANCH(Cov, (F.AccessFlags & ACC_FINAL) &&
                              (F.AccessFlags & ACC_VOLATILE)))
        if (!Sink(fail(JvmErrorKind::ClassFormatError,
                       "field " + F.Name + " is both final and volatile")))
          return false;
    }
    if (Policy.CheckInterfaceMemberFlags && CF.isInterface()) {
      constexpr uint16_t Required = ACC_PUBLIC | ACC_STATIC | ACC_FINAL;
      if (COV_BRANCH(Cov, (F.AccessFlags & Required) != Required))
        if (!Sink(fail(JvmErrorKind::ClassFormatError,
                       "interface field " + F.Name +
                           " must be public static final")))
          return false;
    }
    if (Policy.CheckDescriptors &&
        COV_BRANCH(Cov, !isValidFieldDescriptor(F.Descriptor)))
      if (!Sink(fail(JvmErrorKind::ClassFormatError,
                     "field " + F.Name + " has malformed descriptor \"" +
                         F.Descriptor + "\"")))
        return false;
    if (Policy.CheckDuplicateFields) {
      for (size_t J = 0; J != I; ++J) {
        const FieldInfo &Other = CF.Fields[J];
        if (COV_BRANCH(Cov, Other.Name == F.Name &&
                                Other.Descriptor == F.Descriptor))
          if (!Sink(fail(JvmErrorKind::ClassFormatError,
                         "duplicate field " + F.Name + ":" + F.Descriptor)))
            return false;
      }
    }
  }
  return true;
}

bool checkMethodFlags(const ClassFile &CF, const MethodInfo &M,
                      const JvmPolicy &Policy, CoverageRecorder *Cov,
                      const FormatSink &Sink) {
  COV_STMT(Cov);
  if (Policy.CheckMemberFlagConsistency) {
    if (COV_BRANCH(Cov, conflictingVisibility(M.AccessFlags)))
      if (!Sink(fail(JvmErrorKind::ClassFormatError,
                     "method " + M.Name +
                         " has conflicting visibility flags")))
        return false;
    constexpr uint16_t AbstractForbidden =
        ACC_FINAL | ACC_STATIC | ACC_NATIVE | ACC_SYNCHRONIZED | ACC_PRIVATE;
    if (COV_BRANCH(Cov, (M.AccessFlags & ACC_ABSTRACT) &&
                            (M.AccessFlags & AbstractForbidden) &&
                            M.Name != "<clinit>"))
      if (!Sink(fail(JvmErrorKind::ClassFormatError,
                     "abstract method " + M.Name +
                         " has incompatible modifiers")))
        return false;
  }
  if (Policy.CheckInterfaceMemberFlags && CF.isInterface() &&
      M.Name != "<clinit>") {
    // Pre-default-method (classfile version <= 51) rule: interface
    // methods are public and abstract.
    constexpr uint16_t Required = ACC_PUBLIC | ACC_ABSTRACT;
    if (COV_BRANCH(Cov, (M.AccessFlags & Required) != Required))
      if (!Sink(fail(JvmErrorKind::ClassFormatError,
                     "interface method " + M.Name +
                         " must be public abstract")))
        return false;
  }
  return true;
}

bool checkInitShape(const MethodInfo &M, const JvmPolicy &Policy,
                    CoverageRecorder *Cov, const FormatSink &Sink) {
  COV_STMT(Cov);
  if (!Policy.CheckInitShape || M.Name != "<init>")
    return true;
  // Problem 4: <init> must not be static, final, synchronized or
  // abstract, and must return void; GIJ skips both rules. (The spec also
  // forbids native <init>, but our runtime library models constructors
  // as natives, so that bit is deliberately not checked.)
  constexpr uint16_t Forbidden =
      ACC_STATIC | ACC_FINAL | ACC_SYNCHRONIZED | ACC_ABSTRACT;
  if (COV_BRANCH(Cov, (M.AccessFlags & Forbidden) != 0))
    if (!Sink(fail(JvmErrorKind::ClassFormatError,
                   "<init> has illegal modifiers")))
      return false;
  MethodDescriptor MD;
  if (COV_BRANCH(Cov, parseMethodDescriptor(M.Descriptor, MD) &&
                          MD.ReturnType.Kind != TypeKind::Void))
    if (!Sink(fail(JvmErrorKind::ClassFormatError,
                   "<init> must return void, not " +
                       MD.ReturnType.toJavaName())))
      return false;
  return true;
}

bool checkClinit(const MethodInfo &M, const JvmPolicy &Policy,
                 CoverageRecorder *Cov, const FormatSink &Sink) {
  COV_STMT(Cov);
  if (M.Name != "<clinit>")
    return true;
  if (Policy.StrictClinitStatic) {
    // J9 reading (pre-clarification): any method named <clinit> is the
    // initializer and must be a static ()V with code (Figure 2's
    // "no Code attribute specified ... method=<clinit>()V").
    if (COV_BRANCH(Cov, !(M.AccessFlags & ACC_STATIC)))
      if (!Sink(fail(JvmErrorKind::ClassFormatError,
                     "method <clinit> must be static")))
        return false;
    if (COV_BRANCH(Cov, !M.Code && !M.isNative()))
      if (!Sink(fail(JvmErrorKind::ClassFormatError,
                     "no Code attribute specified, method=<clinit>" +
                         M.Descriptor + ", pc=0")))
        return false;
  }
  return true;
}

bool checkCodePresence(const ClassFile &CF, const MethodInfo &M,
                       const JvmPolicy &Policy, CoverageRecorder *Cov,
                       const FormatSink &Sink) {
  COV_STMT(Cov);
  bool MustHaveCode = !M.isAbstract() && !M.isNative();
  if (Policy.CheckMemberFlagConsistency &&
      COV_BRANCH(Cov, !MustHaveCode && M.Code.has_value()))
    if (!Sink(fail(JvmErrorKind::ClassFormatError,
                   "method " + M.Name + " must not have a Code attribute")))
      return false;
  if (Policy.RequireCode == CheckMode::Eager &&
      COV_BRANCH(Cov, MustHaveCode && !M.Code.has_value())) {
    // A non-static <clinit> under the lenient reading is an ordinary
    // abstract-like method only if flagged abstract; otherwise missing
    // code is a format error here too.
    if (!Sink(fail(JvmErrorKind::ClassFormatError,
                   "method " + M.Name + M.Descriptor +
                       " lacks a Code attribute")))
      return false;
  }
  if (Policy.CheckConcreteAbstractMethod == CheckMode::Eager &&
      COV_BRANCH(Cov, M.isAbstract() && !CF.isInterface() &&
                          !(CF.AccessFlags & ACC_ABSTRACT)))
    if (!Sink(fail(JvmErrorKind::ClassFormatError,
                   "abstract method " + M.Name + " in non-abstract class " +
                       CF.ThisClass)))
      return false;
  return true;
}

} // namespace

void classfuzz::runFormatChecks(const ClassFile &CF, const JvmPolicy &Policy,
                                CoverageRecorder *Cov,
                                const FormatSink &Sink) {
  COV_STMT(Cov);

  if (COV_BRANCH(Cov, CF.MajorVersion > Policy.MaxClassFileMajor))
    if (!Sink(fail(JvmErrorKind::UnsupportedClassVersionError,
                   CF.ThisClass + " has unsupported major version " +
                       std::to_string(CF.MajorVersion))))
      return;

  if (!checkClassFlags(CF, Policy, Cov, Sink))
    return;

  // Interfaces must directly extend java/lang/Object (GIJ misses this,
  // Problem 4's first bullet).
  if (Policy.CheckInterfaceSuper &&
      COV_BRANCH(Cov, CF.isInterface() &&
                          CF.SuperClass != "java/lang/Object"))
    if (!Sink(fail(JvmErrorKind::ClassFormatError,
                   "interface " + CF.ThisClass +
                       " has superclass other than java/lang/Object")))
      return;

  if (!checkFields(CF, Policy, Cov, Sink))
    return;

  for (size_t I = 0; I != CF.Methods.size(); ++I) {
    const MethodInfo &M = CF.Methods[I];
    COV_STMT(Cov);
    if (Policy.CheckDescriptors &&
        COV_BRANCH(Cov, !isValidMethodDescriptor(M.Descriptor)))
      if (!Sink(fail(JvmErrorKind::ClassFormatError,
                     "method " + M.Name + " has malformed descriptor \"" +
                         M.Descriptor + "\"")))
        return;
    if (!checkMethodFlags(CF, M, Policy, Cov, Sink))
      return;
    if (!checkInitShape(M, Policy, Cov, Sink))
      return;
    if (!checkClinit(M, Policy, Cov, Sink))
      return;
    if (!checkCodePresence(CF, M, Policy, Cov, Sink))
      return;
    if (Policy.CheckDuplicateMethods) {
      for (size_t J = 0; J != I; ++J) {
        const MethodInfo &Other = CF.Methods[J];
        if (COV_BRANCH(Cov, Other.Name == M.Name &&
                                Other.Descriptor == M.Descriptor))
          if (!Sink(fail(JvmErrorKind::ClassFormatError,
                         "duplicate method " + M.Name + M.Descriptor)))
            return;
      }
    }
  }
}

std::optional<CheckFailure>
classfuzz::checkClassFormat(const ClassFile &CF, const JvmPolicy &Policy,
                            CoverageRecorder *Cov) {
  std::optional<CheckFailure> First;
  runFormatChecks(CF, Policy, Cov, [&](const CheckFailure &Failure) {
    First = Failure;
    return false; // The VM raises the first failure only.
  });
  return First;
}

std::optional<CheckFailure>
classfuzz::checkMethodInvocable(const ClassFile &CF, const MethodInfo &Method,
                                const JvmPolicy &Policy,
                                CoverageRecorder *Cov) {
  COV_STMT(Cov);
  if (COV_BRANCH(Cov, Method.isAbstract())) {
    if (Policy.CheckConcreteAbstractMethod == CheckMode::Off &&
        !Method.Code)
      return CheckFailure{JvmErrorKind::AbstractMethodError,
                          "invoking abstract method " + Method.Name};
    if (Policy.CheckConcreteAbstractMethod == CheckMode::Lazy)
      return CheckFailure{JvmErrorKind::AbstractMethodError,
                          CF.ThisClass + "." + Method.Name};
  }
  if (COV_BRANCH(Cov, !Method.Code && !Method.isNative()))
    return CheckFailure{JvmErrorKind::ClassFormatError,
                        "method " + Method.Name + Method.Descriptor +
                            " lacks a Code attribute"};
  return std::nullopt;
}
