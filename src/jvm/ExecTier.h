//===- jvm/ExecTier.h - Execution tier selection --------------------------===//
//
// Part of classfuzz-cpp (PLDI 2016 classfuzz reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The execution tier a Vm dispatches bytecode with. A differential
/// profile is (policy × tier): the same JvmPolicy run on two tiers must
/// produce identical observable behavior, so a tier disagreement is a
/// bug in one of the execution pipelines -- a distinct discrepancy class
/// (DESIGN.md §13). Kept in its own header so jvm/Policy.h can carry the
/// knob without pulling in the engine machinery.
///
//===----------------------------------------------------------------------===//

#ifndef CLASSFUZZ_JVM_EXECTIER_H
#define CLASSFUZZ_JVM_EXECTIER_H

#include <cstdint>
#include <optional>
#include <string>

namespace classfuzz {

/// The three bytecode execution pipelines.
enum class ExecTier : uint8_t {
  /// The legacy per-invoke-decoding switch interpreter (the original
  /// monolithic dispatch loop, kept as the semantic baseline and the
  /// slow end of the throughput gate).
  Switch,
  /// Token-threaded interpreter over the shared predecoded instruction
  /// stream (computed goto where the compiler supports it).
  Threaded,
  /// Baseline template tier: per-method flat arrays of pre-bound op
  /// thunks with inline-cached resolution, managed by a bounded
  /// LRU code cache.
  Baseline,
};

inline const char *execTierName(ExecTier Tier) {
  switch (Tier) {
  case ExecTier::Switch:
    return "switch";
  case ExecTier::Threaded:
    return "threaded";
  case ExecTier::Baseline:
    return "baseline";
  }
  return "threaded";
}

/// Parses a --tier spelling; nullopt for anything unrecognized.
inline std::optional<ExecTier> parseExecTier(const std::string &Name) {
  if (Name == "switch")
    return ExecTier::Switch;
  if (Name == "threaded")
    return ExecTier::Threaded;
  if (Name == "baseline")
    return ExecTier::Baseline;
  return std::nullopt;
}

} // namespace classfuzz

#endif // CLASSFUZZ_JVM_EXECTIER_H
