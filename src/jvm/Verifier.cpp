//===- jvm/Verifier.cpp ---------------------------------------------------===//

#include "jvm/Verifier.h"

#include "classfile/Descriptor.h"
#include "classfile/Opcodes.h"
#include "coverage/Probes.h"
#include "jvm/VerifierLattice.h"

#include <deque>
#include <map>

CF_COV_FILE(2)

using namespace classfuzz;

bool classfuzz::isRefAssignable(const std::string &Sub,
                                const std::string &Super,
                                const ClassLookupFn &Lookup) {
  if (Sub == Super || Super == "java/lang/Object")
    return true;
  // Walk Sub's superclass chain and direct interfaces.
  std::string Cur = Sub;
  for (int Depth = 0; Depth < 64; ++Depth) {
    const ClassFile *CF = Lookup ? Lookup(Cur) : nullptr;
    if (!CF)
      return false; // Unknown class: only Object accepts it.
    for (const std::string &Iface : CF->Interfaces)
      if (Iface == Super || isRefAssignable(Iface, Super, Lookup))
        return true;
    if (CF->SuperClass.empty())
      return false;
    if (CF->SuperClass == Super)
      return true;
    Cur = CF->SuperClass;
  }
  return false;
}

namespace {

// The verification-type lattice (VKind/VType/VFrame, join rules, stack
// effects) lives in jvm/VerifierLattice.h so the static analyzer shares
// it. Local aliases keep this file reading as before.
using Frame = VFrame;

VType makeRef(std::string Name) { return makeVRef(std::move(Name)); }

VType makeKind(VKind K) { return makeVKind(K); }

/// The per-method verification engine.
class MethodVerifier {
public:
  MethodVerifier(const ClassFile &CF, const MethodInfo &M,
                 const JvmPolicy &Policy, const ClassLookupFn &Lookup,
                 CoverageRecorder *Cov, bool StructuralOnly = false)
      : CF(CF), M(M), Policy(Policy), Lookup(Lookup), Cov(Cov),
        StructuralOnly(StructuralOnly), Code(M.Code->Code) {}

  std::optional<CheckFailure> run();

private:
  // -- error helpers -------------------------------------------------------
  std::optional<CheckFailure> Failure;
  bool failed() const { return Failure.has_value(); }
  void fail(const std::string &Message) {
    if (!Failure)
      Failure = CheckFailure{JvmErrorKind::VerifyError,
                             "(class: " + CF.ThisClass + ", method: " +
                                 M.Name + M.Descriptor + ") " + Message};
  }

  // -- frame operations ----------------------------------------------------
  void push(Frame &F, VType T) {
    int Width = T.isWide() ? 2 : 1;
    if (COV_BRANCH(Cov, F.Stack.size() + Width > M.Code->MaxStack)) {
      fail("operand stack overflow");
      return;
    }
    F.Stack.push_back(std::move(T));
    if (Width == 2)
      F.Stack.push_back(makeKind(VKind::Top));
  }

  VType pop(Frame &F) {
    if (COV_BRANCH(Cov, F.Stack.empty())) {
      fail("operand stack underflow");
      return makeKind(VKind::Top);
    }
    VType T = F.Stack.back();
    F.Stack.pop_back();
    return T;
  }

  VType popKind(Frame &F, VKind K) {
    VType T = pop(F);
    if (failed())
      return T;
    if (COV_BRANCH(Cov, T.Kind != K))
      fail("expected " + kindName(K) + " on stack, found " +
           kindName(T.Kind));
    return T;
  }

  VType popWide(Frame &F, VKind K) {
    VType TopHalf = pop(F);
    if (failed())
      return TopHalf;
    if (TopHalf.Kind != VKind::Top) {
      fail("expected wide-type upper half on stack");
      return TopHalf;
    }
    return popKind(F, K);
  }

  VType popRefLike(Frame &F) {
    VType T = pop(F);
    if (failed())
      return T;
    if (COV_BRANCH(Cov, !T.isRefLike()))
      fail("expected reference on stack, found " + kindName(T.Kind));
    return T;
  }

  void setLocal(Frame &F, uint32_t Index, VType T) {
    int Width = T.isWide() ? 2 : 1;
    if (COV_BRANCH(Cov, Index + Width > F.Locals.size())) {
      fail("local variable index " + std::to_string(Index) +
           " out of range");
      return;
    }
    // Storing into half of a wide pair invalidates the pair.
    if (Index > 0 && F.Locals[Index - 1].isWide())
      F.Locals[Index - 1] = makeKind(VKind::Top);
    F.Locals[Index] = std::move(T);
    if (Width == 2)
      F.Locals[Index + 1] = makeKind(VKind::Top);
  }

  VType getLocal(Frame &F, uint32_t Index, VKind Expected) {
    if (COV_BRANCH(Cov, Index >= F.Locals.size())) {
      fail("local variable index " + std::to_string(Index) +
           " out of range");
      return makeKind(VKind::Top);
    }
    VType &T = F.Locals[Index];
    if (Expected == VKind::Ref) {
      if (COV_BRANCH(Cov, !T.isRefLike())) {
        fail("local " + std::to_string(Index) + " is not a reference");
        return makeKind(VKind::Top);
      }
    } else if (COV_BRANCH(Cov, T.Kind != Expected)) {
      fail("local " + std::to_string(Index) + " holds " + kindName(T.Kind) +
           ", expected " + kindName(Expected));
      return makeKind(VKind::Top);
    }
    return T;
  }

  static std::string kindName(VKind K) { return vkindName(K); }

  // -- type utilities ------------------------------------------------------
  VType typeFromJType(const JType &T) { return vtypeFromJType(T); }

  std::string commonSuper(const std::string &A, const std::string &B) {
    if (A == B)
      return A;
    if (isRefAssignable(A, B, Lookup))
      return B;
    if (isRefAssignable(B, A, Lookup))
      return A;
    // Walk A's chain looking for an ancestor of B.
    std::string Cur = A;
    for (int Depth = 0; Depth < 64; ++Depth) {
      const ClassFile *ACls = Lookup ? Lookup(Cur) : nullptr;
      if (!ACls || ACls->SuperClass.empty())
        break;
      Cur = ACls->SuperClass;
      if (isRefAssignable(B, Cur, Lookup))
        return Cur;
    }
    return "java/lang/Object";
  }

  /// Merges \p Incoming into \p Target; returns true when Target changed.
  /// Sets a VerifyError on incompatible shapes.
  bool mergeFrames(const Frame &Incoming, Frame &Target, bool &Changed);
  VType mergeTypes(const VType &A, const VType &B);

  /// Depth-only stack dataflow used by the structural (pre-verifier)
  /// mode. Requires Insns to be populated.
  void runDepthOnly();
  /// Net (pops, pushes) of \p I; false when the opcode's effect depends
  /// on information the pre-verifier does not track.
  bool stackEffect(const Insn &I, int &Pops, int &Pushes);

  // -- constant pool helpers -----------------------------------------------
  bool cpTagIs(uint16_t Index, CpTag Tag) {
    return CF.CP.isValidIndex(Index) && CF.CP.at(Index).Tag == Tag;
  }

  // -- transfer function ---------------------------------------------------
  /// Applies \p I to \p F; appends successor offsets to \p Successors and
  /// sets \p FallsThrough.
  void transfer(const Insn &I, Frame &F, std::vector<uint32_t> &Successors,
                bool &FallsThrough);
  void transferInvoke(const Insn &I, Frame &F);
  void transferField(const Insn &I, Frame &F);
  void checkReturn(const Insn &I, Frame &F);

  const ClassFile &CF;
  const MethodInfo &M;
  const JvmPolicy &Policy;
  const ClassLookupFn &Lookup;
  CoverageRecorder *Cov;
  bool StructuralOnly;
  const Bytes &Code;

  std::map<uint32_t, Insn> Insns; ///< offset -> decoded instruction.
  std::map<uint32_t, Frame> InFrames;
  MethodDescriptor Desc;
};

VType MethodVerifier::mergeTypes(const VType &A, const VType &B) {
  if (A == B)
    return A;
  // Top is the absorbing "unusable" element: merging with it is never
  // itself an error (errors arise only if the slot is later used).
  if (A.Kind == VKind::Top || B.Kind == VKind::Top)
    return makeKind(VKind::Top);
  // Per-kind-pair probe: each merge rule of the verifier's type lattice
  // is its own code path in a real verifier.
  covStmt(Cov, (CovFileId << 16) | 0xC000u |
                   (static_cast<uint32_t>(A.Kind) << 4) |
                   static_cast<uint32_t>(B.Kind));
  // The join itself is the shared policy-free lattice; only the issue
  // handling below is profile-dependent.
  VJoinIssue Issue = VJoinIssue::None;
  VType Merged = joinVTypes(
      A, B,
      [this](const std::string &X, const std::string &Y) {
        return commonSuper(X, Y);
      },
      Issue);
  // Problem 2 (GIJ): merging initialized and uninitialized values is
  // itself a verification error under CheckUninitializedMerge.
  if (COV_BRANCH(Cov, Issue == VJoinIssue::UninitializedMix)) {
    if (Policy.CheckUninitializedMerge)
      fail("merging initialized and uninitialized types");
    return makeKind(VKind::Top);
  }
  if (Issue == VJoinIssue::KindConflict) {
    // Incompatible kinds: strict profiles (J9's stack-frame discipline)
    // report "stack shape inconsistent" immediately; lenient ones merge
    // to Top, failing only if the slot is later used.
    if (COV_BRANCH(Cov, Policy.StrictPrimitiveMerge))
      fail("stack shape inconsistent");
    return makeKind(VKind::Top);
  }
  return Merged;
}

bool MethodVerifier::mergeFrames(const Frame &Incoming, Frame &Target,
                                 bool &Changed) {
  if (COV_BRANCH(Cov, Incoming.Stack.size() != Target.Stack.size() ||
                          Incoming.Locals.size() != Target.Locals.size())) {
    fail("stack shape inconsistent");
    return false;
  }
  Changed = false;
  for (size_t I = 0; I != Target.Locals.size(); ++I) {
    VType Merged = mergeTypes(Incoming.Locals[I], Target.Locals[I]);
    if (failed())
      return false;
    if (!(Merged == Target.Locals[I])) {
      Target.Locals[I] = Merged;
      Changed = true;
    }
  }
  for (size_t I = 0; I != Target.Stack.size(); ++I) {
    VType Merged = mergeTypes(Incoming.Stack[I], Target.Stack[I]);
    if (failed())
      return false;
    if (!(Merged == Target.Stack[I])) {
      Target.Stack[I] = Merged;
      Changed = true;
    }
  }
  return true;
}

void MethodVerifier::transferField(const Insn &I, Frame &F) {
  COV_STMT(Cov);
  uint16_t Index = static_cast<uint16_t>(I.Operand1);
  if (COV_BRANCH(Cov, !cpTagIs(Index, CpTag::Fieldref))) {
    fail("field instruction operand is not a CONSTANT_Fieldref");
    return;
  }
  auto Ref = CF.CP.getMemberRef(Index);
  if (!Ref) {
    fail(Ref.error());
    return;
  }
  JType FieldType;
  if (COV_BRANCH(Cov, !parseFieldDescriptor(Ref->Descriptor, FieldType))) {
    fail("malformed field descriptor " + Ref->Descriptor);
    return;
  }
  // Per-field-type probe (the descriptor switch of a real verifier).
  covStmt(Cov, (CovFileId << 16) | 0xA000u |
                   (static_cast<uint32_t>(FieldType.Kind) << 2) |
                   (FieldType.ArrayDims ? 2u : 0u) | (I.Op & 1u));
  VType VT = typeFromJType(FieldType);
  switch (I.Op) {
  case OP_getstatic:
    push(F, VT);
    break;
  case OP_putstatic: {
    if (VT.isWide())
      popWide(F, VT.Kind);
    else if (VT.isRefLike())
      popRefLike(F);
    else
      popKind(F, VT.Kind);
    break;
  }
  case OP_getfield:
    popRefLike(F);
    push(F, VT);
    break;
  case OP_putfield: {
    if (VT.isWide())
      popWide(F, VT.Kind);
    else if (VT.isRefLike())
      popRefLike(F);
    else
      popKind(F, VT.Kind);
    popRefLike(F);
    break;
  }
  default:
    break;
  }
}

void MethodVerifier::transferInvoke(const Insn &I, Frame &F) {
  COV_STMT(Cov);
  uint16_t Index = static_cast<uint16_t>(I.Operand1);
  CpTag Expected =
      I.Op == OP_invokeinterface ? CpTag::InterfaceMethodref : CpTag::Methodref;
  // HotSpot tolerates InterfaceMethodref for invokevirtual on some paths;
  // we require the canonical tags but accept either ref form for
  // invokespecial/static, matching common leniency.
  if (COV_BRANCH(Cov, !cpTagIs(Index, Expected) &&
                          !cpTagIs(Index, CpTag::InterfaceMethodref) &&
                          !cpTagIs(Index, CpTag::Methodref))) {
    fail("invoke instruction operand is not a method reference");
    return;
  }
  auto Ref = CF.CP.getMemberRef(Index);
  if (!Ref) {
    fail(Ref.error());
    return;
  }
  MethodDescriptor MD;
  if (COV_BRANCH(Cov, !parseMethodDescriptor(Ref->Descriptor, MD))) {
    fail("malformed method descriptor " + Ref->Descriptor);
    return;
  }
  // Per-signature-shape probe: argument count x return kind x invoke
  // kind, the loop/switch structure of real invoke verification.
  covStmt(Cov, (CovFileId << 16) | 0xB000u |
                   (std::min<uint32_t>(
                        static_cast<uint32_t>(MD.Params.size()), 7)
                    << 6) |
                   (static_cast<uint32_t>(MD.ReturnType.Kind) << 2) |
                   (I.Op & 3u));

  // Pop arguments right-to-left, checking each against the declared type.
  for (auto It = MD.Params.rbegin(); It != MD.Params.rend(); ++It) {
    VType Want = typeFromJType(*It);
    if (Want.isWide()) {
      popWide(F, Want.Kind);
    } else if (Want.isRefLike()) {
      VType Got = popRefLike(F);
      if (failed())
        return;
      // Problem 2: strict policies (GIJ) reject arguments whose static
      // type is not assignable to the declared parameter type; HotSpot
      // accepts any reference here.
      if (Policy.StrictInvokeArgTypes && Got.Kind == VKind::Ref &&
          Want.Kind == VKind::Ref) {
        if (COV_BRANCH(Cov,
                       !isRefAssignable(Got.RefName, Want.RefName, Lookup) &&
                           Lookup && Lookup(Got.RefName) &&
                           Lookup(Want.RefName))) {
          fail("incompatible argument type " + Got.RefName +
               " for parameter " + Want.RefName);
          return;
        }
      }
    } else {
      popKind(F, Want.Kind);
    }
    if (failed())
      return;
  }

  // Receiver.
  if (I.Op != OP_invokestatic) {
    VType Receiver = popRefLike(F);
    if (failed())
      return;
    if (I.Op == OP_invokespecial && Ref->Name == "<init>") {
      // Initialize: rewrite the matching uninitialized type everywhere.
      VType Initialized = Receiver.Kind == VKind::UninitThis
                              ? makeRef(CF.ThisClass)
                              : makeRef(Ref->ClassName);
      if (COV_BRANCH(Cov, Receiver.Kind != VKind::Uninit &&
                              Receiver.Kind != VKind::UninitThis &&
                              Receiver.Kind != VKind::Ref)) {
        fail("<init> called on non-object");
        return;
      }
      for (VType &T : F.Locals)
        if (T == Receiver)
          T = Initialized;
      for (VType &T : F.Stack)
        if (T == Receiver)
          T = Initialized;
    } else if (COV_BRANCH(Cov, Receiver.Kind == VKind::Uninit ||
                                   Receiver.Kind == VKind::UninitThis)) {
      fail("method invoked on uninitialized object");
      return;
    }
  }

  if (MD.ReturnType.Kind != TypeKind::Void)
    push(F, typeFromJType(MD.ReturnType));
}

void MethodVerifier::checkReturn(const Insn &I, Frame &F) {
  COV_STMT(Cov);
  switch (I.Op) {
  case OP_return:
    if (COV_BRANCH(Cov, Desc.ReturnType.Kind != TypeKind::Void))
      fail("return in non-void method");
    break;
  case OP_ireturn: {
    popKind(F, VKind::Int);
    bool IntLike = Desc.ReturnType.ArrayDims == 0 &&
                   (Desc.ReturnType.Kind == TypeKind::Int ||
                    Desc.ReturnType.Kind == TypeKind::Boolean ||
                    Desc.ReturnType.Kind == TypeKind::Byte ||
                    Desc.ReturnType.Kind == TypeKind::Char ||
                    Desc.ReturnType.Kind == TypeKind::Short);
    if (COV_BRANCH(Cov, !IntLike))
      fail("ireturn does not match declared return type");
    break;
  }
  case OP_areturn: {
    VType T = popRefLike(F);
    if (failed())
      return;
    bool RefLike = Desc.ReturnType.isReferenceLike();
    if (COV_BRANCH(Cov, !RefLike)) {
      fail("areturn does not match declared return type");
      return;
    }
    if (Policy.StrictInvokeArgTypes && T.Kind == VKind::Ref &&
        Desc.ReturnType.ArrayDims == 0 &&
        Desc.ReturnType.Kind == TypeKind::Reference) {
      if (COV_BRANCH(Cov, !isRefAssignable(T.RefName,
                                           Desc.ReturnType.ClassName,
                                           Lookup) &&
                              Lookup && Lookup(T.RefName) &&
                              Lookup(Desc.ReturnType.ClassName)))
        fail("areturn of incompatible type " + T.RefName);
    }
    break;
  }
  case OP_lreturn:
    popWide(F, VKind::Long);
    if (COV_BRANCH(Cov, Desc.ReturnType.Kind != TypeKind::Long ||
                            Desc.ReturnType.ArrayDims != 0))
      fail("lreturn does not match declared return type");
    break;
  case OP_freturn:
    popKind(F, VKind::Float);
    if (COV_BRANCH(Cov, Desc.ReturnType.Kind != TypeKind::Float ||
                            Desc.ReturnType.ArrayDims != 0))
      fail("freturn does not match declared return type");
    break;
  case OP_dreturn:
    popWide(F, VKind::Double);
    if (COV_BRANCH(Cov, Desc.ReturnType.Kind != TypeKind::Double ||
                            Desc.ReturnType.ArrayDims != 0))
      fail("dreturn does not match declared return type");
    break;
  default:
    break;
  }
}

void MethodVerifier::transfer(const Insn &I, Frame &F,
                              std::vector<uint32_t> &Successors,
                              bool &FallsThrough) {
  FallsThrough = true;
  uint8_t Op = I.Op;

  // Per-opcode statement probe: which handler of the verifier's dispatch
  // switch ran (the analog of statement coverage over HotSpot's
  // verifier.cpp opcode cases).
  covStmt(Cov, (CovFileId << 16) | 0x8000u | Op);

  // Constants.
  if (Op == OP_nop) {
    return;
  }
  if (Op == OP_aconst_null) {
    push(F, makeKind(VKind::Null));
    return;
  }
  if (Op >= OP_iconst_m1 && Op <= OP_iconst_5) {
    push(F, makeKind(VKind::Int));
    return;
  }
  if (Op == OP_lconst_0 || Op == OP_lconst_1) {
    push(F, makeKind(VKind::Long));
    return;
  }
  if (Op >= OP_fconst_0 && Op <= 0x0D) {
    push(F, makeKind(VKind::Float));
    return;
  }
  if (Op == 0x0E || Op == 0x0F) {
    push(F, makeKind(VKind::Double));
    return;
  }
  if (Op == OP_bipush || Op == OP_sipush) {
    push(F, makeKind(VKind::Int));
    return;
  }
  if (Op == OP_ldc || Op == OP_ldc_w || Op == OP_ldc2_w) {
    COV_STMT(Cov);
    uint16_t Index = static_cast<uint16_t>(I.Operand1);
    if (COV_BRANCH(Cov, !CF.CP.isValidIndex(Index))) {
      fail("ldc of invalid constant pool index " + std::to_string(Index));
      return;
    }
    switch (CF.CP.at(Index).Tag) {
    case CpTag::Integer:
      push(F, makeKind(VKind::Int));
      break;
    case CpTag::Float:
      push(F, makeKind(VKind::Float));
      break;
    case CpTag::String:
      push(F, makeRef("java/lang/String"));
      break;
    case CpTag::Class:
      push(F, makeRef("java/lang/Class"));
      break;
    case CpTag::Long:
      if (Op != OP_ldc2_w) {
        fail("ldc of long requires ldc2_w");
        return;
      }
      push(F, makeKind(VKind::Long));
      break;
    case CpTag::Double:
      if (Op != OP_ldc2_w) {
        fail("ldc of double requires ldc2_w");
        return;
      }
      push(F, makeKind(VKind::Double));
      break;
    default:
      fail("ldc of unloadable constant");
      return;
    }
    return;
  }

  // Loads.
  if (Op == OP_iload || (Op >= OP_iload_0 && Op <= OP_iload_3)) {
    uint32_t Slot = Op == OP_iload ? static_cast<uint32_t>(I.Operand1)
                                   : static_cast<uint32_t>(Op - OP_iload_0);
    getLocal(F, Slot, VKind::Int);
    push(F, makeKind(VKind::Int));
    return;
  }
  if (Op == OP_lload || (Op >= 0x1E && Op <= 0x21)) {
    uint32_t Slot =
        Op == OP_lload ? static_cast<uint32_t>(I.Operand1) : Op - 0x1E;
    getLocal(F, Slot, VKind::Long);
    push(F, makeKind(VKind::Long));
    return;
  }
  if (Op == OP_fload || (Op >= 0x22 && Op <= 0x25)) {
    uint32_t Slot =
        Op == OP_fload ? static_cast<uint32_t>(I.Operand1) : Op - 0x22;
    getLocal(F, Slot, VKind::Float);
    push(F, makeKind(VKind::Float));
    return;
  }
  if (Op == OP_dload || (Op >= 0x26 && Op <= 0x29)) {
    uint32_t Slot =
        Op == OP_dload ? static_cast<uint32_t>(I.Operand1) : Op - 0x26;
    getLocal(F, Slot, VKind::Double);
    push(F, makeKind(VKind::Double));
    return;
  }
  if (Op == OP_aload || (Op >= OP_aload_0 && Op <= OP_aload_3)) {
    uint32_t Slot = Op == OP_aload ? static_cast<uint32_t>(I.Operand1)
                                   : static_cast<uint32_t>(Op - OP_aload_0);
    VType T = getLocal(F, Slot, VKind::Ref);
    push(F, T);
    return;
  }

  // Array loads.
  if (Op >= OP_iaload && Op <= 0x35) {
    COV_STMT(Cov);
    popKind(F, VKind::Int); // index
    popRefLike(F);          // array
    switch (Op) {
    case OP_iaload:
    case 0x33: // baload
    case 0x34: // caload
    case 0x35: // saload
      push(F, makeKind(VKind::Int));
      break;
    case 0x2F:
      push(F, makeKind(VKind::Long));
      break;
    case 0x30:
      push(F, makeKind(VKind::Float));
      break;
    case 0x31:
      push(F, makeKind(VKind::Double));
      break;
    case OP_aaload:
      push(F, makeRef("java/lang/Object"));
      break;
    }
    return;
  }

  // Stores.
  if (Op == OP_istore || (Op >= OP_istore_0 && Op <= OP_istore_3)) {
    uint32_t Slot = Op == OP_istore ? static_cast<uint32_t>(I.Operand1)
                                    : static_cast<uint32_t>(Op - OP_istore_0);
    popKind(F, VKind::Int);
    if (!failed())
      setLocal(F, Slot, makeKind(VKind::Int));
    return;
  }
  if (Op == OP_lstore || (Op >= 0x3F && Op <= 0x42)) {
    uint32_t Slot =
        Op == OP_lstore ? static_cast<uint32_t>(I.Operand1) : Op - 0x3F;
    popWide(F, VKind::Long);
    if (!failed())
      setLocal(F, Slot, makeKind(VKind::Long));
    return;
  }
  if (Op == OP_fstore || (Op >= 0x43 && Op <= 0x46)) {
    uint32_t Slot =
        Op == OP_fstore ? static_cast<uint32_t>(I.Operand1) : Op - 0x43;
    popKind(F, VKind::Float);
    if (!failed())
      setLocal(F, Slot, makeKind(VKind::Float));
    return;
  }
  if (Op == OP_dstore || (Op >= 0x47 && Op <= 0x4A)) {
    uint32_t Slot =
        Op == OP_dstore ? static_cast<uint32_t>(I.Operand1) : Op - 0x47;
    popWide(F, VKind::Double);
    if (!failed())
      setLocal(F, Slot, makeKind(VKind::Double));
    return;
  }
  if (Op == OP_astore || (Op >= OP_astore_0 && Op <= OP_astore_3)) {
    uint32_t Slot = Op == OP_astore ? static_cast<uint32_t>(I.Operand1)
                                    : static_cast<uint32_t>(Op - OP_astore_0);
    VType T = popRefLike(F);
    if (!failed())
      setLocal(F, Slot, T);
    return;
  }

  // Array stores.
  if (Op >= OP_iastore && Op <= 0x56) {
    COV_STMT(Cov);
    switch (Op) {
    case OP_iastore:
    case 0x54: // bastore
    case 0x55: // castore
    case 0x56: // sastore
      popKind(F, VKind::Int);
      break;
    case 0x50:
      popWide(F, VKind::Long);
      break;
    case 0x51:
      popKind(F, VKind::Float);
      break;
    case 0x52:
      popWide(F, VKind::Double);
      break;
    case OP_aastore:
      popRefLike(F);
      break;
    }
    popKind(F, VKind::Int); // index
    popRefLike(F);          // array
    return;
  }

  // Stack manipulation.
  switch (Op) {
  case OP_pop:
    pop(F);
    return;
  case OP_pop2:
    pop(F);
    pop(F);
    return;
  case OP_dup: {
    VType T = pop(F);
    if (failed())
      return;
    if (COV_BRANCH(Cov, T.Kind == VKind::Top)) {
      fail("dup of unusable value");
      return;
    }
    push(F, T);
    push(F, T);
    return;
  }
  case OP_dup_x1: {
    VType A = pop(F);
    VType B = pop(F);
    if (failed())
      return;
    push(F, A);
    push(F, B);
    push(F, A);
    return;
  }
  case OP_swap: {
    VType A = pop(F);
    VType B = pop(F);
    if (failed())
      return;
    push(F, A);
    push(F, B);
    return;
  }
  default:
    break;
  }

  // Int arithmetic (two-operand): iadd..irem column 0 (0x60..0x70),
  // shifts, and bitwise ops. The negation family (0x74..0x77) shares
  // column 0 but is unary and handled below.
  if ((Op >= OP_iadd && Op <= OP_irem && ((Op - OP_iadd) % 4 == 0)) ||
      Op == OP_ishl || Op == OP_ishr || Op == 0x7C /*iushr*/ ||
      Op == OP_iand || Op == OP_ior || Op == OP_ixor) {
    popKind(F, VKind::Int);
    popKind(F, VKind::Int);
    push(F, makeKind(VKind::Int));
    return;
  }
  if (Op == OP_ineg) {
    popKind(F, VKind::Int);
    push(F, makeKind(VKind::Int));
    return;
  }
  if (Op == OP_iinc) {
    getLocal(F, static_cast<uint32_t>(I.Operand1), VKind::Int);
    return;
  }
  // Long/float/double arithmetic: group by operand column.
  if (Op >= OP_iadd && Op <= 0x83) {
    int Column = (Op - OP_iadd) % 4;
    VKind K = Column == 1   ? VKind::Long
              : Column == 2 ? VKind::Float
                            : VKind::Double;
    bool Unary = (Op >= 0x74 && Op <= 0x77); // ineg..dneg
    if (K == VKind::Long || K == VKind::Double) {
      popWide(F, K);
      if (!Unary)
        popWide(F, K);
    } else {
      popKind(F, K);
      if (!Unary)
        popKind(F, K);
    }
    push(F, makeKind(K));
    return;
  }
  // Conversions (i2l .. i2s) and comparisons (lcmp..dcmpg): modeled
  // coarsely -- pop per source kind, push per destination kind.
  if (Op >= OP_i2l && Op <= 0x93) {
    static const VKind Src[] = {VKind::Int,    VKind::Int,    VKind::Int,
                                VKind::Long,   VKind::Long,   VKind::Long,
                                VKind::Float,  VKind::Float,  VKind::Float,
                                VKind::Double, VKind::Double, VKind::Double,
                                VKind::Int,    VKind::Int,    VKind::Int};
    static const VKind Dst[] = {VKind::Long,  VKind::Float, VKind::Double,
                                VKind::Int,   VKind::Float, VKind::Double,
                                VKind::Int,   VKind::Long,  VKind::Double,
                                VKind::Int,   VKind::Long,  VKind::Float,
                                VKind::Int,   VKind::Int,   VKind::Int};
    unsigned Idx = Op - OP_i2l;
    VKind S = Src[Idx], D = Dst[Idx];
    if (S == VKind::Long || S == VKind::Double)
      popWide(F, S);
    else
      popKind(F, S);
    push(F, makeKind(D));
    return;
  }
  if (Op >= 0x94 && Op <= 0x98) { // lcmp..dcmpg
    VKind K = Op == 0x94 ? VKind::Long
                         : (Op <= 0x96 ? VKind::Float : VKind::Double);
    if (K == VKind::Long) {
      popWide(F, K);
      popWide(F, K);
    } else {
      popKind(F, K);
      popKind(F, K);
    }
    push(F, makeKind(VKind::Int));
    return;
  }

  // Branches.
  if (Op >= OP_ifeq && Op <= OP_ifle) {
    popKind(F, VKind::Int);
    Successors.push_back(static_cast<uint32_t>(I.Operand1));
    return;
  }
  if (Op >= OP_if_icmpeq && Op <= OP_if_icmple) {
    popKind(F, VKind::Int);
    popKind(F, VKind::Int);
    Successors.push_back(static_cast<uint32_t>(I.Operand1));
    return;
  }
  if (Op == OP_if_acmpeq || Op == OP_if_acmpne) {
    popRefLike(F);
    popRefLike(F);
    Successors.push_back(static_cast<uint32_t>(I.Operand1));
    return;
  }
  if (Op == OP_ifnull || Op == OP_ifnonnull) {
    popRefLike(F);
    Successors.push_back(static_cast<uint32_t>(I.Operand1));
    return;
  }
  if (Op == OP_goto || Op == OP_goto_w) {
    Successors.push_back(static_cast<uint32_t>(I.Operand1));
    FallsThrough = false;
    return;
  }
  if (Op == OP_tableswitch || Op == OP_lookupswitch) {
    popKind(F, VKind::Int);
    // Conservative: default target only (our assembler never emits
    // switches; decoded mutants with switches verify their default arm).
    Successors.push_back(static_cast<uint32_t>(I.Operand1));
    FallsThrough = false;
    return;
  }
  if (Op == OP_jsr || Op == OP_jsr_w || Op == OP_ret) {
    // jsr/ret subroutines are legacy; reject like modern verifiers.
    fail("jsr/ret not supported by this verifier");
    return;
  }

  // Returns.
  if (Op >= OP_ireturn && Op <= OP_return) {
    checkReturn(I, F);
    FallsThrough = false;
    return;
  }

  // Field and invoke instructions.
  if (Op >= OP_getstatic && Op <= OP_putfield) {
    transferField(I, F);
    return;
  }
  if (Op >= OP_invokevirtual && Op <= OP_invokeinterface) {
    transferInvoke(I, F);
    return;
  }
  if (Op == OP_invokedynamic) {
    fail("invokedynamic not supported by this verifier");
    return;
  }

  // Object creation and checks.
  switch (Op) {
  case OP_new: {
    COV_STMT(Cov);
    uint16_t Index = static_cast<uint16_t>(I.Operand1);
    if (COV_BRANCH(Cov, !cpTagIs(Index, CpTag::Class))) {
      fail("new of non-class constant");
      return;
    }
    VType T;
    T.Kind = VKind::Uninit;
    T.NewOffset = I.Offset;
    push(F, T);
    return;
  }
  case OP_newarray:
    popKind(F, VKind::Int);
    push(F, makeRef("[I"));
    return;
  case OP_anewarray: {
    uint16_t Index = static_cast<uint16_t>(I.Operand1);
    if (COV_BRANCH(Cov, !cpTagIs(Index, CpTag::Class))) {
      fail("anewarray of non-class constant");
      return;
    }
    popKind(F, VKind::Int);
    auto Name = CF.CP.getClassName(Index);
    push(F, makeRef("[L" + (Name ? *Name : "java/lang/Object") + ";"));
    return;
  }
  case OP_arraylength:
    popRefLike(F);
    push(F, makeKind(VKind::Int));
    return;
  case OP_athrow:
    popRefLike(F);
    FallsThrough = false;
    return;
  case OP_checkcast: {
    uint16_t Index = static_cast<uint16_t>(I.Operand1);
    if (COV_BRANCH(Cov, !cpTagIs(Index, CpTag::Class))) {
      fail("checkcast of non-class constant");
      return;
    }
    popRefLike(F);
    auto Name = CF.CP.getClassName(Index);
    push(F, makeRef(Name ? *Name : "java/lang/Object"));
    return;
  }
  case OP_instanceof: {
    uint16_t Index = static_cast<uint16_t>(I.Operand1);
    if (COV_BRANCH(Cov, !cpTagIs(Index, CpTag::Class))) {
      fail("instanceof of non-class constant");
      return;
    }
    popRefLike(F);
    push(F, makeKind(VKind::Int));
    return;
  }
  case OP_monitorenter:
  case OP_monitorexit:
    popRefLike(F);
    return;
  case OP_multianewarray: {
    for (int Dim = 0; Dim != I.Operand2; ++Dim)
      popKind(F, VKind::Int);
    push(F, makeRef("java/lang/Object"));
    return;
  }
  default:
    break;
  }

  fail("unsupported opcode " + opcodeName(Op));
}

bool MethodVerifier::stackEffect(const Insn &I, int &Pops, int &Pushes) {
  // The per-opcode table lives in jvm/VerifierLattice.cpp, shared with
  // the static analyzer's depth walk.
  return insnStackEffect(CF, I, Pops, Pushes);
}

void MethodVerifier::runDepthOnly() {
  // Entry condition: the arguments must fit in max_locals.
  MethodDescriptor MD;
  if (COV_BRANCH(Cov, !parseMethodDescriptor(M.Descriptor, MD))) {
    fail("malformed method descriptor " + M.Descriptor);
    return;
  }
  int ArgSlots = MD.argSlots() + (M.isStatic() ? 0 : 1);
  if (COV_BRANCH(Cov, ArgSlots > M.Code->MaxLocals)) {
    fail("arguments exceed max_locals");
    return;
  }

  std::map<uint32_t, int> DepthAt;
  std::deque<uint32_t> Worklist;
  DepthAt[0] = 0;
  Worklist.push_back(0);
  for (const ExceptionTableEntry &E : M.Code->ExceptionTable) {
    DepthAt[E.HandlerPc] = 1;
    Worklist.push_back(E.HandlerPc);
  }

  size_t Steps = 0;
  while (!Worklist.empty() && !failed()) {
    if (++Steps > 4 * Insns.size() + 64)
      return; // Converged enough; the pre-verifier is best-effort.
    uint32_t Offset = Worklist.front();
    Worklist.pop_front();
    const Insn &I = Insns[Offset];
    int Pops = 0, Pushes = 0;
    if (!stackEffect(I, Pops, Pushes))
      return; // Unknown effect: give up silently (lazy pass catches it).
    int Depth = DepthAt[Offset];
    if (COV_BRANCH(Cov, Depth < Pops)) {
      fail("stack shape inconsistent");
      return;
    }
    int Next = Depth - Pops + Pushes;
    if (COV_BRANCH(Cov, Next > M.Code->MaxStack)) {
      fail("operand stack overflow (pre-verifier)");
      return;
    }
    // Local-index bounds for the canonical local ops.
    bool LocalOp = (I.Op >= OP_iload && I.Op <= OP_aload) ||
                   (I.Op >= OP_istore && I.Op <= OP_astore) ||
                   I.Op == OP_iinc;
    if (LocalOp &&
        COV_BRANCH(Cov, I.Operand1 >= M.Code->MaxLocals)) {
      fail("local variable index out of range (pre-verifier)");
      return;
    }

    auto propagate = [&](uint32_t Succ) {
      auto It = DepthAt.find(Succ);
      if (It == DepthAt.end()) {
        DepthAt[Succ] = Next;
        Worklist.push_back(Succ);
      } else if (COV_BRANCH(Cov, It->second != Next)) {
        fail("stack shape inconsistent");
      }
    };
    bool IsBranch = (I.Op >= OP_ifeq && I.Op <= OP_jsr) ||
                    I.Op == OP_ifnull || I.Op == OP_ifnonnull ||
                    I.Op == OP_goto_w;
    bool Terminates = (I.Op >= OP_ireturn && I.Op <= OP_return) ||
                      I.Op == OP_athrow || I.Op == OP_goto ||
                      I.Op == OP_goto_w || I.Op == OP_tableswitch ||
                      I.Op == OP_lookupswitch;
    if (IsBranch)
      propagate(static_cast<uint32_t>(I.Operand1));
    if (!Terminates) {
      uint32_t FallThrough = Offset + I.Length;
      if (Insns.count(FallThrough))
        propagate(FallThrough);
      else if (COV_BRANCH(Cov, true)) {
        fail("execution falls off the end of the code");
        return;
      }
    }
  }
}

std::optional<CheckFailure> MethodVerifier::run() {
  COV_STMT(Cov);

  if (COV_BRANCH(Cov, Code.empty())) {
    fail("code array is empty");
    return Failure;
  }
  if (COV_BRANCH(Cov, !parseMethodDescriptor(M.Descriptor, Desc))) {
    fail("malformed method descriptor " + M.Descriptor);
    return Failure;
  }

  // Pass 1: decode all instructions; record valid instruction starts.
  {
    InsnDecoder Decoder(Code);
    Insn I;
    while (Decoder.decodeNext(I))
      Insns[I.Offset] = I;
    if (COV_BRANCH(Cov, !Decoder.valid())) {
      fail("malformed bytecode at offset " +
           std::to_string(Decoder.position()));
      return Failure;
    }
  }

  // Pass 2: validate branch targets and exception table entries.
  for (const auto &[Offset, I] : Insns) {
    bool IsBranch = (I.Op >= OP_ifeq && I.Op <= OP_jsr) ||
                    I.Op == OP_ifnull || I.Op == OP_ifnonnull ||
                    I.Op == OP_goto_w || I.Op == OP_jsr_w ||
                    I.Op == OP_tableswitch || I.Op == OP_lookupswitch;
    if (IsBranch &&
        COV_BRANCH(Cov, I.Operand1 < 0 ||
                            !Insns.count(static_cast<uint32_t>(I.Operand1)))) {
      fail("branch target " + std::to_string(I.Operand1) +
           " is not an instruction start");
      return Failure;
    }
  }
  for (const ExceptionTableEntry &E : M.Code->ExceptionTable) {
    if (COV_BRANCH(Cov, !Insns.count(E.HandlerPc) ||
                            E.StartPc >= E.EndPc ||
                            E.EndPc > Code.size() ||
                            !Insns.count(E.StartPc))) {
      fail("malformed exception table entry");
      return Failure;
    }
  }

  if (StructuralOnly) {
    // The pre-verifier: a depth-only stack dataflow (J9 validates stack
    // shapes eagerly even though full type checking waits for the first
    // invocation). Catches max_stack/max_locals violations and
    // inconsistent depths at joins with the classic J9 message.
    runDepthOnly();
    return Failure;
  }

  // Initial frame from the descriptor.
  Frame Entry;
  Entry.Locals.resize(M.Code->MaxLocals, makeKind(VKind::Top));
  uint32_t Slot = 0;
  auto placeLocal = [&](VType T) {
    uint32_t Width = T.isWide() ? 2 : 1;
    if (Slot + Width > Entry.Locals.size()) {
      fail("arguments exceed max_locals");
      return;
    }
    Entry.Locals[Slot] = std::move(T);
    Slot += Width;
  };
  if (!M.isStatic()) {
    if (M.Name == "<init>" && CF.ThisClass != "java/lang/Object")
      placeLocal(makeKind(VKind::UninitThis));
    else
      placeLocal(makeRef(CF.ThisClass));
  }
  for (const JType &P : Desc.Params) {
    if (failed())
      return Failure;
    placeLocal(typeFromJType(P));
  }
  if (failed())
    return Failure;

  InFrames[0] = Entry;
  std::deque<uint32_t> Worklist{0};

  size_t Steps = 0;
  const size_t MaxSteps = 20000 + 64 * Insns.size();
  while (!Worklist.empty()) {
    if (++Steps > MaxSteps) {
      fail("verification did not converge");
      return Failure;
    }
    uint32_t Offset = Worklist.front();
    Worklist.pop_front();
    Frame F = InFrames[Offset];
    const Insn &I = Insns[Offset];

    std::vector<uint32_t> Successors;
    bool FallsThrough = true;
    transfer(I, F, Successors, FallsThrough);
    if (failed())
      return Failure;

    if (FallsThrough) {
      uint32_t Next = Offset + I.Length;
      if (COV_BRANCH(Cov, Next >= Code.size() && !Insns.count(Next))) {
        fail("execution falls off the end of the code");
        return Failure;
      }
      Successors.push_back(Next);
    }

    // Exception edges: every instruction inside a protected region can
    // transfer to the handler with stack = [exception].
    for (const ExceptionTableEntry &E : M.Code->ExceptionTable) {
      if (Offset < E.StartPc || Offset >= E.EndPc)
        continue;
      Frame HandlerFrame;
      HandlerFrame.Locals = F.Locals;
      HandlerFrame.Stack.push_back(makeRef(
          E.CatchType.empty() ? "java/lang/Throwable" : E.CatchType));
      auto It = InFrames.find(E.HandlerPc);
      if (It == InFrames.end()) {
        InFrames[E.HandlerPc] = HandlerFrame;
        Worklist.push_back(E.HandlerPc);
      } else {
        bool Changed = false;
        if (!mergeFrames(HandlerFrame, It->second, Changed))
          return Failure;
        if (Changed)
          Worklist.push_back(E.HandlerPc);
      }
    }

    for (uint32_t Succ : Successors) {
      if (COV_BRANCH(Cov, !Insns.count(Succ))) {
        fail("control transfers to offset " + std::to_string(Succ) +
             " which is not an instruction start");
        return Failure;
      }
      auto It = InFrames.find(Succ);
      if (It == InFrames.end()) {
        InFrames[Succ] = F;
        Worklist.push_back(Succ);
      } else {
        bool Changed = false;
        if (!mergeFrames(F, It->second, Changed))
          return Failure;
        if (Changed)
          Worklist.push_back(Succ);
      }
    }
  }

  return Failure;
}

} // namespace

std::optional<CheckFailure>
classfuzz::verifyMethod(const ClassFile &CF, const MethodInfo &Method,
                        const JvmPolicy &Policy, const ClassLookupFn &Lookup,
                        CoverageRecorder *Cov) {
  if (!Method.Code)
    return std::nullopt; // Abstract/native methods verify trivially.
  return MethodVerifier(CF, Method, Policy, Lookup, Cov).run();
}

std::optional<CheckFailure>
classfuzz::verifyMethodStructural(const ClassFile &CF,
                                  const MethodInfo &Method,
                                  const JvmPolicy &Policy,
                                  CoverageRecorder *Cov) {
  if (!Method.Code)
    return std::nullopt;
  ClassLookupFn NoLookup;
  return MethodVerifier(CF, Method, Policy, NoLookup, Cov,
                        /*StructuralOnly=*/true)
      .run();
}
