//===- jvm/ClassPath.cpp --------------------------------------------------===//

#include "jvm/ClassPath.h"

#include "support/Hashing.h"

using namespace classfuzz;

void ClassPath::add(const std::string &InternalName, Bytes Data) {
  Classes[InternalName] = std::move(Data);
}

const Bytes *ClassPath::lookup(const std::string &InternalName) const {
  auto It = Classes.find(InternalName);
  return It == Classes.end() ? nullptr : &It->second;
}

std::vector<std::string> ClassPath::names() const {
  std::vector<std::string> Out;
  Out.reserve(Classes.size());
  for (const auto &[Name, Data] : Classes)
    Out.push_back(Name);
  return Out;
}

uint64_t ClassPath::fingerprint() const {
  Hasher H;
  for (const auto &[Name, Data] : Classes) {
    H.addString(Name);
    H.addU64(hashBytes(Data));
  }
  return H.value();
}

ClassPath ClassPath::overlaidWith(const ClassPath &Overlay) const {
  ClassPath Out = *this;
  for (const auto &[Name, Data] : Overlay.Classes)
    Out.Classes[Name] = Data;
  return Out;
}
