//===- jvm/ClassPath.cpp --------------------------------------------------===//

#include "jvm/ClassPath.h"

#include "support/Hashing.h"

using namespace classfuzz;

namespace {

/// Chains deeper than this are flattened on freeze(): lookups walk the
/// chain, so depth trades per-freeze flatten cost against per-lookup
/// cost. Flattening every 16 layers keeps both O(small).
constexpr size_t MaxLayerDepth = 16;

} // namespace

void ClassPath::add(const std::string &InternalName, Bytes Data) {
  if (!has(InternalName))
    ++NumDistinct;
  Overlay[InternalName] = std::move(Data);
}

const Bytes *ClassPath::lookup(const std::string &InternalName) const {
  auto It = Overlay.find(InternalName);
  if (It != Overlay.end())
    return &It->second;
  for (const Layer *L = Base.get(); L; L = L->Parent.get()) {
    auto LIt = L->Classes.find(InternalName);
    if (LIt != L->Classes.end())
      return &LIt->second;
  }
  return nullptr;
}

std::map<std::string, const Bytes *> ClassPath::mergedView() const {
  std::map<std::string, const Bytes *> Out;
  // Oldest layer first so newer entries overwrite older ones.
  std::vector<const Layer *> Layers;
  for (const Layer *L = Base.get(); L; L = L->Parent.get())
    Layers.push_back(L);
  for (auto It = Layers.rbegin(); It != Layers.rend(); ++It)
    for (const auto &[Name, Data] : (*It)->Classes)
      Out[Name] = &Data;
  for (const auto &[Name, Data] : Overlay)
    Out[Name] = &Data;
  return Out;
}

std::vector<std::string> ClassPath::names() const {
  std::vector<std::string> Out;
  Out.reserve(NumDistinct);
  for (const auto &[Name, Data] : mergedView())
    Out.push_back(Name);
  return Out;
}

uint64_t ClassPath::fingerprint() const {
  Hasher H;
  for (const auto &[Name, Data] : mergedView()) {
    H.addString(Name);
    H.addU64(hashBytes(*Data));
  }
  return H.value();
}

ClassPath ClassPath::overlaidWith(const ClassPath &Overlay) const {
  ClassPath Out = *this;
  for (const auto &[Name, Data] : Overlay.mergedView())
    Out.add(Name, *Data);
  return Out;
}

void ClassPath::freeze() {
  if (Overlay.empty())
    return;
  size_t Depth = Base ? Base->Depth + 1 : 1;
  if (Depth > MaxLayerDepth) {
    // Flatten: one layer holding the whole merged view.
    auto Flat = std::make_shared<Layer>();
    for (const auto &[Name, Data] : mergedView())
      Flat->Classes[Name] = *Data;
    Base = std::move(Flat);
  } else {
    auto Top = std::make_shared<Layer>();
    Top->Classes = std::move(Overlay);
    Top->Parent = Base;
    Top->Depth = Depth;
    Base = std::move(Top);
  }
  Overlay.clear();
}

size_t ClassPath::layerDepth() const { return Base ? Base->Depth : 0; }
