//===- jvm/Predecode.h - Lowered instruction stream for the fast tiers ---===//
//
// Part of classfuzz-cpp (PLDI 2016 classfuzz reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pre-decoder lowers a method's bytecode once into a dense, cached
/// instruction stream shared by the threaded and baseline tiers:
///
///  * one PInsn per instruction, in code order, with the opcode mapped
///    to a dense handler token;
///  * branch targets resolved from byte offsets to instruction indices
///    (an unresolvable target lowers to InvalidIndex, which the runtime
///    turns into the same "execution fell off the code" VerifyError the
///    switch interpreter raises);
///  * constant-pool member/class references pre-fetched into side
///    tables, with resolution *errors* recorded but not raised -- every
///    abort still happens at execution time, in the same order the
///    switch interpreter would raise it.
///
/// The lowering is purely syntactic: it never touches the class
/// registry, the heap, or coverage, so a predecoded method can be cached
/// per (Vm, method) and shared by every invocation.
///
//===----------------------------------------------------------------------===//

#ifndef CLASSFUZZ_JVM_PREDECODE_H
#define CLASSFUZZ_JVM_PREDECODE_H

#include "classfile/ClassFile.h"
#include "classfile/ConstantPool.h"
#include "classfile/Descriptor.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace classfuzz {

/// Dense dispatch tokens. The threaded interpreter indexes its goto
/// table with these; the baseline tier binds one thunk per token. Family
/// handlers (H_IArith, H_Conv, ...) disambiguate on PInsn::Op exactly
/// like the switch interpreter's range cases.
enum Handler : uint8_t {
  H_Nop,
  H_AconstNull,
  H_IPush, ///< iconst_*/bipush/sipush; A = value.
  H_LPush, ///< lconst_*; A = value.
  H_FPush, ///< fconst_*; A = value.
  H_DPush, ///< dconst_*; A = value.
  H_Ldc,   ///< ldc/ldc_w/ldc2_w; A = constant pool index.
  H_Iinc,  ///< A = slot, B = delta.
  H_Goto,
  H_Return,  ///< return.
  H_VReturn, ///< [ilfda]return.
  H_Athrow,
  H_Pop,
  H_Pop2,
  H_Dup,
  H_DupX1,
  H_Swap,
  H_ArrayLength,
  H_NewArray,
  H_ANewArray, ///< A = class site index.
  H_ALoad,     ///< iaload/aaload.
  H_AStore,    ///< iastore/aastore.
  H_New,       ///< A = class site index.
  H_Checkcast, ///< A = class site index.
  H_InstanceOf, ///< A = class site index.
  H_Monitor,
  H_GetStatic, ///< A = member site index.
  H_PutStatic, ///< A = member site index.
  H_GetField,  ///< A = member site index.
  H_PutField,  ///< A = member site index.
  H_Invoke,    ///< invoke{static,virtual,special,interface}; A = member site.
  H_Load,      ///< [ilfda]load and short forms; A = slot.
  H_Store,     ///< [ilfda]store and short forms; A = slot.
  H_IArith,    ///< iadd..ixor family; Op disambiguates.
  H_INeg,
  H_Conv, ///< 0x85..0x93 conversions; Op disambiguates.
  H_If,   ///< ifeq..ifle; Op disambiguates.
  H_IfICmp,
  H_IfACmp,
  H_IfNull,
  H_Switch, ///< tableswitch/lookupswitch -> default target.
  H_Unsupported,
  NumHandlers,
};

/// Instruction index marking "no valid target": jumping or falling
/// through to it reproduces the switch interpreter's fell-off-the-code
/// VerifyError.
constexpr uint32_t InvalidInsnIndex = 0xFFFFFFFFu;

/// One lowered instruction.
struct PInsn {
  uint8_t Op = 0;      ///< Original opcode (probes + family dispatch).
  uint8_t Handler = H_Nop;
  uint32_t Offset = 0; ///< Byte offset (exception-table matching).
  int32_t A = 0;       ///< Value / slot / side-table index.
  int32_t B = 0;       ///< Secondary operand (iinc delta).
  uint32_t Target = InvalidInsnIndex; ///< Branch target (insn index).
};

/// A pre-fetched constant-pool member reference (field or method site).
/// Errors are deferred: the site records what the switch interpreter
/// would abort with, and the tier raises it when the site executes.
struct MemberSite {
  bool Ok = false;
  std::string Error; ///< getMemberRef failure message when !Ok.
  ConstantPool::MemberRef Ref;
  bool DescOk = false;    ///< Invoke sites: descriptor parsed.
  MethodDescriptor Desc;  ///< Invoke sites only.
};

/// A pre-fetched constant-pool class reference.
struct ClassSite {
  bool Ok = false;
  std::string Name;
};

/// The lowered form of one method, shared by all invocations.
struct PredecodedMethod {
  /// False when the decoder rejected the bytecode; execution must abort
  /// with the switch interpreter's "malformed bytecode reached
  /// execution" VerifyError.
  bool Valid = false;
  std::vector<PInsn> Insns;
  std::vector<MemberSite> MemberSites;
  std::vector<ClassSite> ClassSites;
  /// Instruction starts, for exception-handler entry (byte offset ->
  /// instruction index).
  std::map<uint32_t, uint32_t> OffsetToIndex;

  uint32_t indexOfOffset(uint32_t Offset) const {
    auto It = OffsetToIndex.find(Offset);
    return It == OffsetToIndex.end() ? InvalidInsnIndex : It->second;
  }
};

/// Lowers \p M (a method of \p CF) once. Never fails: malformed input
/// yields Valid == false for the runtime to report.
PredecodedMethod predecodeMethod(const ClassFile &CF, const MethodInfo &M);

} // namespace classfuzz

#endif // CLASSFUZZ_JVM_PREDECODE_H
