//===- jvm/Verifier.h - Dataflow bytecode verifier -----------------------===//
//
// Part of classfuzz-cpp (PLDI 2016 classfuzz reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A type-inference bytecode verifier in the style of JVMS §4.10.2: a
/// worklist dataflow over the instructions of one method, tracking a
/// typed operand stack and local-variable frame, merging frames at join
/// points, and rejecting ill-typed code with VerifyError. Policy knobs
/// reproduce the paper's Problem 2 differences:
///
///  * CheckUninitializedMerge -- GIJ reports a VerifyError when
///    initialized and uninitialized types merge; HotSpot does not.
///  * StrictInvokeArgTypes -- GIJ flags reference arguments that are not
///    assignable to the declared parameter type (the unsafe-cast classes
///    like M1433982529); HotSpot accepts any reference.
///
//===----------------------------------------------------------------------===//

#ifndef CLASSFUZZ_JVM_VERIFIER_H
#define CLASSFUZZ_JVM_VERIFIER_H

#include "classfile/ClassFile.h"
#include "coverage/Tracefile.h"
#include "jvm/FormatChecker.h"
#include "jvm/Policy.h"

#include <functional>
#include <optional>

namespace classfuzz {

/// Hierarchy oracle: returns the parsed classfile for an internal name,
/// or nullptr when the class is not on the class path. The verifier is
/// deliberately lenient about unknown classes (real JVMs resolve lazily).
using ClassLookupFn = std::function<const ClassFile *(const std::string &)>;

/// Verifies one method's bytecode. Returns the VerifyError to raise, or
/// nullopt when the method passes. Methods without code verify trivially.
std::optional<CheckFailure> verifyMethod(const ClassFile &CF,
                                         const MethodInfo &Method,
                                         const JvmPolicy &Policy,
                                         const ClassLookupFn &Lookup,
                                         CoverageRecorder *Cov);

/// The structural subset of verification only: instruction decoding,
/// branch-target validity, exception-table sanity -- no type dataflow.
/// Lazy-verification profiles (J9) run this for every method at link
/// time (Policy.StructuralVerifyOnLink).
std::optional<CheckFailure>
verifyMethodStructural(const ClassFile &CF, const MethodInfo &Method,
                       const JvmPolicy &Policy, CoverageRecorder *Cov);

/// True when \p Sub is assignable to \p Super under the hierarchy visible
/// through \p Lookup (reflexive; walks superclasses and interfaces;
/// unknown classes are treated as assignable-to-Object only).
bool isRefAssignable(const std::string &Sub, const std::string &Super,
                     const ClassLookupFn &Lookup);

} // namespace classfuzz

#endif // CLASSFUZZ_JVM_VERIFIER_H
