//===- jvm/ExecEngine.h - Tiered bytecode execution interface ------------===//
//
// Part of classfuzz-cpp (PLDI 2016 classfuzz reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The execution-engine interface behind which all bytecode dispatch
/// lives (DESIGN.md §13). A Vm owns exactly one engine, selected by its
/// policy's ExecTier:
///
///  * SwitchEngine   -- the legacy per-invoke-decoding switch interpreter
///                      (Interp.cpp), kept as the semantic baseline;
///  * ThreadedEngine -- token-threaded dispatch over the shared
///                      predecoded instruction stream (ThreadedInterp.cpp);
///  * BaselineEngine -- the baseline template tier: per-method thunk
///                      arrays with inline caches, in a bounded LRU code
///                      cache (BaselineTier.h).
///
/// Contract: for any (policy, environment, class) the three tiers
/// produce identical JvmResult, abort phase/kind, and coverage traces.
/// The step budget is charged exactly once per executed instruction in
/// every tier, so a mutant cannot dodge MaxInterpSteps by tiering up.
///
//===----------------------------------------------------------------------===//

#ifndef CLASSFUZZ_JVM_EXECENGINE_H
#define CLASSFUZZ_JVM_EXECENGINE_H

#include "jvm/ExecTier.h"
#include "jvm/Vm.h"

#include <cstdint>
#include <memory>

namespace classfuzz {

/// Counters of the baseline tier's code cache and inline caches. Local
/// to one engine (one Vm); published to the global jit.* telemetry
/// counters at engine teardown unless the policy defers that to a
/// campaign commit stage (JvmPolicy::JitTelemetry).
struct JitStats {
  uint64_t Compiles = 0;  ///< Methods compiled to thunk arrays.
  uint64_t CacheHits = 0; ///< Invocations served from the code cache.
  uint64_t Evictions = 0; ///< LRU evictions (capacity pressure).
  uint64_t IcHits = 0;    ///< Inline-cache hits (field/method sites).
  uint64_t IcMisses = 0;  ///< Inline-cache misses (slow-path resolutions).

  void merge(const JitStats &O) {
    Compiles += O.Compiles;
    CacheHits += O.CacheHits;
    Evictions += O.Evictions;
    IcHits += O.IcHits;
    IcMisses += O.IcMisses;
  }
  /// Adds these stats to the global jit.* telemetry counters (no-op when
  /// telemetry is disabled).
  void publish() const;
};

/// One bytecode execution pipeline bound to a Vm.
class ExecEngine {
public:
  explicit ExecEngine(Vm &VM) : VM(VM) {}
  virtual ~ExecEngine();

  ExecEngine(const ExecEngine &) = delete;
  ExecEngine &operator=(const ExecEngine &) = delete;

  virtual ExecTier tier() const = 0;

  /// Invokes \p M with \p Args; places the return value in \p Ret.
  /// Returns false when an exception is pending or the VM aborted --
  /// the same contract the interpreter always had.
  virtual bool invoke(Vm::LoadedClass &LC, const MethodInfo &M,
                      std::vector<Value> Args, Value &Ret) = 0;

  /// Baseline tier's code-cache statistics; nullptr for tiers without a
  /// code cache.
  virtual const JitStats *jitStats() const { return nullptr; }

protected:
  Vm &VM;
};

/// Builds the engine for \p Tier, bound to \p VM.
std::unique_ptr<ExecEngine> makeExecEngine(Vm &VM, ExecTier Tier);

} // namespace classfuzz

#endif // CLASSFUZZ_JVM_EXECENGINE_H
