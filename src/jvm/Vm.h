//===- jvm/Vm.h - The mini JVM: startup pipeline + execution engine ------===//
//
// Part of classfuzz-cpp (PLDI 2016 classfuzz reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Vm implements a JVM startup (Table 1 of the paper): creation/loading,
/// linking (format checks, bytecode verification, hierarchy checks),
/// initialization (<clinit> interpretation), and invocation of main.
/// Behavior is parameterized by a JvmPolicy; coverage probes fire into an
/// optional CoverageRecorder, which the fuzzing campaigns attach only for
/// the reference JVM.
///
/// Bytecode execution itself lives behind the ExecEngine interface
/// (jvm/ExecEngine.h): the policy's ExecTier selects the switch
/// interpreter, the token-threaded interpreter, or the baseline template
/// tier. The Vm owns the pipeline, the heap, the class registry, and the
/// step budget; engines drive them through a friend surface, so callers
/// of run() see no interpreter internals.
///
/// Usage:
/// \code
///   ClassPath Env = buildRuntimeLibrary("jre8").overlaidWith(TestClasses);
///   Vm Jvm(makeJ9Policy(), Env);
///   JvmResult R = Jvm.run("M1436188543");   // the `java M1436188543` cmd
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef CLASSFUZZ_JVM_VM_H
#define CLASSFUZZ_JVM_VM_H

#include "classfile/ClassFile.h"
#include "coverage/Tracefile.h"
#include "jvm/ClassPath.h"
#include "jvm/JvmTypes.h"
#include "jvm/Policy.h"
#include "jvm/Value.h"

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace classfuzz {

class ExecEngine;

/// One JVM instance bound to a policy and an environment. A Vm is
/// single-shot per class under test: create, run(), inspect, discard.
class Vm {
public:
  Vm(const JvmPolicy &Policy, const ClassPath &Env,
     CoverageRecorder *Cov = nullptr);
  ~Vm();

  Vm(const Vm &) = delete;
  Vm &operator=(const Vm &) = delete;

  /// Starts the JVM on \p MainClassName: load, link, initialize, invoke
  /// public static void main(String[]).
  JvmResult run(const std::string &MainClassName);

  const JvmPolicy &policy() const { return Policy; }

  /// The execution engine the policy's tier selected. Exposed for tests
  /// and telemetry (code-cache statistics); never needed to run a class.
  ExecEngine &engine() { return *Engine; }
  const ExecEngine &engine() const { return *Engine; }

  enum class ClassState : uint8_t {
    Loaded,
    Linked,
    Initializing,
    Initialized,
  };

  /// A class in this Vm's registry. Public so execution engines can name
  /// it in their interfaces; its mutation stays inside jvm/.
  struct LoadedClass {
    ClassFile CF;
    ClassState State = ClassState::Loaded;
    /// Static field slots, keyed "name:descriptor".
    std::map<std::string, Value> Statics;
    /// Methods already verified (lazy-verification memo), "name+desc".
    std::set<std::string> VerifiedMethods;
    /// Whole-class verification already done (eager policies).
    bool Verified = false;
  };

private:
  // Execution engines (and only they) reach the pipeline, heap, and
  // budget through this friendship; the public API stays run()-shaped.
  friend class ExecEngine;
  friend class SwitchEngine;
  friend class ThreadedEngine;
  friend class BaselineEngine;
  friend struct ExecContext;

  // --- pipeline (Vm.cpp) --------------------------------------------------
  /// Loads (and links) \p Name and its supertypes. Returns nullptr after
  /// recording the failure in Result.
  LoadedClass *loadClass(const std::string &Name);
  bool linkClass(LoadedClass &LC);
  bool verifyWholeClass(LoadedClass &LC);
  /// Lazy per-method verification + deferred format checks at invoke time.
  bool ensureInvocable(LoadedClass &LC, const MethodInfo &M);
  /// Ensures <clinit> of \p LC (and supers) ran (JVMS §5.5).
  bool initializeClass(LoadedClass &LC);
  /// Hierarchy oracle handed to the verifier.
  const ClassFile *lookupClassFile(const std::string &Name);

  /// Records an abort (VM error) unless one is already recorded.
  void abort(JvmPhase Phase, JvmErrorKind Kind, std::string Message);
  bool aborted() const { return Aborted; }

  // --- execution dispatch --------------------------------------------------
  /// Invokes \p M with \p Args through the configured engine; places the
  /// return value in \p Ret. Returns false when an exception is pending
  /// or the VM aborted. All recursive invocation (invoke* bytecodes,
  /// <clinit>, main) funnels through here, so one tier executes the
  /// whole run.
  bool invoke(LoadedClass &LC, const MethodInfo &M, std::vector<Value> Args,
              Value &Ret);
  /// The legacy switch-dispatch interpreter (Interp.cpp), reachable only
  /// through SwitchEngine.
  bool switchInvoke(LoadedClass &LC, const MethodInfo &M,
                    std::vector<Value> Args, Value &Ret);
  bool callNative(LoadedClass &LC, const MethodInfo &M,
                  std::vector<Value> &Args, Value &Ret);
  /// Allocates a heap object; returns its ref id (0 on heap exhaustion,
  /// which also aborts with OutOfMemoryError).
  int32_t allocObject(const std::string &ClassName);
  int32_t allocString(const std::string &S);
  int32_t allocArray(const std::string &ElemClassName, int32_t Length);
  HeapObject *deref(int32_t Ref);
  /// Throws a built-in exception object (NPE, ...) as a catchable value.
  void throwBuiltin(JvmErrorKind Kind, const std::string &ClassName,
                    const std::string &Message);
  /// Runtime class of a heap reference ("java/lang/String" for strings).
  std::string classOfRef(int32_t Ref);
  /// Dynamic assignability used by checkcast/instanceof/catch matching.
  bool refInstanceOf(int32_t Ref, const std::string &ClassName);
  /// Resolves a virtual method against the runtime class hierarchy.
  struct ResolvedMethod {
    LoadedClass *Holder = nullptr;
    const MethodInfo *Method = nullptr;
  };
  ResolvedMethod resolveMethod(const std::string &ClassName,
                               const std::string &Name,
                               const std::string &Desc);
  /// Resolves a field (walking supers); returns the holder class, or
  /// nullptr when absent.
  LoadedClass *resolveField(const std::string &ClassName,
                            const std::string &Name,
                            const std::string &Desc);
  /// Member access control (JVMS §5.4.4): may code in \p Referencing
  /// access a member of \p Holder with \p MemberFlags? Aborts with
  /// IllegalAccessError and returns false when not (and the policy
  /// checks access).
  bool checkMemberAccess(const std::string &Referencing,
                         const std::string &Holder, uint16_t MemberFlags,
                         const std::string &MemberName);

  JvmPolicy Policy;
  const ClassPath &Env;
  CoverageRecorder *Cov;
  std::unique_ptr<ExecEngine> Engine;

  std::map<std::string, std::unique_ptr<LoadedClass>> Classes;
  std::set<std::string> LoadingInProgress; ///< Circularity detection.
  /// Parsed-but-not-loaded cache for hierarchy queries by the verifier.
  std::map<std::string, std::optional<ClassFile>> ParsedCache;

  std::vector<HeapObject> Heap; ///< Heap[Ref-1]; Ref 0 is null.
  int32_t PendingException = 0; ///< Heap ref of the in-flight throwable.

  JvmResult Result;
  JvmPhase CurrentPhase = JvmPhase::Loading;
  bool Aborted = false;

  uint32_t StepsRemaining = 0;
  uint32_t CallDepth = 0;
};

} // namespace classfuzz

#endif // CLASSFUZZ_JVM_VM_H
