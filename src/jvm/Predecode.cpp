//===- jvm/Predecode.cpp - Bytecode lowering for the fast tiers ----------===//

#include "jvm/Predecode.h"

#include "classfile/Opcodes.h"

using namespace classfuzz;

namespace {

/// Pre-fetches a member reference (and, for invokes, its descriptor)
/// into the side table; returns the site index.
int32_t addMemberSite(PredecodedMethod &PM, const ClassFile &CF,
                      uint16_t Index, bool IsInvoke) {
  MemberSite Site;
  auto Ref = CF.CP.getMemberRef(Index);
  if (Ref.ok()) {
    Site.Ok = true;
    Site.Ref = *Ref;
    if (IsInvoke)
      Site.DescOk = parseMethodDescriptor(Site.Ref.Descriptor, Site.Desc);
  } else {
    Site.Error = Ref.error();
  }
  PM.MemberSites.push_back(std::move(Site));
  return static_cast<int32_t>(PM.MemberSites.size() - 1);
}

int32_t addClassSite(PredecodedMethod &PM, const ClassFile &CF,
                     uint16_t Index) {
  ClassSite Site;
  auto Name = CF.CP.getClassName(Index);
  if (Name.ok()) {
    Site.Ok = true;
    Site.Name = *Name;
  }
  PM.ClassSites.push_back(std::move(Site));
  return static_cast<int32_t>(PM.ClassSites.size() - 1);
}

/// Maps one decoded instruction to its handler token and operands.
/// Mirrors the switch interpreter's dispatch exactly, including which
/// opcodes of a family are actually handled (e.g. iaload/aaload but not
/// faload) -- anything the switch would reject lowers to H_Unsupported.
void lower(PredecodedMethod &PM, const ClassFile &CF, const Insn &I,
           PInsn &P) {
  uint8_t Op = I.Op;
  switch (Op) {
  case OP_nop:
    P.Handler = H_Nop;
    return;
  case OP_aconst_null:
    P.Handler = H_AconstNull;
    return;
  case OP_bipush:
  case OP_sipush:
    P.Handler = H_IPush;
    P.A = I.Operand1;
    return;
  case OP_lconst_0:
  case OP_lconst_1:
    P.Handler = H_LPush;
    P.A = Op - OP_lconst_0;
    return;
  case OP_ldc:
  case OP_ldc_w:
  case OP_ldc2_w:
    P.Handler = H_Ldc;
    P.A = I.Operand1;
    return;
  case OP_iinc:
    P.Handler = H_Iinc;
    P.A = I.Operand1;
    P.B = I.Operand2;
    return;
  case OP_goto:
  case OP_goto_w:
    P.Handler = H_Goto;
    return; // Target filled by the branch-resolution pass.
  case OP_return:
    P.Handler = H_Return;
    return;
  case OP_ireturn:
  case OP_lreturn:
  case OP_freturn:
  case OP_dreturn:
  case OP_areturn:
    P.Handler = H_VReturn;
    return;
  case OP_athrow:
    P.Handler = H_Athrow;
    return;
  case OP_pop:
    P.Handler = H_Pop;
    return;
  case OP_pop2:
    P.Handler = H_Pop2;
    return;
  case OP_dup:
    P.Handler = H_Dup;
    return;
  case OP_dup_x1:
    P.Handler = H_DupX1;
    return;
  case OP_swap:
    P.Handler = H_Swap;
    return;
  case OP_arraylength:
    P.Handler = H_ArrayLength;
    return;
  case OP_newarray:
    P.Handler = H_NewArray;
    return;
  case OP_anewarray:
    P.Handler = H_ANewArray;
    P.A = addClassSite(PM, CF, static_cast<uint16_t>(I.Operand1));
    return;
  case OP_iaload:
  case OP_aaload:
    P.Handler = H_ALoad;
    return;
  case OP_iastore:
  case OP_aastore:
    P.Handler = H_AStore;
    return;
  case OP_new:
    P.Handler = H_New;
    P.A = addClassSite(PM, CF, static_cast<uint16_t>(I.Operand1));
    return;
  case OP_checkcast:
    P.Handler = H_Checkcast;
    P.A = addClassSite(PM, CF, static_cast<uint16_t>(I.Operand1));
    return;
  case OP_instanceof:
    P.Handler = H_InstanceOf;
    P.A = addClassSite(PM, CF, static_cast<uint16_t>(I.Operand1));
    return;
  case OP_monitorenter:
  case OP_monitorexit:
    P.Handler = H_Monitor;
    return;
  case OP_getstatic:
  case OP_putstatic:
    P.Handler = Op == OP_getstatic ? H_GetStatic : H_PutStatic;
    P.A = addMemberSite(PM, CF, static_cast<uint16_t>(I.Operand1), false);
    return;
  case OP_getfield:
  case OP_putfield:
    P.Handler = Op == OP_getfield ? H_GetField : H_PutField;
    P.A = addMemberSite(PM, CF, static_cast<uint16_t>(I.Operand1), false);
    return;
  case OP_invokestatic:
  case OP_invokevirtual:
  case OP_invokespecial:
  case OP_invokeinterface:
    P.Handler = H_Invoke;
    P.A = addMemberSite(PM, CF, static_cast<uint16_t>(I.Operand1), true);
    return;
  default:
    break;
  }

  // The switch interpreter's default section, range by range.
  if (Op >= OP_iconst_m1 && Op <= OP_iconst_5) {
    P.Handler = H_IPush;
    P.A = static_cast<int32_t>(Op) - static_cast<int32_t>(OP_iconst_0);
    return;
  }
  if (Op >= 0x0B && Op <= 0x0D) { // fconst
    P.Handler = H_FPush;
    P.A = Op - 0x0B;
    return;
  }
  if (Op == 0x0E || Op == 0x0F) { // dconst
    P.Handler = H_DPush;
    P.A = Op - 0x0E;
    return;
  }
  if (Op == OP_iload || Op == OP_lload || Op == OP_fload ||
      Op == OP_dload || Op == OP_aload) {
    P.Handler = H_Load;
    P.A = I.Operand1;
    return;
  }
  if (Op >= OP_iload_0 && Op <= OP_aload_3) {
    P.Handler = H_Load;
    P.A = static_cast<int32_t>((Op - OP_iload_0) % 4);
    return;
  }
  if (Op == OP_istore || Op == OP_lstore || Op == OP_fstore ||
      Op == OP_dstore || Op == OP_astore) {
    P.Handler = H_Store;
    P.A = I.Operand1;
    return;
  }
  if (Op >= OP_istore_0 && Op <= OP_astore_3) {
    P.Handler = H_Store;
    P.A = static_cast<int32_t>((Op - OP_istore_0) % 4);
    return;
  }
  if (Op == OP_iadd || Op == OP_isub || Op == OP_imul || Op == OP_idiv ||
      Op == OP_irem || Op == OP_ishl || Op == OP_ishr || Op == 0x7C ||
      Op == OP_iand || Op == OP_ior || Op == OP_ixor) {
    P.Handler = H_IArith;
    return;
  }
  if (Op == OP_ineg) {
    P.Handler = H_INeg;
    return;
  }
  if (Op >= OP_i2l && Op <= 0x93) {
    P.Handler = H_Conv;
    return;
  }
  if (Op >= OP_ifeq && Op <= OP_ifle) {
    P.Handler = H_If;
    return;
  }
  if (Op >= OP_if_icmpeq && Op <= OP_if_icmple) {
    P.Handler = H_IfICmp;
    return;
  }
  if (Op == OP_if_acmpeq || Op == OP_if_acmpne) {
    P.Handler = H_IfACmp;
    return;
  }
  if (Op == OP_ifnull || Op == OP_ifnonnull) {
    P.Handler = H_IfNull;
    return;
  }
  if (Op == OP_tableswitch || Op == OP_lookupswitch) {
    P.Handler = H_Switch;
    return;
  }
  P.Handler = H_Unsupported;
}

/// True for handlers whose PInsn::Target must be resolved from the
/// decoded branch operand.
bool takesBranchTarget(uint8_t H) {
  switch (H) {
  case H_Goto:
  case H_If:
  case H_IfICmp:
  case H_IfACmp:
  case H_IfNull:
  case H_Switch:
    return true;
  default:
    return false;
  }
}

} // namespace

PredecodedMethod classfuzz::predecodeMethod(const ClassFile &CF,
                                            const MethodInfo &M) {
  PredecodedMethod PM;
  if (!M.Code)
    return PM;

  InsnDecoder Decoder(M.Code->Code);
  Insn I;
  std::vector<Insn> Raw;
  while (Decoder.decodeNext(I)) {
    PM.OffsetToIndex.emplace(I.Offset,
                             static_cast<uint32_t>(Raw.size()));
    Raw.push_back(I);
  }
  if (!Decoder.valid() || Raw.empty()) {
    // Leaves Valid == false: tiers raise the same VerifyError the
    // switch interpreter does when the per-invoke decode fails.
    PM.OffsetToIndex.clear();
    return PM;
  }

  PM.Insns.reserve(Raw.size());
  for (const Insn &R : Raw) {
    PInsn P;
    P.Op = R.Op;
    P.Offset = R.Offset;
    lower(PM, CF, R, P);
    if (takesBranchTarget(P.Handler))
      P.Target = PM.indexOfOffset(static_cast<uint32_t>(R.Operand1));
    PM.Insns.push_back(P);
  }
  PM.Valid = true;
  return PM;
}
