//===- jvm/VerifierLattice.cpp --------------------------------------------===//

#include "jvm/VerifierLattice.h"

using namespace classfuzz;

VType classfuzz::makeVRef(std::string Name) {
  VType T;
  T.Kind = VKind::Ref;
  T.RefName = std::move(Name);
  return T;
}

VType classfuzz::makeVKind(VKind K) {
  VType T;
  T.Kind = K;
  return T;
}

std::string classfuzz::vkindName(VKind K) {
  switch (K) {
  case VKind::Top:
    return "top";
  case VKind::Int:
    return "int";
  case VKind::Float:
    return "float";
  case VKind::Long:
    return "long";
  case VKind::Double:
    return "double";
  case VKind::Null:
    return "null";
  case VKind::Ref:
    return "reference";
  case VKind::UninitThis:
    return "uninitializedThis";
  case VKind::Uninit:
    return "uninitialized";
  case VKind::RetAddr:
    return "returnAddress";
  }
  return "?";
}

VType classfuzz::vtypeFromJType(const JType &T) {
  if (T.ArrayDims > 0) {
    // Arrays are modeled as references carrying their descriptor.
    return makeVRef(T.toDescriptor());
  }
  switch (T.Kind) {
  case TypeKind::Boolean:
  case TypeKind::Byte:
  case TypeKind::Char:
  case TypeKind::Short:
  case TypeKind::Int:
    return makeVKind(VKind::Int);
  case TypeKind::Long:
    return makeVKind(VKind::Long);
  case TypeKind::Float:
    return makeVKind(VKind::Float);
  case TypeKind::Double:
    return makeVKind(VKind::Double);
  case TypeKind::Reference:
    return makeVRef(T.ClassName);
  case TypeKind::Void:
  case TypeKind::Array:
    return makeVKind(VKind::Top);
  }
  return makeVKind(VKind::Top);
}

VType classfuzz::joinVTypes(const VType &A, const VType &B,
                            const VCommonSuperFn &CommonSuper,
                            VJoinIssue &Issue) {
  Issue = VJoinIssue::None;
  if (A == B)
    return A;
  // Top is the absorbing "unusable" element: joining with it is never
  // itself suspicious (errors arise only if the slot is later used).
  if (A.Kind == VKind::Top || B.Kind == VKind::Top)
    return makeVKind(VKind::Top);
  // Initialized and uninitialized references meeting is its own issue:
  // strict profiles (GIJ, Problem 2) reject it outright.
  bool AUninit = A.Kind == VKind::Uninit || A.Kind == VKind::UninitThis;
  bool BUninit = B.Kind == VKind::Uninit || B.Kind == VKind::UninitThis;
  if (AUninit != BUninit && A.isRefLike() && B.isRefLike()) {
    Issue = VJoinIssue::UninitializedMix;
    return makeVKind(VKind::Top);
  }
  if (A.Kind == VKind::Null && B.isRefLike())
    return B;
  if (B.Kind == VKind::Null && A.isRefLike())
    return A;
  if (A.Kind == VKind::Ref && B.Kind == VKind::Ref)
    return makeVRef(CommonSuper ? CommonSuper(A.RefName, B.RefName)
                                : "java/lang/Object");
  Issue = VJoinIssue::KindConflict;
  return makeVKind(VKind::Top);
}

bool classfuzz::insnStackEffect(const ClassFile &CF, const Insn &I, int &Pops,
                                int &Pushes) {
  uint8_t Op = I.Op;
  Pops = 0;
  Pushes = 0;

  // Constants and loads.
  if (Op == OP_nop) {
    return true;
  }
  if ((Op >= OP_aconst_null && Op <= 0x0F) || Op == OP_bipush ||
      Op == OP_sipush || (Op >= OP_iload && Op <= OP_aload) ||
      (Op >= OP_iload_0 && Op <= OP_aload_3)) {
    bool Wide = (Op >= OP_lconst_0 && Op <= OP_lconst_1) ||
                (Op >= 0x0E && Op <= 0x0F) || Op == OP_lload ||
                Op == OP_dload || (Op >= 0x1E && Op <= 0x21) ||
                (Op >= 0x26 && Op <= 0x29);
    Pushes = Wide ? 2 : 1;
    return true;
  }
  if (Op == OP_ldc || Op == OP_ldc_w) {
    Pushes = 1;
    return true;
  }
  if (Op == OP_ldc2_w) {
    Pushes = 2;
    return true;
  }
  if (Op >= OP_iaload && Op <= 0x35) { // array loads
    Pops = 2;
    Pushes = (Op == 0x2F || Op == 0x31) ? 2 : 1; // laload/daload
    return true;
  }
  if ((Op >= OP_istore && Op <= OP_astore) ||
      (Op >= OP_istore_0 && Op <= OP_astore_3)) {
    bool Wide = Op == OP_lstore || Op == OP_dstore ||
                (Op >= 0x3F && Op <= 0x42) || (Op >= 0x47 && Op <= 0x4A);
    Pops = Wide ? 2 : 1;
    return true;
  }
  if (Op >= OP_iastore && Op <= 0x56) { // array stores
    Pops = (Op == 0x50 || Op == 0x52) ? 4 : 3; // lastore/dastore
    return true;
  }
  switch (Op) {
  case OP_pop:
    Pops = 1;
    return true;
  case OP_pop2:
    Pops = 2;
    return true;
  case OP_dup:
    Pops = 1;
    Pushes = 2;
    return true;
  case OP_dup_x1:
    Pops = 2;
    Pushes = 3;
    return true;
  case 0x5B: // dup_x2
    Pops = 3;
    Pushes = 4;
    return true;
  case 0x5C: // dup2
    Pops = 2;
    Pushes = 4;
    return true;
  case OP_swap:
    Pops = 2;
    Pushes = 2;
    return true;
  case OP_iinc:
    return true;
  default:
    break;
  }
  if (Op >= OP_iadd && Op <= 0x83) { // arithmetic
    int Column = (Op - OP_iadd) % 4;
    bool Wide = Column == 1 || Column == 3; // long / double columns
    bool Unary = Op >= 0x74 && Op <= 0x77;
    // Shifts of longs take (long, int); approximate as non-shift.
    Pops = (Unary ? 1 : 2) * (Wide ? 2 : 1);
    if (!Unary && Op >= 0x79 && Op <= 0x7D && Wide)
      Pops = 3; // lshl/lshr/lushr: long + int shift count
    Pushes = Wide ? 2 : 1;
    return true;
  }
  if (Op >= OP_i2l && Op <= 0x93) { // conversions
    static const int SrcW[] = {1, 1, 1, 2, 2, 2, 1, 1, 1,
                               2, 2, 2, 1, 1, 1};
    static const int DstW[] = {2, 1, 2, 1, 1, 2, 1, 2, 2,
                               1, 2, 1, 1, 1, 1};
    Pops = SrcW[Op - OP_i2l];
    Pushes = DstW[Op - OP_i2l];
    return true;
  }
  if (Op >= 0x94 && Op <= 0x98) { // lcmp..dcmpg
    Pops = Op == 0x94 ? 4 : (Op <= 0x96 ? 2 : 4);
    Pushes = 1;
    return true;
  }
  if (Op >= OP_ifeq && Op <= OP_ifle) {
    Pops = 1;
    return true;
  }
  if (Op >= OP_if_icmpeq && Op <= OP_if_acmpne) {
    Pops = 2;
    return true;
  }
  if (Op == OP_ifnull || Op == OP_ifnonnull) {
    Pops = 1;
    return true;
  }
  if (Op == OP_goto || Op == OP_goto_w) {
    return true;
  }
  if (Op == OP_tableswitch || Op == OP_lookupswitch) {
    Pops = 1;
    return true;
  }
  if (Op >= OP_ireturn && Op <= OP_return) {
    Pops = Op == OP_return ? 0
                           : ((Op == OP_lreturn || Op == OP_dreturn) ? 2
                                                                     : 1);
    return true;
  }
  if (Op >= OP_getstatic && Op <= OP_invokeinterface) {
    auto Ref = CF.CP.getMemberRef(static_cast<uint16_t>(I.Operand1));
    if (!Ref)
      return false;
    if (Op <= OP_putfield) {
      JType FieldType;
      if (!parseFieldDescriptor(Ref->Descriptor, FieldType))
        return false;
      int W = FieldType.slotWidth();
      switch (Op) {
      case OP_getstatic:
        Pushes = W;
        break;
      case OP_putstatic:
        Pops = W;
        break;
      case OP_getfield:
        Pops = 1;
        Pushes = W;
        break;
      case OP_putfield:
        Pops = 1 + W;
        break;
      }
      return true;
    }
    MethodDescriptor MD;
    if (!parseMethodDescriptor(Ref->Descriptor, MD))
      return false;
    Pops = MD.argSlots() + (Op == OP_invokestatic ? 0 : 1);
    Pushes = MD.ReturnType.slotWidth();
    return true;
  }
  switch (Op) {
  case OP_new:
    Pushes = 1;
    return true;
  case OP_newarray:
  case OP_anewarray:
    Pops = 1;
    Pushes = 1;
    return true;
  case OP_arraylength:
  case OP_checkcast:
    Pops = 1;
    Pushes = 1;
    return true;
  case OP_instanceof:
    Pops = 1;
    Pushes = 1;
    return true;
  case OP_athrow:
  case OP_monitorenter:
  case OP_monitorexit:
    Pops = 1;
    return true;
  case OP_multianewarray:
    Pops = I.Operand2;
    Pushes = 1;
    return true;
  default:
    return false;
  }
}
