//===- jvm/BaselineTier.cpp - Baseline template compilation tier ---------===//
//
// The baseline tier compiles a method once into a flat array of
// pre-bound op thunks -- one function pointer per predecoded
// instruction, the template-JIT shape of ART's jit_code_cache.cc without
// emitting machine code -- and executes by indexing that array. Member
// sites carry monomorphic inline caches, so repeated field accesses and
// invokes skip re-resolution; compiled methods live in a bounded LRU
// code cache whose traffic is published as the jit.* telemetry counters.
//
// Inline-cache hits are trace-safe: a cache fills only after a fully
// successful slow path, the repeat slow path is deterministic in the
// same arguments, and tracefiles are sets -- so the probes a hit skips
// are exactly ones the filling miss already recorded.
//
//===----------------------------------------------------------------------===//

#include "jvm/ExecHandlers.h"

#include <algorithm>
#include <map>
#include <memory>

namespace classfuzz {

namespace {

using Thunk = Ctl (*)(ExecContext &, const PInsn &);

Ctl tNop(ExecContext &C, const PInsn &I) { return C.doNop(I); }
Ctl tAconstNull(ExecContext &C, const PInsn &I) { return C.doAconstNull(I); }
Ctl tIPush(ExecContext &C, const PInsn &I) { return C.doIPush(I); }
Ctl tLPush(ExecContext &C, const PInsn &I) { return C.doLPush(I); }
Ctl tFPush(ExecContext &C, const PInsn &I) { return C.doFPush(I); }
Ctl tDPush(ExecContext &C, const PInsn &I) { return C.doDPush(I); }
Ctl tLdc(ExecContext &C, const PInsn &I) { return C.doLdc(I); }
Ctl tIinc(ExecContext &C, const PInsn &I) { return C.doIinc(I); }
Ctl tGoto(ExecContext &C, const PInsn &I) { return C.doGoto(I); }
Ctl tReturn(ExecContext &C, const PInsn &I) { return C.doReturn(I); }
Ctl tVReturn(ExecContext &C, const PInsn &I) { return C.doVReturn(I); }
Ctl tAthrow(ExecContext &C, const PInsn &I) { return C.doAthrow(I); }
Ctl tPop(ExecContext &C, const PInsn &I) { return C.doPop(I); }
Ctl tPop2(ExecContext &C, const PInsn &I) { return C.doPop2(I); }
Ctl tDup(ExecContext &C, const PInsn &I) { return C.doDup(I); }
Ctl tDupX1(ExecContext &C, const PInsn &I) { return C.doDupX1(I); }
Ctl tSwap(ExecContext &C, const PInsn &I) { return C.doSwap(I); }
Ctl tArrayLength(ExecContext &C, const PInsn &I) {
  return C.doArrayLength(I);
}
Ctl tNewArray(ExecContext &C, const PInsn &I) { return C.doNewArray(I); }
Ctl tANewArray(ExecContext &C, const PInsn &I) { return C.doANewArray(I); }
Ctl tALoad(ExecContext &C, const PInsn &I) { return C.doALoad(I); }
Ctl tAStore(ExecContext &C, const PInsn &I) { return C.doAStore(I); }
Ctl tNew(ExecContext &C, const PInsn &I) { return C.doNew(I); }
Ctl tCheckcast(ExecContext &C, const PInsn &I) { return C.doCheckcast(I); }
Ctl tInstanceOf(ExecContext &C, const PInsn &I) { return C.doInstanceOf(I); }
Ctl tMonitor(ExecContext &C, const PInsn &I) { return C.doMonitor(I); }
Ctl tGetStatic(ExecContext &C, const PInsn &I) {
  return C.doStaticField(I, /*IsGet=*/true);
}
Ctl tPutStatic(ExecContext &C, const PInsn &I) {
  return C.doStaticField(I, /*IsGet=*/false);
}
Ctl tGetField(ExecContext &C, const PInsn &I) {
  return C.doInstanceField(I, /*IsGet=*/true);
}
Ctl tPutField(ExecContext &C, const PInsn &I) {
  return C.doInstanceField(I, /*IsGet=*/false);
}
Ctl tInvoke(ExecContext &C, const PInsn &I) { return C.doInvoke(I); }
Ctl tLoad(ExecContext &C, const PInsn &I) { return C.doLoad(I); }
Ctl tStore(ExecContext &C, const PInsn &I) { return C.doStore(I); }
Ctl tIArith(ExecContext &C, const PInsn &I) { return C.doIArith(I); }
Ctl tINeg(ExecContext &C, const PInsn &I) { return C.doINeg(I); }
Ctl tConv(ExecContext &C, const PInsn &I) { return C.doConv(I); }
Ctl tIf(ExecContext &C, const PInsn &I) { return C.doIf(I); }
Ctl tIfICmp(ExecContext &C, const PInsn &I) { return C.doIfICmp(I); }
Ctl tIfACmp(ExecContext &C, const PInsn &I) { return C.doIfACmp(I); }
Ctl tIfNull(ExecContext &C, const PInsn &I) { return C.doIfNull(I); }
Ctl tSwitch(ExecContext &C, const PInsn &I) { return C.doSwitch(I); }
Ctl tUnsupported(ExecContext &C, const PInsn &I) {
  return C.doUnsupported(I);
}

/// Indexed by Handler; must stay in enum order.
const Thunk ThunkTable[NumHandlers] = {
    tNop,        tAconstNull,  tIPush,     tLPush,      tFPush,
    tDPush,      tLdc,         tIinc,      tGoto,       tReturn,
    tVReturn,    tAthrow,      tPop,       tPop2,       tDup,
    tDupX1,      tSwap,        tArrayLength, tNewArray, tANewArray,
    tALoad,      tAStore,      tNew,       tCheckcast,  tInstanceOf,
    tMonitor,    tGetStatic,   tPutStatic, tGetField,   tPutField,
    tInvoke,     tLoad,        tStore,     tIArith,     tINeg,
    tConv,       tIf,          tIfICmp,    tIfACmp,     tIfNull,
    tSwitch,     tUnsupported,
};

} // namespace

/// One method's compiled form: the lowered stream, the pre-bound thunk
/// per instruction, and the member-site inline caches. Held by
/// shared_ptr so an LRU eviction cannot free a method that a frame on
/// the call stack is still executing.
struct BaselineCompiledMethod {
  PredecodedMethod PM;
  std::vector<Thunk> Thunks;
  InlineCaches IC;
  uint64_t LastUse = 0;
};

/// The baseline template tier.
class BaselineEngine : public ExecEngine {
public:
  explicit BaselineEngine(Vm &VM) : ExecEngine(VM) {}
  ~BaselineEngine() override {
    // Engine-local stats flush to the global jit.* counters at teardown;
    // campaigns set JitTelemetry=false and republish committed runs at
    // the commit stage instead, keeping counters --jobs-invariant.
    if (VM.Policy.JitTelemetry)
      Stats.publish();
  }

  ExecTier tier() const override { return ExecTier::Baseline; }
  const JitStats *jitStats() const override { return &Stats; }

  bool invoke(Vm::LoadedClass &LC, const MethodInfo &M,
              std::vector<Value> Args, Value &Ret) override {
    // The frame's pin: keeps the compiled method alive across nested
    // invokes even if they evict it from the cache.
    std::shared_ptr<BaselineCompiledMethod> CM;
    auto Fetch = [&]() -> FetchedMethod {
      CM = fetchCompiled(LC, M);
      return {&CM->PM, &CM->IC};
    };
    auto Dispatch = [&](ExecContext &C) -> Ctl {
      return CM->Thunks[C.Index](C, C.PM.Insns[C.Index]);
    };
    return ExecContext::execInvoke(VM, LC, M, std::move(Args), Ret, Fetch,
                                   Dispatch);
  }

private:
  std::shared_ptr<BaselineCompiledMethod>
  fetchCompiled(Vm::LoadedClass &LC, const MethodInfo &M) {
    ++UseTick;
    auto It = Cache.find(&M);
    if (It != Cache.end()) {
      ++Stats.CacheHits;
      It->second->LastUse = UseTick;
      return It->second;
    }

    uint32_t Capacity = std::max<uint32_t>(1, VM.Policy.JitCacheCapacity);
    if (Cache.size() >= Capacity) {
      auto Victim = Cache.begin();
      for (auto I = Cache.begin(); I != Cache.end(); ++I)
        if (I->second->LastUse < Victim->second->LastUse)
          Victim = I;
      Cache.erase(Victim);
      ++Stats.Evictions;
    }

    auto CM = std::make_shared<BaselineCompiledMethod>();
    CM->PM = predecodeMethod(LC.CF, M);
    CM->Thunks.reserve(CM->PM.Insns.size());
    for (const PInsn &P : CM->PM.Insns)
      CM->Thunks.push_back(ThunkTable[P.Handler]);
    CM->IC.Fields.resize(CM->PM.MemberSites.size());
    CM->IC.Methods.resize(CM->PM.MemberSites.size());
    CM->IC.Stats = &Stats;
    CM->LastUse = UseTick;
    ++Stats.Compiles;
    Cache.emplace(&M, CM);
    return CM;
  }

  JitStats Stats;
  /// The bounded code cache. MethodInfo pointers are stable (the class
  /// registry never moves or frees them); eviction picks the least
  /// recently used entry by monotonic tick, so cache traffic is
  /// deterministic for a given run.
  std::map<const MethodInfo *, std::shared_ptr<BaselineCompiledMethod>>
      Cache;
  uint64_t UseTick = 0;
};

std::unique_ptr<ExecEngine> makeBaselineEngine(Vm &VM) {
  return std::make_unique<BaselineEngine>(VM);
}

} // namespace classfuzz
