//===- jvm/Interp.cpp - Bytecode interpreter and object model ------------===//
//
// The invocation & execution phase of the startup pipeline: a simple
// switch interpreter over the decoded instruction stream, with a modeled
// heap, built-in exception throwing, and a native-method registry for the
// runtime library's primitives (println, Object.<init>, ...).
//
//===----------------------------------------------------------------------===//

#include "jvm/Vm.h"

#include "classfile/Descriptor.h"
#include "classfile/Opcodes.h"
#include "coverage/Probes.h"
#include "jvm/ExecProbes.h"
#include "jvm/FormatChecker.h"
#include "jvm/Verifier.h"

#include <cassert>

CF_COV_FILE(4)

using namespace classfuzz;

int32_t Vm::allocObject(const std::string &ClassName) {
  if (Heap.size() >= Policy.MaxHeapObjects) {
    abort(CurrentPhase, JvmErrorKind::OutOfMemoryError, "Java heap space");
    return 0;
  }
  HeapObject Obj;
  Obj.ClassName = ClassName;
  Heap.push_back(std::move(Obj));
  return static_cast<int32_t>(Heap.size());
}

int32_t Vm::allocString(const std::string &S) {
  int32_t Ref = allocObject("java/lang/String");
  if (Ref != 0) {
    Heap[Ref - 1].IsString = true;
    Heap[Ref - 1].Str = S;
  }
  return Ref;
}

int32_t Vm::allocArray(const std::string &ElemClassName, int32_t Length) {
  int32_t Ref = allocObject("[L" + ElemClassName + ";");
  if (Ref != 0) {
    Heap[Ref - 1].IsArray = true;
    Heap[Ref - 1].Elems.assign(static_cast<size_t>(Length), Value::null());
  }
  return Ref;
}

HeapObject *Vm::deref(int32_t Ref) {
  if (Ref <= 0 || static_cast<size_t>(Ref) > Heap.size())
    return nullptr;
  return &Heap[Ref - 1];
}

std::string Vm::classOfRef(int32_t Ref) {
  HeapObject *Obj = deref(Ref);
  return Obj ? Obj->ClassName : "java/lang/Object";
}

bool Vm::refInstanceOf(int32_t Ref, const std::string &ClassName) {
  HeapObject *Obj = deref(Ref);
  if (!Obj)
    return false;
  if (ClassName == "java/lang/Object")
    return true;
  if (Obj->IsArray)
    return Obj->ClassName == ClassName;
  ClassLookupFn Lookup = [this](const std::string &N) {
    return lookupClassFile(N);
  };
  return isRefAssignable(Obj->ClassName, ClassName, Lookup);
}

void Vm::throwBuiltin(JvmErrorKind Kind, const std::string &ClassName,
                      const std::string &Message) {
  (void)Kind; // Classified again from the class name when uncaught.
  int32_t Ref = allocObject(ClassName);
  if (Ref == 0)
    return; // OutOfMemoryError abort already recorded.
  Heap[Ref - 1].Fields["message:Ljava/lang/String;"] =
      Value::makeRef(allocString(Message));
  PendingException = Ref;
}

Vm::ResolvedMethod Vm::resolveMethod(const std::string &ClassName,
                                     const std::string &Name,
                                     const std::string &Desc) {
  COV_STMT(Cov);
  ResolvedMethod Out;
  std::string Cur = ClassName;
  for (int Depth = 0; Depth < 64 && !Cur.empty(); ++Depth) {
    LoadedClass *LC = loadClass(Cur);
    if (!LC)
      return Out; // Abort recorded by loadClass.
    if (const MethodInfo *M = LC->CF.findMethod(Name, Desc)) {
      Out.Holder = LC;
      Out.Method = M;
      return Out;
    }
    Cur = LC->CF.SuperClass;
  }
  // Search superinterfaces (abstract interface methods).
  LoadedClass *Start = loadClass(ClassName);
  if (Start) {
    for (const std::string &Iface : Start->CF.Interfaces) {
      ResolvedMethod R = resolveMethod(Iface, Name, Desc);
      if (R.Method)
        return R;
    }
  }
  return Out;
}

Vm::LoadedClass *Vm::resolveField(const std::string &ClassName,
                                  const std::string &Name,
                                  const std::string &Desc) {
  COV_STMT(Cov);
  std::string Cur = ClassName;
  for (int Depth = 0; Depth < 64 && !Cur.empty(); ++Depth) {
    LoadedClass *LC = loadClass(Cur);
    if (!LC)
      return nullptr;
    for (const FieldInfo &F : LC->CF.Fields)
      if (F.Name == Name && F.Descriptor == Desc)
        return LC;
    for (const std::string &Iface : LC->CF.Interfaces)
      if (LoadedClass *Holder = resolveField(Iface, Name, Desc))
        return Holder;
    Cur = LC->CF.SuperClass;
  }
  return nullptr;
}

namespace {

/// Splits "name:descriptor" static/instance field keys.
std::string fieldKey(const std::string &Name, const std::string &Desc) {
  return Name + ":" + Desc;
}

std::string packageOf(const std::string &InternalName) {
  size_t Slash = InternalName.rfind('/');
  return Slash == std::string::npos ? std::string()
                                    : InternalName.substr(0, Slash);
}

} // namespace

bool Vm::checkMemberAccess(const std::string &Referencing,
                           const std::string &Holder,
                           uint16_t MemberFlags,
                           const std::string &MemberName) {
  if (!Policy.CheckMemberAccess || Referencing == Holder)
    return true;
  if (COV_BRANCH(Cov, MemberFlags & ACC_PRIVATE)) {
    abort(CurrentPhase, JvmErrorKind::IllegalAccessError,
          Referencing + " cannot access private member " + Holder + "." +
              MemberName);
    return false;
  }
  if (MemberFlags & ACC_PUBLIC)
    return true;
  // Protected (simplified to the package rule) and package-private.
  if (COV_BRANCH(Cov, packageOf(Referencing) != packageOf(Holder))) {
    abort(CurrentPhase, JvmErrorKind::IllegalAccessError,
          Referencing + " cannot access member " + Holder + "." +
              MemberName);
    return false;
  }
  return true;
}

bool Vm::callNative(LoadedClass &LC, const MethodInfo &M,
                    std::vector<Value> &Args, Value &Ret) {
  COV_STMT(Cov);
  const std::string &Cls = LC.CF.ThisClass;
  const std::string &Name = M.Name;

  auto stringOf = [this](const Value &V) -> std::string {
    if (V.T != Value::Tag::Ref)
      return std::to_string(V.I);
    HeapObject *Obj = deref(V.R);
    if (!Obj)
      return "null";
    if (Obj->IsString)
      return Obj->Str;
    return "<" + Obj->ClassName + ">";
  };

  // --- java/io/PrintStream ------------------------------------------------
  if (Cls == "java/io/PrintStream" &&
      (Name == "println" || Name == "print")) {
    // Receiver is Args[0]; the printed value (if any) is Args[1].
    Result.Output.push_back(Args.size() > 1 ? stringOf(Args[1])
                                            : std::string());
    return true;
  }

  // --- native constructors ---------------------------------------------------
  if (Name == "<init>") {
    // Throwable-family (String) constructors store the message; every
    // other native constructor is a no-op.
    if (M.Descriptor == "(Ljava/lang/String;)V" && Args.size() > 1) {
      HeapObject *Self = deref(Args[0].R);
      if (Self)
        Self->Fields["message:Ljava/lang/String;"] = Args[1];
    }
    return true;
  }
  if (Cls == "java/lang/Object" || Name == "hashCode") {
    if (Name == "hashCode") {
      Ret = Value::makeInt(Args.empty() ? 0 : Args[0].R);
      return true;
    }
    if (Name == "equals") {
      Ret = Value::makeInt(Args.size() > 1 && Args[0].R == Args[1].R);
      return true;
    }
    if (Name == "toString") {
      Ret = Value::makeRef(allocString(stringOf(Args[0])));
      return true;
    }
  }

  // --- java/lang/String -----------------------------------------------------
  if (Cls == "java/lang/String") {
    HeapObject *Self = Args.empty() ? nullptr : deref(Args[0].R);
    if (Name == "length") {
      Ret = Value::makeInt(
          Self ? static_cast<int32_t>(Self->Str.size()) : 0);
      return true;
    }
    if (Name == "concat") {
      std::string Other = Args.size() > 1 ? stringOf(Args[1]) : "";
      Ret = Value::makeRef(allocString((Self ? Self->Str : "") + Other));
      return true;
    }
    if (Name == "equals") {
      HeapObject *Other = Args.size() > 1 ? deref(Args[1].R) : nullptr;
      Ret = Value::makeInt(Self && Other && Other->IsString &&
                           Self->Str == Other->Str);
      return true;
    }
  }

  // --- java/lang/StringBuilder ----------------------------------------------
  if (Cls == "java/lang/StringBuilder") {
    HeapObject *Self = Args.empty() ? nullptr : deref(Args[0].R);
    if (Name == "append") {
      if (Self)
        Self->Str += Args.size() > 1 ? stringOf(Args[1]) : "";
      Ret = Args.empty() ? Value::null() : Args[0]; // Returns this.
      return true;
    }
    if (Name == "toString") {
      Ret = Value::makeRef(allocString(Self ? Self->Str : ""));
      return true;
    }
  }

  // --- java/lang/Throwable ---------------------------------------------------
  if (Name == "getMessage" && !Args.empty()) {
    HeapObject *Self = deref(Args[0].R);
    if (Self) {
      auto It = Self->Fields.find("message:Ljava/lang/String;");
      Ret = It != Self->Fields.end() ? It->second : Value::null();
      return true;
    }
  }

  // Unknown native: return the default value of the return type. This
  // keeps mutated natives from derailing whole campaigns (matching the
  // robustness of real JVMs whose natives we do not model).
  MethodDescriptor MD;
  if (parseMethodDescriptor(M.Descriptor, MD) &&
      MD.ReturnType.Kind != TypeKind::Void) {
    if (MD.ReturnType.isReferenceLike())
      Ret = Value::null();
    else if (MD.ReturnType.Kind == TypeKind::Long)
      Ret = Value::makeLong(0);
    else if (MD.ReturnType.Kind == TypeKind::Float)
      Ret = Value::makeFloat(0);
    else if (MD.ReturnType.Kind == TypeKind::Double)
      Ret = Value::makeDouble(0);
    else
      Ret = Value::makeInt(0);
  }
  return true;
}

bool Vm::switchInvoke(LoadedClass &LC, const MethodInfo &M,
                      std::vector<Value> Args, Value &Ret) {
  covStmt(Cov, exec_probes::id(exec_probes::InvokeEntry));
  if (Aborted)
    return false;
  if (covBranch(Cov, exec_probes::id(exec_probes::DepthExceeded),
                CallDepth >= Policy.MaxCallDepth)) {
    abort(CurrentPhase, JvmErrorKind::StackOverflowError,
          "call depth exceeded in " + LC.CF.ThisClass + "." + M.Name);
    return false;
  }

  if (M.isNative())
    return callNative(LC, M, Args, Ret);

  if (covBranch(Cov, exec_probes::id(exec_probes::MissingCode), !M.Code)) {
    // ensureInvocable should have rejected this; raise the deferred error.
    abort(CurrentPhase, JvmErrorKind::ClassFormatError,
          "method " + M.Name + M.Descriptor + " lacks a Code attribute");
    return false;
  }

  // Decode the whole method up front.
  std::map<uint32_t, Insn> Insns;
  {
    InsnDecoder Decoder(M.Code->Code);
    Insn I;
    while (Decoder.decodeNext(I))
      Insns[I.Offset] = I;
    if (covBranch(Cov, exec_probes::id(exec_probes::MalformedBytecode),
                  !Decoder.valid() || Insns.empty())) {
      abort(CurrentPhase, JvmErrorKind::VerifyError,
            "malformed bytecode reached execution in " + M.Name);
      return false;
    }
  }

  ++CallDepth;

  // Locals: sized by max_locals, but never smaller than the arguments.
  size_t ArgSlots = 0;
  for (const Value &V : Args)
    ArgSlots += (V.T == Value::Tag::Long || V.T == Value::Tag::Double) ? 2 : 1;
  std::vector<Value> Locals(std::max<size_t>(M.Code->MaxLocals, ArgSlots));
  {
    size_t Slot = 0;
    for (const Value &V : Args) {
      Locals[Slot] = V;
      Slot += (V.T == Value::Tag::Long || V.T == Value::Tag::Double) ? 2 : 1;
    }
  }

  std::vector<Value> Stack;
  uint32_t Pc = 0;

  auto popv = [&]() -> Value {
    if (Stack.empty()) {
      abort(CurrentPhase, JvmErrorKind::InternalError,
            "operand stack underflow at runtime");
      return Value();
    }
    Value V = Stack.back();
    Stack.pop_back();
    return V;
  };

  auto finish = [&](bool Ok) {
    --CallDepth;
    return Ok;
  };

  ClassLookupFn Lookup = [this](const std::string &N) {
    return lookupClassFile(N);
  };

  for (;;) {
    if (Aborted)
      return finish(false);
    if (PendingException != 0) {
      // Search this frame's exception table.
      bool Handled = false;
      for (const ExceptionTableEntry &E : M.Code->ExceptionTable) {
        if (Pc < E.StartPc || Pc >= E.EndPc)
          continue;
        if (!E.CatchType.empty() &&
            !refInstanceOf(PendingException, E.CatchType))
          continue;
        Stack.clear();
        Stack.push_back(Value::makeRef(PendingException));
        PendingException = 0;
        Pc = E.HandlerPc;
        Handled = true;
        break;
      }
      if (!Handled)
        return finish(false); // Unwind to the caller.
      continue;
    }

    if (covBranch(Cov, exec_probes::id(exec_probes::BudgetExhausted),
                  StepsRemaining == 0)) {
      abort(CurrentPhase, JvmErrorKind::InternalError,
            "interpreter step budget exhausted");
      return finish(false);
    }
    --StepsRemaining;

    auto It = Insns.find(Pc);
    if (covBranch(Cov, exec_probes::id(exec_probes::FellOffCode),
                  It == Insns.end())) {
      abort(CurrentPhase, JvmErrorKind::VerifyError,
            "execution fell off the code of " + M.Name);
      return finish(false);
    }
    const Insn &I = It->second;
    uint32_t NextPc = Pc + I.Length;
    uint8_t Op = I.Op;

    // Per-opcode statement probe (the interpreter dispatch analog of
    // statement coverage over bytecodeInterpreter.cpp).
    covStmt(Cov, exec_probes::opcodeId(Op));

    switch (Op) {
    case OP_nop:
      break;
    case OP_aconst_null:
      Stack.push_back(Value::null());
      break;
    case OP_bipush:
    case OP_sipush:
      Stack.push_back(Value::makeInt(I.Operand1));
      break;
    case OP_lconst_0:
    case OP_lconst_1:
      Stack.push_back(Value::makeLong(Op - OP_lconst_0));
      break;
    case OP_ldc:
    case OP_ldc_w:
    case OP_ldc2_w: {
      uint16_t Index = static_cast<uint16_t>(I.Operand1);
      if (!LC.CF.CP.isValidIndex(Index)) {
        abort(CurrentPhase, JvmErrorKind::VerifyError,
              "ldc of invalid constant pool index");
        return finish(false);
      }
      const CpEntry &E = LC.CF.CP.at(Index);
      switch (E.Tag) {
      case CpTag::Integer:
        Stack.push_back(Value::makeInt(E.IntValue));
        break;
      case CpTag::Float:
        Stack.push_back(Value::makeFloat(E.FloatValue));
        break;
      case CpTag::Long:
        Stack.push_back(Value::makeLong(E.LongValue));
        break;
      case CpTag::Double:
        Stack.push_back(Value::makeDouble(E.DoubleValue));
        break;
      case CpTag::String: {
        auto S = LC.CF.CP.getUtf8(E.Ref1);
        Stack.push_back(Value::makeRef(allocString(S ? *S : "")));
        break;
      }
      case CpTag::Class:
        Stack.push_back(Value::makeRef(allocObject("java/lang/Class")));
        break;
      default:
        abort(CurrentPhase, JvmErrorKind::VerifyError,
              "ldc of unloadable constant");
        return finish(false);
      }
      break;
    }
    case OP_iinc:
      if (static_cast<size_t>(I.Operand1) < Locals.size())
        Locals[I.Operand1].I += I.Operand2;
      break;
    case OP_goto:
    case OP_goto_w:
      NextPc = static_cast<uint32_t>(I.Operand1);
      break;
    case OP_return:
      return finish(true);
    case OP_ireturn:
    case OP_lreturn:
    case OP_freturn:
    case OP_dreturn:
    case OP_areturn:
      Ret = popv();
      return finish(!Aborted);
    case OP_athrow: {
      Value V = popv();
      if (V.isNull())
        throwBuiltin(JvmErrorKind::NullPointerException,
                     "java/lang/NullPointerException", "athrow of null");
      else
        PendingException = V.R;
      continue; // Re-enter loop for handler search at current Pc.
    }
    case OP_pop:
      popv();
      break;
    case OP_pop2:
      popv();
      if (!Stack.empty() && Stack.back().T != Value::Tag::Long &&
          Stack.back().T != Value::Tag::Double)
        popv();
      break;
    case OP_dup: {
      Value V = popv();
      Stack.push_back(V);
      Stack.push_back(V);
      break;
    }
    case OP_dup_x1: {
      Value A = popv(), B = popv();
      Stack.push_back(A);
      Stack.push_back(B);
      Stack.push_back(A);
      break;
    }
    case OP_swap: {
      Value A = popv(), B = popv();
      Stack.push_back(A);
      Stack.push_back(B);
      break;
    }
    case OP_arraylength: {
      Value V = popv();
      HeapObject *Arr = deref(V.R);
      if (!Arr) {
        throwBuiltin(JvmErrorKind::NullPointerException,
                     "java/lang/NullPointerException", "arraylength");
        continue;
      }
      Stack.push_back(
          Value::makeInt(static_cast<int32_t>(Arr->Elems.size())));
      break;
    }
    case OP_newarray: {
      Value Len = popv();
      if (Len.asInt() < 0) {
        throwBuiltin(JvmErrorKind::NegativeArraySizeException,
                     "java/lang/NegativeArraySizeException",
                     std::to_string(Len.asInt()));
        continue;
      }
      int32_t Ref = allocObject("[I");
      if (Aborted)
        return finish(false);
      Heap[Ref - 1].IsArray = true;
      Heap[Ref - 1].Elems.assign(static_cast<size_t>(Len.asInt()),
                                 Value::makeInt(0));
      Stack.push_back(Value::makeRef(Ref));
      break;
    }
    case OP_anewarray: {
      Value Len = popv();
      auto Name =
          LC.CF.CP.getClassName(static_cast<uint16_t>(I.Operand1));
      if (Len.asInt() < 0) {
        throwBuiltin(JvmErrorKind::NegativeArraySizeException,
                     "java/lang/NegativeArraySizeException",
                     std::to_string(Len.asInt()));
        continue;
      }
      int32_t Ref =
          allocArray(Name ? *Name : "java/lang/Object", Len.asInt());
      if (Aborted)
        return finish(false);
      Stack.push_back(Value::makeRef(Ref));
      break;
    }
    case OP_iaload:
    case OP_aaload: {
      Value Index = popv();
      Value ArrV = popv();
      HeapObject *Arr = deref(ArrV.R);
      if (!Arr) {
        throwBuiltin(JvmErrorKind::NullPointerException,
                     "java/lang/NullPointerException", "array load");
        continue;
      }
      int32_t Idx = Index.asInt();
      if (Idx < 0 || static_cast<size_t>(Idx) >= Arr->Elems.size()) {
        throwBuiltin(JvmErrorKind::ArrayIndexOutOfBoundsException,
                     "java/lang/ArrayIndexOutOfBoundsException",
                     std::to_string(Idx));
        continue;
      }
      Stack.push_back(Arr->Elems[Idx]);
      break;
    }
    case OP_iastore:
    case OP_aastore: {
      Value V = popv();
      Value Index = popv();
      Value ArrV = popv();
      HeapObject *Arr = deref(ArrV.R);
      if (!Arr) {
        throwBuiltin(JvmErrorKind::NullPointerException,
                     "java/lang/NullPointerException", "array store");
        continue;
      }
      int32_t Idx = Index.asInt();
      if (Idx < 0 || static_cast<size_t>(Idx) >= Arr->Elems.size()) {
        throwBuiltin(JvmErrorKind::ArrayIndexOutOfBoundsException,
                     "java/lang/ArrayIndexOutOfBoundsException",
                     std::to_string(Idx));
        continue;
      }
      Arr->Elems[Idx] = V;
      break;
    }
    case OP_new: {
      auto Name =
          LC.CF.CP.getClassName(static_cast<uint16_t>(I.Operand1));
      if (!Name) {
        abort(CurrentPhase, JvmErrorKind::VerifyError,
              "new of invalid class constant");
        return finish(false);
      }
      LoadedClass *Target = loadClass(*Name);
      if (!Target)
        return finish(false);
      if (!initializeClass(*Target))
        return finish(false);
      if (Target->CF.isInterface() ||
          (Target->CF.AccessFlags & ACC_ABSTRACT)) {
        abort(CurrentPhase, JvmErrorKind::InstantiationError, *Name);
        return finish(false);
      }
      int32_t Ref = allocObject(*Name);
      if (Aborted)
        return finish(false);
      Stack.push_back(Value::makeRef(Ref));
      break;
    }
    case OP_checkcast: {
      auto Name =
          LC.CF.CP.getClassName(static_cast<uint16_t>(I.Operand1));
      // Resolution happens when the instruction executes (JVMS §5.4.3):
      // a missing class raises NoClassDefFoundError even for null.
      if (Name && !loadClass(*Name))
        return finish(false);
      Value V = popv();
      if (!V.isNull() && Name && !refInstanceOf(V.R, *Name)) {
        throwBuiltin(JvmErrorKind::ClassCastException,
                     "java/lang/ClassCastException",
                     classOfRef(V.R) + " cannot be cast to " + *Name);
        continue;
      }
      Stack.push_back(V);
      break;
    }
    case OP_instanceof: {
      auto Name =
          LC.CF.CP.getClassName(static_cast<uint16_t>(I.Operand1));
      if (Name && !loadClass(*Name))
        return finish(false);
      Value V = popv();
      Stack.push_back(Value::makeInt(
          !V.isNull() && Name && refInstanceOf(V.R, *Name) ? 1 : 0));
      break;
    }
    case OP_monitorenter:
    case OP_monitorexit:
      popv(); // Single-threaded model: monitors are no-ops.
      break;
    case OP_getstatic:
    case OP_putstatic: {
      auto Ref = LC.CF.CP.getMemberRef(static_cast<uint16_t>(I.Operand1));
      if (!Ref) {
        abort(CurrentPhase, JvmErrorKind::VerifyError, Ref.error());
        return finish(false);
      }
      LoadedClass *Holder =
          resolveField(Ref->ClassName, Ref->Name, Ref->Descriptor);
      if (Aborted)
        return finish(false);
      if (covBranch(Cov, exec_probes::id(exec_probes::FieldMissing),
                    !Holder)) {
        abort(CurrentPhase, JvmErrorKind::NoSuchFieldError,
              Ref->ClassName + "." + Ref->Name);
        return finish(false);
      }
      const FieldInfo *Field = Holder->CF.findField(Ref->Name);
      if (covBranch(Cov,
                    exec_probes::id(exec_probes::FieldStaticMismatch),
                    Field && !Field->isStatic())) {
        abort(CurrentPhase, JvmErrorKind::IncompatibleClassChangeError,
              "expected static field " + Ref->Name);
        return finish(false);
      }
      if (Field &&
          !checkMemberAccess(LC.CF.ThisClass, Holder->CF.ThisClass,
                             Field->AccessFlags, Ref->Name))
        return finish(false);
      if (!initializeClass(*Holder))
        return finish(false);
      std::string Key = fieldKey(Ref->Name, Ref->Descriptor);
      if (Op == OP_getstatic) {
        Stack.push_back(Holder->Statics[Key]);
      } else {
        Holder->Statics[Key] = popv();
      }
      break;
    }
    case OP_getfield:
    case OP_putfield: {
      auto Ref = LC.CF.CP.getMemberRef(static_cast<uint16_t>(I.Operand1));
      if (!Ref) {
        abort(CurrentPhase, JvmErrorKind::VerifyError, Ref.error());
        return finish(false);
      }
      Value Stored;
      if (Op == OP_putfield)
        Stored = popv();
      Value Receiver = popv();
      HeapObject *Obj = deref(Receiver.R);
      if (!Obj) {
        throwBuiltin(JvmErrorKind::NullPointerException,
                     "java/lang/NullPointerException",
                     "field access on null");
        continue;
      }
      std::string Key = fieldKey(Ref->Name, Ref->Descriptor);
      if (Op == OP_getfield) {
        auto FieldIt = Obj->Fields.find(Key);
        Stack.push_back(FieldIt != Obj->Fields.end() ? FieldIt->second
                                                     : Value::null());
      } else {
        Obj->Fields[Key] = Stored;
      }
      break;
    }
    case OP_invokestatic:
    case OP_invokevirtual:
    case OP_invokespecial:
    case OP_invokeinterface: {
      auto Ref = LC.CF.CP.getMemberRef(static_cast<uint16_t>(I.Operand1));
      if (!Ref) {
        abort(CurrentPhase, JvmErrorKind::VerifyError, Ref.error());
        return finish(false);
      }
      MethodDescriptor MD;
      if (!parseMethodDescriptor(Ref->Descriptor, MD)) {
        abort(CurrentPhase, JvmErrorKind::VerifyError,
              "malformed descriptor at invoke: " + Ref->Descriptor);
        return finish(false);
      }
      // Pop arguments (right to left), then the receiver if any.
      std::vector<Value> CallArgs(MD.Params.size());
      for (size_t K = MD.Params.size(); K-- > 0;)
        CallArgs[K] = popv();
      std::string DispatchClass = Ref->ClassName;
      if (Op != OP_invokestatic) {
        Value Receiver = popv();
        if (Receiver.isNull()) {
          throwBuiltin(JvmErrorKind::NullPointerException,
                       "java/lang/NullPointerException",
                       "invoke on null receiver");
          continue;
        }
        if (Op == OP_invokevirtual || Op == OP_invokeinterface)
          DispatchClass = classOfRef(Receiver.R);
        if (DispatchClass.size() > 0 && DispatchClass[0] == '[')
          DispatchClass = "java/lang/Object"; // Array methods.
        CallArgs.insert(CallArgs.begin(), Receiver);
      }
      if (Aborted)
        return finish(false);

      ResolvedMethod Resolved =
          resolveMethod(DispatchClass, Ref->Name, Ref->Descriptor);
      if (Aborted)
        return finish(false);
      if (!Resolved.Method && Op != OP_invokestatic)
        Resolved = resolveMethod(Ref->ClassName, Ref->Name,
                                 Ref->Descriptor);
      if (Aborted)
        return finish(false);
      if (covBranch(Cov, exec_probes::id(exec_probes::MethodMissing),
                    !Resolved.Method)) {
        abort(CurrentPhase, JvmErrorKind::NoSuchMethodError,
              Ref->ClassName + "." + Ref->Name + Ref->Descriptor);
        return finish(false);
      }
      bool WantStatic = Op == OP_invokestatic;
      if (covBranch(Cov,
                    exec_probes::id(exec_probes::MethodStaticMismatch),
                    Resolved.Method->isStatic() != WantStatic)) {
        abort(CurrentPhase, JvmErrorKind::IncompatibleClassChangeError,
              Ref->Name + " static-ness mismatch");
        return finish(false);
      }
      if (!checkMemberAccess(LC.CF.ThisClass,
                             Resolved.Holder->CF.ThisClass,
                             Resolved.Method->AccessFlags, Ref->Name))
        return finish(false);
      if (WantStatic && !initializeClass(*Resolved.Holder))
        return finish(false);
      if (!ensureInvocable(*Resolved.Holder, *Resolved.Method))
        return finish(false);

      Value CallRet;
      if (!invoke(*Resolved.Holder, *Resolved.Method,
                  std::move(CallArgs), CallRet)) {
        if (PendingException != 0)
          continue; // Exception propagates; look for a handler here.
        return finish(false);
      }
      if (MD.ReturnType.Kind != TypeKind::Void)
        Stack.push_back(CallRet);
      break;
    }
    default: {
      // Remaining compact families handled by range.
      if (Op >= OP_iconst_m1 && Op <= OP_iconst_5) {
        Stack.push_back(Value::makeInt(static_cast<int32_t>(Op) -
                                       static_cast<int32_t>(OP_iconst_0)));
        break;
      }
      if (Op >= 0x0B && Op <= 0x0D) { // fconst
        Stack.push_back(Value::makeFloat(Op - 0x0B));
        break;
      }
      if (Op == 0x0E || Op == 0x0F) { // dconst
        Stack.push_back(Value::makeDouble(Op - 0x0E));
        break;
      }
      // Loads.
      if (Op == OP_iload || Op == OP_lload || Op == OP_fload ||
          Op == OP_dload || Op == OP_aload) {
        size_t Slot = static_cast<size_t>(I.Operand1);
        Stack.push_back(Slot < Locals.size() ? Locals[Slot] : Value());
        break;
      }
      if (Op >= OP_iload_0 && Op <= OP_aload_3) { // all short-form loads
        unsigned Slot = (Op - OP_iload_0) % 4;
        Stack.push_back(Slot < Locals.size() ? Locals[Slot] : Value());
        break;
      }
      // Stores.
      if (Op == OP_istore || Op == OP_lstore || Op == OP_fstore ||
          Op == OP_dstore || Op == OP_astore) {
        size_t Slot = static_cast<size_t>(I.Operand1);
        Value V = popv();
        if (Slot < Locals.size())
          Locals[Slot] = V;
        break;
      }
      if (Op >= OP_istore_0 && Op <= OP_astore_3) {
        unsigned Slot = (Op - OP_istore_0) % 4;
        Value V = popv();
        if (Slot < Locals.size())
          Locals[Slot] = V;
        break;
      }
      // Integer arithmetic.
      if (Op == OP_iadd || Op == OP_isub || Op == OP_imul ||
          Op == OP_idiv || Op == OP_irem || Op == OP_ishl ||
          Op == OP_ishr || Op == 0x7C || Op == OP_iand || Op == OP_ior ||
          Op == OP_ixor) {
        Value B = popv(), A = popv();
        int32_t X = A.asInt(), Y = B.asInt();
        int32_t Out = 0;
        if ((Op == OP_idiv || Op == OP_irem) && Y == 0) {
          throwBuiltin(JvmErrorKind::ArithmeticException,
                       "java/lang/ArithmeticException", "/ by zero");
          continue;
        }
        switch (Op) {
        case OP_iadd:
          Out = static_cast<int32_t>(static_cast<uint32_t>(X) +
                                     static_cast<uint32_t>(Y));
          break;
        case OP_isub:
          Out = static_cast<int32_t>(static_cast<uint32_t>(X) -
                                     static_cast<uint32_t>(Y));
          break;
        case OP_imul:
          Out = static_cast<int32_t>(static_cast<uint32_t>(X) *
                                     static_cast<uint32_t>(Y));
          break;
        case OP_idiv:
          Out = (X == INT32_MIN && Y == -1) ? INT32_MIN : X / Y;
          break;
        case OP_irem:
          Out = (X == INT32_MIN && Y == -1) ? 0 : X % Y;
          break;
        case OP_ishl:
          Out = static_cast<int32_t>(static_cast<uint32_t>(X)
                                     << (Y & 31));
          break;
        case OP_ishr:
          Out = X >> (Y & 31);
          break;
        case 0x7C: // iushr
          Out = static_cast<int32_t>(static_cast<uint32_t>(X) >> (Y & 31));
          break;
        case OP_iand:
          Out = X & Y;
          break;
        case OP_ior:
          Out = X | Y;
          break;
        case OP_ixor:
          Out = X ^ Y;
          break;
        }
        Stack.push_back(Value::makeInt(Out));
        break;
      }
      if (Op == OP_ineg) {
        Value A = popv();
        Stack.push_back(Value::makeInt(-A.asInt()));
        break;
      }
      // Conversions: coarse model preserving the scalar payload.
      if (Op >= OP_i2l && Op <= 0x93) {
        Value A = popv();
        switch (Op) {
        case OP_i2l:
          Stack.push_back(Value::makeLong(A.asInt()));
          break;
        case 0x86: // i2f
          Stack.push_back(Value::makeFloat(A.asInt()));
          break;
        case 0x87: // i2d
          Stack.push_back(Value::makeDouble(A.asInt()));
          break;
        case 0x88: // l2i
          Stack.push_back(Value::makeInt(static_cast<int32_t>(A.I)));
          break;
        case OP_i2b:
          Stack.push_back(Value::makeInt(static_cast<int8_t>(A.asInt())));
          break;
        case 0x92: // i2c
          Stack.push_back(
              Value::makeInt(static_cast<uint16_t>(A.asInt())));
          break;
        case 0x93: // i2s
          Stack.push_back(Value::makeInt(static_cast<int16_t>(A.asInt())));
          break;
        default:
          // Other fp/long conversions: pass through payload coarsely.
          Stack.push_back(A);
          break;
        }
        break;
      }
      // Int comparisons / branches.
      if (Op >= OP_ifeq && Op <= OP_ifle) {
        int32_t V = popv().asInt();
        bool Taken = false;
        switch (Op) {
        case OP_ifeq:
          Taken = V == 0;
          break;
        case OP_ifne:
          Taken = V != 0;
          break;
        case OP_iflt:
          Taken = V < 0;
          break;
        case OP_ifge:
          Taken = V >= 0;
          break;
        case OP_ifgt:
          Taken = V > 0;
          break;
        case OP_ifle:
          Taken = V <= 0;
          break;
        }
        if (Taken)
          NextPc = static_cast<uint32_t>(I.Operand1);
        break;
      }
      if (Op >= OP_if_icmpeq && Op <= OP_if_icmple) {
        int32_t B = popv().asInt();
        int32_t A = popv().asInt();
        bool Taken = false;
        switch (Op) {
        case OP_if_icmpeq:
          Taken = A == B;
          break;
        case OP_if_icmpne:
          Taken = A != B;
          break;
        case OP_if_icmplt:
          Taken = A < B;
          break;
        case OP_if_icmpge:
          Taken = A >= B;
          break;
        case OP_if_icmpgt:
          Taken = A > B;
          break;
        case OP_if_icmple:
          Taken = A <= B;
          break;
        }
        if (Taken)
          NextPc = static_cast<uint32_t>(I.Operand1);
        break;
      }
      if (Op == OP_if_acmpeq || Op == OP_if_acmpne) {
        Value B = popv(), A = popv();
        bool Equal = A.R == B.R;
        if ((Op == OP_if_acmpeq) == Equal)
          NextPc = static_cast<uint32_t>(I.Operand1);
        break;
      }
      if (Op == OP_ifnull || Op == OP_ifnonnull) {
        Value V = popv();
        if ((Op == OP_ifnull) == V.isNull())
          NextPc = static_cast<uint32_t>(I.Operand1);
        break;
      }
      if (Op == OP_tableswitch || Op == OP_lookupswitch) {
        popv();
        NextPc = static_cast<uint32_t>(I.Operand1); // Default target.
        break;
      }
      abort(CurrentPhase, JvmErrorKind::InternalError,
            "unsupported opcode at runtime: " + opcodeName(Op));
      return finish(false);
    }
    }

    if (Aborted)
      return finish(false);
    Pc = NextPc;
  }
}
