//===- jvm/VerifierLattice.h - Shared verification-type lattice ----------===//
//
// Part of classfuzz-cpp (PLDI 2016 classfuzz reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The verification-type lattice (JVMS §4.10.1.2, simplified) shared
/// between the policy-sensitive bytecode verifier (jvm/Verifier.cpp) and
/// the execution-free static analyzer (analysis/StaticAnalyzer.cpp). Both
/// pipelines model operand-stack and local-variable slots with the same
/// VType, join values with the same joinVTypes rules, and compute
/// per-instruction stack depth effects with the same insnStackEffect
/// table, so the two cannot drift apart.
///
/// Everything here is policy-free and coverage-free: the join reports
/// *what happened* (VJoinIssue) and each caller decides whether that is
/// an error under its policy, and which probes to record.
///
//===----------------------------------------------------------------------===//

#ifndef CLASSFUZZ_JVM_VERIFIERLATTICE_H
#define CLASSFUZZ_JVM_VERIFIERLATTICE_H

#include "classfile/ClassFile.h"
#include "classfile/Descriptor.h"
#include "classfile/Opcodes.h"

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace classfuzz {

/// Verification types (JVMS §4.10.1.2, simplified).
enum class VKind : uint8_t {
  Top,        ///< Unusable (merge conflict or long/double upper half).
  Int,
  Float,
  Long,
  Double,
  Null,
  Ref,        ///< Reference with class name.
  UninitThis, ///< `this` in <init> before the super call.
  Uninit,     ///< Result of `new`, identified by the new's offset.
  RetAddr,    ///< jsr return address (accepted, not tracked precisely).
};

/// One verification-type value: a lattice kind plus the payload that
/// distinguishes values within a kind (class name for Ref, allocation
/// site for Uninit).
struct VType {
  VKind Kind = VKind::Top;
  std::string RefName;    ///< For Ref.
  uint32_t NewOffset = 0; ///< For Uninit.

  bool operator==(const VType &O) const {
    return Kind == O.Kind && RefName == O.RefName && NewOffset == O.NewOffset;
  }
  bool isRefLike() const {
    return Kind == VKind::Ref || Kind == VKind::Null ||
           Kind == VKind::UninitThis || Kind == VKind::Uninit;
  }
  bool isWide() const { return Kind == VKind::Long || Kind == VKind::Double; }
};

VType makeVRef(std::string Name);
VType makeVKind(VKind K);

/// Human-readable kind name ("int", "reference", "uninitializedThis"...).
std::string vkindName(VKind K);

/// Maps a descriptor type to its verification type. Arrays are modeled
/// as references carrying their full descriptor.
VType vtypeFromJType(const JType &T);

/// One abstract machine frame: typed locals plus typed operand stack.
struct VFrame {
  std::vector<VType> Locals;
  std::vector<VType> Stack;

  bool operator==(const VFrame &O) const {
    return Locals == O.Locals && Stack == O.Stack;
  }
};

/// What a join observed about its operands. The lattice itself is total
/// (every pair joins, worst case to Top); callers translate issues into
/// policy-dependent failures.
enum class VJoinIssue : uint8_t {
  None,             ///< Clean join.
  UninitializedMix, ///< Initialized and uninitialized references met.
  KindConflict,     ///< Incompatible kinds collapsed to Top.
};

/// Least common superclass oracle used when two distinct Ref types join.
using VCommonSuperFn =
    std::function<std::string(const std::string &, const std::string &)>;

/// Joins two verification types. Total: always produces a value (Top in
/// the worst case) and reports via \p Issue when the operands were
/// suspicious. Rules, in order: equal values join to themselves; Top
/// absorbs; initialized/uninitialized reference mixes go to Top with
/// UninitializedMix; Null joins to the other reference-like type; two
/// Refs join to their common superclass via \p CommonSuper; everything
/// else goes to Top with KindConflict.
VType joinVTypes(const VType &A, const VType &B,
                 const VCommonSuperFn &CommonSuper, VJoinIssue &Issue);

/// Net stack effect of \p I in slots: how many it pops and pushes.
/// Returns false when the effect depends on information the caller does
/// not have (unresolvable member refs, undefined opcodes). Member-ref
/// operands are resolved against \p CF's constant pool.
bool insnStackEffect(const ClassFile &CF, const Insn &I, int &Pops,
                     int &Pushes);

} // namespace classfuzz

#endif // CLASSFUZZ_JVM_VERIFIERLATTICE_H
