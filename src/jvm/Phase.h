//===- jvm/Phase.h - The {0..4} test-output encoding ----------------===//
//
// Part of classfuzz-cpp (PLDI 2016 classfuzz reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The single home of the paper's test-output encoding (§2.3, Figure 3):
/// a JVM run is simplified to {0 = normally invoked, 1 = rejected while
/// loading, 2 = linking, 3 = initialization, 4 = runtime}. Every
/// consumer -- the differential tester, reports, telemetry, benches,
/// tests -- encodes through encodePhase() and labels codes through
/// phaseCodeName(), so the encoding cannot drift between layers.
///
//===----------------------------------------------------------------------===//

#ifndef CLASSFUZZ_JVM_PHASE_H
#define CLASSFUZZ_JVM_PHASE_H

#include "jvm/JvmTypes.h"

namespace classfuzz {

/// Number of distinct encoded outcome codes.
inline constexpr int NumPhaseCodes = 5;

/// Maps one JVM run to the paper's 0..4 test-output encoding.
int encodePhase(const JvmResult &Result);

/// Human-readable label of an encoded outcome, e.g. "normally invoked"
/// for 0 or "rejected while linking" for 2. "?" for out-of-range codes.
const char *phaseCodeName(int Code);

} // namespace classfuzz

#endif // CLASSFUZZ_JVM_PHASE_H
