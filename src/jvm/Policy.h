//===- jvm/Policy.h - Per-implementation JVM behavior profiles -----------===//
//
// Part of classfuzz-cpp (PLDI 2016 classfuzz reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A JvmPolicy parameterizes the mini JVM with one implementation's
/// checking and verification behavior. The five built-in profiles model
/// the JVMs of Table 3 (HotSpot 7/8/9, J9 for IBM SDK8, GIJ 5.1.0) with
/// the concrete differences the paper documents:
///
///  * Problem 1: non-static <clinit> — HotSpot treats it as an ordinary
///    method; J9 raises ClassFormatError ("no Code attribute ...").
///  * Problem 2: J9 verifies a method only when invoked, HotSpot verifies
///    eagerly; GIJ flags merged initialized/uninitialized types and
///    unsafe reference parameter casts that HotSpot misses.
///  * Problem 3: HotSpot checks accessibility of classes in throws
///    clauses (IllegalAccessError); J9 and GIJ do not.
///  * Problem 4: GIJ accepts interfaces with non-Object superclasses,
///    non-public interface members, interface main methods, malformed
///    <init> signatures, and duplicate fields that the others reject.
///
/// Each policy also names a runtime-library variant (see runtime/), which
/// models the JRE-version skew behind the compatibility discrepancies of
/// the paper's preliminary study.
///
//===----------------------------------------------------------------------===//

#ifndef CLASSFUZZ_JVM_POLICY_H
#define CLASSFUZZ_JVM_POLICY_H

#include "jvm/ExecTier.h"

#include <cstdint>
#include <string>
#include <vector>

namespace classfuzz {

/// When a given check runs, if at all.
enum class CheckMode : uint8_t {
  Off,   ///< Never checked (lenient).
  Lazy,  ///< Checked only when the construct is actually used/invoked.
  Eager, ///< Checked during loading/linking.
};

/// One JVM implementation's behavior profile.
struct JvmPolicy {
  std::string Name;     ///< "HotSpot for Java 8".
  std::string VendorId; ///< "hotspot", "j9", "gij".
  std::string JavaVersion; ///< "1.8.0".

  /// Highest classfile major version the implementation accepts; above
  /// it the loader raises UnsupportedClassVersionError.
  uint16_t MaxClassFileMajor = 52;

  /// Which runtime-library variant this JVM ships (see runtime module):
  /// "jre5", "jre7", "jre8", "jre9".
  std::string RuntimeLib = "jre8";

  // --- Format checking (loading phase) -----------------------------------
  /// Non-static <clinit> treated as initializer error (J9) vs ordinary
  /// method (HotSpot, and the SE 9 spec clarification).
  bool StrictClinitStatic = false;
  /// Require that every non-abstract, non-native method has a Code
  /// attribute at load time (vs only when invoked).
  CheckMode RequireCode = CheckMode::Eager;
  /// <init> must be non-static, non-final, non-native, non-abstract and
  /// return void (GIJ: Off).
  bool CheckInitShape = true;
  /// Reject classes declaring two fields with the same name+descriptor
  /// (GIJ: false).
  bool CheckDuplicateFields = true;
  /// Reject classes declaring two methods with the same name+descriptor.
  bool CheckDuplicateMethods = true;
  /// Interfaces must extend java/lang/Object (GIJ: false).
  bool CheckInterfaceSuper = true;
  /// Interface methods must be public abstract; interface fields public
  /// static final (GIJ: false).
  bool CheckInterfaceMemberFlags = true;
  /// Classes may not be both final and abstract; conflicting visibility
  /// flags are rejected (GIJ: lenient).
  bool CheckClassFlagConsistency = true;
  /// Member visibility flags: at most one of public/private/protected.
  bool CheckMemberFlagConsistency = true;
  /// Field/method descriptors must parse (GIJ: lenient).
  bool CheckDescriptors = true;
  /// Abstract methods in a non-abstract class: Eager = ClassFormatError
  /// at load (J9), Lazy = AbstractMethodError if ever invoked (HotSpot),
  /// Off = ignored (GIJ).
  CheckMode CheckConcreteAbstractMethod = CheckMode::Lazy;

  // --- Linking phase ------------------------------------------------------
  /// Bytecode verification: Eager = all methods at link time (HotSpot),
  /// Lazy = per method at first invocation (J9), Off = never (no profile
  /// uses Off; kept for ablation experiments).
  CheckMode Verification = CheckMode::Eager;
  /// With lazy verification, still run the *structural* checks (decode,
  /// branch targets, exception table) for every method at link time --
  /// J9 pre-verifies structure eagerly even though type checking waits
  /// for the first invocation.
  bool StructuralVerifyOnLink = false;
  /// Reject merges of mismatched primitive kinds at control-flow joins
  /// immediately ("stack shape inconsistent") instead of merging to an
  /// unusable type -- the paper's preliminary study saw 37 JRE
  /// classfiles fail on J9 with exactly this message because "HotSpot
  /// and J9 adopt different stack frames".
  bool StrictPrimitiveMerge = false;
  /// Reject subclasses of final classes (VerifyError).
  bool CheckFinalSuperclass = true;
  /// VerifyError when initialized and uninitialized types merge at a
  /// control-flow join (GIJ catches this; HotSpot does not).
  bool CheckUninitializedMerge = false;
  /// Strict reference-assignability checking of invoke arguments versus
  /// declared parameter types: detects the unsafe-cast pattern of
  /// Problem 2 (GIJ: true; HotSpot/J9: false).
  bool StrictInvokeArgTypes = false;
  /// Check accessibility of classes named in throws clauses
  /// (HotSpot: true -> IllegalAccessError; J9/GIJ: false).
  bool CheckThrowsAccessibility = false;
  /// Enforce member access control (private / package-private) during
  /// field and method resolution (IllegalAccessError). GIJ is lenient
  /// here, matching its generally looser access policies (§3.3:
  /// JVMs "hold different accessibilities to resources and libraries").
  bool CheckMemberAccess = true;
  /// Superclass of a class (not interface) may not be an interface, and
  /// implemented interfaces must be interfaces
  /// (IncompatibleClassChangeError).
  bool CheckHierarchyKinds = true;

  // --- Invocation ---------------------------------------------------------
  /// main must be public and static (GIJ: lenient).
  bool RequireStaticMain = true;
  /// Allow running an interface's main method (GIJ: true).
  bool AllowInterfaceMain = false;

  // --- Interpreter limits (identical across profiles) ---------------------
  uint32_t MaxInterpSteps = 200000;
  uint32_t MaxCallDepth = 128;
  uint32_t MaxHeapObjects = 65536;

  // --- Execution tier (jvm/ExecEngine.h) -----------------------------------
  /// Which execution pipeline dispatches bytecode. A profile is
  /// (policy × tier); all tiers are observably equivalent by contract,
  /// and the tier-diff campaign mode cross-checks that contract.
  ExecTier Tier = ExecTier::Threaded;
  /// Baseline tier only: how many compiled methods the code cache holds
  /// before LRU eviction.
  uint32_t JitCacheCapacity = 64;
  /// Baseline tier only: publish this Vm's jit.* counters to the global
  /// telemetry registry at teardown. Campaign tier batches run on
  /// speculative workers and disable this, re-publishing committed runs
  /// at the deterministic commit stage instead.
  bool JitTelemetry = true;
};

/// Table 3's five implementations.
JvmPolicy makeHotSpot7Policy();
JvmPolicy makeHotSpot8Policy();
JvmPolicy makeHotSpot9Policy();
JvmPolicy makeJ9Policy();
JvmPolicy makeGijPolicy();

/// The five profiles in the paper's column order:
/// HotSpot7, HotSpot8, HotSpot9, J9, GIJ.
std::vector<JvmPolicy> allJvmPolicies();

/// The reference JVM of the evaluation (HotSpot for Java 9).
JvmPolicy referenceJvmPolicy();

} // namespace classfuzz

#endif // CLASSFUZZ_JVM_POLICY_H
