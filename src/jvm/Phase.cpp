//===- jvm/Phase.cpp      --------------------------------------------------===//

#include "jvm/Phase.h"

using namespace classfuzz;

int classfuzz::encodePhase(const JvmResult &Result) {
  if (Result.Invoked)
    return 0;
  switch (Result.Phase) {
  case JvmPhase::Loading:
    return 1;
  case JvmPhase::Linking:
    return 2;
  case JvmPhase::Initialization:
    return 3;
  case JvmPhase::Execution:
  case JvmPhase::Completed:
    return 4;
  }
  return 4;
}

const char *classfuzz::phaseCodeName(int Code) {
  switch (Code) {
  case 0:
    return "normally invoked";
  case 1:
    return "rejected while loading";
  case 2:
    return "rejected while linking";
  case 3:
    return "rejected while initializing";
  case 4:
    return "rejected at runtime";
  }
  return "?";
}
