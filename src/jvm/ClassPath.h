//===- jvm/ClassPath.h - The execution environment e ---------------------===//
//
// Part of classfuzz-cpp (PLDI 2016 classfuzz reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The environment e of a JVM execution r = jvm(e, c, i): the set of
/// loadable classfiles (runtime library plus test classes). Definition 2
/// of the paper distinguishes defects (same environment) from
/// compatibility discrepancies (different environments); fingerprint()
/// supports that equality check.
///
/// Representation: a copy-on-write overlay. A ClassPath is a chain of
/// immutable, reference-counted base layers plus one thin mutable
/// overlay map that receives add()s. Copying a ClassPath shares the
/// frozen layers (O(1) per layer) and deep-copies only the pending
/// overlay; freeze() seals the pending overlay into a new shared layer
/// so subsequent copies are cheap. This is what lets the campaign loop
/// and the differential tester stack "corpus + one mutant" environments
/// per iteration without re-copying the whole corpus (previously an
/// O(corpus) deep copy per mutant).
///
//===----------------------------------------------------------------------===//

#ifndef CLASSFUZZ_JVM_CLASSPATH_H
#define CLASSFUZZ_JVM_CLASSPATH_H

#include "support/ByteBuffer.h"

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace classfuzz {

/// A name -> classfile-bytes map modeling the class path plus runtime
/// library of one JVM setup.
///
/// Copies share frozen layers; mutation through add() only ever touches
/// the copy's private overlay, never a shared base (copy-on-write), so
/// handing copies to concurrent readers is safe as long as each copy is
/// mutated by at most one thread.
class ClassPath {
public:
  /// Registers (or replaces) the classfile for \p InternalName.
  void add(const std::string &InternalName, Bytes Data);

  /// Bytes for \p InternalName, or nullptr when unavailable (the JVM then
  /// raises NoClassDefFoundError). Newest layer wins.
  const Bytes *lookup(const std::string &InternalName) const;

  bool has(const std::string &InternalName) const {
    return lookup(InternalName) != nullptr;
  }

  /// All registered internal names, sorted.
  std::vector<std::string> names() const;

  /// Number of distinct registered names.
  size_t size() const { return NumDistinct; }

  /// Content fingerprint for environment-equality checks (Definition 2).
  /// Depends only on the merged name -> bytes view, not on layering.
  uint64_t fingerprint() const;

  /// Layers \p Overlay on top of this class path (overlay entries win).
  ClassPath overlaidWith(const ClassPath &Overlay) const;

  /// Seals pending add()s into a new shared immutable layer, making
  /// subsequent copies of this object O(layers) instead of O(pending
  /// entries). Flattens the chain when it grows past a small depth cap so
  /// lookups stay fast. No observable effect on contents.
  void freeze();

  /// Number of frozen layers under this object (diagnostic; exercised by
  /// the overlay tests and benchmarks).
  size_t layerDepth() const;

private:
  struct Layer {
    std::map<std::string, Bytes> Classes;
    std::shared_ptr<const Layer> Parent;
    size_t Depth = 1;
  };

  /// Builds the merged name -> bytes view (newest layer wins), sorted by
  /// name. Values point into the layers/overlay of this object.
  std::map<std::string, const Bytes *> mergedView() const;

  std::shared_ptr<const Layer> Base; ///< Frozen chain, newest first.
  std::map<std::string, Bytes> Overlay; ///< Pending writes (top layer).
  size_t NumDistinct = 0;
};

} // namespace classfuzz

#endif // CLASSFUZZ_JVM_CLASSPATH_H
