//===- jvm/ClassPath.h - The execution environment e ---------------------===//
//
// Part of classfuzz-cpp (PLDI 2016 classfuzz reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The environment e of a JVM execution r = jvm(e, c, i): the set of
/// loadable classfiles (runtime library plus test classes). Definition 2
/// of the paper distinguishes defects (same environment) from
/// compatibility discrepancies (different environments); fingerprint()
/// supports that equality check.
///
//===----------------------------------------------------------------------===//

#ifndef CLASSFUZZ_JVM_CLASSPATH_H
#define CLASSFUZZ_JVM_CLASSPATH_H

#include "support/ByteBuffer.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace classfuzz {

/// A name -> classfile-bytes map modeling the class path plus runtime
/// library of one JVM setup.
class ClassPath {
public:
  /// Registers (or replaces) the classfile for \p InternalName.
  void add(const std::string &InternalName, Bytes Data);

  /// Bytes for \p InternalName, or nullptr when unavailable (the JVM then
  /// raises NoClassDefFoundError).
  const Bytes *lookup(const std::string &InternalName) const;

  bool has(const std::string &InternalName) const {
    return Classes.count(InternalName) != 0;
  }

  /// All registered internal names, sorted.
  std::vector<std::string> names() const;

  size_t size() const { return Classes.size(); }

  /// Content fingerprint for environment-equality checks (Definition 2).
  uint64_t fingerprint() const;

  /// Layers \p Overlay on top of this class path (overlay entries win).
  ClassPath overlaidWith(const ClassPath &Overlay) const;

private:
  std::map<std::string, Bytes> Classes;
};

} // namespace classfuzz

#endif // CLASSFUZZ_JVM_CLASSPATH_H
