//===- jvm/FormatChecker.h - Loading-phase classfile checks --------------===//
//
// Part of classfuzz-cpp (PLDI 2016 classfuzz reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The semantic format checks a JVM performs while creating a class
/// (JVMS §4.8 "format checking" plus the static constraints of §4.9),
/// parameterized by JvmPolicy. This is where most of the paper's
/// documented implementation differences live: <clinit> handling,
/// interface member rules, duplicate members, <init> shape, flag
/// consistency, and descriptor validity.
///
//===----------------------------------------------------------------------===//

#ifndef CLASSFUZZ_JVM_FORMATCHECKER_H
#define CLASSFUZZ_JVM_FORMATCHECKER_H

#include "classfile/ClassFile.h"
#include "coverage/Tracefile.h"
#include "jvm/JvmTypes.h"
#include "jvm/Policy.h"

#include <functional>
#include <optional>

namespace classfuzz {

/// A failed format check: the error kind and message to raise.
struct CheckFailure {
  JvmErrorKind Kind = JvmErrorKind::ClassFormatError;
  std::string Message;
};

/// Receives format-check failures as they are found. Return true to
/// keep checking (the static analyzer's exhaustive mode), false to stop
/// at this failure (the VM's first-failure loading path).
using FormatSink = std::function<bool(const CheckFailure &)>;

/// Runs the loading-phase format checks of \p Policy over \p CF,
/// reporting every failure to \p Sink in deterministic order until the
/// sink declines. checkClassFormat and the static analyzer's Format
/// pass are both thin sinks over this one walk, so the exhaustive
/// diagnostics are a superset of the VM's first failure by construction.
/// \p Cov receives coverage probes when non-null (reference JVM runs).
void runFormatChecks(const ClassFile &CF, const JvmPolicy &Policy,
                     CoverageRecorder *Cov, const FormatSink &Sink);

/// Runs the loading-phase format checks of \p Policy over \p CF.
/// \p Cov receives coverage probes when non-null (reference JVM runs).
/// Returns the first failure, or nullopt when the class is acceptable.
std::optional<CheckFailure> checkClassFormat(const ClassFile &CF,
                                             const JvmPolicy &Policy,
                                             CoverageRecorder *Cov);

/// The deferred (lazy) per-method checks a JVM performs when a method is
/// about to be invoked: Code presence (RequireCode == Lazy) and
/// abstract-in-concrete (CheckConcreteAbstractMethod == Lazy). Returns
/// the failure to raise at invocation time, or nullopt.
std::optional<CheckFailure> checkMethodInvocable(const ClassFile &CF,
                                                 const MethodInfo &Method,
                                                 const JvmPolicy &Policy,
                                                 CoverageRecorder *Cov);

/// True when \p Method is a class/interface initialization method under
/// \p Policy's reading of the spec (the Problem 1 ambiguity): named
/// <clinit>, and -- for policies following the SE 9 clarification --
/// ACC_STATIC with descriptor ()V.
bool isInitializationMethod(const MethodInfo &Method,
                            const JvmPolicy &Policy);

} // namespace classfuzz

#endif // CLASSFUZZ_JVM_FORMATCHECKER_H
