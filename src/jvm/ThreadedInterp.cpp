//===- jvm/ThreadedInterp.cpp - Token-threaded interpreter tier ----------===//
//
// The default execution tier: token-threaded dispatch over the shared
// predecoded instruction stream (jvm/Predecode.h). Where the compiler
// supports it (GCC/Clang), dispatch is a computed goto straight from one
// handler into the next -- the classic direct-threaded loop of ART's
// interpreter_goto_table_impl.h; elsewhere a dense jump table over the
// handler tokens is used. Either way the per-instruction work drops from
// the switch tier's map-lookup-and-decode to an array index, which is
// what the bench_micro_jvm tier gate (>= 2x) measures.
//
//===----------------------------------------------------------------------===//

#include "jvm/ExecHandlers.h"

#include <map>

namespace classfuzz {

namespace {

/// Jump-table dispatch of one instruction, used by the non-GNU fallback
/// loop and shared with nothing else -- the baseline tier binds thunks
/// instead.
[[maybe_unused]] Ctl dispatchToken(ExecContext &C, const PInsn &I) {
  switch (static_cast<Handler>(I.Handler)) {
  case H_Nop:
    return C.doNop(I);
  case H_AconstNull:
    return C.doAconstNull(I);
  case H_IPush:
    return C.doIPush(I);
  case H_LPush:
    return C.doLPush(I);
  case H_FPush:
    return C.doFPush(I);
  case H_DPush:
    return C.doDPush(I);
  case H_Ldc:
    return C.doLdc(I);
  case H_Iinc:
    return C.doIinc(I);
  case H_Goto:
    return C.doGoto(I);
  case H_Return:
    return C.doReturn(I);
  case H_VReturn:
    return C.doVReturn(I);
  case H_Athrow:
    return C.doAthrow(I);
  case H_Pop:
    return C.doPop(I);
  case H_Pop2:
    return C.doPop2(I);
  case H_Dup:
    return C.doDup(I);
  case H_DupX1:
    return C.doDupX1(I);
  case H_Swap:
    return C.doSwap(I);
  case H_ArrayLength:
    return C.doArrayLength(I);
  case H_NewArray:
    return C.doNewArray(I);
  case H_ANewArray:
    return C.doANewArray(I);
  case H_ALoad:
    return C.doALoad(I);
  case H_AStore:
    return C.doAStore(I);
  case H_New:
    return C.doNew(I);
  case H_Checkcast:
    return C.doCheckcast(I);
  case H_InstanceOf:
    return C.doInstanceOf(I);
  case H_Monitor:
    return C.doMonitor(I);
  case H_GetStatic:
    return C.doStaticField(I, /*IsGet=*/true);
  case H_PutStatic:
    return C.doStaticField(I, /*IsGet=*/false);
  case H_GetField:
    return C.doInstanceField(I, /*IsGet=*/true);
  case H_PutField:
    return C.doInstanceField(I, /*IsGet=*/false);
  case H_Invoke:
    return C.doInvoke(I);
  case H_Load:
    return C.doLoad(I);
  case H_Store:
    return C.doStore(I);
  case H_IArith:
    return C.doIArith(I);
  case H_INeg:
    return C.doINeg(I);
  case H_Conv:
    return C.doConv(I);
  case H_If:
    return C.doIf(I);
  case H_IfICmp:
    return C.doIfICmp(I);
  case H_IfACmp:
    return C.doIfACmp(I);
  case H_IfNull:
    return C.doIfNull(I);
  case H_Switch:
    return C.doSwitch(I);
  case H_Unsupported:
  default:
    return C.doUnsupported(I);
  }
}

#if defined(__GNUC__) || defined(__clang__)
#define CF_THREADED_GOTO 1
#else
#define CF_THREADED_GOTO 0
#endif

#if CF_THREADED_GOTO

/// The computed-goto loop: each handler jumps directly to the next
/// instruction's label. The label table is indexed by Handler and must
/// stay in enum order. Entered with the loop head already run for the
/// current instruction (execInvoke does it), so the first dispatch goes
/// straight to the handler; every later one re-runs the head itself.
/// Always returns Ctl::Return: the whole frame executes in here.
Ctl runThreaded(ExecContext &C) {
  static const void *Table[NumHandlers] = {
      &&L_Nop,         &&L_AconstNull, &&L_IPush,     &&L_LPush,
      &&L_FPush,       &&L_DPush,      &&L_Ldc,       &&L_Iinc,
      &&L_Goto,        &&L_Return,     &&L_VReturn,   &&L_Athrow,
      &&L_Pop,         &&L_Pop2,       &&L_Dup,       &&L_DupX1,
      &&L_Swap,        &&L_ArrayLength, &&L_NewArray, &&L_ANewArray,
      &&L_ALoad,       &&L_AStore,     &&L_New,       &&L_Checkcast,
      &&L_InstanceOf,  &&L_Monitor,    &&L_GetStatic, &&L_PutStatic,
      &&L_GetField,    &&L_PutField,   &&L_Invoke,    &&L_Load,
      &&L_Store,       &&L_IArith,     &&L_INeg,      &&L_Conv,
      &&L_If,          &&L_IfICmp,     &&L_IfACmp,    &&L_IfNull,
      &&L_Switch,      &&L_Unsupported,
  };

  Ctl Act;
#define CF_DISPATCH()                                                        \
  do {                                                                       \
    if (!C.loopHead())                                                       \
      return Ctl::Return;                                                    \
    goto *Table[C.insn().Handler];                                           \
  } while (0)
#define CF_HANDLE(Label, Call)                                               \
  Label:                                                                     \
  Act = (Call);                                                              \
  if (Act == Ctl::Return)                                                    \
    return Ctl::Return;                                                      \
  if (Act == Ctl::Next) {                                                    \
    if (C.aborted()) {                                                       \
      C.Ok = false;                                                          \
      return Ctl::Return;                                                    \
    }                                                                        \
    C.Index = C.NextIndex;                                                   \
  }                                                                          \
  CF_DISPATCH();

  goto *Table[C.insn().Handler];
  CF_HANDLE(L_Nop, C.doNop(C.insn()))
  CF_HANDLE(L_AconstNull, C.doAconstNull(C.insn()))
  CF_HANDLE(L_IPush, C.doIPush(C.insn()))
  CF_HANDLE(L_LPush, C.doLPush(C.insn()))
  CF_HANDLE(L_FPush, C.doFPush(C.insn()))
  CF_HANDLE(L_DPush, C.doDPush(C.insn()))
  CF_HANDLE(L_Ldc, C.doLdc(C.insn()))
  CF_HANDLE(L_Iinc, C.doIinc(C.insn()))
  CF_HANDLE(L_Goto, C.doGoto(C.insn()))
  CF_HANDLE(L_Return, C.doReturn(C.insn()))
  CF_HANDLE(L_VReturn, C.doVReturn(C.insn()))
  CF_HANDLE(L_Athrow, C.doAthrow(C.insn()))
  CF_HANDLE(L_Pop, C.doPop(C.insn()))
  CF_HANDLE(L_Pop2, C.doPop2(C.insn()))
  CF_HANDLE(L_Dup, C.doDup(C.insn()))
  CF_HANDLE(L_DupX1, C.doDupX1(C.insn()))
  CF_HANDLE(L_Swap, C.doSwap(C.insn()))
  CF_HANDLE(L_ArrayLength, C.doArrayLength(C.insn()))
  CF_HANDLE(L_NewArray, C.doNewArray(C.insn()))
  CF_HANDLE(L_ANewArray, C.doANewArray(C.insn()))
  CF_HANDLE(L_ALoad, C.doALoad(C.insn()))
  CF_HANDLE(L_AStore, C.doAStore(C.insn()))
  CF_HANDLE(L_New, C.doNew(C.insn()))
  CF_HANDLE(L_Checkcast, C.doCheckcast(C.insn()))
  CF_HANDLE(L_InstanceOf, C.doInstanceOf(C.insn()))
  CF_HANDLE(L_Monitor, C.doMonitor(C.insn()))
  CF_HANDLE(L_GetStatic, C.doStaticField(C.insn(), /*IsGet=*/true))
  CF_HANDLE(L_PutStatic, C.doStaticField(C.insn(), /*IsGet=*/false))
  CF_HANDLE(L_GetField, C.doInstanceField(C.insn(), /*IsGet=*/true))
  CF_HANDLE(L_PutField, C.doInstanceField(C.insn(), /*IsGet=*/false))
  CF_HANDLE(L_Invoke, C.doInvoke(C.insn()))
  CF_HANDLE(L_Load, C.doLoad(C.insn()))
  CF_HANDLE(L_Store, C.doStore(C.insn()))
  CF_HANDLE(L_IArith, C.doIArith(C.insn()))
  CF_HANDLE(L_INeg, C.doINeg(C.insn()))
  CF_HANDLE(L_Conv, C.doConv(C.insn()))
  CF_HANDLE(L_If, C.doIf(C.insn()))
  CF_HANDLE(L_IfICmp, C.doIfICmp(C.insn()))
  CF_HANDLE(L_IfACmp, C.doIfACmp(C.insn()))
  CF_HANDLE(L_IfNull, C.doIfNull(C.insn()))
  CF_HANDLE(L_Switch, C.doSwitch(C.insn()))
  CF_HANDLE(L_Unsupported, C.doUnsupported(C.insn()))
#undef CF_HANDLE
#undef CF_DISPATCH
}

#endif // CF_THREADED_GOTO

} // namespace

/// The threaded tier: one predecode per method, then token-threaded
/// dispatch. No inline caches -- resolution runs the switch
/// interpreter's slow path probe-for-probe, so this tier is the
/// campaign default.
class ThreadedEngine : public ExecEngine {
public:
  explicit ThreadedEngine(Vm &VM) : ExecEngine(VM) {}

  ExecTier tier() const override { return ExecTier::Threaded; }

  bool invoke(Vm::LoadedClass &LC, const MethodInfo &M,
              std::vector<Value> Args, Value &Ret) override {
    auto Fetch = [&]() -> FetchedMethod {
      auto It = Cache.find(&M);
      if (It == Cache.end())
        It = Cache.emplace(&M, predecodeMethod(LC.CF, M)).first;
      return {&It->second, nullptr};
    };
    auto Dispatch = [](ExecContext &C) -> Ctl {
#if CF_THREADED_GOTO
      return runThreaded(C);
#else
      return dispatchToken(C, C.insn());
#endif
    };
    return ExecContext::execInvoke(VM, LC, M, std::move(Args), Ret, Fetch,
                                   Dispatch);
  }

private:
  /// Predecoded methods, one per MethodInfo. MethodInfo objects live in
  /// the Vm's class registry and are never moved or freed, so the
  /// pointer key is stable.
  std::map<const MethodInfo *, PredecodedMethod> Cache;
};

std::unique_ptr<ExecEngine> makeThreadedEngine(Vm &VM) {
  return std::make_unique<ThreadedEngine>(VM);
}

} // namespace classfuzz
