//===- jvm/ExecEngine.cpp - Engine factory and shared pieces -------------===//

#include "jvm/ExecEngine.h"

#include "telemetry/Telemetry.h"

namespace classfuzz {

ExecEngine::~ExecEngine() = default;

void JitStats::publish() const {
  if (!telemetry::enabled())
    return;
  static telemetry::Counter &CompilesCtr =
      telemetry::metrics().counter("jit.compiles");
  static telemetry::Counter &CacheHitsCtr =
      telemetry::metrics().counter("jit.cache_hits");
  static telemetry::Counter &EvictionsCtr =
      telemetry::metrics().counter("jit.evictions");
  static telemetry::Counter &IcHitsCtr =
      telemetry::metrics().counter("jit.ic_hits");
  static telemetry::Counter &IcMissesCtr =
      telemetry::metrics().counter("jit.ic_misses");
  CompilesCtr.inc(Compiles);
  CacheHitsCtr.inc(CacheHits);
  EvictionsCtr.inc(Evictions);
  IcHitsCtr.inc(IcHits);
  IcMissesCtr.inc(IcMisses);
}

/// The legacy per-invoke-decoding switch interpreter, unchanged in
/// Interp.cpp and kept as the semantic baseline the fast tiers are
/// differenced against. At namespace scope (not anonymous) so Vm's
/// friend declaration reaches it.
class SwitchEngine : public ExecEngine {
public:
  explicit SwitchEngine(Vm &VM) : ExecEngine(VM) {}
  ExecTier tier() const override { return ExecTier::Switch; }
  bool invoke(Vm::LoadedClass &LC, const MethodInfo &M,
              std::vector<Value> Args, Value &Ret) override {
    return VM.switchInvoke(LC, M, std::move(Args), Ret);
  }
};

// Defined in ThreadedInterp.cpp / BaselineTier.cpp.
std::unique_ptr<ExecEngine> makeThreadedEngine(Vm &VM);
std::unique_ptr<ExecEngine> makeBaselineEngine(Vm &VM);

std::unique_ptr<ExecEngine> makeExecEngine(Vm &VM, ExecTier Tier) {
  switch (Tier) {
  case ExecTier::Switch:
    return std::make_unique<SwitchEngine>(VM);
  case ExecTier::Threaded:
    return makeThreadedEngine(VM);
  case ExecTier::Baseline:
    return makeBaselineEngine(VM);
  }
  return makeThreadedEngine(VM);
}

} // namespace classfuzz
