//===- jvm/JvmTypes.h - JVM execution outcomes ---------------------------===//
//
// Part of classfuzz-cpp (PLDI 2016 classfuzz reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The observable behavior r = jvm(e, c, i) of a JVM run: the startup
/// phase reached, the error/exception kind if any (Table 1 of the paper),
/// and the program output. The paper's {0..4} test-output encoding of a
/// result lives in jvm/Phase.h (encodePhase).
///
//===----------------------------------------------------------------------===//

#ifndef CLASSFUZZ_JVM_JVMTYPES_H
#define CLASSFUZZ_JVM_JVMTYPES_H

#include <cstdint>
#include <string>
#include <vector>

namespace classfuzz {

/// The startup phases of Table 1.
enum class JvmPhase : uint8_t {
  Loading,        ///< Creation & loading.
  Linking,        ///< Verification, preparation, resolution.
  Initialization, ///< <clinit> execution.
  Execution,      ///< main lookup and interpretation.
  Completed,      ///< main returned normally.
};

const char *phaseName(JvmPhase Phase);

/// The built-in error/exception kinds a startup can raise (Table 1).
enum class JvmErrorKind : uint8_t {
  None,
  // Creation & loading.
  ClassFormatError,
  UnsupportedClassVersionError,
  NoClassDefFoundError,
  ClassCircularityError,
  // Linking.
  VerifyError,
  IncompatibleClassChangeError,
  AbstractMethodError,
  IllegalAccessError,
  InstantiationError,
  NoSuchFieldError,
  NoSuchMethodError,
  UnsatisfiedLinkError,
  // Initialization.
  ExceptionInInitializerError,
  // Invocation & execution.
  MainMethodNotFound,
  NullPointerException,
  ArithmeticException,
  ClassCastException,
  ArrayIndexOutOfBoundsException,
  NegativeArraySizeException,
  StackOverflowError,
  OutOfMemoryError,
  UserException, ///< athrow of a user/library exception object.
  InternalError, ///< Interpreter resource limits / unsupported opcode.
};

const char *errorKindName(JvmErrorKind Kind);

/// The observable behavior of one JVM run.
struct JvmResult {
  /// True when main was invoked and returned normally.
  bool Invoked = false;
  /// The phase in which the run ended (Completed when Invoked).
  JvmPhase Phase = JvmPhase::Completed;
  JvmErrorKind Error = JvmErrorKind::None;
  std::string Message;
  /// Lines printed via the modeled System.out.
  std::vector<std::string> Output;

  /// Formats like "VerifyError (linking): <message>" or "ok".
  std::string toString() const;
};

} // namespace classfuzz

#endif // CLASSFUZZ_JVM_JVMTYPES_H
