//===- coverage/Tracefile.h - Execution trace coverage sets --------------===//
//
// Part of classfuzz-cpp (PLDI 2016 classfuzz reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Tracefile records which statements and branches of the reference JVM
/// a classfile exercised (the paper collects these with GCOV/LCOV over
/// HotSpot's classfile/ package; we collect them with compile-time probes,
/// see Probes.h). Statement coverage `tr.stmt` and branch coverage `tr.br`
/// are the statistics compared by the uniqueness criteria of §2.2.3, and
/// the ⊕ merge operator supports the `[tr]` criterion.
///
//===----------------------------------------------------------------------===//

#ifndef CLASSFUZZ_COVERAGE_TRACEFILE_H
#define CLASSFUZZ_COVERAGE_TRACEFILE_H

#include <cstddef>
#include <cstdint>
#include <set>

namespace classfuzz {

/// The statement/branch hit sets of one execution on the reference JVM.
class Tracefile {
public:
  void addStmt(uint32_t Id) { Stmts.insert(Id); }
  /// Branch probes record (site, direction): the low bit encodes whether
  /// the branch was taken.
  void addBranch(uint32_t SiteId, bool Taken) {
    Branches.insert(SiteId << 1 | static_cast<uint32_t>(Taken));
  }

  /// Statement coverage statistic (number of distinct statements hit).
  size_t stmtCount() const { return Stmts.size(); }
  /// Branch coverage statistic (number of distinct branch directions hit).
  size_t branchCount() const { return Branches.size(); }

  bool empty() const { return Stmts.empty() && Branches.empty(); }
  void clear() {
    Stmts.clear();
    Branches.clear();
  }

  /// The ⊕ operator of §2.2.3: the union tracefile.
  Tracefile mergedWith(const Tracefile &Other) const;

  /// True when both hit sets are identical (static tracefile equality;
  /// execution order and frequencies are deliberately not recorded).
  bool sameSets(const Tracefile &Other) const {
    return Stmts == Other.Stmts && Branches == Other.Branches;
  }

  /// Order-independent fingerprint of the hit sets.
  uint64_t fingerprint() const;

  const std::set<uint32_t> &stmts() const { return Stmts; }
  const std::set<uint32_t> &branches() const { return Branches; }

private:
  std::set<uint32_t> Stmts;
  std::set<uint32_t> Branches;
};

/// Receives probe events during one JVM run and accumulates a Tracefile.
/// The Vm holds a (possibly null) pointer to a recorder; a null recorder
/// disables collection, mirroring running a non-reference JVM without
/// coverage instrumentation.
class CoverageRecorder {
public:
  void stmt(uint32_t Id) { Trace.addStmt(Id); }
  void branch(uint32_t SiteId, bool Taken) { Trace.addBranch(SiteId, Taken); }

  const Tracefile &trace() const { return Trace; }
  Tracefile takeTrace() {
    Tracefile Out = std::move(Trace);
    Trace = Tracefile();
    return Out;
  }
  void reset() { Trace.clear(); }

private:
  Tracefile Trace;
};

} // namespace classfuzz

#endif // CLASSFUZZ_COVERAGE_TRACEFILE_H
