//===- coverage/Uniqueness.cpp --------------------------------------------===//

#include "coverage/Uniqueness.h"

using namespace classfuzz;

const char *classfuzz::criterionName(UniquenessCriterion C) {
  switch (C) {
  case UniquenessCriterion::St:
    return "[st]";
  case UniquenessCriterion::StBr:
    return "[stbr]";
  case UniquenessCriterion::Tr:
    return "[tr]";
  }
  return "?";
}

UniquenessChecker::Signature
UniquenessChecker::signatureOf(const Tracefile &Trace) const {
  Signature Sig;
  Sig.Stats = {Trace.stmtCount(), Trace.branchCount()};
  // Only [tr] compares full hit sets; skip the O(|trace|) fingerprint
  // walk for the statistic-only criteria.
  if (Criterion == UniquenessCriterion::Tr)
    Sig.Fingerprint = Trace.fingerprint();
  return Sig;
}

bool UniquenessChecker::isUnique(const Signature &Sig) const {
  switch (Criterion) {
  case UniquenessCriterion::St:
    return !SeenStmtCounts.count(Sig.Stats.first);
  case UniquenessCriterion::StBr:
    return !SeenStatPairs.count(Sig.Stats);
  case UniquenessCriterion::Tr: {
    auto It = SeenFingerprints.find(Sig.Stats);
    if (It == SeenFingerprints.end())
      return true;
    // Equal statistics: representative only if the full hit sets differ
    // from every accepted tracefile with the same statistics (merge test).
    return !It->second.count(Sig.Fingerprint);
  }
  }
  return false;
}

void UniquenessChecker::insert(const Signature &Sig) {
  // Maintain only the structure isUnique reads for the active
  // criterion; populating all three bloats memory at corpus scale for
  // no behavioral difference.
  switch (Criterion) {
  case UniquenessCriterion::St:
    SeenStmtCounts.insert(Sig.Stats.first);
    break;
  case UniquenessCriterion::StBr:
    SeenStatPairs.insert(Sig.Stats);
    break;
  case UniquenessCriterion::Tr:
    SeenFingerprints[Sig.Stats].insert(Sig.Fingerprint);
    break;
  }
  ++NumInserted;
}

size_t UniquenessChecker::trackedEntries() const {
  size_t N = SeenStmtCounts.size() + SeenStatPairs.size();
  for (const auto &KV : SeenFingerprints)
    N += KV.second.size();
  return N;
}

bool UniquenessChecker::isUnique(const Tracefile &Trace) const {
  return isUnique(signatureOf(Trace));
}

void UniquenessChecker::insert(const Tracefile &Trace) {
  insert(signatureOf(Trace));
}

bool UniquenessChecker::tryInsert(const Tracefile &Trace) {
  Signature Sig = signatureOf(Trace);
  if (!isUnique(Sig))
    return false;
  insert(Sig);
  return true;
}

bool AccumulativeCoverage::addsNew(const Tracefile &Trace) const {
  for (uint32_t Id : Trace.stmts())
    if (!Total.stmts().count(Id))
      return true;
  for (uint32_t Id : Trace.branches())
    if (!Total.branches().count(Id))
      return true;
  return false;
}

bool AccumulativeCoverage::tryAdd(const Tracefile &Trace) {
  if (!addsNew(Trace))
    return false;
  add(Trace);
  return true;
}
