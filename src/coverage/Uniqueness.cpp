//===- coverage/Uniqueness.cpp --------------------------------------------===//

#include "coverage/Uniqueness.h"

using namespace classfuzz;

const char *classfuzz::criterionName(UniquenessCriterion C) {
  switch (C) {
  case UniquenessCriterion::St:
    return "[st]";
  case UniquenessCriterion::StBr:
    return "[stbr]";
  case UniquenessCriterion::Tr:
    return "[tr]";
  }
  return "?";
}

bool UniquenessChecker::isUnique(const Tracefile &Trace) const {
  StatPair Stats{Trace.stmtCount(), Trace.branchCount()};
  switch (Criterion) {
  case UniquenessCriterion::St:
    return !SeenStmtCounts.count(Stats.first);
  case UniquenessCriterion::StBr:
    return !SeenStatPairs.count(Stats);
  case UniquenessCriterion::Tr: {
    auto It = SeenFingerprints.find(Stats);
    if (It == SeenFingerprints.end())
      return true;
    // Equal statistics: representative only if the full hit sets differ
    // from every accepted tracefile with the same statistics (merge test).
    return !It->second.count(Trace.fingerprint());
  }
  }
  return false;
}

void UniquenessChecker::insert(const Tracefile &Trace) {
  StatPair Stats{Trace.stmtCount(), Trace.branchCount()};
  SeenStmtCounts.insert(Stats.first);
  SeenStatPairs.insert(Stats);
  SeenFingerprints[Stats].insert(Trace.fingerprint());
  ++NumInserted;
}

bool UniquenessChecker::tryInsert(const Tracefile &Trace) {
  if (!isUnique(Trace))
    return false;
  insert(Trace);
  return true;
}

bool AccumulativeCoverage::addsNew(const Tracefile &Trace) const {
  for (uint32_t Id : Trace.stmts())
    if (!Total.stmts().count(Id))
      return true;
  for (uint32_t Id : Trace.branches())
    if (!Total.branches().count(Id))
      return true;
  return false;
}

bool AccumulativeCoverage::tryAdd(const Tracefile &Trace) {
  if (!addsNew(Trace))
    return false;
  add(Trace);
  return true;
}
