//===- coverage/Uniqueness.cpp --------------------------------------------===//

#include "coverage/Uniqueness.h"

#include "support/Hashing.h"
#include "telemetry/Telemetry.h"

#include <cassert>

using namespace classfuzz;

const char *classfuzz::criterionName(UniquenessCriterion C) {
  switch (C) {
  case UniquenessCriterion::St:
    return "[st]";
  case UniquenessCriterion::StBr:
    return "[stbr]";
  case UniquenessCriterion::Tr:
    return "[tr]";
  case UniquenessCriterion::DdCoarse:
    return "[dd-coarse]";
  case UniquenessCriterion::DdFine:
    return "[dd-fine]";
  }
  return "?";
}

UniquenessChecker::Signature
UniquenessChecker::signatureOf(const Tracefile &Trace) const {
  Signature Sig;
  Sig.Stats = {Trace.stmtCount(), Trace.branchCount()};
  // Only [tr] compares full hit sets; skip the O(|trace|) fingerprint
  // walk and set copies for the statistic-only criteria.
  if (Criterion == UniquenessCriterion::Tr) {
    Sig.Fingerprint = Fp ? Fp(Trace) : Trace.fingerprint();
    Sig.Sets = {Trace.stmts(), Trace.branches()};
  }
  return Sig;
}

bool UniquenessChecker::isUnique(const Signature &Sig) const {
  switch (Criterion) {
  case UniquenessCriterion::St:
    return !SeenStmtCounts.count(Sig.Stats.first);
  case UniquenessCriterion::StBr:
    return !SeenStatPairs.count(Sig.Stats);
  case UniquenessCriterion::Tr: {
    auto It = SeenFingerprints.find(Sig.Stats);
    if (It == SeenFingerprints.end())
      return true;
    auto FpIt = It->second.find(Sig.Fingerprint);
    if (FpIt == It->second.end())
      return true;
    // Equal statistics and equal fingerprint: the fingerprint is only a
    // filter, so break the tie on the stored ground-truth hit sets. A
    // candidate whose sets differ from every accepted one is a verified
    // 64-bit collision -- representative, not a duplicate.
    for (const HitSets &Stored : FpIt->second)
      if (Stored == Sig.Sets)
        return false;
    ++FpCollisions;
    if (telemetry::enabled())
      telemetry::metrics().counter("coverage.tr_fp_collisions").inc();
    return true;
  }
  case UniquenessCriterion::DdCoarse:
  case UniquenessCriterion::DdFine:
    break; // δ criteria are handled by DeltaDiversityChecker.
  }
  assert(false && "tracefile uniqueness queried for a δ criterion");
  return false;
}

void UniquenessChecker::insert(const Signature &Sig) {
  // Maintain only the structure isUnique reads for the active
  // criterion; populating all three bloats memory at corpus scale for
  // no behavioral difference.
  switch (Criterion) {
  case UniquenessCriterion::St:
    SeenStmtCounts.insert(Sig.Stats.first);
    break;
  case UniquenessCriterion::StBr:
    SeenStatPairs.insert(Sig.Stats);
    break;
  case UniquenessCriterion::Tr: {
    std::vector<HitSets> &Bucket =
        SeenFingerprints[Sig.Stats][Sig.Fingerprint];
    bool Present = false;
    for (const HitSets &Stored : Bucket)
      Present |= Stored == Sig.Sets;
    if (!Present)
      Bucket.push_back(Sig.Sets);
    break;
  }
  case UniquenessCriterion::DdCoarse:
  case UniquenessCriterion::DdFine:
    assert(false && "tracefile insert for a δ criterion");
    break;
  }
  ++NumInserted;
}

size_t UniquenessChecker::trackedEntries() const {
  size_t N = SeenStmtCounts.size() + SeenStatPairs.size();
  for (const auto &KV : SeenFingerprints)
    for (const auto &FpKV : KV.second)
      N += FpKV.second.size();
  return N;
}

bool UniquenessChecker::isUnique(const Tracefile &Trace) const {
  return isUnique(signatureOf(Trace));
}

void UniquenessChecker::insert(const Tracefile &Trace) {
  insert(signatureOf(Trace));
}

bool UniquenessChecker::tryInsert(const Tracefile &Trace) {
  Signature Sig = signatureOf(Trace);
  if (!isUnique(Sig))
    return false;
  insert(Sig);
  return true;
}

// ---- DeltaDiversityChecker ------------------------------------------------

DeltaDiversityChecker::DeltaDiversityChecker(UniquenessCriterion C)
    : Criterion(C) {
  assert(isDeltaDiversity(C) && "not a δ-diversity criterion");
}

uint64_t
DeltaDiversityChecker::profileSignatureOf(const ProfileObservation &O) const {
  Hasher H;
  H.addU32(static_cast<uint32_t>(O.Encoded));
  if (Criterion == UniquenessCriterion::DdCoarse) {
    // Coarse coverage: the (stmt, branch) statistics, the same counts
    // the paper's [stbr] compares (Nezha's "path diversity, coarse").
    H.addU64(O.StmtCount);
    H.addU64(O.BranchCount);
  } else {
    // Fine coverage: the hit-set fingerprint (Nezha's "path diversity,
    // fine" hashes the edge set).
    H.addU64(O.Fingerprint);
  }
  return H.value();
}

uint64_t DeltaDiversityChecker::outcomeHashOf(
    const std::vector<ProfileObservation> &Obs) const {
  Hasher H;
  for (const ProfileObservation &O : Obs)
    H.addU32(static_cast<uint32_t>(O.Encoded));
  return H.value();
}

uint64_t DeltaDiversityChecker::tupleHashOf(
    const std::vector<ProfileObservation> &Obs) const {
  // Position-dependent: profile i's signature lands at position i, so
  // the same behaviors on different profiles form different tuples.
  Hasher H;
  for (const ProfileObservation &O : Obs)
    H.addU64(profileSignatureOf(O));
  return H.value();
}

bool DeltaDiversityChecker::isUnique(
    const std::vector<ProfileObservation> &Obs) const {
  return !TupleHashes.count(tupleHashOf(Obs));
}

void DeltaDiversityChecker::insert(
    const std::vector<ProfileObservation> &Obs) {
  TupleHashes.insert(tupleHashOf(Obs));
  OutcomeHashes.insert(outcomeHashOf(Obs));
  if (PerProfile.size() < Obs.size())
    PerProfile.resize(Obs.size());
  for (size_t I = 0; I != Obs.size(); ++I)
    PerProfile[I].insert(profileSignatureOf(Obs[I]));
  ++NumInserted;
}

DeltaDiversityChecker::Novelty
DeltaDiversityChecker::tryInsert(const std::vector<ProfileObservation> &Obs) {
  Novelty N;
  N.Tuple = !TupleHashes.count(tupleHashOf(Obs));
  N.Outcome = !OutcomeHashes.count(outcomeHashOf(Obs));
  for (size_t I = 0; I != Obs.size() && !N.Coverage; ++I)
    N.Coverage = I >= PerProfile.size() ||
                 !PerProfile[I].count(profileSignatureOf(Obs[I]));
  if (N.Tuple)
    insert(Obs);
  return N;
}

size_t DeltaDiversityChecker::trackedEntries() const {
  size_t N = TupleHashes.size() + OutcomeHashes.size();
  for (const std::set<uint64_t> &Sigs : PerProfile)
    N += Sigs.size();
  return N;
}

size_t DeltaDiversityChecker::profileSignatures(size_t ProfileIndex) const {
  return ProfileIndex < PerProfile.size() ? PerProfile[ProfileIndex].size()
                                          : 0;
}

// ---- AccumulativeCoverage -------------------------------------------------

bool AccumulativeCoverage::addsNew(const Tracefile &Trace) const {
  for (uint32_t Id : Trace.stmts())
    if (!Total.stmts().count(Id))
      return true;
  for (uint32_t Id : Trace.branches())
    if (!Total.branches().count(Id))
      return true;
  return false;
}

bool AccumulativeCoverage::tryAdd(const Tracefile &Trace) {
  if (!addsNew(Trace))
    return false;
  add(Trace);
  return true;
}
