//===- coverage/Frontier.cpp ----------------------------------------------===//

#include "coverage/Frontier.h"

#include "telemetry/Telemetry.h"

#include <algorithm>

using namespace classfuzz;

namespace {

// Mirrors jvm::NumPhaseCodes without a cf_coverage -> cf_jvm edge (the
// jvm layer already depends on coverage for its probes). The grid's
// column count is part of the metric schema; a static_assert in
// Campaign.cpp keeps the two in sync.
constexpr size_t NumPhaseCols = 5;

std::string phaseColLabel(size_t Col) {
  return "phase" + std::to_string(Col);
}

/// Telemetry handles, resolved once. Only touched when enabled().
struct FrontierTelemetry {
  telemetry::Gauge &StmtsG;
  telemetry::Gauge &BranchesG;
  telemetry::Counter &NewStmts;
  telemetry::Counter &NewBranches;

  static FrontierTelemetry &get() {
    static FrontierTelemetry T{
        telemetry::metrics().gauge("frontier.stmts"),
        telemetry::metrics().gauge("frontier.branches"),
        telemetry::metrics().counter("frontier.new_stmts"),
        telemetry::metrics().counter("frontier.new_branches"),
    };
    return T;
  }
};

void appendHitLine(std::string &Out, const char *Type, uint32_t Id,
                   uint64_t Hits, const FrontierFirstHit &First, bool Rare,
                   bool Branch) {
  Out += "{\"type\":\"";
  Out += Type;
  Out += "\"";
  if (Branch) {
    Out += ",\"site\":" + std::to_string(Id >> 1);
    Out += ",\"taken\":";
    Out += (Id & 1) ? "true" : "false";
  } else {
    Out += ",\"id\":" + std::to_string(Id);
  }
  Out += ",\"hits\":" + std::to_string(Hits);
  Out += ",\"first_iter\":" + std::to_string(First.Iteration);
  Out += ",\"seed\":\"" + telemetry::jsonEscape(First.SeedName) + "\"";
  Out += ",\"mutator\":\"" + telemetry::jsonEscape(First.MutatorId) + "\"";
  Out += ",\"phase\":" + std::to_string(First.Phase);
  Out += ",\"rare\":";
  Out += Rare ? "true" : "false";
  Out += "}\n";
}

} // namespace

FrontierTracker::FrontierTracker(Options Opts) : Opts(std::move(Opts)) {}

FrontierTracker::Delta FrontierTracker::recordCommit(const Tracefile &Trace,
                                                     const CommitInfo &Info) {
  Delta D;
  FrontierFirstHit First;
  First.Iteration = Info.Iteration;
  First.SeedIndex = Info.SeedIndex;
  First.SeedName = Info.SeedName;
  First.MutatorId = Info.MutatorId;
  First.Phase = Info.Phase;

  for (uint32_t Id : Trace.stmts()) {
    Entry &E = Stmts[Id];
    if (E.Hits++ == 0) {
      E.First = First;
      ++D.NewStmts;
    }
  }
  for (uint32_t Id : Trace.branches()) {
    Entry &E = Branches[Id];
    if (E.Hits++ == 0) {
      E.First = First;
      ++D.NewBranches;
    }
  }
  ++Commits;

  if (telemetry::enabled()) {
    auto &T = FrontierTelemetry::get();
    T.StmtsG.set(static_cast<int64_t>(Stmts.size()));
    T.BranchesG.set(static_cast<int64_t>(Branches.size()));
    if (D.NewStmts)
      T.NewStmts.inc(D.NewStmts);
    if (D.NewBranches)
      T.NewBranches.inc(D.NewBranches);
    // Seed registrations carry no mutator; only mutant commits feed the
    // per-mutator deep-phase reach grid.
    if (!Opts.MutatorIds.empty() && !Info.MutatorId.empty() &&
        Info.Phase >= 0 && static_cast<size_t>(Info.Phase) < NumPhaseCols) {
      auto Ids = Opts.MutatorIds;
      auto &Grid = telemetry::metrics().grid(
          "frontier.mutator_phase", Ids.size(), NumPhaseCols,
          [Ids](size_t Row) { return Row < Ids.size() ? Ids[Row] : "?"; },
          phaseColLabel);
      Grid.inc(Info.MutatorIndex, static_cast<size_t>(Info.Phase));
    }
  }
  return D;
}

std::vector<uint32_t> FrontierTracker::rareBranches() const {
  std::vector<uint32_t> Out;
  for (const auto &[Id, E] : Branches)
    if (E.Hits <= Opts.RareThreshold)
      Out.push_back(Id);
  std::sort(Out.begin(), Out.end());
  return Out;
}

std::vector<uint32_t> FrontierTracker::rareStmts() const {
  std::vector<uint32_t> Out;
  for (const auto &[Id, E] : Stmts)
    if (E.Hits <= Opts.RareThreshold)
      Out.push_back(Id);
  std::sort(Out.begin(), Out.end());
  return Out;
}

uint64_t FrontierTracker::branchHits(uint32_t Id) const {
  auto It = Branches.find(Id);
  return It == Branches.end() ? 0 : It->second.Hits;
}

uint64_t FrontierTracker::stmtHits(uint32_t Id) const {
  auto It = Stmts.find(Id);
  return It == Stmts.end() ? 0 : It->second.Hits;
}

const FrontierFirstHit *FrontierTracker::branchFirstHit(uint32_t Id) const {
  auto It = Branches.find(Id);
  return It == Branches.end() ? nullptr : &It->second.First;
}

const FrontierFirstHit *FrontierTracker::stmtFirstHit(uint32_t Id) const {
  auto It = Stmts.find(Id);
  return It == Stmts.end() ? nullptr : &It->second.First;
}

std::string FrontierTracker::renderCensusJsonl() const {
  std::vector<uint32_t> BranchIds, StmtIds;
  BranchIds.reserve(Branches.size());
  for (const auto &[Id, E] : Branches)
    BranchIds.push_back(Id);
  std::sort(BranchIds.begin(), BranchIds.end());
  StmtIds.reserve(Stmts.size());
  for (const auto &[Id, E] : Stmts)
    StmtIds.push_back(Id);
  std::sort(StmtIds.begin(), StmtIds.end());

  size_t RareBr = 0, RareSt = 0;
  for (const auto &[Id, E] : Branches)
    RareBr += E.Hits <= Opts.RareThreshold;
  for (const auto &[Id, E] : Stmts)
    RareSt += E.Hits <= Opts.RareThreshold;

  std::string Out;
  Out += "{\"type\":\"frontier_summary\",\"commits\":" +
         std::to_string(Commits);
  Out += ",\"stmts\":" + std::to_string(Stmts.size());
  Out += ",\"branches\":" + std::to_string(Branches.size());
  Out += ",\"rare_branches\":" + std::to_string(RareBr);
  Out += ",\"rare_stmts\":" + std::to_string(RareSt);
  Out += ",\"rare_threshold\":" + std::to_string(Opts.RareThreshold);
  Out += "}\n";
  for (uint32_t Id : BranchIds) {
    const Entry &E = Branches.at(Id);
    appendHitLine(Out, "branch", Id, E.Hits, E.First,
                  E.Hits <= Opts.RareThreshold, /*Branch=*/true);
  }
  for (uint32_t Id : StmtIds) {
    const Entry &E = Stmts.at(Id);
    appendHitLine(Out, "stmt", Id, E.Hits, E.First,
                  E.Hits <= Opts.RareThreshold, /*Branch=*/false);
  }
  return Out;
}
