//===- coverage/Probes.h - Coverage probe macros for the reference JVM ---===//
//
// Part of classfuzz-cpp (PLDI 2016 classfuzz reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper instruments HotSpot's classfile/ package with GCOV and reads
/// LCOV statement/branch statistics. Our substitute is explicit probes in
/// the mini JVM's classfile-processing code: each translation unit picks a
/// unique file id (CF_COV_FILE), and probe ids are (file id << 16 | line),
/// giving the same "which source statements / branch directions ran"
/// signal at nanosecond cost.
///
/// Usage inside a class with a `CoverageRecorder *Cov` member:
/// \code
///   CF_COV_FILE(3);
///   COV_STMT(Cov);                          // statement probe
///   if (COV_BRANCH(Cov, Flags & ACC_STATIC)) // branch probe, both arms
///     ...
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef CLASSFUZZ_COVERAGE_PROBES_H
#define CLASSFUZZ_COVERAGE_PROBES_H

#include "coverage/Tracefile.h"

namespace classfuzz {

/// Records a branch outcome and passes the condition through, so probes
/// can wrap conditions in place.
inline bool covBranch(CoverageRecorder *Cov, uint32_t SiteId, bool Taken) {
  if (Cov)
    Cov->branch(SiteId, Taken);
  return Taken;
}

inline void covStmt(CoverageRecorder *Cov, uint32_t Id) {
  if (Cov)
    Cov->stmt(Id);
}

} // namespace classfuzz

/// Declares this translation unit's probe namespace. \p Id must be unique
/// across the jvm module (documented in jvm/README: 1=FormatChecker,
/// 2=Verifier, 3=Vm, 4=Interp, 5=Resolver).
#define CF_COV_FILE(Id)                                                        \
  namespace {                                                                  \
  constexpr uint32_t CovFileId = (Id);                                         \
  }

/// Statement probe at the current line.
#define COV_STMT(Cov)                                                          \
  ::classfuzz::covStmt((Cov), (CovFileId << 16) | __LINE__)

/// Branch probe at the current line; evaluates to the condition.
#define COV_BRANCH(Cov, Taken)                                                 \
  ::classfuzz::covBranch((Cov), (CovFileId << 16) | __LINE__, (Taken))

#endif // CLASSFUZZ_COVERAGE_PROBES_H
