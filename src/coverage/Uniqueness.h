//===- coverage/Uniqueness.h - Coverage-uniqueness criteria --------------===//
//
// Part of classfuzz-cpp (PLDI 2016 classfuzz reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The three coverage-uniqueness acceptance criteria of §2.2.3:
///
///   [st]   no accepted test has the same statement-coverage statistic;
///   [stbr] no accepted test has the same (stmt, branch) statistic pair;
///   [tr]   no accepted test has a statically identical tracefile
///          (equal statistics AND merging changes nothing, i.e. equal
///          hit sets).
///
/// Also provides AccumulativeCoverage for the greedyfuzz baseline, which
/// accepts a mutant only when it increases total coverage.
///
//===----------------------------------------------------------------------===//

#ifndef CLASSFUZZ_COVERAGE_UNIQUENESS_H
#define CLASSFUZZ_COVERAGE_UNIQUENESS_H

#include "coverage/Tracefile.h"

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace classfuzz {

/// Which uniqueness discipline a campaign uses.
enum class UniquenessCriterion { St, StBr, Tr };

/// Returns "[st]" / "[stbr]" / "[tr]".
const char *criterionName(UniquenessCriterion C);

/// Tracks the coverage signatures of accepted tests and decides whether a
/// candidate tracefile is representative w.r.t. them.
///
/// The read path (isUnique) is const and side-effect free; the campaign's
/// commit stage relies on that separation: acceptance checks never modify
/// the pool, only insert() does. tryInsert computes the candidate's
/// signature (statistics + [tr] fingerprint) once and shares it between
/// the check and the insertion.
class UniquenessChecker {
public:
  explicit UniquenessChecker(UniquenessCriterion C) : Criterion(C) {}

  /// True when \p Trace is unique under the configured criterion.
  bool isUnique(const Tracefile &Trace) const;

  /// Records \p Trace as accepted. Asserts on isUnique in debug builds is
  /// deliberately omitted: callers may insert seeds unconditionally.
  void insert(const Tracefile &Trace);

  /// Convenience: isUnique + insert when unique. Returns acceptance.
  bool tryInsert(const Tracefile &Trace);

  UniquenessCriterion criterion() const { return Criterion; }
  size_t size() const { return NumInserted; }
  /// Total entries across the seen-signature structures. Only the
  /// structure the active criterion reads is populated, so this stays
  /// proportional to distinct signatures under that criterion alone.
  size_t trackedEntries() const;

private:
  using StatPair = std::pair<size_t, size_t>;

  /// A candidate's identity under the configured criterion. The hit-set
  /// fingerprint is only computed for [tr], the only criterion that
  /// reads it.
  struct Signature {
    StatPair Stats;
    uint64_t Fingerprint = 0;
  };
  Signature signatureOf(const Tracefile &Trace) const;
  bool isUnique(const Signature &Sig) const;
  void insert(const Signature &Sig);

  UniquenessCriterion Criterion;
  size_t NumInserted = 0;
  std::set<size_t> SeenStmtCounts;
  std::set<StatPair> SeenStatPairs;
  /// For [tr]: per statistic pair, the fingerprints of full hit sets.
  std::map<StatPair, std::set<uint64_t>> SeenFingerprints;
};

/// Accumulative-coverage acceptance used by greedyfuzz: a candidate is
/// accepted iff it covers at least one statement or branch never covered
/// by any previously accepted test.
class AccumulativeCoverage {
public:
  /// True when \p Trace adds new coverage (without recording it).
  bool addsNew(const Tracefile &Trace) const;
  /// Merges \p Trace into the accumulated totals.
  void add(const Tracefile &Trace) { Total = Total.mergedWith(Trace); }
  /// Convenience: addsNew + add when new. Returns acceptance.
  bool tryAdd(const Tracefile &Trace);

  const Tracefile &total() const { return Total; }

private:
  Tracefile Total;
};

} // namespace classfuzz

#endif // CLASSFUZZ_COVERAGE_UNIQUENESS_H
