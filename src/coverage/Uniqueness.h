//===- coverage/Uniqueness.h - Coverage-uniqueness criteria --------------===//
//
// Part of classfuzz-cpp (PLDI 2016 classfuzz reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The three coverage-uniqueness acceptance criteria of §2.2.3:
///
///   [st]   no accepted test has the same statement-coverage statistic;
///   [stbr] no accepted test has the same (stmt, branch) statistic pair;
///   [tr]   no accepted test has a statically identical tracefile
///          (equal statistics AND merging changes nothing, i.e. equal
///          hit sets).
///
/// plus the two Nezha-style δ-diversity criteria (guided differential
/// testing; cf. FuzzerDifferential.h's CumulativeResults):
///
///   [dd-coarse] no accepted test has the same per-profile
///          (encoded outcome, coarse coverage count) tuple;
///   [dd-fine]   no accepted test has the same per-profile
///          (encoded outcome, tracefile hit-set fingerprint) tuple.
///
/// The δ criteria judge the *relative* behavior of all profiles at once:
/// a mutant is representative when the cross-profile tuple is novel,
/// hunting disagreement directly instead of reference-VM coverage
/// novelty.
///
/// Also provides AccumulativeCoverage for the greedyfuzz baseline, which
/// accepts a mutant only when it increases total coverage.
///
//===----------------------------------------------------------------------===//

#ifndef CLASSFUZZ_COVERAGE_UNIQUENESS_H
#define CLASSFUZZ_COVERAGE_UNIQUENESS_H

#include "coverage/Tracefile.h"

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace classfuzz {

/// Which uniqueness discipline a campaign uses.
enum class UniquenessCriterion { St, StBr, Tr, DdCoarse, DdFine };

/// Returns "[st]" / "[stbr]" / "[tr]" / "[dd-coarse]" / "[dd-fine]".
const char *criterionName(UniquenessCriterion C);

/// True for the δ-diversity criteria, which compare per-profile
/// differential tuples (DeltaDiversityChecker) instead of reference-VM
/// tracefiles (UniquenessChecker).
inline bool isDeltaDiversity(UniquenessCriterion C) {
  return C == UniquenessCriterion::DdCoarse ||
         C == UniquenessCriterion::DdFine;
}

/// Tracks the coverage signatures of accepted tests and decides whether a
/// candidate tracefile is representative w.r.t. them. Handles the three
/// tracefile criteria ([st]/[stbr]/[tr]); the δ criteria live in
/// DeltaDiversityChecker.
///
/// The read path (isUnique) is const and side-effect free; the campaign's
/// commit stage relies on that separation: acceptance checks never modify
/// the pool, only insert() does. tryInsert computes the candidate's
/// signature (statistics + [tr] fingerprint) once and shares it between
/// the check and the insertion.
///
/// [tr] compares full hit sets, not just the 64-bit fingerprint: the
/// fingerprint is a fast filter, and on a fingerprint match the stored
/// ground-truth sets break the tie. Two distinct hit sets that collide in
/// the hash are therefore both accepted (and the verified collision is
/// counted, see fingerprintCollisions()).
class UniquenessChecker {
public:
  /// Hash of a tracefile's hit sets; injectable so tests can force
  /// fingerprint collisions. Empty = Tracefile::fingerprint.
  using FingerprintFn = std::function<uint64_t(const Tracefile &)>;

  explicit UniquenessChecker(UniquenessCriterion C,
                             FingerprintFn Fp = FingerprintFn())
      : Criterion(C), Fp(std::move(Fp)) {}

  /// True when \p Trace is unique under the configured criterion.
  bool isUnique(const Tracefile &Trace) const;

  /// Records \p Trace as accepted. Asserts on isUnique in debug builds is
  /// deliberately omitted: callers may insert seeds unconditionally.
  void insert(const Tracefile &Trace);

  /// Convenience: isUnique + insert when unique. Returns acceptance.
  bool tryInsert(const Tracefile &Trace);

  UniquenessCriterion criterion() const { return Criterion; }
  size_t size() const { return NumInserted; }
  /// Total entries across the seen-signature structures. Only the
  /// structure the active criterion reads is populated, so this stays
  /// proportional to distinct signatures under that criterion alone.
  size_t trackedEntries() const;
  /// Verified [tr] fingerprint collisions: candidates whose 64-bit
  /// fingerprint matched an accepted test's but whose hit sets differed.
  /// Before the ground-truth comparison such candidates were silently
  /// (and wrongly) rejected as duplicates.
  size_t fingerprintCollisions() const { return FpCollisions; }

private:
  using StatPair = std::pair<size_t, size_t>;
  /// The ground truth behind a [tr] fingerprint: the full hit sets.
  using HitSets = std::pair<std::set<uint32_t>, std::set<uint32_t>>;

  /// A candidate's identity under the configured criterion. The hit-set
  /// fingerprint and set copies are only made for [tr], the only
  /// criterion that reads them.
  struct Signature {
    StatPair Stats;
    uint64_t Fingerprint = 0;
    HitSets Sets;
  };
  Signature signatureOf(const Tracefile &Trace) const;
  bool isUnique(const Signature &Sig) const;
  void insert(const Signature &Sig);

  UniquenessCriterion Criterion;
  FingerprintFn Fp;
  size_t NumInserted = 0;
  /// Verified-collision count; mutated from the const read path (the
  /// collision is detected during lookup), hence mutable.
  mutable size_t FpCollisions = 0;
  std::set<size_t> SeenStmtCounts;
  std::set<StatPair> SeenStatPairs;
  /// For [tr]: per statistic pair, fingerprint -> every accepted hit-set
  /// pair hashing to it (almost always exactly one; more only under a
  /// genuine 64-bit collision).
  std::map<StatPair, std::map<uint64_t, std::vector<HitSets>>>
      SeenFingerprints;
};

/// One profile's contribution to a differential batch: the encoded
/// {0..4} outcome (§2.3, Figure 3) plus its coverage observation. The
/// coarse statistics feed [dd-coarse]; the hit-set fingerprint feeds
/// [dd-fine].
struct ProfileObservation {
  int Encoded = 0;
  size_t StmtCount = 0;
  size_t BranchCount = 0;
  uint64_t Fingerprint = 0;

  /// Convenience constructor from a run's encoded outcome and trace.
  static ProfileObservation of(int Encoded, const Tracefile &Trace) {
    return {Encoded, Trace.stmtCount(), Trace.branchCount(),
            Trace.fingerprint()};
  }
};

/// Nezha-style δ-diversity acceptance (cf. FuzzerDifferential.h's
/// CumulativeResults / isInterestingRun): every candidate runs on all
/// profiles, each profile yields an (outcome, coverage) signature, and
/// the candidate is accepted iff the hash of the cross-profile signature
/// tuple is new. Profile order is significant -- the same observations
/// attributed to different profiles form a different tuple, exactly as
/// the paper's encoded sequences distinguish "0010" from "0100".
///
/// Alongside the tuple set the checker keeps per-profile signature sets
/// (which behaviors each profile individually exhibited) and an
/// outcome-sequence set; these never gate acceptance but report where
/// novelty came from (tryInsert's Novelty) and feed telemetry.
class DeltaDiversityChecker {
public:
  /// \p C must be DdCoarse or DdFine.
  explicit DeltaDiversityChecker(UniquenessCriterion C);

  /// Where a tuple's novelty came from. Tuple is the acceptance
  /// decision; Outcome/Coverage decompose it for telemetry.
  struct Novelty {
    bool Tuple = false;    ///< Cross-profile tuple hash was new.
    bool Outcome = false;  ///< Encoded outcome sequence was new.
    bool Coverage = false; ///< Some profile's signature was new.
    explicit operator bool() const { return Tuple; }
  };

  /// Hash of the cross-profile signature tuple under the configured
  /// criterion. Pure; shared by the check and the insertion.
  uint64_t tupleHashOf(const std::vector<ProfileObservation> &Obs) const;

  /// True when the cross-profile tuple is novel.
  bool isUnique(const std::vector<ProfileObservation> &Obs) const;

  /// Records \p Obs unconditionally (seed registration).
  void insert(const std::vector<ProfileObservation> &Obs);

  /// isUnique + insert when novel; returns the novelty decomposition
  /// (acceptance iff Novelty.Tuple).
  Novelty tryInsert(const std::vector<ProfileObservation> &Obs);

  UniquenessCriterion criterion() const { return Criterion; }
  /// Number of insert()ed tuples (including duplicates).
  size_t size() const { return NumInserted; }
  /// Distinct tuples + outcome sequences + per-profile signatures
  /// tracked. Proportional to distinct behavior under the active
  /// criterion alone; the other δ criterion's structures do not exist.
  size_t trackedEntries() const;
  /// Distinct signatures profile \p ProfileIndex has exhibited.
  size_t profileSignatures(size_t ProfileIndex) const;
  size_t distinctTuples() const { return TupleHashes.size(); }
  size_t distinctOutcomes() const { return OutcomeHashes.size(); }

private:
  /// One profile's signature under the criterion: [dd-coarse] hashes
  /// (encoded, stmt count, branch count); [dd-fine] hashes (encoded,
  /// hit-set fingerprint).
  uint64_t profileSignatureOf(const ProfileObservation &O) const;
  uint64_t outcomeHashOf(const std::vector<ProfileObservation> &Obs) const;

  UniquenessCriterion Criterion;
  size_t NumInserted = 0;
  std::set<uint64_t> TupleHashes;
  std::set<uint64_t> OutcomeHashes;
  /// Per-profile signature sets, indexed by position in the batch.
  std::vector<std::set<uint64_t>> PerProfile;
};

/// Accumulative-coverage acceptance used by greedyfuzz: a candidate is
/// accepted iff it covers at least one statement or branch never covered
/// by any previously accepted test.
class AccumulativeCoverage {
public:
  /// True when \p Trace adds new coverage (without recording it).
  bool addsNew(const Tracefile &Trace) const;
  /// Merges \p Trace into the accumulated totals.
  void add(const Tracefile &Trace) { Total = Total.mergedWith(Trace); }
  /// Convenience: addsNew + add when new. Returns acceptance.
  bool tryAdd(const Tracefile &Trace);

  const Tracefile &total() const { return Total; }

private:
  Tracefile Total;
};

} // namespace classfuzz

#endif // CLASSFUZZ_COVERAGE_UNIQUENESS_H
