//===- coverage/Frontier.h - Global hit counts and rare-branch census ----===//
//
// Part of classfuzz-cpp (PLDI 2016 classfuzz reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The coverage-frontier tracker: global per-statement and per-branch
/// hit counts folded in from every committed mutant's reference-JVM
/// tracefile, with first-hit attribution (iteration, root seed, mutator
/// chain tail, deepest startup phase reached) and a rare-branch set
/// (hits <= threshold) in FairFuzz's sense -- the input a rare-branch-
/// targeting seed scheduler needs (ROADMAP item 2) and the per-mutator
/// deep-phase reach grid ROADMAP item 3 asks for.
///
/// Determinism contract: the campaign calls recordCommit() at the
/// in-order commit stage only, so the tracker's state -- and the census
/// renderCensusJsonl() serializes -- is a pure function of the committed
/// trajectory and therefore byte-identical for any --jobs value.
/// Telemetry mirroring (frontier.* gauges/counters and the
/// frontier.mutator_phase grid) is observation-only and guarded on
/// telemetry::enabled(); the tracker's own state never depends on it.
///
//===----------------------------------------------------------------------===//

#ifndef CLASSFUZZ_COVERAGE_FRONTIER_H
#define CLASSFUZZ_COVERAGE_FRONTIER_H

#include "coverage/Tracefile.h"

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace classfuzz {

/// First-hit attribution of one coverage id: which committed run lit it
/// up first.
struct FrontierFirstHit {
  uint64_t Iteration = 0;   ///< Committed iteration index (0-based).
  size_t SeedIndex = 0;     ///< Root seed of the hitting mutant's lineage.
  std::string SeedName;     ///< The root seed's class name.
  std::string MutatorId;    ///< Tail of the mutator chain ("" for seeds).
  int Phase = -1;           ///< Encoded startup phase of the hitting run.
};

/// Global per-id hit counts plus first-hit attribution over every
/// committed run. Statements and branches are tracked separately;
/// branch ids carry the (site, taken) encoding of Tracefile.
class FrontierTracker {
public:
  struct Options {
    /// Ids with hits <= RareThreshold are "rare" (FairFuzz's rarity
    /// cut; the census marks them and rareBranches() returns them).
    uint64_t RareThreshold = 4;
    /// Row labels of the frontier.mutator_phase telemetry grid (one per
    /// mutator, index-aligned with MutatorIndex values passed to
    /// recordCommit). Empty disables the grid.
    std::vector<std::string> MutatorIds;
  };

  explicit FrontierTracker(Options Opts);

  /// What one committed run contributed beyond the existing frontier.
  struct Delta {
    size_t NewStmts = 0;
    size_t NewBranches = 0;
  };

  /// Context of one committed run, for attribution.
  struct CommitInfo {
    uint64_t Iteration = 0;
    size_t SeedIndex = 0;
    std::string SeedName;
    size_t MutatorIndex = 0; ///< Into Options::MutatorIds.
    std::string MutatorId;
    int Phase = -1; ///< Encoded startup phase {0..4}; -1 = no run.
  };

  /// Folds one committed run's trace into the global counts, records
  /// first-hit attribution for ids never seen before, feeds the
  /// per-mutator deep-phase grid, and mirrors the frontier.* metrics.
  /// Must be called in commit order only (see file comment).
  Delta recordCommit(const Tracefile &Trace, const CommitInfo &Info);

  size_t distinctStmts() const { return Stmts.size(); }
  size_t distinctBranches() const { return Branches.size(); }
  uint64_t commits() const { return Commits; }
  uint64_t rareThreshold() const { return Opts.RareThreshold; }

  /// Branch ids (site<<1|taken) with hits <= RareThreshold, ascending.
  std::vector<uint32_t> rareBranches() const;
  /// Statement ids with hits <= RareThreshold, ascending.
  std::vector<uint32_t> rareStmts() const;

  /// Hit count of one id; 0 when never hit.
  uint64_t branchHits(uint32_t Id) const;
  uint64_t stmtHits(uint32_t Id) const;
  /// First-hit attribution; nullptr when the id was never hit.
  const FrontierFirstHit *branchFirstHit(uint32_t Id) const;
  const FrontierFirstHit *stmtFirstHit(uint32_t Id) const;

  /// The frontier/attribution census as stable JSONL: one summary line,
  /// then one line per branch id and per statement id in ascending id
  /// order. A pure function of the recordCommit() history, so the bytes
  /// are identical across --jobs values (CI cmp-enforced).
  std::string renderCensusJsonl() const;

private:
  struct Entry {
    uint64_t Hits = 0;
    FrontierFirstHit First;
  };

  Options Opts;
  uint64_t Commits = 0;
  std::unordered_map<uint32_t, Entry> Stmts;
  std::unordered_map<uint32_t, Entry> Branches;
};

} // namespace classfuzz

#endif // CLASSFUZZ_COVERAGE_FRONTIER_H
