//===- coverage/Tracefile.cpp ---------------------------------------------===//

#include "coverage/Tracefile.h"

#include "support/Hashing.h"

using namespace classfuzz;

Tracefile Tracefile::mergedWith(const Tracefile &Other) const {
  Tracefile Out = *this;
  Out.Stmts.insert(Other.Stmts.begin(), Other.Stmts.end());
  Out.Branches.insert(Other.Branches.begin(), Other.Branches.end());
  return Out;
}

uint64_t Tracefile::fingerprint() const {
  Hasher H;
  for (uint32_t Id : Stmts)
    H.addU32(Id);
  H.addU32(0xFFFFFFFF); // Separator between the two sets.
  for (uint32_t Id : Branches)
    H.addU32(Id);
  return H.value();
}
