//===- jir/Jir.h - Jimple-like intermediate representation ---------------===//
//
// Part of classfuzz-cpp (PLDI 2016 classfuzz reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// JIR is this project's Soot/Jimple analog: a symbolic, relocatable,
/// statement-level view of a class. Method bodies are lists of JirStmt
/// (one per bytecode instruction) whose constant-pool operands are
/// resolved to names and whose branch targets are statement indices, so
/// mutators can insert/delete/replace statements, members, and
/// attributes without byte-offset bookkeeping. Assembly back to a
/// classfile can fail for invalid IR -- mirroring Soot's refusal to dump
/// broken SootClasses, which is one reason fuzzing iterations produce no
/// classfile (§3.2).
///
//===----------------------------------------------------------------------===//

#ifndef CLASSFUZZ_JIR_JIR_H
#define CLASSFUZZ_JIR_JIR_H

#include "classfile/ClassFile.h"
#include "support/Result.h"

#include <optional>
#include <string>
#include <vector>

namespace classfuzz {

/// One statement: a symbolic bytecode instruction.
struct JirStmt {
  uint8_t Op = 0;          ///< The JVM opcode.
  int32_t IntOperand = 0;  ///< Constant / local slot / array type code.
  int32_t Operand2 = 0;    ///< iinc delta, invokeinterface count.
  int32_t TargetIndex = -1; ///< Branch target as a statement index.
  std::string StrOperand;  ///< String constant or class name operand.
  std::string RefClass;    ///< Member reference: class...
  std::string RefName;     ///< ...name...
  std::string RefDesc;     ///< ...descriptor.
  /// For ldc-family statements: which constant kind IntOperand /
  /// LongOperand / FpOperand / StrOperand carries
  /// ('i' int, 'f' float, 'j' long, 'd' double, 's' string, 'c' class).
  char ConstKind = 0;
  int64_t LongOperand = 0;
  double FpOperand = 0;

  bool isBranch() const;
  /// Structural equality (used to classify no-op mutations).
  friend bool operator==(const JirStmt &, const JirStmt &) = default;
};

/// Exception table entry in statement-index space. EndIndex is
/// exclusive; HandlerIndex addresses a statement.
struct JirExceptionEntry {
  uint32_t StartIndex = 0;
  uint32_t EndIndex = 0;
  uint32_t HandlerIndex = 0;
  std::string CatchType; ///< Empty = catch-all.

  friend bool operator==(const JirExceptionEntry &,
                         const JirExceptionEntry &) = default;
};

/// A method with a decoded body (or none, for abstract/native methods).
struct JirMethod {
  std::string Name;
  std::string Descriptor;
  uint16_t AccessFlags = 0;
  bool HasBody = false;
  uint16_t MaxStack = 0;
  uint16_t MaxLocals = 0;
  std::vector<JirStmt> Body;
  std::vector<JirExceptionEntry> ExceptionTable;
  std::vector<std::string> Exceptions; ///< throws clause.

  bool isStatic() const { return AccessFlags & ACC_STATIC; }
  friend bool operator==(const JirMethod &, const JirMethod &) = default;
};

/// A field (fields need no decoding; the classfile form is symbolic
/// enough).
struct JirField {
  std::string Name;
  std::string Descriptor;
  uint16_t AccessFlags = 0;
  std::optional<FieldConstant> ConstantValue;

  friend bool operator==(const JirField &, const JirField &) = default;
};

/// A whole class in JIR form.
struct JirClass {
  std::string Name;
  std::string SuperClass;
  uint16_t AccessFlags = 0;
  uint16_t MajorVersion = MajorVersionJava7;
  uint16_t MinorVersion = 0;
  std::vector<std::string> Interfaces;
  std::vector<JirField> Fields;
  std::vector<JirMethod> Methods;

  bool isInterface() const { return AccessFlags & ACC_INTERFACE; }
  JirMethod *findMethod(const std::string &Name);
  const JirMethod *findMethodByName(const std::string &Name) const;
  friend bool operator==(const JirClass &, const JirClass &) = default;
};

/// Decodes a classfile into JIR. Fails on bodies using constructs the IR
/// does not model (switches, wide, jsr, invokedynamic) or malformed
/// bytecode -- such seeds "cannot be used as inputs for mutation".
Result<JirClass> lowerToJir(const ClassFile &CF);

/// Assembles JIR back into a classfile. Fails on invalid IR (dangling
/// branch targets, unserializable operands, exceeded limits).
Result<ClassFile> assembleFromJir(const JirClass &J);

/// Convenience: parse bytes -> JIR.
Result<JirClass> lowerClassBytes(const Bytes &Data);

/// Convenience: JIR -> classfile bytes.
Result<Bytes> assembleToBytes(const JirClass &J);

/// Renders a Jimple-flavored textual dump (used in discrepancy reports).
std::string printJir(const JirClass &J);

/// Renames the class *with reference fixup* (as Soot does): every
/// self-reference -- member refs, class-operand statements, superclass,
/// interface list, throws clauses -- is rewritten to \p NewName.
void renameClassInPlace(JirClass &J, const std::string &NewName);

} // namespace classfuzz

#endif // CLASSFUZZ_JIR_JIR_H
