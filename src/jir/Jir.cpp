//===- jir/Jir.cpp - Lowering and assembly between classfile and JIR ------===//

#include "jir/Jir.h"

#include "classfile/ClassReader.h"
#include "classfile/ClassWriter.h"
#include "classfile/CodeBuilder.h"
#include "classfile/Descriptor.h"
#include "classfile/Opcodes.h"

#include <map>
#include <sstream>

using namespace classfuzz;

bool JirStmt::isBranch() const {
  return (Op >= OP_ifeq && Op <= OP_goto) || Op == OP_ifnull ||
         Op == OP_ifnonnull;
}

JirMethod *JirClass::findMethod(const std::string &MethodName) {
  for (JirMethod &M : Methods)
    if (M.Name == MethodName)
      return &M;
  return nullptr;
}

const JirMethod *
JirClass::findMethodByName(const std::string &MethodName) const {
  for (const JirMethod &M : Methods)
    if (M.Name == MethodName)
      return &M;
  return nullptr;
}

namespace {

bool isMemberOp(uint8_t Op) {
  return Op >= OP_getstatic && Op <= OP_invokeinterface;
}

bool isClassOp(uint8_t Op) {
  return Op == OP_new || Op == OP_anewarray || Op == OP_checkcast ||
         Op == OP_instanceof;
}

bool isLocalOp(uint8_t Op) {
  return (Op >= OP_iload && Op <= OP_aload) ||
         (Op >= OP_istore && Op <= OP_astore);
}

/// Canonicalizes short-form load/store opcodes to the indexed form.
void canonicalizeLocal(uint8_t Op, JirStmt &S) {
  if (Op >= OP_iload_0 && Op <= OP_aload_3) {
    unsigned Group = (Op - OP_iload_0) / 4;
    S.Op = static_cast<uint8_t>(OP_iload + Group);
    S.IntOperand = (Op - OP_iload_0) % 4;
    return;
  }
  if (Op >= OP_istore_0 && Op <= OP_astore_3) {
    unsigned Group = (Op - OP_istore_0) / 4;
    S.Op = static_cast<uint8_t>(OP_istore + Group);
    S.IntOperand = (Op - OP_istore_0) % 4;
    return;
  }
}

Result<JirMethod> lowerMethod(const ClassFile &CF, const MethodInfo &M) {
  JirMethod Out;
  Out.Name = M.Name;
  Out.Descriptor = M.Descriptor;
  Out.AccessFlags = M.AccessFlags;
  Out.Exceptions = M.Exceptions;
  if (!M.Code)
    return Out;

  Out.HasBody = true;
  Out.MaxStack = M.Code->MaxStack;
  Out.MaxLocals = M.Code->MaxLocals;

  // Decode and index.
  std::vector<Insn> Insns;
  std::map<uint32_t, uint32_t> OffsetToIndex;
  {
    InsnDecoder Decoder(M.Code->Code);
    Insn I;
    while (Decoder.decodeNext(I)) {
      OffsetToIndex[I.Offset] = static_cast<uint32_t>(Insns.size());
      Insns.push_back(I);
    }
    if (!Decoder.valid())
      return makeError("method " + M.Name +
                       " has malformed bytecode; cannot lower");
  }

  for (const Insn &I : Insns) {
    JirStmt S;
    S.Op = I.Op;
    uint8_t Op = I.Op;

    if (Op == OP_tableswitch || Op == OP_lookupswitch || Op == OP_wide ||
        Op == OP_jsr || Op == OP_jsr_w || Op == OP_ret ||
        Op == OP_goto_w || Op == OP_invokedynamic ||
        Op == OP_multianewarray)
      return makeError("method " + M.Name + " uses " + opcodeName(Op) +
                       ", not modeled by JIR");

    if ((Op >= OP_iload_0 && Op <= OP_aload_3) ||
        (Op >= OP_istore_0 && Op <= OP_astore_3)) {
      canonicalizeLocal(Op, S);
    } else if (isLocalOp(Op)) {
      S.IntOperand = I.Operand1;
    } else if (Op == OP_iinc) {
      S.IntOperand = I.Operand1;
      S.Operand2 = I.Operand2;
    } else if (Op == OP_bipush || Op == OP_sipush) {
      // Canonicalize to an int constant (re-encoded compactly later).
      S.Op = OP_ldc;
      S.ConstKind = 'i';
      S.IntOperand = I.Operand1;
    } else if (Op >= OP_iconst_m1 && Op <= OP_iconst_5) {
      S.Op = OP_ldc;
      S.ConstKind = 'i';
      S.IntOperand = static_cast<int32_t>(Op) - OP_iconst_0;
    } else if (Op == OP_ldc || Op == OP_ldc_w || Op == OP_ldc2_w) {
      uint16_t Index = static_cast<uint16_t>(I.Operand1);
      if (!CF.CP.isValidIndex(Index))
        return makeError("ldc of invalid constant pool index");
      const CpEntry &E = CF.CP.at(Index);
      S.Op = OP_ldc;
      switch (E.Tag) {
      case CpTag::Integer:
        S.ConstKind = 'i';
        S.IntOperand = E.IntValue;
        break;
      case CpTag::Float:
        S.ConstKind = 'f';
        S.FpOperand = E.FloatValue;
        break;
      case CpTag::Long:
        S.ConstKind = 'j';
        S.LongOperand = E.LongValue;
        break;
      case CpTag::Double:
        S.ConstKind = 'd';
        S.FpOperand = E.DoubleValue;
        break;
      case CpTag::String: {
        auto Str = CF.CP.getUtf8(E.Ref1);
        if (!Str)
          return makeError("ldc of dangling string constant");
        S.ConstKind = 's';
        S.StrOperand = Str.take();
        break;
      }
      case CpTag::Class: {
        auto Name = CF.CP.getClassName(Index);
        if (!Name)
          return makeError("ldc of dangling class constant");
        S.ConstKind = 'c';
        S.StrOperand = Name.take();
        break;
      }
      default:
        return makeError("ldc of unloadable constant tag");
      }
    } else if (isMemberOp(Op)) {
      auto Ref = CF.CP.getMemberRef(static_cast<uint16_t>(I.Operand1));
      if (!Ref)
        return makeError("member instruction with dangling reference: " +
                         Ref.error());
      S.RefClass = Ref->ClassName;
      S.RefName = Ref->Name;
      S.RefDesc = Ref->Descriptor;
      if (Op == OP_invokeinterface)
        S.Operand2 = I.Operand2;
    } else if (isClassOp(Op)) {
      auto Name = CF.CP.getClassName(static_cast<uint16_t>(I.Operand1));
      if (!Name)
        return makeError("class instruction with dangling reference");
      S.StrOperand = Name.take();
    } else if (Op == OP_newarray) {
      S.IntOperand = I.Operand1;
    } else if (S.isBranch()) {
      auto It = OffsetToIndex.find(static_cast<uint32_t>(I.Operand1));
      if (It == OffsetToIndex.end())
        return makeError("branch into the middle of an instruction");
      S.TargetIndex = static_cast<int32_t>(It->second);
    }
    // All remaining opcodes are operand-free.

    Out.Body.push_back(std::move(S));
  }

  // Exception table into index space.
  for (const ExceptionTableEntry &E : M.Code->ExceptionTable) {
    JirExceptionEntry JE;
    auto Start = OffsetToIndex.find(E.StartPc);
    auto Handler = OffsetToIndex.find(E.HandlerPc);
    if (Start == OffsetToIndex.end() || Handler == OffsetToIndex.end())
      return makeError("exception table entry not on instruction "
                       "boundaries");
    JE.StartIndex = Start->second;
    auto End = OffsetToIndex.find(E.EndPc);
    JE.EndIndex = End == OffsetToIndex.end()
                      ? static_cast<uint32_t>(Out.Body.size())
                      : End->second;
    JE.HandlerIndex = Handler->second;
    JE.CatchType = E.CatchType;
    Out.ExceptionTable.push_back(std::move(JE));
  }

  return Out;
}

} // namespace

Result<JirClass> classfuzz::lowerToJir(const ClassFile &CF) {
  JirClass J;
  J.Name = CF.ThisClass;
  J.SuperClass = CF.SuperClass;
  J.AccessFlags = CF.AccessFlags;
  J.MajorVersion = CF.MajorVersion;
  J.MinorVersion = CF.MinorVersion;
  J.Interfaces = CF.Interfaces;
  for (const FieldInfo &F : CF.Fields)
    J.Fields.push_back({F.Name, F.Descriptor, F.AccessFlags,
                        F.ConstantValue});
  for (const MethodInfo &M : CF.Methods) {
    auto Lowered = lowerMethod(CF, M);
    if (!Lowered)
      return makeError(Lowered.error());
    J.Methods.push_back(Lowered.take());
  }
  return J;
}

Result<JirClass> classfuzz::lowerClassBytes(const Bytes &Data) {
  auto CF = parseClassFile(Data);
  if (!CF)
    return makeError(CF.error());
  return lowerToJir(*CF);
}

namespace {

Result<CodeAttr> assembleBody(ConstantPool &CP, const JirMethod &M) {
  if (M.Body.size() > 4096)
    return makeError("method body too large to assemble");

  CodeBuilder B(CP);
  std::vector<CodeBuilder::Label> Labels(M.Body.size());
  for (size_t I = 0; I != M.Body.size(); ++I)
    Labels[I] = B.newLabel();
  std::vector<uint32_t> Offsets(M.Body.size() + 1, 0);

  for (size_t I = 0; I != M.Body.size(); ++I) {
    const JirStmt &S = M.Body[I];
    B.bind(Labels[I]);
    Offsets[I] = B.currentOffset();
    uint8_t Op = S.Op;

    if (Op == OP_ldc) {
      switch (S.ConstKind) {
      case 'i':
        B.pushInt(S.IntOperand);
        break;
      case 's':
        B.pushString(S.StrOperand);
        break;
      case 'c':
        B.emitU2(OP_ldc_w, CP.classRef(S.StrOperand));
        break;
      case 'f': {
        uint16_t Index = CP.floatConst(static_cast<float>(S.FpOperand));
        B.emitU2(OP_ldc_w, Index);
        break;
      }
      case 'j':
        B.emitU2(OP_ldc2_w, CP.longConst(S.LongOperand));
        break;
      case 'd':
        B.emitU2(OP_ldc2_w, CP.doubleConst(S.FpOperand));
        break;
      default:
        return makeError("ldc statement with unknown constant kind");
      }
      continue;
    }
    if (isLocalOp(Op)) {
      if (S.IntOperand < 0 || S.IntOperand > 0xFF)
        return makeError("local slot out of encodable range");
      bool IsLoad = Op >= OP_iload && Op <= OP_aload;
      uint8_t Base = IsLoad ? OP_iload : OP_istore;
      uint8_t ShortBase = IsLoad ? OP_iload_0 : OP_istore_0;
      unsigned Group = Op - Base;
      if (S.IntOperand <= 3)
        B.emit(static_cast<Opcode>(ShortBase + Group * 4 + S.IntOperand));
      else
        B.emitU1(static_cast<Opcode>(Op),
                 static_cast<uint8_t>(S.IntOperand));
      continue;
    }
    if (Op == OP_iinc) {
      if (S.IntOperand < 0 || S.IntOperand > 0xFF ||
          S.Operand2 < -128 || S.Operand2 > 127)
        return makeError("iinc operands out of range");
      B.iinc(static_cast<uint8_t>(S.IntOperand),
             static_cast<int8_t>(S.Operand2));
      continue;
    }
    if (isMemberOp(Op)) {
      if (S.RefClass.empty() || S.RefName.empty() || S.RefDesc.empty())
        return makeError("member instruction with empty reference");
      switch (Op) {
      case OP_getstatic:
        B.getStatic(S.RefClass, S.RefName, S.RefDesc);
        break;
      case OP_putstatic:
        B.putStatic(S.RefClass, S.RefName, S.RefDesc);
        break;
      case OP_getfield:
        B.getField(S.RefClass, S.RefName, S.RefDesc);
        break;
      case OP_putfield:
        B.putField(S.RefClass, S.RefName, S.RefDesc);
        break;
      case OP_invokevirtual:
        B.invokeVirtual(S.RefClass, S.RefName, S.RefDesc);
        break;
      case OP_invokespecial:
        B.invokeSpecial(S.RefClass, S.RefName, S.RefDesc);
        break;
      case OP_invokestatic:
        B.invokeStatic(S.RefClass, S.RefName, S.RefDesc);
        break;
      case OP_invokeinterface:
        B.invokeInterface(S.RefClass, S.RefName, S.RefDesc);
        break;
      }
      continue;
    }
    if (isClassOp(Op)) {
      if (S.StrOperand.empty())
        return makeError("class instruction with empty class name");
      B.emitU2(static_cast<Opcode>(Op), CP.classRef(S.StrOperand));
      continue;
    }
    if (Op == OP_newarray) {
      B.emitU1(OP_newarray, static_cast<uint8_t>(S.IntOperand));
      continue;
    }
    if (S.isBranch()) {
      if (S.TargetIndex < 0 ||
          static_cast<size_t>(S.TargetIndex) >= M.Body.size())
        return makeError("branch statement with dangling target index");
      B.branch(static_cast<Opcode>(Op),
               Labels[static_cast<size_t>(S.TargetIndex)]);
      continue;
    }
    if (opcodeLength(Op) == 1) {
      B.emit(static_cast<Opcode>(Op));
      continue;
    }
    return makeError(std::string("cannot assemble opcode ") +
                     opcodeName(Op));
  }
  Offsets[M.Body.size()] = B.currentOffset();

  CodeAttr Code;
  Code.MaxStack = M.MaxStack;
  Code.MaxLocals = M.MaxLocals;
  Code.Code = B.build();
  if (Code.Code.size() > 0xFFFF)
    return makeError("assembled code exceeds 64k");

  for (const JirExceptionEntry &E : M.ExceptionTable) {
    if (E.StartIndex >= E.EndIndex || E.EndIndex > M.Body.size() ||
        E.HandlerIndex >= M.Body.size())
      return makeError("exception table entry with dangling indices");
    ExceptionTableEntry Out;
    Out.StartPc = static_cast<uint16_t>(Offsets[E.StartIndex]);
    Out.EndPc = static_cast<uint16_t>(Offsets[E.EndIndex]);
    Out.HandlerPc = static_cast<uint16_t>(Offsets[E.HandlerIndex]);
    Out.CatchType = E.CatchType;
    Code.ExceptionTable.push_back(std::move(Out));
  }
  return Code;
}

} // namespace

Result<ClassFile> classfuzz::assembleFromJir(const JirClass &J) {
  if (J.Name.empty())
    return makeError("class without a name");
  ClassFile CF;
  CF.ThisClass = J.Name;
  CF.SuperClass = J.SuperClass;
  CF.AccessFlags = J.AccessFlags;
  CF.MajorVersion = J.MajorVersion;
  CF.MinorVersion = J.MinorVersion;
  CF.Interfaces = J.Interfaces;
  for (const JirField &F : J.Fields) {
    if (F.Name.empty())
      return makeError("field without a name");
    FieldInfo Out;
    Out.Name = F.Name;
    Out.Descriptor = F.Descriptor;
    Out.AccessFlags = F.AccessFlags;
    if (F.ConstantValue)
      Out.ConstantValue = *F.ConstantValue;
    CF.Fields.push_back(std::move(Out));
  }
  for (const JirMethod &M : J.Methods) {
    if (M.Name.empty())
      return makeError("method without a name");
    MethodInfo Out;
    Out.Name = M.Name;
    Out.Descriptor = M.Descriptor;
    Out.AccessFlags = M.AccessFlags;
    Out.Exceptions = M.Exceptions;
    if (M.HasBody) {
      auto Code = assembleBody(CF.CP, M);
      if (!Code)
        return makeError("method " + M.Name + ": " + Code.error());
      Out.Code = Code.take();
    }
    CF.Methods.push_back(std::move(Out));
  }
  return CF;
}

Result<Bytes> classfuzz::assembleToBytes(const JirClass &J) {
  auto CF = assembleFromJir(J);
  if (!CF)
    return makeError(CF.error());
  return writeClassFile(*CF);
}

void classfuzz::renameClassInPlace(JirClass &J,
                                   const std::string &NewName) {
  const std::string OldName = J.Name;
  J.Name = NewName;
  if (J.SuperClass == OldName)
    J.SuperClass = NewName;
  for (std::string &Iface : J.Interfaces)
    if (Iface == OldName)
      Iface = NewName;
  for (JirMethod &M : J.Methods) {
    for (std::string &Exc : M.Exceptions)
      if (Exc == OldName)
        Exc = NewName;
    for (JirExceptionEntry &E : M.ExceptionTable)
      if (E.CatchType == OldName)
        E.CatchType = NewName;
    for (JirStmt &S : M.Body) {
      if (S.RefClass == OldName)
        S.RefClass = NewName;
      if (!S.StrOperand.empty() && S.StrOperand == OldName &&
          S.ConstKind != 's')
        S.StrOperand = NewName; // Class operands, not string literals.
    }
  }
}

std::string classfuzz::printJir(const JirClass &J) {
  std::ostringstream OS;
  auto dotted = [](std::string S) {
    for (char &C : S)
      if (C == '/')
        C = '.';
    return S;
  };

  std::string Flags = classFlagsToString(J.AccessFlags);
  OS << (J.isInterface() ? "interface " : "class ") << dotted(J.Name);
  if (!J.SuperClass.empty())
    OS << " extends " << dotted(J.SuperClass);
  if (!J.Interfaces.empty()) {
    OS << " implements";
    for (size_t I = 0; I != J.Interfaces.size(); ++I)
      OS << (I ? ", " : " ") << dotted(J.Interfaces[I]);
  }
  OS << "  [" << Flags << "]\n{\n";
  for (const JirField &F : J.Fields)
    OS << "  " << fieldFlagsToString(F.AccessFlags) << " " << F.Descriptor
       << " " << F.Name << ";\n";
  for (const JirMethod &M : J.Methods) {
    OS << "  " << methodFlagsToString(M.AccessFlags) << " " << M.Name
       << M.Descriptor;
    if (!M.Exceptions.empty()) {
      OS << " throws";
      for (size_t I = 0; I != M.Exceptions.size(); ++I)
        OS << (I ? ", " : " ") << dotted(M.Exceptions[I]);
    }
    if (!M.HasBody) {
      OS << ";\n";
      continue;
    }
    OS << " {\n";
    for (size_t I = 0; I != M.Body.size(); ++I) {
      const JirStmt &S = M.Body[I];
      OS << "    " << I << ": " << opcodeName(S.Op);
      if (S.Op == OP_ldc) {
        switch (S.ConstKind) {
        case 'i':
          OS << " " << S.IntOperand;
          break;
        case 's':
          OS << " \"" << S.StrOperand << "\"";
          break;
        case 'c':
          OS << " class " << dotted(S.StrOperand);
          break;
        case 'f':
        case 'd':
          OS << " " << S.FpOperand;
          break;
        case 'j':
          OS << " " << S.LongOperand << "L";
          break;
        }
      } else if (!S.RefClass.empty()) {
        OS << " " << dotted(S.RefClass) << "." << S.RefName << ":"
           << S.RefDesc;
      } else if (!S.StrOperand.empty()) {
        OS << " " << dotted(S.StrOperand);
      } else if (S.isBranch()) {
        OS << " -> " << S.TargetIndex;
      } else if (S.Op == OP_iinc) {
        OS << " " << S.IntOperand << " += " << S.Operand2;
      } else if (isLocalOp(S.Op)) {
        OS << " slot " << S.IntOperand;
      }
      OS << "\n";
    }
    OS << "  }\n";
  }
  OS << "}\n";
  return OS.str();
}
