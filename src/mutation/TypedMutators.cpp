//===- mutation/TypedMutators.cpp - Hole-directed typed mutators ---------===//
//
// Part of classfuzz-cpp (PLDI 2016 classfuzz reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The analyzer-driven typed mutator family ("typed.*"): six operators
/// that consume the typed-hole list the static analyzer extracts
/// (analysis/TypedHoles.h) and substitute a *near-miss* of the expected
/// type at one hole -- a sibling class, an off-by-one descriptor, a
/// lattice-adjacent local kind, a confusable constant tag.
///
/// Draw discipline (the provenance/--jobs contract): a typed mutator
/// first filters its applicable holes deterministically (zero draws);
/// when none apply -- in particular whenever MutationContext.Holes is
/// null -- it reports Inapplicable without touching the Rng. Otherwise
/// it makes exactly one draw per choice: one for the hole, one for the
/// alternative, then applies to every matching site deterministically.
///
//===----------------------------------------------------------------------===//

#include "classfile/Opcodes.h"
#include "mutation/Mutator.h"

#include <algorithm>
#include <cassert>

using namespace classfuzz;

namespace {

/// True when \p S's StrOperand names a class (class-operand bytecodes
/// and ldc of a Class constant) rather than a string constant.
bool isClassOperandStmt(const JirStmt &S) {
  return !S.StrOperand.empty() &&
         (S.Op != OP_ldc || S.ConstKind == 'c');
}

bool hierarchyMentions(const JirClass &J, const std::string &Name) {
  if (J.SuperClass == Name)
    return true;
  if (std::find(J.Interfaces.begin(), J.Interfaces.end(), Name) !=
      J.Interfaces.end())
    return true;
  for (const JirMethod &M : J.Methods) {
    if (std::find(M.Exceptions.begin(), M.Exceptions.end(), Name) !=
        M.Exceptions.end())
      return true;
    for (const JirExceptionEntry &E : M.ExceptionTable)
      if (E.CatchType == Name)
        return true;
  }
  return false;
}

void replaceHierarchy(JirClass &J, const std::string &From,
                      const std::string &To) {
  if (J.SuperClass == From)
    J.SuperClass = To;
  for (std::string &I : J.Interfaces)
    if (I == From)
      I = To;
  for (JirMethod &M : J.Methods) {
    for (std::string &E : M.Exceptions)
      if (E == From)
        E = To;
    for (JirExceptionEntry &E : M.ExceptionTable)
      if (E.CatchType == From)
        E.CatchType = To;
  }
}

bool stmtsMention(const JirClass &J, const std::string &Name) {
  for (const JirMethod &M : J.Methods)
    for (const JirStmt &S : M.Body) {
      if (S.RefClass == Name)
        return true;
      if (isClassOperandStmt(S) && S.StrOperand == Name)
        return true;
    }
  return false;
}

void replaceStmts(JirClass &J, const std::string &From,
                  const std::string &To) {
  for (JirMethod &M : J.Methods)
    for (JirStmt &S : M.Body) {
      if (S.RefClass == From)
        S.RefClass = To;
      if (isClassOperandStmt(S) && S.StrOperand == From)
        S.StrOperand = To;
    }
}

/// The two typed sibling mutators share this shape: filter sibling
/// holes by a JIR-presence predicate, draw hole + alternative, replace
/// every occurrence through the given rewriter.
template <typename Mentions, typename Replace>
MutationResult applySibling(JirClass &J, MutationContext &Ctx,
                            Mentions &&MentionsFn, Replace &&ReplaceFn) {
  if (!Ctx.Holes)
    return MutationResult::Inapplicable;
  std::vector<const TypedHole *> Sites;
  for (const TypedHole &H : *Ctx.Holes)
    if (H.Kind == HoleKind::SiblingClass && !H.Alternatives.empty() &&
        MentionsFn(J, H.Expected))
      Sites.push_back(&H);
  if (Sites.empty())
    return MutationResult::Inapplicable;
  const TypedHole &H = *Sites[Ctx.R.choiceIndex(Sites.size())];
  const std::string &Alt = H.Alternatives[Ctx.R.choiceIndex(
      H.Alternatives.size())];
  ReplaceFn(J, H.Expected, Alt);
  return MutationResult::Applied;
}

MutationResult typedClassSibling(JirClass &J, MutationContext &Ctx) {
  return applySibling(J, Ctx, hierarchyMentions, replaceHierarchy);
}

MutationResult typedRefSibling(JirClass &J, MutationContext &Ctx) {
  return applySibling(J, Ctx, stmtsMention, replaceStmts);
}

/// Descriptor holes (arity and type) both rewrite one member's
/// descriptor to a drawn near-miss; the hole's location kind says
/// whether the member is a field or a method.
MutationResult applyDescriptorHole(JirClass &J, MutationContext &Ctx,
                                   HoleKind Kind) {
  if (!Ctx.Holes)
    return MutationResult::Inapplicable;
  std::vector<const TypedHole *> Sites;
  for (const TypedHole &H : *Ctx.Holes) {
    if (H.Kind != Kind || H.Alternatives.empty())
      continue;
    bool Present = false;
    if (H.Location.LocKind == DiagLocation::Kind::Field) {
      for (const JirField &F : J.Fields)
        Present |= F.Name == H.MemberName && F.Descriptor == H.MemberDesc;
    } else {
      for (const JirMethod &M : J.Methods)
        Present |= M.Name == H.MemberName && M.Descriptor == H.MemberDesc;
    }
    if (Present)
      Sites.push_back(&H);
  }
  if (Sites.empty())
    return MutationResult::Inapplicable;
  const TypedHole &H = *Sites[Ctx.R.choiceIndex(Sites.size())];
  const std::string &Alt = H.Alternatives[Ctx.R.choiceIndex(
      H.Alternatives.size())];
  if (H.Location.LocKind == DiagLocation::Kind::Field) {
    for (JirField &F : J.Fields)
      if (F.Name == H.MemberName && F.Descriptor == H.MemberDesc)
        F.Descriptor = Alt;
  } else {
    for (JirMethod &M : J.Methods)
      if (M.Name == H.MemberName && M.Descriptor == H.MemberDesc)
        M.Descriptor = Alt;
  }
  return MutationResult::Applied;
}

MutationResult typedDescArity(JirClass &J, MutationContext &Ctx) {
  return applyDescriptorHole(J, Ctx, HoleKind::DescriptorArity);
}

MutationResult typedDescType(JirClass &J, MutationContext &Ctx) {
  return applyDescriptorHole(J, Ctx, HoleKind::DescriptorType);
}

/// Verification-kind name -> load/store opcode family.
bool vkindOps(const std::string &Kind, uint8_t &Load, uint8_t &Store) {
  if (Kind == "int") {
    Load = OP_iload;
    Store = OP_istore;
  } else if (Kind == "float") {
    Load = OP_fload;
    Store = OP_fstore;
  } else if (Kind == "long") {
    Load = OP_lload;
    Store = OP_lstore;
  } else if (Kind == "double") {
    Load = OP_dload;
    Store = OP_dstore;
  } else if (Kind == "reference") {
    Load = OP_aload;
    Store = OP_astore;
  } else {
    return false;
  }
  return true;
}

bool isLoadOp(uint8_t Op) { return Op >= OP_iload && Op <= OP_aload; }
bool isStoreOp(uint8_t Op) { return Op >= OP_istore && Op <= OP_astore; }

MutationResult typedLocalRetype(JirClass &J, MutationContext &Ctx) {
  if (!Ctx.Holes)
    return MutationResult::Inapplicable;
  std::vector<const TypedHole *> Sites;
  for (const TypedHole &H : *Ctx.Holes) {
    if (H.Kind != HoleKind::LocalSlotType || H.Alternatives.empty() ||
        H.Slot < 0)
      continue;
    bool Present = false;
    for (const JirMethod &M : J.Methods) {
      if (M.Name != H.MemberName || M.Descriptor != H.MemberDesc ||
          !M.HasBody)
        continue;
      for (const JirStmt &S : M.Body)
        if ((isLoadOp(S.Op) || isStoreOp(S.Op)) && S.IntOperand == H.Slot) {
          Present = true;
          break;
        }
      if (Present)
        break;
    }
    if (Present)
      Sites.push_back(&H);
  }
  if (Sites.empty())
    return MutationResult::Inapplicable;
  const TypedHole &H = *Sites[Ctx.R.choiceIndex(Sites.size())];
  const std::string &Alt = H.Alternatives[Ctx.R.choiceIndex(
      H.Alternatives.size())];
  uint8_t Load = 0;
  uint8_t Store = 0;
  if (!vkindOps(Alt, Load, Store))
    return MutationResult::NoChange;
  bool Changed = false;
  for (JirMethod &M : J.Methods) {
    if (M.Name != H.MemberName || M.Descriptor != H.MemberDesc)
      continue;
    for (JirStmt &S : M.Body) {
      if (S.IntOperand != H.Slot)
        continue;
      if (isLoadOp(S.Op) && S.Op != Load) {
        S.Op = Load;
        Changed = true;
      } else if (isStoreOp(S.Op) && S.Op != Store) {
        S.Op = Store;
        Changed = true;
      }
    }
  }
  return Changed ? MutationResult::Applied : MutationResult::NoChange;
}

/// Constant tag name <-> JIR ldc ConstKind.
char tagConstKind(const std::string &Tag) {
  if (Tag == "Integer")
    return 'i';
  if (Tag == "Float")
    return 'f';
  if (Tag == "Long")
    return 'j';
  if (Tag == "Double")
    return 'd';
  if (Tag == "String")
    return 's';
  if (Tag == "Class")
    return 'c';
  return 0;
}

/// Converts one ldc statement from its kind to \p To, carrying the
/// payload across the confusion (bit-plausible, not bit-identical:
/// the numeric value is preserved, which is exactly the near-miss a
/// tag-confused pool would present).
void confuseConst(JirStmt &S, char To) {
  switch (S.ConstKind) {
  case 'i':
    if (To == 'f')
      S.FpOperand = S.IntOperand;
    break;
  case 'f':
    if (To == 'i')
      S.IntOperand = static_cast<int32_t>(S.FpOperand);
    break;
  case 'j':
    if (To == 'd')
      S.FpOperand = static_cast<double>(S.LongOperand);
    break;
  case 'd':
    if (To == 'j')
      S.LongOperand = static_cast<int64_t>(S.FpOperand);
    break;
  default:
    break; // 's' <-> 'c' reuse StrOperand as-is.
  }
  S.ConstKind = To;
}

MutationResult typedConstConfusion(JirClass &J, MutationContext &Ctx) {
  if (!Ctx.Holes)
    return MutationResult::Inapplicable;
  std::vector<const TypedHole *> Sites;
  for (const TypedHole &H : *Ctx.Holes) {
    if (H.Kind != HoleKind::CpTagConfusion || H.Alternatives.empty())
      continue;
    char From = tagConstKind(H.Expected);
    if (!From)
      continue;
    bool Present = false;
    for (const JirMethod &M : J.Methods)
      for (const JirStmt &S : M.Body)
        Present |= S.Op == OP_ldc && S.ConstKind == From;
    if (Present)
      Sites.push_back(&H);
  }
  if (Sites.empty())
    return MutationResult::Inapplicable;
  const TypedHole &H = *Sites[Ctx.R.choiceIndex(Sites.size())];
  const std::string &Alt = H.Alternatives[Ctx.R.choiceIndex(
      H.Alternatives.size())];
  char From = tagConstKind(H.Expected);
  char To = tagConstKind(Alt);
  if (!To || To == From)
    return MutationResult::NoChange;
  for (JirMethod &M : J.Methods)
    for (JirStmt &S : M.Body)
      if (S.Op == OP_ldc && S.ConstKind == From)
        confuseConst(S, To);
  return MutationResult::Applied;
}

void addTyped(std::vector<Mutator> &Reg, const char *Id,
              const char *Category, const char *Description,
              MutationResult (*Apply)(JirClass &, MutationContext &)) {
  Mutator M;
  M.Id = Id;
  M.Description = Description;
  M.Category = Category;
  M.Apply = Apply;
  Reg.push_back(std::move(M));
}

} // namespace

const std::vector<Mutator> &classfuzz::extendedMutatorRegistry() {
  static const std::vector<Mutator> Registry = [] {
    std::vector<Mutator> Reg = mutatorRegistry();
    addTyped(Reg, "typed.class.sibling", "Class",
             "Substitute a super/interface/throws/catch class with a "
             "sibling from the env hierarchy",
             typedClassSibling);
    addTyped(Reg, "typed.ref.sibling", "JimpleStmt",
             "Substitute a member-ref or class-operand class with a "
             "sibling from the env hierarchy",
             typedRefSibling);
    addTyped(Reg, "typed.desc.arity", "Method",
             "Replace a method descriptor with an off-by-one-arity "
             "near-miss",
             typedDescArity);
    addTyped(Reg, "typed.desc.type", "Method",
             "Replace a member descriptor with a near-miss of the "
             "expected type",
             typedDescType);
    addTyped(Reg, "typed.local.retype", "LocalVariable",
             "Retype a parameter slot's loads/stores to a "
             "lattice-adjacent verification kind",
             typedLocalRetype);
    addTyped(Reg, "typed.const.confusion", "JimpleStmt",
             "Swap a loadable constant's tag for its confusable twin",
             typedConstConfusion);
    return Reg;
  }();
  assert(Registry.size() == NumMutators + NumTypedMutators &&
         "extended registry must append exactly the typed family");
  return Registry;
}
