//===- mutation/Engine.cpp -------------------------------------------------===//

#include "mutation/Engine.h"

#include "classfile/Opcodes.h"

#include <cassert>

using namespace classfuzz;

void classfuzz::ensureMainMethod(JirClass &J) {
  if (J.findMethodByName("main"))
    return;
  JirMethod Main;
  Main.Name = "main";
  Main.Descriptor = "([Ljava/lang/String;)V";
  Main.AccessFlags = ACC_PUBLIC | ACC_STATIC;
  Main.HasBody = true;
  Main.MaxStack = 2;
  Main.MaxLocals = 1;
  JirStmt GetOut;
  GetOut.Op = OP_getstatic;
  GetOut.RefClass = "java/lang/System";
  GetOut.RefName = "out";
  GetOut.RefDesc = "Ljava/io/PrintStream;";
  JirStmt Ldc;
  Ldc.Op = OP_ldc;
  Ldc.ConstKind = 's';
  Ldc.StrOperand = SupplementedMainMessage;
  JirStmt Call;
  Call.Op = OP_invokevirtual;
  Call.RefClass = "java/io/PrintStream";
  Call.RefName = "println";
  Call.RefDesc = "(Ljava/lang/String;)V";
  JirStmt Ret;
  Ret.Op = OP_return;
  Main.Body = {GetOut, Ldc, Call, Ret};
  J.Methods.push_back(std::move(Main));
}

MutationOutcome classfuzz::mutateClass(const Bytes &SeedData,
                                       size_t MutatorIndex,
                                       MutationContext &Ctx) {
  assert(MutatorIndex < extendedMutatorRegistry().size() &&
         "mutator index out of range");
  MutationOutcome Out;

  auto Lowered = lowerClassBytes(SeedData);
  if (!Lowered) {
    Out.Error = "lowering: " + Lowered.error();
    return Out;
  }
  JirClass J = Lowered.take();

  const Mutator &Mu = extendedMutatorRegistry()[MutatorIndex];
  Out.Result = Mu.Apply(J, Ctx);
  if (Out.Result == MutationResult::Inapplicable) {
    Out.Error = "mutator " + Mu.Id + " not applicable";
    return Out;
  }

  // §2.2.1: supplement each mutant with a simple main so that "a mutated
  // classfile can either be normally invoked or trigger an error".
  ensureMainMethod(J);

  // Every mutant gets a fresh unique name (the paper's M1436188543
  // style), with Soot-like self-reference fixup. Unique names keep
  // mutants from shadowing each other on the class path.
  renameClassInPlace(
      J, "M" + std::to_string(1400000000 + Ctx.R.nextBelow(99999999)) +
             std::to_string(Ctx.R.nextBelow(997)));

  auto Data = assembleToBytes(J);
  if (!Data) {
    Out.Error = "assembly: " + Data.error();
    return Out;
  }
  Out.Produced = true;
  Out.ClassName = J.Name;
  Out.Data = Data.take();
  return Out;
}
