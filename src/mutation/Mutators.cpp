//===- mutation/Mutators.cpp - Registry of the 129 mutators ---------------===//

#include "mutation/Mutator.h"

#include "classfile/Descriptor.h"
#include "classfile/Opcodes.h"

#include <cassert>

using namespace classfuzz;

namespace {

// ---- small helpers --------------------------------------------------------

/// Index of a random element, or -1 when empty.
template <typename T>
int pickIndex(const std::vector<T> &Items, Rng &R) {
  if (Items.empty())
    return -1;
  return static_cast<int>(R.choiceIndex(Items.size()));
}

/// Index of a random method with a body, or -1.
int pickBodyMethod(const JirClass &J, Rng &R) {
  std::vector<int> Candidates;
  for (size_t I = 0; I != J.Methods.size(); ++I)
    if (J.Methods[I].HasBody)
      Candidates.push_back(static_cast<int>(I));
  if (Candidates.empty())
    return -1;
  return Candidates[R.choiceIndex(Candidates.size())];
}

int pickMethod(const JirClass &J, Rng &R) {
  if (J.Methods.empty())
    return -1;
  return static_cast<int>(R.choiceIndex(J.Methods.size()));
}

std::string randomIdentifier(Rng &R) {
  static const char *Stems[] = {"m",  "run",   "value", "doIt", "x",
                                "op", "apply", "get",   "next", "work"};
  return std::string(Stems[R.choiceIndex(10)]) +
         std::to_string(R.nextBelow(1000));
}

std::string randomKnownClass(MutationContext &Ctx) {
  if (Ctx.KnownClasses.empty())
    return "java/lang/Object";
  return Ctx.KnownClasses[Ctx.R.choiceIndex(Ctx.KnownClasses.size())];
}

/// A fresh void method with a trivial body.
JirMethod makeVoidMethod(const std::string &Name, uint16_t Flags) {
  JirMethod M;
  M.Name = Name;
  M.Descriptor = "()V";
  M.AccessFlags = Flags;
  M.HasBody = true;
  M.MaxStack = 1;
  M.MaxLocals = 1;
  JirStmt Ret;
  Ret.Op = OP_return;
  M.Body.push_back(Ret);
  return M;
}

/// A method printing a constant via System.out.
JirMethod makePrintingMethod(const std::string &Name, uint16_t Flags,
                             const std::string &Message) {
  JirMethod M;
  M.Name = Name;
  M.Descriptor = "()V";
  M.AccessFlags = Flags;
  M.HasBody = true;
  M.MaxStack = 2;
  M.MaxLocals = 1;
  JirStmt GetOut;
  GetOut.Op = OP_getstatic;
  GetOut.RefClass = "java/lang/System";
  GetOut.RefName = "out";
  GetOut.RefDesc = "Ljava/io/PrintStream;";
  JirStmt Ldc;
  Ldc.Op = OP_ldc;
  Ldc.ConstKind = 's';
  Ldc.StrOperand = Message;
  JirStmt Call;
  Call.Op = OP_invokevirtual;
  Call.RefClass = "java/io/PrintStream";
  Call.RefName = "println";
  Call.RefDesc = "(Ljava/lang/String;)V";
  JirStmt Ret;
  Ret.Op = OP_return;
  M.Body = {GetOut, Ldc, Call, Ret};
  return M;
}

/// Rewrites one parameter of a method descriptor; returns false when the
/// descriptor is malformed or has no parameter at \p Which.
bool retypeParameter(JirMethod &M, size_t Which, const JType &NewType) {
  MethodDescriptor MD;
  if (!parseMethodDescriptor(M.Descriptor, MD) ||
      Which >= MD.Params.size() || MD.Params[Which] == NewType)
    return false;
  MD.Params[Which] = NewType;
  M.Descriptor = MD.toDescriptor();
  return true;
}

bool changeReturnType(JirMethod &M, const JType &NewType) {
  MethodDescriptor MD;
  if (!parseMethodDescriptor(M.Descriptor, MD) ||
      MD.ReturnType == NewType)
    return false;
  MD.ReturnType = NewType;
  M.Descriptor = MD.toDescriptor();
  return true;
}

/// All body statements touching local \p Slot as load/store of any kind.
std::vector<size_t> localRefs(const JirMethod &M, int32_t Slot) {
  std::vector<size_t> Out;
  for (size_t I = 0; I != M.Body.size(); ++I) {
    uint8_t Op = M.Body[I].Op;
    bool Local = (Op >= OP_iload && Op <= OP_aload) ||
                 (Op >= OP_istore && Op <= OP_astore) || Op == OP_iinc;
    if (Local && M.Body[I].IntOperand == Slot)
      Out.push_back(I);
  }
  return Out;
}

/// Picks a local slot referenced in the body, or -1.
int pickReferencedSlot(const JirMethod &M, Rng &R) {
  std::vector<int32_t> Slots;
  for (const JirStmt &S : M.Body) {
    uint8_t Op = S.Op;
    bool Local = (Op >= OP_iload && Op <= OP_aload) ||
                 (Op >= OP_istore && Op <= OP_astore) || Op == OP_iinc;
    if (Local)
      Slots.push_back(S.IntOperand);
  }
  if (Slots.empty())
    return -1;
  return Slots[R.choiceIndex(Slots.size())];
}

/// Fields of a canned donor class ("replace all fields with those of
/// another class", Table 5).
std::vector<JirField> donorFields() {
  return {
      {"out", "Ljava/io/PrintStream;",
       ACC_PUBLIC | ACC_STATIC | ACC_FINAL, std::nullopt},
      {"MAP", "Ljava/util/Map;", ACC_PROTECTED | ACC_FINAL,
       std::nullopt},
      {"count", "I", ACC_PRIVATE, std::nullopt},
  };
}

/// Methods of a canned donor class ("replace all methods with those of
/// another class", the top Table 5 mutator).
std::vector<JirMethod> donorMethods() {
  std::vector<JirMethod> Out;
  JirMethod Ctor = makeVoidMethod("<init>", ACC_PUBLIC);
  {
    // Proper constructor body: aload_0; invokespecial Object.<init>.
    JirStmt Load;
    Load.Op = OP_aload;
    Load.IntOperand = 0;
    JirStmt Call;
    Call.Op = OP_invokespecial;
    Call.RefClass = "java/lang/Object";
    Call.RefName = "<init>";
    Call.RefDesc = "()V";
    JirStmt Ret;
    Ret.Op = OP_return;
    Ctor.Body = {Load, Call, Ret};
  }
  Out.push_back(Ctor);
  Out.push_back(makePrintingMethod("run", ACC_PUBLIC, "donor-run"));
  JirMethod Getter;
  Getter.Name = "size";
  Getter.Descriptor = "()I";
  Getter.AccessFlags = ACC_PUBLIC;
  Getter.HasBody = true;
  Getter.MaxStack = 1;
  Getter.MaxLocals = 1;
  JirStmt Zero;
  Zero.Op = OP_ldc;
  Zero.ConstKind = 'i';
  Zero.IntOperand = 0;
  JirStmt Ret;
  Ret.Op = OP_ireturn;
  Getter.Body = {Zero, Ret};
  Out.push_back(Getter);
  return Out;
}

JirStmt makeNop() {
  JirStmt S;
  S.Op = OP_nop;
  return S;
}

/// A random harmless-ish statement for statement insertion.
JirStmt makeRandomSimpleStmt(Rng &R) {
  switch (R.nextBelow(3)) {
  case 0:
    return makeNop();
  case 1: {
    JirStmt S;
    S.Op = OP_ldc;
    S.ConstKind = 'i';
    S.IntOperand = static_cast<int32_t>(R.nextInRange(-4, 9));
    return S;
  }
  default: {
    JirStmt S;
    S.Op = OP_pop;
    return S;
  }
  }
}

// ---- registry construction ------------------------------------------------

using Fn = std::function<bool(JirClass &, MutationContext &)>;

/// Wraps a bool-style operator body into the three-way MutationResult
/// API via classifyMutation.
void add(std::vector<Mutator> &Reg, const char *Id, const char *Category,
         const char *Description, Fn Apply) {
  Reg.push_back(Mutator{
      Id, Description, Category,
      [Body = std::move(Apply)](JirClass &J, MutationContext &Ctx) {
        return classifyMutation(Body, J, Ctx);
      }});
}

void addClassMutators(std::vector<Mutator> &Reg) {
  auto flagAdd = [](uint16_t Flag) {
    return [Flag](JirClass &J, MutationContext &) {
      if (J.AccessFlags & Flag)
        return false;
      J.AccessFlags |= Flag;
      return true;
    };
  };
  auto flagRemove = [](uint16_t Flag) {
    return [Flag](JirClass &J, MutationContext &) {
      if (!(J.AccessFlags & Flag))
        return false;
      J.AccessFlags = static_cast<uint16_t>(J.AccessFlags & ~Flag);
      return true;
    };
  };
  auto setSuper = [](const char *Super) {
    return [Super](JirClass &J, MutationContext &) {
      if (J.SuperClass == Super)
        return false;
      J.SuperClass = Super;
      return true;
    };
  };
  auto setMajor = [](uint16_t Major) {
    return [Major](JirClass &J, MutationContext &) {
      if (J.MajorVersion == Major)
        return false;
      J.MajorVersion = Major;
      return true;
    };
  };

  add(Reg, "class.add-final", "Class",
      "Select a class and add the final modifier", flagAdd(ACC_FINAL));
  add(Reg, "class.remove-final", "Class",
      "Select a class and remove the final modifier",
      flagRemove(ACC_FINAL));
  add(Reg, "class.add-abstract", "Class",
      "Select a class and add the abstract modifier",
      flagAdd(ACC_ABSTRACT));
  add(Reg, "class.remove-abstract", "Class",
      "Select a class and remove the abstract modifier",
      flagRemove(ACC_ABSTRACT));
  add(Reg, "class.add-interface-flag", "Class",
      "Select a class and turn it into an interface",
      flagAdd(ACC_INTERFACE));
  add(Reg, "class.remove-interface-flag", "Class",
      "Select an interface and turn it into a class",
      flagRemove(ACC_INTERFACE));
  add(Reg, "class.add-annotation-flag", "Class",
      "Select a class and mark it as an annotation",
      flagAdd(ACC_ANNOTATION));
  add(Reg, "class.add-enum-flag", "Class",
      "Select a class and mark it as an enum", flagAdd(ACC_ENUM));
  add(Reg, "class.add-synthetic-flag", "Class",
      "Select a class and mark it synthetic", flagAdd(ACC_SYNTHETIC));
  add(Reg, "class.remove-public", "Class",
      "Select a class and remove the public modifier",
      flagRemove(ACC_PUBLIC));
  add(Reg, "class.add-private", "Class",
      "Select a class and add the private modifier",
      flagAdd(ACC_PRIVATE));
  add(Reg, "class.remove-super-flag", "Class",
      "Select a class and remove the ACC_SUPER flag",
      flagRemove(ACC_SUPER));
  add(Reg, "class.rename", "Class",
      "Select a class and rename it",
      [](JirClass &J, MutationContext &Ctx) {
        J.Name = "M" + std::to_string(1400000000 +
                                      Ctx.R.nextBelow(99999999));
        return true;
      });
  add(Reg, "class.reset-package", "Class",
      "Select a class and reset its package name",
      [](JirClass &J, MutationContext &Ctx) {
        size_t Slash = J.Name.rfind('/');
        std::string Simple =
            Slash == std::string::npos ? J.Name : J.Name.substr(Slash + 1);
        J.Name = "pkg" + std::to_string(Ctx.R.nextBelow(100)) + "/" +
                 Simple;
        return true;
      });
  add(Reg, "class.set-super-thread", "Class",
      "Select a class and set java.lang.Thread as its superclass",
      setSuper("java/lang/Thread"));
  add(Reg, "class.set-super-exception", "Class",
      "Select a class and set java.lang.Exception as its superclass",
      setSuper("java/lang/Exception"));
  add(Reg, "class.set-super-final", "Class",
      "Select a class and set a final class as its superclass",
      setSuper("java/lang/String"));
  add(Reg, "class.set-super-interface", "Class",
      "Select a class and set an interface as its superclass",
      setSuper("java/lang/Runnable"));
  add(Reg, "class.set-super-missing", "Class",
      "Select a class and set a missing class as its superclass",
      setSuper("no/such/Clazz"));
  add(Reg, "class.set-super-random", "Class",
      "Select a class and set its superclass as a class randomly "
      "selected from a class list",
      [](JirClass &J, MutationContext &Ctx) {
        J.SuperClass = randomKnownClass(Ctx);
        return true;
      });
  add(Reg, "class.set-super-self", "Class",
      "Select a class and set the class itself as its superclass",
      [](JirClass &J, MutationContext &) {
        J.SuperClass = J.Name;
        return true;
      });
  add(Reg, "class.set-super-object", "Class",
      "Select a class and reset its superclass to java.lang.Object",
      setSuper("java/lang/Object"));
  add(Reg, "class.set-version-49", "Class",
      "Select a class and set its major version to 49", setMajor(49));
  add(Reg, "class.set-version-52", "Class",
      "Select a class and set its major version to 52", setMajor(52));
  add(Reg, "class.set-version-53", "Class",
      "Select a class and set its major version to 53", setMajor(53));
  add(Reg, "class.set-version-99", "Class",
      "Select a class and set an unsupported major version",
      setMajor(99));
  add(Reg, "class.set-super-sun-internal", "Class",
      "Select a class and set a sun.* internal class as its superclass",
      setSuper("sun/misc/BASE64Encoder"));
  add(Reg, "class.set-minor-version", "Class",
      "Select a class and set a nonzero minor version",
      [](JirClass &J, MutationContext &Ctx) {
        J.MinorVersion = static_cast<uint16_t>(1 + Ctx.R.nextBelow(9));
        return true;
      });
}

void addInterfaceListMutators(std::vector<Mutator> &Reg) {
  auto addIface = [](const char *Name) {
    return [Name](JirClass &J, MutationContext &) {
      for (const std::string &I : J.Interfaces)
        if (I == Name)
          return false;
      J.Interfaces.push_back(Name);
      return true;
    };
  };
  add(Reg, "iface.add-runnable", "Interface",
      "Insert java.lang.Runnable as an implemented interface",
      addIface("java/lang/Runnable"));
  add(Reg, "iface.add-privileged-action", "Interface",
      "Insert java.security.PrivilegedAction as an implemented "
      "interface",
      addIface("java/security/PrivilegedAction"));
  add(Reg, "iface.add-comparable", "Interface",
      "Insert java.lang.Comparable as an implemented interface",
      addIface("java/lang/Comparable"));
  add(Reg, "iface.add-serializable", "Interface",
      "Insert java.io.Serializable as an implemented interface",
      addIface("java/io/Serializable"));
  add(Reg, "iface.add-map", "Interface",
      "Insert java.util.Map as an implemented interface",
      addIface("java/util/Map"));
  add(Reg, "iface.add-random", "Interface",
      "Insert an interface randomly selected from a class list",
      [](JirClass &J, MutationContext &Ctx) {
        J.Interfaces.push_back(randomKnownClass(Ctx));
        return true;
      });
  add(Reg, "iface.add-non-interface", "Interface",
      "Insert a non-interface class into the implements list",
      addIface("java/lang/Thread"));
  add(Reg, "iface.add-missing", "Interface",
      "Insert a missing class into the implements list",
      addIface("no/such/Iface"));
  add(Reg, "iface.add-self", "Interface",
      "Insert the class itself into its implements list",
      [](JirClass &J, MutationContext &) {
        J.Interfaces.push_back(J.Name);
        return true;
      });
  add(Reg, "iface.duplicate-one", "Interface",
      "Duplicate one implemented interface",
      [](JirClass &J, MutationContext &Ctx) {
        int I = pickIndex(J.Interfaces, Ctx.R);
        if (I < 0)
          return false;
        J.Interfaces.push_back(J.Interfaces[I]);
        return true;
      });
  add(Reg, "iface.delete-one", "Interface",
      "Delete one implemented interface",
      [](JirClass &J, MutationContext &Ctx) {
        int I = pickIndex(J.Interfaces, Ctx.R);
        if (I < 0)
          return false;
        J.Interfaces.erase(J.Interfaces.begin() + I);
        return true;
      });
  add(Reg, "iface.delete-all", "Interface",
      "Delete all implemented interfaces",
      [](JirClass &J, MutationContext &) {
        if (J.Interfaces.empty())
          return false;
        J.Interfaces.clear();
        return true;
      });
}

void addFieldMutators(std::vector<Mutator> &Reg) {
  auto insertField = [](const char *Desc, uint16_t Flags) {
    return [Desc, Flags](JirClass &J, MutationContext &Ctx) {
      J.Fields.push_back({"f" + std::to_string(Ctx.R.nextBelow(1000)),
                          Desc, Flags, std::nullopt});
      return true;
    };
  };
  add(Reg, "field.insert-int", "Field",
      "Insert an int field", insertField("I", ACC_PUBLIC));
  add(Reg, "field.insert-string", "Field",
      "Insert a java.lang.String field",
      insertField("Ljava/lang/String;", ACC_PROTECTED));
  add(Reg, "field.insert-object", "Field",
      "Insert a java.lang.Object field",
      insertField("Ljava/lang/Object;", ACC_PUBLIC));
  add(Reg, "field.insert-static", "Field",
      "Insert a static field", insertField("I", ACC_PUBLIC | ACC_STATIC));
  add(Reg, "field.insert-static-final", "Field",
      "Insert a static final field",
      insertField("I", ACC_PUBLIC | ACC_STATIC | ACC_FINAL));
  add(Reg, "field.insert-duplicate", "Field",
      "Insert one or more class fields that exist in the seed",
      [](JirClass &J, MutationContext &Ctx) {
        int I = pickIndex(J.Fields, Ctx.R);
        if (I < 0)
          return false;
        J.Fields.push_back(J.Fields[I]);
        return true;
      });
  add(Reg, "field.insert-bad-descriptor", "Field",
      "Insert a field with a malformed descriptor",
      insertField("Q", ACC_PUBLIC));
  add(Reg, "field.insert-conflicting-visibility", "Field",
      "Insert a field that is both public and private",
      insertField("I", ACC_PUBLIC | ACC_PRIVATE));
  add(Reg, "field.insert-final-volatile", "Field",
      "Insert a field that is both final and volatile",
      insertField("I", ACC_FINAL | ACC_VOLATILE));
  add(Reg, "field.delete-one", "Field",
      "Delete one field",
      [](JirClass &J, MutationContext &Ctx) {
        int I = pickIndex(J.Fields, Ctx.R);
        if (I < 0)
          return false;
        J.Fields.erase(J.Fields.begin() + I);
        return true;
      });
  add(Reg, "field.delete-all", "Field",
      "Delete all fields",
      [](JirClass &J, MutationContext &) {
        if (J.Fields.empty())
          return false;
        J.Fields.clear();
        return true;
      });
  add(Reg, "field.rename-one", "Field",
      "Select a field and rename it",
      [](JirClass &J, MutationContext &Ctx) {
        int I = pickIndex(J.Fields, Ctx.R);
        if (I < 0)
          return false;
        J.Fields[I].Name = randomIdentifier(Ctx.R);
        return true;
      });
  add(Reg, "field.retype-object", "Field",
      "Select a field and set its type to java.lang.Object",
      [](JirClass &J, MutationContext &Ctx) {
        int I = pickIndex(J.Fields, Ctx.R);
        if (I < 0 || J.Fields[I].Descriptor == "Ljava/lang/Object;")
          return false;
        J.Fields[I].Descriptor = "Ljava/lang/Object;";
        return true;
      });
  add(Reg, "field.retype-int", "Field",
      "Select a field and set its type to int",
      [](JirClass &J, MutationContext &Ctx) {
        int I = pickIndex(J.Fields, Ctx.R);
        if (I < 0 || J.Fields[I].Descriptor == "I")
          return false;
        J.Fields[I].Descriptor = "I";
        return true;
      });
  add(Reg, "field.add-static", "Field",
      "Select a field and add the static modifier",
      [](JirClass &J, MutationContext &Ctx) {
        int I = pickIndex(J.Fields, Ctx.R);
        if (I < 0 || (J.Fields[I].AccessFlags & ACC_STATIC))
          return false;
        J.Fields[I].AccessFlags |= ACC_STATIC;
        return true;
      });
  add(Reg, "field.remove-static", "Field",
      "Select a field and remove the static modifier",
      [](JirClass &J, MutationContext &Ctx) {
        int I = pickIndex(J.Fields, Ctx.R);
        if (I < 0 || !(J.Fields[I].AccessFlags & ACC_STATIC))
          return false;
        J.Fields[I].AccessFlags =
            static_cast<uint16_t>(J.Fields[I].AccessFlags & ~ACC_STATIC);
        return true;
      });
  add(Reg, "field.add-final", "Field",
      "Select a field and add the final modifier",
      [](JirClass &J, MutationContext &Ctx) {
        int I = pickIndex(J.Fields, Ctx.R);
        if (I < 0 || (J.Fields[I].AccessFlags & ACC_FINAL))
          return false;
        J.Fields[I].AccessFlags |= ACC_FINAL;
        return true;
      });
  add(Reg, "field.make-private", "Field",
      "Select a field and make it private",
      [](JirClass &J, MutationContext &Ctx) {
        int I = pickIndex(J.Fields, Ctx.R);
        if (I < 0)
          return false;
        J.Fields[I].AccessFlags = static_cast<uint16_t>(
            (J.Fields[I].AccessFlags & ~(ACC_PUBLIC | ACC_PROTECTED)) |
            ACC_PRIVATE);
        return true;
      });
  add(Reg, "field.add-enum-flag", "Field",
      "Select a field and mark it as an enum constant",
      [](JirClass &J, MutationContext &Ctx) {
        int I = pickIndex(J.Fields, Ctx.R);
        if (I < 0 || (J.Fields[I].AccessFlags & ACC_ENUM))
          return false;
        J.Fields[I].AccessFlags |= ACC_ENUM;
        return true;
      });
  add(Reg, "field.replace-all-with-donor", "Field",
      "Select a class and replace all of its fields with those of "
      "another class",
      [](JirClass &J, MutationContext &) {
        J.Fields = donorFields();
        return true;
      });
}

void addMethodMutators(std::vector<Mutator> &Reg) {
  add(Reg, "method.insert-void", "Method",
      "Insert an empty void method",
      [](JirClass &J, MutationContext &Ctx) {
        J.Methods.push_back(
            makeVoidMethod(randomIdentifier(Ctx.R), ACC_PUBLIC));
        return true;
      });
  add(Reg, "method.insert-printing", "Method",
      "Insert a method with a printing body",
      [](JirClass &J, MutationContext &Ctx) {
        J.Methods.push_back(makePrintingMethod(randomIdentifier(Ctx.R),
                                               ACC_PUBLIC, "inserted"));
        return true;
      });
  add(Reg, "method.insert-abstract", "Method",
      "Insert an abstract method",
      [](JirClass &J, MutationContext &Ctx) {
        JirMethod M;
        M.Name = randomIdentifier(Ctx.R);
        M.Descriptor = "()V";
        M.AccessFlags = ACC_PUBLIC | ACC_ABSTRACT;
        J.Methods.push_back(std::move(M));
        return true;
      });
  add(Reg, "method.insert-native", "Method",
      "Insert a native method",
      [](JirClass &J, MutationContext &Ctx) {
        JirMethod M;
        M.Name = randomIdentifier(Ctx.R);
        M.Descriptor = "()V";
        M.AccessFlags = ACC_PUBLIC | ACC_NATIVE;
        J.Methods.push_back(std::move(M));
        return true;
      });
  add(Reg, "method.insert-static", "Method",
      "Insert a static method",
      [](JirClass &J, MutationContext &Ctx) {
        J.Methods.push_back(makeVoidMethod(randomIdentifier(Ctx.R),
                                           ACC_PUBLIC | ACC_STATIC));
        return true;
      });
  add(Reg, "method.insert-duplicate", "Method",
      "Insert a copy of an existing method",
      [](JirClass &J, MutationContext &Ctx) {
        int I = pickMethod(J, Ctx.R);
        if (I < 0)
          return false;
        J.Methods.push_back(J.Methods[I]);
        return true;
      });
  add(Reg, "method.insert-main", "Method",
      "Insert a main method (e.g. into a seeding interface)",
      [](JirClass &J, MutationContext &) {
        if (J.findMethodByName("main"))
          return false;
        JirMethod M = makePrintingMethod("main", ACC_PUBLIC | ACC_STATIC,
                                         "Completed!");
        M.Descriptor = "([Ljava/lang/String;)V";
        J.Methods.push_back(std::move(M));
        return true;
      });
  add(Reg, "method.insert-clinit", "Method",
      "Insert a static class initializer",
      [](JirClass &J, MutationContext &) {
        if (J.findMethodByName("<clinit>"))
          return false;
        J.Methods.push_back(makeVoidMethod("<clinit>", ACC_STATIC));
        return true;
      });
  add(Reg, "method.insert-nonstatic-clinit", "Method",
      "Insert a non-static method named <clinit> (the Figure 2 shape)",
      [](JirClass &J, MutationContext &) {
        if (J.findMethodByName("<clinit>"))
          return false;
        JirMethod M;
        M.Name = "<clinit>";
        M.Descriptor = "()V";
        M.AccessFlags = ACC_PUBLIC | ACC_ABSTRACT;
        J.Methods.push_back(std::move(M));
        return true;
      });
  add(Reg, "method.delete-clinit", "Method",
      "Delete the class initializer",
      [](JirClass &J, MutationContext &) {
        for (size_t I = 0; I != J.Methods.size(); ++I)
          if (J.Methods[I].Name == "<clinit>") {
            J.Methods.erase(J.Methods.begin() + I);
            return true;
          }
        return false;
      });
  add(Reg, "method.delete-one", "Method",
      "Select a method and delete it",
      [](JirClass &J, MutationContext &Ctx) {
        int I = pickMethod(J, Ctx.R);
        if (I < 0)
          return false;
        J.Methods.erase(J.Methods.begin() + I);
        return true;
      });
  add(Reg, "method.delete-all", "Method",
      "Delete all methods",
      [](JirClass &J, MutationContext &) {
        if (J.Methods.empty())
          return false;
        J.Methods.clear();
        return true;
      });
  add(Reg, "method.delete-constructor", "Method",
      "Delete a constructor",
      [](JirClass &J, MutationContext &) {
        for (size_t I = 0; I != J.Methods.size(); ++I)
          if (J.Methods[I].Name == "<init>") {
            J.Methods.erase(J.Methods.begin() + I);
            return true;
          }
        return false;
      });
  add(Reg, "method.rename-one", "Method",
      "Select a method and rename it",
      [](JirClass &J, MutationContext &Ctx) {
        int I = pickMethod(J, Ctx.R);
        if (I < 0)
          return false;
        J.Methods[I].Name = randomIdentifier(Ctx.R);
        return true;
      });
  add(Reg, "method.rename-to-clinit", "Method",
      "Select a method and rename it to <clinit>",
      [](JirClass &J, MutationContext &Ctx) {
        int I = pickMethod(J, Ctx.R);
        if (I < 0 || J.Methods[I].Name == "<clinit>")
          return false;
        J.Methods[I].Name = "<clinit>";
        return true;
      });
  add(Reg, "method.rename-to-init", "Method",
      "Select a method and rename it to <init>",
      [](JirClass &J, MutationContext &Ctx) {
        int I = pickMethod(J, Ctx.R);
        if (I < 0 || J.Methods[I].Name == "<init>")
          return false;
        J.Methods[I].Name = "<init>";
        return true;
      });
  add(Reg, "method.rename-to-main", "Method",
      "Select a method and rename it to main",
      [](JirClass &J, MutationContext &Ctx) {
        int I = pickMethod(J, Ctx.R);
        if (I < 0 || J.Methods[I].Name == "main")
          return false;
        J.Methods[I].Name = "main";
        return true;
      });
  add(Reg, "method.return-type-int", "Method",
      "Select a method and change its return type to int",
      [](JirClass &J, MutationContext &Ctx) {
        int I = pickMethod(J, Ctx.R);
        return I >= 0 && changeReturnType(J.Methods[I], intType());
      });
  add(Reg, "method.return-type-void", "Method",
      "Select a method and change its return type to void",
      [](JirClass &J, MutationContext &Ctx) {
        int I = pickMethod(J, Ctx.R);
        return I >= 0 && changeReturnType(J.Methods[I], voidType());
      });
  add(Reg, "method.return-type-thread", "Method",
      "Select a method and change its return type to java.lang.Thread",
      [](JirClass &J, MutationContext &Ctx) {
        int I = pickMethod(J, Ctx.R);
        return I >= 0 &&
               changeReturnType(J.Methods[I], refType("java/lang/Thread"));
      });
  add(Reg, "method.add-static", "Method",
      "Select a method and add the static modifier",
      [](JirClass &J, MutationContext &Ctx) {
        int I = pickMethod(J, Ctx.R);
        if (I < 0 || J.Methods[I].isStatic())
          return false;
        J.Methods[I].AccessFlags |= ACC_STATIC;
        return true;
      });
  add(Reg, "method.remove-static", "Method",
      "Select a method and remove the static modifier",
      [](JirClass &J, MutationContext &Ctx) {
        int I = pickMethod(J, Ctx.R);
        if (I < 0 || !J.Methods[I].isStatic())
          return false;
        J.Methods[I].AccessFlags = static_cast<uint16_t>(
            J.Methods[I].AccessFlags & ~ACC_STATIC);
        return true;
      });
  add(Reg, "method.add-abstract-keep-code", "Method",
      "Select a method and add the abstract modifier (keeping its code)",
      [](JirClass &J, MutationContext &Ctx) {
        int I = pickBodyMethod(J, Ctx.R);
        if (I < 0)
          return false;
        J.Methods[I].AccessFlags |= ACC_ABSTRACT;
        return true;
      });
  add(Reg, "method.add-abstract-drop-code", "Method",
      "Select a method, add the abstract modifier and delete its opcode",
      [](JirClass &J, MutationContext &Ctx) {
        int I = pickBodyMethod(J, Ctx.R);
        if (I < 0)
          return false;
        J.Methods[I].AccessFlags |= ACC_ABSTRACT;
        J.Methods[I].HasBody = false;
        J.Methods[I].Body.clear();
        J.Methods[I].ExceptionTable.clear();
        return true;
      });
  add(Reg, "method.add-final", "Method",
      "Select a method and add the final modifier",
      [](JirClass &J, MutationContext &Ctx) {
        int I = pickMethod(J, Ctx.R);
        if (I < 0 || (J.Methods[I].AccessFlags & ACC_FINAL))
          return false;
        J.Methods[I].AccessFlags |= ACC_FINAL;
        return true;
      });
  add(Reg, "method.add-native-keep-code", "Method",
      "Select a method and add the native modifier (keeping its code)",
      [](JirClass &J, MutationContext &Ctx) {
        int I = pickBodyMethod(J, Ctx.R);
        if (I < 0)
          return false;
        J.Methods[I].AccessFlags |= ACC_NATIVE;
        return true;
      });
  add(Reg, "method.make-private", "Method",
      "Select a method and make it private",
      [](JirClass &J, MutationContext &Ctx) {
        int I = pickMethod(J, Ctx.R);
        if (I < 0)
          return false;
        J.Methods[I].AccessFlags = static_cast<uint16_t>(
            (J.Methods[I].AccessFlags & ~(ACC_PUBLIC | ACC_PROTECTED)) |
            ACC_PRIVATE);
        return true;
      });
  add(Reg, "method.conflicting-visibility", "Method",
      "Select a method and set conflicting visibility flags",
      [](JirClass &J, MutationContext &Ctx) {
        int I = pickMethod(J, Ctx.R);
        if (I < 0)
          return false;
        J.Methods[I].AccessFlags |= ACC_PUBLIC | ACC_PRIVATE;
        return true;
      });
  add(Reg, "method.delete-code", "Method",
      "Select a method and delete its Code attribute",
      [](JirClass &J, MutationContext &Ctx) {
        int I = pickBodyMethod(J, Ctx.R);
        if (I < 0)
          return false;
        J.Methods[I].HasBody = false;
        J.Methods[I].Body.clear();
        J.Methods[I].ExceptionTable.clear();
        return true;
      });
  add(Reg, "method.replace-all-with-donor", "Method",
      "Select a class and replace all of its methods with those of "
      "another class",
      [](JirClass &J, MutationContext &) {
        J.Methods = donorMethods();
        return true;
      });
  add(Reg, "method.swap-bodies", "Method",
      "Select two methods and exchange their bodies",
      [](JirClass &J, MutationContext &Ctx) {
        std::vector<int> WithBody;
        for (size_t I = 0; I != J.Methods.size(); ++I)
          if (J.Methods[I].HasBody)
            WithBody.push_back(static_cast<int>(I));
        if (WithBody.size() < 2)
          return false;
        int A = WithBody[Ctx.R.choiceIndex(WithBody.size())];
        int B = WithBody[Ctx.R.choiceIndex(WithBody.size())];
        if (A == B)
          return false;
        std::swap(J.Methods[A].Body, J.Methods[B].Body);
        std::swap(J.Methods[A].MaxStack, J.Methods[B].MaxStack);
        std::swap(J.Methods[A].MaxLocals, J.Methods[B].MaxLocals);
        std::swap(J.Methods[A].ExceptionTable,
                  J.Methods[B].ExceptionTable);
        return true;
      });
}

void addExceptionMutators(std::vector<Mutator> &Reg) {
  auto addThrow = [](const char *Exc) {
    return [Exc](JirClass &J, MutationContext &Ctx) {
      int I = pickMethod(J, Ctx.R);
      if (I < 0)
        return false;
      J.Methods[I].Exceptions.push_back(Exc);
      return true;
    };
  };
  add(Reg, "throws.add-exception", "Exception",
      "Select a method and insert one exception thrown",
      addThrow("java/lang/Exception"));
  add(Reg, "throws.add-runtime-exception", "Exception",
      "Select a method and insert a runtime exception thrown",
      addThrow("java/lang/RuntimeException"));
  add(Reg, "throws.add-inaccessible", "Exception",
      "Select a method and insert an inaccessible synthetic class as an "
      "exception thrown (the M1437121261 shape)",
      addThrow("sun/java2d/pisces/PiscesRenderingEngine$2"));
  add(Reg, "throws.add-non-throwable", "Exception",
      "Select a method and insert a non-throwable class as an exception "
      "thrown",
      addThrow("java/lang/String"));
  add(Reg, "throws.add-missing", "Exception",
      "Select a method and insert a missing class as an exception "
      "thrown",
      addThrow("no/such/Exc"));
  add(Reg, "throws.add-list", "Exception",
      "Select a method and add a list of exceptions thrown",
      [](JirClass &J, MutationContext &Ctx) {
        int I = pickMethod(J, Ctx.R);
        if (I < 0)
          return false;
        J.Methods[I].Exceptions.push_back("java/lang/Exception");
        J.Methods[I].Exceptions.push_back(
            "java/lang/IllegalStateException");
        J.Methods[I].Exceptions.push_back(
            "java/lang/ClassNotFoundException");
        return true;
      });
  add(Reg, "throws.add-duplicate", "Exception",
      "Select a method and duplicate one of its exceptions thrown",
      [](JirClass &J, MutationContext &Ctx) {
        int I = pickMethod(J, Ctx.R);
        if (I < 0 || J.Methods[I].Exceptions.empty())
          return false;
        J.Methods[I].Exceptions.push_back(
            J.Methods[I].Exceptions[Ctx.R.choiceIndex(
                J.Methods[I].Exceptions.size())]);
        return true;
      });
  add(Reg, "throws.add-random", "Exception",
      "Select a method and insert an exception randomly selected from a "
      "class list",
      [](JirClass &J, MutationContext &Ctx) {
        int I = pickMethod(J, Ctx.R);
        if (I < 0)
          return false;
        J.Methods[I].Exceptions.push_back(randomKnownClass(Ctx));
        return true;
      });
  add(Reg, "throws.delete-one", "Exception",
      "Select a method and delete one exception thrown",
      [](JirClass &J, MutationContext &Ctx) {
        std::vector<int> Candidates;
        for (size_t I = 0; I != J.Methods.size(); ++I)
          if (!J.Methods[I].Exceptions.empty())
            Candidates.push_back(static_cast<int>(I));
        if (Candidates.empty())
          return false;
        JirMethod &M =
            J.Methods[Candidates[Ctx.R.choiceIndex(Candidates.size())]];
        M.Exceptions.erase(M.Exceptions.begin() +
                           Ctx.R.choiceIndex(M.Exceptions.size()));
        return true;
      });
  add(Reg, "throws.delete-all", "Exception",
      "Select a method and delete all exceptions thrown",
      [](JirClass &J, MutationContext &Ctx) {
        std::vector<int> Candidates;
        for (size_t I = 0; I != J.Methods.size(); ++I)
          if (!J.Methods[I].Exceptions.empty())
            Candidates.push_back(static_cast<int>(I));
        if (Candidates.empty())
          return false;
        J.Methods[Candidates[Ctx.R.choiceIndex(Candidates.size())]]
            .Exceptions.clear();
        return true;
      });
}

void addParameterMutators(std::vector<Mutator> &Reg) {
  auto editDescriptor = [](auto Edit) {
    return [Edit](JirClass &J, MutationContext &Ctx) {
      int I = pickMethod(J, Ctx.R);
      if (I < 0)
        return false;
      MethodDescriptor MD;
      if (!parseMethodDescriptor(J.Methods[I].Descriptor, MD))
        return false;
      if (!Edit(MD, Ctx))
        return false;
      J.Methods[I].Descriptor = MD.toDescriptor();
      return true;
    };
  };
  add(Reg, "param.prepend-object", "Parameter",
      "Select a method and insert a java.lang.Object parameter at the "
      "front",
      editDescriptor([](MethodDescriptor &MD, MutationContext &) {
        MD.Params.insert(MD.Params.begin(), refType("java/lang/Object"));
        return true;
      }));
  add(Reg, "param.prepend-int", "Parameter",
      "Select a method and insert an int parameter at the front",
      editDescriptor([](MethodDescriptor &MD, MutationContext &) {
        MD.Params.insert(MD.Params.begin(), intType());
        return true;
      }));
  add(Reg, "param.append-string", "Parameter",
      "Select a method and append a java.lang.String parameter",
      editDescriptor([](MethodDescriptor &MD, MutationContext &) {
        MD.Params.push_back(refType("java/lang/String"));
        return true;
      }));
  add(Reg, "param.delete-first", "Parameter",
      "Select a method and delete its first parameter",
      editDescriptor([](MethodDescriptor &MD, MutationContext &) {
        if (MD.Params.empty())
          return false;
        MD.Params.erase(MD.Params.begin());
        return true;
      }));
  add(Reg, "param.delete-all", "Parameter",
      "Select a method and delete all parameters",
      editDescriptor([](MethodDescriptor &MD, MutationContext &) {
        if (MD.Params.empty())
          return false;
        MD.Params.clear();
        return true;
      }));
  add(Reg, "param.swap-first-two", "Parameter",
      "Select a method and swap its first two parameters",
      editDescriptor([](MethodDescriptor &MD, MutationContext &) {
        if (MD.Params.size() < 2 || MD.Params[0] == MD.Params[1])
          return false;
        std::swap(MD.Params[0], MD.Params[1]);
        return true;
      }));
  add(Reg, "param.retype-to-string", "Parameter",
      "Select a method parameter and set its type to java.lang.String "
      "(the M1433982529 unsafe-cast shape)",
      [](JirClass &J, MutationContext &Ctx) {
        int I = pickMethod(J, Ctx.R);
        if (I < 0)
          return false;
        MethodDescriptor MD;
        if (!parseMethodDescriptor(J.Methods[I].Descriptor, MD) ||
            MD.Params.empty())
          return false;
        return retypeParameter(J.Methods[I],
                               Ctx.R.choiceIndex(MD.Params.size()),
                               refType("java/lang/String"));
      });
  add(Reg, "param.retype-to-map", "Parameter",
      "Select a method parameter and set its type to java.util.Map",
      [](JirClass &J, MutationContext &Ctx) {
        int I = pickMethod(J, Ctx.R);
        if (I < 0)
          return false;
        MethodDescriptor MD;
        if (!parseMethodDescriptor(J.Methods[I].Descriptor, MD) ||
            MD.Params.empty())
          return false;
        return retypeParameter(J.Methods[I],
                               Ctx.R.choiceIndex(MD.Params.size()),
                               refType("java/util/Map"));
      });
  add(Reg, "param.retype-to-int", "Parameter",
      "Select a method parameter and set its type to int",
      [](JirClass &J, MutationContext &Ctx) {
        int I = pickMethod(J, Ctx.R);
        if (I < 0)
          return false;
        MethodDescriptor MD;
        if (!parseMethodDescriptor(J.Methods[I].Descriptor, MD) ||
            MD.Params.empty())
          return false;
        return retypeParameter(J.Methods[I],
                               Ctx.R.choiceIndex(MD.Params.size()),
                               intType());
      });
  add(Reg, "param.main-prepend-object", "Parameter",
      "Insert a java.lang.Object parameter in front of main's "
      "parameters (the Table 2 example)",
      [](JirClass &J, MutationContext &) {
        JirMethod *Main = J.findMethod("main");
        if (!Main)
          return false;
        MethodDescriptor MD;
        if (!parseMethodDescriptor(Main->Descriptor, MD))
          return false;
        MD.Params.insert(MD.Params.begin(), refType("java/lang/Object"));
        Main->Descriptor = MD.toDescriptor();
        return true;
      });
}

void addLocalVariableMutators(std::vector<Mutator> &Reg) {
  auto onBody = [](auto Edit) {
    return [Edit](JirClass &J, MutationContext &Ctx) {
      int I = pickBodyMethod(J, Ctx.R);
      if (I < 0)
        return false;
      return Edit(J.Methods[I], Ctx);
    };
  };
  add(Reg, "local.increase-max-locals", "LocalVariable",
      "Select a method and insert local variable slots",
      onBody([](JirMethod &M, MutationContext &Ctx) {
        M.MaxLocals = static_cast<uint16_t>(
            M.MaxLocals + 1 + Ctx.R.nextBelow(3));
        return true;
      }));
  add(Reg, "local.decrease-max-locals", "LocalVariable",
      "Select a method and delete local variable slots",
      onBody([](JirMethod &M, MutationContext &) {
        if (M.MaxLocals == 0)
          return false;
        --M.MaxLocals;
        return true;
      }));
  add(Reg, "local.zero-max-locals", "LocalVariable",
      "Select a method and delete all local variable slots",
      onBody([](JirMethod &M, MutationContext &) {
        if (M.MaxLocals == 0)
          return false;
        M.MaxLocals = 0;
        return true;
      }));
  add(Reg, "local.increase-max-stack", "LocalVariable",
      "Select a method and enlarge its operand stack",
      onBody([](JirMethod &M, MutationContext &Ctx) {
        M.MaxStack =
            static_cast<uint16_t>(M.MaxStack + 1 + Ctx.R.nextBelow(3));
        return true;
      }));
  add(Reg, "local.decrease-max-stack", "LocalVariable",
      "Select a method and shrink its operand stack",
      onBody([](JirMethod &M, MutationContext &) {
        if (M.MaxStack == 0)
          return false;
        --M.MaxStack;
        return true;
      }));
  add(Reg, "local.zero-max-stack", "LocalVariable",
      "Select a method and delete its operand stack",
      onBody([](JirMethod &M, MutationContext &) {
        if (M.MaxStack == 0)
          return false;
        M.MaxStack = 0;
        return true;
      }));
  add(Reg, "local.retype-int-to-ref", "LocalVariable",
      "Select a local variable and change its type from int to a "
      "reference (the Table 2 example)",
      onBody([](JirMethod &M, MutationContext &Ctx) {
        int Slot = pickReferencedSlot(M, Ctx.R);
        if (Slot < 0)
          return false;
        bool Changed = false;
        for (size_t I : localRefs(M, Slot)) {
          JirStmt &S = M.Body[I];
          if (S.Op == OP_iload) {
            S.Op = OP_aload;
            Changed = true;
          } else if (S.Op == OP_istore) {
            S.Op = OP_astore;
            Changed = true;
          }
        }
        return Changed;
      }));
  add(Reg, "local.retype-ref-to-int", "LocalVariable",
      "Select a local variable and change its type from a reference to "
      "int",
      onBody([](JirMethod &M, MutationContext &Ctx) {
        int Slot = pickReferencedSlot(M, Ctx.R);
        if (Slot < 0)
          return false;
        bool Changed = false;
        for (size_t I : localRefs(M, Slot)) {
          JirStmt &S = M.Body[I];
          if (S.Op == OP_aload) {
            S.Op = OP_iload;
            Changed = true;
          } else if (S.Op == OP_astore) {
            S.Op = OP_istore;
            Changed = true;
          }
        }
        return Changed;
      }));
  add(Reg, "local.renumber-slot", "LocalVariable",
      "Select a local variable and renumber its slot",
      onBody([](JirMethod &M, MutationContext &Ctx) {
        int Slot = pickReferencedSlot(M, Ctx.R);
        if (Slot < 0)
          return false;
        for (size_t I : localRefs(M, Slot))
          M.Body[I].IntOperand = Slot + 1;
        return true;
      }));
  add(Reg, "local.insert-store", "LocalVariable",
      "Select a method and insert a local variable (a constant store "
      "into a fresh slot)",
      onBody([](JirMethod &M, MutationContext &Ctx) {
        if (M.Body.empty())
          return false;
        JirStmt Push;
        Push.Op = OP_ldc;
        Push.ConstKind = 'i';
        Push.IntOperand = static_cast<int32_t>(Ctx.R.nextBelow(100));
        JirStmt Store;
        Store.Op = OP_istore;
        Store.IntOperand = M.MaxLocals;
        M.MaxLocals = static_cast<uint16_t>(M.MaxLocals + 1);
        if (M.MaxStack < 1)
          M.MaxStack = 1;
        // Insert at the front; fix branch targets and handler ranges.
        M.Body.insert(M.Body.begin(), {Push, Store});
        for (JirStmt &S : M.Body)
          if (S.isBranch())
            S.TargetIndex += 2;
        for (JirExceptionEntry &E : M.ExceptionTable) {
          E.StartIndex += 2;
          E.EndIndex += 2;
          E.HandlerIndex += 2;
        }
        return true;
      }));
  add(Reg, "local.delete-stores", "LocalVariable",
      "Select a local variable and delete all stores to it",
      onBody([](JirMethod &M, MutationContext &Ctx) {
        int Slot = pickReferencedSlot(M, Ctx.R);
        if (Slot < 0)
          return false;
        bool Changed = false;
        for (size_t I : localRefs(M, Slot)) {
          JirStmt &S = M.Body[I];
          if (S.Op >= OP_istore && S.Op <= OP_astore) {
            // Keep indices stable: replace with pop (value discarded).
            S = JirStmt();
            S.Op = OP_pop;
            Changed = true;
          }
        }
        return Changed;
      }));
  add(Reg, "local.swap-slots", "LocalVariable",
      "Select two local variables and exchange their slots",
      onBody([](JirMethod &M, MutationContext &Ctx) {
        int A = pickReferencedSlot(M, Ctx.R);
        int B = pickReferencedSlot(M, Ctx.R);
        if (A < 0 || B < 0 || A == B)
          return false;
        for (JirStmt &S : M.Body) {
          uint8_t Op = S.Op;
          bool Local = (Op >= OP_iload && Op <= OP_aload) ||
                       (Op >= OP_istore && Op <= OP_astore) ||
                       Op == OP_iinc;
          if (!Local)
            continue;
          if (S.IntOperand == A)
            S.IntOperand = B;
          else if (S.IntOperand == B)
            S.IntOperand = A;
        }
        return true;
      }));
}

void addStatementMutators(std::vector<Mutator> &Reg) {
  auto onBody = [](auto Edit) {
    return [Edit](JirClass &J, MutationContext &Ctx) {
      int I = pickBodyMethod(J, Ctx.R);
      if (I < 0 || J.Methods[I].Body.empty())
        return false;
      return Edit(J.Methods[I], Ctx);
    };
  };
  /// Fixes branch targets / handler ranges after inserting \p Count
  /// statements at \p At.
  auto shiftAfterInsert = [](JirMethod &M, size_t At, int Count) {
    for (JirStmt &S : M.Body)
      if (S.isBranch() && S.TargetIndex >= static_cast<int32_t>(At))
        S.TargetIndex += Count;
    for (JirExceptionEntry &E : M.ExceptionTable) {
      if (E.StartIndex >= At)
        E.StartIndex += Count;
      if (E.EndIndex >= At)
        E.EndIndex += Count;
      if (E.HandlerIndex >= At)
        E.HandlerIndex += Count;
    }
  };

  add(Reg, "stmt.insert", "JimpleStmt",
      "Insert one or more program statements",
      onBody([shiftAfterInsert](JirMethod &M, MutationContext &Ctx) {
        size_t At = Ctx.R.choiceIndex(M.Body.size());
        M.Body.insert(M.Body.begin() + At, makeRandomSimpleStmt(Ctx.R));
        shiftAfterInsert(M, At, 1);
        return true;
      }));
  add(Reg, "stmt.delete", "JimpleStmt",
      "Delete one or more program statements",
      onBody([](JirMethod &M, MutationContext &Ctx) {
        size_t At = Ctx.R.choiceIndex(M.Body.size());
        M.Body.erase(M.Body.begin() + At);
        // Deliberately does NOT rewrite branch targets: deletions can
        // leave dangling targets, which fail at assembly or change the
        // control flow -- the stochastic effect the paper describes.
        for (JirStmt &S : M.Body)
          if (S.isBranch() &&
              S.TargetIndex >= static_cast<int32_t>(M.Body.size()))
            return true; // keep; assembly will reject
        return true;
      }));
  add(Reg, "stmt.duplicate", "JimpleStmt",
      "Duplicate one program statement",
      onBody([shiftAfterInsert](JirMethod &M, MutationContext &Ctx) {
        size_t At = Ctx.R.choiceIndex(M.Body.size());
        JirStmt Copy = M.Body[At];
        M.Body.insert(M.Body.begin() + At, Copy);
        shiftAfterInsert(M, At, 1);
        return true;
      }));
  add(Reg, "stmt.swap-adjacent", "JimpleStmt",
      "Exchange two adjacent program statements (the Table 2 reordering "
      "example)",
      onBody([](JirMethod &M, MutationContext &Ctx) {
        if (M.Body.size() < 2)
          return false;
        size_t At = Ctx.R.choiceIndex(M.Body.size() - 1);
        std::swap(M.Body[At], M.Body[At + 1]);
        return true;
      }));
  add(Reg, "stmt.replace-with-nop", "JimpleStmt",
      "Replace one program statement with nop",
      onBody([](JirMethod &M, MutationContext &Ctx) {
        size_t At = Ctx.R.choiceIndex(M.Body.size());
        if (M.Body[At].Op == OP_nop)
          return false;
        JirStmt Nop = makeNop();
        // Preserve branch-target structure by keeping the slot.
        M.Body[At] = Nop;
        return true;
      }));
  add(Reg, "stmt.insert-early-return", "JimpleStmt",
      "Insert a return in the middle of a method",
      onBody([shiftAfterInsert](JirMethod &M, MutationContext &Ctx) {
        size_t At = Ctx.R.choiceIndex(M.Body.size());
        JirStmt Ret;
        Ret.Op = OP_return;
        M.Body.insert(M.Body.begin() + At, Ret);
        shiftAfterInsert(M, At, 1);
        return true;
      }));
}

std::vector<Mutator> buildRegistry() {
  std::vector<Mutator> Reg;
  Reg.reserve(NumMutators);
  addClassMutators(Reg);         // 28
  addInterfaceListMutators(Reg); // 12
  addFieldMutators(Reg);         // 20
  addMethodMutators(Reg);        // 31
  addExceptionMutators(Reg);     // 10
  addParameterMutators(Reg);     // 10
  addLocalVariableMutators(Reg); // 12
  addStatementMutators(Reg);     // 6
  return Reg;
}

} // namespace

const char *classfuzz::mutationResultName(MutationResult Result) {
  switch (Result) {
  case MutationResult::Inapplicable:
    return "inapplicable";
  case MutationResult::NoChange:
    return "nochange";
  case MutationResult::Applied:
    return "applied";
  }
  return "?";
}

MutationResult classfuzz::classifyMutation(
    const std::function<bool(JirClass &, MutationContext &)> &Body,
    JirClass &J, MutationContext &Ctx) {
  JirClass Before = J;
  if (!Body(J, Ctx))
    return MutationResult::Inapplicable;
  return J == Before ? MutationResult::NoChange : MutationResult::Applied;
}

const std::vector<Mutator> &classfuzz::mutatorRegistry() {
  static const std::vector<Mutator> Registry = buildRegistry();
  assert(Registry.size() == NumMutators &&
         "the registry must contain exactly 129 mutators");
  return Registry;
}
