//===- mutation/Engine.h - Seed -> mutant classfile pipeline --------------===//
//
// Part of classfuzz-cpp (PLDI 2016 classfuzz reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs one mutation: parse seed bytes, lower to JIR, apply a selected
/// mutator, supplement a main method when absent (§2.2.1: "we supplement
/// each classfile mutant with a simple main method"), and assemble back
/// to classfile bytes. Any stage can fail, which is why fuzzing
/// iterations do not always produce a classfile (Finding 1).
///
//===----------------------------------------------------------------------===//

#ifndef CLASSFUZZ_MUTATION_ENGINE_H
#define CLASSFUZZ_MUTATION_ENGINE_H

#include "mutation/Mutator.h"

namespace classfuzz {

/// The outcome of one mutation attempt.
struct MutationOutcome {
  bool Produced = false;
  /// Three-way classification of the Mutator::Apply stage. NoChange
  /// mutants are still Produced (renamed + supplemented, so they are
  /// real classfiles); the classification feeds the succ-rate
  /// accounting and telemetry. Inapplicable also covers seeds that
  /// fail to lower.
  MutationResult Result = MutationResult::Inapplicable;
  std::string ClassName; ///< The mutant's (possibly renamed) class name.
  Bytes Data;            ///< Classfile bytes when Produced.
  std::string Error;     ///< Failure reason when !Produced.
};

/// The message the supplemented main prints.
inline constexpr const char *SupplementedMainMessage = "Completed!";

/// Appends the standard supplemented main method when \p J lacks one.
void ensureMainMethod(JirClass &J);

/// Applies \p MutatorIndex (into mutatorRegistry()) to the seed.
MutationOutcome mutateClass(const Bytes &SeedData, size_t MutatorIndex,
                            MutationContext &Ctx);

} // namespace classfuzz

#endif // CLASSFUZZ_MUTATION_ENGINE_H
