//===- mutation/Mutator.h - The 129 mutation operators --------------------===//
//
// Part of classfuzz-cpp (PLDI 2016 classfuzz reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The mutator registry: 129 mutation operators over JIR (123 syntactic
/// + 6 statement-level), mirroring §2.2.1 and Table 2 of the paper.
/// Mutators rewrite class attributes, supertypes, interfaces, fields,
/// methods, throws clauses, parameter lists, local-variable slots, and
/// Jimple-level statements; many deliberately produce illegal constructs
/// (the raw material for JVM discrepancies).
///
//===----------------------------------------------------------------------===//

#ifndef CLASSFUZZ_MUTATION_MUTATOR_H
#define CLASSFUZZ_MUTATION_MUTATOR_H

#include "analysis/TypedHoles.h"
#include "jir/Jir.h"
#include "support/Rng.h"

#include <functional>
#include <string>
#include <vector>

namespace classfuzz {

/// The number of mutators, fixed by the paper.
inline constexpr size_t NumMutators = 129;

/// The number of analyzer-driven typed mutators appended by
/// extendedMutatorRegistry() beyond the paper's 129.
inline constexpr size_t NumTypedMutators = 6;

/// Shared inputs of a mutation: the random stream, the class names
/// visible on the class path (used by "...from a class list" mutators),
/// and -- when the campaign runs with typed mutators -- the typed-hole
/// list of the class being mutated (null disables the typed family:
/// they report Inapplicable without consuming a draw).
struct MutationContext {
  Rng &R;
  const std::vector<std::string> &KnownClasses;
  const TypedHoleList *Holes = nullptr;
};

/// The outcome of one Mutator::Apply call. The three-way split keeps
/// the §3.1.3 succ-rate accounting honest: an applicable draw that
/// happened to rewrite the class into itself (NoChange) is a different
/// event from a draw the class shape ruled out entirely (Inapplicable).
enum class MutationResult : uint8_t {
  Inapplicable, ///< The class offers no site for this mutation.
  NoChange,     ///< Applied, but the class is structurally unchanged.
  Applied,      ///< Applied and the class changed.
};

const char *mutationResultName(MutationResult Result);

/// Classifies a bool-style mutation body against \p J: false maps to
/// Inapplicable; true maps to Applied or NoChange depending on whether
/// the class structurally changed. This is the adapter the registry
/// wraps every Table 2 operator with; exposed for tests.
MutationResult
classifyMutation(const std::function<bool(JirClass &, MutationContext &)> &Body,
                 JirClass &J, MutationContext &Ctx);

/// One mutation operator.
struct Mutator {
  /// Identifier, e.g. "method.rename".
  std::string Id;
  /// Human-readable description in the paper's style, e.g.
  /// "Select a method and rename it".
  std::string Description;
  /// Mutation target group of Table 2: "Class", "Interface", "Field",
  /// "Method", "Exception", "Parameter", "LocalVariable", "JimpleStmt".
  std::string Category;
  /// Applies the mutation in place and reports the three-way result
  /// (e.g. Inapplicable when deleting a field from a fieldless class).
  std::function<MutationResult(JirClass &, MutationContext &)> Apply;
};

/// The full registry; exactly NumMutators entries, stable order.
const std::vector<Mutator> &mutatorRegistry();

/// The paper's 129 mutators plus the NumTypedMutators hole-directed
/// typed mutators ("typed.*"), stable order; the first NumMutators
/// entries are identical to mutatorRegistry(), so mutator indices --
/// and therefore provenance records -- mean the same thing in both.
const std::vector<Mutator> &extendedMutatorRegistry();

} // namespace classfuzz

#endif // CLASSFUZZ_MUTATION_MUTATOR_H
