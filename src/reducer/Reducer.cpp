//===- reducer/Reducer.cpp - Chunked, memoized, parallel HDD reduction ----===//
//
// Part of classfuzz-cpp (PLDI 2016 classfuzz reproduction).
//
//===----------------------------------------------------------------------===//
//
// Ddmin-style chunked hierarchical delta debugging (DESIGN.md §10).
//
// A Schedule enumerates candidate deletions in a canonical sequential
// order; a probe pipeline speculates ahead on that order under presumed
// rejection (the same scheme as the campaign pipeline, DESIGN.md §7) and
// commits verdicts strictly in order. Only committed probes charge the
// oracle budget, enter the memo cache, or touch the flight recorder, so
// every observable output -- reduced bytes, ReductionStats, query and
// cache accounting -- is identical for any ReducerOptions::Jobs.
//
//===----------------------------------------------------------------------===//

#include "reducer/Reducer.h"

#include "support/Hashing.h"
#include "support/ThreadPool.h"
#include "telemetry/FlightRecorder.h"
#include "telemetry/Telemetry.h"

#include <algorithm>
#include <atomic>
#include <deque>
#include <future>
#include <memory>
#include <optional>
#include <unordered_map>

using namespace classfuzz;

namespace {

/// Hierarchy levels, probed coarse to fine as in HDD.
enum Level : int {
  LvMethods = 0,
  LvFields,
  LvInterfaces,
  LvThrows,     ///< Throws-clause entries, flattened across methods.
  LvStatements, ///< Body statements, flattened across methods.
  NumLevels,
};

size_t levelCount(const JirClass &C, int Lv) {
  switch (Lv) {
  case LvMethods:
    return C.Methods.size();
  case LvFields:
    return C.Fields.size();
  case LvInterfaces:
    return C.Interfaces.size();
  case LvThrows: {
    size_t N = 0;
    for (const JirMethod &M : C.Methods)
      N += M.Exceptions.size();
    return N;
  }
  case LvStatements: {
    size_t N = 0;
    for (const JirMethod &M : C.Methods)
      N += M.Body.size();
    return N;
  }
  }
  return 0;
}

/// Deletes body statements [LS, LE) of one method, fixing branch targets
/// and the exception table on the survivors. Returns false when the
/// deletion cannot yield an assemblable method (emptied body, or a
/// branch into a deleted tail with nothing to retarget to) -- the
/// structural pre-check that keeps doomed candidates away from the
/// oracle and the assembler.
bool deleteLocalStmtRange(JirMethod &M, size_t LS, size_t LE) {
  size_t Cut = LE - LS;
  if (Cut >= M.Body.size())
    return false; // Emptying a body is never useful; the methods level
                  // deletes whole methods instead.
  size_t NewSize = M.Body.size() - Cut;

  for (size_t I = 0; I < M.Body.size(); ++I) {
    if (I >= LS && I < LE)
      continue; // Deleted below; its target no longer matters.
    JirStmt &S = M.Body[I];
    if (!S.isBranch() || S.TargetIndex < 0)
      continue;
    auto T = static_cast<size_t>(S.TargetIndex);
    if (T >= LE) {
      S.TargetIndex = static_cast<int32_t>(T - Cut);
    } else if (T >= LS) {
      // Branch into the deleted range: retarget to the statement that
      // slides into slot LS, or skip the deletion when the range was
      // the tail and no such statement exists. (The decrement-only
      // fixup this replaces left such targets one past the end,
      // producing unassemblable candidates.)
      if (LS >= NewSize)
        return false;
      S.TargetIndex = static_cast<int32_t>(LS);
    }
  }

  // Exception table: remap indices around the cut, dropping entries
  // whose protected range collapses to empty or whose handler was
  // deleted with nothing sliding into its slot.
  auto Remap = [&](size_t I) { return I <= LS ? I : (I >= LE ? I - Cut : LS); };
  for (auto It = M.ExceptionTable.begin(); It != M.ExceptionTable.end();) {
    size_t NS = Remap(It->StartIndex);
    size_t NE = Remap(It->EndIndex);
    size_t H = It->HandlerIndex;
    size_t NH = H >= LE ? H - Cut : (H >= LS ? LS : H);
    if (NS >= NE || NH >= NewSize) {
      It = M.ExceptionTable.erase(It);
      continue;
    }
    It->StartIndex = static_cast<uint32_t>(NS);
    It->EndIndex = static_cast<uint32_t>(NE);
    It->HandlerIndex = static_cast<uint32_t>(NH);
    ++It;
  }

  M.Body.erase(M.Body.begin() + LS, M.Body.begin() + LE);
  return true;
}

/// Deletes level elements [Start, Start+Len) from \p C. Throws and
/// statement indices are flattened across methods in declaration order
/// and may span method boundaries; flat coordinates always refer to the
/// pre-deletion layout (method sizes are captured before each cut).
/// Returns false when the candidate is structurally doomed.
bool applyDeletion(JirClass &C, int Lv, size_t Start, size_t Len) {
  size_t End = Start + Len;
  switch (Lv) {
  case LvMethods:
    C.Methods.erase(C.Methods.begin() + Start, C.Methods.begin() + End);
    return true;
  case LvFields:
    C.Fields.erase(C.Fields.begin() + Start, C.Fields.begin() + End);
    return true;
  case LvInterfaces:
    C.Interfaces.erase(C.Interfaces.begin() + Start,
                       C.Interfaces.begin() + End);
    return true;
  case LvThrows: {
    size_t Base = 0;
    for (JirMethod &M : C.Methods) {
      size_t Sz = M.Exceptions.size();
      size_t Lo = std::max(Start, Base);
      size_t Hi = std::min(End, Base + Sz);
      if (Lo < Hi)
        M.Exceptions.erase(M.Exceptions.begin() + (Lo - Base),
                           M.Exceptions.begin() + (Hi - Base));
      Base += Sz;
    }
    return true;
  }
  case LvStatements: {
    size_t Base = 0;
    for (JirMethod &M : C.Methods) {
      size_t Sz = M.Body.size();
      size_t Lo = std::max(Start, Base);
      size_t Hi = std::min(End, Base + Sz);
      if (Lo < Hi && !deleteLocalStmtRange(M, Lo - Base, Hi - Base))
        return false;
      Base += Sz;
    }
    return true;
  }
  }
  return false;
}

/// One candidate deletion the schedule asks the pipeline to probe.
struct ProbeDesc {
  int Level = 0;
  size_t Start = 0;
  size_t Len = 0;
  size_t ChunkLen = 0;   ///< Rung the window came from (for rewind).
  bool PairScan = false; ///< Unaligned stride-1 pair window (statements).
};

/// Enumerates candidate deletions in the canonical sequential order:
/// sweeps over levels coarse to fine; per level, ddmin rungs of
/// end-aligned windows of ChunkLen = ~n/2, n/4, ..., 1 scanned back to
/// front (so surviving indices stay stable); the statements level then
/// runs an unaligned stride-1 pair scan, which subsumes the old
/// adjacent-pair pass (re-probes of aligned windows resolve from the
/// memo cache for free). Sweeps repeat while any probe was kept; next()
/// returns nullopt at the fixed point.
///
/// The pipeline calls next() speculatively under presumed rejection; a
/// kept probe discards all later speculation and rewinds the schedule
/// with noteKept(), so next() is only ever observed against the correct
/// sequential class state.
class Schedule {
public:
  explicit Schedule(bool Chunked) : Chunked(Chunked) {}

  std::optional<ProbeDesc> next(const JirClass &J) {
    for (;;) {
      if (!Primed) {
        Count = levelCount(J, Level);
        ChunkLen = Chunked ? initialChunk(Count) : 1;
        Pos = Count;
        PairScan = false;
        Primed = true;
      }
      if (!PairScan) {
        if (Pos > 0) {
          size_t Start = Pos > ChunkLen ? Pos - ChunkLen : 0;
          ProbeDesc D{Level, Start, Pos - Start, ChunkLen, false};
          Pos = Start;
          return D;
        }
        if (ChunkLen > 1) { // Next rung: half the window, rescan.
          ChunkLen /= 2;
          Pos = Count;
          continue;
        }
        if (Level == LvStatements && Count >= 2) {
          PairScan = true;
          Pos = Count;
          continue;
        }
      } else if (Pos >= 2) {
        ProbeDesc D{Level, Pos - 2, 2, 1, true};
        --Pos;
        return D;
      }
      // Level exhausted; advance, and restart the sweep at the fixed
      // point check when something was kept this sweep.
      Primed = false;
      if (++Level < NumLevels)
        continue;
      if (!SweepChanged)
        return std::nullopt;
      SweepChanged = false;
      Level = 0;
    }
  }

  /// Rewinds to just after the kept probe \p D against the
  /// post-deletion class \p J. Called only at in-order commit time,
  /// after the pipeline discarded all later speculation.
  void noteKept(const ProbeDesc &D, const JirClass &J) {
    SweepChanged = true;
    Level = D.Level;
    ChunkLen = D.ChunkLen;
    PairScan = D.PairScan;
    Primed = true;
    Count = levelCount(J, Level);
    Pos = std::min(D.PairScan ? D.Start + 1 : D.Start, Count);
  }

private:
  static size_t initialChunk(size_t N) {
    size_t C = 1;
    while (C * 4 <= N)
      C *= 2; // Largest power of two <= N/2.
    return C;
  }

  bool Chunked;
  int Level = 0;
  bool Primed = false;
  bool PairScan = false;
  bool SweepChanged = false;
  size_t Count = 0;
  size_t ChunkLen = 0;
  size_t Pos = 0;
};

/// How a speculated probe resolved before reaching the oracle.
enum class ProbeKind { SkippedStructural, AssemblyFailed, NeedsOracle };

/// One in-flight speculated probe, committed in schedule order.
struct Pending {
  ProbeDesc D;
  ProbeKind Kind = ProbeKind::NeedsOracle;
  JirClass Candidate;
  std::shared_ptr<Bytes> Data;
  uint64_t Hash = 0;
  std::future<bool> Verdict;
  bool HasFuture = false;
  /// Set when the probe is discarded (rollback) or answered from the
  /// cache at commit; a worker that has not started yet then skips the
  /// oracle call entirely.
  std::shared_ptr<std::atomic<bool>> Cancelled;
};

} // namespace

Result<Bytes> classfuzz::reduceClassfile(const Bytes &Input,
                                         const ReductionOracle &Oracle,
                                         const ReducerOptions &Opts,
                                         ReductionStats *StatsOut) {
  telemetry::PhaseTimer WallT(
      telemetry::metrics().histogram("reducer.wall_ns"), "reduce");
  telemetry::Histogram &ProbeNs =
      telemetry::metrics().histogram("reducer.probe_ns");
  telemetry::Histogram &ChunkLenHist =
      telemetry::metrics().histogram("reducer.chunk_len");
  auto &FR = telemetry::flightRecorder();

  ReductionStats S;
  size_t SpecCancelled = 0;

  // Accounted once at exit (all paths, success or error): stats are
  // tallied locally either way, so the enabled/disabled difference is a
  // branch and a few increments.
  struct Accounting {
    const ReductionStats &S;
    const size_t &SpecCancelled;
    size_t Jobs;
    ~Accounting() {
      if (!telemetry::enabled())
        return;
      auto &M = telemetry::metrics();
      M.counter("reducer.runs").inc();
      M.counter("reducer.oracle_queries").inc(S.OracleQueries);
      M.counter("reducer.cache_hits").inc(S.CacheHits);
      M.counter("reducer.cache_misses").inc(S.CacheMisses);
      M.counter("reducer.deletions_kept").inc(S.DeletionsKept);
      M.counter("reducer.chunk_deletions_kept").inc(S.ChunkDeletionsKept);
      M.counter("reducer.skipped_structural").inc(S.SkippedStructural);
      M.counter("reducer.assembly_failures").inc(S.AssemblyFailures);
      M.counter("reducer.speculation.cancelled").inc(SpecCancelled);
      if (S.BudgetExhausted)
        M.counter("reducer.budget_exhausted").inc();
      if (telemetry::eventSink())
        telemetry::EventBuilder("reducer.end")
            .field("oracle_queries", static_cast<uint64_t>(S.OracleQueries))
            .field("cache_hits", static_cast<uint64_t>(S.CacheHits))
            .field("deletions_kept", static_cast<uint64_t>(S.DeletionsKept))
            .field("chunk_deletions",
                   static_cast<uint64_t>(S.ChunkDeletionsKept))
            .field("methods_removed",
                   static_cast<uint64_t>(S.MethodsRemoved))
            .field("statements_removed",
                   static_cast<uint64_t>(S.StatementsRemoved))
            .field("budget_exhausted",
                   static_cast<uint64_t>(S.BudgetExhausted ? 1 : 0))
            .field("jobs", static_cast<uint64_t>(Jobs))
            .emit();
    }
  } Account{S, SpecCancelled, Opts.Jobs};

  auto Done = [&](Result<Bytes> R) {
    if (StatsOut)
      *StatsOut = S;
    return R;
  };

  auto Lowered = lowerClassBytes(Input);
  if (!Lowered)
    return Done(
        makeError("cannot lower input for reduction: " + Lowered.error()));
  JirClass J = Lowered.take();

  auto InitialBytes = assembleToBytes(J);
  if (!InitialBytes)
    return Done(makeError("cannot reassemble input for reduction: " +
                          InitialBytes.error()));

  // Memo cache: FNV-1a hash of assembled candidate bytes -> verdict.
  // Only committed probes enter it, so its contents are Jobs-invariant.
  std::unordered_map<uint64_t, bool> Cache;

  // Probe the input itself first. An exhausted budget here (including
  // MaxOracleQueries == 0) is a budget failure, not oracle rejection.
  if (Opts.MaxOracleQueries == 0) {
    S.BudgetExhausted = true;
    return Done(makeError(
        "oracle query budget exhausted before the input was tested"));
  }
  auto Best = std::make_shared<Bytes>(InitialBytes.take());
  bool InputTriggers;
  {
    telemetry::PhaseTimer ProbeT(ProbeNs, "reduce-probe");
    InputTriggers = Oracle(J.Name, *Best);
  }
  ++S.OracleQueries;
  ++S.CacheMisses;
  Cache[hashBytes(*Best)] = InputTriggers;
  FR.record(telemetry::FlightKind::ReducerQuery, 0, Best->size(),
            InputTriggers ? 1 : 0);
  if (!InputTriggers)
    return Done(makeError("input does not satisfy the reduction oracle"));

  std::unique_ptr<ThreadPool> Pool;
  if (Opts.Jobs > 1)
    Pool = std::make_unique<ThreadPool>(Opts.Jobs);
  const size_t Window = Pool ? Opts.Jobs * 2 : 1;

  Schedule Sched(Opts.ChunkedHdd);
  std::deque<Pending> InFlight;
  bool ScheduleDone = false;
  bool Stop = false;

  // Builds the next probe against the current J (presumed rejection:
  // J does not change while speculation is outstanding). Oracle work is
  // submitted to the pool only when the cache cannot already answer.
  auto speculate = [&]() -> bool {
    auto D = Sched.next(J);
    if (!D)
      return false;
    Pending P;
    P.D = *D;
    JirClass Candidate = J;
    if (!applyDeletion(Candidate, D->Level, D->Start, D->Len)) {
      P.Kind = ProbeKind::SkippedStructural;
      InFlight.push_back(std::move(P));
      return true;
    }
    auto Data = assembleToBytes(Candidate);
    if (!Data) {
      P.Kind = ProbeKind::AssemblyFailed;
      InFlight.push_back(std::move(P));
      return true;
    }
    P.Kind = ProbeKind::NeedsOracle;
    P.Candidate = std::move(Candidate);
    P.Data = std::make_shared<Bytes>(Data.take());
    P.Hash = hashBytes(*P.Data);
    if (Pool && !Cache.count(P.Hash)) {
      P.Cancelled = std::make_shared<std::atomic<bool>>(false);
      auto DataRef = P.Data;
      auto CancelRef = P.Cancelled;
      std::string Name = P.Candidate.Name;
      P.Verdict = Pool->submit(
          [&Oracle, &ProbeNs, DataRef, CancelRef, Name]() {
            if (CancelRef->load(std::memory_order_relaxed))
              return false;
            telemetry::PhaseTimer ProbeT(ProbeNs, "reduce-probe");
            return Oracle(Name, *DataRef);
          });
      P.HasFuture = true;
    }
    InFlight.push_back(std::move(P));
    return true;
  };

  auto cancelInFlight = [&] {
    for (Pending &Q : InFlight)
      if (Q.Cancelled)
        Q.Cancelled->store(true, std::memory_order_relaxed);
    SpecCancelled += InFlight.size();
    InFlight.clear();
  };

  // Commit loop: fill the speculation window, then resolve the oldest
  // probe. Budget, cache, stats, and flight records are touched only
  // here, in schedule order.
  while (!Stop && (!InFlight.empty() || !ScheduleDone)) {
    while (!ScheduleDone && InFlight.size() < Window)
      if (!speculate())
        ScheduleDone = true;
    if (InFlight.empty())
      break; // Fixed point: schedule done, nothing outstanding.

    Pending P = std::move(InFlight.front());
    InFlight.pop_front();

    if (P.Kind == ProbeKind::SkippedStructural) {
      ++S.SkippedStructural;
      continue;
    }
    if (P.Kind == ProbeKind::AssemblyFailed) {
      ++S.AssemblyFailures;
      continue;
    }

    bool Kept;
    auto CIt = Cache.find(P.Hash);
    if (CIt != Cache.end()) {
      ++S.CacheHits;
      Kept = CIt->second;
      if (P.Cancelled) // Worker may not have started; spare the oracle.
        P.Cancelled->store(true, std::memory_order_relaxed);
    } else {
      if (S.OracleQueries >= Opts.MaxOracleQueries) {
        S.BudgetExhausted = true;
        Stop = true;
        cancelInFlight();
        break;
      }
      if (P.HasFuture) {
        Kept = P.Verdict.get();
      } else {
        telemetry::PhaseTimer ProbeT(ProbeNs, "reduce-probe");
        Kept = Oracle(P.Candidate.Name, *P.Data);
      }
      ++S.OracleQueries;
      ++S.CacheMisses;
      Cache[P.Hash] = Kept;
      FR.record(telemetry::FlightKind::ReducerQuery, S.OracleQueries - 1,
                P.Data->size(), Kept ? 1 : 0);
    }
    if (!Kept)
      continue;

    // Deletion kept: adopt the candidate, credit the level, rewind the
    // schedule, and discard all later speculation (it was built against
    // the superseded class).
    J = std::move(P.Candidate);
    Best = P.Data;
    ++S.DeletionsKept;
    switch (P.D.Level) {
    case LvMethods:
      S.MethodsRemoved += P.D.Len;
      break;
    case LvFields:
      S.FieldsRemoved += P.D.Len;
      break;
    case LvInterfaces:
      S.InterfacesRemoved += P.D.Len;
      break;
    case LvThrows:
      S.ThrowsRemoved += P.D.Len;
      break;
    case LvStatements:
      S.StatementsRemoved += P.D.Len;
      break;
    }
    if (P.D.Len > 1) {
      ++S.ChunkDeletionsKept;
      S.LargestChunkKept = std::max(S.LargestChunkKept, P.D.Len);
      if (telemetry::enabled())
        ChunkLenHist.record(P.D.Len);
    }
    FR.record(telemetry::FlightKind::ReducerKept,
              static_cast<uint64_t>(P.D.Level), P.D.Start, P.D.Len);
    Sched.noteKept(P.D, J);
    ScheduleDone = false;
    cancelInFlight();
  }

  // Return the exact bytes the oracle last accepted (no re-assembly).
  return Done(Bytes(*Best));
}

Result<Bytes> classfuzz::reduceClassfile(const Bytes &Input,
                                         const ReductionOracle &Oracle,
                                         ReductionStats *Stats,
                                         size_t MaxOracleQueries) {
  ReducerOptions Opts;
  Opts.MaxOracleQueries = MaxOracleQueries;
  return reduceClassfile(Input, Oracle, Opts, Stats);
}
