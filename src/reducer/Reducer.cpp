//===- reducer/Reducer.cpp -------------------------------------------------===//

#include "reducer/Reducer.h"

#include "telemetry/FlightRecorder.h"
#include "telemetry/Telemetry.h"

using namespace classfuzz;

namespace {

/// Shared state of one reduction run.
struct Reduction {
  const ReductionOracle &Oracle;
  ReductionStats Stats;
  size_t MaxQueries;

  bool budgetLeft() const { return Stats.OracleQueries < MaxQueries; }

  /// Assembles \p Candidate and asks the oracle; true when the
  /// discrepancy persists.
  bool stillTriggers(const JirClass &Candidate) {
    if (!budgetLeft())
      return false;
    auto Data = assembleToBytes(Candidate);
    if (!Data)
      return false; // Unassemblable candidates are discarded (Step 2).
    ++Stats.OracleQueries;
    bool Kept = Oracle(Candidate.Name, *Data);
    telemetry::flightRecorder().record(telemetry::FlightKind::ReducerQuery,
                                       Stats.OracleQueries - 1,
                                       Data->size(), Kept ? 1 : 0);
    return Kept;
  }

  /// Tries deleting elements of a vector member one by one (back to
  /// front so indices stay stable). \p Delete performs the deletion on a
  /// copy; \p Count counts elements.
  template <typename CountFn, typename DeleteFn>
  bool pass(JirClass &J, CountFn Count, DeleteFn Delete,
            size_t &RemovedCounter) {
    bool Changed = false;
    for (size_t I = Count(J); I-- > 0;) {
      if (!budgetLeft())
        return Changed;
      JirClass Candidate = J;
      if (!Delete(Candidate, I))
        continue;
      if (stillTriggers(Candidate)) {
        J = std::move(Candidate);
        ++Stats.DeletionsKept;
        ++RemovedCounter;
        Changed = true;
      }
    }
    return Changed;
  }
};

} // namespace

Result<Bytes> classfuzz::reduceClassfile(const Bytes &Input,
                                         const ReductionOracle &Oracle,
                                         ReductionStats *Stats,
                                         size_t MaxOracleQueries) {
  telemetry::PhaseTimer WallT(
      telemetry::metrics().histogram("reducer.wall_ns"), "reduce");

  auto Lowered = lowerClassBytes(Input);
  if (!Lowered)
    return makeError("cannot lower input for reduction: " +
                     Lowered.error());
  JirClass J = Lowered.take();

  Reduction Run{Oracle, {}, MaxOracleQueries};

  // Accounted once at exit (all paths): oracle invocations and kept
  // reduction steps. Stats are tallied locally either way, so the
  // enabled/disabled difference is a branch and a few increments.
  struct Accounting {
    const ReductionStats &S;
    ~Accounting() {
      if (!telemetry::enabled())
        return;
      auto &M = telemetry::metrics();
      M.counter("reducer.runs").inc();
      M.counter("reducer.oracle_queries").inc(S.OracleQueries);
      M.counter("reducer.deletions_kept").inc(S.DeletionsKept);
      if (telemetry::eventSink())
        telemetry::EventBuilder("reducer.end")
            .field("oracle_queries", static_cast<uint64_t>(S.OracleQueries))
            .field("deletions_kept", static_cast<uint64_t>(S.DeletionsKept))
            .field("methods_removed",
                   static_cast<uint64_t>(S.MethodsRemoved))
            .field("statements_removed",
                   static_cast<uint64_t>(S.StatementsRemoved))
            .emit();
    }
  } Account{Run.Stats};

  if (!Run.stillTriggers(J))
    return makeError("input does not satisfy the reduction oracle");

  // Fixed-point loop over hierarchical passes: coarse (methods, fields,
  // interfaces, throws) before fine (statements), as in HDD.
  bool Changed = true;
  while (Changed && Run.budgetLeft()) {
    Changed = false;

    Changed |= Run.pass(
        J, [](const JirClass &C) { return C.Methods.size(); },
        [](JirClass &C, size_t I) {
          C.Methods.erase(C.Methods.begin() + I);
          return true;
        },
        Run.Stats.MethodsRemoved);

    Changed |= Run.pass(
        J, [](const JirClass &C) { return C.Fields.size(); },
        [](JirClass &C, size_t I) {
          C.Fields.erase(C.Fields.begin() + I);
          return true;
        },
        Run.Stats.FieldsRemoved);

    Changed |= Run.pass(
        J, [](const JirClass &C) { return C.Interfaces.size(); },
        [](JirClass &C, size_t I) {
          C.Interfaces.erase(C.Interfaces.begin() + I);
          return true;
        },
        Run.Stats.InterfacesRemoved);

    // Throws-clause entries, flattened across methods.
    auto countThrows = [](const JirClass &C) {
      size_t N = 0;
      for (const JirMethod &M : C.Methods)
        N += M.Exceptions.size();
      return N;
    };
    auto deleteThrow = [](JirClass &C, size_t Flat) {
      for (JirMethod &M : C.Methods) {
        if (Flat < M.Exceptions.size()) {
          M.Exceptions.erase(M.Exceptions.begin() + Flat);
          return true;
        }
        Flat -= M.Exceptions.size();
      }
      return false;
    };
    Changed |= Run.pass(J, countThrows, deleteThrow,
                        Run.Stats.ThrowsRemoved);

    // Statements, flattened across method bodies. Deleting a statement
    // shifts branch targets that point past it (so structurally valid
    // candidates stay valid).
    auto countStmts = [](const JirClass &C) {
      size_t N = 0;
      for (const JirMethod &M : C.Methods)
        N += M.Body.size();
      return N;
    };
    auto deleteStmt = [](JirClass &C, size_t Flat) {
      for (JirMethod &M : C.Methods) {
        if (Flat < M.Body.size()) {
          M.Body.erase(M.Body.begin() + Flat);
          for (JirStmt &S : M.Body)
            if (S.isBranch() &&
                S.TargetIndex > static_cast<int32_t>(Flat))
              --S.TargetIndex;
          for (JirExceptionEntry &E : M.ExceptionTable) {
            if (E.StartIndex > Flat)
              --E.StartIndex;
            if (E.EndIndex > Flat)
              --E.EndIndex;
            if (E.HandlerIndex > Flat)
              --E.HandlerIndex;
          }
          return true;
        }
        Flat -= M.Body.size();
      }
      return false;
    };
    Changed |= Run.pass(J, countStmts, deleteStmt,
                        Run.Stats.StatementsRemoved);

    // Adjacent-pair deletion (the coarser ddmin granularity): removes
    // balanced push/pop-style pairs a single deletion cannot, because
    // either half alone breaks verification.
    auto countPairs = [](const JirClass &C) {
      size_t N = 0;
      for (const JirMethod &M : C.Methods)
        if (M.Body.size() >= 2)
          N += M.Body.size() - 1;
      return N;
    };
    auto deletePair = [&deleteStmt](JirClass &C, size_t Flat) {
      for (JirMethod &M : C.Methods) {
        size_t Pairs = M.Body.size() >= 2 ? M.Body.size() - 1 : 0;
        if (Flat < Pairs) {
          // Recompute the flattened index of this method's statements.
          size_t Base = 0;
          for (const JirMethod &Prev : C.Methods) {
            if (&Prev == &M)
              break;
            Base += Prev.Body.size();
          }
          return deleteStmt(C, Base + Flat + 1) &&
                 deleteStmt(C, Base + Flat);
        }
        Flat -= Pairs;
      }
      return false;
    };
    size_t PairDeletions = 0;
    Changed |= Run.pass(J, countPairs, deletePair, PairDeletions);
    Run.Stats.StatementsRemoved += 2 * PairDeletions;
  }

  if (Stats)
    *Stats = Run.Stats;
  return assembleToBytes(J);
}
