//===- reducer/Reducer.h - Hierarchical delta debugging of classfiles ----===//
//
// Part of classfuzz-cpp (PLDI 2016 classfuzz reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The §2.3 reducer: hierarchical delta debugging over JIR. Given a
/// discrepancy-triggering classfile and an oracle that retests a
/// candidate on the JVMs, the reducer repeatedly deletes methods,
/// fields, statements, interfaces, and throws-clause entries, keeping a
/// deletion whenever the discrepancy persists, until a fixed point.
///
//===----------------------------------------------------------------------===//

#ifndef CLASSFUZZ_REDUCER_REDUCER_H
#define CLASSFUZZ_REDUCER_REDUCER_H

#include "jir/Jir.h"

#include <functional>

namespace classfuzz {

/// Oracle: true when the candidate classfile still triggers the
/// discrepancy o under study (Step 2 of §2.3).
using ReductionOracle =
    std::function<bool(const std::string &Name, const Bytes &Data)>;

/// Statistics of one reduction run.
struct ReductionStats {
  size_t OracleQueries = 0;
  size_t DeletionsKept = 0;
  size_t MethodsRemoved = 0;
  size_t FieldsRemoved = 0;
  size_t StatementsRemoved = 0;
  size_t InterfacesRemoved = 0;
  size_t ThrowsRemoved = 0;
};

/// Reduces \p Input (which must satisfy the oracle) to a smaller
/// classfile that still satisfies it. Returns the reduced bytes;
/// \p Stats (optional) receives accounting.
Result<Bytes> reduceClassfile(const Bytes &Input,
                              const ReductionOracle &Oracle,
                              ReductionStats *Stats = nullptr,
                              size_t MaxOracleQueries = 10000);

} // namespace classfuzz

#endif // CLASSFUZZ_REDUCER_REDUCER_H
