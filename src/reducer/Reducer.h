//===- reducer/Reducer.h - Hierarchical delta debugging of classfiles ----===//
//
// Part of classfuzz-cpp (PLDI 2016 classfuzz reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The §2.3 reducer: chunked hierarchical delta debugging over JIR.
/// Given a discrepancy-triggering classfile and an oracle that retests a
/// candidate on the JVMs, the reducer deletes methods, fields,
/// interfaces, throws-clause entries, and statements -- in ddmin-style
/// chunks of size n/2, n/4, ..., 1 per hierarchy level -- keeping a
/// deletion whenever the discrepancy persists, until a fixed point.
///
/// Three things keep the oracle (a full five-profile differential run)
/// off the critical path wherever possible (DESIGN.md §10):
///
///  * **Memoization.** Verdicts are cached by the FNV-1a hash of the
///    assembled candidate bytes, so the fixed-point loop never re-asks
///    the oracle about a candidate it has already judged. Memoization
///    assumes the oracle is a pure function of the candidate bytes (the
///    modeled five-VM oracle is).
///  * **Pre-assembly structural checks.** Deletions that cannot yield an
///    assemblable class (dangling branch targets with no retarget,
///    emptied method bodies, collapsed exception ranges) are skipped
///    before any assembly or oracle work.
///  * **Parallel probing.** With Jobs > 1, oracle probes run on a
///    ThreadPool under the campaign pipeline's presumed-rejection
///    speculation with in-order commit, so the reduced output, the
///    ReductionStats, and the query/cache accounting are byte-identical
///    for every Jobs value. The oracle must then be safe to invoke
///    concurrently (DifferentialTester::testClass is).
///
//===----------------------------------------------------------------------===//

#ifndef CLASSFUZZ_REDUCER_REDUCER_H
#define CLASSFUZZ_REDUCER_REDUCER_H

#include "jir/Jir.h"

#include <functional>

namespace classfuzz {

/// Oracle: true when the candidate classfile still triggers the
/// discrepancy o under study (Step 2 of §2.3). With ReducerOptions::Jobs
/// greater than one the oracle is invoked from multiple worker threads
/// concurrently and must be thread-safe.
using ReductionOracle =
    std::function<bool(const std::string &Name, const Bytes &Data)>;

/// Tuning knobs of one reduction run.
struct ReducerOptions {
  /// Budget of *charged* oracle invocations. Cache hits and structurally
  /// skipped candidates are free. When the budget runs out mid-run the
  /// best reduction so far is returned (ReductionStats::BudgetExhausted
  /// is set); when it runs out before the input itself could be tested,
  /// reduceClassfile fails with a budget (not an oracle-rejection)
  /// error.
  size_t MaxOracleQueries = 10000;
  /// Worker threads probing the oracle. The reduced bytes and every
  /// ReductionStats field are identical for any value (presumed-
  /// rejection speculation, in-order commit).
  size_t Jobs = 1;
  /// When false, every rung uses chunk size 1 (the legacy one-element-
  /// at-a-time scan). Kept as a benchmark baseline; bench_reducer
  /// measures the query savings of chunking against it.
  bool ChunkedHdd = true;
};

/// Statistics of one reduction run. Every field is a function of
/// (input, oracle, options minus Jobs) only -- identical across Jobs.
struct ReductionStats {
  size_t OracleQueries = 0;   ///< Charged oracle invocations.
  size_t CacheHits = 0;       ///< Probes answered from the memo cache.
  size_t CacheMisses = 0;     ///< == OracleQueries (kept for symmetry).
  size_t DeletionsKept = 0;   ///< Committed probes that kept a deletion.
  size_t ChunkDeletionsKept = 0; ///< Kept deletions of more than one element.
  size_t LargestChunkKept = 0;   ///< Elements in the largest kept chunk.
  size_t SkippedStructural = 0;  ///< Candidates rejected before assembly.
  size_t AssemblyFailures = 0;   ///< Candidates assembleToBytes refused.
  size_t MethodsRemoved = 0;
  size_t FieldsRemoved = 0;
  size_t StatementsRemoved = 0;
  size_t InterfacesRemoved = 0;
  size_t ThrowsRemoved = 0;
  /// True when MaxOracleQueries ran out (the run still returns the best
  /// reduction reached; distinguishes budget exhaustion from oracle
  /// rejection of the input).
  bool BudgetExhausted = false;
};

/// Reduces \p Input (which must satisfy the oracle) to a smaller
/// classfile that still satisfies it. Returns the reduced bytes;
/// \p Stats (optional) receives accounting.
Result<Bytes> reduceClassfile(const Bytes &Input,
                              const ReductionOracle &Oracle,
                              const ReducerOptions &Opts,
                              ReductionStats *Stats = nullptr);

/// Convenience overload with default options.
Result<Bytes> reduceClassfile(const Bytes &Input,
                              const ReductionOracle &Oracle,
                              ReductionStats *Stats = nullptr,
                              size_t MaxOracleQueries = 10000);

} // namespace classfuzz

#endif // CLASSFUZZ_REDUCER_REDUCER_H
