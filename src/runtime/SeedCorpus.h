//===- runtime/SeedCorpus.h - Seed classfile generation ------------------===//
//
// Part of classfuzz-cpp (PLDI 2016 classfuzz reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates the seed corpora of the evaluation:
///
///  * generateSeedCorpus -- the 1,216-seed analog: structurally diverse,
///    valid classfiles (field-heavy classes, interfaces, hierarchies,
///    exception users, array/string programs) for mutation.
///  * generateLibraryCorpus -- the "JRE7 library classes" analog for the
///    preliminary study: main-less library-like classes, a fraction of
///    which reference version-skewed runtime classes so that running
///    them across JVM profiles with their own JREs reproduces the
///    ~1.7%-discrepancy compatibility background.
///
/// All generation is deterministic in the provided Rng.
///
//===----------------------------------------------------------------------===//

#ifndef CLASSFUZZ_RUNTIME_SEEDCORPUS_H
#define CLASSFUZZ_RUNTIME_SEEDCORPUS_H

#include "support/ByteBuffer.h"
#include "support/Rng.h"

#include <string>
#include <vector>

namespace classfuzz {

/// One seed: internal class name plus classfile bytes. Multi-class seeds
/// (hierarchies) also carry their helper classes.
struct SeedClass {
  std::string Name;
  Bytes Data;
  /// Additional classes this seed needs on the class path.
  std::vector<std::pair<std::string, Bytes>> Helpers;
};

/// Generates \p Count mutation seeds (valid, diverse classes).
std::vector<SeedClass> generateSeedCorpus(Rng &R, size_t Count);

/// Generates \p Count library-like classes for the preliminary study.
std::vector<SeedClass> generateLibraryCorpus(Rng &R, size_t Count);

} // namespace classfuzz

#endif // CLASSFUZZ_RUNTIME_SEEDCORPUS_H
