//===- runtime/SeedCorpus.h - Seed classfile generation ------------------===//
//
// Part of classfuzz-cpp (PLDI 2016 classfuzz reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates the seed corpora of the evaluation:
///
///  * generateSeedCorpus -- the 1,216-seed analog: structurally diverse,
///    valid classfiles (field-heavy classes, interfaces, hierarchies,
///    exception users, array/string programs) for mutation.
///  * generateLibraryCorpus -- the "JRE7 library classes" analog for the
///    preliminary study: main-less library-like classes, a fraction of
///    which reference version-skewed runtime classes so that running
///    them across JVM profiles with their own JREs reproduces the
///    ~1.7%-discrepancy compatibility background.
///
/// All generation is deterministic in the provided Rng.
///
//===----------------------------------------------------------------------===//

#ifndef CLASSFUZZ_RUNTIME_SEEDCORPUS_H
#define CLASSFUZZ_RUNTIME_SEEDCORPUS_H

#include "support/ByteBuffer.h"
#include "support/Rng.h"

#include <string>
#include <vector>

namespace classfuzz {

/// One seed: internal class name plus classfile bytes. Multi-class seeds
/// (hierarchies) also carry their helper classes.
struct SeedClass {
  std::string Name;
  Bytes Data;
  /// Additional classes this seed needs on the class path.
  std::vector<std::pair<std::string, Bytes>> Helpers;
};

/// Structural parameters one generation round applies to every seed it
/// produces. The corpus cycles through its generator table once per
/// "round"; scaling the corpus 10-100x repeats the table with swept
/// shapes instead of repeating identical structures.
///
/// Round 0 is pinned to the neutral shape, so the first table-length
/// prefix of any corpus is byte-identical to the historical corpus
/// (lineage replay and the analyzer golden depend on this).
struct SeedShape {
  /// Extra unreferenced Utf8 constants interned into the pool before
  /// serialization (sweeps constant-pool size and index layout).
  unsigned CpPadding = 0;
  /// Length of the superclass chain genHierarchy builds above the seed
  /// (1 = the historical single base class).
  unsigned HierarchyDepth = 1;
  /// genException's try/catch layout: 0 = single handler, 1 = two
  /// sequential protected regions, 2 = one region with an extra
  /// catch-all entry.
  unsigned ExceptionGeometry = 0;
  /// Unknown (silently-ignored) class-level attributes appended to the
  /// classfile (sweeps the attribute table past the canonical set).
  unsigned AttributeSoup = 0;
};

/// The deterministic shape sweep: round \p Round of corpus generation
/// (Round = seed index / generator-table size). Round 0 is neutral.
SeedShape seedShapeForRound(size_t Round);

/// Generates \p Count mutation seeds (valid, diverse classes). Seed
/// class names are drawn from the Rng and are guaranteed unique within
/// one corpus (collisions redraw), so no seed silently shadows another
/// on the class path at 10-100x scale.
std::vector<SeedClass> generateSeedCorpus(Rng &R, size_t Count);

/// Generates \p Count library-like classes for the preliminary study.
std::vector<SeedClass> generateLibraryCorpus(Rng &R, size_t Count);

} // namespace classfuzz

#endif // CLASSFUZZ_RUNTIME_SEEDCORPUS_H
