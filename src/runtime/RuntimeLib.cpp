//===- runtime/RuntimeLib.cpp ---------------------------------------------===//

#include "runtime/RuntimeLib.h"

#include "classfile/ClassWriter.h"
#include "classfile/CodeBuilder.h"
#include "classfile/Opcodes.h"

#include <cassert>

using namespace classfuzz;

namespace {

/// Incrementally builds one library class and registers it.
class LibClassBuilder {
public:
  LibClassBuilder(ClassPath &Out, std::string Name, std::string Super,
                  uint16_t Flags)
      : Out(Out) {
    CF.ThisClass = std::move(Name);
    CF.SuperClass = std::move(Super);
    CF.AccessFlags = Flags;
    CF.MajorVersion = MajorVersionJava7;
  }

  ~LibClassBuilder() { finish(); }

  LibClassBuilder &implement(const std::string &Iface) {
    CF.Interfaces.push_back(Iface);
    return *this;
  }

  LibClassBuilder &field(const std::string &Name, const std::string &Desc,
                         uint16_t Flags) {
    FieldInfo F;
    F.Name = Name;
    F.Descriptor = Desc;
    F.AccessFlags = Flags;
    CF.Fields.push_back(std::move(F));
    return *this;
  }

  /// A method implemented natively by the interpreter.
  LibClassBuilder &native(const std::string &Name, const std::string &Desc,
                          uint16_t Flags = ACC_PUBLIC) {
    MethodInfo M;
    M.Name = Name;
    M.Descriptor = Desc;
    M.AccessFlags = static_cast<uint16_t>(Flags | ACC_NATIVE);
    CF.Methods.push_back(std::move(M));
    return *this;
  }

  /// An abstract (e.g. interface) method.
  LibClassBuilder &abstractMethod(const std::string &Name,
                                  const std::string &Desc,
                                  uint16_t Flags = ACC_PUBLIC |
                                                   ACC_ABSTRACT) {
    MethodInfo M;
    M.Name = Name;
    M.Descriptor = Desc;
    M.AccessFlags = Flags;
    CF.Methods.push_back(std::move(M));
    return *this;
  }

  /// A trivial constructor that just calls super.<init>.
  LibClassBuilder &defaultCtor() {
    MethodInfo M;
    M.Name = "<init>";
    M.Descriptor = "()V";
    M.AccessFlags = ACC_PUBLIC;
    CodeBuilder B(CF.CP);
    B.loadLocal('a', 0);
    B.invokeSpecial(CF.SuperClass, "<init>", "()V");
    B.emit(OP_return);
    CodeAttr Code;
    Code.MaxStack = 1;
    Code.MaxLocals = 1;
    Code.Code = B.build();
    M.Code = std::move(Code);
    CF.Methods.push_back(std::move(M));
    return *this;
  }

  /// Direct access for bespoke methods.
  ClassFile &classFile() { return CF; }

  void finish() {
    if (Finished)
      return;
    Finished = true;
    auto Data = writeClassFile(CF);
    assert(Data.ok() && "runtime library class failed to serialize");
    Out.add(CF.ThisClass, Data.take());
  }

private:
  ClassPath &Out;
  ClassFile CF;
  bool Finished = false;
};

/// The <clinit> of java/lang/System: out = new PrintStream().
void addSystemClinit(ClassFile &CF) {
  MethodInfo M;
  M.Name = "<clinit>";
  M.Descriptor = "()V";
  M.AccessFlags = ACC_STATIC;
  CodeBuilder B(CF.CP);
  B.newObject("java/io/PrintStream");
  B.emit(OP_dup);
  B.invokeSpecial("java/io/PrintStream", "<init>", "()V");
  B.putStatic("java/lang/System", "out", "Ljava/io/PrintStream;");
  B.emit(OP_return);
  CodeAttr Code;
  Code.MaxStack = 2;
  Code.MaxLocals = 0;
  Code.Code = B.build();
  M.Code = std::move(Code);
  CF.Methods.push_back(std::move(M));
}

/// Throwable-style constructor taking a message string (kept native; the
/// interpreter stores the message field).
void addThrowableClass(ClassPath &Out, const std::string &Name,
                       const std::string &Super) {
  LibClassBuilder B(Out, Name, Super, ACC_PUBLIC | ACC_SUPER);
  B.native("<init>", "()V");
  B.native("<init>", "(Ljava/lang/String;)V");
}

void addCoreClasses(ClassPath &Lib) {
  {
    LibClassBuilder B(Lib, "java/lang/Object", "", ACC_PUBLIC | ACC_SUPER);
    B.native("<init>", "()V");
    B.native("hashCode", "()I");
    B.native("equals", "(Ljava/lang/Object;)Z");
    B.native("toString", "()Ljava/lang/String;");
  }
  {
    LibClassBuilder B(Lib, "java/lang/String", "java/lang/Object",
                      ACC_PUBLIC | ACC_SUPER | ACC_FINAL);
    B.implement("java/lang/Comparable");
    B.native("<init>", "()V");
    B.native("length", "()I");
    B.native("concat", "(Ljava/lang/String;)Ljava/lang/String;");
    B.native("equals", "(Ljava/lang/Object;)Z");
    B.native("compareTo", "(Ljava/lang/Object;)I");
  }
  {
    LibClassBuilder B(Lib, "java/lang/Class", "java/lang/Object",
                      ACC_PUBLIC | ACC_SUPER | ACC_FINAL);
    B.native("getName", "()Ljava/lang/String;");
  }
  {
    LibClassBuilder B(Lib, "java/io/PrintStream", "java/lang/Object",
                      ACC_PUBLIC | ACC_SUPER);
    B.native("<init>", "()V");
    B.native("println", "(Ljava/lang/String;)V");
    B.native("println", "(I)V");
    B.native("println", "(Ljava/lang/Object;)V");
    B.native("println", "()V");
    B.native("print", "(Ljava/lang/String;)V");
    B.native("print", "(I)V");
  }
  {
    LibClassBuilder B(Lib, "java/lang/System", "java/lang/Object",
                      ACC_PUBLIC | ACC_SUPER | ACC_FINAL);
    B.field("out", "Ljava/io/PrintStream;",
            ACC_PUBLIC | ACC_STATIC | ACC_FINAL);
    addSystemClinit(B.classFile());
  }
  {
    LibClassBuilder B(Lib, "java/lang/StringBuilder", "java/lang/Object",
                      ACC_PUBLIC | ACC_SUPER | ACC_FINAL);
    B.native("<init>", "()V");
    B.native("append",
             "(Ljava/lang/String;)Ljava/lang/StringBuilder;");
    B.native("append", "(I)Ljava/lang/StringBuilder;");
    B.native("toString", "()Ljava/lang/String;");
  }
  {
    LibClassBuilder B(Lib, "java/lang/Math", "java/lang/Object",
                      ACC_PUBLIC | ACC_SUPER | ACC_FINAL);
    B.native("abs", "(I)I", ACC_PUBLIC | ACC_STATIC);
    B.native("max", "(II)I", ACC_PUBLIC | ACC_STATIC);
  }

  // Interfaces.
  constexpr uint16_t IfaceFlags =
      ACC_PUBLIC | ACC_INTERFACE | ACC_ABSTRACT;
  {
    LibClassBuilder B(Lib, "java/lang/Runnable", "java/lang/Object",
                      IfaceFlags);
    B.abstractMethod("run", "()V");
  }
  {
    LibClassBuilder B(Lib, "java/lang/Comparable", "java/lang/Object",
                      IfaceFlags);
    B.abstractMethod("compareTo", "(Ljava/lang/Object;)I");
  }
  {
    LibClassBuilder B(Lib, "java/lang/Cloneable", "java/lang/Object",
                      IfaceFlags);
  }
  {
    LibClassBuilder B(Lib, "java/io/Serializable", "java/lang/Object",
                      IfaceFlags);
  }
  {
    LibClassBuilder B(Lib, "java/security/PrivilegedAction",
                      "java/lang/Object", IfaceFlags);
    B.abstractMethod("run", "()Ljava/lang/Object;");
  }
  {
    LibClassBuilder B(Lib, "java/util/Map", "java/lang/Object",
                      IfaceFlags);
    B.abstractMethod(
        "get", "(Ljava/lang/Object;)Ljava/lang/Object;");
    B.abstractMethod(
        "put",
        "(Ljava/lang/Object;Ljava/lang/Object;)Ljava/lang/Object;");
    B.abstractMethod("size", "()I");
  }
  {
    LibClassBuilder B(Lib, "java/util/List", "java/lang/Object",
                      IfaceFlags);
    B.abstractMethod("add", "(Ljava/lang/Object;)Z");
    B.abstractMethod("get", "(I)Ljava/lang/Object;");
    B.abstractMethod("size", "()I");
  }
  {
    LibClassBuilder B(Lib, "java/util/Enumeration", "java/lang/Object",
                      IfaceFlags);
    B.abstractMethod("hasMoreElements", "()Z");
    B.abstractMethod("nextElement", "()Ljava/lang/Object;");
  }

  // Thread / wrappers / collections.
  {
    LibClassBuilder B(Lib, "java/lang/Thread", "java/lang/Object",
                      ACC_PUBLIC | ACC_SUPER);
    B.implement("java/lang/Runnable");
    B.native("<init>", "()V");
    B.native("run", "()V");
    B.native("start", "()V");
  }
  {
    LibClassBuilder B(Lib, "java/lang/Number", "java/lang/Object",
                      ACC_PUBLIC | ACC_SUPER | ACC_ABSTRACT);
    B.native("<init>", "()V");
    B.abstractMethod("intValue", "()I");
  }
  {
    LibClassBuilder B(Lib, "java/lang/Integer", "java/lang/Number",
                      ACC_PUBLIC | ACC_SUPER | ACC_FINAL);
    B.native("<init>", "(I)V");
    B.native("intValue", "()I");
    B.native("valueOf", "(I)Ljava/lang/Integer;",
             ACC_PUBLIC | ACC_STATIC);
  }
  {
    LibClassBuilder B(Lib, "java/lang/Boolean", "java/lang/Object",
                      ACC_PUBLIC | ACC_SUPER | ACC_FINAL);
    B.native("<init>", "(Z)V");
    B.native("booleanValue", "()Z");
    B.native("getBoolean", "(Ljava/lang/String;)Z",
             ACC_PUBLIC | ACC_STATIC);
  }
  {
    LibClassBuilder B(Lib, "java/util/HashMap", "java/lang/Object",
                      ACC_PUBLIC | ACC_SUPER);
    B.implement("java/util/Map");
    B.native("<init>", "()V");
    B.native("get", "(Ljava/lang/Object;)Ljava/lang/Object;");
    B.native("put",
             "(Ljava/lang/Object;Ljava/lang/Object;)Ljava/lang/Object;");
    B.native("size", "()I");
  }
  {
    LibClassBuilder B(Lib, "java/util/ArrayList", "java/lang/Object",
                      ACC_PUBLIC | ACC_SUPER);
    B.implement("java/util/List");
    B.native("<init>", "()V");
    B.native("add", "(Ljava/lang/Object;)Z");
    B.native("get", "(I)Ljava/lang/Object;");
    B.native("size", "()I");
  }

  // Throwable hierarchy.
  {
    LibClassBuilder B(Lib, "java/lang/Throwable", "java/lang/Object",
                      ACC_PUBLIC | ACC_SUPER);
    B.field("message", "Ljava/lang/String;", ACC_PRIVATE);
    B.native("<init>", "()V");
    B.native("<init>", "(Ljava/lang/String;)V");
    B.native("getMessage", "()Ljava/lang/String;");
  }
  addThrowableClass(Lib, "java/lang/Exception", "java/lang/Throwable");
  addThrowableClass(Lib, "java/lang/Error", "java/lang/Throwable");
  addThrowableClass(Lib, "java/lang/RuntimeException",
                    "java/lang/Exception");
  addThrowableClass(Lib, "java/lang/NullPointerException",
                    "java/lang/RuntimeException");
  addThrowableClass(Lib, "java/lang/ArithmeticException",
                    "java/lang/RuntimeException");
  addThrowableClass(Lib, "java/lang/ClassCastException",
                    "java/lang/RuntimeException");
  addThrowableClass(Lib, "java/lang/IndexOutOfBoundsException",
                    "java/lang/RuntimeException");
  addThrowableClass(Lib, "java/lang/ArrayIndexOutOfBoundsException",
                    "java/lang/IndexOutOfBoundsException");
  addThrowableClass(Lib, "java/lang/NegativeArraySizeException",
                    "java/lang/RuntimeException");
  addThrowableClass(Lib, "java/lang/IllegalArgumentException",
                    "java/lang/RuntimeException");
  addThrowableClass(Lib, "java/lang/IllegalStateException",
                    "java/lang/RuntimeException");
  addThrowableClass(Lib, "java/lang/ClassNotFoundException",
                    "java/lang/Exception");
  addThrowableClass(Lib, "java/lang/LinkageError", "java/lang/Error");
  addThrowableClass(Lib, "java/lang/VerifyError",
                    "java/lang/LinkageError");
}

/// Classes present only from a given version on, plus the sun/* internals
/// that JDK 9 hides.
void addVersionedClasses(ClassPath &Lib, const std::string &Version) {
  bool AtLeast7 = Version != "jre5";
  bool AtLeast8 = Version == "jre8" || Version == "jre9";
  bool Is9 = Version == "jre9";

  constexpr uint16_t IfaceFlags =
      ACC_PUBLIC | ACC_INTERFACE | ACC_ABSTRACT;

  if (AtLeast7) {
    {
      LibClassBuilder B(Lib, "java/lang/AutoCloseable",
                        "java/lang/Object", IfaceFlags);
      B.abstractMethod("close", "()V");
    }
    {
      LibClassBuilder B(Lib, "java/util/Objects", "java/lang/Object",
                        ACC_PUBLIC | ACC_SUPER | ACC_FINAL);
      B.native("requireNonNull",
               "(Ljava/lang/Object;)Ljava/lang/Object;",
               ACC_PUBLIC | ACC_STATIC);
    }
  }
  if (AtLeast8) {
    {
      LibClassBuilder B(Lib, "java/util/function/Function",
                        "java/lang/Object", IfaceFlags);
      B.abstractMethod("apply",
                       "(Ljava/lang/Object;)Ljava/lang/Object;");
    }
    {
      LibClassBuilder B(Lib, "java/util/stream/Stream",
                        "java/lang/Object", IfaceFlags);
      B.abstractMethod("count", "()J");
    }
  }

  // com/sun/beans/editors/EnumEditor: subclassable through jre7, final
  // from jre8 on (the paper's preliminary-study VerifyError example).
  {
    uint16_t Flags = ACC_PUBLIC | ACC_SUPER;
    if (AtLeast8)
      Flags |= ACC_FINAL;
    LibClassBuilder B(Lib, "com/sun/beans/editors/EnumEditor",
                      "java/lang/Object", Flags);
    B.native("<init>", "()V");
  }
  // sun/beans/editors/EnumEditor extends the above; present through
  // jre8, dropped (with all sun/* internals) in jre9.
  if (!Is9) {
    {
      LibClassBuilder B(Lib, "sun/beans/editors/EnumEditor",
                        "com/sun/beans/editors/EnumEditor",
                        ACC_PUBLIC | ACC_SUPER);
      B.native("<init>", "()V");
    }
    {
      LibClassBuilder B(Lib, "sun/java2d/pisces/PiscesRenderingEngine",
                        "java/lang/Object", ACC_PUBLIC | ACC_SUPER);
      B.native("<init>", "()V");
    }
    // The synthetic, package-private nested class of Problem 3.
    {
      LibClassBuilder B(Lib,
                        "sun/java2d/pisces/PiscesRenderingEngine$2",
                        "java/lang/Object", ACC_SUPER | ACC_SYNTHETIC);
      B.native("<init>", "()V", /*Flags=*/0);
    }
    {
      LibClassBuilder B(Lib, "sun/misc/BASE64Encoder",
                        "java/lang/Object", ACC_PUBLIC | ACC_SUPER);
      B.native("<init>", "()V");
    }
  }
}

} // namespace

ClassPath classfuzz::buildRuntimeLibrary(const std::string &Version) {
  ClassPath Lib;
  addCoreClasses(Lib);
  addVersionedClasses(Lib, Version);
  return Lib;
}

ClassPath classfuzz::runtimeLibraryFor(const JvmPolicy &Policy) {
  return buildRuntimeLibrary(Policy.RuntimeLib);
}

VersionSkewedClasses classfuzz::versionSkewedClasses() {
  VersionSkewedClasses Out;
  Out.Jre7Plus = {"java/lang/AutoCloseable", "java/util/Objects"};
  Out.Jre8Plus = {"java/util/function/Function", "java/util/stream/Stream"};
  Out.RemovedInJre9 = {"sun/beans/editors/EnumEditor",
                       "sun/java2d/pisces/PiscesRenderingEngine",
                       "sun/misc/BASE64Encoder"};
  Out.FinalizedClass = "com/sun/beans/editors/EnumEditor";
  Out.InaccessibleClass = "sun/java2d/pisces/PiscesRenderingEngine$2";
  return Out;
}
