//===- runtime/SeedCorpus.cpp ---------------------------------------------===//

#include "runtime/SeedCorpus.h"

#include "classfile/ClassWriter.h"
#include "classfile/CodeBuilder.h"
#include "classfile/Opcodes.h"
#include "runtime/RuntimeLib.h"

#include <cassert>
#include <unordered_set>

using namespace classfuzz;

namespace {

/// Builds one seed class with a fluent interface.
class SeedBuilder {
public:
  explicit SeedBuilder(std::string Name,
                       std::string Super = "java/lang/Object",
                       uint16_t Flags = ACC_PUBLIC | ACC_SUPER) {
    CF.ThisClass = std::move(Name);
    CF.SuperClass = std::move(Super);
    CF.AccessFlags = Flags;
    CF.MajorVersion = MajorVersionJava7;
  }

  ClassFile &cf() { return CF; }

  void implement(const std::string &Iface) {
    CF.Interfaces.push_back(Iface);
  }

  void field(const std::string &Name, const std::string &Desc,
             uint16_t Flags) {
    FieldInfo F;
    F.Name = Name;
    F.Descriptor = Desc;
    F.AccessFlags = Flags;
    CF.Fields.push_back(std::move(F));
  }

  /// A static final int with a ConstantValue attribute (initialized
  /// during preparation, no <clinit> involvement).
  void constantIntField(const std::string &Name, int32_t V) {
    FieldInfo F;
    F.Name = Name;
    F.Descriptor = "I";
    F.AccessFlags = ACC_PUBLIC | ACC_STATIC | ACC_FINAL;
    FieldConstant CV;
    CV.Kind = 'i';
    CV.IntValue = V;
    F.ConstantValue = CV;
    CF.Fields.push_back(std::move(F));
  }

  /// Adds a method whose body is produced by \p Emit on a CodeBuilder.
  /// \p ExceptionTable is read *after* Emit runs, so emitters may fill a
  /// table they captured by reference while laying out offsets.
  template <typename EmitFn>
  void method(const std::string &Name, const std::string &Desc,
              uint16_t Flags, uint16_t MaxStack, uint16_t MaxLocals,
              EmitFn Emit,
              const std::vector<ExceptionTableEntry> &ExceptionTable = {},
              std::vector<std::string> Throws = {}) {
    MethodInfo M;
    M.Name = Name;
    M.Descriptor = Desc;
    M.AccessFlags = Flags;
    M.Exceptions = std::move(Throws);
    CodeBuilder B(CF.CP);
    Emit(B);
    CodeAttr Code;
    Code.MaxStack = MaxStack;
    Code.MaxLocals = MaxLocals;
    Code.Code = B.build();
    Code.ExceptionTable = ExceptionTable;
    M.Code = std::move(Code);
    CF.Methods.push_back(std::move(M));
  }

  void abstractMethod(const std::string &Name, const std::string &Desc,
                      uint16_t Flags) {
    MethodInfo M;
    M.Name = Name;
    M.Descriptor = Desc;
    M.AccessFlags = Flags;
    CF.Methods.push_back(std::move(M));
  }

  void defaultCtor() {
    std::string Super = CF.SuperClass;
    method("<init>", "()V", ACC_PUBLIC, 1, 1, [&](CodeBuilder &B) {
      B.loadLocal('a', 0);
      B.invokeSpecial(Super, "<init>", "()V");
      B.emit(OP_return);
    });
  }

  /// public static void main(String[]) printing \p Message.
  void mainPrinting(const std::string &Message) {
    method("main", "([Ljava/lang/String;)V", ACC_PUBLIC | ACC_STATIC, 2,
           1, [&](CodeBuilder &B) {
             B.getStatic("java/lang/System", "out",
                         "Ljava/io/PrintStream;");
             B.pushString(Message);
             B.invokeVirtual("java/io/PrintStream", "println",
                             "(Ljava/lang/String;)V");
             B.emit(OP_return);
           });
  }

  /// Applies the structural sweep of \p S: pads the constant pool with
  /// unreferenced Utf8 entries and appends unknown class-level
  /// attributes. The neutral shape is a strict no-op, so round-0 seeds
  /// keep their historical bytes.
  void applyShape(const SeedShape &S) {
    for (unsigned I = 0; I != S.CpPadding; ++I)
      CF.CP.utf8("CfPad" + std::to_string(I));
    for (unsigned I = 0; I != S.AttributeSoup; ++I) {
      AttributeInfo A;
      A.Name = "CfSoup" + std::to_string(I);
      A.Data = {static_cast<uint8_t>(I), 0x5E, 0xED};
      CF.Attributes.push_back(std::move(A));
    }
  }

  Bytes build() {
    auto Data = writeClassFile(CF);
    assert(Data.ok() && "seed class failed to serialize");
    return Data.take();
  }

private:
  ClassFile CF;
};

using Gen = SeedClass (*)(Rng &, const std::string &, const SeedShape &);

/// Plain hello class (the Figure 2 shape, valid form).
SeedClass genHello(Rng &R, const std::string &Name, const SeedShape &S) {
  (void)R;
  SeedBuilder B(Name);
  B.defaultCtor();
  B.mainPrinting("Completed!");
  B.applyShape(S);
  return {Name, B.build(), {}};
}

/// Class with a batch of fields, a static initializer, and a main that
/// reads a static.
SeedClass genFields(Rng &R, const std::string &Name, const SeedShape &S) {
  SeedBuilder B(Name);
  int NumFields = static_cast<int>(R.nextInRange(1, 6));
  static const char *Descs[] = {"I", "Ljava/lang/String;",
                                "Ljava/lang/Object;", "[I", "Z", "J"};
  for (int I = 0; I != NumFields; ++I) {
    uint16_t Flags = R.nextBool() ? (ACC_PRIVATE | ACC_STATIC)
                                  : static_cast<uint16_t>(ACC_PROTECTED);
    if (R.nextBool(0.3))
      Flags = static_cast<uint16_t>(Flags | ACC_FINAL);
    B.field("f" + std::to_string(I), Descs[R.choiceIndex(6)], Flags);
  }
  B.field("COUNTER", "I", ACC_PUBLIC | ACC_STATIC);
  B.cf().Methods.push_back([&] {
    MethodInfo M;
    M.Name = "<clinit>";
    M.Descriptor = "()V";
    M.AccessFlags = ACC_STATIC;
    CodeBuilder CB(B.cf().CP);
    CB.pushInt(static_cast<int32_t>(R.nextInRange(1, 99)));
    CB.putStatic(Name, "COUNTER", "I");
    CB.emit(OP_return);
    CodeAttr Code;
    Code.MaxStack = 1;
    Code.MaxLocals = 0;
    Code.Code = CB.build();
    M.Code = std::move(Code);
    return M;
  }());
  B.defaultCtor();
  B.method("main", "([Ljava/lang/String;)V", ACC_PUBLIC | ACC_STATIC, 2,
           1, [&](CodeBuilder &CB) {
             CB.getStatic("java/lang/System", "out",
                          "Ljava/io/PrintStream;");
             CB.getStatic(Name, "COUNTER", "I");
             CB.invokeVirtual("java/io/PrintStream", "println", "(I)V");
             CB.emit(OP_return);
           });
  B.applyShape(S);
  return {Name, B.build(), {}};
}

/// Loop-and-arithmetic main (branches, iinc, int ops).
SeedClass genArith(Rng &R, const std::string &Name, const SeedShape &S) {
  int32_t Limit = static_cast<int32_t>(R.nextInRange(3, 20));
  SeedBuilder B(Name);
  B.defaultCtor();
  B.method(
      "main", "([Ljava/lang/String;)V", ACC_PUBLIC | ACC_STATIC, 3, 3,
      [&](CodeBuilder &CB) {
        // int sum = 0; for (int i = 0; i < Limit; ++i) sum += i;
        CB.pushInt(0);
        CB.storeLocal('i', 1); // sum
        CB.pushInt(0);
        CB.storeLocal('i', 2); // i
        CodeBuilder::Label Head = CB.newLabel();
        CodeBuilder::Label Done = CB.newLabel();
        CB.bind(Head);
        CB.loadLocal('i', 2);
        CB.pushInt(Limit);
        CB.branch(OP_if_icmpge, Done);
        CB.loadLocal('i', 1);
        CB.loadLocal('i', 2);
        CB.emit(OP_iadd);
        CB.storeLocal('i', 1);
        CB.iinc(2, 1);
        CB.branch(OP_goto, Head);
        CB.bind(Done);
        CB.getStatic("java/lang/System", "out", "Ljava/io/PrintStream;");
        CB.loadLocal('i', 1);
        CB.invokeVirtual("java/io/PrintStream", "println", "(I)V");
        CB.emit(OP_return);
      });
  B.applyShape(S);
  return {Name, B.build(), {}};
}

/// An interface with constants and abstract methods (main-less seed, as
/// most JRE classfiles are).
SeedClass genInterface(Rng &R, const std::string &Name,
                       const SeedShape &S) {
  SeedBuilder B(Name, "java/lang/Object",
                ACC_PUBLIC | ACC_INTERFACE | ACC_ABSTRACT);
  int NumConsts = static_cast<int>(R.nextInRange(0, 3));
  for (int I = 0; I != NumConsts; ++I)
    B.constantIntField("K" + std::to_string(I),
                       static_cast<int32_t>(R.nextInRange(0, 999)));
  int NumMethods = static_cast<int>(R.nextInRange(1, 4));
  static const char *Descs[] = {"()V", "(I)I", "(Ljava/lang/String;)V",
                                "()Ljava/lang/Object;"};
  for (int I = 0; I != NumMethods; ++I)
    B.abstractMethod("op" + std::to_string(I), Descs[R.choiceIndex(4)],
                     ACC_PUBLIC | ACC_ABSTRACT);
  B.applyShape(S);
  return {Name, B.build(), {}};
}

/// Implements Runnable and Comparable with real bodies; main dispatches
/// through the interface.
SeedClass genImpl(Rng &R, const std::string &Name, const SeedShape &S) {
  (void)R;
  SeedBuilder B(Name);
  B.implement("java/lang/Runnable");
  B.implement("java/lang/Comparable");
  B.defaultCtor();
  B.method("run", "()V", ACC_PUBLIC, 2, 1, [&](CodeBuilder &CB) {
    CB.getStatic("java/lang/System", "out", "Ljava/io/PrintStream;");
    CB.pushString("run");
    CB.invokeVirtual("java/io/PrintStream", "println",
                     "(Ljava/lang/String;)V");
    CB.emit(OP_return);
  });
  B.method("compareTo", "(Ljava/lang/Object;)I", ACC_PUBLIC, 1, 2,
           [&](CodeBuilder &CB) {
             CB.pushInt(0);
             CB.emit(OP_ireturn);
           });
  B.method("main", "([Ljava/lang/String;)V", ACC_PUBLIC | ACC_STATIC, 2,
           2, [&](CodeBuilder &CB) {
             CB.newObject(Name);
             CB.emit(OP_dup);
             CB.invokeSpecial(Name, "<init>", "()V");
             CB.storeLocal('a', 1);
             CB.loadLocal('a', 1);
             CB.invokeInterface("java/lang/Runnable", "run", "()V");
             CB.emit(OP_return);
           });
  B.applyShape(S);
  return {Name, B.build(), {}};
}

/// Subclass of Thread overriding run (inheritance + virtual dispatch).
SeedClass genSubThread(Rng &R, const std::string &Name,
                       const SeedShape &S) {
  (void)R;
  SeedBuilder B(Name, "java/lang/Thread");
  B.defaultCtor();
  B.method("run", "()V", ACC_PUBLIC, 2, 1, [&](CodeBuilder &CB) {
    CB.getStatic("java/lang/System", "out", "Ljava/io/PrintStream;");
    CB.pushString("thread-run");
    CB.invokeVirtual("java/io/PrintStream", "println",
                     "(Ljava/lang/String;)V");
    CB.emit(OP_return);
  });
  B.method("main", "([Ljava/lang/String;)V", ACC_PUBLIC | ACC_STATIC, 2,
           1, [&](CodeBuilder &CB) {
             CB.newObject(Name);
             CB.emit(OP_dup);
             CB.invokeSpecial(Name, "<init>", "()V");
             CB.invokeVirtual(Name, "run", "()V");
             CB.emit(OP_return);
           });
  B.applyShape(S);
  return {Name, B.build(), {}};
}

/// try/catch with a deliberate ArithmeticException, plus a throws
/// clause. ExceptionGeometry sweeps the table layout: 0 = one protected
/// region with one typed handler (the historical shape), 1 = two
/// sequential protected regions, 2 = one region with a typed handler
/// shadowed by a catch-all entry.
SeedClass genException(Rng &R, const std::string &Name,
                       const SeedShape &S) {
  (void)R;
  SeedBuilder B(Name);
  B.defaultCtor();
  B.method("risky", "(I)I", ACC_PUBLIC | ACC_STATIC, 2, 1,
           [&](CodeBuilder &CB) {
             CB.pushInt(100);
             CB.loadLocal('i', 0);
             CB.emit(OP_idiv);
             CB.emit(OP_ireturn);
           },
           /*ExceptionTable=*/{},
           /*Throws=*/{"java/lang/ArithmeticException"});
  std::vector<ExceptionTableEntry> Table;
  unsigned Geometry = S.ExceptionGeometry % 3;
  if (Geometry == 1) {
    // main: two back-to-back try { risky(0) } catch blocks, so the
    // table holds two disjoint protected regions.
    B.method("main", "([Ljava/lang/String;)V", ACC_PUBLIC | ACC_STATIC,
             2, 2, [&](CodeBuilder &CB) {
               for (int Region = 0; Region != 2; ++Region) {
                 uint32_t TryStart = CB.currentOffset();
                 CB.pushInt(0);
                 CB.invokeStatic(Name, "risky", "(I)I");
                 CB.emit(OP_pop);
                 uint32_t TryEnd = CB.currentOffset();
                 CodeBuilder::Label Out = CB.newLabel();
                 CB.branch(OP_goto, Out);
                 uint32_t Handler = CB.currentOffset();
                 CB.storeLocal('a', 1);
                 CB.getStatic("java/lang/System", "out",
                              "Ljava/io/PrintStream;");
                 CB.pushString(Region == 0 ? "caught" : "caught2");
                 CB.invokeVirtual("java/io/PrintStream", "println",
                                  "(Ljava/lang/String;)V");
                 CB.bind(Out);
                 ExceptionTableEntry E;
                 E.StartPc = static_cast<uint16_t>(TryStart);
                 E.EndPc = static_cast<uint16_t>(TryEnd);
                 E.HandlerPc = static_cast<uint16_t>(Handler);
                 E.CatchType = "java/lang/ArithmeticException";
                 Table.push_back(E);
               }
               CB.emit(OP_return);
             },
             Table);
  } else if (Geometry == 2) {
    // main: one protected region with two entries -- the typed handler
    // first, then a catch-all (CatchType empty => index 0).
    B.method("main", "([Ljava/lang/String;)V", ACC_PUBLIC | ACC_STATIC,
             2, 2, [&](CodeBuilder &CB) {
               uint32_t TryStart = CB.currentOffset();
               CB.pushInt(0);
               CB.invokeStatic(Name, "risky", "(I)I");
               CB.emit(OP_pop);
               uint32_t TryEnd = CB.currentOffset();
               CodeBuilder::Label Out = CB.newLabel();
               CB.branch(OP_goto, Out);
               uint32_t Typed = CB.currentOffset();
               CB.storeLocal('a', 1);
               CB.getStatic("java/lang/System", "out",
                            "Ljava/io/PrintStream;");
               CB.pushString("caught");
               CB.invokeVirtual("java/io/PrintStream", "println",
                                "(Ljava/lang/String;)V");
               CB.branch(OP_goto, Out);
               uint32_t CatchAll = CB.currentOffset();
               CB.storeLocal('a', 1);
               CB.getStatic("java/lang/System", "out",
                            "Ljava/io/PrintStream;");
               CB.pushString("caught-any");
               CB.invokeVirtual("java/io/PrintStream", "println",
                                "(Ljava/lang/String;)V");
               CB.bind(Out);
               CB.emit(OP_return);
               ExceptionTableEntry E;
               E.StartPc = static_cast<uint16_t>(TryStart);
               E.EndPc = static_cast<uint16_t>(TryEnd);
               E.HandlerPc = static_cast<uint16_t>(Typed);
               E.CatchType = "java/lang/ArithmeticException";
               Table.push_back(E);
               E.HandlerPc = static_cast<uint16_t>(CatchAll);
               E.CatchType.clear();
               Table.push_back(E);
             },
             Table);
  } else {
    // main: try { risky(0) } catch (ArithmeticException e) { print }
    B.method("main", "([Ljava/lang/String;)V", ACC_PUBLIC | ACC_STATIC,
             2, 2, [&](CodeBuilder &CB) {
               uint32_t TryStart = CB.currentOffset();
               CB.pushInt(0);
               CB.invokeStatic(Name, "risky", "(I)I");
               CB.emit(OP_pop);
               uint32_t TryEnd = CB.currentOffset();
               CodeBuilder::Label Out = CB.newLabel();
               CB.branch(OP_goto, Out);
               uint32_t Handler = CB.currentOffset();
               CB.storeLocal('a', 1);
               CB.getStatic("java/lang/System", "out",
                            "Ljava/io/PrintStream;");
               CB.pushString("caught");
               CB.invokeVirtual("java/io/PrintStream", "println",
                                "(Ljava/lang/String;)V");
               CB.bind(Out);
               CB.emit(OP_return);
               ExceptionTableEntry E;
               E.StartPc = static_cast<uint16_t>(TryStart);
               E.EndPc = static_cast<uint16_t>(TryEnd);
               E.HandlerPc = static_cast<uint16_t>(Handler);
               E.CatchType = "java/lang/ArithmeticException";
               Table.push_back(E);
             },
             Table);
  }
  B.applyShape(S);
  return {Name, B.build(), {}};
}

/// Arrays: int[] and String[] round trips.
SeedClass genArray(Rng &R, const std::string &Name, const SeedShape &S) {
  int32_t Len = static_cast<int32_t>(R.nextInRange(1, 8));
  SeedBuilder B(Name);
  B.defaultCtor();
  B.method("main", "([Ljava/lang/String;)V", ACC_PUBLIC | ACC_STATIC, 4,
           2, [&](CodeBuilder &CB) {
             CB.pushInt(Len);
             CB.emitU1(OP_newarray, 10); // T_INT
             CB.storeLocal('a', 1);
             CB.loadLocal('a', 1);
             CB.pushInt(0);
             CB.pushInt(42);
             CB.emit(OP_iastore);
             CB.getStatic("java/lang/System", "out",
                          "Ljava/io/PrintStream;");
             CB.loadLocal('a', 1);
             CB.pushInt(0);
             CB.emit(OP_iaload);
             CB.invokeVirtual("java/io/PrintStream", "println", "(I)V");
             CB.emit(OP_return);
           });
  B.applyShape(S);
  return {Name, B.build(), {}};
}

/// StringBuilder chain.
SeedClass genStringBuilder(Rng &R, const std::string &Name,
                           const SeedShape &S) {
  int32_t N = static_cast<int32_t>(R.nextInRange(1, 5));
  SeedBuilder B(Name);
  B.defaultCtor();
  B.method("main", "([Ljava/lang/String;)V", ACC_PUBLIC | ACC_STATIC, 3,
           2, [&](CodeBuilder &CB) {
             CB.newObject("java/lang/StringBuilder");
             CB.emit(OP_dup);
             CB.invokeSpecial("java/lang/StringBuilder", "<init>", "()V");
             CB.pushString("n=");
             CB.invokeVirtual(
                 "java/lang/StringBuilder", "append",
                 "(Ljava/lang/String;)Ljava/lang/StringBuilder;");
             CB.pushInt(N);
             CB.invokeVirtual("java/lang/StringBuilder", "append",
                              "(I)Ljava/lang/StringBuilder;");
             CB.invokeVirtual("java/lang/StringBuilder", "toString",
                              "()Ljava/lang/String;");
             CB.storeLocal('a', 1);
             CB.getStatic("java/lang/System", "out",
                          "Ljava/io/PrintStream;");
             CB.loadLocal('a', 1);
             CB.invokeVirtual("java/io/PrintStream", "println",
                              "(Ljava/lang/String;)V");
             CB.emit(OP_return);
           });
  B.applyShape(S);
  return {Name, B.build(), {}};
}

/// A hierarchy seed: Name extends a chain of HierarchyDepth base
/// classes (NameBase, NameBase2, ..., deepest extends Object), with an
/// overridden virtual method dispatched through the direct base type.
/// Depth 1 reproduces the historical two-class shape byte-for-byte.
SeedClass genHierarchy(Rng &R, const std::string &Name,
                       const SeedShape &S) {
  (void)R;
  unsigned Depth = S.HierarchyDepth == 0 ? 1 : S.HierarchyDepth;
  std::vector<std::string> Chain; // Chain[0] is Name's direct super.
  for (unsigned K = 1; K <= Depth; ++K)
    Chain.push_back(K == 1 ? Name + "Base"
                           : Name + "Base" + std::to_string(K));

  SeedClass Out;
  Out.Name = Name;
  for (unsigned K = 0; K != Depth; ++K) {
    std::string Super =
        K + 1 < Depth ? Chain[K + 1] : "java/lang/Object";
    SeedBuilder BB(Chain[K], Super);
    BB.defaultCtor();
    BB.method("describe", "()Ljava/lang/String;", ACC_PUBLIC, 1, 1,
              [&](CodeBuilder &CB) {
                CB.pushString("base");
                CB.emit(OP_areturn);
              });
    BB.applyShape(S);
    Out.Helpers.emplace_back(Chain[K], BB.build());
  }

  SeedBuilder B(Name, Chain[0]);
  B.defaultCtor();
  B.method("describe", "()Ljava/lang/String;", ACC_PUBLIC, 1, 1,
           [&](CodeBuilder &CB) {
             CB.pushString("derived");
             CB.emit(OP_areturn);
           });
  B.method("main", "([Ljava/lang/String;)V", ACC_PUBLIC | ACC_STATIC, 2,
           2, [&](CodeBuilder &CB) {
             CB.newObject(Name);
             CB.emit(OP_dup);
             CB.invokeSpecial(Name, "<init>", "()V");
             CB.storeLocal('a', 1);
             CB.getStatic("java/lang/System", "out",
                          "Ljava/io/PrintStream;");
             CB.loadLocal('a', 1);
             CB.invokeVirtual(Chain[0], "describe",
                              "()Ljava/lang/String;");
             CB.invokeVirtual("java/io/PrintStream", "println",
                              "(Ljava/lang/String;)V");
             CB.emit(OP_return);
           });
  B.applyShape(S);
  Out.Data = B.build();
  return Out;
}

/// checkcast / instanceof over the runtime hierarchy.
SeedClass genCast(Rng &R, const std::string &Name, const SeedShape &S) {
  (void)R;
  SeedBuilder B(Name);
  B.defaultCtor();
  B.method("main", "([Ljava/lang/String;)V", ACC_PUBLIC | ACC_STATIC, 2,
           2, [&](CodeBuilder &CB) {
             CB.pushString("s");
             CB.storeLocal('a', 1);
             CB.loadLocal('a', 1);
             CB.instanceOf("java/lang/Comparable");
             CodeBuilder::Label No = CB.newLabel();
             CodeBuilder::Label End = CB.newLabel();
             CB.branch(OP_ifeq, No);
             CB.getStatic("java/lang/System", "out",
                          "Ljava/io/PrintStream;");
             CB.pushString("comparable");
             CB.invokeVirtual("java/io/PrintStream", "println",
                              "(Ljava/lang/String;)V");
             CB.branch(OP_goto, End);
             CB.bind(No);
             CB.getStatic("java/lang/System", "out",
                          "Ljava/io/PrintStream;");
             CB.pushString("not");
             CB.invokeVirtual("java/io/PrintStream", "println",
                              "(Ljava/lang/String;)V");
             CB.bind(End);
             CB.emit(OP_return);
           });
  B.applyShape(S);
  return {Name, B.build(), {}};
}

/// Static helper methods invoked from main.
SeedClass genStaticHelpers(Rng &R, const std::string &Name,
                           const SeedShape &S) {
  int NumHelpers = static_cast<int>(R.nextInRange(1, 3));
  SeedBuilder B(Name);
  B.defaultCtor();
  for (int I = 0; I != NumHelpers; ++I) {
    int32_t K = static_cast<int32_t>(R.nextInRange(1, 9));
    B.method("h" + std::to_string(I), "(I)I", ACC_PRIVATE | ACC_STATIC,
             2, 1, [&](CodeBuilder &CB) {
               CB.loadLocal('i', 0);
               CB.pushInt(K);
               CB.emit(OP_imul);
               CB.emit(OP_ireturn);
             });
  }
  B.method("main", "([Ljava/lang/String;)V", ACC_PUBLIC | ACC_STATIC, 2,
           1, [&](CodeBuilder &CB) {
             CB.getStatic("java/lang/System", "out",
                          "Ljava/io/PrintStream;");
             CB.pushInt(7);
             CB.invokeStatic(Name, "h0", "(I)I");
             CB.invokeVirtual("java/io/PrintStream", "println", "(I)V");
             CB.emit(OP_return);
           });
  B.applyShape(S);
  return {Name, B.build(), {}};
}

/// References a version-skewed library class: compatibility seed.
SeedClass genSkewRef(Rng &R, const std::string &Name, const SeedShape &S) {
  VersionSkewedClasses Skew = versionSkewedClasses();
  std::vector<std::string> Pool = Skew.Jre7Plus;
  Pool.insert(Pool.end(), Skew.Jre8Plus.begin(), Skew.Jre8Plus.end());
  Pool.insert(Pool.end(), Skew.RemovedInJre9.begin(),
              Skew.RemovedInJre9.end());
  std::string Target = Pool[R.choiceIndex(Pool.size())];
  SeedBuilder B(Name);
  B.defaultCtor();
  B.method("main", "([Ljava/lang/String;)V", ACC_PUBLIC | ACC_STATIC, 2,
           2, [&](CodeBuilder &CB) {
             // Mentioning the class is enough: instanceof forces
             // resolution without needing a constructible instance.
             CB.pushNull();
             CB.instanceOf(Target);
             CB.emit(OP_pop);
             CB.getStatic("java/lang/System", "out",
                          "Ljava/io/PrintStream;");
             CB.pushString("resolved");
             CB.invokeVirtual("java/io/PrintStream", "println",
                              "(Ljava/lang/String;)V");
             CB.emit(OP_return);
           });
  B.applyShape(S);
  return {Name, B.build(), {}};
}

// genSkewRef (a seed referencing a version-skewed runtime class) appears
// once per 25 seeds, matching the paper's ~3% compatibility-discrepancy
// rate among seeding classfiles.
const Gen SeedGenerators[] = {
    genHello,         genFields,    genArith,   genInterface,
    genImpl,          genSubThread, genException, genArray,
    genStringBuilder, genHierarchy, genCast,    genStaticHelpers,
    genSkewRef,       genHello,     genFields,  genArith,
    genInterface,     genImpl,      genSubThread, genException,
    genArray,         genStringBuilder, genHierarchy, genCast,
    genStaticHelpers,
};

// ---- library corpus (preliminary study) ----------------------------------

/// A plain library-like class: no main, a few members.
SeedClass genLibPlain(Rng &R, const std::string &Name, const SeedShape &S) {
  SeedBuilder B(Name);
  B.defaultCtor();
  int NumFields = static_cast<int>(R.nextInRange(0, 4));
  for (int I = 0; I != NumFields; ++I)
    B.field("v" + std::to_string(I), "I", ACC_PRIVATE);
  B.method("get", "()I", ACC_PUBLIC, 1, 1, [&](CodeBuilder &CB) {
    CB.pushInt(static_cast<int32_t>(R.nextInRange(0, 50)));
    CB.emit(OP_ireturn);
  });
  B.applyShape(S);
  return {Name, B.build(), {}};
}

/// Library class extending the EnumEditor whose final-ness changed in
/// jre8 (VerifyError on jre8+ profiles, NoClassDefFoundError where the
/// parent is absent).
SeedClass genLibFinalSub(Rng &R, const std::string &Name,
                         const SeedShape &S) {
  (void)R;
  VersionSkewedClasses Skew = versionSkewedClasses();
  SeedBuilder B(Name, Skew.FinalizedClass);
  B.defaultCtor();
  B.applyShape(S);
  return {Name, B.build(), {}};
}

/// Library class referencing a sun/* internal (gone in jre9) or a
/// jre7+/jre8+ addition via its superclass.
SeedClass genLibSkewSuper(Rng &R, const std::string &Name,
                          const SeedShape &S) {
  VersionSkewedClasses Skew = versionSkewedClasses();
  std::vector<std::string> Pool = Skew.RemovedInJre9;
  // Only concrete classes can serve as superclasses.
  std::string Super = Pool[R.choiceIndex(Pool.size())];
  if (Super == "sun/beans/editors/EnumEditor" && R.nextBool())
    Super = "sun/misc/BASE64Encoder";
  SeedBuilder B(Name, Super);
  B.defaultCtor();
  B.applyShape(S);
  return {Name, B.build(), {}};
}

/// Library interface.
SeedClass genLibInterface(Rng &R, const std::string &Name,
                          const SeedShape &S) {
  return genInterface(R, Name, S);
}

// One finalized-superclass user and one sun/*-internal user per 64
// classes: running the corpus across the version-skewed per-JVM
// libraries then yields the paper's low-single-digit compatibility
// discrepancy background (1.7% in the preliminary study).
const Gen LibraryGenerators[] = {
    genLibPlain, genLibPlain,     genLibPlain, genLibPlain, genLibPlain,
    genLibPlain, genLibInterface, genLibPlain, genLibPlain, genLibPlain,
    genLibPlain, genLibPlain,     genLibPlain, genLibPlain, genLibPlain,
    genLibFinalSub,
    genLibPlain, genLibPlain,     genLibPlain, genLibPlain, genLibPlain,
    genLibPlain, genLibInterface, genLibPlain, genLibPlain, genLibPlain,
    genLibPlain, genLibPlain,     genLibPlain, genLibPlain, genLibPlain,
    genLibPlain,
    genLibPlain, genLibPlain,     genLibPlain, genLibPlain, genLibPlain,
    genLibPlain, genLibInterface, genLibPlain, genLibPlain, genLibPlain,
    genLibPlain, genLibPlain,     genLibPlain, genLibPlain, genLibPlain,
    genLibSkewSuper,
    genLibPlain, genLibPlain,     genLibPlain, genLibPlain, genLibPlain,
    genLibPlain, genLibInterface, genLibPlain, genLibPlain, genLibPlain,
    genLibPlain, genLibPlain,     genLibPlain, genLibPlain, genLibPlain,
    genLibPlain,
};

} // namespace

SeedShape classfuzz::seedShapeForRound(size_t Round) {
  SeedShape S;
  if (Round == 0)
    return S; // Neutral: round 0 keeps the historical corpus bytes.
  S.CpPadding = static_cast<unsigned>((Round * 5) % 17);
  S.HierarchyDepth = static_cast<unsigned>(1 + Round % 4);
  S.ExceptionGeometry = static_cast<unsigned>(Round % 3);
  S.AttributeSoup = static_cast<unsigned>((Round / 3) % 4);
  return S;
}

std::vector<SeedClass> classfuzz::generateSeedCorpus(Rng &R, size_t Count) {
  std::vector<SeedClass> Out;
  Out.reserve(Count);
  constexpr size_t NumGens = sizeof(SeedGenerators) / sizeof(Gen);
  std::unordered_set<std::string> Seen;
  for (size_t I = 0; I != Count; ++I) {
    // Redraw on collision: the ~1e8 name space yields birthday
    // collisions well within a 10-100x corpus, and duplicate names
    // silently shadow each other on the class path. The common
    // no-collision case consumes exactly one draw, as before.
    std::string Name;
    do {
      Name = "M" + std::to_string(1400000000 + R.nextBelow(99999999));
    } while (!Seen.insert(Name).second);
    Gen G = SeedGenerators[I % NumGens];
    Out.push_back(G(R, Name, seedShapeForRound(I / NumGens)));
  }
  return Out;
}

std::vector<SeedClass> classfuzz::generateLibraryCorpus(Rng &R,
                                                        size_t Count) {
  std::vector<SeedClass> Out;
  Out.reserve(Count);
  constexpr size_t NumGens = sizeof(LibraryGenerators) / sizeof(Gen);
  for (size_t I = 0; I != Count; ++I) {
    std::string Name = "lib/pkg" + std::to_string(I % 16) + "/L" +
                       std::to_string(1000 + I);
    Gen G = LibraryGenerators[I % NumGens];
    Out.push_back(G(R, Name, seedShapeForRound(I / NumGens)));
  }
  return Out;
}
