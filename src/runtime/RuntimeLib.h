//===- runtime/RuntimeLib.h - Synthetic runtime class library ------------===//
//
// Part of classfuzz-cpp (PLDI 2016 classfuzz reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds the runtime class library (our JRE substitute) as real class
/// file bytes: java/lang core types, the exception hierarchy, IO, a few
/// util interfaces/classes, and the special classes the paper's reported
/// problems hinge on (a package-private synthetic nested class for
/// Problem 3, a class whose final-ness changed between versions for the
/// EnumEditor discrepancy).
///
/// Four versions model the JRE skew behind compatibility discrepancies:
///   "jre5"  -- GIJ's library: missing post-1.5 classes
///   "jre7"  -- baseline (the paper's seed JRE)
///   "jre8"  -- adds 1.8 classes; EnumEditor becomes final
///   "jre9"  -- additionally removes sun/* internals (JDK 9 modules)
///
//===----------------------------------------------------------------------===//

#ifndef CLASSFUZZ_RUNTIME_RUNTIMELIB_H
#define CLASSFUZZ_RUNTIME_RUNTIMELIB_H

#include "jvm/ClassPath.h"
#include "jvm/Policy.h"

namespace classfuzz {

/// Builds the library for \p Version in {"jre5","jre7","jre8","jre9"}.
/// Unknown versions build the jre8 baseline.
ClassPath buildRuntimeLibrary(const std::string &Version);

/// The library a given JVM profile ships with (Policy.RuntimeLib).
ClassPath runtimeLibraryFor(const JvmPolicy &Policy);

/// Class names whose referencing classes exhibit version skew (used by
/// the corpus generators to seed compatibility discrepancies).
struct VersionSkewedClasses {
  /// Present in jre7+ only.
  std::vector<std::string> Jre7Plus;
  /// Present in jre8+ only.
  std::vector<std::string> Jre8Plus;
  /// Removed in jre9 (sun/* internals).
  std::vector<std::string> RemovedInJre9;
  /// Final in jre8+ but subclassable in jre5/jre7.
  std::string FinalizedClass;
  /// Package-private synthetic class (Problem 3 throws-accessibility).
  std::string InaccessibleClass;
};
VersionSkewedClasses versionSkewedClasses();

} // namespace classfuzz

#endif // CLASSFUZZ_RUNTIME_RUNTIMELIB_H
