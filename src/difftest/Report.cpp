//===- difftest/Report.cpp -------------------------------------------------===//

#include "difftest/Report.h"

#include "jvm/Phase.h"

#include <map>
#include <sstream>

using namespace classfuzz;

std::string classfuzz::renderDiscrepancyReport(
    const std::vector<JvmPolicy> &Policies,
    const std::vector<DiscrepancyRecord> &Records, const DiffStats &Stats,
    size_t ExamplesPerCategory) {
  std::ostringstream OS;

  OS << "# JVM discrepancy report\n\n";
  OS << "- classfiles tested: " << Stats.Total << "\n";
  OS << "- discrepancy-triggering: " << Stats.Discrepancies << " ("
     << static_cast<int>(Stats.diffRatePercent() * 10) / 10.0 << "%)\n";
  OS << "- distinct categories: " << Stats.DistinctDiscrepancies.size()
     << "\n\n";
  OS << "Encoding: one digit per JVM (";
  for (size_t I = 0; I != Policies.size(); ++I)
    OS << (I ? ", " : "") << Policies[I].Name;
  OS << ");";
  for (int Code = 0; Code != NumPhaseCodes; ++Code)
    OS << (Code ? ", " : " ") << Code << " = " << phaseCodeName(Code);
  OS << ".\n\n";

  std::map<std::string, std::vector<const DiscrepancyRecord *>>
      ByCategory;
  for (const DiscrepancyRecord &R : Records)
    ByCategory[R.Outcome.encodedString()].push_back(&R);

  for (const auto &[Sequence, Group] : ByCategory) {
    size_t Count = 0;
    if (auto It = Stats.DistinctDiscrepancies.find(Sequence);
        It != Stats.DistinctDiscrepancies.end())
      Count = It->second;
    OS << "## Category `" << Sequence << "` (" << Count
       << " classfiles)\n\n";

    const DiscrepancyRecord &First = *Group.front();
    OS << "| JVM | outcome |\n|---|---|\n";
    for (size_t I = 0; I != First.Outcome.Results.size(); ++I)
      OS << "| " << Policies[I].Name << " | "
         << First.Outcome.Results[I].toString() << " |\n";
    OS << "\nExamples:\n\n";
    for (size_t I = 0; I != Group.size() && I != ExamplesPerCategory;
         ++I) {
      OS << "- `" << Group[I]->ClassName << "`";
      if (!Group[I]->Provenance.empty())
        OS << " — produced by: " << Group[I]->Provenance;
      OS << "\n";
    }
    OS << "\n";
  }
  return OS.str();
}
