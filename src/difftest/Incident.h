//===- difftest/Incident.h - Discrepancy incident bundles ----------------===//
//
// Part of classfuzz-cpp (PLDI 2016 classfuzz reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Incident bundles (DESIGN.md §9): when a differential run surfaces a
/// discrepancy (or a profile aborts with InternalError), the campaign
/// dumps a self-contained directory holding everything needed to triage
/// and replay the finding offline:
///
///   incident-NNNN-<encoded>/
///     mutant.class    raw mutant bytes as tested
///     lineage.json    provenance + environment spec (fuzzing/Provenance.h)
///     outcomes.json   per-profile results + the encoded sequence
///     replay.sh       runs `classfuzz replay .` from the bundle
///     flightrec.jsonl last N flight-recorder events, when armed
///     reduced.class   reducer output, when the reducer ran
///     analysis.json   static-analyzer report, for self-check bundles
///
/// Self-check bundles (a predict-vs-observe mismatch of the static
/// analyzer, DESIGN.md §11) use the "selfcheck-NNNN-<encoded>" prefix
/// instead of "incident-".
///
/// Every file is deterministic -- no timestamps, no absolute paths, no
/// host names -- so for a fixed campaign seed the bundle's contents are
/// byte-identical across runs and --jobs values.
///
//===----------------------------------------------------------------------===//

#ifndef CLASSFUZZ_DIFFTEST_INCIDENT_H
#define CLASSFUZZ_DIFFTEST_INCIDENT_H

#include "difftest/DiffTest.h"
#include "fuzzing/Provenance.h"
#include "support/Result.h"

#include <string>
#include <vector>

namespace classfuzz {

/// Everything one incident captures.
struct Incident {
  std::string MutantName;
  Bytes MutantData;
  DiffOutcome Outcome;
  /// Names of the profiles Outcome ran on, in Encoded order.
  std::vector<std::string> ProfileNames;
  /// Execution tier of each profile ("switch"/"threaded"/"baseline"),
  /// in Encoded order. Empty entries (or a short vector) default to
  /// "threaded" in outcomes.json, so pre-tier callers stay valid.
  std::vector<std::string> ProfileTiers;
  Provenance Prov;
  CampaignEnvSpec Env;
  /// Reduced classfile when the reducer ran and shrank the mutant.
  Bytes Reduced;
  bool HasReduced = false;
  /// Static-analyzer report (analysis.json), when the bundle latches a
  /// predict-vs-observe self-check mismatch. Empty skips the file.
  std::string AnalysisJson;
  /// Self-check bundles are named "selfcheck-NNNN-<encoded>" so a
  /// directory of incidents separates oracle bugs from JVM
  /// discrepancies at a glance.
  bool SelfCheck = false;
  /// How many trailing flight-recorder events to embed (0 skips the
  /// file even when the recorder is armed).
  size_t FlightTail = 64;
};

/// Renders outcomes.json: the encoded sequence, discrepancy flag, and
/// each profile's full result. Stable formatting, byte-identical for
/// equal inputs.
std::string outcomesJson(const Incident &Inc);

/// Writes the bundle directory `incident-NNNN-<encoded>` under \p Dir
/// (created if needed) and returns its path. Also records an
/// IncidentDumped flight event. Fails on I/O errors with a diagnostic.
Result<std::string> writeIncidentBundle(const std::string &Dir, size_t Index,
                                        const Incident &Inc);

} // namespace classfuzz

#endif // CLASSFUZZ_DIFFTEST_INCIDENT_H
