//===- difftest/DiffTest.cpp -----------------------------------------------===//

#include "difftest/DiffTest.h"

#include "jvm/Vm.h"
#include "runtime/RuntimeLib.h"

#include <array>

using namespace classfuzz;

bool DiffOutcome::isDiscrepancy() const {
  for (size_t I = 1; I < Encoded.size(); ++I)
    if (Encoded[I] != Encoded[0])
      return true;
  return false;
}

std::string DiffOutcome::encodedString() const {
  std::string Out;
  Out.reserve(Encoded.size());
  for (int Code : Encoded)
    Out += static_cast<char>('0' + Code);
  return Out;
}

DifferentialTester::DifferentialTester(std::vector<JvmPolicy> Policies,
                                       const ClassPath &Extra,
                                       EnvironmentMode Mode,
                                       const std::string &SharedLibVersion)
    : Policies(std::move(Policies)) {
  // freeze() seals each environment's contents into shared COW layers,
  // so the per-testClass "corpus + one extra class" overlay below is an
  // O(1) copy instead of an O(corpus) deep copy.
  if (Mode == EnvironmentMode::Shared) {
    ClassPath Shared =
        buildRuntimeLibrary(SharedLibVersion).overlaidWith(Extra);
    Shared.freeze();
    Envs.assign(this->Policies.size(), Shared);
    return;
  }
  for (const JvmPolicy &P : this->Policies) {
    ClassPath Env = runtimeLibraryFor(P).overlaidWith(Extra);
    Env.freeze();
    Envs.push_back(std::move(Env));
  }
}

DifferentialTester DifferentialTester::withAllProfiles(
    const ClassPath &Extra, EnvironmentMode Mode,
    const std::string &SharedLibVersion) {
  return DifferentialTester(allJvmPolicies(), Extra, Mode,
                            SharedLibVersion);
}

DiffOutcome DifferentialTester::testClass(const std::string &Name) const {
  DiffOutcome Out;
  for (size_t I = 0; I != Policies.size(); ++I) {
    Vm Jvm(Policies[I], Envs[I]);
    JvmResult R = Jvm.run(Name);
    Out.Encoded.push_back(encodeOutcome(R));
    Out.Results.push_back(std::move(R));
  }
  return Out;
}

DiffOutcome DifferentialTester::testClass(const std::string &Name,
                                          const Bytes &Data) const {
  DiffOutcome Out;
  for (size_t I = 0; I != Policies.size(); ++I) {
    ClassPath Env = Envs[I]; // COW overlay: shares the frozen corpus.
    Env.add(Name, Data);
    Vm Jvm(Policies[I], Env);
    JvmResult R = Jvm.run(Name);
    Out.Encoded.push_back(encodeOutcome(R));
    Out.Results.push_back(std::move(R));
  }
  return Out;
}

void DiffStats::add(const DiffOutcome &Outcome) {
  ++Total;
  if (PhaseCounts.size() < Outcome.Encoded.size())
    PhaseCounts.resize(Outcome.Encoded.size());
  bool AllZero = true;
  for (size_t I = 0; I != Outcome.Encoded.size(); ++I) {
    // Encoded outcomes are 0..4 by construction; clamp anything else
    // (and count it) rather than indexing past PhaseCounts[I].
    int Code = Outcome.Encoded[I];
    if (Code < 0 || Code > 4) {
      ++EncodingErrors;
      Code = Code < 0 ? 0 : 4;
    }
    ++PhaseCounts[I][static_cast<size_t>(Code)];
    if (Code != 0)
      AllZero = false;
  }
  if (Outcome.isDiscrepancy()) {
    ++Discrepancies;
    ++DistinctDiscrepancies[Outcome.encodedString()];
    return;
  }
  if (AllZero)
    ++AllInvoked;
  else
    ++AllRejectedSameStage;
}

double DiffStats::diffRatePercent() const {
  if (Total == 0)
    return 0.0;
  return 100.0 * static_cast<double>(Discrepancies) /
         static_cast<double>(Total);
}
