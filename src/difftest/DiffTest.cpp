//===- difftest/DiffTest.cpp -----------------------------------------------===//

#include "difftest/DiffTest.h"

#include "jvm/Phase.h"
#include "jvm/Vm.h"
#include "runtime/RuntimeLib.h"
#include "support/Hashing.h"
#include "telemetry/FlightRecorder.h"
#include "telemetry/Telemetry.h"

#include <array>
#include <optional>

using namespace classfuzz;

bool DiffOutcome::isDiscrepancy() const {
  for (size_t I = 1; I < Encoded.size(); ++I)
    if (Encoded[I] != Encoded[0])
      return true;
  return false;
}

bool DiffOutcome::anyInternalError() const {
  for (const JvmResult &R : Results)
    if (R.Error == JvmErrorKind::InternalError)
      return true;
  return false;
}

std::string DiffOutcome::encodedString() const {
  std::string Out;
  Out.reserve(Encoded.size());
  for (int Code : Encoded)
    Out += static_cast<char>('0' + Code);
  return Out;
}

void DiffOutcome::commitFlightEvents() const {
  telemetry::FlightRecorder &FR = telemetry::flightRecorder();
  if (!FR.enabled())
    return;
  for (const DeferredFlightEvent &E : FlightEvents)
    FR.record(E.Kind, E.A, E.B, E.C);
}

DifferentialTester::DifferentialTester(std::vector<JvmPolicy> Policies,
                                       const ClassPath &Extra,
                                       EnvironmentMode Mode,
                                       const std::string &SharedLibVersion)
    : Policies(std::move(Policies)) {
  // freeze() seals each environment's contents into shared COW layers,
  // so the per-testClass "corpus + one extra class" overlay below is an
  // O(1) copy instead of an O(corpus) deep copy.
  if (Mode == EnvironmentMode::Shared) {
    ClassPath Shared =
        buildRuntimeLibrary(SharedLibVersion).overlaidWith(Extra);
    Shared.freeze();
    Envs.assign(this->Policies.size(), Shared);
    return;
  }
  for (const JvmPolicy &P : this->Policies) {
    ClassPath Env = runtimeLibraryFor(P).overlaidWith(Extra);
    Env.freeze();
    Envs.push_back(std::move(Env));
  }
}

DifferentialTester DifferentialTester::withAllProfiles(
    const ClassPath &Extra, EnvironmentMode Mode,
    const std::string &SharedLibVersion) {
  return DifferentialTester(allJvmPolicies(), Extra, Mode,
                            SharedLibVersion);
}

DiffOutcome DifferentialTester::runProfiles(const std::string &Name,
                                            const Bytes *Data) const {
  namespace tm = classfuzz::telemetry;
  const bool Telemetry = tm::enabled();
  static tm::Histogram &WallNs =
      tm::metrics().histogram("difftest.wall_ns");
  std::optional<tm::PhaseTimer> Timer;
  if (Telemetry)
    Timer.emplace(WallNs, "difftest");

  // Flight events are deferred into the outcome instead of recorded
  // here: runProfiles executes on reducer probe lanes and campaign
  // workers, and direct records from those threads would interleave in
  // the global sequence stream nondeterministically. The caller replays
  // them via commitFlightEvents() at its deterministic commit point.
  const bool Flight = tm::flightRecorder().enabled();
  // Hashed once; flight events identify the class without storing the
  // (variable-length) name in a fixed-size ring entry.
  uint64_t NameHash = 0;
  if (Flight) {
    Hasher H;
    H.addString(Name);
    NameHash = H.value();
  }

  DiffOutcome Out;
  for (size_t I = 0; I != Policies.size(); ++I) {
    CoverageRecorder Recorder;
    CoverageRecorder *Cov = CollectCoverage ? &Recorder : nullptr;
    int Code;
    if (Data) {
      ClassPath Env = Envs[I]; // COW overlay: shares the frozen corpus.
      Env.add(Name, *Data);
      Vm Jvm(Policies[I], Env, Cov);
      JvmResult R = Jvm.run(Name);
      Code = encodePhase(R);
      Out.Results.push_back(std::move(R));
    } else {
      Vm Jvm(Policies[I], Envs[I], Cov);
      JvmResult R = Jvm.run(Name);
      Code = encodePhase(R);
      Out.Results.push_back(std::move(R));
    }
    if (CollectCoverage)
      Out.Traces.push_back(Recorder.takeTrace());
    if (Flight &&
        Out.Results.back().Error == JvmErrorKind::InternalError)
      Out.FlightEvents.push_back(
          {tm::FlightKind::VmInternalError, I,
           static_cast<uint64_t>(Out.Results.back().Phase), NameHash});
    Out.Encoded.push_back(Code);
    if (Telemetry)
      tm::metrics()
          .counter("difftest.outcome." + Policies[I].Name + ".phase" +
                   std::to_string(Code))
          .inc();
  }

  if (Telemetry) {
    Timer.reset(); // Record wall time before emitting the event.
    tm::metrics().counter("difftest.classes").inc();
    if (Out.isDiscrepancy())
      tm::metrics().counter("difftest.discrepancies").inc();
    if (tm::eventSink())
      tm::EventBuilder("difftest")
          .field("class", Name)
          .field("encoded", Out.encodedString())
          .field("discrepancy", Out.isDiscrepancy())
          .emit();
  }
  if (Flight) {
    uint64_t Packed = 0;
    for (int Code : Out.Encoded)
      Packed = Packed * 10 + static_cast<uint64_t>(Code);
    Out.FlightEvents.push_back({tm::FlightKind::DiffOutcome, Packed,
                                Out.isDiscrepancy() ? uint64_t(1)
                                                    : uint64_t(0),
                                NameHash});
  }
  return Out;
}

DiffOutcome DifferentialTester::testClass(const std::string &Name) const {
  return runProfiles(Name, nullptr);
}

DiffOutcome DifferentialTester::testClass(const std::string &Name,
                                          const Bytes &Data) const {
  return runProfiles(Name, &Data);
}

void DiffStats::add(const DiffOutcome &Outcome) {
  ++Total;
  if (PhaseCounts.size() < Outcome.Encoded.size())
    PhaseCounts.resize(Outcome.Encoded.size());
  bool AllZero = true;
  for (size_t I = 0; I != Outcome.Encoded.size(); ++I) {
    // Encoded outcomes are 0..4 by construction; clamp anything else
    // (and count it) rather than indexing past PhaseCounts[I].
    int Code = Outcome.Encoded[I];
    if (Code < 0 || Code > 4) {
      ++EncodingErrors;
      Code = Code < 0 ? 0 : 4;
    }
    ++PhaseCounts[I][static_cast<size_t>(Code)];
    if (Code != 0)
      AllZero = false;
  }
  if (Outcome.isDiscrepancy()) {
    ++Discrepancies;
    ++DistinctDiscrepancies[Outcome.encodedString()];
    return;
  }
  if (AllZero)
    ++AllInvoked;
  else
    ++AllRejectedSameStage;
}

void DiffStats::merge(const DiffStats &Other) {
  Total += Other.Total;
  AllInvoked += Other.AllInvoked;
  AllRejectedSameStage += Other.AllRejectedSameStage;
  Discrepancies += Other.Discrepancies;
  EncodingErrors += Other.EncodingErrors;
  for (const auto &[Sequence, Count] : Other.DistinctDiscrepancies)
    DistinctDiscrepancies[Sequence] += Count;
  if (PhaseCounts.size() < Other.PhaseCounts.size())
    PhaseCounts.resize(Other.PhaseCounts.size());
  for (size_t Jvm = 0; Jvm != Other.PhaseCounts.size(); ++Jvm)
    for (size_t Code = 0; Code != Other.PhaseCounts[Jvm].size(); ++Code)
      PhaseCounts[Jvm][Code] += Other.PhaseCounts[Jvm][Code];
}

double DiffStats::diffRatePercent() const {
  if (Total == 0)
    return 0.0;
  return 100.0 * static_cast<double>(Discrepancies) /
         static_cast<double>(Total);
}
