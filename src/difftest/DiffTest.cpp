//===- difftest/DiffTest.cpp -----------------------------------------------===//

#include "difftest/DiffTest.h"

#include "jvm/Phase.h"
#include "jvm/Vm.h"
#include "runtime/RuntimeLib.h"
#include "support/Hashing.h"
#include "telemetry/FlightRecorder.h"
#include "telemetry/Telemetry.h"

#include <array>
#include <optional>

using namespace classfuzz;

bool DiffOutcome::isDiscrepancy() const {
  for (size_t I = 1; I < Encoded.size(); ++I)
    if (Encoded[I] != Encoded[0])
      return true;
  return false;
}

bool DiffOutcome::anyInternalError() const {
  for (const JvmResult &R : Results)
    if (R.Error == JvmErrorKind::InternalError)
      return true;
  return false;
}

std::string DiffOutcome::encodedString() const {
  std::string Out;
  Out.reserve(Encoded.size());
  for (int Code : Encoded)
    Out += static_cast<char>('0' + Code);
  return Out;
}

void DiffOutcome::commitFlightEvents() const {
  telemetry::FlightRecorder &FR = telemetry::flightRecorder();
  if (!FR.enabled())
    return;
  for (const DeferredFlightEvent &E : FlightEvents)
    FR.record(E.Kind, E.A, E.B, E.C);
}

DifferentialTester::DifferentialTester(std::vector<ProfileDesc> Profiles,
                                       const ClassPath &Extra,
                                       EnvironmentMode Mode,
                                       const std::string &SharedLibVersion)
    : Profiles(std::move(Profiles)) {
  // Pin the invariant profile = (policy x tier): the stored policy's
  // Tier always matches the descriptor's, so runProfiles can hand the
  // policy to Vm as-is. PolicyView additionally takes the profile name,
  // keeping `policies()[I].Name` printable for tier-qualified profiles.
  for (ProfileDesc &P : this->Profiles) {
    P.Policy.Tier = P.Tier;
    JvmPolicy View = P.Policy;
    View.Name = P.Name;
    PolicyView.push_back(std::move(View));
  }
  // freeze() seals each environment's contents into shared COW layers,
  // so the per-testClass "corpus + one extra class" overlay below is an
  // O(1) copy instead of an O(corpus) deep copy.
  if (Mode == EnvironmentMode::Shared) {
    ClassPath Shared =
        buildRuntimeLibrary(SharedLibVersion).overlaidWith(Extra);
    Shared.freeze();
    Envs.assign(this->Profiles.size(), Shared);
    return;
  }
  // Tier-diff pairs share the reference policy, so their environments
  // are COW copies of the same runtime library -- no extra I/O.
  for (const ProfileDesc &P : this->Profiles) {
    ClassPath Env = runtimeLibraryFor(P.Policy).overlaidWith(Extra);
    Env.freeze();
    Envs.push_back(std::move(Env));
  }
}

namespace {

std::vector<ProfileDesc> wrapPolicies(std::vector<JvmPolicy> Policies) {
  std::vector<ProfileDesc> Out;
  Out.reserve(Policies.size());
  for (JvmPolicy &P : Policies) {
    ProfileDesc D;
    D.Name = P.Name;
    D.Tier = P.Tier;
    D.Policy = std::move(P);
    Out.push_back(std::move(D));
  }
  return Out;
}

} // namespace

DifferentialTester::DifferentialTester(std::vector<JvmPolicy> Policies,
                                       const ClassPath &Extra,
                                       EnvironmentMode Mode,
                                       const std::string &SharedLibVersion)
    : DifferentialTester(wrapPolicies(std::move(Policies)), Extra, Mode,
                         SharedLibVersion) {}

DifferentialTester DifferentialTester::withAllProfiles(
    const ClassPath &Extra, EnvironmentMode Mode,
    const std::string &SharedLibVersion) {
  return DifferentialTester(allJvmPolicies(), Extra, Mode,
                            SharedLibVersion);
}

DifferentialTester DifferentialTester::withTieredProfiles(
    const ClassPath &Extra, EnvironmentMode Mode, ExecTier Tier,
    bool TierDiff, const std::string &SharedLibVersion) {
  std::vector<ProfileDesc> Descs;
  for (JvmPolicy P : allJvmPolicies()) {
    P.Tier = Tier;
    ProfileDesc D;
    D.Name = P.Name;
    D.Tier = Tier;
    D.Policy = std::move(P);
    Descs.push_back(std::move(D));
  }
  std::optional<std::pair<size_t, size_t>> Pair;
  if (TierDiff) {
    // The tier pair: the reference policy on the threaded-interpreter
    // and baseline tiers. JitTelemetry is deferred -- testClass runs on
    // reducer probe lanes whose count varies with --reduce-jobs, and
    // engine-teardown publishing there would make jit.* counters
    // job-dependent.
    JvmPolicy Ref = referenceJvmPolicy();
    Ref.JitTelemetry = false;
    Pair.emplace(Descs.size(), Descs.size() + 1);
    ProfileDesc Interp;
    Interp.Name = Ref.Name + "~threaded";
    Interp.Tier = ExecTier::Threaded;
    Interp.Policy = Ref;
    Descs.push_back(std::move(Interp));
    ProfileDesc Base;
    Base.Name = Ref.Name + "~baseline";
    Base.Tier = ExecTier::Baseline;
    Base.Policy = std::move(Ref);
    Descs.push_back(std::move(Base));
  }
  DifferentialTester T(std::move(Descs), Extra, Mode, SharedLibVersion);
  T.TierPair = Pair;
  return T;
}

DiffOutcome DifferentialTester::runProfiles(const std::string &Name,
                                            const Bytes *Data) const {
  namespace tm = classfuzz::telemetry;
  const bool Telemetry = tm::enabled();
  static tm::Histogram &WallNs =
      tm::metrics().histogram("difftest.wall_ns");
  std::optional<tm::PhaseTimer> Timer;
  if (Telemetry)
    Timer.emplace(WallNs, "difftest");

  // Flight events are deferred into the outcome instead of recorded
  // here: runProfiles executes on reducer probe lanes and campaign
  // workers, and direct records from those threads would interleave in
  // the global sequence stream nondeterministically. The caller replays
  // them via commitFlightEvents() at its deterministic commit point.
  const bool Flight = tm::flightRecorder().enabled();
  // Hashed once; flight events identify the class without storing the
  // (variable-length) name in a fixed-size ring entry.
  uint64_t NameHash = 0;
  if (Flight) {
    Hasher H;
    H.addString(Name);
    NameHash = H.value();
  }

  DiffOutcome Out;
  for (size_t I = 0; I != Profiles.size(); ++I) {
    CoverageRecorder Recorder;
    CoverageRecorder *Cov = CollectCoverage ? &Recorder : nullptr;
    int Code;
    if (Data) {
      ClassPath Env = Envs[I]; // COW overlay: shares the frozen corpus.
      Env.add(Name, *Data);
      Vm Jvm(Profiles[I].Policy, Env, Cov);
      JvmResult R = Jvm.run(Name);
      Code = encodePhase(R);
      Out.Results.push_back(std::move(R));
    } else {
      Vm Jvm(Profiles[I].Policy, Envs[I], Cov);
      JvmResult R = Jvm.run(Name);
      Code = encodePhase(R);
      Out.Results.push_back(std::move(R));
    }
    if (CollectCoverage)
      Out.Traces.push_back(Recorder.takeTrace());
    if (Flight &&
        Out.Results.back().Error == JvmErrorKind::InternalError)
      Out.FlightEvents.push_back(
          {tm::FlightKind::VmInternalError, I,
           static_cast<uint64_t>(Out.Results.back().Phase), NameHash});
    Out.Encoded.push_back(Code);
    if (Telemetry)
      tm::metrics()
          .counter("difftest.outcome." + Profiles[I].Name + ".phase" +
                   std::to_string(Code))
          .inc();
  }

  if (TierPair) {
    // Same policy, different execution tier: any disagreement is its
    // own discrepancy class (the tier-diff axis), counted separately
    // from cross-JVM discrepancies.
    int A = Out.Encoded[TierPair->first];
    int B = Out.Encoded[TierPair->second];
    Out.TierDisagreement = A != B;
    if (Out.TierDisagreement) {
      if (Telemetry)
        tm::metrics().counter("difftest.tier_disagreements").inc();
      if (Flight)
        Out.FlightEvents.push_back(
            {tm::FlightKind::TierDisagreement, static_cast<uint64_t>(A),
             static_cast<uint64_t>(B), NameHash});
    }
  }

  if (Telemetry) {
    Timer.reset(); // Record wall time before emitting the event.
    tm::metrics().counter("difftest.classes").inc();
    if (Out.isDiscrepancy())
      tm::metrics().counter("difftest.discrepancies").inc();
    if (tm::eventSink())
      tm::EventBuilder("difftest")
          .field("class", Name)
          .field("encoded", Out.encodedString())
          .field("discrepancy", Out.isDiscrepancy())
          .emit();
  }
  if (Flight) {
    uint64_t Packed = 0;
    for (int Code : Out.Encoded)
      Packed = Packed * 10 + static_cast<uint64_t>(Code);
    Out.FlightEvents.push_back({tm::FlightKind::DiffOutcome, Packed,
                                Out.isDiscrepancy() ? uint64_t(1)
                                                    : uint64_t(0),
                                NameHash});
  }
  return Out;
}

DiffOutcome DifferentialTester::testClass(const std::string &Name) const {
  return runProfiles(Name, nullptr);
}

DiffOutcome DifferentialTester::testClass(const std::string &Name,
                                          const Bytes &Data) const {
  return runProfiles(Name, &Data);
}

void DiffStats::add(const DiffOutcome &Outcome) {
  ++Total;
  if (PhaseCounts.size() < Outcome.Encoded.size())
    PhaseCounts.resize(Outcome.Encoded.size());
  bool AllZero = true;
  for (size_t I = 0; I != Outcome.Encoded.size(); ++I) {
    // Encoded outcomes are 0..4 by construction; clamp anything else
    // (and count it) rather than indexing past PhaseCounts[I].
    int Code = Outcome.Encoded[I];
    if (Code < 0 || Code > 4) {
      ++EncodingErrors;
      Code = Code < 0 ? 0 : 4;
    }
    ++PhaseCounts[I][static_cast<size_t>(Code)];
    if (Code != 0)
      AllZero = false;
  }
  if (Outcome.TierDisagreement)
    ++TierDisagreements;
  if (Outcome.isDiscrepancy()) {
    ++Discrepancies;
    ++DistinctDiscrepancies[Outcome.encodedString()];
    return;
  }
  if (AllZero)
    ++AllInvoked;
  else
    ++AllRejectedSameStage;
}

void DiffStats::merge(const DiffStats &Other) {
  Total += Other.Total;
  AllInvoked += Other.AllInvoked;
  AllRejectedSameStage += Other.AllRejectedSameStage;
  Discrepancies += Other.Discrepancies;
  EncodingErrors += Other.EncodingErrors;
  TierDisagreements += Other.TierDisagreements;
  for (const auto &[Sequence, Count] : Other.DistinctDiscrepancies)
    DistinctDiscrepancies[Sequence] += Count;
  if (PhaseCounts.size() < Other.PhaseCounts.size())
    PhaseCounts.resize(Other.PhaseCounts.size());
  for (size_t Jvm = 0; Jvm != Other.PhaseCounts.size(); ++Jvm)
    for (size_t Code = 0; Code != Other.PhaseCounts[Jvm].size(); ++Code)
      PhaseCounts[Jvm][Code] += Other.PhaseCounts[Jvm][Code];
}

double DiffStats::diffRatePercent() const {
  if (Total == 0)
    return 0.0;
  return 100.0 * static_cast<double>(Discrepancies) /
         static_cast<double>(Total);
}
