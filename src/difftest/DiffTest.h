//===- difftest/DiffTest.h - Differential testing of the JVM profiles ----===//
//
// Part of classfuzz-cpp (PLDI 2016 classfuzz reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs classfiles on the five JVM profiles and compares the encoded
/// outcomes (§2.3, Figure 3): each run is simplified to
/// {0 = normally invoked, 1 = rejected while loading, 2 = linking,
/// 3 = initialization, 4 = runtime}, the five outputs form a sequence,
/// and a discrepancy is a non-constant sequence. Discrepancies with the
/// same encoded sequence fall into one *distinct discrepancy* category.
///
/// Environments: with PerJvmEnvironments each profile uses its own
/// runtime-library version (Definition 1 discrepancies, including
/// compatibility effects); with a shared environment all profiles see
/// the same library (Definition 2: surviving discrepancies indicate
/// defects or policy differences, not JRE skew).
///
//===----------------------------------------------------------------------===//

#ifndef CLASSFUZZ_DIFFTEST_DIFFTEST_H
#define CLASSFUZZ_DIFFTEST_DIFFTEST_H

#include "coverage/Tracefile.h"
#include "jvm/ClassPath.h"
#include "jvm/ExecTier.h"
#include "jvm/JvmTypes.h"
#include "jvm/Policy.h"
#include "telemetry/FlightRecorder.h"

#include <array>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace classfuzz {

/// One differential profile: a JVM policy executed on a specific tier.
/// A profile is (policy x tier); plain policy profiles are named after
/// the policy ("hotspot9"), tier-diff profiles carry a tier-qualified
/// name ("hotspot9~baseline") that flows verbatim into outcome
/// encodings, incident outcomes.json, and replay output.
struct ProfileDesc {
  std::string Name;
  JvmPolicy Policy;
  ExecTier Tier = ExecTier::Threaded;
};

/// A flight-recorder event observed during a differential run but not
/// yet recorded. runProfiles defers its events into the DiffOutcome
/// instead of writing the global sequence stream from whatever thread it
/// runs on; the caller replays them (commitFlightEvents) at its own
/// deterministic commit point, so armed-recorder dumps are byte-identical
/// across --jobs/--reduce-jobs values.
struct DeferredFlightEvent {
  telemetry::FlightKind Kind = telemetry::FlightKind::None;
  uint64_t A = 0, B = 0, C = 0;
};

/// How the tester provisions environments.
enum class EnvironmentMode {
  PerJvm, ///< Each profile ships its own runtime library (Definition 1).
  Shared, ///< One library for all profiles (Definition 2 defect hunting).
};

/// The outcome of one classfile across all profiles.
struct DiffOutcome {
  std::vector<int> Encoded;      ///< One 0..4 code per JVM.
  std::vector<JvmResult> Results; ///< Full per-JVM results.
  /// Per-profile coverage tracefiles, filled only when the tester was
  /// constructed with CollectCoverage (empty otherwise). One entry per
  /// JVM, in policy order; feeds the δ-diversity tuple of §2.2.3's
  /// [dd-coarse]/[dd-fine] extensions.
  std::vector<Tracefile> Traces;
  /// Flight events observed during the run, deferred until the caller
  /// commits them (see DeferredFlightEvent). Empty when the recorder is
  /// disarmed.
  std::vector<DeferredFlightEvent> FlightEvents;
  /// True when the tester's tier-diff pair (same policy, interpreter vs
  /// baseline tier) encoded differently -- the distinct "tier
  /// disagreement" discrepancy class. Always false without a tier pair.
  bool TierDisagreement = false;

  /// True when the encoded sequence is not constant.
  bool isDiscrepancy() const;
  /// True when any profile aborted inside the modeled VM with
  /// InternalError -- the "VM abort during differential execution"
  /// trigger for incident bundles (difftest/Incident.h).
  bool anyInternalError() const;
  /// The sequence as a string, e.g. "00012" (the Figure 3 encoding).
  std::string encodedString() const;
  /// Replays the deferred flight events into the global recorder, in
  /// observation order. Call from a deterministic commit point (one
  /// caller thread, commit order); no-op when nothing was deferred.
  void commitFlightEvents() const;
};

/// Differential tester over a fixed set of profiles and a corpus.
class DifferentialTester {
public:
  /// \p Extra holds the classes under test plus any helper classes; it
  /// is layered over each profile's runtime library.
  DifferentialTester(std::vector<ProfileDesc> Profiles,
                     const ClassPath &Extra, EnvironmentMode Mode,
                     const std::string &SharedLibVersion = "jre8");

  /// Legacy profile list: one profile per policy, named after it, run on
  /// the policy's own tier.
  DifferentialTester(std::vector<JvmPolicy> Policies,
                     const ClassPath &Extra, EnvironmentMode Mode,
                     const std::string &SharedLibVersion = "jre8");

  /// Convenience: the paper's five JVMs.
  static DifferentialTester
  withAllProfiles(const ClassPath &Extra, EnvironmentMode Mode,
                  const std::string &SharedLibVersion = "jre8");

  /// The paper's five JVMs, every profile forced onto \p Tier. With
  /// \p TierDiff two more profiles are appended -- the reference policy
  /// on the threaded-interpreter and baseline tiers, named
  /// "<ref>~threaded" / "<ref>~baseline" -- and registered as the tier
  /// pair whose disagreement sets DiffOutcome::TierDisagreement.
  static DifferentialTester
  withTieredProfiles(const ClassPath &Extra, EnvironmentMode Mode,
                     ExecTier Tier, bool TierDiff,
                     const std::string &SharedLibVersion = "jre8");

  /// When enabled, every profile's run attaches a CoverageRecorder and
  /// the resulting tracefiles land in DiffOutcome::Traces. Off by
  /// default: coverage collection costs probe dispatch on every
  /// statement/branch of every profile.
  void setCollectCoverage(bool Enable) { CollectCoverage = Enable; }
  bool collectCoverage() const { return CollectCoverage; }

  /// Runs `java <Name>` on every profile.
  ///
  /// Thread-safe: the per-profile environments are frozen at
  /// construction, and each call works on an O(1) copy-on-write
  /// ClassPath copy plus a call-local Vm. The reducer's parallel probe
  /// lanes (`--reduce-jobs`) rely on this to invoke one tester
  /// concurrently from many workers. Flight-recorder events are never
  /// written from inside the call: they are deferred into the returned
  /// DiffOutcome, and only the caller's commitFlightEvents() -- invoked
  /// at a deterministic commit point -- touches the global sequence
  /// stream.
  DiffOutcome testClass(const std::string &Name) const;

  /// Runs a class not present in the corpus by overlaying its bytes.
  /// Thread-safe under the same contract as testClass(Name).
  DiffOutcome testClass(const std::string &Name, const Bytes &Data) const;

  /// The profile table, in run order.
  const std::vector<ProfileDesc> &profiles() const { return Profiles; }

  /// Legacy view of the profile table: each entry is the profile's
  /// policy with its Name and Tier overridden by the profile's, so
  /// `policies()[I].Name` prints tier-qualified names for tier-diff
  /// profiles.
  const std::vector<JvmPolicy> &policies() const { return PolicyView; }

  /// Indices of the tier-diff pair, when one was registered.
  const std::optional<std::pair<size_t, size_t>> &tierPair() const {
    return TierPair;
  }

private:
  /// Shared run-and-encode loop; \p Data overlays the environments when
  /// non-null.
  DiffOutcome runProfiles(const std::string &Name, const Bytes *Data) const;

  std::vector<ProfileDesc> Profiles;
  std::vector<JvmPolicy> PolicyView; ///< policies() compatibility view.
  std::vector<ClassPath> Envs;       ///< One per profile.
  std::optional<std::pair<size_t, size_t>> TierPair;
  bool CollectCoverage = false;
};

/// Aggregate statistics over a set of outcomes (the Table 6 rows).
struct DiffStats {
  size_t Total = 0;
  size_t AllInvoked = 0;
  size_t AllRejectedSameStage = 0;
  size_t Discrepancies = 0;
  /// Encoded sequence -> count; its size is |Distinct_Discrepancies|.
  std::map<std::string, size_t> DistinctDiscrepancies;
  /// Per-JVM phase counters (the Table 7 rows): [jvm][encoded 0..4].
  std::vector<std::array<size_t, 5>> PhaseCounts;
  /// Encoded outcomes outside 0..4 seen by add(); such codes are clamped
  /// into range instead of indexing out of bounds.
  size_t EncodingErrors = 0;
  /// Outcomes whose tier-diff pair disagreed (DiffOutcome::
  /// TierDisagreement); 0 for testers without a tier pair.
  size_t TierDisagreements = 0;

  void add(const DiffOutcome &Outcome);
  /// Folds another stats object into this one, so sharded differential
  /// runs can each keep local stats and combine them at the end.
  /// Commutative and associative; merging equals adding every outcome
  /// to one object.
  void merge(const DiffStats &Other);
  /// The diff rate |Discrepancies| / |Classes| in percent.
  double diffRatePercent() const;
};

} // namespace classfuzz

#endif // CLASSFUZZ_DIFFTEST_DIFFTEST_H
