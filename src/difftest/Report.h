//===- difftest/Report.h - Discrepancy report rendering ------------------===//
//
// Part of classfuzz-cpp (PLDI 2016 classfuzz reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders a human-readable (markdown) report of the discrepancies a
/// campaign found -- the artifact an engineer attaches to JVM bug
/// reports after §2.3 reduction. One section per distinct discrepancy
/// category (encoded sequence), listing per-JVM behavior and example
/// classfiles with their provenance.
///
//===----------------------------------------------------------------------===//

#ifndef CLASSFUZZ_DIFFTEST_REPORT_H
#define CLASSFUZZ_DIFFTEST_REPORT_H

#include "difftest/DiffTest.h"

#include <string>
#include <vector>

namespace classfuzz {

/// One discrepancy-triggering classfile with provenance.
struct DiscrepancyRecord {
  std::string ClassName;
  DiffOutcome Outcome;
  /// How the classfile was produced ("Select a method and rename it"),
  /// empty for seeds/library classes.
  std::string Provenance;
};

/// Renders a markdown report: summary statistics, then one section per
/// distinct category with up to \p ExamplesPerCategory examples.
std::string renderDiscrepancyReport(
    const std::vector<JvmPolicy> &Policies,
    const std::vector<DiscrepancyRecord> &Records, const DiffStats &Stats,
    size_t ExamplesPerCategory = 3);

} // namespace classfuzz

#endif // CLASSFUZZ_DIFFTEST_REPORT_H
