//===- difftest/Incident.cpp -----------------------------------------------===//

#include "difftest/Incident.h"

#include "support/Hashing.h"
#include "telemetry/FlightRecorder.h"
#include "telemetry/Telemetry.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

using namespace classfuzz;

std::string classfuzz::outcomesJson(const Incident &Inc) {
  namespace tel = classfuzz::telemetry;
  const DiffOutcome &O = Inc.Outcome;
  std::string J = "{\n";
  J += "  \"class\": \"" + tel::jsonEscape(Inc.MutantName) + "\",\n";
  J += "  \"encoded\": \"" + O.encodedString() + "\",\n";
  J += std::string("  \"discrepancy\": ") +
       (O.isDiscrepancy() ? "true" : "false") + ",\n";
  J += std::string("  \"internal_error\": ") +
       (O.anyInternalError() ? "true" : "false") + ",\n";
  J += std::string("  \"tier_disagreement\": ") +
       (O.TierDisagreement ? "true" : "false") + ",\n";
  J += "  \"profiles\": [";
  for (size_t I = 0; I != O.Results.size(); ++I) {
    const JvmResult &R = O.Results[I];
    J += I == 0 ? "\n" : ",\n";
    J += "    {\"name\": \"" +
         tel::jsonEscape(I < Inc.ProfileNames.size() ? Inc.ProfileNames[I]
                                                     : "?") +
         "\",\n";
    J += "     \"tier\": \"" +
         tel::jsonEscape(I < Inc.ProfileTiers.size() &&
                                 !Inc.ProfileTiers[I].empty()
                             ? Inc.ProfileTiers[I]
                             : "threaded") +
         "\",\n";
    J += "     \"encoded\": " +
         std::to_string(I < O.Encoded.size() ? O.Encoded[I] : -1) + ",\n";
    J += std::string("     \"invoked\": ") + (R.Invoked ? "true" : "false") +
         ",\n";
    J += "     \"phase\": \"" + std::string(phaseName(R.Phase)) + "\",\n";
    J += "     \"error\": \"" + std::string(errorKindName(R.Error)) + "\",\n";
    J += "     \"message\": \"" + tel::jsonEscape(R.Message) + "\",\n";
    J += "     \"output\": [";
    for (size_t L = 0; L != R.Output.size(); ++L)
      J += (L ? ", \"" : "\"") + tel::jsonEscape(R.Output[L]) + "\"";
    J += "]}";
  }
  J += O.Results.empty() ? "]\n" : "\n  ]\n";
  J += "}\n";
  return J;
}

namespace {

Result<bool> writeBundleFile(const std::filesystem::path &Path,
                             const void *Data, size_t Size) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  if (!Out)
    return makeError("cannot open " + Path.string() + " for writing");
  Out.write(static_cast<const char *>(Data),
            static_cast<std::streamsize>(Size));
  Out.flush();
  if (!Out)
    return makeError("short write to " + Path.string());
  return true;
}

Result<bool> writeBundleFile(const std::filesystem::path &Path,
                             const std::string &Text) {
  return writeBundleFile(Path, Text.data(), Text.size());
}

Result<bool> writeBundleFile(const std::filesystem::path &Path,
                             const Bytes &Data) {
  return writeBundleFile(Path, Data.data(), Data.size());
}

} // namespace

Result<std::string> classfuzz::writeIncidentBundle(const std::string &Dir,
                                                   size_t Index,
                                                   const Incident &Inc) {
  namespace fs = std::filesystem;
  namespace tel = classfuzz::telemetry;

  char Name[64];
  std::snprintf(Name, sizeof(Name), "%s-%04zu-%s",
                Inc.SelfCheck ? "selfcheck" : "incident", Index,
                Inc.Outcome.encodedString().c_str());
  fs::path Bundle = fs::path(Dir) / Name;
  std::error_code Ec;
  fs::create_directories(Bundle, Ec);
  if (Ec)
    return makeError("cannot create " + Bundle.string() + ": " +
                     Ec.message());

  if (auto R = writeBundleFile(Bundle / "mutant.class", Inc.MutantData); !R)
    return makeError(R.error());
  if (auto R = writeBundleFile(
          Bundle / "lineage.json",
          lineageJson(Inc.Prov, Inc.Env, Inc.MutantName,
                      Inc.Outcome.encodedString()));
      !R)
    return makeError(R.error());
  if (auto R = writeBundleFile(Bundle / "outcomes.json", outcomesJson(Inc));
      !R)
    return makeError(R.error());

  // Path-independent, so the script is byte-identical across bundles:
  // replay resolves everything relative to the bundle directory.
  const std::string Script =
      "#!/bin/sh\n"
      "# Re-derives mutant.class from lineage.json and re-runs the\n"
      "# differential test. Requires classfuzz on PATH.\n"
      "cd \"$(dirname \"$0\")\" && exec classfuzz replay .\n";
  fs::path ScriptPath = Bundle / "replay.sh";
  if (auto R = writeBundleFile(ScriptPath, Script); !R)
    return makeError(R.error());
  fs::permissions(ScriptPath,
                  fs::perms::owner_exec | fs::perms::group_exec |
                      fs::perms::others_exec,
                  fs::perm_options::add, Ec);

  if (Inc.HasReduced)
    if (auto R = writeBundleFile(Bundle / "reduced.class", Inc.Reduced); !R)
      return makeError(R.error());

  if (!Inc.AnalysisJson.empty())
    if (auto R = writeBundleFile(Bundle / "analysis.json", Inc.AnalysisJson);
        !R)
      return makeError(R.error());

  tel::FlightRecorder &FR = tel::flightRecorder();
  if (FR.enabled() && Inc.FlightTail) {
    std::string Jsonl =
        tel::FlightRecorder::renderJsonl(FR.snapshot(Inc.FlightTail));
    if (auto R = writeBundleFile(Bundle / "flightrec.jsonl", Jsonl); !R)
      return makeError(R.error());
  }

  Hasher H;
  H.addString(Inc.MutantName);
  FR.record(tel::FlightKind::IncidentDumped, Index, H.value());
  return Bundle.string();
}
