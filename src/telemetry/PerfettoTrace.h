//===- telemetry/PerfettoTrace.h - Chrome/Perfetto trace export ----------===//
//
// Part of classfuzz-cpp (PLDI 2016 classfuzz reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Span collection for the --trace-perfetto exporter. Named PhaseTimers
/// (telemetry/Telemetry.h) append completed spans here when the
/// collector is armed; writeChromeTrace() renders them in the Chrome
/// trace-event JSON format, one track per thread lane, which
/// ui.perfetto.dev (and chrome://tracing) load directly. With --jobs N
/// the speculative coverage executions land on worker lanes while
/// mutate/commit stay on lane 0, making the pipeline overlap visible.
///
/// Observation-only like the rest of telemetry: spans are appended
/// under a mutex at PhaseTimer granularity (microseconds to
/// milliseconds apart), never read back during the run, and the
/// collector is idle-free -- PhaseTimer::stop checks one relaxed atomic
/// before touching it.
///
//===----------------------------------------------------------------------===//

#ifndef CLASSFUZZ_TELEMETRY_PERFETTOTRACE_H
#define CLASSFUZZ_TELEMETRY_PERFETTOTRACE_H

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace classfuzz {
namespace telemetry {

/// One completed span on a thread lane; times are steady-clock
/// nanoseconds.
struct TraceSpan {
  const char *Name; ///< Static string from the PhaseTimer site.
  uint32_t Lane;
  uint64_t StartNs;
  uint64_t EndNs;
};

/// Arms span collection (clears previously collected spans).
void enableSpanCollection();
/// Disarms and drops all collected spans.
void disableSpanCollection();

/// All spans collected since enableSpanCollection(), in completion
/// order.
std::vector<TraceSpan> collectedSpans();

/// Renders \p Spans as a Chrome trace-event JSON document:
/// {"traceEvents":[...]} with one complete ("ph":"X") event per span,
/// thread_name metadata per lane, and timestamps rebased to the
/// earliest span. Loads in ui.perfetto.dev.
std::string renderChromeTrace(const std::vector<TraceSpan> &Spans);

/// Convenience: renderChromeTrace(collectedSpans()) written to \p F.
/// Returns false when the write fails.
bool writeChromeTrace(std::FILE *F);

} // namespace telemetry
} // namespace classfuzz

#endif // CLASSFUZZ_TELEMETRY_PERFETTOTRACE_H
