//===- telemetry/Telemetry.cpp ---------------------------------------------===//

#include "telemetry/Telemetry.h"

#include <algorithm>
#include <bit>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <sstream>

using namespace classfuzz;
using namespace classfuzz::telemetry;

// ---- Histogram ------------------------------------------------------------

namespace {

/// Bucket index of a sample: 0 for {0,1}, else 1 + floor(log2(S)), so
/// bucket B holds [2^(B-1), 2^B) and percentileUpperBound's 2^B is a
/// true upper bound. The top bucket absorbs the overflow range.
size_t bucketOf(uint64_t Sample) {
  if (Sample <= 1)
    return 0;
  return std::min<size_t>(Histogram::NumBuckets - 1,
                          static_cast<size_t>(std::bit_width(Sample)));
}

} // namespace

void Histogram::record(uint64_t Sample) {
  Buckets[bucketOf(Sample)].fetch_add(1, std::memory_order_relaxed);
  Count.fetch_add(1, std::memory_order_relaxed);
  Sum.fetch_add(Sample, std::memory_order_relaxed);
  uint64_t CurMin = Min.load(std::memory_order_relaxed);
  while (Sample < CurMin && !Min.compare_exchange_weak(
                                CurMin, Sample, std::memory_order_relaxed))
    ;
  uint64_t CurMax = Max.load(std::memory_order_relaxed);
  while (Sample > CurMax && !Max.compare_exchange_weak(
                                CurMax, Sample, std::memory_order_relaxed))
    ;
}

uint64_t Histogram::min() const {
  uint64_t V = Min.load(std::memory_order_relaxed);
  return V == UINT64_MAX ? 0 : V;
}

double Histogram::mean() const {
  uint64_t N = count();
  return N == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(N);
}

uint64_t Histogram::percentileUpperBound(double Q) const {
  uint64_t N = count();
  if (N == 0)
    return 0;
  Q = std::clamp(Q, 0.0, 1.0);
  // Rank of the quantile sample, 1-based.
  uint64_t Target = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(Q * static_cast<double>(N))));
  uint64_t Seen = 0;
  for (size_t B = 0; B != NumBuckets; ++B) {
    Seen += Buckets[B].load(std::memory_order_relaxed);
    if (Seen >= Target)
      return B == 0 ? 1 : (B >= 63 ? UINT64_MAX : (uint64_t{1} << B));
  }
  return max();
}

uint64_t Histogram::quantile(double Q) const {
  uint64_t N = count();
  if (N == 0)
    return 0;
  Q = std::clamp(Q, 0.0, 1.0);
  uint64_t Target = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(Q * static_cast<double>(N))));
  uint64_t Seen = 0;
  for (size_t B = 0; B != NumBuckets; ++B) {
    uint64_t InBucket = Buckets[B].load(std::memory_order_relaxed);
    if (InBucket == 0)
      continue;
    if (Seen + InBucket < Target) {
      Seen += InBucket;
      continue;
    }
    // The target rank falls in bucket B: interpolate its position
    // within the bucket's value range [Lo, Hi].
    double Lo = B == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(B) - 1);
    double Hi = B == 0   ? 1.0
                : B >= 63 ? static_cast<double>(max())
                          : std::ldexp(1.0, static_cast<int>(B));
    double Fraction = static_cast<double>(Target - Seen) /
                      static_cast<double>(InBucket);
    double V = Lo + (Hi - Lo) * Fraction;
    uint64_t Out = static_cast<uint64_t>(V);
    // Interpolation cannot beat the exact extremes.
    return std::clamp(Out, min(), max());
  }
  return max();
}

void Histogram::reset() {
  for (auto &B : Buckets)
    B.store(0, std::memory_order_relaxed);
  Count.store(0, std::memory_order_relaxed);
  Sum.store(0, std::memory_order_relaxed);
  Min.store(UINT64_MAX, std::memory_order_relaxed);
  Max.store(0, std::memory_order_relaxed);
}

// ---- CounterGrid ----------------------------------------------------------

CounterGrid::CounterGrid(size_t Rows, size_t Cols, LabelFn RowLabel,
                         LabelFn ColLabel)
    : Rows(Rows), Cols(Cols), RowLabel(std::move(RowLabel)),
      ColLabel(std::move(ColLabel)),
      Cells(new std::atomic<uint64_t>[Rows * Cols]) {
  for (size_t I = 0; I != Rows * Cols; ++I)
    Cells[I].store(0, std::memory_order_relaxed);
}

void CounterGrid::reset() {
  for (size_t I = 0; I != Rows * Cols; ++I)
    Cells[I].store(0, std::memory_order_relaxed);
}

// ---- MetricRegistry -------------------------------------------------------

Counter &MetricRegistry::counter(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(M);
  auto &Slot = Counters[Name];
  if (!Slot)
    Slot = std::make_unique<Counter>();
  return *Slot;
}

Gauge &MetricRegistry::gauge(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(M);
  auto &Slot = Gauges[Name];
  if (!Slot)
    Slot = std::make_unique<Gauge>();
  return *Slot;
}

Histogram &MetricRegistry::histogram(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(M);
  auto &Slot = Histograms[Name];
  if (!Slot)
    Slot = std::make_unique<Histogram>();
  return *Slot;
}

CounterGrid &MetricRegistry::grid(const std::string &Name, size_t Rows,
                                  size_t Cols,
                                  CounterGrid::LabelFn RowLabel,
                                  CounterGrid::LabelFn ColLabel) {
  std::lock_guard<std::mutex> Lock(M);
  auto &Slot = Grids[Name];
  if (!Slot)
    Slot = std::make_unique<CounterGrid>(Rows, Cols, std::move(RowLabel),
                                         std::move(ColLabel));
  return *Slot;
}

namespace {

void appendJsonNumber(std::ostringstream &OS, double V) {
  // JSON has no NaN/Inf; clamp to null-ish zero.
  if (!std::isfinite(V)) {
    OS << 0;
    return;
  }
  OS << V;
}

std::vector<std::string> splitPrefixList(const std::string &List) {
  std::vector<std::string> Out;
  size_t Start = 0;
  while (Start <= List.size()) {
    size_t Comma = List.find(',', Start);
    if (Comma == std::string::npos)
      Comma = List.size();
    if (Comma > Start)
      Out.push_back(List.substr(Start, Comma - Start));
    Start = Comma + 1;
  }
  return Out;
}

bool startsWithAny(const std::string &Name,
                   const std::vector<std::string> &Prefixes) {
  for (const std::string &P : Prefixes)
    if (Name.compare(0, P.size(), P) == 0)
      return true;
  return false;
}

} // namespace

std::string
MetricRegistry::snapshotJson(const std::string &NamePrefixes) const {
  return snapshotJson(splitPrefixList(NamePrefixes));
}

std::string
MetricRegistry::snapshotJson(const std::vector<std::string> &Prefixes) const {
  std::lock_guard<std::mutex> Lock(M);
  auto Selected = [&Prefixes](const std::string &Name) {
    return Prefixes.empty() || startsWithAny(Name, Prefixes);
  };
  std::ostringstream OS;
  OS << "{";

  OS << "\"counters\":{";
  bool First = true;
  for (const auto &[Name, C] : Counters) {
    if (!Selected(Name))
      continue;
    OS << (First ? "" : ",") << "\"" << jsonEscape(Name)
       << "\":" << C->value();
    First = false;
  }
  OS << "},";

  OS << "\"gauges\":{";
  First = true;
  for (const auto &[Name, G] : Gauges) {
    if (!Selected(Name))
      continue;
    OS << (First ? "" : ",") << "\"" << jsonEscape(Name)
       << "\":" << G->value();
    First = false;
  }
  OS << "},";

  OS << "\"histograms\":{";
  First = true;
  for (const auto &[Name, H] : Histograms) {
    if (!Selected(Name))
      continue;
    OS << (First ? "" : ",") << "\"" << jsonEscape(Name) << "\":{"
       << "\"count\":" << H->count() << ",\"sum\":" << H->sum()
       << ",\"min\":" << H->min() << ",\"max\":" << H->max()
       << ",\"mean\":";
    appendJsonNumber(OS, H->mean());
    OS << ",\"p50\":" << H->quantile(0.50) << ",\"p90\":" << H->quantile(0.90)
       << ",\"p99\":" << H->quantile(0.99) << "}";
    First = false;
  }
  OS << "},";

  OS << "\"grids\":{";
  First = true;
  for (const auto &[Name, G] : Grids) {
    if (!Selected(Name))
      continue;
    OS << (First ? "" : ",") << "\"" << jsonEscape(Name) << "\":{";
    bool FirstCell = true;
    for (size_t Row = 0; Row != G->rows(); ++Row) {
      for (size_t Col = 0; Col != G->cols(); ++Col) {
        uint64_t V = G->value(Row, Col);
        if (V == 0)
          continue;
        OS << (FirstCell ? "" : ",") << "\""
           << jsonEscape(G->rowLabel(Row)) << "."
           << jsonEscape(G->colLabel(Col)) << "\":" << V;
        FirstCell = false;
      }
    }
    OS << "}";
    First = false;
  }
  OS << "}";

  OS << "}";
  return OS.str();
}

std::map<std::string, int64_t> MetricRegistry::scalarValues(
    const std::vector<std::string> &Prefixes,
    const std::vector<std::string> &ExcludePrefixes) const {
  std::lock_guard<std::mutex> Lock(M);
  auto Selected = [&](const std::string &Name) {
    return (Prefixes.empty() || startsWithAny(Name, Prefixes)) &&
           !startsWithAny(Name, ExcludePrefixes);
  };
  std::map<std::string, int64_t> Out;
  for (const auto &[Name, C] : Counters)
    if (Selected(Name))
      Out[Name] = static_cast<int64_t>(C->value());
  for (const auto &[Name, G] : Gauges)
    if (Selected(Name))
      Out[Name] = G->value();
  return Out;
}

void MetricRegistry::reset() {
  std::lock_guard<std::mutex> Lock(M);
  for (auto &[Name, C] : Counters)
    C->reset();
  for (auto &[Name, G] : Gauges)
    G->reset();
  for (auto &[Name, H] : Histograms)
    H->reset();
  for (auto &[Name, G] : Grids)
    G->reset();
}

MetricRegistry &telemetry::metrics() {
  static MetricRegistry Registry;
  return Registry;
}

// ---- events ---------------------------------------------------------------

FileEventSink::~FileEventSink() {
  if (F && Close && F != stdout && F != stderr) {
    // The global sink can be torn down after the registry during static
    // destruction, so this path must not touch metrics.
    if (std::fclose(F) != 0)
      reportFailure("fclose", /*TouchMetrics=*/false);
  }
  uint64_t N = Dropped.load(std::memory_order_relaxed);
  if (N != 0)
    std::fprintf(stderr, "telemetry: dropped %llu event(s) after %s failed\n",
                 static_cast<unsigned long long>(N), Description.c_str());
}

void FileEventSink::write(const std::string &JsonObject) {
  std::lock_guard<std::mutex> Lock(M);
  if (!F)
    return;
  if (Failed.load(std::memory_order_relaxed)) {
    Dropped.fetch_add(1, std::memory_order_relaxed);
    if (enabled())
      metrics().counter("telemetry.sink_dropped_events").inc();
    return;
  }
  if (std::fwrite(JsonObject.data(), 1, JsonObject.size(), F) !=
          JsonObject.size() ||
      std::fputc('\n', F) == EOF) {
    reportFailure("fwrite", /*TouchMetrics=*/true);
    Dropped.fetch_add(1, std::memory_order_relaxed);
    if (enabled())
      metrics().counter("telemetry.sink_dropped_events").inc();
  }
}

void FileEventSink::reportFailure(const char *Op, bool TouchMetrics) {
  if (TouchMetrics && enabled())
    metrics().gauge("telemetry.sink_failed").set(1);
  // Latch first so concurrent writers race to at most one report.
  if (Failed.exchange(true, std::memory_order_relaxed))
    return;
  std::fprintf(stderr,
               "telemetry: %s failed on %s (%s); further events will be "
               "dropped\n",
               Op, Description.c_str(),
               errno != 0 ? std::strerror(errno) : "unknown error");
}

namespace {
std::unique_ptr<EventSink> GlobalSink;
} // namespace

void telemetry::setEventSink(std::unique_ptr<EventSink> Sink) {
  GlobalSink = std::move(Sink);
}

EventSink *telemetry::eventSink() { return GlobalSink.get(); }

std::string telemetry::jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x",
                      static_cast<unsigned>(static_cast<unsigned char>(C)));
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

EventBuilder::EventBuilder(const char *Type) {
  Json = "{\"type\":\"";
  Json += jsonEscape(Type);
  Json += "\"";
}

EventBuilder &EventBuilder::field(const char *Key, const std::string &Value) {
  Json += ",\"";
  Json += jsonEscape(Key);
  Json += "\":\"";
  Json += jsonEscape(Value);
  Json += "\"";
  return *this;
}

EventBuilder &EventBuilder::field(const char *Key, const char *Value) {
  return field(Key, std::string(Value));
}

EventBuilder &EventBuilder::field(const char *Key, uint64_t Value) {
  Json += ",\"";
  Json += jsonEscape(Key);
  Json += "\":";
  Json += std::to_string(Value);
  return *this;
}

EventBuilder &EventBuilder::field(const char *Key, int64_t Value) {
  Json += ",\"";
  Json += jsonEscape(Key);
  Json += "\":";
  Json += std::to_string(Value);
  return *this;
}

EventBuilder &EventBuilder::field(const char *Key, double Value) {
  Json += ",\"";
  Json += jsonEscape(Key);
  Json += "\":";
  if (std::isfinite(Value)) {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%.6g", Value);
    Json += Buf;
  } else {
    Json += "0";
  }
  return *this;
}

EventBuilder &EventBuilder::field(const char *Key, bool Value) {
  Json += ",\"";
  Json += jsonEscape(Key);
  Json += "\":";
  Json += Value ? "true" : "false";
  return *this;
}

void EventBuilder::emit() {
  if (EventSink *Sink = eventSink())
    Sink->write(Json + "}");
}
