//===- telemetry/TimeSeries.cpp -------------------------------------------===//

#include "telemetry/TimeSeries.h"

#include "telemetry/Telemetry.h"

using namespace classfuzz;
using namespace classfuzz::telemetry;

TimeSeriesSampler::TimeSeriesSampler(Options Opts, std::FILE *Stream)
    : Opts(std::move(Opts)), Stream(Stream) {
  if (this->Opts.SampleEvery == 0)
    this->Opts.SampleEvery = 1;
}

TimeSeriesSampler::~TimeSeriesSampler() {
  if (Stream)
    std::fclose(Stream);
}

void TimeSeriesSampler::onCommit(uint64_t CommittedIterations) {
  if (Finished || CommittedIterations == 0 ||
      CommittedIterations % Opts.SampleEvery != 0)
    return;
  sample(CommittedIterations, /*Final=*/false);
}

void TimeSeriesSampler::finish(uint64_t CommittedIterations) {
  if (Finished)
    return;
  sample(CommittedIterations, /*Final=*/true);
  Finished = true;
  if (Stream) {
    std::fclose(Stream);
    Stream = nullptr;
  }
}

void TimeSeriesSampler::sample(uint64_t Iter, bool Final) {
  std::map<std::string, int64_t> Now =
      metrics().scalarValues(Opts.Prefixes, Opts.ExcludePrefixes);

  std::string Row = "{\"type\":\"ts\",\"iter\":" + std::to_string(Iter);
  if (Final)
    Row += ",\"final\":true";
  Row += ",\"m\":{";
  bool First = true;
  for (const auto &[Name, V] : Now) {
    auto It = Last.find(Name);
    if (It != Last.end() && It->second == V)
      continue; // delta encoding: unchanged keys are omitted
    if (It == Last.end() && V == 0)
      continue; // never-seen zeros carry no information
    if (!First)
      Row += ",";
    First = false;
    Row += "\"" + jsonEscape(Name) + "\":" + std::to_string(V);
  }
  Row += "}}";

  Last = std::move(Now);
  Rows.push_back(Row);
  if (Stream) {
    std::fputs(Row.c_str(), Stream);
    std::fputc('\n', Stream);
    std::fflush(Stream);
  }
}

SaturationDetector::SaturationDetector(Options Opts) : Opts(std::move(Opts)) {
  if (this->Opts.Window == 0)
    this->Opts.Window = 1;
  Ring.assign(this->Opts.Window, 0);
}

bool SaturationDetector::onCommit(const Signals &S) {
  ++Commits;
  uint64_t Discoveries = S.NewBranches + S.NewTuples + S.Discrepancies;
  InWindow -= Ring[Next];
  Ring[Next] = Discoveries;
  InWindow += Discoveries;
  Next = (Next + 1) % Ring.size();
  if (Next == 0)
    Full = true;
  if (Latched || !Full || InWindow >= Opts.MinDiscoveries)
    return false;
  Latched = true;
  PlateauIter = Commits;
  return true;
}

double SaturationDetector::discoveryRatePerK() const {
  size_t Span = Full ? Ring.size() : Next;
  if (Span == 0)
    return 0.0;
  return 1000.0 * static_cast<double>(InWindow) / static_cast<double>(Span);
}
