//===- telemetry/FlightRecorder.h - Lock-free event ring buffers ---------===//
//
// Part of classfuzz-cpp (PLDI 2016 classfuzz reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The flight recorder: fixed-capacity lock-free ring buffers of recent
/// compact telemetry events, one ring per thread lane, merged on dump.
/// Incident bundles (difftest/Incident.h) embed the tail of the merged
/// stream so a discrepancy arrives with the campaign's last moments
/// attached (DESIGN.md §9).
///
/// Contract:
///
///  * **One relaxed load when disabled.** record() is inline and checks
///    a single relaxed atomic flag before touching anything else; a
///    disabled recorder costs nothing beyond that load (benchmarked by
///    bench_micro_flightrecorder).
///  * **Wait-free when enabled.** Each thread owns a lane (registered on
///    first record); writing an event is a global sequence fetch_add
///    plus five relaxed word stores into the lane's ring. No locks, no
///    allocation after lane registration, no clock read -- events are
///    ordered by sequence number, not wall time, so dumps taken from
///    deterministic record sites are byte-identical across runs and
///    --jobs values.
///  * **Bounded.** Rings hold the most recent `capacity` events per
///    lane; older entries are overwritten. snapshot() merges all lanes
///    in global sequence order. Concurrent writers can tear an entry
///    mid-overwrite; snapshot discards entries whose sequence stamp is
///    inconsistent instead of reporting garbage.
///
//===----------------------------------------------------------------------===//

#ifndef CLASSFUZZ_TELEMETRY_FLIGHTRECORDER_H
#define CLASSFUZZ_TELEMETRY_FLIGHTRECORDER_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace classfuzz {
namespace telemetry {

/// Small dense integer id for the calling thread, assigned on first
/// use: the process main thread (or whichever thread asks first) gets
/// lane 0, workers get 1, 2, ... Lanes are never reused; both the
/// flight recorder and the Perfetto exporter key per-thread tracks off
/// this id.
uint32_t threadLane();

/// What a flight event describes. Payload words A/B/C are
/// kind-specific; flightEventFieldNames() documents them for rendering.
enum class FlightKind : uint16_t {
  None = 0,
  /// Campaign iteration committed: A=iteration, B=mutator index,
  /// C=packed outcome (bit0 produced, bit1 representative, bits8..15
  /// MutationResult).
  Iteration,
  /// Mutant accepted into TestClasses: A=iteration, B=GenClasses index,
  /// C=FNV-1a hash of the mutant bytes.
  Accepted,
  /// Parallel pipeline rollback: A=iteration, B=in-flight iterations
  /// discarded. The campaign driver does NOT record this kind:
  /// speculation depth is a --jobs/timing artifact, and the flight
  /// stream feeds incident bundles that must stay byte-identical
  /// across --jobs values. Available for ad-hoc instrumentation.
  SpecRollback,
  /// Differential outcome: A=encoded sequence packed as decimal digits
  /// (first profile in the most significant digit), B=1 when a
  /// discrepancy, C=FNV-1a hash of the class name.
  DiffOutcome,
  /// A profile aborted inside the modeled VM with InternalError during
  /// differential execution: A=profile index, B=JvmPhase, C=FNV-1a hash
  /// of the class name.
  VmInternalError,
  /// Reducer oracle query committed: A=query index, B=candidate size in
  /// bytes, C=1 when the candidate kept the discrepancy.
  ReducerQuery,
  /// Reducer kept a deletion: A=hierarchy level (0 methods, 1 fields,
  /// 2 interfaces, 3 throws, 4 statements), B=flattened start index,
  /// C=elements deleted.
  ReducerKept,
  /// Incident bundle written: A=incident index, B=FNV-1a hash of the
  /// class name.
  IncidentDumped,
  /// Tier-diff pair disagreement (same policy, interpreter vs baseline
  /// tier): A=interpreter-tier encoded phase, B=baseline-tier encoded
  /// phase, C=FNV-1a hash of the class name.
  TierDisagreement,
};

const char *flightKindName(FlightKind Kind);
/// Field names of A/B/C for \p Kind (always three entries; unused
/// fields are named "-" and omitted from renderings).
const char *const *flightEventFieldNames(FlightKind Kind);

/// One recorded event, as returned by snapshot().
struct FlightEvent {
  uint64_t Seq = 0; ///< Global record order (deterministic sites only).
  uint32_t Lane = 0;
  FlightKind Kind = FlightKind::None;
  uint64_t A = 0, B = 0, C = 0;
};

/// The recorder. One process-wide instance (flightRecorder()); the CLI
/// arms it for --incidents runs.
class FlightRecorder {
public:
  /// Arms the recorder with rings of \p CapacityPerLane events
  /// (rounded up to a power of two, min 16). Existing lane contents are
  /// discarded. Not thread-safe against concurrent record(); arm
  /// before the run.
  void enable(size_t CapacityPerLane = 1024);
  /// Disarms and drops all recorded events.
  void disable();
  bool enabled() const { return Enabled.load(std::memory_order_relaxed); }

  /// Records one event. The disabled path is exactly one relaxed load.
  void record(FlightKind Kind, uint64_t A = 0, uint64_t B = 0,
              uint64_t C = 0) {
    if (!Enabled.load(std::memory_order_relaxed))
      return;
    recordEnabled(Kind, A, B, C);
  }

  /// Merges every lane's surviving events in global sequence order,
  /// keeping only the last \p LastN (0 = all). Safe to call while other
  /// threads record; torn entries are dropped.
  std::vector<FlightEvent> snapshot(size_t LastN = 0) const;

  /// Renders events as JSONL, one object per line:
  /// {"seq":N,"lane":L,"kind":"...","<field>":V,...}. Stable across
  /// runs (no timestamps), so dumps from deterministic record sites are
  /// byte-identical.
  static std::string renderJsonl(const std::vector<FlightEvent> &Events);

private:
  struct Lane;

  void recordEnabled(FlightKind Kind, uint64_t A, uint64_t B, uint64_t C);
  Lane &laneForThisThread();

  std::atomic<bool> Enabled{false};
  std::atomic<uint64_t> NextSeq{0};
  /// Bumped by enable()/disable(); invalidates per-thread lane caches
  /// so a recycled recorder never serves dangling lane pointers.
  std::atomic<uint64_t> Generation{0};
  size_t Capacity = 0; ///< Power of two; fixed while enabled.
  mutable std::mutex LanesM; ///< Guards Lanes registration/iteration.
  std::vector<std::unique_ptr<Lane>> Lanes;
};

/// The process-wide recorder.
FlightRecorder &flightRecorder();

} // namespace telemetry
} // namespace classfuzz

#endif // CLASSFUZZ_TELEMETRY_FLIGHTRECORDER_H
