//===- telemetry/FlightRecorder.cpp ----------------------------------------===//

#include "telemetry/FlightRecorder.h"

#include <algorithm>
#include <bit>

using namespace classfuzz;
using namespace classfuzz::telemetry;

uint32_t telemetry::threadLane() {
  static std::atomic<uint32_t> NextLane{0};
  thread_local uint32_t Lane =
      NextLane.fetch_add(1, std::memory_order_relaxed);
  return Lane;
}

const char *telemetry::flightKindName(FlightKind Kind) {
  switch (Kind) {
  case FlightKind::None:
    return "none";
  case FlightKind::Iteration:
    return "iteration";
  case FlightKind::Accepted:
    return "accepted";
  case FlightKind::SpecRollback:
    return "spec_rollback";
  case FlightKind::DiffOutcome:
    return "diff_outcome";
  case FlightKind::VmInternalError:
    return "vm_internal_error";
  case FlightKind::ReducerQuery:
    return "reducer_query";
  case FlightKind::ReducerKept:
    return "reducer_kept";
  case FlightKind::IncidentDumped:
    return "incident_dumped";
  case FlightKind::TierDisagreement:
    return "tier_disagreement";
  }
  return "?";
}

const char *const *telemetry::flightEventFieldNames(FlightKind Kind) {
  static const char *const Iteration[] = {"iter", "mutator", "outcome"};
  static const char *const Accepted[] = {"iter", "gen_index", "class_hash"};
  static const char *const SpecRollback[] = {"iter", "discarded", "-"};
  static const char *const DiffOutcome[] = {"encoded", "discrepancy",
                                            "class_hash"};
  static const char *const VmInternal[] = {"profile", "phase", "class_hash"};
  static const char *const ReducerQuery[] = {"query", "size", "kept"};
  static const char *const ReducerKept[] = {"level", "start", "len"};
  static const char *const Incident[] = {"incident", "class_hash", "-"};
  static const char *const TierDis[] = {"interp_phase", "baseline_phase",
                                        "class_hash"};
  static const char *const Unused[] = {"-", "-", "-"};
  switch (Kind) {
  case FlightKind::Iteration:
    return Iteration;
  case FlightKind::Accepted:
    return Accepted;
  case FlightKind::SpecRollback:
    return SpecRollback;
  case FlightKind::DiffOutcome:
    return DiffOutcome;
  case FlightKind::VmInternalError:
    return VmInternal;
  case FlightKind::ReducerQuery:
    return ReducerQuery;
  case FlightKind::ReducerKept:
    return ReducerKept;
  case FlightKind::IncidentDumped:
    return Incident;
  case FlightKind::TierDisagreement:
    return TierDis;
  case FlightKind::None:
    break;
  }
  return Unused;
}

/// One ring. An entry is five atomic words; word 0 is the sequence
/// stamp (Seq + 1, 0 = never written) published with release order
/// after the payload words, seqlock-style, so a concurrent snapshot can
/// detect and drop entries torn by an in-progress overwrite.
struct FlightRecorder::Lane {
  static constexpr size_t WordsPerEntry = 5;

  explicit Lane(size_t Capacity)
      : Capacity(Capacity),
        Words(new std::atomic<uint64_t>[Capacity * WordsPerEntry]) {
    for (size_t I = 0; I != Capacity * WordsPerEntry; ++I)
      Words[I].store(0, std::memory_order_relaxed);
  }

  void push(uint64_t Seq, FlightKind Kind, uint64_t A, uint64_t B,
            uint64_t C) {
    size_t Slot = static_cast<size_t>(
                      Head.fetch_add(1, std::memory_order_relaxed)) &
                  (Capacity - 1);
    std::atomic<uint64_t> *E = &Words[Slot * WordsPerEntry];
    E[0].store(0, std::memory_order_release); // Invalidate during rewrite.
    E[1].store(static_cast<uint64_t>(Kind), std::memory_order_relaxed);
    E[2].store(A, std::memory_order_relaxed);
    E[3].store(B, std::memory_order_relaxed);
    E[4].store(C, std::memory_order_relaxed);
    E[0].store(Seq + 1, std::memory_order_release); // Publish.
  }

  void collect(uint32_t LaneId, std::vector<FlightEvent> &Out) const {
    for (size_t Slot = 0; Slot != Capacity; ++Slot) {
      const std::atomic<uint64_t> *E = &Words[Slot * WordsPerEntry];
      uint64_t Stamp = E[0].load(std::memory_order_acquire);
      if (Stamp == 0)
        continue;
      FlightEvent Ev;
      Ev.Kind = static_cast<FlightKind>(
          E[1].load(std::memory_order_relaxed));
      Ev.A = E[2].load(std::memory_order_relaxed);
      Ev.B = E[3].load(std::memory_order_relaxed);
      Ev.C = E[4].load(std::memory_order_relaxed);
      // Drop entries overwritten mid-read.
      if (E[0].load(std::memory_order_acquire) != Stamp)
        continue;
      Ev.Seq = Stamp - 1;
      Ev.Lane = LaneId;
      Out.push_back(Ev);
    }
  }

  size_t Capacity;
  std::atomic<uint64_t> Head{0};
  std::unique_ptr<std::atomic<uint64_t>[]> Words;
};

void FlightRecorder::enable(size_t CapacityPerLane) {
  // Pin the arming thread (the campaign driver) to the lowest free
  // lane before any worker can register one, so the lane ids in dumped
  // flight streams do not depend on worker startup timing.
  threadLane();
  std::lock_guard<std::mutex> Lock(LanesM);
  Capacity = std::max<size_t>(16, std::bit_ceil(CapacityPerLane));
  Lanes.clear();
  NextSeq.store(0, std::memory_order_relaxed);
  Generation.fetch_add(1, std::memory_order_relaxed);
  Enabled.store(true, std::memory_order_relaxed);
}

void FlightRecorder::disable() {
  std::lock_guard<std::mutex> Lock(LanesM);
  Enabled.store(false, std::memory_order_relaxed);
  Generation.fetch_add(1, std::memory_order_relaxed);
  Lanes.clear();
}

FlightRecorder::Lane &FlightRecorder::laneForThisThread() {
  uint32_t Id = threadLane();
  std::lock_guard<std::mutex> Lock(LanesM);
  if (Lanes.size() <= Id)
    Lanes.resize(Id + 1);
  if (!Lanes[Id])
    Lanes[Id] = std::make_unique<Lane>(Capacity);
  return *Lanes[Id];
}

void FlightRecorder::recordEnabled(FlightKind Kind, uint64_t A, uint64_t B,
                                   uint64_t C) {
  // Per-(recorder, generation, thread) lane cache: registration takes
  // the mutex once per thread per enable(); subsequent records are
  // wait-free. The generation check keeps the cached pointer from
  // dangling across enable()/disable() cycles.
  struct Cached {
    FlightRecorder *R = nullptr;
    uint64_t Gen = 0;
    Lane *L = nullptr;
  };
  thread_local Cached TL;
  uint64_t Gen = Generation.load(std::memory_order_relaxed);
  if (TL.R != this || TL.Gen != Gen || !TL.L) {
    TL.R = this;
    TL.Gen = Gen;
    TL.L = &laneForThisThread();
  }
  uint64_t Seq = NextSeq.fetch_add(1, std::memory_order_relaxed);
  TL.L->push(Seq, Kind, A, B, C);
}

std::vector<FlightEvent> FlightRecorder::snapshot(size_t LastN) const {
  std::vector<FlightEvent> Out;
  {
    std::lock_guard<std::mutex> Lock(LanesM);
    for (size_t Id = 0; Id != Lanes.size(); ++Id)
      if (Lanes[Id])
        Lanes[Id]->collect(static_cast<uint32_t>(Id), Out);
  }
  std::sort(Out.begin(), Out.end(),
            [](const FlightEvent &X, const FlightEvent &Y) {
              return X.Seq < Y.Seq;
            });
  if (LastN != 0 && Out.size() > LastN)
    Out.erase(Out.begin(), Out.end() - static_cast<ptrdiff_t>(LastN));
  return Out;
}

std::string FlightRecorder::renderJsonl(
    const std::vector<FlightEvent> &Events) {
  std::string Out;
  for (const FlightEvent &Ev : Events) {
    Out += "{\"seq\":";
    Out += std::to_string(Ev.Seq);
    Out += ",\"lane\":";
    Out += std::to_string(Ev.Lane);
    Out += ",\"kind\":\"";
    Out += flightKindName(Ev.Kind);
    Out += "\"";
    const char *const *Fields = flightEventFieldNames(Ev.Kind);
    const uint64_t Values[3] = {Ev.A, Ev.B, Ev.C};
    for (size_t I = 0; I != 3; ++I) {
      if (Fields[I][0] == '-')
        continue;
      Out += ",\"";
      Out += Fields[I];
      Out += "\":";
      Out += std::to_string(Values[I]);
    }
    Out += "}\n";
  }
  return Out;
}

FlightRecorder &telemetry::flightRecorder() {
  static FlightRecorder Recorder;
  return Recorder;
}
