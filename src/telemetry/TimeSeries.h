//===- telemetry/TimeSeries.h - Deterministic campaign time series -------===//
//
// Part of classfuzz-cpp (PLDI 2016 classfuzz reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Iteration-indexed campaign telemetry: a sampler that snapshots a
/// configurable metric-prefix set every K *committed* iterations, and a
/// windowed discovery-rate estimator that detects coverage/discrepancy
/// saturation (plateau).
///
/// Both are driven from the campaign's in-order commit stage only, and
/// both consume only jobs-invariant inputs:
///
///  * The sampler reads counters and gauges (never histograms, which
///    hold wall-clock noise) under an include-prefix set that by default
///    excludes campaign.speculation.* (whose values depend on --jobs).
///    Sampled at commit K the values reflect exactly the first K
///    committed iterations, so timeseries.jsonl is byte-identical for
///    any --jobs value -- the same determinism contract every other
///    artifact honors (CI cmp-enforces it).
///  * The saturation detector is a pure function of per-commit discovery
///    signals (new tuples, new branches, discrepancies); it never reads
///    the registry or the clock, so the plateau iteration -- and the
///    --stop-on-plateau cutoff -- is identical across --jobs too.
///
//===----------------------------------------------------------------------===//

#ifndef CLASSFUZZ_TELEMETRY_TIMESERIES_H
#define CLASSFUZZ_TELEMETRY_TIMESERIES_H

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

namespace classfuzz {
namespace telemetry {

/// Samples the scalar (counter + gauge) metrics under a prefix set every
/// K committed iterations, delta-encoding rows: a row carries only the
/// keys whose value changed since the previous row (the first row
/// carries everything non-zero). Rows accumulate in memory and, when a
/// stream is attached, append to it with a flush per row so a live
/// `classfuzz report --progress-dash` can tail the file mid-run.
class TimeSeriesSampler {
public:
  struct Options {
    /// Sample period in committed iterations.
    uint64_t SampleEvery = 64;
    /// Metric-name include prefixes. The defaults cover every
    /// jobs-invariant campaign metric family.
    std::vector<std::string> Prefixes = {"campaign.", "coverage.",
                                         "frontier.", "analysis."};
    /// Exclude prefixes, applied after the includes.
    /// campaign.speculation.* counts speculative work and rollbacks,
    /// which vary with --jobs; sampling them would break the
    /// byte-identical contract.
    std::vector<std::string> ExcludePrefixes = {"campaign.speculation."};
  };

  /// \p Stream, when non-null, receives each row as one JSONL line
  /// (flushed); owned and closed by the sampler.
  explicit TimeSeriesSampler(Options Opts, std::FILE *Stream = nullptr);
  ~TimeSeriesSampler();
  TimeSeriesSampler(const TimeSeriesSampler &) = delete;
  TimeSeriesSampler &operator=(const TimeSeriesSampler &) = delete;

  /// Called by the campaign after iteration \p CommittedIterations has
  /// fully committed (counters updated); samples when the count is a
  /// multiple of SampleEvery.
  void onCommit(uint64_t CommittedIterations);

  /// Emits one final row (marked "final":true) regardless of alignment,
  /// so the series always ends at the run's last committed iteration.
  void finish(uint64_t CommittedIterations);

  /// Every row emitted so far, in order, one JSON object per element:
  /// {"type":"ts","iter":N,"m":{changed-key:value,...}} with keys
  /// sorted.
  const std::vector<std::string> &rows() const { return Rows; }

  uint64_t sampleEvery() const { return Opts.SampleEvery; }

private:
  void sample(uint64_t Iter, bool Final);

  Options Opts;
  std::FILE *Stream;
  std::vector<std::string> Rows;
  std::map<std::string, int64_t> Last;
  bool Finished = false;
};

/// Windowed discovery-rate plateau detector. Each committed iteration
/// reports its discovery signals; once a full window of commits has
/// produced fewer than MinDiscoveries discoveries, the detector latches
/// the plateau at that iteration (it never unlatches -- the campaign
/// records campaign.plateau_at and, under --stop-on-plateau, stops).
class SaturationDetector {
public:
  struct Options {
    /// Window length in committed iterations.
    size_t Window = 256;
    /// Latch when the window holds fewer than this many discoveries.
    uint64_t MinDiscoveries = 1;
  };

  explicit SaturationDetector(Options Opts);

  /// Discovery signals of one committed iteration.
  struct Signals {
    uint64_t NewBranches = 0; ///< Frontier branches first hit here.
    uint64_t NewTuples = 0;   ///< Pool acceptance (new coverage tuple).
    uint64_t Discrepancies = 0; ///< dd/tier/analysis discrepancies.
  };

  /// Folds one commit in; returns true exactly once, on the commit that
  /// latches the plateau.
  bool onCommit(const Signals &S);

  bool plateaued() const { return Latched; }
  /// 1-based committed-iteration index at which the plateau latched;
  /// 0 when not (yet) plateaued.
  uint64_t plateauIteration() const { return PlateauIter; }
  /// Discoveries per 1000 committed iterations over the current window.
  double discoveryRatePerK() const;

private:
  Options Opts;
  std::vector<uint64_t> Ring; ///< Per-commit discovery counts.
  size_t Next = 0;
  bool Full = false;
  uint64_t InWindow = 0;
  uint64_t Commits = 0;
  bool Latched = false;
  uint64_t PlateauIter = 0;
};

} // namespace telemetry
} // namespace classfuzz

#endif // CLASSFUZZ_TELEMETRY_TIMESERIES_H
