//===- telemetry/Telemetry.h - Metrics, timers, and event traces ---------===//
//
// Part of classfuzz-cpp (PLDI 2016 classfuzz reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The observability layer: a process-wide MetricRegistry of named
/// counters, gauges, latency histograms, and dense counter grids; scoped
/// PhaseTimers; and a structured JSONL EventSink.
///
/// Design constraints (see DESIGN.md §8):
///
///  * **Observation only.** Telemetry never draws from an Rng, never
///    synchronizes stages of the campaign pipeline, and never feeds back
///    into control flow, so a campaign's committed trajectory is
///    bit-identical with telemetry enabled or disabled.
///  * **Near-zero cost when disabled.** The instrumented hot paths guard
///    on telemetry::enabled() -- one relaxed atomic load and a
///    predictable branch -- before touching any metric. PhaseTimer reads
///    no clock when disabled.
///  * **Thread-safe when enabled.** All metric mutation is relaxed
///    atomics; registration and snapshots take the registry mutex.
///    Registered metric references stay valid for the process lifetime
///    (reset() zeroes values, it never invalidates references).
///
//===----------------------------------------------------------------------===//

#ifndef CLASSFUZZ_TELEMETRY_TELEMETRY_H
#define CLASSFUZZ_TELEMETRY_TELEMETRY_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace classfuzz {
namespace telemetry {

/// True when instrumentation should record. Off by default; the CLI
/// turns it on when --stats-json / --trace-events is given.
inline std::atomic<bool> &enabledFlag() {
  static std::atomic<bool> Flag{false};
  return Flag;
}
inline bool enabled() {
  return enabledFlag().load(std::memory_order_relaxed);
}
inline void setEnabled(bool On) {
  enabledFlag().store(On, std::memory_order_relaxed);
}

/// A monotonically increasing event count.
class Counter {
public:
  void inc(uint64_t N = 1) { V.fetch_add(N, std::memory_order_relaxed); }
  uint64_t value() const { return V.load(std::memory_order_relaxed); }
  void reset() { V.store(0, std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> V{0};
};

/// A last-written / high-water value.
class Gauge {
public:
  void set(int64_t Value) { V.store(Value, std::memory_order_relaxed); }
  /// Raises the gauge to \p Value when larger (high-water semantics).
  void recordMax(int64_t Value) {
    int64_t Cur = V.load(std::memory_order_relaxed);
    while (Value > Cur &&
           !V.compare_exchange_weak(Cur, Value, std::memory_order_relaxed))
      ;
  }
  int64_t value() const { return V.load(std::memory_order_relaxed); }
  void reset() { V.store(0, std::memory_order_relaxed); }

private:
  std::atomic<int64_t> V{0};
};

/// A log2-bucketed histogram of non-negative samples (typically
/// nanoseconds or sizes). Bucket B counts samples in [2^(B-1), 2^B);
/// bucket 0 counts zeros and ones. Recording is wait-free; aggregates
/// (count/sum/min/max/mean/percentile) are exact except percentile,
/// which is bucket-resolution.
class Histogram {
public:
  static constexpr size_t NumBuckets = 64;

  void record(uint64_t Sample);
  uint64_t count() const { return Count.load(std::memory_order_relaxed); }
  uint64_t sum() const { return Sum.load(std::memory_order_relaxed); }
  uint64_t min() const;
  uint64_t max() const { return Max.load(std::memory_order_relaxed); }
  double mean() const;
  /// Upper bound of the bucket holding the q-quantile sample (q in
  /// [0,1]); 0 when empty.
  uint64_t percentileUpperBound(double Q) const;
  /// The q-quantile estimate (q in [0,1]): the quantile rank's position
  /// within its log2 bucket, linearly interpolated across the bucket's
  /// value range and clamped into [min(), max()]. Exact for single-
  /// bucket distributions; bucket-resolution otherwise. 0 when empty.
  /// Feeds the p50/p90/p99 rows of the --stats-json snapshot.
  uint64_t quantile(double Q) const;
  uint64_t bucketCount(size_t Bucket) const {
    return Buckets[Bucket].load(std::memory_order_relaxed);
  }
  void reset();

private:
  std::atomic<uint64_t> Buckets[NumBuckets]{};
  std::atomic<uint64_t> Count{0};
  std::atomic<uint64_t> Sum{0};
  std::atomic<uint64_t> Min{UINT64_MAX};
  std::atomic<uint64_t> Max{0};
};

/// A dense 2D table of counters with labeled axes -- e.g. the VM's
/// abort counts keyed JvmPhase x JvmErrorKind. One relaxed increment on
/// the hot path; labels are only evaluated at snapshot time. Snapshots
/// emit only non-zero cells as "<name>.<row-label>.<col-label>".
class CounterGrid {
public:
  using LabelFn = std::function<std::string(size_t)>;

  CounterGrid(size_t Rows, size_t Cols, LabelFn RowLabel, LabelFn ColLabel);

  void inc(size_t Row, size_t Col, uint64_t N = 1) {
    if (Row < Rows && Col < Cols)
      Cells[Row * Cols + Col].fetch_add(N, std::memory_order_relaxed);
  }
  uint64_t value(size_t Row, size_t Col) const {
    return Row < Rows && Col < Cols
               ? Cells[Row * Cols + Col].load(std::memory_order_relaxed)
               : 0;
  }
  size_t rows() const { return Rows; }
  size_t cols() const { return Cols; }
  std::string rowLabel(size_t Row) const { return RowLabel(Row); }
  std::string colLabel(size_t Col) const { return ColLabel(Col); }
  void reset();

private:
  size_t Rows, Cols;
  LabelFn RowLabel, ColLabel;
  std::unique_ptr<std::atomic<uint64_t>[]> Cells;
};

/// The process-wide registry. Lookup registers on first use and returns
/// a stable reference; hot paths should look up once (function-local
/// static or a cached reference) and then mutate lock-free.
class MetricRegistry {
public:
  Counter &counter(const std::string &Name);
  Gauge &gauge(const std::string &Name);
  Histogram &histogram(const std::string &Name);
  /// Registers (or fetches) a grid; dimensions and labels are fixed by
  /// the first registration.
  CounterGrid &grid(const std::string &Name, size_t Rows, size_t Cols,
                    CounterGrid::LabelFn RowLabel,
                    CounterGrid::LabelFn ColLabel);

  /// One JSON object snapshot of every registered metric, keys sorted:
  /// {"counters":{...},"gauges":{...},"histograms":{name:{count,sum,
  /// min,max,mean,p50,p99}},"grids":{name:{row.col:count}}}.
  ///
  /// A non-empty \p NamePrefixes restricts every section to metrics
  /// whose name starts with a comma-separated prefix from the list
  /// (e.g. "campaign.dd" or "campaign.,frontier."), yielding a snapshot
  /// free of timing histograms and other run-to-run noise -- the CLI's
  /// --stats-filter, which CI byte-compares across --jobs values.
  std::string snapshotJson(const std::string &NamePrefixes = "") const;
  /// As above with the prefix list pre-split; an empty list selects
  /// everything.
  std::string snapshotJson(const std::vector<std::string> &Prefixes) const;

  /// The current value of every counter and gauge whose name starts
  /// with one of \p Prefixes (empty = all) and with none of
  /// \p ExcludePrefixes, as one sorted name->value map. Histograms and
  /// grids are deliberately out of scope: this is the jobs-invariant
  /// scalar view the time-series sampler snapshots per commit.
  std::map<std::string, int64_t>
  scalarValues(const std::vector<std::string> &Prefixes,
               const std::vector<std::string> &ExcludePrefixes = {}) const;

  /// Zeroes every metric's value. References handed out earlier remain
  /// valid (tests and repeated campaigns rely on this).
  void reset();

private:
  mutable std::mutex M;
  std::map<std::string, std::unique_ptr<Counter>> Counters;
  std::map<std::string, std::unique_ptr<Gauge>> Gauges;
  std::map<std::string, std::unique_ptr<Histogram>> Histograms;
  std::map<std::string, std::unique_ptr<CounterGrid>> Grids;
};

/// The global registry instance.
MetricRegistry &metrics();

// ---- structured events ----------------------------------------------------

/// Sink for structured trace events; write() receives one complete JSON
/// object per call (no trailing newline).
class EventSink {
public:
  virtual ~EventSink() = default;
  virtual void write(const std::string &JsonObject) = 0;
};

/// JSONL sink over a stdio FILE (owned; closed on destruction unless
/// it is stdout/stderr). Writes are serialized by an internal mutex.
///
/// Write failures (disk full, closed pipe) are detected on every
/// fwrite/fputc: the first failure is reported once to stderr (with the
/// stream description and errno), the sink latches into a failed state,
/// and all further events are counted as dropped instead of silently
/// truncating the JSONL stream mid-object. fclose failure on
/// destruction (deferred flush errors) is reported the same way.
///
/// Failure state is mirrored into the registry while the run is live
/// (telemetry.sink_failed gauge, telemetry.sink_dropped_events counter)
/// so --stats-json exposes it; the destructor path never touches the
/// registry (the global sink can outlive it during static teardown).
class FileEventSink : public EventSink {
public:
  /// \p Description names the stream in failure diagnostics (typically
  /// the --trace-events path).
  explicit FileEventSink(std::FILE *F, bool Close = true,
                         std::string Description = "event stream")
      : F(F), Close(Close), Description(std::move(Description)) {}
  ~FileEventSink() override;
  void write(const std::string &JsonObject) override;

  /// True once any write (or the final close) failed.
  bool failed() const { return Failed.load(std::memory_order_relaxed); }
  /// Events discarded after the failure latched.
  uint64_t droppedEvents() const {
    return Dropped.load(std::memory_order_relaxed);
  }

private:
  /// \p TouchMetrics must be false on the destructor path (see class
  /// comment).
  void reportFailure(const char *Op, bool TouchMetrics);

  std::FILE *F;
  bool Close;
  std::string Description;
  std::mutex M;
  std::atomic<bool> Failed{false};
  std::atomic<uint64_t> Dropped{0};
};

/// Installs the global event sink (nullptr uninstalls). Not
/// thread-safe against concurrent emitters; install before the run.
void setEventSink(std::unique_ptr<EventSink> Sink);
EventSink *eventSink();

/// Escapes \p S for inclusion in a JSON string literal.
std::string jsonEscape(const std::string &S);

/// Builds one {"type":...,"k":v,...} event and emits it to the global
/// sink on emit(). Cheap to construct; call only under
/// `if (telemetry::eventSink())` on hot paths.
class EventBuilder {
public:
  explicit EventBuilder(const char *Type);
  EventBuilder &field(const char *Key, const std::string &Value);
  EventBuilder &field(const char *Key, const char *Value);
  EventBuilder &field(const char *Key, uint64_t Value);
  EventBuilder &field(const char *Key, int64_t Value);
  EventBuilder &field(const char *Key, int Value) {
    return field(Key, static_cast<int64_t>(Value));
  }
  EventBuilder &field(const char *Key, double Value);
  EventBuilder &field(const char *Key, bool Value);
  /// Writes the event to the global sink, if one is installed.
  void emit();

private:
  std::string Json;
};

// ---- scoped timing --------------------------------------------------------

/// True when the Perfetto span collector (telemetry/PerfettoTrace.h) is
/// armed; one relaxed atomic load. Named PhaseTimers feed it.
bool spanCollectionEnabled();

/// Appends one completed span to the collector: \p Name over
/// [Start, End), attributed to the calling thread's lane. Implemented
/// in PerfettoTrace.cpp.
void recordSpan(const char *Name,
                std::chrono::steady_clock::time_point Start,
                std::chrono::steady_clock::time_point End);

/// RAII latency probe: records elapsed nanoseconds into a Histogram on
/// destruction (or stop()). When telemetry is disabled at construction
/// the timer is inert and never reads the clock.
///
/// A timer constructed with a span name additionally emits a
/// [start, stop) span onto the calling thread's track when the Perfetto
/// collector is armed (--trace-perfetto), making pipeline overlap
/// visible in ui.perfetto.dev. The extra cost is one relaxed load per
/// stop when the collector is idle.
class PhaseTimer {
public:
  explicit PhaseTimer(Histogram &H, const char *SpanName = nullptr)
      : H(enabled() ? &H : nullptr), SpanName(SpanName),
        Start(this->H ? std::chrono::steady_clock::now()
                      : std::chrono::steady_clock::time_point()) {}
  PhaseTimer(const PhaseTimer &) = delete;
  PhaseTimer &operator=(const PhaseTimer &) = delete;
  ~PhaseTimer() { stop(); }

  /// Records now and disarms; subsequent stop() calls are no-ops.
  void stop() {
    if (!H)
      return;
    auto End = std::chrono::steady_clock::now();
    H->record(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(End - Start)
            .count()));
    if (SpanName && spanCollectionEnabled())
      recordSpan(SpanName, Start, End);
    H = nullptr;
  }

private:
  Histogram *H;
  const char *SpanName;
  std::chrono::steady_clock::time_point Start;
};

} // namespace telemetry
} // namespace classfuzz

#endif // CLASSFUZZ_TELEMETRY_TELEMETRY_H
