//===- telemetry/PerfettoTrace.cpp -----------------------------------------===//

#include "telemetry/PerfettoTrace.h"

#include "telemetry/FlightRecorder.h"
#include "telemetry/Telemetry.h"

#include <algorithm>
#include <atomic>
#include <cinttypes>
#include <mutex>

using namespace classfuzz;
using namespace classfuzz::telemetry;

namespace {

struct SpanCollector {
  std::atomic<bool> Enabled{false};
  std::mutex M;
  std::vector<TraceSpan> Spans;
};

SpanCollector &collector() {
  static SpanCollector C;
  return C;
}

uint64_t toNs(std::chrono::steady_clock::time_point T) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          T.time_since_epoch())
          .count());
}

} // namespace

bool telemetry::spanCollectionEnabled() {
  return collector().Enabled.load(std::memory_order_relaxed);
}

void telemetry::recordSpan(const char *Name,
                           std::chrono::steady_clock::time_point Start,
                           std::chrono::steady_clock::time_point End) {
  SpanCollector &C = collector();
  TraceSpan S{Name, threadLane(), toNs(Start), toNs(End)};
  std::lock_guard<std::mutex> Lock(C.M);
  C.Spans.push_back(S);
}

void telemetry::enableSpanCollection() {
  SpanCollector &C = collector();
  std::lock_guard<std::mutex> Lock(C.M);
  C.Spans.clear();
  C.Enabled.store(true, std::memory_order_relaxed);
}

void telemetry::disableSpanCollection() {
  SpanCollector &C = collector();
  std::lock_guard<std::mutex> Lock(C.M);
  C.Enabled.store(false, std::memory_order_relaxed);
  C.Spans.clear();
}

std::vector<TraceSpan> telemetry::collectedSpans() {
  SpanCollector &C = collector();
  std::lock_guard<std::mutex> Lock(C.M);
  return C.Spans;
}

std::string telemetry::renderChromeTrace(
    const std::vector<TraceSpan> &Spans) {
  // Rebase to the earliest start so traces open at t=0 regardless of
  // the steady-clock epoch.
  uint64_t Base = UINT64_MAX;
  for (const TraceSpan &S : Spans)
    Base = std::min(Base, S.StartNs);
  if (Base == UINT64_MAX)
    Base = 0;

  std::vector<TraceSpan> Sorted = Spans;
  std::stable_sort(Sorted.begin(), Sorted.end(),
                   [](const TraceSpan &X, const TraceSpan &Y) {
                     return X.StartNs < Y.StartNs;
                   });

  std::string Out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool First = true;
  char Buf[256];

  // Track names: lane 0 is the campaign driver, others are pool
  // workers.
  uint32_t MaxLane = 0;
  for (const TraceSpan &S : Sorted)
    MaxLane = std::max(MaxLane, S.Lane);
  std::vector<bool> LaneSeen(MaxLane + 1, false);
  for (const TraceSpan &S : Sorted)
    LaneSeen[S.Lane] = true;
  for (uint32_t Lane = 0; Lane != LaneSeen.size(); ++Lane) {
    if (!LaneSeen[Lane])
      continue;
    std::snprintf(Buf, sizeof(Buf),
                  "%s{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                  "\"tid\":%u,\"args\":{\"name\":\"%s\"}}",
                  First ? "" : ",", Lane,
                  Lane == 0 ? "driver (lane 0)"
                            : ("worker (lane " + std::to_string(Lane) + ")")
                                  .c_str());
    Out += Buf;
    First = false;
  }

  for (const TraceSpan &S : Sorted) {
    // Chrome trace timestamps are microseconds; keep sub-microsecond
    // precision with a fractional part.
    double TsUs = static_cast<double>(S.StartNs - Base) / 1000.0;
    double DurUs = static_cast<double>(S.EndNs - S.StartNs) / 1000.0;
    std::snprintf(Buf, sizeof(Buf),
                  "%s{\"name\":\"%s\",\"cat\":\"classfuzz\",\"ph\":\"X\","
                  "\"pid\":1,\"tid\":%u,\"ts\":%.3f,\"dur\":%.3f}",
                  First ? "" : ",", S.Name, S.Lane, TsUs, DurUs);
    Out += Buf;
    First = false;
  }
  Out += "]}\n";
  return Out;
}

bool telemetry::writeChromeTrace(std::FILE *F) {
  std::string Json = renderChromeTrace(collectedSpans());
  return std::fwrite(Json.data(), 1, Json.size(), F) == Json.size();
}
