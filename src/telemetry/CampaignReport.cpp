//===- telemetry/CampaignReport.cpp ---------------------------------------===//

#include "telemetry/CampaignReport.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

using namespace classfuzz;
using namespace classfuzz::telemetry;

// ---- artifact readers -----------------------------------------------------

int64_t TimeSeriesData::finalValue(const std::string &Key) const {
  auto It = Series.find(Key);
  if (It == Series.end() || It->second.empty())
    return 0;
  return It->second.back();
}

namespace {

/// Calls \p Fn with each non-empty line of \p Text.
template <typename FnT> void forEachLine(const std::string &Text, FnT Fn) {
  size_t Start = 0;
  while (Start < Text.size()) {
    size_t End = Text.find('\n', Start);
    if (End == std::string::npos)
      End = Text.size();
    if (End > Start)
      Fn(Text.substr(Start, End - Start));
    Start = End + 1;
  }
}

} // namespace

Result<TimeSeriesData> telemetry::parseTimeSeries(const std::string &Jsonl) {
  TimeSeriesData Out;
  std::map<std::string, int64_t> Current;
  std::string Error;
  forEachLine(Jsonl, [&](const std::string &Line) {
    if (!Error.empty())
      return;
    auto V = json::parse(Line);
    if (!V) {
      Error = V.error();
      return;
    }
    const json::Value &Row = *V;
    if (Row.stringOr("type", "") != "ts")
      return; // unknown line types are forward-compatible noise
    Out.Iters.push_back(static_cast<uint64_t>(Row.numberOr("iter", 0)));
    if (const json::Value *Final = Row.get("final"))
      Out.SawFinal |= Final->isBool() && Final->asBool();
    if (const json::Value *M = Row.get("m"); M && M->isObject())
      for (const auto &[Key, Val] : M->members())
        if (Val.isNumber())
          Current[Key] = Val.asInt();
    for (const auto &[Key, Val] : Current) {
      auto &Col = Out.Series[Key];
      Col.resize(Out.Iters.size() - 1, 0); // backfill first appearance
      Col.push_back(Val);
    }
  });
  if (!Error.empty())
    return makeError("timeseries: " + Error);
  return Out;
}

Result<FrontierCensus>
telemetry::parseFrontierCensus(const std::string &Jsonl) {
  FrontierCensus Out;
  std::string Error;
  forEachLine(Jsonl, [&](const std::string &Line) {
    if (!Error.empty())
      return;
    auto V = json::parse(Line);
    if (!V) {
      Error = V.error();
      return;
    }
    const json::Value &Row = *V;
    std::string Type = Row.stringOr("type", "");
    if (Type == "frontier_summary") {
      Out.Commits = static_cast<uint64_t>(Row.numberOr("commits", 0));
      Out.Stmts = static_cast<uint64_t>(Row.numberOr("stmts", 0));
      Out.Branches = static_cast<uint64_t>(Row.numberOr("branches", 0));
      Out.RareBranches =
          static_cast<uint64_t>(Row.numberOr("rare_branches", 0));
      Out.RareStmts = static_cast<uint64_t>(Row.numberOr("rare_stmts", 0));
      Out.RareThreshold =
          static_cast<uint64_t>(Row.numberOr("rare_threshold", 0));
      return;
    }
    if (Type != "branch" && Type != "stmt")
      return;
    FrontierCensus::Row R;
    R.IsBranch = Type == "branch";
    R.Site = static_cast<uint32_t>(
        Row.numberOr(R.IsBranch ? "site" : "id", 0));
    if (const json::Value *Taken = Row.get("taken"))
      R.Taken = Taken->isBool() && Taken->asBool();
    R.Hits = static_cast<uint64_t>(Row.numberOr("hits", 0));
    R.FirstIter = static_cast<uint64_t>(Row.numberOr("first_iter", 0));
    R.Seed = Row.stringOr("seed", "");
    R.Mutator = Row.stringOr("mutator", "");
    R.Phase = static_cast<int>(Row.numberOr("phase", -1));
    if (const json::Value *Rare = Row.get("rare"))
      R.Rare = Rare->isBool() && Rare->asBool();
    Out.Rows.push_back(std::move(R));
  });
  if (!Error.empty())
    return makeError("frontier census: " + Error);
  return Out;
}

// ---- progress dash --------------------------------------------------------

namespace {

/// Curated dash/report series, in display order. Slot is the
/// categorical palette slot used when the series appears in a chart.
struct KnownSeries {
  const char *Key;
  const char *Label;
};

constexpr KnownSeries DashSeries[] = {
    {"frontier.stmts", "stmts"},
    {"frontier.branches", "branches"},
    {"campaign.accepted", "accepted"},
    {"campaign.rejected", "rejected"},
    {"campaign.dd_discrepancies", "dd discrepancies"},
    {"campaign.tier_disagreements", "tier disagreements"},
    {"analysis.mismatches", "analyzer mismatches"},
};

std::string sparkline(const std::vector<int64_t> &Values, size_t Width) {
  static const char *Blocks[] = {"▁", "▂", "▃", "▄",
                                 "▅", "▆", "▇", "█"};
  if (Values.empty() || Width == 0)
    return "";
  int64_t Max = *std::max_element(Values.begin(), Values.end());
  size_t Cells = std::min(Width, Values.size());
  std::string Out;
  for (size_t C = 0; C != Cells; ++C) {
    // Last value of the cell's slice: the sparkline tracks the curve.
    size_t Idx = (C + 1) * Values.size() / Cells - 1;
    int Level = 0;
    if (Max > 0)
      Level = static_cast<int>((Values[Idx] * 7 + Max - 1) / Max);
    Out += Blocks[std::clamp(Level, 0, 7)];
  }
  return Out;
}

} // namespace

std::string telemetry::renderProgressDash(const TimeSeriesData &Ts,
                                          size_t Width) {
  std::string Out;
  if (Ts.empty())
    return "campaign: no samples yet\n";
  Out += "campaign: iter " + std::to_string(Ts.Iters.back()) + "  (" +
         std::to_string(Ts.Iters.size()) + " samples" +
         (Ts.SawFinal ? ", final" : "") + ")\n";
  for (const KnownSeries &S : DashSeries) {
    auto It = Ts.Series.find(S.Key);
    if (It == Ts.Series.end())
      continue;
    char Line[64];
    std::snprintf(Line, sizeof(Line), "  %-20s %10lld  ", S.Label,
                  static_cast<long long>(It->second.back()));
    Out += Line;
    Out += sparkline(It->second, Width);
    Out += "\n";
  }
  return Out;
}

// ---- HTML report ----------------------------------------------------------

namespace {

std::string esc(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '&':
      Out += "&amp;";
      break;
    case '<':
      Out += "&lt;";
      break;
    case '>':
      Out += "&gt;";
      break;
    case '"':
      Out += "&quot;";
      break;
    default:
      Out += C;
    }
  }
  return Out;
}

std::string fmtCount(int64_t V) {
  // Axis-label compression only; tiles and tables show exact values.
  if (V >= 10'000'000)
    return std::to_string(V / 1'000'000) + "M";
  if (V >= 10'000)
    return std::to_string(V / 1'000) + "k";
  return std::to_string(V);
}

double niceStep(double Raw) {
  if (Raw <= 0)
    return 1;
  double Pow = std::pow(10.0, std::floor(std::log10(Raw)));
  double Base = Raw / Pow;
  double Step = Base <= 1 ? 1 : Base <= 2 ? 2 : Base <= 5 ? 5 : 10;
  return Step * Pow;
}

std::string fmtDouble(double V) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.1f", V);
  return Buf;
}

struct ChartSeries {
  std::string Key;
  std::string Label;
  int Slot; ///< Categorical palette slot 1..3.
};

/// One SVG line chart over the sampled series, with hairline grid, a
/// single y axis, 2px series lines, direct end labels in ink, and the
/// data replicated into an adjacent JSON block for the hover layer.
std::string renderLineChart(const std::string &Id, const std::string &Title,
                            const TimeSeriesData &Ts,
                            const std::vector<ChartSeries> &Series) {
  constexpr double W = 720, H = 240, ML = 52, MR = 130, MT = 14, MB = 30;
  const double PlotW = W - ML - MR, PlotH = H - MT - MB;

  double XMin = static_cast<double>(Ts.Iters.front());
  double XMax = static_cast<double>(Ts.Iters.back());
  if (XMax <= XMin)
    XMax = XMin + 1;
  int64_t YMaxV = 1;
  for (const ChartSeries &S : Series)
    for (int64_t V : Ts.Series.at(S.Key))
      YMaxV = std::max(YMaxV, V);
  double Step = niceStep(static_cast<double>(YMaxV) / 4.0);
  double YTop = Step * std::ceil(static_cast<double>(YMaxV) / Step);

  auto X = [&](double It) { return ML + (It - XMin) / (XMax - XMin) * PlotW; };
  auto Y = [&](double V) { return MT + (1.0 - V / YTop) * PlotH; };

  std::string Svg;
  Svg += "<svg class=\"linechart\" viewBox=\"0 0 720 240\" role=\"img\" "
         "aria-label=\"" +
         esc(Title) + "\" data-ml=\"52\" data-plotw=\"" +
         fmtDouble(PlotW) + "\" data-xmin=\"" + fmtDouble(XMin) +
         "\" data-xmax=\"" + fmtDouble(XMax) + "\">";

  // Hairline grid + y labels.
  for (double G = 0; G <= YTop + Step / 2; G += Step) {
    double Gy = Y(G);
    Svg += "<line x1=\"" + fmtDouble(ML) + "\" y1=\"" + fmtDouble(Gy) +
           "\" x2=\"" + fmtDouble(ML + PlotW) + "\" y2=\"" + fmtDouble(Gy) +
           "\" class=\"" + (G == 0 ? "axisline" : "gridline") + "\"/>";
    Svg += "<text x=\"" + fmtDouble(ML - 6) + "\" y=\"" + fmtDouble(Gy + 4) +
           "\" class=\"ticktext\" text-anchor=\"end\">" +
           fmtCount(static_cast<int64_t>(G)) + "</text>";
  }
  // X ticks.
  for (int T = 0; T <= 4; ++T) {
    double It = XMin + (XMax - XMin) * T / 4.0;
    Svg += "<text x=\"" + fmtDouble(X(It)) + "\" y=\"" +
           fmtDouble(MT + PlotH + 18) +
           "\" class=\"ticktext\" text-anchor=\"middle\">" +
           fmtCount(static_cast<int64_t>(It)) + "</text>";
  }

  // Series polylines.
  for (const ChartSeries &S : Series) {
    const auto &Col = Ts.Series.at(S.Key);
    std::string Points;
    for (size_t I = 0; I != Ts.Iters.size(); ++I) {
      if (I)
        Points += " ";
      Points += fmtDouble(X(static_cast<double>(Ts.Iters[I]))) + "," +
                fmtDouble(Y(static_cast<double>(Col[I])));
    }
    Svg += "<polyline data-series=\"" + esc(S.Key) + "\" points=\"" + Points +
           "\" fill=\"none\" stroke=\"var(--series-" +
           std::to_string(S.Slot) +
           ")\" stroke-width=\"2\" stroke-linejoin=\"round\" "
           "stroke-linecap=\"round\"/>";
  }

  // Direct end labels in ink, nudged apart on collision.
  struct EndLabel {
    double Y;
    std::string Text;
  };
  std::vector<EndLabel> Labels;
  for (const ChartSeries &S : Series) {
    const auto &Col = Ts.Series.at(S.Key);
    Labels.push_back({Y(static_cast<double>(Col.back())),
                      S.Label + " " + fmtCount(Col.back())});
  }
  std::sort(Labels.begin(), Labels.end(),
            [](const EndLabel &A, const EndLabel &B) { return A.Y < B.Y; });
  for (size_t I = 1; I < Labels.size(); ++I)
    if (Labels[I].Y - Labels[I - 1].Y < 14)
      Labels[I].Y = Labels[I - 1].Y + 14;
  for (const EndLabel &L : Labels)
    Svg += "<text x=\"" + fmtDouble(ML + PlotW + 8) + "\" y=\"" +
           fmtDouble(L.Y + 4) + "\" class=\"endlabel\">" + esc(L.Text) +
           "</text>";

  // Crosshair for the hover layer (hidden until mousemove).
  Svg += "<line class=\"xhair\" y1=\"" + fmtDouble(MT) + "\" y2=\"" +
         fmtDouble(MT + PlotH) + "\" x1=\"0\" x2=\"0\" visibility=\"hidden\"/>";
  Svg += "</svg>";

  // Legend (always present for >= 2 series; one series is named by the
  // chart title).
  std::string Legend;
  if (Series.size() >= 2) {
    Legend += "<div class=\"legend\">";
    for (const ChartSeries &S : Series)
      Legend += "<span class=\"key\"><span class=\"sw\" "
                "style=\"background:var(--series-" +
                std::to_string(S.Slot) + ")\"></span>" + esc(S.Label) +
                "</span>";
    Legend += "</div>";
  }

  // Hover data: iteration column plus each series column.
  std::string Data = "{\"iters\":[";
  for (size_t I = 0; I != Ts.Iters.size(); ++I)
    Data += (I ? "," : "") + std::to_string(Ts.Iters[I]);
  Data += "],\"series\":[";
  for (size_t S = 0; S != Series.size(); ++S) {
    if (S)
      Data += ",";
    Data += "{\"label\":\"" + esc(Series[S].Label) + "\",\"values\":[";
    const auto &Col = Ts.Series.at(Series[S].Key);
    for (size_t I = 0; I != Col.size(); ++I)
      Data += (I ? "," : "") + std::to_string(Col[I]);
    Data += "]}";
  }
  Data += "]}";

  return "<figure class=\"chart\" data-chart=\"" + Id +
         "\"><figcaption>" + esc(Title) + "</figcaption>" + Legend + Svg +
         "<script type=\"application/json\" class=\"chart-data\">" + Data +
         "</script></figure>";
}

std::string statTile(const std::string &Label, const std::string &Value) {
  return "<div class=\"tile\"><div class=\"tile-value\">" + esc(Value) +
         "</div><div class=\"tile-label\">" + esc(Label) + "</div></div>";
}

/// Style sheet: roles from the reference palette (light + dark, the
/// dark values under both the media query and the data-theme scope).
const char *StyleSheet = R"CSS(
:root { color-scheme: light dark; }
body.viz-root {
  color-scheme: light;
  --surface-1: #fcfcfb; --page: #f9f9f7;
  --ink-1: #0b0b0b; --ink-2: #52514e; --muted: #898781;
  --grid: #e1e0d9; --axis: #c3c2b7;
  --border: rgba(11,11,11,0.10);
  --series-1: #2a78d6; --series-2: #eb6834; --series-3: #1baf7a;
  --seq-1: #cde2fb; --seq-2: #9ec5f4; --seq-3: #6da7ec; --seq-4: #3987e5;
  --seq-5: #256abf; --seq-6: #1c5cab; --seq-7: #0d366b;
  margin: 0; background: var(--page); color: var(--ink-1);
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
}
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme="light"])) body.viz-root {
    color-scheme: dark;
    --surface-1: #1a1a19; --page: #0d0d0d;
    --ink-1: #ffffff; --ink-2: #c3c2b7; --muted: #898781;
    --grid: #2c2c2a; --axis: #383835;
    --border: rgba(255,255,255,0.10);
    --series-1: #3987e5; --series-2: #d95926; --series-3: #199e70;
  }
}
:root[data-theme="dark"] body.viz-root {
  color-scheme: dark;
  --surface-1: #1a1a19; --page: #0d0d0d;
  --ink-1: #ffffff; --ink-2: #c3c2b7; --muted: #898781;
  --grid: #2c2c2a; --axis: #383835;
  --border: rgba(255,255,255,0.10);
  --series-1: #3987e5; --series-2: #d95926; --series-3: #199e70;
}
main { max-width: 820px; margin: 0 auto; padding: 24px 16px 48px; }
h1 { font-size: 22px; margin: 0 0 4px; }
.subtitle { color: var(--ink-2); font-size: 13px; margin: 0 0 20px; }
.tiles { display: flex; flex-wrap: wrap; gap: 10px; margin-bottom: 24px; }
.tile { background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 10px 16px; min-width: 96px; }
.tile-value { font-size: 24px; }
.tile-label { font-size: 12px; color: var(--ink-2); }
.chart { background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 12px 16px 8px; margin: 0 0 20px; }
.chart figcaption { font-size: 14px; font-weight: 600; margin-bottom: 6px; }
.chart svg { width: 100%; height: auto; display: block; }
.legend { display: flex; gap: 14px; font-size: 12px; color: var(--ink-2);
  margin-bottom: 4px; }
.legend .sw { display: inline-block; width: 10px; height: 10px;
  border-radius: 2px; margin-right: 5px; }
.gridline { stroke: var(--grid); stroke-width: 1; }
.axisline { stroke: var(--axis); stroke-width: 1; }
.ticktext { fill: var(--muted); font-size: 11px; }
.endlabel { fill: var(--ink-2); font-size: 11px; }
.xhair { stroke: var(--axis); stroke-width: 1; stroke-dasharray: 3 3; }
section h2 { font-size: 16px; margin: 28px 0 10px; }
table { border-collapse: collapse; width: 100%; font-size: 13px;
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; }
th, td { text-align: left; padding: 5px 10px;
  border-bottom: 1px solid var(--grid); }
th { color: var(--ink-2); font-weight: 600; }
td.num, th.num { text-align: right; font-variant-numeric: tabular-nums; }
.heat td.cell { text-align: center; font-variant-numeric: tabular-nums;
  min-width: 52px; }
.heat td.cell.hi { color: #ffffff; }
#tooltip { position: fixed; pointer-events: none; display: none;
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 6px; padding: 6px 10px; font-size: 12px;
  color: var(--ink-1); box-shadow: 0 2px 8px rgba(0,0,0,0.15); z-index: 9; }
#tooltip .tip-iter { color: var(--ink-2); margin-bottom: 2px; }
.note { color: var(--ink-2); font-size: 13px; }
)CSS";

/// Hover layer: nearest-sample crosshair + tooltip per line chart.
const char *HoverScript = R"JS(
(function () {
  var tip = document.getElementById('tooltip');
  document.querySelectorAll('figure.chart').forEach(function (fig) {
    var svg = fig.querySelector('svg.linechart');
    var dataEl = fig.querySelector('script.chart-data');
    if (!svg || !dataEl) return;
    var data = JSON.parse(dataEl.textContent);
    var ml = +svg.dataset.ml, plotw = +svg.dataset.plotw;
    var xmin = +svg.dataset.xmin, xmax = +svg.dataset.xmax;
    var xhair = svg.querySelector('.xhair');
    svg.addEventListener('mousemove', function (ev) {
      var pt = svg.createSVGPoint();
      pt.x = ev.clientX; pt.y = ev.clientY;
      var local = pt.matrixTransform(svg.getScreenCTM().inverse());
      var it = xmin + (local.x - ml) / plotw * (xmax - xmin);
      var best = 0, bestD = Infinity;
      data.iters.forEach(function (v, i) {
        var d = Math.abs(v - it);
        if (d < bestD) { bestD = d; best = i; }
      });
      var cx = ml + (data.iters[best] - xmin) / (xmax - xmin) * plotw;
      xhair.setAttribute('x1', cx);
      xhair.setAttribute('x2', cx);
      xhair.setAttribute('visibility', 'visible');
      var html = '<div class="tip-iter">iteration ' +
                 data.iters[best] + '</div>';
      data.series.forEach(function (s) {
        html += '<div>' + s.label + ': ' + s.values[best] + '</div>';
      });
      tip.innerHTML = html;
      tip.style.display = 'block';
      tip.style.left = (ev.clientX + 14) + 'px';
      tip.style.top = (ev.clientY + 14) + 'px';
    });
    svg.addEventListener('mouseleave', function () {
      xhair.setAttribute('visibility', 'hidden');
      tip.style.display = 'none';
    });
  });
})();
)JS";

/// Extracts the frontier.mutator_phase grid from a --stats-json object
/// into mutator -> per-phase counts, rows sorted by total descending
/// (name-ascending tie-break for determinism).
std::vector<std::pair<std::string, std::vector<int64_t>>>
mutatorPhaseRows(const json::Value &Stats, size_t NumPhases) {
  std::vector<std::pair<std::string, std::vector<int64_t>>> Rows;
  const json::Value *Grids = Stats.get("grids");
  const json::Value *Grid =
      Grids ? Grids->get("frontier.mutator_phase") : nullptr;
  if (!Grid || !Grid->isObject())
    return Rows;
  std::map<std::string, std::vector<int64_t>> ByMutator;
  for (const auto &[Key, Val] : Grid->members()) {
    // Cell keys are "<mutator-id>.phase<N>"; mutator ids may themselves
    // contain dots, so split at the last ".phase".
    size_t Dot = Key.rfind(".phase");
    if (Dot == std::string::npos || !Val.isNumber())
      continue;
    size_t Phase = 0;
    const std::string Digits = Key.substr(Dot + 6);
    if (Digits.empty() ||
        Digits.find_first_not_of("0123456789") != std::string::npos)
      continue;
    Phase = static_cast<size_t>(std::stoul(Digits));
    if (Phase >= NumPhases)
      continue;
    auto &Row = ByMutator[Key.substr(0, Dot)];
    Row.resize(NumPhases, 0);
    Row[Phase] = Val.asInt();
  }
  for (auto &[Name, Vals] : ByMutator)
    Rows.emplace_back(Name, Vals);
  std::stable_sort(Rows.begin(), Rows.end(), [](const auto &A, const auto &B) {
    int64_t TA = 0, TB = 0;
    for (int64_t V : A.second)
      TA += V;
    for (int64_t V : B.second)
      TB += V;
    if (TA != TB)
      return TA > TB;
    return A.first < B.first;
  });
  return Rows;
}

} // namespace

std::string telemetry::renderHtmlReport(const ReportInputs &Inputs) {
  const TimeSeriesData &Ts = Inputs.Ts;
  std::string Html;
  Html += "<!doctype html><html lang=\"en\"><head><meta charset=\"utf-8\">";
  Html += "<meta name=\"viewport\" content=\"width=device-width, "
          "initial-scale=1\">";
  Html += "<title>" + esc(Inputs.Title) + "</title>";
  Html += "<style>";
  Html += StyleSheet;
  Html += "</style></head><body class=\"viz-root\"><main>";
  Html += "<h1>" + esc(Inputs.Title) + "</h1>";

  uint64_t LastIter = Ts.empty() ? 0 : Ts.Iters.back();
  Html += "<p class=\"subtitle\">" + std::to_string(LastIter) +
          " committed iterations &middot; " + std::to_string(Ts.Iters.size()) +
          " samples" + (Ts.SawFinal || Ts.empty() ? "" : " &middot; run in progress") +
          "</p>";

  // Stat tiles.
  Html += "<div class=\"tiles\">";
  Html += statTile("iterations", std::to_string(LastIter));
  int64_t Stmts = Ts.finalValue("frontier.stmts");
  int64_t Branches = Ts.finalValue("frontier.branches");
  if (Inputs.Frontier) {
    Stmts = static_cast<int64_t>(Inputs.Frontier->Stmts);
    Branches = static_cast<int64_t>(Inputs.Frontier->Branches);
  }
  if (Stmts || Branches) {
    Html += statTile("stmts covered", std::to_string(Stmts));
    Html += statTile("branches covered", std::to_string(Branches));
  }
  if (Inputs.Frontier)
    Html += statTile("rare branches (&le;" +
                         std::to_string(Inputs.Frontier->RareThreshold) + ")",
                     std::to_string(Inputs.Frontier->RareBranches));
  int64_t Discrepancies = Ts.finalValue("campaign.dd_discrepancies") +
                          Ts.finalValue("campaign.tier_disagreements") +
                          Ts.finalValue("analysis.mismatches");
  Html += statTile("discrepancies", std::to_string(Discrepancies));
  Html += statTile("accepted", std::to_string(Ts.finalValue(
                                   "campaign.accepted")));
  Html += "</div>";

  // Charts.
  auto Present = [&Ts](std::initializer_list<ChartSeries> Candidates) {
    std::vector<ChartSeries> Out;
    for (const ChartSeries &S : Candidates)
      if (Ts.Series.count(S.Key))
        Out.push_back(S);
    return Out;
  };
  if (!Ts.empty()) {
    auto Coverage = Present({{"frontier.stmts", "stmts", 1},
                             {"frontier.branches", "branches", 2}});
    if (Coverage.empty())
      Coverage = Present({{"campaign.accepted", "accepted (pool)", 1}});
    if (!Coverage.empty())
      Html += renderLineChart("coverage", "Coverage frontier", Ts, Coverage);
    auto Acceptance = Present({{"campaign.accepted", "accepted", 1},
                               {"campaign.rejected", "rejected", 2}});
    if (!Acceptance.empty())
      Html += renderLineChart("acceptance", "Mutant acceptance", Ts,
                              Acceptance);
    auto Disc = Present({{"campaign.dd_discrepancies", "dd discrepancies", 1},
                         {"campaign.tier_disagreements",
                          "tier disagreements", 2},
                         {"analysis.mismatches", "analyzer mismatches", 3}});
    if (!Disc.empty())
      Html += renderLineChart("discrepancies", "Discrepancies", Ts, Disc);
  } else {
    Html += "<p class=\"note\">No time-series samples; run the campaign "
            "with --timeseries to collect them.</p>";
  }

  // Rare-branch table.
  if (Inputs.Frontier) {
    std::vector<const FrontierCensus::Row *> Rare;
    for (const FrontierCensus::Row &R : Inputs.Frontier->Rows)
      if (R.IsBranch && R.Rare)
        Rare.push_back(&R);
    std::stable_sort(Rare.begin(), Rare.end(),
                     [](const FrontierCensus::Row *A,
                        const FrontierCensus::Row *B) {
                       if (A->Hits != B->Hits)
                         return A->Hits < B->Hits;
                       return A->Site < B->Site;
                     });
    constexpr size_t MaxRows = 50;
    Html += "<section><h2>Rare branches</h2>";
    if (Rare.empty()) {
      Html += "<p class=\"note\">No branch fell at or under the rarity "
              "threshold.</p>";
    } else {
      Html += "<table><thead><tr><th class=\"num\">site</th><th>dir</th>"
              "<th class=\"num\">hits</th><th class=\"num\">first iter</th>"
              "<th>seed</th><th>mutator</th><th class=\"num\">phase</th>"
              "</tr></thead><tbody>";
      for (size_t I = 0; I != std::min(Rare.size(), MaxRows); ++I) {
        const FrontierCensus::Row &R = *Rare[I];
        Html += "<tr><td class=\"num\">" + std::to_string(R.Site) +
                "</td><td>" + (R.Taken ? "taken" : "not taken") +
                "</td><td class=\"num\">" + std::to_string(R.Hits) +
                "</td><td class=\"num\">" + std::to_string(R.FirstIter) +
                "</td><td>" + esc(R.Seed) + "</td><td>" + esc(R.Mutator) +
                "</td><td class=\"num\">" + std::to_string(R.Phase) +
                "</td></tr>";
      }
      Html += "</tbody></table>";
      if (Rare.size() > MaxRows)
        Html += "<p class=\"note\">Showing the " + std::to_string(MaxRows) +
                " rarest of " + std::to_string(Rare.size()) +
                " rare branches.</p>";
    }
    Html += "</section>";
  }

  // Mutator x deepest-phase heat grid.
  if (Inputs.Stats) {
    constexpr size_t NumPhases = 5;
    auto Rows = mutatorPhaseRows(*Inputs.Stats, NumPhases);
    if (!Rows.empty()) {
      int64_t Max = 1;
      for (const auto &[Name, Vals] : Rows)
        for (int64_t V : Vals)
          Max = std::max(Max, V);
      Html += "<section><h2>Mutator &times; deepest phase reached</h2>";
      Html += "<table class=\"heat\" data-grid=\"frontier.mutator_phase\">"
              "<thead><tr><th>mutator</th>";
      for (size_t P = 0; P != NumPhases; ++P)
        Html += "<th class=\"num\">phase " + std::to_string(P) + "</th>";
      Html += "</tr></thead><tbody>";
      for (const auto &[Name, Vals] : Rows) {
        Html += "<tr><td>" + esc(Name) + "</td>";
        for (size_t P = 0; P != NumPhases; ++P) {
          int64_t V = P < Vals.size() ? Vals[P] : 0;
          if (V == 0) {
            Html += "<td class=\"cell\"></td>";
            continue;
          }
          // Sequential blue ramp, light -> dark with magnitude.
          int Bin = static_cast<int>((V * 7 + Max - 1) / Max);
          Bin = std::clamp(Bin, 1, 7);
          Html += "<td class=\"cell" + std::string(Bin >= 5 ? " hi" : "") +
                  "\" style=\"background:var(--seq-" + std::to_string(Bin) +
                  ")\" title=\"" + esc(Name) + " phase" + std::to_string(P) +
                  ": " + std::to_string(V) + "\">" + std::to_string(V) +
                  "</td>";
        }
        Html += "</tr>";
      }
      Html += "</tbody></table></section>";
    }
  }

  Html += "</main><div id=\"tooltip\"></div><script>";
  Html += HoverScript;
  Html += "</script></body></html>";
  return Html;
}
