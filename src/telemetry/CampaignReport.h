//===- telemetry/CampaignReport.h - HTML report and progress dash --------===//
//
// Part of classfuzz-cpp (PLDI 2016 classfuzz reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Readers for the campaign's observability artifacts (timeseries.jsonl
/// rows, the frontier census, --stats-json snapshots) and the two
/// renderers `classfuzz report` drives: a self-contained single-file
/// HTML report (inline SVG + CSS + vanilla JS, no external references,
/// light/dark aware) and an ANSI terminal progress dashboard with
/// block-character sparklines for --progress-dash.
///
//===----------------------------------------------------------------------===//

#ifndef CLASSFUZZ_TELEMETRY_CAMPAIGNREPORT_H
#define CLASSFUZZ_TELEMETRY_CAMPAIGNREPORT_H

#include "support/Json.h"
#include "support/Result.h"

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace classfuzz {
namespace telemetry {

/// The decoded time series: per-sample iteration indices plus one
/// dense value column per metric. Delta-encoded rows are re-inflated
/// by carrying the last seen value forward (and 0 before a key's first
/// appearance), so every column has one value per sample.
struct TimeSeriesData {
  std::vector<uint64_t> Iters;
  std::map<std::string, std::vector<int64_t>> Series;
  bool SawFinal = false;

  bool empty() const { return Iters.empty(); }
  /// Final value of a series; 0 when absent or empty.
  int64_t finalValue(const std::string &Key) const;
};

/// Parses timeseries.jsonl content (rows with "type":"ts"); unknown
/// line types are skipped so the format can grow.
Result<TimeSeriesData> parseTimeSeries(const std::string &Jsonl);

/// The decoded frontier census (FrontierTracker::renderCensusJsonl).
struct FrontierCensus {
  struct Row {
    bool IsBranch = false;
    uint32_t Site = 0; ///< Branch site, or statement id.
    bool Taken = false;
    uint64_t Hits = 0;
    uint64_t FirstIter = 0;
    std::string Seed;
    std::string Mutator;
    int Phase = -1;
    bool Rare = false;
  };

  uint64_t Commits = 0;
  uint64_t Stmts = 0;
  uint64_t Branches = 0;
  uint64_t RareBranches = 0;
  uint64_t RareStmts = 0;
  uint64_t RareThreshold = 0;
  std::vector<Row> Rows; ///< Census order: branches then stmts, by id.
};

Result<FrontierCensus> parseFrontierCensus(const std::string &Jsonl);

/// Everything the HTML report can draw from. Stats is the parsed
/// --stats-json object (for the mutator x phase grid and headline
/// numbers); Frontier feeds the rare-branch table. Both are optional --
/// the report renders whatever it is given.
struct ReportInputs {
  TimeSeriesData Ts;
  std::optional<json::Value> Stats;
  std::optional<FrontierCensus> Frontier;
  std::string Title = "classfuzz campaign report";
};

/// Renders the self-contained HTML report. Deterministic: a pure
/// function of the inputs (no timestamps, no randomness), so CI can
/// sanity-check its contents.
std::string renderHtmlReport(const ReportInputs &Inputs);

/// Renders one frame of the terminal progress dashboard: headline
/// counters plus block-char sparklines (U+2581..U+2588) of the key
/// series, at most \p Width cells wide. No cursor-control codes -- the
/// caller owns screen clearing / repositioning.
std::string renderProgressDash(const TimeSeriesData &Ts, size_t Width = 64);

} // namespace telemetry
} // namespace classfuzz

#endif // CLASSFUZZ_TELEMETRY_CAMPAIGNREPORT_H
