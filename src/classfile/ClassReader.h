//===- classfile/ClassReader.h - Class file binary parser ----------------===//
//
// Part of classfuzz-cpp (PLDI 2016 classfuzz reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses class file bytes into a ClassFile. The parser is *structural*:
/// it rejects only what makes the bytes unreadable (bad magic, truncation,
/// unknown constant tags, unresolvable name indices). Semantic constraints
/// (flag combinations, descriptor validity, <clinit> shape, ...) are left
/// to the JVM's format checker so that invalid-but-readable mutants flow
/// through the pipeline exactly as in the paper.
///
//===----------------------------------------------------------------------===//

#ifndef CLASSFUZZ_CLASSFILE_CLASSREADER_H
#define CLASSFUZZ_CLASSFILE_CLASSREADER_H

#include "classfile/ClassFile.h"
#include "support/Result.h"

namespace classfuzz {

/// Parses \p Data into a ClassFile; the error message of a failed Result
/// describes the structural problem in ClassFormatError style.
Result<ClassFile> parseClassFile(const Bytes &Data);

} // namespace classfuzz

#endif // CLASSFUZZ_CLASSFILE_CLASSREADER_H
