//===- classfile/ClassFile.cpp --------------------------------------------===//

#include "classfile/ClassFile.h"

using namespace classfuzz;

const MethodInfo *ClassFile::findMethod(const std::string &Name,
                                        const std::string &Descriptor) const {
  for (const MethodInfo &M : Methods)
    if (M.Name == Name && M.Descriptor == Descriptor)
      return &M;
  return nullptr;
}

MethodInfo *ClassFile::findMethod(const std::string &Name,
                                  const std::string &Descriptor) {
  return const_cast<MethodInfo *>(
      static_cast<const ClassFile *>(this)->findMethod(Name, Descriptor));
}

const MethodInfo *ClassFile::findMethodByName(const std::string &Name) const {
  for (const MethodInfo &M : Methods)
    if (M.Name == Name)
      return &M;
  return nullptr;
}

const FieldInfo *ClassFile::findField(const std::string &Name) const {
  for (const FieldInfo &F : Fields)
    if (F.Name == Name)
      return &F;
  return nullptr;
}
