//===- classfile/Printer.cpp ----------------------------------------------===//

#include "classfile/Printer.h"

#include "classfile/Opcodes.h"

#include <sstream>

using namespace classfuzz;

namespace {

/// Longest legal reference chain is Methodref -> NameAndType -> Utf8;
/// anything deeper means the (possibly mutated) pool contains a cycle.
constexpr int MaxCpSummaryDepth = 8;

std::string cpEntrySummary(const ConstantPool &CP, uint16_t Index,
                           int Depth = 0) {
  // Mutated pools routinely contain dangling, self-referential, or
  // type-confused indices; render a marker instead of crashing so
  // `classfuzz analyze --print` works on hostile classes.
  if (Index == 0 || Index >= CP.count())
    return "<bad index #" + std::to_string(Index) + ">";
  if (Depth >= MaxCpSummaryDepth)
    return "<cp cycle @#" + std::to_string(Index) + ">";
  const CpEntry &E = CP.at(Index);
  switch (E.Tag) {
  case CpTag::Utf8:
    return E.Utf8;
  case CpTag::Integer:
    return std::to_string(E.IntValue);
  case CpTag::Float:
    return std::to_string(E.FloatValue) + "f";
  case CpTag::Long:
    return std::to_string(E.LongValue) + "l";
  case CpTag::Double:
    return std::to_string(E.DoubleValue) + "d";
  case CpTag::Class:
  case CpTag::String:
    return cpEntrySummary(CP, E.Ref1, Depth + 1);
  case CpTag::NameAndType:
    return cpEntrySummary(CP, E.Ref1, Depth + 1) + ":" +
           cpEntrySummary(CP, E.Ref2, Depth + 1);
  case CpTag::Fieldref:
  case CpTag::Methodref:
  case CpTag::InterfaceMethodref:
    return cpEntrySummary(CP, E.Ref1, Depth + 1) + "." +
           cpEntrySummary(CP, E.Ref2, Depth + 1);
  case CpTag::Invalid:
    return "<unusable #" + std::to_string(Index) + ">";
  default:
    return "?";
  }
}

} // namespace

std::string classfuzz::disassemble(const ConstantPool &CP,
                                   const Bytes &Code) {
  std::ostringstream OS;
  InsnDecoder Decoder(Code);
  Insn I;
  while (Decoder.decodeNext(I)) {
    OS << "      " << I.Offset << ": " << opcodeName(I.Op);
    switch (I.Op) {
    case OP_getstatic:
    case OP_putstatic:
    case OP_getfield:
    case OP_putfield:
    case OP_invokevirtual:
    case OP_invokespecial:
    case OP_invokestatic:
    case OP_invokeinterface:
    case OP_new:
    case OP_anewarray:
    case OP_checkcast:
    case OP_instanceof:
    case OP_ldc:
    case OP_ldc_w:
    case OP_ldc2_w:
      OS << " #" << I.Operand1 << " // "
         << cpEntrySummary(CP, static_cast<uint16_t>(I.Operand1));
      break;
    case OP_bipush:
    case OP_sipush:
      OS << " " << I.Operand1;
      break;
    case OP_iinc:
      OS << " " << I.Operand1 << ", " << I.Operand2;
      break;
    default:
      if (I.Length == 3 && I.Op >= OP_ifeq && I.Op <= OP_jsr)
        OS << " " << I.Operand1; // Branch target (absolute).
      else if (I.Length == 2)
        OS << " " << I.Operand1;
      break;
    }
    OS << "\n";
  }
  if (!Decoder.valid())
    OS << "      <malformed bytecode at offset " << Decoder.position()
       << ">\n";
  return OS.str();
}

std::string classfuzz::printClassFile(const ClassFile &CF) {
  std::ostringstream OS;
  OS << (CF.isInterface() ? "interface " : "class ") << CF.ThisClass << "\n";
  OS << "  minor version: " << CF.MinorVersion << "\n";
  OS << "  major version: " << CF.MajorVersion << "\n";
  OS << "  flags: " << classFlagsToString(CF.AccessFlags) << "\n";
  if (!CF.SuperClass.empty())
    OS << "  super: " << CF.SuperClass << "\n";
  for (const std::string &Interface : CF.Interfaces)
    OS << "  implements: " << Interface << "\n";

  OS << "Constant pool:\n";
  for (uint16_t I = 1; I < CF.CP.count(); ++I) {
    const CpEntry &E = CF.CP.at(I);
    if (E.Tag == CpTag::Invalid)
      continue;
    OS << "  #" << I << " = " << (cpTagName(E.Tag) + 9 /* skip CONSTANT_ */)
       << " " << cpEntrySummary(CF.CP, I) << "\n";
  }

  OS << "{\n";
  for (const FieldInfo &F : CF.Fields) {
    OS << "  " << F.Descriptor << " " << F.Name << ";\n";
    OS << "    flags: " << fieldFlagsToString(F.AccessFlags) << "\n";
  }
  for (const MethodInfo &M : CF.Methods) {
    OS << "  " << M.Name << M.Descriptor << "\n";
    OS << "    flags: " << methodFlagsToString(M.AccessFlags) << "\n";
    if (!M.Exceptions.empty()) {
      OS << "    throws:";
      for (const std::string &E : M.Exceptions)
        OS << " " << E;
      OS << "\n";
    }
    if (M.Code) {
      OS << "    Code:\n";
      OS << "      stack=" << M.Code->MaxStack
         << ", locals=" << M.Code->MaxLocals << "\n";
      OS << disassemble(CF.CP, M.Code->Code);
    }
  }
  OS << "}\n";
  return OS.str();
}
