//===- classfile/ClassReader.cpp ------------------------------------------===//

#include "classfile/ClassReader.h"

using namespace classfuzz;

namespace {

/// Stateful parser over one class file's bytes.
class Parser {
public:
  explicit Parser(const Bytes &Data) : Reader(Data) {}

  Result<ClassFile> run();

private:
  Status parseConstantPool(ClassFile &CF);
  Status parseFields(ClassFile &CF);
  Status parseMethods(ClassFile &CF);
  Status parseAttributes(const ConstantPool &CP,
                         std::vector<AttributeInfo> &Out);
  Result<CodeAttr> parseCode(const ConstantPool &CP, const Bytes &Data);
  Result<std::vector<std::string>> parseExceptions(const ConstantPool &CP,
                                                   const Bytes &Data);

  Status truncated(const char *What) {
    return makeError(std::string("truncated class file while reading ") +
                     What);
  }

  ByteReader Reader;
};

Status Parser::parseConstantPool(ClassFile &CF) {
  uint16_t Count = Reader.readU2();
  if (Reader.hasError())
    return truncated("constant_pool_count");
  if (Count == 0)
    return makeError("constant_pool_count must be at least 1");
  // Slot 0 is pre-reserved by the ConstantPool constructor.
  for (uint16_t Index = 1; Index < Count; ++Index) {
    CpEntry E;
    E.Tag = static_cast<CpTag>(Reader.readU1());
    switch (E.Tag) {
    case CpTag::Utf8: {
      uint16_t Len = Reader.readU2();
      E.Utf8 = Reader.readString(Len);
      break;
    }
    case CpTag::Integer:
      E.IntValue = static_cast<int32_t>(Reader.readU4());
      break;
    case CpTag::Float: {
      uint32_t Raw = Reader.readU4();
      static_assert(sizeof(float) == 4, "IEEE-754 float expected");
      __builtin_memcpy(&E.FloatValue, &Raw, 4);
      break;
    }
    case CpTag::Long:
      E.LongValue = static_cast<int64_t>(Reader.readU8());
      break;
    case CpTag::Double: {
      uint64_t Raw = Reader.readU8();
      static_assert(sizeof(double) == 8, "IEEE-754 double expected");
      __builtin_memcpy(&E.DoubleValue, &Raw, 8);
      break;
    }
    case CpTag::Class:
    case CpTag::String:
    case CpTag::MethodType:
      E.Ref1 = Reader.readU2();
      break;
    case CpTag::Fieldref:
    case CpTag::Methodref:
    case CpTag::InterfaceMethodref:
    case CpTag::NameAndType:
    case CpTag::InvokeDynamic:
      E.Ref1 = Reader.readU2();
      E.Ref2 = Reader.readU2();
      break;
    case CpTag::MethodHandle:
      E.Kind = Reader.readU1();
      E.Ref1 = Reader.readU2();
      break;
    default:
      return makeError("unknown constant pool tag " +
                       std::to_string(static_cast<unsigned>(E.Tag)) +
                       " at index " + std::to_string(Index));
    }
    if (Reader.hasError())
      return truncated("constant pool entry");
    CF.CP.addRaw(std::move(E));
    if (CF.CP.count() > Count)
      return makeError("Long/Double constant overflows constant_pool_count");
    // addRaw emitted an extra placeholder slot for Long/Double.
    if (CF.CP.count() == Index + 2)
      ++Index;
  }
  return Status::success();
}

Status Parser::parseAttributes(const ConstantPool &CP,
                               std::vector<AttributeInfo> &Out) {
  uint16_t Count = Reader.readU2();
  if (Reader.hasError())
    return truncated("attributes_count");
  for (uint16_t I = 0; I != Count; ++I) {
    uint16_t NameIndex = Reader.readU2();
    uint32_t Length = Reader.readU4();
    if (Reader.hasError())
      return truncated("attribute header");
    auto Name = CP.getUtf8(NameIndex);
    if (!Name)
      return makeError("attribute name: " + Name.error());
    AttributeInfo Attr;
    Attr.Name = Name.take();
    Attr.Data = Reader.readBytes(Length);
    if (Reader.hasError())
      return truncated("attribute body");
    Out.push_back(std::move(Attr));
  }
  return Status::success();
}

Result<CodeAttr> Parser::parseCode(const ConstantPool &CP,
                                   const Bytes &Data) {
  ByteReader R(Data);
  CodeAttr Code;
  Code.MaxStack = R.readU2();
  Code.MaxLocals = R.readU2();
  uint32_t CodeLength = R.readU4();
  Code.Code = R.readBytes(CodeLength);
  uint16_t TableLength = R.readU2();
  if (R.hasError())
    return makeError("truncated Code attribute");
  for (uint16_t I = 0; I != TableLength; ++I) {
    ExceptionTableEntry E;
    E.StartPc = R.readU2();
    E.EndPc = R.readU2();
    E.HandlerPc = R.readU2();
    uint16_t CatchIndex = R.readU2();
    if (R.hasError())
      return makeError("truncated exception_table");
    if (CatchIndex != 0) {
      auto Name = CP.getClassName(CatchIndex);
      if (!Name)
        return makeError("exception_table catch_type: " + Name.error());
      E.CatchType = Name.take();
    }
    Code.ExceptionTable.push_back(std::move(E));
  }
  // Nested attributes (LineNumberTable, StackMapTable, ...) kept raw.
  uint16_t AttrCount = R.readU2();
  if (R.hasError())
    return makeError("truncated Code attribute count");
  for (uint16_t I = 0; I != AttrCount; ++I) {
    uint16_t NameIndex = R.readU2();
    uint32_t Length = R.readU4();
    if (R.hasError())
      return makeError("truncated nested attribute header");
    auto Name = CP.getUtf8(NameIndex);
    if (!Name)
      return makeError("nested attribute name: " + Name.error());
    AttributeInfo Attr;
    Attr.Name = Name.take();
    Attr.Data = R.readBytes(Length);
    if (R.hasError())
      return makeError("truncated nested attribute body");
    Code.Attributes.push_back(std::move(Attr));
  }
  return Code;
}

Result<std::vector<std::string>>
Parser::parseExceptions(const ConstantPool &CP, const Bytes &Data) {
  ByteReader R(Data);
  uint16_t Count = R.readU2();
  std::vector<std::string> Out;
  for (uint16_t I = 0; I != Count; ++I) {
    uint16_t Index = R.readU2();
    if (R.hasError())
      return makeError("truncated Exceptions attribute");
    auto Name = CP.getClassName(Index);
    if (!Name)
      return makeError("Exceptions attribute entry: " + Name.error());
    Out.push_back(Name.take());
  }
  return Out;
}

Status Parser::parseFields(ClassFile &CF) {
  uint16_t Count = Reader.readU2();
  if (Reader.hasError())
    return truncated("fields_count");
  for (uint16_t I = 0; I != Count; ++I) {
    FieldInfo Field;
    Field.AccessFlags = Reader.readU2();
    uint16_t NameIndex = Reader.readU2();
    uint16_t DescIndex = Reader.readU2();
    if (Reader.hasError())
      return truncated("field_info");
    auto Name = CF.CP.getUtf8(NameIndex);
    if (!Name)
      return makeError("field name: " + Name.error());
    auto Desc = CF.CP.getUtf8(DescIndex);
    if (!Desc)
      return makeError("field descriptor: " + Desc.error());
    Field.Name = Name.take();
    Field.Descriptor = Desc.take();
    std::vector<AttributeInfo> Raw;
    if (Status S = parseAttributes(CF.CP, Raw); !S)
      return S;
    for (AttributeInfo &Attr : Raw) {
      if (Attr.Name == "ConstantValue" && !Field.ConstantValue &&
          Attr.Data.size() == 2) {
        uint16_t CvIndex =
            static_cast<uint16_t>(Attr.Data[0] << 8 | Attr.Data[1]);
        if (!CF.CP.isValidIndex(CvIndex))
          return makeError("field " + Field.Name +
                           ": dangling ConstantValue index");
        const CpEntry &E = CF.CP.at(CvIndex);
        FieldConstant CV;
        switch (E.Tag) {
        case CpTag::Integer:
          CV.Kind = 'i';
          CV.IntValue = E.IntValue;
          break;
        case CpTag::Long:
          CV.Kind = 'j';
          CV.IntValue = E.LongValue;
          break;
        case CpTag::Float:
          CV.Kind = 'f';
          CV.FpValue = E.FloatValue;
          break;
        case CpTag::Double:
          CV.Kind = 'd';
          CV.FpValue = E.DoubleValue;
          break;
        case CpTag::String: {
          auto S = CF.CP.getUtf8(E.Ref1);
          if (!S)
            return makeError("field " + Field.Name +
                             ": dangling ConstantValue string");
          CV.Kind = 's';
          CV.StrValue = S.take();
          break;
        }
        default:
          return makeError("field " + Field.Name +
                           ": ConstantValue of unusable constant kind");
        }
        Field.ConstantValue = std::move(CV);
      } else {
        Field.Attributes.push_back(std::move(Attr));
      }
    }
    CF.Fields.push_back(std::move(Field));
  }
  return Status::success();
}

Status Parser::parseMethods(ClassFile &CF) {
  uint16_t Count = Reader.readU2();
  if (Reader.hasError())
    return truncated("methods_count");
  for (uint16_t I = 0; I != Count; ++I) {
    MethodInfo Method;
    Method.AccessFlags = Reader.readU2();
    uint16_t NameIndex = Reader.readU2();
    uint16_t DescIndex = Reader.readU2();
    if (Reader.hasError())
      return truncated("method_info");
    auto Name = CF.CP.getUtf8(NameIndex);
    if (!Name)
      return makeError("method name: " + Name.error());
    auto Desc = CF.CP.getUtf8(DescIndex);
    if (!Desc)
      return makeError("method descriptor: " + Desc.error());
    Method.Name = Name.take();
    Method.Descriptor = Desc.take();

    std::vector<AttributeInfo> Raw;
    if (Status S = parseAttributes(CF.CP, Raw); !S)
      return S;
    for (AttributeInfo &Attr : Raw) {
      if (Attr.Name == "Code" && !Method.Code) {
        auto Code = parseCode(CF.CP, Attr.Data);
        if (!Code)
          return makeError("method " + Method.Name + ": " + Code.error());
        Method.Code = Code.take();
      } else if (Attr.Name == "Exceptions" && Method.Exceptions.empty()) {
        auto Exceptions = parseExceptions(CF.CP, Attr.Data);
        if (!Exceptions)
          return makeError("method " + Method.Name + ": " +
                           Exceptions.error());
        Method.Exceptions = Exceptions.take();
      } else {
        Method.Attributes.push_back(std::move(Attr));
      }
    }
    CF.Methods.push_back(std::move(Method));
  }
  return Status::success();
}

Result<ClassFile> Parser::run() {
  ClassFile CF;
  CF.AccessFlags = 0;

  if (Reader.readU4() != ClassFileMagic)
    return makeError("bad magic number (expected 0xCAFEBABE)");
  CF.MinorVersion = Reader.readU2();
  CF.MajorVersion = Reader.readU2();
  if (Reader.hasError())
    return makeError("truncated class file while reading version");

  if (Status S = parseConstantPool(CF); !S)
    return makeError(S.error());

  CF.AccessFlags = Reader.readU2();
  uint16_t ThisIndex = Reader.readU2();
  uint16_t SuperIndex = Reader.readU2();
  if (Reader.hasError())
    return makeError("truncated class file while reading class header");

  auto ThisName = CF.CP.getClassName(ThisIndex);
  if (!ThisName)
    return makeError("this_class: " + ThisName.error());
  CF.ThisClass = ThisName.take();
  if (SuperIndex != 0) {
    auto SuperName = CF.CP.getClassName(SuperIndex);
    if (!SuperName)
      return makeError("super_class: " + SuperName.error());
    CF.SuperClass = SuperName.take();
  }

  uint16_t InterfaceCount = Reader.readU2();
  if (Reader.hasError())
    return makeError("truncated class file while reading interfaces_count");
  for (uint16_t I = 0; I != InterfaceCount; ++I) {
    uint16_t Index = Reader.readU2();
    if (Reader.hasError())
      return makeError("truncated class file while reading interfaces");
    auto Name = CF.CP.getClassName(Index);
    if (!Name)
      return makeError("interface: " + Name.error());
    CF.Interfaces.push_back(Name.take());
  }

  if (Status S = parseFields(CF); !S)
    return makeError(S.error());
  if (Status S = parseMethods(CF); !S)
    return makeError(S.error());
  if (Status S = parseAttributes(CF.CP, CF.Attributes); !S)
    return makeError(S.error());

  if (!Reader.atEnd())
    return makeError("extra bytes at end of class file");
  return CF;
}

} // namespace

Result<ClassFile> classfuzz::parseClassFile(const Bytes &Data) {
  return Parser(Data).run();
}
