//===- classfile/CodeBuilder.cpp ------------------------------------------===//

#include "classfile/CodeBuilder.h"

#include "classfile/Descriptor.h"

#include <cassert>

using namespace classfuzz;

void CodeBuilder::bind(Label L) {
  assert(!Bound.count(L) && "label bound twice");
  Bound[L] = currentOffset();
}

void CodeBuilder::emit(Opcode Op) { Code.push_back(Op); }

void CodeBuilder::emitU1(Opcode Op, uint8_t Operand) {
  Code.push_back(Op);
  Code.push_back(Operand);
}

void CodeBuilder::emitU2(Opcode Op, uint16_t Operand) {
  Code.push_back(Op);
  Code.push_back(static_cast<uint8_t>(Operand >> 8));
  Code.push_back(static_cast<uint8_t>(Operand));
}

void CodeBuilder::pushInt(int32_t Value) {
  if (Value >= -1 && Value <= 5) {
    emit(static_cast<Opcode>(OP_iconst_0 + Value));
    return;
  }
  if (Value >= -128 && Value <= 127) {
    emitU1(OP_bipush, static_cast<uint8_t>(Value));
    return;
  }
  if (Value >= -32768 && Value <= 32767) {
    emitU2(OP_sipush, static_cast<uint16_t>(Value));
    return;
  }
  uint16_t Index = CP.integer(Value);
  if (Index <= 0xFF)
    emitU1(OP_ldc, static_cast<uint8_t>(Index));
  else
    emitU2(OP_ldc_w, Index);
}

void CodeBuilder::pushString(const std::string &S) {
  uint16_t Index = CP.stringConst(S);
  if (Index <= 0xFF)
    emitU1(OP_ldc, static_cast<uint8_t>(Index));
  else
    emitU2(OP_ldc_w, Index);
}

void CodeBuilder::pushNull() { emit(OP_aconst_null); }

void CodeBuilder::loadLocal(char Kind, uint16_t Slot) {
  assert((Kind == 'i' || Kind == 'a') && "unsupported local kind");
  Opcode Base = Kind == 'i' ? OP_iload : OP_aload;
  Opcode ShortBase = Kind == 'i' ? OP_iload_0 : OP_aload_0;
  if (Slot <= 3) {
    emit(static_cast<Opcode>(ShortBase + Slot));
    return;
  }
  assert(Slot <= 0xFF && "wide locals not supported by CodeBuilder");
  emitU1(Base, static_cast<uint8_t>(Slot));
}

void CodeBuilder::storeLocal(char Kind, uint16_t Slot) {
  assert((Kind == 'i' || Kind == 'a') && "unsupported local kind");
  Opcode Base = Kind == 'i' ? OP_istore : OP_astore;
  Opcode ShortBase = Kind == 'i' ? OP_istore_0 : OP_astore_0;
  if (Slot <= 3) {
    emit(static_cast<Opcode>(ShortBase + Slot));
    return;
  }
  assert(Slot <= 0xFF && "wide locals not supported by CodeBuilder");
  emitU1(Base, static_cast<uint8_t>(Slot));
}

void CodeBuilder::iinc(uint8_t Slot, int8_t Delta) {
  Code.push_back(OP_iinc);
  Code.push_back(Slot);
  Code.push_back(static_cast<uint8_t>(Delta));
}

void CodeBuilder::emitMember(Opcode Op, CpTag Tag, const std::string &Class,
                             const std::string &Name,
                             const std::string &Desc) {
  uint16_t Index = 0;
  switch (Tag) {
  case CpTag::Fieldref:
    Index = CP.fieldRef(Class, Name, Desc);
    break;
  case CpTag::Methodref:
    Index = CP.methodRef(Class, Name, Desc);
    break;
  case CpTag::InterfaceMethodref:
    Index = CP.interfaceMethodRef(Class, Name, Desc);
    break;
  default:
    assert(false && "not a member tag");
  }
  emitU2(Op, Index);
}

void CodeBuilder::getStatic(const std::string &Class, const std::string &Name,
                            const std::string &Desc) {
  emitMember(OP_getstatic, CpTag::Fieldref, Class, Name, Desc);
}

void CodeBuilder::putStatic(const std::string &Class, const std::string &Name,
                            const std::string &Desc) {
  emitMember(OP_putstatic, CpTag::Fieldref, Class, Name, Desc);
}

void CodeBuilder::getField(const std::string &Class, const std::string &Name,
                           const std::string &Desc) {
  emitMember(OP_getfield, CpTag::Fieldref, Class, Name, Desc);
}

void CodeBuilder::putField(const std::string &Class, const std::string &Name,
                           const std::string &Desc) {
  emitMember(OP_putfield, CpTag::Fieldref, Class, Name, Desc);
}

void CodeBuilder::invokeVirtual(const std::string &Class,
                                const std::string &Name,
                                const std::string &Desc) {
  emitMember(OP_invokevirtual, CpTag::Methodref, Class, Name, Desc);
}

void CodeBuilder::invokeSpecial(const std::string &Class,
                                const std::string &Name,
                                const std::string &Desc) {
  emitMember(OP_invokespecial, CpTag::Methodref, Class, Name, Desc);
}

void CodeBuilder::invokeStatic(const std::string &Class,
                               const std::string &Name,
                               const std::string &Desc) {
  emitMember(OP_invokestatic, CpTag::Methodref, Class, Name, Desc);
}

void CodeBuilder::invokeInterface(const std::string &Class,
                                  const std::string &Name,
                                  const std::string &Desc) {
  uint16_t Index = CP.interfaceMethodRef(Class, Name, Desc);
  MethodDescriptor MD;
  int Count = 1;
  if (parseMethodDescriptor(Desc, MD))
    Count = 1 + MD.argSlots();
  Code.push_back(OP_invokeinterface);
  Code.push_back(static_cast<uint8_t>(Index >> 8));
  Code.push_back(static_cast<uint8_t>(Index));
  Code.push_back(static_cast<uint8_t>(Count));
  Code.push_back(0);
}

void CodeBuilder::newObject(const std::string &Class) {
  emitU2(OP_new, CP.classRef(Class));
}

void CodeBuilder::checkCast(const std::string &Class) {
  emitU2(OP_checkcast, CP.classRef(Class));
}

void CodeBuilder::instanceOf(const std::string &Class) {
  emitU2(OP_instanceof, CP.classRef(Class));
}

void CodeBuilder::aNewArray(const std::string &ComponentClass) {
  emitU2(OP_anewarray, CP.classRef(ComponentClass));
}

void CodeBuilder::branch(Opcode Op, Label L) {
  Fixups.emplace_back(currentOffset(), L);
  emitU2(Op, 0); // Placeholder displacement.
}

Bytes CodeBuilder::build() {
  for (const auto &[BranchOffset, L] : Fixups) {
    auto It = Bound.find(L);
    assert(It != Bound.end() && "branch to unbound label");
    int32_t Displacement =
        static_cast<int32_t>(It->second) - static_cast<int32_t>(BranchOffset);
    assert(Displacement >= -32768 && Displacement <= 32767 &&
           "branch displacement out of s2 range");
    Code[BranchOffset + 1] = static_cast<uint8_t>(Displacement >> 8);
    Code[BranchOffset + 2] = static_cast<uint8_t>(Displacement);
  }
  Fixups.clear();
  return std::move(Code);
}
