//===- classfile/CodeBuilder.h - Bytecode emission helper ----------------===//
//
// Part of classfuzz-cpp (PLDI 2016 classfuzz reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small assembler for JVM bytecode used by the runtime-library builder
/// and the JIR-to-classfile assembler: emits instructions into a code
/// array, supports forward branch labels with fixups, and tracks a
/// conservative operand-stack high-water mark.
///
//===----------------------------------------------------------------------===//

#ifndef CLASSFUZZ_CLASSFILE_CODEBUILDER_H
#define CLASSFUZZ_CLASSFILE_CODEBUILDER_H

#include "classfile/ClassFile.h"
#include "classfile/Opcodes.h"

#include <map>

namespace classfuzz {

/// Builds the code array of one method.
class CodeBuilder {
public:
  explicit CodeBuilder(ConstantPool &CP) : CP(CP) {}

  using Label = uint32_t;

  /// Creates a fresh, not-yet-bound label.
  Label newLabel() { return NextLabel++; }
  /// Binds \p L to the current code offset.
  void bind(Label L);

  // Simple instructions.
  void emit(Opcode Op);
  void emitU1(Opcode Op, uint8_t Operand);
  void emitU2(Opcode Op, uint16_t Operand);

  /// Pushes an int constant using the shortest encoding
  /// (iconst_N / bipush / sipush / ldc).
  void pushInt(int32_t Value);
  /// Pushes a string constant (ldc/ldc_w of a CONSTANT_String).
  void pushString(const std::string &S);
  /// aconst_null.
  void pushNull();

  void loadLocal(char Kind, uint16_t Slot);  ///< Kind in {'i','a'}.
  void storeLocal(char Kind, uint16_t Slot); ///< Kind in {'i','a'}.
  void iinc(uint8_t Slot, int8_t Delta);

  void getStatic(const std::string &Class, const std::string &Name,
                 const std::string &Desc);
  void putStatic(const std::string &Class, const std::string &Name,
                 const std::string &Desc);
  void getField(const std::string &Class, const std::string &Name,
                const std::string &Desc);
  void putField(const std::string &Class, const std::string &Name,
                const std::string &Desc);
  void invokeVirtual(const std::string &Class, const std::string &Name,
                     const std::string &Desc);
  void invokeSpecial(const std::string &Class, const std::string &Name,
                     const std::string &Desc);
  void invokeStatic(const std::string &Class, const std::string &Name,
                    const std::string &Desc);
  void invokeInterface(const std::string &Class, const std::string &Name,
                       const std::string &Desc);
  void newObject(const std::string &Class);
  void checkCast(const std::string &Class);
  void instanceOf(const std::string &Class);
  void aNewArray(const std::string &ComponentClass);

  /// Emits a branch to \p L (fixup applied at build() for forward refs).
  void branch(Opcode Op, Label L);

  /// Finalizes: applies fixups and returns the code bytes. All referenced
  /// labels must be bound.
  Bytes build();

  uint32_t currentOffset() const {
    return static_cast<uint32_t>(Code.size());
  }

private:
  void emitMember(Opcode Op, CpTag Tag, const std::string &Class,
                  const std::string &Name, const std::string &Desc);

  ConstantPool &CP;
  Bytes Code;
  Label NextLabel = 0;
  std::map<Label, uint32_t> Bound;
  std::vector<std::pair<uint32_t, Label>> Fixups; // (branch offset, label)
};

} // namespace classfuzz

#endif // CLASSFUZZ_CLASSFILE_CODEBUILDER_H
