//===- classfile/Opcodes.h - JVM bytecode opcodes and decoding -----------===//
//
// Part of classfuzz-cpp (PLDI 2016 classfuzz reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The standard JVM instruction set (JVMS §6): opcode constants, mnemonic
/// names, instruction lengths, and a bounds-checked decoder that iterates a
/// Code array instruction-by-instruction. The verifier and the interpreter
/// are both built on the decoder.
///
//===----------------------------------------------------------------------===//

#ifndef CLASSFUZZ_CLASSFILE_OPCODES_H
#define CLASSFUZZ_CLASSFILE_OPCODES_H

#include "support/ByteBuffer.h"

#include <cstdint>
#include <string>

namespace classfuzz {

/// JVM opcodes (subset constants are named; all 0x00-0xC9 are decodable).
enum Opcode : uint8_t {
  OP_nop = 0x00,
  OP_aconst_null = 0x01,
  OP_iconst_m1 = 0x02,
  OP_iconst_0 = 0x03,
  OP_iconst_1 = 0x04,
  OP_iconst_2 = 0x05,
  OP_iconst_3 = 0x06,
  OP_iconst_4 = 0x07,
  OP_iconst_5 = 0x08,
  OP_lconst_0 = 0x09,
  OP_lconst_1 = 0x0A,
  OP_fconst_0 = 0x0B,
  OP_dconst_0 = 0x0E,
  OP_bipush = 0x10,
  OP_sipush = 0x11,
  OP_ldc = 0x12,
  OP_ldc_w = 0x13,
  OP_ldc2_w = 0x14,
  OP_iload = 0x15,
  OP_lload = 0x16,
  OP_fload = 0x17,
  OP_dload = 0x18,
  OP_aload = 0x19,
  OP_iload_0 = 0x1A,
  OP_iload_1 = 0x1B,
  OP_iload_2 = 0x1C,
  OP_iload_3 = 0x1D,
  OP_aload_0 = 0x2A,
  OP_aload_1 = 0x2B,
  OP_aload_2 = 0x2C,
  OP_aload_3 = 0x2D,
  OP_iaload = 0x2E,
  OP_aaload = 0x32,
  OP_istore = 0x36,
  OP_lstore = 0x37,
  OP_fstore = 0x38,
  OP_dstore = 0x39,
  OP_astore = 0x3A,
  OP_istore_0 = 0x3B,
  OP_istore_1 = 0x3C,
  OP_istore_2 = 0x3D,
  OP_istore_3 = 0x3E,
  OP_astore_0 = 0x4B,
  OP_astore_1 = 0x4C,
  OP_astore_2 = 0x4D,
  OP_astore_3 = 0x4E,
  OP_iastore = 0x4F,
  OP_aastore = 0x53,
  OP_pop = 0x57,
  OP_pop2 = 0x58,
  OP_dup = 0x59,
  OP_dup_x1 = 0x5A,
  OP_swap = 0x5F,
  OP_iadd = 0x60,
  OP_isub = 0x64,
  OP_imul = 0x68,
  OP_idiv = 0x6C,
  OP_irem = 0x70,
  OP_ineg = 0x74,
  OP_ishl = 0x78,
  OP_ishr = 0x7A,
  OP_iand = 0x7E,
  OP_ior = 0x80,
  OP_ixor = 0x82,
  OP_iinc = 0x84,
  OP_i2l = 0x85,
  OP_i2b = 0x91,
  OP_ifeq = 0x99,
  OP_ifne = 0x9A,
  OP_iflt = 0x9B,
  OP_ifge = 0x9C,
  OP_ifgt = 0x9D,
  OP_ifle = 0x9E,
  OP_if_icmpeq = 0x9F,
  OP_if_icmpne = 0xA0,
  OP_if_icmplt = 0xA1,
  OP_if_icmpge = 0xA2,
  OP_if_icmpgt = 0xA3,
  OP_if_icmple = 0xA4,
  OP_if_acmpeq = 0xA5,
  OP_if_acmpne = 0xA6,
  OP_goto = 0xA7,
  OP_jsr = 0xA8,
  OP_ret = 0xA9,
  OP_tableswitch = 0xAA,
  OP_lookupswitch = 0xAB,
  OP_ireturn = 0xAC,
  OP_lreturn = 0xAD,
  OP_freturn = 0xAE,
  OP_dreturn = 0xAF,
  OP_areturn = 0xB0,
  OP_return = 0xB1,
  OP_getstatic = 0xB2,
  OP_putstatic = 0xB3,
  OP_getfield = 0xB4,
  OP_putfield = 0xB5,
  OP_invokevirtual = 0xB6,
  OP_invokespecial = 0xB7,
  OP_invokestatic = 0xB8,
  OP_invokeinterface = 0xB9,
  OP_invokedynamic = 0xBA,
  OP_new = 0xBB,
  OP_newarray = 0xBC,
  OP_anewarray = 0xBD,
  OP_arraylength = 0xBE,
  OP_athrow = 0xBF,
  OP_checkcast = 0xC0,
  OP_instanceof = 0xC1,
  OP_monitorenter = 0xC2,
  OP_monitorexit = 0xC3,
  OP_wide = 0xC4,
  OP_multianewarray = 0xC5,
  OP_ifnull = 0xC6,
  OP_ifnonnull = 0xC7,
  OP_goto_w = 0xC8,
  OP_jsr_w = 0xC9,
};

/// Returns the mnemonic of \p Op, or "illegal_0xNN" for undefined opcodes.
std::string opcodeName(uint8_t Op);

/// Fixed instruction length of \p Op in bytes (opcode included); 0 for
/// undefined opcodes; -1 for variable-length (tableswitch, lookupswitch,
/// wide).
int opcodeLength(uint8_t Op);

/// True when \p Op is a defined standard JVM opcode.
bool isDefinedOpcode(uint8_t Op);

/// One decoded instruction. Operands beyond two u2s are not materialized;
/// clients re-read switch tables from the code bytes via Offset.
struct Insn {
  uint8_t Op = OP_nop;
  uint32_t Offset = 0; ///< Byte offset of the opcode within the code array.
  uint32_t Length = 1; ///< Total encoded length.
  int32_t Operand1 = 0; ///< Index / value / branch target (absolute offset).
  int32_t Operand2 = 0; ///< Secondary operand (iinc delta, interface count).
};

/// Iterates the instructions of a code array. decodeNext() returns false at
/// the end of the array or on malformed encoding (truncated operands,
/// undefined opcode) -- check valid() to distinguish.
class InsnDecoder {
public:
  explicit InsnDecoder(const Bytes &Code) : Code(Code) {}

  /// Decodes the instruction at the cursor into \p Out and advances.
  bool decodeNext(Insn &Out);

  /// True while no malformed encoding has been seen.
  bool valid() const { return !Malformed; }
  bool atEnd() const { return Pos >= Code.size(); }
  uint32_t position() const { return Pos; }
  /// Repositions the cursor (used for branch-target re-decoding).
  void seek(uint32_t Offset) {
    Pos = Offset;
    Malformed = false;
  }

private:
  const Bytes &Code;
  uint32_t Pos = 0;
  bool Malformed = false;
};

} // namespace classfuzz

#endif // CLASSFUZZ_CLASSFILE_OPCODES_H
