//===- classfile/ClassWriter.h - Class file serialization ----------------===//
//
// Part of classfuzz-cpp (PLDI 2016 classfuzz reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serializes a ClassFile back to class file bytes. Resolved names are
/// re-interned into the class's (append-only) constant pool, so raw code
/// bytes carrying constant-pool indices stay valid.
///
//===----------------------------------------------------------------------===//

#ifndef CLASSFUZZ_CLASSFILE_CLASSWRITER_H
#define CLASSFUZZ_CLASSFILE_CLASSWRITER_H

#include "classfile/ClassFile.h"
#include "support/Result.h"

namespace classfuzz {

/// Serializes \p CF. Mutates CF's constant pool by interning any names not
/// yet present. Fails only on hard limits (constant pool overflow).
Result<Bytes> writeClassFile(ClassFile &CF);

} // namespace classfuzz

#endif // CLASSFUZZ_CLASSFILE_CLASSWRITER_H
