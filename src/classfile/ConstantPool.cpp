//===- classfile/ConstantPool.cpp -----------------------------------------===//

#include "classfile/ConstantPool.h"

#include <cassert>

using namespace classfuzz;

const char *classfuzz::cpTagName(CpTag Tag) {
  switch (Tag) {
  case CpTag::Invalid:
    return "CONSTANT_Invalid";
  case CpTag::Utf8:
    return "CONSTANT_Utf8";
  case CpTag::Integer:
    return "CONSTANT_Integer";
  case CpTag::Float:
    return "CONSTANT_Float";
  case CpTag::Long:
    return "CONSTANT_Long";
  case CpTag::Double:
    return "CONSTANT_Double";
  case CpTag::Class:
    return "CONSTANT_Class";
  case CpTag::String:
    return "CONSTANT_String";
  case CpTag::Fieldref:
    return "CONSTANT_Fieldref";
  case CpTag::Methodref:
    return "CONSTANT_Methodref";
  case CpTag::InterfaceMethodref:
    return "CONSTANT_InterfaceMethodref";
  case CpTag::NameAndType:
    return "CONSTANT_NameAndType";
  case CpTag::MethodHandle:
    return "CONSTANT_MethodHandle";
  case CpTag::MethodType:
    return "CONSTANT_MethodType";
  case CpTag::InvokeDynamic:
    return "CONSTANT_InvokeDynamic";
  }
  return "CONSTANT_Unknown";
}

static bool entriesEqual(const CpEntry &A, const CpEntry &B) {
  if (A.Tag != B.Tag)
    return false;
  switch (A.Tag) {
  case CpTag::Utf8:
    return A.Utf8 == B.Utf8;
  case CpTag::Integer:
    return A.IntValue == B.IntValue;
  case CpTag::Float:
    return A.FloatValue == B.FloatValue;
  case CpTag::Long:
    return A.LongValue == B.LongValue;
  case CpTag::Double:
    return A.DoubleValue == B.DoubleValue;
  default:
    return A.Ref1 == B.Ref1 && A.Ref2 == B.Ref2 && A.Kind == B.Kind;
  }
}

uint16_t ConstantPool::addRaw(CpEntry Entry) {
  assert(Entries.size() < 0xFFFF && "constant pool overflow");
  CpTag Tag = Entry.Tag;
  Entries.push_back(std::move(Entry));
  uint16_t Index = static_cast<uint16_t>(Entries.size() - 1);
  // Long and Double take two slots (JVMS §4.4.5): append a placeholder.
  if (Tag == CpTag::Long || Tag == CpTag::Double)
    Entries.emplace_back();
  return Index;
}

uint16_t ConstantPool::intern(const CpEntry &Entry) {
  for (size_t I = 1; I < Entries.size(); ++I)
    if (entriesEqual(Entries[I], Entry))
      return static_cast<uint16_t>(I);
  return addRaw(Entry);
}

uint16_t ConstantPool::utf8(const std::string &S) {
  CpEntry E;
  E.Tag = CpTag::Utf8;
  E.Utf8 = S;
  return intern(E);
}

uint16_t ConstantPool::integer(int32_t V) {
  CpEntry E;
  E.Tag = CpTag::Integer;
  E.IntValue = V;
  return intern(E);
}

uint16_t ConstantPool::floatConst(float V) {
  CpEntry E;
  E.Tag = CpTag::Float;
  E.FloatValue = V;
  return intern(E);
}

uint16_t ConstantPool::longConst(int64_t V) {
  CpEntry E;
  E.Tag = CpTag::Long;
  E.LongValue = V;
  return intern(E);
}

uint16_t ConstantPool::doubleConst(double V) {
  CpEntry E;
  E.Tag = CpTag::Double;
  E.DoubleValue = V;
  return intern(E);
}

uint16_t ConstantPool::classRef(const std::string &InternalName) {
  CpEntry E;
  E.Tag = CpTag::Class;
  E.Ref1 = utf8(InternalName);
  return intern(E);
}

uint16_t ConstantPool::stringConst(const std::string &S) {
  CpEntry E;
  E.Tag = CpTag::String;
  E.Ref1 = utf8(S);
  return intern(E);
}

uint16_t ConstantPool::nameAndType(const std::string &Name,
                                   const std::string &Desc) {
  CpEntry E;
  E.Tag = CpTag::NameAndType;
  E.Ref1 = utf8(Name);
  E.Ref2 = utf8(Desc);
  return intern(E);
}

uint16_t ConstantPool::fieldRef(const std::string &Class,
                                const std::string &Name,
                                const std::string &Desc) {
  CpEntry E;
  E.Tag = CpTag::Fieldref;
  E.Ref1 = classRef(Class);
  E.Ref2 = nameAndType(Name, Desc);
  return intern(E);
}

uint16_t ConstantPool::methodRef(const std::string &Class,
                                 const std::string &Name,
                                 const std::string &Desc) {
  CpEntry E;
  E.Tag = CpTag::Methodref;
  E.Ref1 = classRef(Class);
  E.Ref2 = nameAndType(Name, Desc);
  return intern(E);
}

uint16_t ConstantPool::interfaceMethodRef(const std::string &Class,
                                          const std::string &Name,
                                          const std::string &Desc) {
  CpEntry E;
  E.Tag = CpTag::InterfaceMethodref;
  E.Ref1 = classRef(Class);
  E.Ref2 = nameAndType(Name, Desc);
  return intern(E);
}

Result<std::string> ConstantPool::getUtf8(uint16_t Index) const {
  if (!isValidIndex(Index) || Entries[Index].Tag != CpTag::Utf8)
    return makeError("constant pool index " + std::to_string(Index) +
                     " is not a CONSTANT_Utf8");
  return Entries[Index].Utf8;
}

Result<std::string> ConstantPool::getClassName(uint16_t Index) const {
  if (!isValidIndex(Index) || Entries[Index].Tag != CpTag::Class)
    return makeError("constant pool index " + std::to_string(Index) +
                     " is not a CONSTANT_Class");
  return getUtf8(Entries[Index].Ref1);
}

Result<std::pair<std::string, std::string>>
ConstantPool::getNameAndType(uint16_t Index) const {
  if (!isValidIndex(Index) || Entries[Index].Tag != CpTag::NameAndType)
    return makeError("constant pool index " + std::to_string(Index) +
                     " is not a CONSTANT_NameAndType");
  auto Name = getUtf8(Entries[Index].Ref1);
  if (!Name)
    return makeError(Name.error());
  auto Desc = getUtf8(Entries[Index].Ref2);
  if (!Desc)
    return makeError(Desc.error());
  return std::make_pair(Name.take(), Desc.take());
}

Result<ConstantPool::MemberRef>
ConstantPool::getMemberRef(uint16_t Index) const {
  if (!isValidIndex(Index))
    return makeError("constant pool index " + std::to_string(Index) +
                     " out of range");
  const CpEntry &E = Entries[Index];
  if (E.Tag != CpTag::Fieldref && E.Tag != CpTag::Methodref &&
      E.Tag != CpTag::InterfaceMethodref)
    return makeError("constant pool index " + std::to_string(Index) +
                     " is not a member reference");
  auto Class = getClassName(E.Ref1);
  if (!Class)
    return makeError(Class.error());
  auto NaT = getNameAndType(E.Ref2);
  if (!NaT)
    return makeError(NaT.error());
  MemberRef Ref;
  Ref.ClassName = Class.take();
  Ref.Name = NaT->first;
  Ref.Descriptor = NaT->second;
  return Ref;
}
