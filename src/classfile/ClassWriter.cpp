//===- classfile/ClassWriter.cpp ------------------------------------------===//

#include "classfile/ClassWriter.h"

using namespace classfuzz;

namespace {

void writeCpEntry(ByteWriter &W, const CpEntry &E) {
  // The upper-half placeholder of a Long/Double occupies an index but
  // has no wire representation at all (JVMS §4.4.5).
  if (E.Tag == CpTag::Invalid)
    return;
  W.writeU1(static_cast<uint8_t>(E.Tag));
  switch (E.Tag) {
  case CpTag::Utf8:
    W.writeU2(static_cast<uint16_t>(E.Utf8.size()));
    W.writeString(E.Utf8);
    break;
  case CpTag::Integer:
    W.writeU4(static_cast<uint32_t>(E.IntValue));
    break;
  case CpTag::Float: {
    uint32_t Raw;
    __builtin_memcpy(&Raw, &E.FloatValue, 4);
    W.writeU4(Raw);
    break;
  }
  case CpTag::Long:
    W.writeU8(static_cast<uint64_t>(E.LongValue));
    break;
  case CpTag::Double: {
    uint64_t Raw;
    __builtin_memcpy(&Raw, &E.DoubleValue, 8);
    W.writeU8(Raw);
    break;
  }
  case CpTag::Class:
  case CpTag::String:
  case CpTag::MethodType:
    W.writeU2(E.Ref1);
    break;
  case CpTag::Fieldref:
  case CpTag::Methodref:
  case CpTag::InterfaceMethodref:
  case CpTag::NameAndType:
  case CpTag::InvokeDynamic:
    W.writeU2(E.Ref1);
    W.writeU2(E.Ref2);
    break;
  case CpTag::MethodHandle:
    W.writeU1(E.Kind);
    W.writeU2(E.Ref1);
    break;
  case CpTag::Invalid:
    // Placeholder slot of a Long/Double: nothing on the wire.
    break;
  }
}

void writeAttribute(ByteWriter &W, ConstantPool &CP,
                    const AttributeInfo &Attr) {
  W.writeU2(CP.utf8(Attr.Name));
  W.writeU4(static_cast<uint32_t>(Attr.Data.size()));
  W.writeBytes(Attr.Data);
}

Bytes serializeCode(ConstantPool &CP, const CodeAttr &Code) {
  ByteWriter W;
  W.writeU2(Code.MaxStack);
  W.writeU2(Code.MaxLocals);
  W.writeU4(static_cast<uint32_t>(Code.Code.size()));
  W.writeBytes(Code.Code);
  W.writeU2(static_cast<uint16_t>(Code.ExceptionTable.size()));
  for (const ExceptionTableEntry &E : Code.ExceptionTable) {
    W.writeU2(E.StartPc);
    W.writeU2(E.EndPc);
    W.writeU2(E.HandlerPc);
    W.writeU2(E.CatchType.empty() ? 0 : CP.classRef(E.CatchType));
  }
  W.writeU2(static_cast<uint16_t>(Code.Attributes.size()));
  for (const AttributeInfo &Attr : Code.Attributes)
    writeAttribute(W, CP, Attr);
  return W.take();
}

Bytes serializeExceptions(ConstantPool &CP,
                          const std::vector<std::string> &Exceptions) {
  ByteWriter W;
  W.writeU2(static_cast<uint16_t>(Exceptions.size()));
  for (const std::string &Name : Exceptions)
    W.writeU2(CP.classRef(Name));
  return W.take();
}

} // namespace

Result<Bytes> classfuzz::writeClassFile(ClassFile &CF) {
  ConstantPool &CP = CF.CP;

  // Phase 1: intern every name so the pool is complete before emission.
  // Collecting indices up front also serializes nested attribute payloads,
  // which themselves intern into the pool.
  uint16_t ThisIndex = CP.classRef(CF.ThisClass);
  uint16_t SuperIndex = CF.SuperClass.empty() ? 0 : CP.classRef(CF.SuperClass);
  std::vector<uint16_t> InterfaceIndices;
  InterfaceIndices.reserve(CF.Interfaces.size());
  for (const std::string &Name : CF.Interfaces)
    InterfaceIndices.push_back(CP.classRef(Name));

  struct SerializedMember {
    uint16_t NameIndex;
    uint16_t DescIndex;
    std::vector<std::pair<uint16_t, Bytes>> Attrs; // (name idx, payload)
  };

  std::vector<SerializedMember> Fields;
  for (const FieldInfo &F : CF.Fields) {
    SerializedMember M;
    M.NameIndex = CP.utf8(F.Name);
    M.DescIndex = CP.utf8(F.Descriptor);
    if (F.ConstantValue) {
      uint16_t CvIndex = 0;
      switch (F.ConstantValue->Kind) {
      case 'i':
        CvIndex = CP.integer(
            static_cast<int32_t>(F.ConstantValue->IntValue));
        break;
      case 'j':
        CvIndex = CP.longConst(F.ConstantValue->IntValue);
        break;
      case 'f':
        CvIndex =
            CP.floatConst(static_cast<float>(F.ConstantValue->FpValue));
        break;
      case 'd':
        CvIndex = CP.doubleConst(F.ConstantValue->FpValue);
        break;
      default:
        CvIndex = CP.stringConst(F.ConstantValue->StrValue);
        break;
      }
      ByteWriter W;
      W.writeU2(CvIndex);
      M.Attrs.emplace_back(CP.utf8("ConstantValue"), W.take());
    }
    for (const AttributeInfo &Attr : F.Attributes)
      M.Attrs.emplace_back(CP.utf8(Attr.Name), Attr.Data);
    Fields.push_back(std::move(M));
  }

  std::vector<SerializedMember> Methods;
  for (const MethodInfo &Method : CF.Methods) {
    SerializedMember M;
    M.NameIndex = CP.utf8(Method.Name);
    M.DescIndex = CP.utf8(Method.Descriptor);
    if (Method.Code)
      M.Attrs.emplace_back(CP.utf8("Code"), serializeCode(CP, *Method.Code));
    if (!Method.Exceptions.empty())
      M.Attrs.emplace_back(CP.utf8("Exceptions"),
                           serializeExceptions(CP, Method.Exceptions));
    for (const AttributeInfo &Attr : Method.Attributes)
      M.Attrs.emplace_back(CP.utf8(Attr.Name), Attr.Data);
    Methods.push_back(std::move(M));
  }

  std::vector<std::pair<uint16_t, Bytes>> ClassAttrs;
  for (const AttributeInfo &Attr : CF.Attributes)
    ClassAttrs.emplace_back(CP.utf8(Attr.Name), Attr.Data);

  if (CP.count() == 0xFFFF)
    return makeError("constant pool overflow while writing class file");

  // Phase 2: emit.
  ByteWriter W;
  W.writeU4(ClassFileMagic);
  W.writeU2(CF.MinorVersion);
  W.writeU2(CF.MajorVersion);

  W.writeU2(CP.count());
  for (uint16_t I = 1; I < CP.count(); ++I)
    writeCpEntry(W, CP.at(I));

  W.writeU2(CF.AccessFlags);
  W.writeU2(ThisIndex);
  W.writeU2(SuperIndex);

  W.writeU2(static_cast<uint16_t>(InterfaceIndices.size()));
  for (uint16_t Index : InterfaceIndices)
    W.writeU2(Index);

  auto emitMembers = [&](const std::vector<SerializedMember> &Members,
                         const std::vector<uint16_t> &Flags) {
    W.writeU2(static_cast<uint16_t>(Members.size()));
    for (size_t I = 0; I != Members.size(); ++I) {
      const SerializedMember &M = Members[I];
      W.writeU2(Flags[I]);
      W.writeU2(M.NameIndex);
      W.writeU2(M.DescIndex);
      W.writeU2(static_cast<uint16_t>(M.Attrs.size()));
      for (const auto &[NameIndex, Data] : M.Attrs) {
        W.writeU2(NameIndex);
        W.writeU4(static_cast<uint32_t>(Data.size()));
        W.writeBytes(Data);
      }
    }
  };

  std::vector<uint16_t> FieldFlags;
  for (const FieldInfo &F : CF.Fields)
    FieldFlags.push_back(F.AccessFlags);
  emitMembers(Fields, FieldFlags);

  std::vector<uint16_t> MethodFlags;
  for (const MethodInfo &M : CF.Methods)
    MethodFlags.push_back(M.AccessFlags);
  emitMembers(Methods, MethodFlags);

  W.writeU2(static_cast<uint16_t>(ClassAttrs.size()));
  for (const auto &[NameIndex, Data] : ClassAttrs) {
    W.writeU2(NameIndex);
    W.writeU4(static_cast<uint32_t>(Data.size()));
    W.writeBytes(Data);
  }

  return W.take();
}
