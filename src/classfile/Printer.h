//===- classfile/Printer.h - javap-style class file dumping --------------===//
//
// Part of classfuzz-cpp (PLDI 2016 classfuzz reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders a ClassFile in a javap -v style textual form (Figure 2 of the
/// paper shows such a dump). Used by the inspect_classfile example and by
/// discrepancy reports.
///
//===----------------------------------------------------------------------===//

#ifndef CLASSFUZZ_CLASSFILE_PRINTER_H
#define CLASSFUZZ_CLASSFILE_PRINTER_H

#include "classfile/ClassFile.h"

#include <string>

namespace classfuzz {

/// Full dump: header, constant pool, fields, methods with disassembly.
std::string printClassFile(const ClassFile &CF);

/// Disassembles one code array ("0: getstatic #12", ...).
std::string disassemble(const ConstantPool &CP, const Bytes &Code);

} // namespace classfuzz

#endif // CLASSFUZZ_CLASSFILE_PRINTER_H
