//===- classfile/Descriptor.cpp -------------------------------------------===//

#include "classfile/Descriptor.h"

#include <cassert>

using namespace classfuzz;

std::string JType::toDescriptor() const {
  std::string Out(ArrayDims, '[');
  switch (Kind) {
  case TypeKind::Void:
    Out += 'V';
    break;
  case TypeKind::Boolean:
    Out += 'Z';
    break;
  case TypeKind::Byte:
    Out += 'B';
    break;
  case TypeKind::Char:
    Out += 'C';
    break;
  case TypeKind::Short:
    Out += 'S';
    break;
  case TypeKind::Int:
    Out += 'I';
    break;
  case TypeKind::Long:
    Out += 'J';
    break;
  case TypeKind::Float:
    Out += 'F';
    break;
  case TypeKind::Double:
    Out += 'D';
    break;
  case TypeKind::Reference:
    Out += 'L';
    Out += ClassName;
    Out += ';';
    break;
  case TypeKind::Array:
    assert(false && "Array kind must be expressed via ArrayDims");
    break;
  }
  return Out;
}

std::string JType::toJavaName() const {
  std::string Base;
  switch (Kind) {
  case TypeKind::Void:
    Base = "void";
    break;
  case TypeKind::Boolean:
    Base = "boolean";
    break;
  case TypeKind::Byte:
    Base = "byte";
    break;
  case TypeKind::Char:
    Base = "char";
    break;
  case TypeKind::Short:
    Base = "short";
    break;
  case TypeKind::Int:
    Base = "int";
    break;
  case TypeKind::Long:
    Base = "long";
    break;
  case TypeKind::Float:
    Base = "float";
    break;
  case TypeKind::Double:
    Base = "double";
    break;
  case TypeKind::Reference:
  case TypeKind::Array: {
    Base = ClassName;
    for (char &C : Base)
      if (C == '/')
        C = '.';
    break;
  }
  }
  for (unsigned I = 0; I != ArrayDims; ++I)
    Base += "[]";
  return Base;
}

int MethodDescriptor::argSlots() const {
  int Slots = 0;
  for (const JType &P : Params)
    Slots += P.slotWidth();
  return Slots;
}

std::string MethodDescriptor::toDescriptor() const {
  std::string Out = "(";
  for (const JType &P : Params)
    Out += P.toDescriptor();
  Out += ")";
  Out += ReturnType.toDescriptor();
  return Out;
}

/// Parses one type starting at \p Pos; advances Pos past it. Returns false
/// on malformed input. \p AllowVoid permits 'V' (return position only).
static bool parseOneType(const std::string &Desc, size_t &Pos, JType &Out,
                         bool AllowVoid) {
  Out = JType();
  unsigned Dims = 0;
  while (Pos < Desc.size() && Desc[Pos] == '[') {
    ++Pos;
    if (++Dims > 255)
      return false; // JVMS limit on array dimensionality.
  }
  if (Pos >= Desc.size())
    return false;
  Out.ArrayDims = static_cast<uint8_t>(Dims);
  switch (Desc[Pos]) {
  case 'V':
    if (!AllowVoid || Dims != 0)
      return false;
    Out.Kind = TypeKind::Void;
    ++Pos;
    return true;
  case 'Z':
    Out.Kind = TypeKind::Boolean;
    ++Pos;
    return true;
  case 'B':
    Out.Kind = TypeKind::Byte;
    ++Pos;
    return true;
  case 'C':
    Out.Kind = TypeKind::Char;
    ++Pos;
    return true;
  case 'S':
    Out.Kind = TypeKind::Short;
    ++Pos;
    return true;
  case 'I':
    Out.Kind = TypeKind::Int;
    ++Pos;
    return true;
  case 'J':
    Out.Kind = TypeKind::Long;
    ++Pos;
    return true;
  case 'F':
    Out.Kind = TypeKind::Float;
    ++Pos;
    return true;
  case 'D':
    Out.Kind = TypeKind::Double;
    ++Pos;
    return true;
  case 'L': {
    size_t End = Desc.find(';', Pos);
    if (End == std::string::npos || End == Pos + 1)
      return false;
    Out.Kind = TypeKind::Reference;
    Out.ClassName = Desc.substr(Pos + 1, End - Pos - 1);
    Pos = End + 1;
    return true;
  }
  default:
    return false;
  }
}

bool classfuzz::parseFieldDescriptor(const std::string &Desc, JType &Out) {
  size_t Pos = 0;
  if (!parseOneType(Desc, Pos, Out, /*AllowVoid=*/false))
    return false;
  return Pos == Desc.size();
}

bool classfuzz::parseMethodDescriptor(const std::string &Desc,
                                      MethodDescriptor &Out) {
  Out = MethodDescriptor();
  if (Desc.empty() || Desc[0] != '(')
    return false;
  size_t Pos = 1;
  while (Pos < Desc.size() && Desc[Pos] != ')') {
    JType Param;
    if (!parseOneType(Desc, Pos, Param, /*AllowVoid=*/false))
      return false;
    Out.Params.push_back(std::move(Param));
  }
  if (Pos >= Desc.size() || Desc[Pos] != ')')
    return false;
  ++Pos;
  if (!parseOneType(Desc, Pos, Out.ReturnType, /*AllowVoid=*/true))
    return false;
  return Pos == Desc.size();
}

bool classfuzz::isValidFieldDescriptor(const std::string &Desc) {
  JType T;
  return parseFieldDescriptor(Desc, T);
}

bool classfuzz::isValidMethodDescriptor(const std::string &Desc) {
  MethodDescriptor M;
  return parseMethodDescriptor(Desc, M);
}

JType classfuzz::intType() {
  JType T;
  T.Kind = TypeKind::Int;
  return T;
}

JType classfuzz::voidType() { return JType(); }

JType classfuzz::refType(const std::string &InternalName) {
  JType T;
  T.Kind = TypeKind::Reference;
  T.ClassName = InternalName;
  return T;
}

JType classfuzz::arrayOf(JType Component) {
  assert(Component.Kind != TypeKind::Void && "array of void");
  Component.ArrayDims = static_cast<uint8_t>(Component.ArrayDims + 1);
  return Component;
}
