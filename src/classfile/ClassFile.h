//===- classfile/ClassFile.h - In-memory class file model ----------------===//
//
// Part of classfuzz-cpp (PLDI 2016 classfuzz reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The in-memory representation of a parsed Java class file (JVMS §4.1).
/// Member names/descriptors and class references are stored resolved (as
/// strings) for ergonomic mutation, while bytecode stays as raw code bytes
/// whose embedded constant-pool indices refer into the owned ConstantPool.
/// The pool is append-only, so resolved strings and raw code indices stay
/// consistent across mutation and re-serialization.
///
//===----------------------------------------------------------------------===//

#ifndef CLASSFUZZ_CLASSFILE_CLASSFILE_H
#define CLASSFUZZ_CLASSFILE_CLASSFILE_H

#include "classfile/AccessFlags.h"
#include "classfile/ConstantPool.h"
#include "support/ByteBuffer.h"

#include <optional>
#include <string>
#include <vector>

namespace classfuzz {

/// Magic number of every class file.
inline constexpr uint32_t ClassFileMagic = 0xCAFEBABE;

/// Major versions of interest (J2SE 7 = 51, the paper pins mutants to 51).
inline constexpr uint16_t MajorVersionJava5 = 49;
inline constexpr uint16_t MajorVersionJava6 = 50;
inline constexpr uint16_t MajorVersionJava7 = 51;
inline constexpr uint16_t MajorVersionJava8 = 52;
inline constexpr uint16_t MajorVersionJava9 = 53;

/// An attribute kept in raw form (unknown or passthrough attributes).
struct AttributeInfo {
  std::string Name;
  Bytes Data;
};

/// One entry of a Code attribute's exception_table.
struct ExceptionTableEntry {
  uint16_t StartPc = 0;
  uint16_t EndPc = 0;
  uint16_t HandlerPc = 0;
  /// Internal name of the caught class; empty means catch-all (finally).
  std::string CatchType;
};

/// A parsed Code attribute (JVMS §4.7.3).
struct CodeAttr {
  uint16_t MaxStack = 0;
  uint16_t MaxLocals = 0;
  Bytes Code;
  std::vector<ExceptionTableEntry> ExceptionTable;
  std::vector<AttributeInfo> Attributes; ///< Nested attributes, raw.
};

/// A parsed ConstantValue attribute (JVMS §4.7.2): the compile-time
/// constant a static field is initialized to during preparation.
struct FieldConstant {
  /// 'i' int-like, 'j' long, 'f' float, 'd' double, 's' String.
  char Kind = 'i';
  int64_t IntValue = 0;
  double FpValue = 0;
  std::string StrValue;

  friend bool operator==(const FieldConstant &,
                         const FieldConstant &) = default;
};

/// field_info with resolved name/descriptor.
struct FieldInfo {
  uint16_t AccessFlags = 0;
  std::string Name;
  std::string Descriptor;
  /// ConstantValue attribute, when present.
  std::optional<FieldConstant> ConstantValue;
  std::vector<AttributeInfo> Attributes;

  bool isStatic() const { return AccessFlags & ACC_STATIC; }
};

/// method_info with resolved name/descriptor, the Code attribute parsed,
/// and the Exceptions attribute resolved to class names.
struct MethodInfo {
  uint16_t AccessFlags = 0;
  std::string Name;
  std::string Descriptor;
  std::optional<CodeAttr> Code;
  /// Declared thrown exception class names (Exceptions attribute).
  std::vector<std::string> Exceptions;
  std::vector<AttributeInfo> Attributes;

  bool isStatic() const { return AccessFlags & ACC_STATIC; }
  bool isAbstract() const { return AccessFlags & ACC_ABSTRACT; }
  bool isNative() const { return AccessFlags & ACC_NATIVE; }
};

/// A whole class file.
struct ClassFile {
  uint16_t MinorVersion = 0;
  uint16_t MajorVersion = MajorVersionJava7;
  ConstantPool CP;
  uint16_t AccessFlags = ACC_PUBLIC | ACC_SUPER;
  std::string ThisClass;  ///< Internal name, e.g. "M1436188543".
  std::string SuperClass; ///< Internal name; empty only for java/lang/Object.
  std::vector<std::string> Interfaces;
  std::vector<FieldInfo> Fields;
  std::vector<MethodInfo> Methods;
  std::vector<AttributeInfo> Attributes;

  bool isInterface() const { return AccessFlags & ACC_INTERFACE; }

  /// Finds a method by name+descriptor; nullptr when absent.
  const MethodInfo *findMethod(const std::string &Name,
                               const std::string &Descriptor) const;
  MethodInfo *findMethod(const std::string &Name,
                         const std::string &Descriptor);
  /// Finds the first method with \p Name regardless of descriptor.
  const MethodInfo *findMethodByName(const std::string &Name) const;
  /// Finds a field by name; nullptr when absent.
  const FieldInfo *findField(const std::string &Name) const;
};

} // namespace classfuzz

#endif // CLASSFUZZ_CLASSFILE_CLASSFILE_H
