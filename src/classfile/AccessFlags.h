//===- classfile/AccessFlags.h - JVM access/property flag constants ------===//
//
// Part of classfuzz-cpp (PLDI 2016 classfuzz reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The access_flags bit constants of the JVM specification (Tables 4.1-A,
/// 4.5-A, 4.6-A of JVMS SE 8) and pretty-printing helpers.
///
//===----------------------------------------------------------------------===//

#ifndef CLASSFUZZ_CLASSFILE_ACCESSFLAGS_H
#define CLASSFUZZ_CLASSFILE_ACCESSFLAGS_H

#include <cstdint>
#include <string>

namespace classfuzz {

enum AccessFlag : uint16_t {
  ACC_PUBLIC = 0x0001,
  ACC_PRIVATE = 0x0002,
  ACC_PROTECTED = 0x0004,
  ACC_STATIC = 0x0008,
  ACC_FINAL = 0x0010,
  ACC_SUPER = 0x0020,      // class
  ACC_SYNCHRONIZED = 0x0020, // method
  ACC_VOLATILE = 0x0040,   // field
  ACC_BRIDGE = 0x0040,     // method
  ACC_TRANSIENT = 0x0080,  // field
  ACC_VARARGS = 0x0080,    // method
  ACC_NATIVE = 0x0100,
  ACC_INTERFACE = 0x0200,
  ACC_ABSTRACT = 0x0400,
  ACC_STRICT = 0x0800,
  ACC_SYNTHETIC = 0x1000,
  ACC_ANNOTATION = 0x2000,
  ACC_ENUM = 0x4000,
};

/// Renders class-level flags, e.g. "ACC_PUBLIC, ACC_SUPER".
std::string classFlagsToString(uint16_t Flags);
/// Renders method-level flags.
std::string methodFlagsToString(uint16_t Flags);
/// Renders field-level flags.
std::string fieldFlagsToString(uint16_t Flags);

} // namespace classfuzz

#endif // CLASSFUZZ_CLASSFILE_ACCESSFLAGS_H
