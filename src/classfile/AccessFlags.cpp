//===- classfile/AccessFlags.cpp ------------------------------------------===//

#include "classfile/AccessFlags.h"

using namespace classfuzz;

namespace {

struct FlagName {
  uint16_t Bit;
  const char *Name;
};

std::string renderFlags(uint16_t Flags, const FlagName *Names, size_t Count) {
  std::string Out;
  for (size_t I = 0; I != Count; ++I) {
    if (!(Flags & Names[I].Bit))
      continue;
    if (!Out.empty())
      Out += ", ";
    Out += Names[I].Name;
  }
  return Out;
}

} // namespace

std::string classfuzz::classFlagsToString(uint16_t Flags) {
  static const FlagName Names[] = {
      {ACC_PUBLIC, "ACC_PUBLIC"},       {ACC_PRIVATE, "ACC_PRIVATE"},
      {ACC_PROTECTED, "ACC_PROTECTED"}, {ACC_STATIC, "ACC_STATIC"},
      {ACC_FINAL, "ACC_FINAL"},         {ACC_SUPER, "ACC_SUPER"},
      {ACC_INTERFACE, "ACC_INTERFACE"}, {ACC_ABSTRACT, "ACC_ABSTRACT"},
      {ACC_SYNTHETIC, "ACC_SYNTHETIC"}, {ACC_ANNOTATION, "ACC_ANNOTATION"},
      {ACC_ENUM, "ACC_ENUM"},
  };
  return renderFlags(Flags, Names, sizeof(Names) / sizeof(Names[0]));
}

std::string classfuzz::methodFlagsToString(uint16_t Flags) {
  static const FlagName Names[] = {
      {ACC_PUBLIC, "ACC_PUBLIC"},
      {ACC_PRIVATE, "ACC_PRIVATE"},
      {ACC_PROTECTED, "ACC_PROTECTED"},
      {ACC_STATIC, "ACC_STATIC"},
      {ACC_FINAL, "ACC_FINAL"},
      {ACC_SYNCHRONIZED, "ACC_SYNCHRONIZED"},
      {ACC_BRIDGE, "ACC_BRIDGE"},
      {ACC_VARARGS, "ACC_VARARGS"},
      {ACC_NATIVE, "ACC_NATIVE"},
      {ACC_ABSTRACT, "ACC_ABSTRACT"},
      {ACC_STRICT, "ACC_STRICT"},
      {ACC_SYNTHETIC, "ACC_SYNTHETIC"},
  };
  return renderFlags(Flags, Names, sizeof(Names) / sizeof(Names[0]));
}

std::string classfuzz::fieldFlagsToString(uint16_t Flags) {
  static const FlagName Names[] = {
      {ACC_PUBLIC, "ACC_PUBLIC"},       {ACC_PRIVATE, "ACC_PRIVATE"},
      {ACC_PROTECTED, "ACC_PROTECTED"}, {ACC_STATIC, "ACC_STATIC"},
      {ACC_FINAL, "ACC_FINAL"},         {ACC_VOLATILE, "ACC_VOLATILE"},
      {ACC_TRANSIENT, "ACC_TRANSIENT"}, {ACC_SYNTHETIC, "ACC_SYNTHETIC"},
      {ACC_ENUM, "ACC_ENUM"},
  };
  return renderFlags(Flags, Names, sizeof(Names) / sizeof(Names[0]));
}
