//===- classfile/ConstantPool.h - Class file constant pool ---------------===//
//
// Part of classfuzz-cpp (PLDI 2016 classfuzz reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The constant_pool table of the Java class file format (JVMS §4.4),
/// including the 1-based indexing scheme and the double-width Long/Double
/// entries. Provides interning factories so that the class writer and the
/// JIR assembler can build pools without duplicating entries.
///
//===----------------------------------------------------------------------===//

#ifndef CLASSFUZZ_CLASSFILE_CONSTANTPOOL_H
#define CLASSFUZZ_CLASSFILE_CONSTANTPOOL_H

#include "support/Result.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace classfuzz {

/// constant_pool entry tags (JVMS Table 4.4-A).
enum class CpTag : uint8_t {
  Invalid = 0, // Placeholder for index 0 and the upper half of Long/Double.
  Utf8 = 1,
  Integer = 3,
  Float = 4,
  Long = 5,
  Double = 6,
  Class = 7,
  String = 8,
  Fieldref = 9,
  Methodref = 10,
  InterfaceMethodref = 11,
  NameAndType = 12,
  MethodHandle = 15,
  MethodType = 16,
  InvokeDynamic = 18,
};

/// Returns the spec name of a tag ("CONSTANT_Utf8", ...).
const char *cpTagName(CpTag Tag);

/// A single constant pool entry. A plain struct (rather than a variant
/// hierarchy) keeps parsing, serialization, and mutation simple; which
/// fields are meaningful depends on Tag.
struct CpEntry {
  CpTag Tag = CpTag::Invalid;
  std::string Utf8;    // Utf8
  int32_t IntValue = 0;   // Integer
  float FloatValue = 0;   // Float
  int64_t LongValue = 0;  // Long
  double DoubleValue = 0; // Double
  uint16_t Ref1 = 0; // Class.name / String.utf8 / ref.class / NaT.name /
                     // MethodHandle.ref / MethodType.desc / InDy.bootstrap
  uint16_t Ref2 = 0; // ref.name_and_type / NaT.descriptor / InDy.name_and_type
  uint8_t Kind = 0;  // MethodHandle.reference_kind
};

/// The constant pool: 1-based, with slot 0 reserved and Long/Double
/// occupying two slots (the second being an Invalid placeholder).
class ConstantPool {
public:
  ConstantPool() { Entries.emplace_back(); } // Reserved slot 0.

  /// Number of slots including the reserved slot 0; this is the value
  /// written as constant_pool_count.
  uint16_t count() const { return static_cast<uint16_t>(Entries.size()); }

  /// True when \p Index addresses a real (non-placeholder) entry.
  bool isValidIndex(uint16_t Index) const {
    return Index > 0 && Index < Entries.size() &&
           Entries[Index].Tag != CpTag::Invalid;
  }

  const CpEntry &at(uint16_t Index) const { return Entries[Index]; }
  CpEntry &at(uint16_t Index) { return Entries[Index]; }

  /// Appends a raw entry (used by the parser); returns its index.
  uint16_t addRaw(CpEntry Entry);

  // Interning factories: return the index of an existing equal entry or
  // append a new one.
  uint16_t utf8(const std::string &S);
  uint16_t integer(int32_t V);
  uint16_t floatConst(float V);
  uint16_t longConst(int64_t V);
  uint16_t doubleConst(double V);
  uint16_t classRef(const std::string &InternalName);
  uint16_t stringConst(const std::string &S);
  uint16_t nameAndType(const std::string &Name, const std::string &Desc);
  uint16_t fieldRef(const std::string &Class, const std::string &Name,
                    const std::string &Desc);
  uint16_t methodRef(const std::string &Class, const std::string &Name,
                     const std::string &Desc);
  uint16_t interfaceMethodRef(const std::string &Class,
                              const std::string &Name,
                              const std::string &Desc);

  // Checked readers used by the format checker and the JVM; they return
  // errors instead of asserting because indices come from untrusted bytes.
  Result<std::string> getUtf8(uint16_t Index) const;
  Result<std::string> getClassName(uint16_t Index) const;
  /// Resolves a Fieldref/Methodref/InterfaceMethodref into
  /// (class, name, descriptor).
  struct MemberRef {
    std::string ClassName;
    std::string Name;
    std::string Descriptor;
  };
  Result<MemberRef> getMemberRef(uint16_t Index) const;
  Result<std::pair<std::string, std::string>>
  getNameAndType(uint16_t Index) const;

private:
  uint16_t intern(const CpEntry &Entry);

  std::vector<CpEntry> Entries;
};

} // namespace classfuzz

#endif // CLASSFUZZ_CLASSFILE_CONSTANTPOOL_H
