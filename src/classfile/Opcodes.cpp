//===- classfile/Opcodes.cpp ----------------------------------------------===//

#include "classfile/Opcodes.h"

using namespace classfuzz;

namespace {

struct OpInfo {
  const char *Name;
  int Length; // 0 undefined, -1 variable.
};

// Full standard instruction table, opcodes 0x00..0xC9 (JVMS §6.5 and §7).
const OpInfo OpTable[256] = {
    /*0x00*/ {"nop", 1},
    {"aconst_null", 1},
    {"iconst_m1", 1},
    {"iconst_0", 1},
    {"iconst_1", 1},
    {"iconst_2", 1},
    {"iconst_3", 1},
    {"iconst_4", 1},
    {"iconst_5", 1},
    {"lconst_0", 1},
    /*0x0a*/ {"lconst_1", 1},
    {"fconst_0", 1},
    {"fconst_1", 1},
    {"fconst_2", 1},
    {"dconst_0", 1},
    {"dconst_1", 1},
    {"bipush", 2},
    {"sipush", 3},
    {"ldc", 2},
    {"ldc_w", 3},
    /*0x14*/ {"ldc2_w", 3},
    {"iload", 2},
    {"lload", 2},
    {"fload", 2},
    {"dload", 2},
    {"aload", 2},
    {"iload_0", 1},
    {"iload_1", 1},
    {"iload_2", 1},
    {"iload_3", 1},
    /*0x1e*/ {"lload_0", 1},
    {"lload_1", 1},
    {"lload_2", 1},
    {"lload_3", 1},
    {"fload_0", 1},
    {"fload_1", 1},
    {"fload_2", 1},
    {"fload_3", 1},
    {"dload_0", 1},
    {"dload_1", 1},
    /*0x28*/ {"dload_2", 1},
    {"dload_3", 1},
    {"aload_0", 1},
    {"aload_1", 1},
    {"aload_2", 1},
    {"aload_3", 1},
    {"iaload", 1},
    {"laload", 1},
    {"faload", 1},
    {"daload", 1},
    /*0x32*/ {"aaload", 1},
    {"baload", 1},
    {"caload", 1},
    {"saload", 1},
    {"istore", 2},
    {"lstore", 2},
    {"fstore", 2},
    {"dstore", 2},
    {"astore", 2},
    {"istore_0", 1},
    /*0x3c*/ {"istore_1", 1},
    {"istore_2", 1},
    {"istore_3", 1},
    {"lstore_0", 1},
    {"lstore_1", 1},
    {"lstore_2", 1},
    {"lstore_3", 1},
    {"fstore_0", 1},
    {"fstore_1", 1},
    {"fstore_2", 1},
    /*0x46*/ {"fstore_3", 1},
    {"dstore_0", 1},
    {"dstore_1", 1},
    {"dstore_2", 1},
    {"dstore_3", 1},
    {"astore_0", 1},
    {"astore_1", 1},
    {"astore_2", 1},
    {"astore_3", 1},
    {"iastore", 1},
    /*0x50*/ {"lastore", 1},
    {"fastore", 1},
    {"dastore", 1},
    {"aastore", 1},
    {"bastore", 1},
    {"castore", 1},
    {"sastore", 1},
    {"pop", 1},
    {"pop2", 1},
    {"dup", 1},
    /*0x5a*/ {"dup_x1", 1},
    {"dup_x2", 1},
    {"dup2", 1},
    {"dup2_x1", 1},
    {"dup2_x2", 1},
    {"swap", 1},
    {"iadd", 1},
    {"ladd", 1},
    {"fadd", 1},
    {"dadd", 1},
    /*0x64*/ {"isub", 1},
    {"lsub", 1},
    {"fsub", 1},
    {"dsub", 1},
    {"imul", 1},
    {"lmul", 1},
    {"fmul", 1},
    {"dmul", 1},
    {"idiv", 1},
    {"ldiv", 1},
    /*0x6e*/ {"fdiv", 1},
    {"ddiv", 1},
    {"irem", 1},
    {"lrem", 1},
    {"frem", 1},
    {"drem", 1},
    {"ineg", 1},
    {"lneg", 1},
    {"fneg", 1},
    {"dneg", 1},
    /*0x78*/ {"ishl", 1},
    {"lshl", 1},
    {"ishr", 1},
    {"lshr", 1},
    {"iushr", 1},
    {"lushr", 1},
    {"iand", 1},
    {"land", 1},
    {"ior", 1},
    {"lor", 1},
    /*0x82*/ {"ixor", 1},
    {"lxor", 1},
    {"iinc", 3},
    {"i2l", 1},
    {"i2f", 1},
    {"i2d", 1},
    {"l2i", 1},
    {"l2f", 1},
    {"l2d", 1},
    {"f2i", 1},
    /*0x8c*/ {"f2l", 1},
    {"f2d", 1},
    {"d2i", 1},
    {"d2l", 1},
    {"d2f", 1},
    {"i2b", 1},
    {"i2c", 1},
    {"i2s", 1},
    {"lcmp", 1},
    {"fcmpl", 1},
    /*0x96*/ {"fcmpg", 1},
    {"dcmpl", 1},
    {"dcmpg", 1},
    {"ifeq", 3},
    {"ifne", 3},
    {"iflt", 3},
    {"ifge", 3},
    {"ifgt", 3},
    {"ifle", 3},
    {"if_icmpeq", 3},
    /*0xa0*/ {"if_icmpne", 3},
    {"if_icmplt", 3},
    {"if_icmpge", 3},
    {"if_icmpgt", 3},
    {"if_icmple", 3},
    {"if_acmpeq", 3},
    {"if_acmpne", 3},
    {"goto", 3},
    {"jsr", 3},
    {"ret", 2},
    /*0xaa*/ {"tableswitch", -1},
    {"lookupswitch", -1},
    {"ireturn", 1},
    {"lreturn", 1},
    {"freturn", 1},
    {"dreturn", 1},
    {"areturn", 1},
    {"return", 1},
    {"getstatic", 3},
    {"putstatic", 3},
    /*0xb4*/ {"getfield", 3},
    {"putfield", 3},
    {"invokevirtual", 3},
    {"invokespecial", 3},
    {"invokestatic", 3},
    {"invokeinterface", 5},
    {"invokedynamic", 5},
    {"new", 3},
    {"newarray", 2},
    {"anewarray", 3},
    /*0xbe*/ {"arraylength", 1},
    {"athrow", 1},
    {"checkcast", 3},
    {"instanceof", 3},
    {"monitorenter", 1},
    {"monitorexit", 1},
    {"wide", -1},
    {"multianewarray", 4},
    {"ifnull", 3},
    {"ifnonnull", 3},
    /*0xc8*/ {"goto_w", 5},
    {"jsr_w", 5},
    // 0xca..0xff undefined (breakpoint/impdep are reserved, treated as
    // undefined by the verifier, matching strict format checking).
};

} // namespace

std::string classfuzz::opcodeName(uint8_t Op) {
  const OpInfo &Info = OpTable[Op];
  if (!Info.Name)
    return "illegal_0x" + [&] {
      const char *Hex = "0123456789abcdef";
      std::string S;
      S += Hex[Op >> 4];
      S += Hex[Op & 0xF];
      return S;
    }();
  return Info.Name;
}

int classfuzz::opcodeLength(uint8_t Op) { return OpTable[Op].Length; }

bool classfuzz::isDefinedOpcode(uint8_t Op) { return OpTable[Op].Name; }

static int32_t readS2(const Bytes &Code, uint32_t At) {
  return static_cast<int16_t>(Code[At] << 8 | Code[At + 1]);
}

static int32_t readS4(const Bytes &Code, uint32_t At) {
  return static_cast<int32_t>(static_cast<uint32_t>(Code[At]) << 24 |
                              static_cast<uint32_t>(Code[At + 1]) << 16 |
                              static_cast<uint32_t>(Code[At + 2]) << 8 |
                              static_cast<uint32_t>(Code[At + 3]));
}

bool InsnDecoder::decodeNext(Insn &Out) {
  if (Malformed || Pos >= Code.size())
    return false;

  Out = Insn();
  Out.Offset = Pos;
  Out.Op = Code[Pos];
  int Len = opcodeLength(Out.Op);
  if (Len == 0) {
    Malformed = true;
    return false;
  }

  if (Len > 0) {
    if (Pos + static_cast<uint32_t>(Len) > Code.size()) {
      Malformed = true;
      return false;
    }
    Out.Length = static_cast<uint32_t>(Len);
    switch (Out.Op) {
    case OP_bipush:
      Out.Operand1 = static_cast<int8_t>(Code[Pos + 1]);
      break;
    case OP_sipush:
      Out.Operand1 = readS2(Code, Pos + 1);
      break;
    case OP_ldc:
    case OP_newarray:
      Out.Operand1 = Code[Pos + 1];
      break;
    case OP_iload:
    case OP_lload:
    case OP_fload:
    case OP_dload:
    case OP_aload:
    case OP_istore:
    case OP_lstore:
    case OP_fstore:
    case OP_dstore:
    case OP_astore:
    case OP_ret:
      Out.Operand1 = Code[Pos + 1];
      break;
    case OP_iinc:
      Out.Operand1 = Code[Pos + 1];
      Out.Operand2 = static_cast<int8_t>(Code[Pos + 2]);
      break;
    case OP_ifeq:
    case OP_ifne:
    case OP_iflt:
    case OP_ifge:
    case OP_ifgt:
    case OP_ifle:
    case OP_if_icmpeq:
    case OP_if_icmpne:
    case OP_if_icmplt:
    case OP_if_icmpge:
    case OP_if_icmpgt:
    case OP_if_icmple:
    case OP_if_acmpeq:
    case OP_if_acmpne:
    case OP_goto:
    case OP_jsr:
    case OP_ifnull:
    case OP_ifnonnull:
      // Branch targets are materialized as absolute code offsets.
      Out.Operand1 = static_cast<int32_t>(Pos) + readS2(Code, Pos + 1);
      break;
    case OP_goto_w:
    case OP_jsr_w:
      Out.Operand1 = static_cast<int32_t>(Pos) + readS4(Code, Pos + 1);
      break;
    case OP_invokeinterface:
      Out.Operand1 = Code[Pos + 1] << 8 | Code[Pos + 2];
      Out.Operand2 = Code[Pos + 3]; // count operand
      break;
    case OP_multianewarray:
      Out.Operand1 = Code[Pos + 1] << 8 | Code[Pos + 2];
      Out.Operand2 = Code[Pos + 3]; // dimensions
      break;
    default:
      if (Len == 3 || Len == 5)
        Out.Operand1 = Code[Pos + 1] << 8 | Code[Pos + 2];
      break;
    }
    Pos += Out.Length;
    return true;
  }

  // Variable-length instructions.
  if (Out.Op == OP_wide) {
    if (Pos + 2 > Code.size()) {
      Malformed = true;
      return false;
    }
    uint8_t Widened = Code[Pos + 1];
    uint32_t WideLen = (Widened == OP_iinc) ? 6 : 4;
    if (Pos + WideLen > Code.size() ||
        (Widened != OP_iinc && opcodeLength(Widened) != 2)) {
      Malformed = true;
      return false;
    }
    Out.Length = WideLen;
    Out.Operand1 = Code[Pos + 2] << 8 | Code[Pos + 3];
    if (Widened == OP_iinc)
      Out.Operand2 = readS2(Code, Pos + 4);
    Pos += WideLen;
    return true;
  }

  // tableswitch / lookupswitch: 0..3 padding bytes then aligned tables.
  uint32_t Aligned = (Pos + 4) & ~3u;
  if (Out.Op == OP_tableswitch) {
    if (Aligned + 12 > Code.size()) {
      Malformed = true;
      return false;
    }
    int32_t Low = readS4(Code, Aligned + 4);
    int32_t High = readS4(Code, Aligned + 8);
    if (Low > High) {
      Malformed = true;
      return false;
    }
    uint64_t NumTargets = static_cast<uint64_t>(High) - Low + 1;
    uint64_t End = Aligned + 12 + NumTargets * 4;
    if (End > Code.size()) {
      Malformed = true;
      return false;
    }
    Out.Length = static_cast<uint32_t>(End - Pos);
    Out.Operand1 = static_cast<int32_t>(Pos) + readS4(Code, Aligned);
    Pos = static_cast<uint32_t>(End);
    return true;
  }
  if (Out.Op == OP_lookupswitch) {
    if (Aligned + 8 > Code.size()) {
      Malformed = true;
      return false;
    }
    int32_t NumPairs = readS4(Code, Aligned + 4);
    if (NumPairs < 0) {
      Malformed = true;
      return false;
    }
    uint64_t End = Aligned + 8 + static_cast<uint64_t>(NumPairs) * 8;
    if (End > Code.size()) {
      Malformed = true;
      return false;
    }
    Out.Length = static_cast<uint32_t>(End - Pos);
    Out.Operand1 = static_cast<int32_t>(Pos) + readS4(Code, Aligned);
    Pos = static_cast<uint32_t>(End);
    return true;
  }

  Malformed = true;
  return false;
}
