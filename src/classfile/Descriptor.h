//===- classfile/Descriptor.h - Field and method descriptors -------------===//
//
// Part of classfuzz-cpp (PLDI 2016 classfuzz reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parsing and validity checking for JVM type descriptors (JVMS §4.3):
/// field descriptors like "Ljava/lang/String;", "[I", and method
/// descriptors like "([Ljava/lang/String;)V". The verifier and the format
/// checker use these to compute argument slot counts and to reject
/// malformed descriptors, a classic source of JVM discrepancies.
///
//===----------------------------------------------------------------------===//

#ifndef CLASSFUZZ_CLASSFILE_DESCRIPTOR_H
#define CLASSFUZZ_CLASSFILE_DESCRIPTOR_H

#include <cstdint>
#include <string>
#include <vector>

namespace classfuzz {

/// The basic kind of a parsed JVM type.
enum class TypeKind : uint8_t {
  Void,
  Boolean,
  Byte,
  Char,
  Short,
  Int,
  Long,
  Float,
  Double,
  Reference, // L<name>;
  Array,     // [<component>
};

/// A parsed JVM type: kind, array dimensionality, and for references the
/// internal class name ("java/lang/String").
struct JType {
  TypeKind Kind = TypeKind::Void;
  uint8_t ArrayDims = 0;
  std::string ClassName;

  bool isReferenceLike() const {
    return ArrayDims > 0 || Kind == TypeKind::Reference;
  }
  /// Number of operand-stack / local-variable slots the type occupies
  /// (2 for long/double, 0 for void, else 1).
  int slotWidth() const {
    if (Kind == TypeKind::Void)
      return 0;
    if (ArrayDims == 0 && (Kind == TypeKind::Long || Kind == TypeKind::Double))
      return 2;
    return 1;
  }
  /// Renders back into descriptor syntax ("[I", "Ljava/lang/String;").
  std::string toDescriptor() const;
  /// Human-readable Java-like name ("int", "java.lang.String[]").
  std::string toJavaName() const;

  bool operator==(const JType &Other) const {
    return Kind == Other.Kind && ArrayDims == Other.ArrayDims &&
           ClassName == Other.ClassName;
  }
};

/// A parsed method descriptor: parameter types and return type.
struct MethodDescriptor {
  std::vector<JType> Params;
  JType ReturnType;

  /// Total argument slot count (long/double are 2), excluding `this`.
  int argSlots() const;
  std::string toDescriptor() const;
};

/// Parses a field descriptor. Returns false on malformed input.
bool parseFieldDescriptor(const std::string &Desc, JType &Out);

/// Parses a method descriptor. Returns false on malformed input.
bool parseMethodDescriptor(const std::string &Desc, MethodDescriptor &Out);

/// True if \p Desc is a well-formed field descriptor.
bool isValidFieldDescriptor(const std::string &Desc);

/// True if \p Desc is a well-formed method descriptor.
bool isValidMethodDescriptor(const std::string &Desc);

/// Shorthand constructors used throughout the IR and runtime builders.
JType intType();
JType voidType();
JType refType(const std::string &InternalName);
JType arrayOf(JType Component);

} // namespace classfuzz

#endif // CLASSFUZZ_CLASSFILE_DESCRIPTOR_H
