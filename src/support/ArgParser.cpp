//===- support/ArgParser.cpp -----------------------------------------------===//

#include "support/ArgParser.h"

#include <algorithm>
#include <cstdlib>

using namespace classfuzz;

ArgParser::ArgParser(std::string Command, std::string PositionalUsage,
                     std::vector<FlagSpec> Specs)
    : Command(std::move(Command)),
      PositionalUsage(std::move(PositionalUsage)), Specs(std::move(Specs)) {}

const FlagSpec *ArgParser::findSpec(const std::string &Name) const {
  for (const FlagSpec &S : Specs)
    if (S.Name == Name)
      return &S;
  return nullptr;
}

bool ArgParser::parse(int Argc, char **Argv, int From) {
  for (int I = From; I < Argc; ++I) {
    std::string A = Argv[I];
    if (A == "--help" || A == "-h") {
      HelpRequested = true;
      return true;
    }
    if (A.rfind("--", 0) != 0) {
      Positional.push_back(std::move(A));
      continue;
    }

    std::string Name = A.substr(2);
    std::string Inline;
    bool HasInline = false;
    if (size_t Eq = Name.find('='); Eq != std::string::npos) {
      Inline = Name.substr(Eq + 1);
      Name = Name.substr(0, Eq);
      HasInline = true;
    }

    const FlagSpec *Spec = findSpec(Name);
    if (!Spec) {
      Error = Command + ": unknown flag --" + Name + " (try --help)";
      return false;
    }

    if (Spec->ValueName.empty()) {
      // Boolean flag: presence only.
      if (HasInline) {
        Error = Command + ": flag --" + Name + " takes no value";
        return false;
      }
      Values[Name] = "";
      continue;
    }

    if (HasInline) {
      Values[Name] = std::move(Inline);
      continue;
    }
    if (I + 1 >= Argc) {
      Error = Command + ": flag --" + Name + " requires a value " +
              Spec->ValueName;
      return false;
    }
    Values[Name] = Argv[++I];
  }
  return true;
}

std::string ArgParser::get(const std::string &Name) const {
  auto It = Values.find(Name);
  if (It != Values.end())
    return It->second;
  const FlagSpec *Spec = findSpec(Name);
  return Spec ? Spec->Default : std::string();
}

long long ArgParser::getInt(const std::string &Name) const {
  return std::strtoll(get(Name).c_str(), nullptr, 10);
}

unsigned long long ArgParser::getUnsigned(const std::string &Name) const {
  return std::strtoull(get(Name).c_str(), nullptr, 10);
}

double ArgParser::getDouble(const std::string &Name) const {
  return std::strtod(get(Name).c_str(), nullptr);
}

std::vector<std::string> ArgParser::getList(const std::string &Name) const {
  std::vector<std::string> Out;
  const std::string Value = get(Name);
  size_t Start = 0;
  while (Start <= Value.size()) {
    size_t Comma = Value.find(',', Start);
    if (Comma == std::string::npos)
      Comma = Value.size();
    if (Comma > Start)
      Out.push_back(Value.substr(Start, Comma - Start));
    Start = Comma + 1;
  }
  return Out;
}

std::string ArgParser::helpText() const {
  std::string Out = "usage: " + Command;
  if (!Specs.empty())
    Out += " [flags]";
  if (!PositionalUsage.empty())
    Out += " " + PositionalUsage;
  Out += "\n";
  if (Specs.empty())
    return Out;

  // Align descriptions after the longest "--name VALUE" column.
  size_t Widest = 0;
  auto leftColumn = [](const FlagSpec &S) {
    std::string Col = "--" + S.Name;
    if (!S.ValueName.empty())
      Col += " " + S.ValueName;
    return Col;
  };
  for (const FlagSpec &S : Specs)
    Widest = std::max(Widest, leftColumn(S).size());

  Out += "\nflags:\n";
  for (const FlagSpec &S : Specs) {
    std::string Col = leftColumn(S);
    Out += "  " + Col + std::string(Widest - Col.size() + 2, ' ') + S.Help;
    if (!S.Default.empty())
      Out += " (default: " + S.Default + ")";
    Out += "\n";
  }
  return Out;
}
