//===- support/Rng.h - Deterministic random number generation ------------===//
//
// Part of classfuzz-cpp (PLDI 2016 classfuzz reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small deterministic PRNG (SplitMix64-seeded xoshiro256**) used by every
/// stochastic component (mutator selection, MCMC proposals, corpus
/// sampling). Campaigns seeded identically reproduce bit-for-bit, which the
/// benchmark harness and the property tests rely on.
///
/// The full generator state is observable (state()) and restorable
/// (restore()): the mutation-provenance layer snapshots the stream
/// position before every mutation so any mutant can be re-derived later
/// without replaying the whole campaign (DESIGN.md §9).
///
//===----------------------------------------------------------------------===//

#ifndef CLASSFUZZ_SUPPORT_RNG_H
#define CLASSFUZZ_SUPPORT_RNG_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace classfuzz {

/// A snapshot of an Rng's complete state: the four xoshiro256** words
/// plus the number of raw draws made since construction. restore()ing a
/// snapshot resumes the stream exactly where state() captured it.
struct RngState {
  uint64_t Words[4] = {0, 0, 0, 0};
  uint64_t Draws = 0;

  friend bool operator==(const RngState &A, const RngState &B) {
    return A.Words[0] == B.Words[0] && A.Words[1] == B.Words[1] &&
           A.Words[2] == B.Words[2] && A.Words[3] == B.Words[3] &&
           A.Draws == B.Draws;
  }
  friend bool operator!=(const RngState &A, const RngState &B) {
    return !(A == B);
  }
};

/// Deterministic pseudo-random generator with convenience sampling helpers.
class Rng {
public:
  explicit Rng(uint64_t Seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  uint64_t next();

  /// Uniform integer in [0, Bound). \p Bound must be nonzero.
  uint64_t nextBelow(uint64_t Bound);

  /// Uniform integer in [Lo, Hi] inclusive.
  int64_t nextInRange(int64_t Lo, int64_t Hi);

  /// Uniform double in [0, 1).
  double nextDouble();

  /// True with probability \p P (clamped to [0,1]).
  bool nextBool(double P = 0.5);

  /// Uniformly chosen element of \p Items; the vector must be non-empty.
  template <typename T> const T &choice(const std::vector<T> &Items) {
    assert(!Items.empty() && "choice() from empty vector");
    return Items[nextBelow(Items.size())];
  }

  /// Uniformly chosen index into a container of \p Size elements.
  size_t choiceIndex(size_t Size) {
    assert(Size != 0 && "choiceIndex() over empty range");
    return static_cast<size_t>(nextBelow(Size));
  }

  /// Forks an independent stream (for sub-components), deterministically
  /// derived from this generator's state.
  Rng fork();

  /// Captures the complete generator state (words + draw count).
  RngState state() const;

  /// Resumes the stream from \p S, as if every draw up to the snapshot
  /// had been replayed.
  void restore(const RngState &S);

  /// Raw 64-bit values drawn since construction (rejection-sampling
  /// retries in nextBelow() count individually). Provenance records the
  /// per-step delta.
  uint64_t drawCount() const { return Draws; }

private:
  uint64_t State[4];
  uint64_t Draws = 0;
};

} // namespace classfuzz

#endif // CLASSFUZZ_SUPPORT_RNG_H
