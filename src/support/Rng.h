//===- support/Rng.h - Deterministic random number generation ------------===//
//
// Part of classfuzz-cpp (PLDI 2016 classfuzz reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small deterministic PRNG (SplitMix64-seeded xoshiro256**) used by every
/// stochastic component (mutator selection, MCMC proposals, corpus
/// sampling). Campaigns seeded identically reproduce bit-for-bit, which the
/// benchmark harness and the property tests rely on.
///
//===----------------------------------------------------------------------===//

#ifndef CLASSFUZZ_SUPPORT_RNG_H
#define CLASSFUZZ_SUPPORT_RNG_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace classfuzz {

/// Deterministic pseudo-random generator with convenience sampling helpers.
class Rng {
public:
  explicit Rng(uint64_t Seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  uint64_t next();

  /// Uniform integer in [0, Bound). \p Bound must be nonzero.
  uint64_t nextBelow(uint64_t Bound);

  /// Uniform integer in [Lo, Hi] inclusive.
  int64_t nextInRange(int64_t Lo, int64_t Hi);

  /// Uniform double in [0, 1).
  double nextDouble();

  /// True with probability \p P (clamped to [0,1]).
  bool nextBool(double P = 0.5);

  /// Uniformly chosen element of \p Items; the vector must be non-empty.
  template <typename T> const T &choice(const std::vector<T> &Items) {
    assert(!Items.empty() && "choice() from empty vector");
    return Items[nextBelow(Items.size())];
  }

  /// Uniformly chosen index into a container of \p Size elements.
  size_t choiceIndex(size_t Size) {
    assert(Size != 0 && "choiceIndex() over empty range");
    return static_cast<size_t>(nextBelow(Size));
  }

  /// Forks an independent stream (for sub-components), deterministically
  /// derived from this generator's state.
  Rng fork();

private:
  uint64_t State[4];
};

} // namespace classfuzz

#endif // CLASSFUZZ_SUPPORT_RNG_H
