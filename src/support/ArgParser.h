//===- support/ArgParser.h - Table-driven command-line parsing -----------===//
//
// Part of classfuzz-cpp (PLDI 2016 classfuzz reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small table-driven flag parser for the classfuzz tool. Each
/// subcommand declares its flags once as a FlagSpec table; the parser
/// rejects unknown flags with a diagnostic (instead of silently
/// swallowing typos, as the previous ad-hoc map did) and generates the
/// --help text from the same table, so usage and behavior cannot drift
/// apart.
///
/// \code
///   ArgParser P("classfuzz fuzz", "",
///               {{"iterations", "N", "iteration budget", "2000"},
///                {"verbose", "", "chatty output", ""}});
///   if (!P.parse(Argc, Argv, 2)) { fputs(P.error().c_str(), stderr); }
///   if (P.helpRequested()) { fputs(P.helpText().c_str(), stdout); }
///   size_t N = P.getUnsigned("iterations");
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef CLASSFUZZ_SUPPORT_ARGPARSER_H
#define CLASSFUZZ_SUPPORT_ARGPARSER_H

#include <map>
#include <string>
#include <vector>

namespace classfuzz {

/// One row of a subcommand's flag table.
struct FlagSpec {
  /// Flag name without the leading "--".
  std::string Name;
  /// Placeholder for the value in help text ("N", "DIR", ...). Empty
  /// means the flag is boolean and takes no value.
  std::string ValueName;
  /// One-line description for --help.
  std::string Help;
  /// Default value, returned by get() when the flag is absent and shown
  /// in the help text. Ignored for boolean flags.
  std::string Default;
};

/// Parses "--flag", "--flag VALUE" and "--flag=VALUE" arguments against
/// a FlagSpec table, collecting everything else as positionals.
class ArgParser {
public:
  /// \p Command names the subcommand for diagnostics/help ("classfuzz
  /// fuzz"); \p PositionalUsage describes positional arguments in the
  /// help synopsis ("FILE.class"), empty when the command takes none.
  ArgParser(std::string Command, std::string PositionalUsage,
            std::vector<FlagSpec> Specs);

  /// Parses Argv[From..Argc). Returns false (with error() set) on an
  /// unknown flag, a missing value, or a non-numeric value queried
  /// later. "--help" and "-h" set helpRequested() and stop parsing.
  bool parse(int Argc, char **Argv, int From);

  bool helpRequested() const { return HelpRequested; }
  const std::string &error() const { return Error; }

  /// The synopsis plus one aligned line per table row, with defaults.
  std::string helpText() const;

  const std::vector<std::string> &positional() const { return Positional; }

  /// True when the flag appeared on the command line.
  bool has(const std::string &Name) const { return Values.count(Name); }
  /// The flag's value, or its table default when absent.
  std::string get(const std::string &Name) const;
  /// Numeric accessors over get(): strtol-style parsing (leading
  /// numeric prefix; 0 when none), so they behave like the atol/atof
  /// calls they replace. Callers validate ranges.
  long long getInt(const std::string &Name) const;
  unsigned long long getUnsigned(const std::string &Name) const;
  double getDouble(const std::string &Name) const;
  /// get() split on commas, empty segments dropped, so "a,,b," yields
  /// {"a","b"} and an absent flag with an empty default yields {}.
  std::vector<std::string> getList(const std::string &Name) const;

private:
  const FlagSpec *findSpec(const std::string &Name) const;

  std::string Command;
  std::string PositionalUsage;
  std::vector<FlagSpec> Specs;
  std::vector<std::string> Positional;
  std::map<std::string, std::string> Values;
  std::string Error;
  bool HelpRequested = false;
};

} // namespace classfuzz

#endif // CLASSFUZZ_SUPPORT_ARGPARSER_H
