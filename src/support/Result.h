//===- support/Result.h - Lightweight expected-or-error type -------------===//
//
// Part of classfuzz-cpp, a reproduction of "Coverage-Directed Differential
// Testing of JVM Implementations" (PLDI 2016).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Result<T> carries either a value or a human-readable error message.
/// Library code in this project does not use C++ exceptions; fallible
/// operations (classfile parsing, IR assembly, ...) return Result<T>.
///
//===----------------------------------------------------------------------===//

#ifndef CLASSFUZZ_SUPPORT_RESULT_H
#define CLASSFUZZ_SUPPORT_RESULT_H

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace classfuzz {

/// Tag type used to construct an errored Result from a message.
struct ResultError {
  std::string Message;
};

/// Convenience factory for error values, mirroring llvm::createStringError.
inline ResultError makeError(std::string Message) {
  return ResultError{std::move(Message)};
}

/// A value-or-error holder. Either holds a T (success) or an error message
/// (failure). Callers must check ok() / operator bool before dereferencing.
template <typename T> class Result {
public:
  /*implicit*/ Result(T Value) : Value(std::move(Value)) {}
  /*implicit*/ Result(ResultError Err) : Message(std::move(Err.Message)) {}

  /// True when a value is present.
  bool ok() const { return Value.has_value(); }
  explicit operator bool() const { return ok(); }

  /// The error message; only valid when !ok().
  const std::string &error() const {
    assert(!ok() && "no error in a successful Result");
    return Message;
  }

  T &operator*() {
    assert(ok() && "dereferencing errored Result");
    return *Value;
  }
  const T &operator*() const {
    assert(ok() && "dereferencing errored Result");
    return *Value;
  }
  T *operator->() {
    assert(ok() && "dereferencing errored Result");
    return &*Value;
  }
  const T *operator->() const {
    assert(ok() && "dereferencing errored Result");
    return &*Value;
  }

  /// Moves the contained value out; only valid when ok().
  T take() {
    assert(ok() && "taking from errored Result");
    return std::move(*Value);
  }

private:
  std::optional<T> Value;
  std::string Message;
};

/// Specialization-free void-like result for operations with no payload.
class Status {
public:
  Status() = default;
  /*implicit*/ Status(ResultError Err)
      : Failed(true), Message(std::move(Err.Message)) {}

  static Status success() { return Status(); }

  bool ok() const { return !Failed; }
  explicit operator bool() const { return ok(); }
  const std::string &error() const {
    assert(Failed && "no error in a successful Status");
    return Message;
  }

private:
  bool Failed = false;
  std::string Message;
};

} // namespace classfuzz

#endif // CLASSFUZZ_SUPPORT_RESULT_H
