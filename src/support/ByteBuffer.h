//===- support/ByteBuffer.h - Big-endian byte readers and writers --------===//
//
// Part of classfuzz-cpp (PLDI 2016 classfuzz reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ByteReader and ByteWriter implement the big-endian primitive encoding of
/// the Java class file format (u1/u2/u4/u8, length-prefixed byte runs).
/// ByteReader is bounds-checked: overruns set a sticky error flag instead of
/// reading out of bounds, letting the classfile parser report truncation as
/// a ClassFormatError-style failure.
///
//===----------------------------------------------------------------------===//

#ifndef CLASSFUZZ_SUPPORT_BYTEBUFFER_H
#define CLASSFUZZ_SUPPORT_BYTEBUFFER_H

#include <cstdint>
#include <string>
#include <vector>

namespace classfuzz {

using Bytes = std::vector<uint8_t>;

/// Bounds-checked big-endian reader over an externally owned byte span.
class ByteReader {
public:
  ByteReader(const uint8_t *Data, size_t Size) : Data(Data), Size(Size) {}
  explicit ByteReader(const Bytes &Buffer)
      : ByteReader(Buffer.data(), Buffer.size()) {}

  uint8_t readU1();
  uint16_t readU2();
  uint32_t readU4();
  uint64_t readU8();

  /// Reads \p Count raw bytes; returns an empty vector (and sets the error
  /// flag) on overrun.
  Bytes readBytes(size_t Count);

  /// Reads \p Count bytes as a (modified-UTF8-carrying) string.
  std::string readString(size_t Count);

  /// Skips \p Count bytes.
  void skip(size_t Count);

  size_t position() const { return Pos; }
  size_t remaining() const { return Size - Pos; }
  bool atEnd() const { return Pos == Size; }

  /// True once any read has overrun the buffer. All subsequent reads
  /// return zeros.
  bool hasError() const { return Error; }

private:
  bool ensure(size_t Count);

  const uint8_t *Data;
  size_t Size;
  size_t Pos = 0;
  bool Error = false;
};

/// Big-endian writer producing a growable byte vector.
class ByteWriter {
public:
  void writeU1(uint8_t V);
  void writeU2(uint16_t V);
  void writeU4(uint32_t V);
  void writeU8(uint64_t V);
  void writeBytes(const Bytes &Data);
  void writeBytes(const uint8_t *Data, size_t Count);
  void writeString(const std::string &S);

  /// Patches a previously written u2 at absolute offset \p At.
  void patchU2(size_t At, uint16_t V);
  /// Patches a previously written u4 at absolute offset \p At.
  void patchU4(size_t At, uint32_t V);

  size_t size() const { return Buffer.size(); }
  const Bytes &bytes() const { return Buffer; }
  Bytes take() { return std::move(Buffer); }

private:
  Bytes Buffer;
};

} // namespace classfuzz

#endif // CLASSFUZZ_SUPPORT_BYTEBUFFER_H
