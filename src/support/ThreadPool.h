//===- support/ThreadPool.h - Fixed-size worker pool ---------------------===//
//
// Part of classfuzz-cpp (PLDI 2016 classfuzz reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal fixed-size thread pool with a FIFO task queue, used by the
/// parallel campaign pipeline to run reference-JVM coverage executions
/// off the driver thread. Tasks are submitted as callables and their
/// results retrieved through std::future; submission order is preserved
/// by the queue so the pipeline's oldest in-flight iteration completes
/// first under equal task cost.
///
//===----------------------------------------------------------------------===//

#ifndef CLASSFUZZ_SUPPORT_THREADPOOL_H
#define CLASSFUZZ_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace classfuzz {

/// Fixed pool of worker threads draining a FIFO queue of tasks.
class ThreadPool {
public:
  /// Spawns \p NumThreads workers (at least one).
  explicit ThreadPool(size_t NumThreads);

  /// Drains outstanding tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Enqueues \p Fn; the returned future yields its result. The future's
  /// destructor does not block, so callers may abandon results.
  template <typename Fn>
  auto submit(Fn &&Task) -> std::future<decltype(Task())> {
    using ResultT = decltype(Task());
    auto Packaged = std::make_shared<std::packaged_task<ResultT()>>(
        std::forward<Fn>(Task));
    std::future<ResultT> Out = Packaged->get_future();
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      Queue.push_back([Packaged]() { (*Packaged)(); });
    }
    WorkAvailable.notify_one();
    return Out;
  }

  size_t numThreads() const { return Workers.size(); }

private:
  void workerMain();

  std::vector<std::thread> Workers;
  std::deque<std::function<void()>> Queue;
  std::mutex Mutex;
  std::condition_variable WorkAvailable;
  bool Stopping = false;
};

} // namespace classfuzz

#endif // CLASSFUZZ_SUPPORT_THREADPOOL_H
