//===- support/ThreadPool.cpp ----------------------------------------------===//

#include "support/ThreadPool.h"

using namespace classfuzz;

ThreadPool::ThreadPool(size_t NumThreads) {
  if (NumThreads == 0)
    NumThreads = 1;
  Workers.reserve(NumThreads);
  for (size_t I = 0; I != NumThreads; ++I)
    Workers.emplace_back([this] { workerMain(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Stopping = true;
  }
  WorkAvailable.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::workerMain() {
  for (;;) {
    std::function<void()> Task;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      WorkAvailable.wait(Lock, [this] { return Stopping || !Queue.empty(); });
      if (Queue.empty())
        return; // Stopping with nothing left to drain.
      Task = std::move(Queue.front());
      Queue.pop_front();
    }
    Task();
  }
}
