//===- support/Json.h - Minimal JSON value model and parser --------------===//
//
// Part of classfuzz-cpp (PLDI 2016 classfuzz reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small recursive-descent JSON parser for the artifacts this project
/// itself emits (--stats-json snapshots, timeseries.jsonl rows, frontier
/// census lines). `classfuzz report` consumes those files back, so the
/// reader lives next to the writers instead of being re-implemented
/// ad hoc in every consumer.
///
/// Scope: the full JSON grammar minus \uXXXX surrogate pairs (our
/// writers escape control characters as \u00XX only). Numbers parse as
/// double; integer accessors round-trip exactly up to 2^53, which
/// covers every counter the telemetry layer snapshots in practice.
///
//===----------------------------------------------------------------------===//

#ifndef CLASSFUZZ_SUPPORT_JSON_H
#define CLASSFUZZ_SUPPORT_JSON_H

#include "support/Result.h"

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace classfuzz {
namespace json {

/// One parsed JSON value. Object member order is preserved (the
/// snapshot writers emit sorted keys; the report renderer relies on
/// that stable order).
class Value {
public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Value() = default;

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  bool asBool() const { return B; }
  double asDouble() const { return Num; }
  int64_t asInt() const { return static_cast<int64_t>(Num); }
  uint64_t asUint() const { return static_cast<uint64_t>(Num); }
  const std::string &asString() const { return Str; }
  const std::vector<Value> &array() const { return Arr; }
  const std::vector<std::pair<std::string, Value>> &members() const {
    return Obj;
  }

  /// Object member lookup; nullptr when absent or not an object.
  const Value *get(const std::string &Key) const;
  /// get(Key)->asDouble() with a default when absent / not a number.
  double numberOr(const std::string &Key, double Default) const;
  /// get(Key)->asString() with a default when absent / not a string.
  std::string stringOr(const std::string &Key,
                       const std::string &Default) const;

  static Value makeNull() { return Value(); }
  static Value makeBool(bool V);
  static Value makeNumber(double V);
  static Value makeString(std::string V);
  static Value makeArray(std::vector<Value> V);
  static Value makeObject(std::vector<std::pair<std::string, Value>> V);

private:
  Kind K = Kind::Null;
  bool B = false;
  double Num = 0;
  std::string Str;
  std::vector<Value> Arr;
  std::vector<std::pair<std::string, Value>> Obj;
};

/// Parses one complete JSON document; trailing non-whitespace is an
/// error. Errors carry a byte offset.
Result<Value> parse(const std::string &Text);

/// Parses one value from \p Text starting at \p Pos, advancing \p Pos
/// past it (for JSONL streams: call per line, or repeatedly over a
/// concatenated buffer).
Result<Value> parseValue(const std::string &Text, size_t &Pos);

} // namespace json
} // namespace classfuzz

#endif // CLASSFUZZ_SUPPORT_JSON_H
