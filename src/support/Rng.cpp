//===- support/Rng.cpp ----------------------------------------------------===//

#include "support/Rng.h"

using namespace classfuzz;

static uint64_t splitMix64(uint64_t &X) {
  X += 0x9E3779B97F4A7C15ULL;
  uint64_t Z = X;
  Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBULL;
  return Z ^ (Z >> 31);
}

static inline uint64_t rotl(uint64_t X, int K) {
  return (X << K) | (X >> (64 - K));
}

Rng::Rng(uint64_t Seed) {
  uint64_t S = Seed;
  for (auto &Word : State)
    Word = splitMix64(S);
}

uint64_t Rng::next() {
  ++Draws;
  // xoshiro256** by Blackman & Vigna (public domain reference algorithm).
  const uint64_t Out = rotl(State[1] * 5, 7) * 9;
  const uint64_t T = State[1] << 17;
  State[2] ^= State[0];
  State[3] ^= State[1];
  State[1] ^= State[2];
  State[0] ^= State[3];
  State[2] ^= T;
  State[3] = rotl(State[3], 45);
  return Out;
}

uint64_t Rng::nextBelow(uint64_t Bound) {
  assert(Bound != 0 && "nextBelow(0) is meaningless");
  // Rejection sampling to avoid modulo bias.
  const uint64_t Threshold = -Bound % Bound;
  for (;;) {
    uint64_t R = next();
    if (R >= Threshold)
      return R % Bound;
  }
}

int64_t Rng::nextInRange(int64_t Lo, int64_t Hi) {
  assert(Lo <= Hi && "empty range");
  const uint64_t Span = static_cast<uint64_t>(Hi - Lo) + 1;
  return Lo + static_cast<int64_t>(nextBelow(Span));
}

double Rng::nextDouble() {
  // 53 random mantissa bits scaled into [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::nextBool(double P) {
  if (P <= 0.0)
    return false;
  if (P >= 1.0)
    return true;
  return nextDouble() < P;
}

Rng Rng::fork() { return Rng(next()); }

RngState Rng::state() const {
  RngState S;
  for (size_t I = 0; I != 4; ++I)
    S.Words[I] = State[I];
  S.Draws = Draws;
  return S;
}

void Rng::restore(const RngState &S) {
  for (size_t I = 0; I != 4; ++I)
    State[I] = S.Words[I];
  Draws = S.Draws;
}
