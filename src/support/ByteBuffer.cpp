//===- support/ByteBuffer.cpp ---------------------------------------------===//

#include "support/ByteBuffer.h"

#include <cassert>
#include <cstring>

using namespace classfuzz;

bool ByteReader::ensure(size_t Count) {
  if (Error || Size - Pos < Count) {
    Error = true;
    return false;
  }
  return true;
}

uint8_t ByteReader::readU1() {
  if (!ensure(1))
    return 0;
  return Data[Pos++];
}

uint16_t ByteReader::readU2() {
  if (!ensure(2))
    return 0;
  uint16_t V = static_cast<uint16_t>(Data[Pos] << 8 | Data[Pos + 1]);
  Pos += 2;
  return V;
}

uint32_t ByteReader::readU4() {
  if (!ensure(4))
    return 0;
  uint32_t V = static_cast<uint32_t>(Data[Pos]) << 24 |
               static_cast<uint32_t>(Data[Pos + 1]) << 16 |
               static_cast<uint32_t>(Data[Pos + 2]) << 8 |
               static_cast<uint32_t>(Data[Pos + 3]);
  Pos += 4;
  return V;
}

uint64_t ByteReader::readU8() {
  uint64_t Hi = readU4();
  uint64_t Lo = readU4();
  return Hi << 32 | Lo;
}

Bytes ByteReader::readBytes(size_t Count) {
  if (!ensure(Count))
    return {};
  Bytes Out(Data + Pos, Data + Pos + Count);
  Pos += Count;
  return Out;
}

std::string ByteReader::readString(size_t Count) {
  if (!ensure(Count))
    return {};
  std::string Out(reinterpret_cast<const char *>(Data + Pos), Count);
  Pos += Count;
  return Out;
}

void ByteReader::skip(size_t Count) {
  if (!ensure(Count))
    return;
  Pos += Count;
}

void ByteWriter::writeU1(uint8_t V) { Buffer.push_back(V); }

void ByteWriter::writeU2(uint16_t V) {
  Buffer.push_back(static_cast<uint8_t>(V >> 8));
  Buffer.push_back(static_cast<uint8_t>(V));
}

void ByteWriter::writeU4(uint32_t V) {
  Buffer.push_back(static_cast<uint8_t>(V >> 24));
  Buffer.push_back(static_cast<uint8_t>(V >> 16));
  Buffer.push_back(static_cast<uint8_t>(V >> 8));
  Buffer.push_back(static_cast<uint8_t>(V));
}

void ByteWriter::writeU8(uint64_t V) {
  writeU4(static_cast<uint32_t>(V >> 32));
  writeU4(static_cast<uint32_t>(V));
}

void ByteWriter::writeBytes(const Bytes &Data) {
  Buffer.insert(Buffer.end(), Data.begin(), Data.end());
}

void ByteWriter::writeBytes(const uint8_t *Data, size_t Count) {
  Buffer.insert(Buffer.end(), Data, Data + Count);
}

void ByteWriter::writeString(const std::string &S) {
  Buffer.insert(Buffer.end(), S.begin(), S.end());
}

void ByteWriter::patchU2(size_t At, uint16_t V) {
  assert(At + 2 <= Buffer.size() && "patch beyond written data");
  Buffer[At] = static_cast<uint8_t>(V >> 8);
  Buffer[At + 1] = static_cast<uint8_t>(V);
}

void ByteWriter::patchU4(size_t At, uint32_t V) {
  assert(At + 4 <= Buffer.size() && "patch beyond written data");
  Buffer[At] = static_cast<uint8_t>(V >> 24);
  Buffer[At + 1] = static_cast<uint8_t>(V >> 16);
  Buffer[At + 2] = static_cast<uint8_t>(V >> 8);
  Buffer[At + 3] = static_cast<uint8_t>(V);
}
