//===- support/Json.cpp ----------------------------------------------------===//

#include "support/Json.h"

#include <cctype>
#include <cmath>
#include <cstdlib>

using namespace classfuzz;
using namespace classfuzz::json;

const Value *Value::get(const std::string &Key) const {
  if (K != Kind::Object)
    return nullptr;
  for (const auto &[Name, V] : Obj)
    if (Name == Key)
      return &V;
  return nullptr;
}

double Value::numberOr(const std::string &Key, double Default) const {
  const Value *V = get(Key);
  return V && V->isNumber() ? V->asDouble() : Default;
}

std::string Value::stringOr(const std::string &Key,
                            const std::string &Default) const {
  const Value *V = get(Key);
  return V && V->isString() ? V->asString() : Default;
}

Value Value::makeBool(bool V) {
  Value Out;
  Out.K = Kind::Bool;
  Out.B = V;
  return Out;
}

Value Value::makeNumber(double V) {
  Value Out;
  Out.K = Kind::Number;
  Out.Num = V;
  return Out;
}

Value Value::makeString(std::string V) {
  Value Out;
  Out.K = Kind::String;
  Out.Str = std::move(V);
  return Out;
}

Value Value::makeArray(std::vector<Value> V) {
  Value Out;
  Out.K = Kind::Array;
  Out.Arr = std::move(V);
  return Out;
}

Value Value::makeObject(std::vector<std::pair<std::string, Value>> V) {
  Value Out;
  Out.K = Kind::Object;
  Out.Obj = std::move(V);
  return Out;
}

namespace {

/// Recursive-descent parser over a byte range. No exceptions; every
/// production returns false with Error set on malformed input.
class Parser {
public:
  Parser(const std::string &Text, size_t Pos) : Text(Text), Pos(Pos) {}

  bool value(Value &Out);
  size_t position() const { return Pos; }
  const std::string &error() const { return Error; }

  void skipWs() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

private:
  bool fail(const std::string &What) {
    Error = What + " at offset " + std::to_string(Pos);
    return false;
  }
  bool literal(const char *Word, Value V, Value &Out);
  bool string(std::string &Out);
  bool number(Value &Out);
  bool array(Value &Out);
  bool object(Value &Out);

  const std::string &Text;
  size_t Pos;
  std::string Error;
  size_t Depth = 0;
};

bool Parser::literal(const char *Word, Value V, Value &Out) {
  for (const char *P = Word; *P; ++P, ++Pos)
    if (Pos >= Text.size() || Text[Pos] != *P)
      return fail(std::string("expected '") + Word + "'");
  Out = std::move(V);
  return true;
}

bool Parser::string(std::string &Out) {
  if (Pos >= Text.size() || Text[Pos] != '"')
    return fail("expected string");
  ++Pos;
  Out.clear();
  while (Pos < Text.size()) {
    char C = Text[Pos];
    if (C == '"') {
      ++Pos;
      return true;
    }
    if (C == '\\') {
      if (Pos + 1 >= Text.size())
        return fail("truncated escape");
      char E = Text[Pos + 1];
      Pos += 2;
      switch (E) {
      case '"':
        Out += '"';
        break;
      case '\\':
        Out += '\\';
        break;
      case '/':
        Out += '/';
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'u': {
        if (Pos + 4 > Text.size())
          return fail("truncated \\u escape");
        unsigned Code = 0;
        for (int I = 0; I != 4; ++I) {
          char H = Text[Pos + static_cast<size_t>(I)];
          Code <<= 4;
          if (H >= '0' && H <= '9')
            Code |= static_cast<unsigned>(H - '0');
          else if (H >= 'a' && H <= 'f')
            Code |= static_cast<unsigned>(H - 'a' + 10);
          else if (H >= 'A' && H <= 'F')
            Code |= static_cast<unsigned>(H - 'A' + 10);
          else
            return fail("bad \\u escape");
        }
        Pos += 4;
        // Our writers only emit \u00XX control escapes; encode the
        // code point as UTF-8 without surrogate-pair handling.
        if (Code < 0x80) {
          Out += static_cast<char>(Code);
        } else if (Code < 0x800) {
          Out += static_cast<char>(0xC0 | (Code >> 6));
          Out += static_cast<char>(0x80 | (Code & 0x3F));
        } else {
          Out += static_cast<char>(0xE0 | (Code >> 12));
          Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
          Out += static_cast<char>(0x80 | (Code & 0x3F));
        }
        break;
      }
      default:
        return fail("unknown escape");
      }
      continue;
    }
    Out += C;
    ++Pos;
  }
  return fail("unterminated string");
}

bool Parser::number(Value &Out) {
  size_t Start = Pos;
  if (Pos < Text.size() && Text[Pos] == '-')
    ++Pos;
  while (Pos < Text.size() &&
         (std::isdigit(static_cast<unsigned char>(Text[Pos])) ||
          Text[Pos] == '.' || Text[Pos] == 'e' || Text[Pos] == 'E' ||
          Text[Pos] == '+' || Text[Pos] == '-'))
    ++Pos;
  if (Pos == Start)
    return fail("expected number");
  std::string Tok = Text.substr(Start, Pos - Start);
  char *End = nullptr;
  double V = std::strtod(Tok.c_str(), &End);
  if (End != Tok.c_str() + Tok.size() || !std::isfinite(V)) {
    Pos = Start;
    return fail("malformed number");
  }
  Out = Value::makeNumber(V);
  return true;
}

bool Parser::array(Value &Out) {
  ++Pos; // '['
  std::vector<Value> Items;
  skipWs();
  if (Pos < Text.size() && Text[Pos] == ']') {
    ++Pos;
    Out = Value::makeArray(std::move(Items));
    return true;
  }
  for (;;) {
    Value Item;
    if (!value(Item))
      return false;
    Items.push_back(std::move(Item));
    skipWs();
    if (Pos < Text.size() && Text[Pos] == ',') {
      ++Pos;
      continue;
    }
    if (Pos < Text.size() && Text[Pos] == ']') {
      ++Pos;
      Out = Value::makeArray(std::move(Items));
      return true;
    }
    return fail("expected ',' or ']'");
  }
}

bool Parser::object(Value &Out) {
  ++Pos; // '{'
  std::vector<std::pair<std::string, Value>> Members;
  skipWs();
  if (Pos < Text.size() && Text[Pos] == '}') {
    ++Pos;
    Out = Value::makeObject(std::move(Members));
    return true;
  }
  for (;;) {
    skipWs();
    std::string Key;
    if (!string(Key))
      return false;
    skipWs();
    if (Pos >= Text.size() || Text[Pos] != ':')
      return fail("expected ':'");
    ++Pos;
    Value V;
    if (!value(V))
      return false;
    Members.emplace_back(std::move(Key), std::move(V));
    skipWs();
    if (Pos < Text.size() && Text[Pos] == ',') {
      ++Pos;
      continue;
    }
    if (Pos < Text.size() && Text[Pos] == '}') {
      ++Pos;
      Out = Value::makeObject(std::move(Members));
      return true;
    }
    return fail("expected ',' or '}'");
  }
}

bool Parser::value(Value &Out) {
  if (++Depth > 128) {
    --Depth;
    return fail("nesting too deep");
  }
  skipWs();
  bool Ok;
  if (Pos >= Text.size())
    Ok = fail("unexpected end of input");
  else
    switch (Text[Pos]) {
    case '{':
      Ok = object(Out);
      break;
    case '[':
      Ok = array(Out);
      break;
    case '"': {
      std::string S;
      Ok = string(S);
      if (Ok)
        Out = Value::makeString(std::move(S));
      break;
    }
    case 't':
      Ok = literal("true", Value::makeBool(true), Out);
      break;
    case 'f':
      Ok = literal("false", Value::makeBool(false), Out);
      break;
    case 'n':
      Ok = literal("null", Value::makeNull(), Out);
      break;
    default:
      Ok = number(Out);
      break;
    }
  --Depth;
  return Ok;
}

} // namespace

Result<Value> json::parseValue(const std::string &Text, size_t &Pos) {
  Parser P(Text, Pos);
  Value Out;
  if (!P.value(Out))
    return makeError("json: " + P.error());
  Pos = P.position();
  return Out;
}

Result<Value> json::parse(const std::string &Text) {
  size_t Pos = 0;
  auto V = parseValue(Text, Pos);
  if (!V)
    return V;
  Parser Tail(Text, Pos);
  Tail.skipWs();
  if (Tail.position() != Text.size())
    return makeError("json: trailing content at offset " +
                     std::to_string(Tail.position()));
  return V;
}
