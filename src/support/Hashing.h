//===- support/Hashing.h - FNV-1a hashing helpers -------------------------===//
//
// Part of classfuzz-cpp (PLDI 2016 classfuzz reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// 64-bit FNV-1a hashing over byte runs and integer sequences. Used for
/// tracefile fingerprints (coverage-uniqueness checks compare hashed
/// statement/branch sets before falling back to full set comparison).
///
//===----------------------------------------------------------------------===//

#ifndef CLASSFUZZ_SUPPORT_HASHING_H
#define CLASSFUZZ_SUPPORT_HASHING_H

#include <cstdint>
#include <cstddef>
#include <string>
#include <vector>

namespace classfuzz {

inline constexpr uint64_t FnvOffsetBasis = 0xCBF29CE484222325ULL;
inline constexpr uint64_t FnvPrime = 0x100000001B3ULL;

/// Incrementally combinable FNV-1a hash state.
class Hasher {
public:
  void addByte(uint8_t B) {
    State ^= B;
    State *= FnvPrime;
  }

  void addU32(uint32_t V) {
    addByte(static_cast<uint8_t>(V));
    addByte(static_cast<uint8_t>(V >> 8));
    addByte(static_cast<uint8_t>(V >> 16));
    addByte(static_cast<uint8_t>(V >> 24));
  }

  void addU64(uint64_t V) {
    addU32(static_cast<uint32_t>(V));
    addU32(static_cast<uint32_t>(V >> 32));
  }

  void addBytes(const uint8_t *Data, size_t Len) {
    for (size_t I = 0; I != Len; ++I)
      addByte(Data[I]);
  }

  void addBytes(const std::vector<uint8_t> &Data) {
    addBytes(Data.data(), Data.size());
  }

  void addString(const std::string &S) {
    for (char C : S)
      addByte(static_cast<uint8_t>(C));
    addByte(0xFF); // Separator so {"ab","c"} != {"a","bc"}.
  }

  uint64_t value() const { return State; }

private:
  uint64_t State = FnvOffsetBasis;
};

/// One-shot hash of a byte span.
inline uint64_t hashBytes(const uint8_t *Data, size_t Len) {
  Hasher H;
  H.addBytes(Data, Len);
  return H.value();
}

/// One-shot hash of a byte vector.
inline uint64_t hashBytes(const std::vector<uint8_t> &Data) {
  return hashBytes(Data.data(), Data.size());
}

} // namespace classfuzz

#endif // CLASSFUZZ_SUPPORT_HASHING_H
