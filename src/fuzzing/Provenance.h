//===- fuzzing/Provenance.h - Mutation lineage and deterministic replay --===//
//
// Part of classfuzz-cpp (PLDI 2016 classfuzz reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Mutation provenance (DESIGN.md §9): every mutant the campaign
/// produces carries a compact lineage record -- the root seed it
/// descends from, the ordered chain of mutators applied across
/// generations, and a snapshot of the campaign RNG at each step -- so
/// any outcome can be re-derived byte-for-byte later without replaying
/// the campaign. Incident bundles serialize a lineage (plus the
/// campaign environment spec needed to rebuild the seed corpus and
/// class-name universe) as lineage.json; `classfuzz replay` parses it
/// back and re-runs the chain.
///
/// Capture is always on: a step is a 6-word RNG snapshot plus two
/// indices, copied at the mutation site without drawing from the RNG,
/// so trajectories are unaffected and identical across --jobs values.
///
//===----------------------------------------------------------------------===//

#ifndef CLASSFUZZ_FUZZING_PROVENANCE_H
#define CLASSFUZZ_FUZZING_PROVENANCE_H

#include "mutation/Mutator.h"
#include "runtime/SeedCorpus.h"
#include "support/Result.h"
#include "support/Rng.h"

#include <cstdint>
#include <string>
#include <vector>

namespace classfuzz {

/// One mutation application in a lineage chain.
struct LineageStep {
  /// Index into mutatorRegistry().
  size_t MutatorIndex = 0;
  /// Campaign RNG state immediately before mutateClass() consumed it;
  /// restoring this state replays the step's draws exactly (mutation
  /// site choices and the mutant's fresh name).
  RngState RngBefore;
  /// Raw 64-bit draws the step consumed (diagnostic; replay needs only
  /// RngBefore).
  uint64_t Draws = 0;

  friend bool operator==(const LineageStep &A, const LineageStep &B) {
    return A.MutatorIndex == B.MutatorIndex && A.RngBefore == B.RngBefore &&
           A.Draws == B.Draws;
  }
};

/// The full ancestry of one mutant: which seed it bottoms out in and
/// the mutator chain from that seed to the mutant (earliest first).
struct Provenance {
  size_t RootSeedIndex = 0;   ///< Index into CampaignResult::Seeds.
  std::string RootSeedName;   ///< The seed's internal class name.
  std::vector<LineageStep> Steps;

  friend bool operator==(const Provenance &A, const Provenance &B) {
    return A.RootSeedIndex == B.RootSeedIndex &&
           A.RootSeedName == B.RootSeedName && A.Steps == B.Steps;
  }
};

/// Everything needed to rebuild the mutation environment a lineage ran
/// in: the seed corpus and the class-name universe the "...from a class
/// list" mutators drew from.
struct CampaignEnvSpec {
  uint64_t RngSeed = 1;
  size_t NumSeeds = 64;
  /// Non-empty when the campaign was seeded from --seed-dir; replay
  /// then reloads the directory instead of regenerating seeds.
  std::string SeedDir;
  /// Reference JVM policy name (resolved against allJvmPolicies()).
  std::string ReferencePolicyName;
  /// Execution tier the campaign ran on ("switch"/"threaded"/
  /// "baseline"). Empty in pre-tier bundles; replay then warns and
  /// defaults to threaded.
  std::string TierName;
  /// Whether the campaign ran with --tier-diff (the two extra tier
  /// profiles change the encoded-sequence length, so replay must know).
  bool TierDiff = false;
};

/// The outcome of replaying one lineage chain.
struct ReplayedMutant {
  std::string ClassName;
  Bytes Data;
  /// Intermediate ancestors (accepted mutants between the seed and the
  /// final mutant), earliest first; replay difftests overlay these so
  /// class references resolve as they did in the campaign.
  std::vector<std::pair<std::string, Bytes>> Ancestors;
};

/// Supplies the typed-hole list for the classfile bytes a lineage step
/// is about to mutate (the campaign derives holes from the *base*
/// environment -- runtime library + seeds -- which replay can rebuild,
/// so a provider built over that env re-derives typed steps exactly).
/// Returning an empty list makes the typed mutators inapplicable.
using HoleProviderFn = std::function<TypedHoleList(const Bytes &Data)>;

/// Re-derives a mutant from \p RootSeed by applying \p Steps in order
/// against the recorded RNG snapshots. \p KnownClasses must be the
/// class-name universe of the original campaign (runtime library +
/// seed corpus, sorted -- see rebuildKnownClasses); \p Holes, when
/// set, feeds each step's MutationContext the typed-hole list the
/// campaign saw (required to replay "typed.*" steps). Fails when a
/// step's mutation no longer produces a classfile (environment
/// mismatch).
Result<ReplayedMutant>
replayLineage(const Bytes &RootSeed, const std::vector<LineageStep> &Steps,
              const std::vector<std::string> &KnownClasses,
              const HoleProviderFn &Holes = nullptr);

/// Rebuilds the campaign's seed corpus from \p Spec: regenerated from
/// (RngSeed, NumSeeds) or reloaded from SeedDir. The returned Rng draw
/// position matches the campaign's post-seed-generation state.
Result<std::vector<SeedClass>> rebuildSeedCorpus(const CampaignEnvSpec &Spec);

/// The class-name universe a campaign over \p Seeds exposed to
/// mutators: reference runtime library + every seed and helper, sorted
/// (ClassPath::names() order).
std::vector<std::string>
rebuildKnownClasses(const CampaignEnvSpec &Spec,
                    const std::vector<SeedClass> &Seeds);

/// Serializes a lineage (plus environment spec, the mutant's name, and
/// the differential outcome it was recorded with) as the incident
/// bundle's lineage.json. Stable formatting: byte-identical for equal
/// inputs.
std::string lineageJson(const Provenance &Prov, const CampaignEnvSpec &Spec,
                        const std::string &MutantName,
                        const std::string &ExpectedEncoded);

/// Parsed lineage.json contents.
struct ParsedLineage {
  Provenance Prov;
  CampaignEnvSpec Spec;
  std::string MutantName;
  std::string ExpectedEncoded;
};

/// Parses what lineageJson() wrote. Tolerates unknown keys; fails with
/// a diagnostic on malformed JSON or missing required fields.
Result<ParsedLineage> parseLineageJson(const std::string &Json);

} // namespace classfuzz

#endif // CLASSFUZZ_FUZZING_PROVENANCE_H
