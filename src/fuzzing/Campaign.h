//===- fuzzing/Campaign.h - Fuzzing algorithms of the evaluation ---------===//
//
// Part of classfuzz-cpp (PLDI 2016 classfuzz reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The campaign driver implementing Algorithm 1 (classfuzz) and the
/// three comparison algorithms of §3.1.2:
///
///  * classfuzz[stbr] / [st] / [tr] -- MCMC mutator selection +
///    coverage-uniqueness acceptance on the reference JVM;
///  * classfuzz[dd-coarse] / [dd-fine] -- MCMC selection + Nezha-style
///    δ-diversity acceptance: every produced mutant runs on all five
///    profiles and is kept iff its per-profile (outcome, coverage)
///    tuple is novel (coverage/Uniqueness.h, DeltaDiversityChecker);
///  * uniquefuzz -- uniform mutator selection + [stbr] uniqueness;
///  * greedyfuzz -- uniform selection + accumulative-coverage acceptance;
///  * randfuzz   -- uniform selection, accepts every produced mutant,
///    no coverage collection.
///
/// The paper's 3-day wall-clock budget maps to an iteration budget; all
/// reported quantities (succ rate, |GenClasses|, |TestClasses|) are
/// per-iteration and carry over directly.
///
//===----------------------------------------------------------------------===//

#ifndef CLASSFUZZ_FUZZING_CAMPAIGN_H
#define CLASSFUZZ_FUZZING_CAMPAIGN_H

#include "analysis/StaticAnalyzer.h"
#include "coverage/Frontier.h"
#include "coverage/Uniqueness.h"
#include "fuzzing/Provenance.h"
#include "fuzzing/SeedScheduler.h"
#include "jvm/ClassPath.h"
#include "jvm/Policy.h"
#include "mcmc/McmcSelector.h"
#include "mutation/Mutator.h"
#include "runtime/SeedCorpus.h"

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace classfuzz {
namespace telemetry {
class TimeSeriesSampler;
} // namespace telemetry
} // namespace classfuzz

namespace classfuzz {

/// The six evaluated algorithms plus the two δ-diversity extensions.
enum class FuzzAlgorithm {
  ClassfuzzStBr,
  ClassfuzzSt,
  ClassfuzzTr,
  ClassfuzzDdCoarse,
  ClassfuzzDdFine,
  Uniquefuzz,
  Greedyfuzz,
  Randfuzz,
};

const char *fuzzAlgorithmName(FuzzAlgorithm Algo);

/// True for the δ-diversity algorithms, whose acceptance runs every
/// produced mutant on all five profiles instead of the reference JVM
/// alone.
bool usesDeltaDiversity(FuzzAlgorithm Algo);

/// Campaign parameters.
struct CampaignConfig {
  FuzzAlgorithm Algo = FuzzAlgorithm::ClassfuzzStBr;
  size_t Iterations = 2000; ///< Iteration budget (the paper's default
                            ///< stopping criterion is wall-clock; see
                            ///< TimeBudgetSeconds).
  /// When positive, Algorithm 1's literal stopping rule: iterate "until
  /// the time budget is used up" (the paper ran three days). Overrides
  /// Iterations.
  double TimeBudgetSeconds = 0;
  uint64_t RngSeed = 1;
  size_t NumSeeds = 64; ///< Seed-corpus size (the paper used 1,216).
  /// When non-empty, these classfiles are the seed corpus instead of
  /// the generated one (the paper seeded with 1,216 JRE7 classfiles;
  /// the CLI's --seed-dir feeds real .class files in here).
  std::vector<SeedClass> ExternalSeeds;
  /// Reference JVM whose coverage drives acceptance (HotSpot 9). Its
  /// Tier field carries the CLI's --tier choice into every reference
  /// execution.
  JvmPolicy ReferencePolicy;
  /// Tier-vs-tier differential axis (--tier-diff): every produced
  /// mutant additionally runs on the reference policy's
  /// threaded-interpreter and baseline tiers, and the two-code outcome
  /// census (TierOutcomeCounts, campaign.tier_* counters, the
  /// TierDisagreement flight events) is recorded at the in-order commit
  /// stage -- byte-identical across Jobs values. Ignored by randfuzz
  /// (no execution stage to ride).
  bool TierDiff = false;
  /// The geometric parameter p of the MCMC selector (paper: 3/129).
  double GeometricP = 0;
  /// Algorithm 1 line 14: accepted mutants rejoin TestClasses and are
  /// mutated further. Setting this false ablates the feedback loop
  /// (mutate original seeds only), isolating the paper's §3.2 claim
  /// that representative seeds breed representative mutants.
  bool FeedbackAcceptedMutants = true;
  /// Worker threads for the mutate -> execute -> collect-coverage
  /// pipeline. 1 runs the sequential reference loop. Higher values
  /// overlap reference-JVM coverage executions through speculative
  /// lookahead with an in-order commit stage; the committed campaign
  /// trajectory is bit-identical across Jobs values for a fixed RngSeed.
  /// Ignored (treated as 1) by randfuzz, which collects no coverage.
  size_t Jobs = 1;
  /// When positive, the driver prints a one-line progress report to
  /// stderr roughly every this many seconds (committed iterations,
  /// generated/accepted counts, succ rate). Observation only: the
  /// report reads campaign state and the wall clock, never the RNG, so
  /// results are unaffected. 0 disables (the default; the CLI enables
  /// it via --progress).
  double ProgressIntervalSeconds = 0;
  /// Run the execution-free static analyzer over every produced mutant
  /// at the in-order commit stage and latch predict-vs-observe
  /// mismatches as self-check reports (analysis/StaticAnalyzer.h).
  /// Observation only: the analyzer never touches the RNG or the
  /// acceptance decision, so the committed trajectory is unchanged and
  /// all analysis.* outputs are identical across Jobs values.
  bool RunAnalysis = true;
  /// Maintain a coverage FrontierTracker over every folded reference
  /// run (seed registrations, then each produced mutant at the in-order
  /// commit stage): global hit counts, rare-branch set, first-hit
  /// attribution, and the frontier.* / frontier.mutator_phase
  /// telemetry. Observation only; the census is identical across Jobs
  /// values. Ignored by randfuzz (no coverage to fold). The tracker
  /// lands in CampaignResult::Frontier.
  bool TrackFrontier = false;
  /// Rarity cut of the frontier tracker and the seed scheduler (hits
  /// <= threshold = rare). The default of 2 is the bench_seedsched
  /// sweet spot: at 4-8 the rare policy's slot table concentrates on
  /// entries whose "rare" branches are merely uncommon, and the lost
  /// pick diversity costs discrepancy yield.
  uint64_t RareBranchThreshold = 2;
  /// When non-null, receives one onCommit per committed iteration (and
  /// a finish at end of run) at the in-order commit stage -- the
  /// deterministic time-series hook (telemetry/TimeSeries.h). Not
  /// owned. Observation only.
  telemetry::TimeSeriesSampler *TimeSeries = nullptr;
  /// When positive, run a SaturationDetector with this window over the
  /// per-commit discovery signals (new frontier branches, acceptances,
  /// discrepancies); a latched plateau lands in CampaignResult and the
  /// campaign.plateau_at gauge. A pure function of the committed
  /// trajectory, so the plateau iteration is identical across Jobs.
  size_t PlateauWindow = 0;
  /// Latch when a full window holds fewer than this many discoveries.
  uint64_t PlateauMinDiscoveries = 1;
  /// Stop the campaign at the commit that latches the plateau (applied
  /// at the in-order commit stage; the committed trajectory up to and
  /// including the stopping iteration stays Jobs-invariant).
  bool StopOnPlateau = false;
  /// Seed-selection policy over the mutation pool (--seed-sched,
  /// fuzzing/SeedScheduler.h). Every policy consumes exactly one Rng
  /// draw per iteration with the same bound, so switching policies
  /// never perturbs mutator selection or mutation draws downstream,
  /// and the trajectory stays bit-identical across Jobs values. The
  /// scheduler maintains its own hit-count table (no --frontier
  /// needed); randfuzz collects no coverage and degrades to Uniform.
  SeedSchedPolicy SeedSched = SeedSchedPolicy::Uniform;
  /// Select mutators from extendedMutatorRegistry() (the paper's 129
  /// plus the analyzer-driven "typed.*" family) and feed every
  /// iteration the typed-hole list of the class being mutated,
  /// extracted against the *base* environment (runtime library +
  /// seeds, the same env provenance replay rebuilds). Off by default:
  /// the historical 129-mutator trajectory is byte-identical.
  bool TypedMutators = false;
  /// MCMC deep-phase reward weight (McmcSelector::setDeepReward):
  /// mutants that survive loading/linking (phase 0, 3, or 4) add this
  /// on top of the acceptance reward. 0 disables. Requires the mcmc
  /// algorithms with an execution stage; the parallel pipeline rewinds
  /// speculation on deep reaches like it does on acceptances, so the
  /// trajectory stays Jobs-invariant.
  double DeepRewardWeight = 0;
  /// Analyzer-gated pre-filter: predictStartupOutcome runs in the
  /// speculation stage and mutants statically proven dead in loading
  /// or linking skip the execution stage entirely (committed as
  /// produced-but-rejected with no trace). Counters fold at the
  /// in-order commit stage (campaign.prefilter_*, Jobs-invariant).
  /// Definite predictions make skipping sound; the audit fraction
  /// below keeps the filter honest. Ignored by randfuzz.
  bool Prefilter = false;
  /// Fraction of prefilter-skipped mutants that execute anyway so the
  /// observed phase can be checked against the prediction (membership
  /// by content hash -- deterministic, no RNG). Audited runs change
  /// nothing about the committed trajectory; any mispredict bumps
  /// campaign.prefilter_mispredict and latches a SelfCheckReport.
  double PrefilterAudit = 0.05;
  CampaignConfig();
};

/// One generated classfile with its provenance.
struct GeneratedClass {
  std::string Name;
  Bytes Data;
  size_t MutatorIndex = 0;
  Tracefile Trace;          ///< Reference-JVM coverage (empty: randfuzz).
  bool Representative = false; ///< Accepted into TestClasses.
  /// Full mutation lineage: root seed + the mutator chain with per-step
  /// RNG snapshots, sufficient to re-derive Data byte-for-byte
  /// (fuzzing/Provenance.h). Always captured; identical across --jobs
  /// values.
  Provenance Prov;
  /// Encoded startup phase {0..4} observed on the reference JVM during
  /// the coverage run; -1 when no reference run happened (randfuzz).
  int RefPhase = -1;
  /// δ-diversity modes only: the encoded five-profile sequence observed
  /// at acceptance time (Figure 3 encoding, e.g. "00012"). Empty for
  /// the reference-JVM algorithms.
  std::string DdEncoded;
  /// Tier-diff mode only: the two-code (interpreter, baseline) encoded
  /// outcome on the reference policy, e.g. "04". Empty without
  /// CampaignConfig::TierDiff.
  std::string TierEncoded;
};

/// The analyzer's verdict for one produced mutant (compact; the full
/// report is kept only for mismatches, in SelfCheckReport).
struct MutantAnalysisRecord {
  size_t GenIndex = 0; ///< Index into CampaignResult::GenClasses.
  PredictedOutcome Outcome = PredictedOutcome::PassStatic;
  int ObservedPhase = -1; ///< GeneratedClass::RefPhase at commit.
  size_t Findings = 0;    ///< Total diagnostics, all severities.
  /// True when the observed phase violates the prediction contract.
  /// Every true record has a matching SelfCheckReport -- the campaign
  /// never swallows a disagreement.
  bool Mismatch = false;
};

/// A latched predict-vs-observe disagreement: the self-check oracle
/// caught the analyzer and the VM contradicting each other, which is a
/// bug in one of them. Carries the full analyzer report for triage.
struct SelfCheckReport {
  size_t GenIndex = 0;
  int ObservedPhase = -1;
  AnalysisReport Report;
};

/// Campaign results (the raw material of Tables 4-7 and Figure 4).
struct CampaignResult {
  FuzzAlgorithm Algo = FuzzAlgorithm::Randfuzz;
  size_t Iterations = 0;
  std::vector<GeneratedClass> GenClasses;
  std::vector<size_t> TestClassIndices; ///< Indices into GenClasses.
  std::vector<size_t> MutatorSelected;  ///< Per-mutator selection count.
  std::vector<size_t> MutatorSucceeded; ///< Per-mutator acceptance count.
  /// Per-mutator draws the class shape ruled out entirely (no mutation
  /// site; includes seeds that failed to lower).
  std::vector<size_t> MutatorInapplicable;
  /// Per-mutator applicable draws that rewrote the class into itself
  /// (MutationResult::NoChange); distinguished from Inapplicable so the
  /// §3.1.3 succ-rate telemetry is not skewed by no-op applications.
  std::vector<size_t> MutatorNoChange;
  /// Seed corpus (with helpers) used; needed to rebuild environments for
  /// downstream differential testing.
  std::vector<SeedClass> Seeds;
  /// One record per produced mutant, in commit order (RunAnalysis).
  std::vector<MutantAnalysisRecord> AnalysisRecords;
  /// Every latched predict-vs-observe mismatch (RunAnalysis). Empty
  /// means the analyzer's prediction held on every produced mutant.
  std::vector<SelfCheckReport> SelfChecks;
  /// δ-diversity modes only: encoded five-profile sequence -> count over
  /// every produced mutant (the campaign-side differential census; the
  /// non-constant keys are the distinct discrepancy categories).
  std::map<std::string, size_t> DdOutcomeCounts;
  /// δ-diversity modes only: produced mutants whose encoded sequence was
  /// non-constant.
  size_t DdDiscrepancies = 0;
  /// Tier-diff mode only: two-code (interpreter, baseline) encoded
  /// outcome -> count over every produced mutant. Non-constant keys are
  /// the distinct tier-disagreement categories.
  std::map<std::string, size_t> TierOutcomeCounts;
  /// Tier-diff mode only: produced mutants whose interpreter-tier and
  /// baseline-tier outcomes disagreed.
  size_t TierDisagreements = 0;
  /// The coverage frontier (CampaignConfig::TrackFrontier): hit counts,
  /// rare branches, and first-hit attribution over seed registrations
  /// plus every committed mutant. Null when tracking was off.
  std::shared_ptr<FrontierTracker> Frontier;
  /// Saturation detection (CampaignConfig::PlateauWindow): whether the
  /// discovery rate plateaued, and at which committed iteration.
  bool Plateaued = false;
  uint64_t PlateauAt = 0;
  /// Seed-scheduler accounting, maintained at the in-order commit stage
  /// (Jobs-invariant; mirrored by the campaign.sched_* telemetry).
  /// SchedDraws counts committed iterations (one pool draw each);
  /// SchedRareDraws those whose drawn entry covered a rare branch site
  /// at draw time; SchedEpochs the scheduler rebuilds.
  uint64_t SchedDraws = 0;
  uint64_t SchedRareDraws = 0;
  uint64_t SchedEpochs = 0;
  /// Pre-filter accounting (CampaignConfig::Prefilter), folded at the
  /// in-order commit stage: produced mutants skipped as statically
  /// dead vs. passed to execution, how many skips were audit-executed,
  /// and how many audits contradicted the prediction (each mispredict
  /// also latches a SelfCheckReport).
  uint64_t PrefilterSkipped = 0;
  uint64_t PrefilterPassed = 0;
  uint64_t PrefilterAudited = 0;
  uint64_t PrefilterMispredicts = 0;
  /// Per-mutator deep-phase stats over produced mutants with an
  /// observed reference phase, folded at the commit stage: the deepest
  /// phase reached (pipeline depth order 1 < 2 < 3 < 4 < 0; -1 until
  /// observed) and the count of deep reaches (phase 0, 3, or 4).
  std::vector<int> MutatorDeepestPhase;
  std::vector<size_t> MutatorDeepHits;
  double ElapsedSeconds = 0;

  size_t numGenerated() const { return GenClasses.size(); }
  size_t numTests() const { return TestClassIndices.size(); }
  /// Distinct discrepancy categories seen by the δ-diversity batch runs
  /// (non-constant keys of DdOutcomeCounts); 0 for other algorithms.
  size_t ddDistinctDiscrepancies() const;
  /// succ(X) = |TestClasses| / #Iterations (§3.1.3).
  double successRatePercent() const;
  /// Distinct coverage statistics among GenClasses (the Finding 1
  /// uniqueness analysis).
  size_t uniqueCoverageStats() const;
  /// A ClassPath holding seeds + helpers + every generated class
  /// (overlay for differential testing).
  ClassPath corpusClassPath() const;
};

/// Runs one campaign.
CampaignResult runCampaign(const CampaignConfig &Config);

} // namespace classfuzz

#endif // CLASSFUZZ_FUZZING_CAMPAIGN_H
