//===- fuzzing/SeedScheduler.h - Learned seed selection ------------------===//
//
// Part of classfuzz-cpp (PLDI 2016 classfuzz reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-iteration seed selection over the mutation pool. The paper (and
/// this reproduction until now) drew the next parent uniformly; with a
/// 10-100x corpus, seed choice dominates yield ("Selecting Initial
/// Seeds for Better JVM Fuzzing", arxiv 2408.08515), so the campaign
/// can now bias the draw:
///
///  * `uniform` -- the historical policy, bit-compatible with the old
///    `R.choiceIndex(Pool.size())` draw.
///  * `rare` -- FairFuzz-style rare-branch targeting: entries whose
///    reference trace covers branch sites hit at most `RareThreshold`
///    times get selection slots proportional to how many such sites
///    they cover.
///  * `cluster` -- entries are clustered by reference-coverage
///    fingerprint; selection mass is split equally across clusters so
///    behaviorally redundant seeds share one cluster's budget.
///
/// Determinism contract (the campaign's jobs-invariance depends on it):
///
///  * pick() consumes exactly one logical draw, `nextBelow(N)` with
///    N == entries(), for EVERY policy. The policy only permutes the
///    slot table the drawn index goes through, so the raw Rng draw
///    pattern -- and everything downstream of it -- is identical across
///    policies and worker counts.
///  * noteTrace() folds hit counts and rebuild() recomputes scores,
///    clusters, and the slot table; the campaign calls them only at the
///    in-order commit stage (and rebuild() only at commits that discard
///    in-flight speculation), so scheduler state is a pure function of
///    the committed trajectory.
///
/// The scheduler owns its hit-count table: it never reads the frontier
/// census, so `--seed-sched rare` works without `--frontier`.
///
//===----------------------------------------------------------------------===//

#ifndef CLASSFUZZ_FUZZING_SEEDSCHEDULER_H
#define CLASSFUZZ_FUZZING_SEEDSCHEDULER_H

#include "coverage/Tracefile.h"
#include "support/Rng.h"

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace classfuzz {

enum class SeedSchedPolicy {
  Uniform,
  Rare,
  Cluster,
};

const char *seedSchedPolicyName(SeedSchedPolicy Policy);

/// Parses "uniform" / "rare" / "cluster"; false on anything else.
bool parseSeedSchedPolicy(const std::string &Text, SeedSchedPolicy &Out);

/// Schedules which mutation-pool entry the next iteration mutates.
/// Mirrors the pool 1:1: the campaign calls addEntry (or
/// addEntryNoCoverage) exactly when it pushes a pool entry, so
/// entries() always equals the pool size.
class SeedScheduler {
public:
  struct Options {
    SeedSchedPolicy Policy = SeedSchedPolicy::Uniform;
    /// A branch site with at most this many folded hits is "rare".
    /// 2 is the bench_seedsched sweet spot (see CampaignConfig).
    size_t RareThreshold = 2;
  };

  explicit SeedScheduler(Options Opts) : Opts(Opts) {}

  /// Registers the next pool entry with its reference-trace coverage.
  /// Stores the branch vector and fingerprint only; does NOT fold hit
  /// counts (pair with noteTrace, which folds every committed run).
  void addEntry(const Tracefile &Trace);

  /// Registers a pool entry with no coverage information (randfuzz, or
  /// coverage-free replay): scores as zero, clusters with its kind.
  void addEntryNoCoverage() { addEntry(Tracefile()); }

  /// Folds one committed run's branch coverage into the hit-count
  /// table. Commit-stage only.
  void noteTrace(const Tracefile &Trace);

  /// Recomputes rare scores, clusters, and the selection slot table
  /// from the current entries and hit counts, and publishes the
  /// campaign.sched_* gauges. Commit-stage only, and in the parallel
  /// pipeline only at commits that discard in-flight speculation.
  void rebuild();

  /// Draws the next pool index: exactly one nextBelow(entries()) from
  /// \p R regardless of policy.
  size_t pick(Rng &R) const;

  size_t entries() const { return Entries.size(); }
  /// Entries whose trace covers at least one currently-rare branch
  /// site (as of the last rebuild).
  size_t rareEntries() const { return RareCount; }
  /// Coverage-fingerprint clusters (as of the last rebuild).
  size_t clusters() const { return ClusterCount; }
  /// Number of rebuild() calls so far.
  uint64_t epochs() const { return EpochCount; }
  /// The entry's rare-branch score as of the last rebuild (0 for
  /// entries added since).
  size_t rareScore(size_t Index) const {
    return Index < Entries.size() ? Entries[Index].RareScore : 0;
  }

  SeedSchedPolicy policy() const { return Opts.Policy; }

private:
  struct Entry {
    std::vector<uint32_t> Branches; ///< Sorted distinct branch ids.
    uint64_t Fingerprint = 0;       ///< Coverage cluster key.
    size_t RareScore = 0;           ///< As of the last rebuild.
  };

  void rebuildDrawMap(size_t TotalScore,
                      const std::vector<std::vector<size_t>> &Clusters);

  Options Opts;
  std::vector<Entry> Entries;
  std::unordered_map<uint32_t, uint64_t> Hits; ///< branch id -> folds.
  /// Slot table: pick() returns DrawMap[nextBelow(DrawMap.size())],
  /// and DrawMap.size() == Entries.size() always (the determinism
  /// contract above). Identity until the first rebuild.
  std::vector<size_t> DrawMap;
  size_t RareCount = 0;
  size_t ClusterCount = 0;
  uint64_t EpochCount = 0;
};

} // namespace classfuzz

#endif // CLASSFUZZ_FUZZING_SEEDSCHEDULER_H
