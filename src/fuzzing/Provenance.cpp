//===- fuzzing/Provenance.cpp ----------------------------------------------===//

#include "fuzzing/Provenance.h"

#include "classfile/ClassReader.h"
#include "jvm/Policy.h"
#include "mutation/Engine.h"
#include "runtime/RuntimeLib.h"
#include "telemetry/Telemetry.h"

#include <cctype>
#include <cinttypes>
#include <cstdlib>
#include <filesystem>
#include <fstream>

using namespace classfuzz;

// ---- replay ---------------------------------------------------------------

Result<ReplayedMutant>
classfuzz::replayLineage(const Bytes &RootSeed,
                         const std::vector<LineageStep> &Steps,
                         const std::vector<std::string> &KnownClasses,
                         const HoleProviderFn &Holes) {
  if (Steps.empty())
    return makeError("lineage has no steps");
  ReplayedMutant Out;
  Bytes Current = RootSeed;
  Rng R;
  for (size_t I = 0; I != Steps.size(); ++I) {
    const LineageStep &Step = Steps[I];
    if (Step.MutatorIndex >= extendedMutatorRegistry().size())
      return makeError("lineage step " + std::to_string(I) +
                       ": mutator index " +
                       std::to_string(Step.MutatorIndex) + " out of range");
    R.restore(Step.RngBefore);
    MutationContext Ctx{R, KnownClasses};
    TypedHoleList StepHoles;
    if (Holes && Step.MutatorIndex >= NumMutators) {
      StepHoles = Holes(Current);
      Ctx.Holes = &StepHoles;
    }
    MutationOutcome Mutant = mutateClass(Current, Step.MutatorIndex, Ctx);
    if (!Mutant.Produced)
      return makeError("lineage step " + std::to_string(I) + " (" +
                       extendedMutatorRegistry()[Step.MutatorIndex].Id +
                       ") no longer produces a classfile: " + Mutant.Error);
    if (I + 1 != Steps.size())
      Out.Ancestors.emplace_back(Mutant.ClassName, Mutant.Data);
    Out.ClassName = Mutant.ClassName;
    Current = std::move(Mutant.Data);
  }
  Out.Data = std::move(Current);
  return Out;
}

Result<std::vector<SeedClass>>
classfuzz::rebuildSeedCorpus(const CampaignEnvSpec &Spec) {
  if (Spec.SeedDir.empty()) {
    Rng R(Spec.RngSeed);
    return generateSeedCorpus(R, Spec.NumSeeds);
  }
  // --seed-dir campaigns: reload the directory the way the CLI did
  // (every *.class, non-recursive, named by its ThisClass).
  namespace fs = std::filesystem;
  std::vector<SeedClass> Out;
  std::error_code Ec;
  std::vector<fs::path> Paths;
  for (const auto &Entry : fs::directory_iterator(Spec.SeedDir, Ec)) {
    if (Ec)
      break;
    if (Entry.path().extension() == ".class")
      Paths.push_back(Entry.path());
  }
  if (Ec)
    return makeError("cannot read seed directory " + Spec.SeedDir + ": " +
                     Ec.message());
  for (const fs::path &Path : Paths) {
    std::ifstream In(Path, std::ios::binary);
    if (!In)
      continue;
    Bytes Data((std::istreambuf_iterator<char>(In)),
               std::istreambuf_iterator<char>());
    auto CF = parseClassFile(Data);
    if (!CF)
      continue;
    SeedClass Seed;
    Seed.Name = CF->ThisClass;
    Seed.Data = std::move(Data);
    Out.push_back(std::move(Seed));
  }
  if (Out.empty())
    return makeError("no usable .class seeds in " + Spec.SeedDir);
  return Out;
}

std::vector<std::string>
classfuzz::rebuildKnownClasses(const CampaignEnvSpec &Spec,
                               const std::vector<SeedClass> &Seeds) {
  JvmPolicy Policy = referenceJvmPolicy();
  if (!Spec.ReferencePolicyName.empty())
    for (const JvmPolicy &P : allJvmPolicies())
      if (P.Name == Spec.ReferencePolicyName)
        Policy = P;
  ClassPath Env = runtimeLibraryFor(Policy);
  for (const SeedClass &Seed : Seeds) {
    Env.add(Seed.Name, Seed.Data);
    for (const auto &[Name, Data] : Seed.Helpers)
      Env.add(Name, Data);
  }
  return Env.names();
}

// ---- serialization --------------------------------------------------------

namespace {

std::string hexU64(uint64_t V) {
  char Buf[24];
  std::snprintf(Buf, sizeof(Buf), "0x%" PRIx64, V);
  return Buf;
}

} // namespace

std::string classfuzz::lineageJson(const Provenance &Prov,
                                   const CampaignEnvSpec &Spec,
                                   const std::string &MutantName,
                                   const std::string &ExpectedEncoded) {
  namespace tel = classfuzz::telemetry;
  std::string J = "{\n  \"version\": 1,\n";
  J += "  \"mutant\": \"" + tel::jsonEscape(MutantName) + "\",\n";
  J += "  \"expected_encoded\": \"" + tel::jsonEscape(ExpectedEncoded) +
       "\",\n";
  J += "  \"env\": {\n";
  J += "    \"rng_seed\": \"" + hexU64(Spec.RngSeed) + "\",\n";
  J += "    \"num_seeds\": " + std::to_string(Spec.NumSeeds) + ",\n";
  J += "    \"seed_dir\": \"" + tel::jsonEscape(Spec.SeedDir) + "\",\n";
  J += "    \"reference_policy\": \"" +
       tel::jsonEscape(Spec.ReferencePolicyName) + "\",\n";
  J += "    \"tier\": \"" + tel::jsonEscape(Spec.TierName) + "\",\n";
  J += std::string("    \"tier_diff\": ") +
       (Spec.TierDiff ? "true" : "false") + "\n";
  J += "  },\n";
  J += "  \"root_seed\": {\"index\": " +
       std::to_string(Prov.RootSeedIndex) + ", \"name\": \"" +
       tel::jsonEscape(Prov.RootSeedName) + "\"},\n";
  J += "  \"steps\": [";
  for (size_t I = 0; I != Prov.Steps.size(); ++I) {
    const LineageStep &S = Prov.Steps[I];
    J += I == 0 ? "\n" : ",\n";
    J += "    {\"mutator\": " + std::to_string(S.MutatorIndex) +
         ", \"id\": \"" +
         tel::jsonEscape(S.MutatorIndex < extendedMutatorRegistry().size()
                             ? extendedMutatorRegistry()[S.MutatorIndex].Id
                             : "?") +
         "\", \"draws\": " + std::to_string(S.Draws) + ", \"rng\": [";
    for (size_t W = 0; W != 4; ++W)
      J += (W ? ", \"" : "\"") + hexU64(S.RngBefore.Words[W]) + "\"";
    J += ", \"" + hexU64(S.RngBefore.Draws) + "\"]}";
  }
  J += Prov.Steps.empty() ? "]\n" : "\n  ]\n";
  J += "}\n";
  return J;
}

// ---- minimal JSON parser --------------------------------------------------
//
// Parses the subset lineageJson() emits (objects, arrays, strings with
// standard escapes, unsigned ints, hex-in-string u64s, bools, null).
// Tolerant of whitespace and unknown keys; not a general-purpose
// validator.

namespace {

struct JsonValue {
  enum Kind { Null, Bool, Num, Str, Arr, Obj } K = Null;
  bool B = false;
  uint64_t N = 0;
  std::string S;
  std::vector<JsonValue> Elements;
  std::vector<std::pair<std::string, JsonValue>> Members;

  const JsonValue *find(const std::string &Key) const {
    for (const auto &[K2, V] : Members)
      if (K2 == Key)
        return &V;
    return nullptr;
  }
  /// String payload interpreted as a u64 ("0x..." or decimal).
  uint64_t asU64() const {
    if (K == Num)
      return N;
    if (K == Str)
      return std::strtoull(S.c_str(), nullptr, 0);
    return 0;
  }
};

class JsonParser {
public:
  explicit JsonParser(const std::string &Text) : Text(Text) {}

  Result<JsonValue> parse() {
    auto V = parseValue();
    if (!V)
      return V;
    skipWs();
    if (Pos != Text.size())
      return fail("trailing characters");
    return V;
  }

private:
  Result<JsonValue> fail(const std::string &Why) {
    return makeError("lineage.json:" + std::to_string(Pos) + ": " + Why);
  }

  void skipWs() {
    while (Pos < Text.size() &&
           std::isspace(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
  }

  bool consume(char C) {
    skipWs();
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  Result<JsonValue> parseValue() {
    skipWs();
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    char C = Text[Pos];
    if (C == '{')
      return parseObject();
    if (C == '[')
      return parseArray();
    if (C == '"')
      return parseString();
    if (C == 't' || C == 'f')
      return parseBool();
    if (C == 'n') {
      if (Text.compare(Pos, 4, "null") != 0)
        return fail("bad literal");
      Pos += 4;
      return JsonValue{};
    }
    return parseNumber();
  }

  Result<JsonValue> parseObject() {
    JsonValue V;
    V.K = JsonValue::Obj;
    ++Pos; // '{'
    if (consume('}'))
      return V;
    for (;;) {
      auto Key = parseString();
      if (!Key)
        return Key;
      if (!consume(':'))
        return fail("expected ':'");
      auto Member = parseValue();
      if (!Member)
        return Member;
      V.Members.emplace_back(Key->S, Member.take());
      if (consume(','))
        continue;
      if (consume('}'))
        return V;
      return fail("expected ',' or '}'");
    }
  }

  Result<JsonValue> parseArray() {
    JsonValue V;
    V.K = JsonValue::Arr;
    ++Pos; // '['
    if (consume(']'))
      return V;
    for (;;) {
      auto Element = parseValue();
      if (!Element)
        return Element;
      V.Elements.push_back(Element.take());
      if (consume(','))
        continue;
      if (consume(']'))
        return V;
      return fail("expected ',' or ']'");
    }
  }

  Result<JsonValue> parseString() {
    skipWs();
    if (Pos >= Text.size() || Text[Pos] != '"')
      return fail("expected string");
    ++Pos;
    JsonValue V;
    V.K = JsonValue::Str;
    while (Pos < Text.size() && Text[Pos] != '"') {
      char C = Text[Pos++];
      if (C != '\\') {
        V.S += C;
        continue;
      }
      if (Pos >= Text.size())
        return fail("unterminated escape");
      char E = Text[Pos++];
      switch (E) {
      case '"':
      case '\\':
      case '/':
        V.S += E;
        break;
      case 'n':
        V.S += '\n';
        break;
      case 'r':
        V.S += '\r';
        break;
      case 't':
        V.S += '\t';
        break;
      case 'u': {
        if (Pos + 4 > Text.size())
          return fail("bad \\u escape");
        unsigned Code =
            static_cast<unsigned>(std::strtoul(
                Text.substr(Pos, 4).c_str(), nullptr, 16));
        Pos += 4;
        // Our writer only emits \u00XX control escapes.
        V.S += static_cast<char>(Code & 0xFF);
        break;
      }
      default:
        return fail("unknown escape");
      }
    }
    if (Pos >= Text.size())
      return fail("unterminated string");
    ++Pos; // closing quote
    return V;
  }

  Result<JsonValue> parseBool() {
    JsonValue V;
    V.K = JsonValue::Bool;
    if (Text.compare(Pos, 4, "true") == 0) {
      V.B = true;
      Pos += 4;
      return V;
    }
    if (Text.compare(Pos, 5, "false") == 0) {
      Pos += 5;
      return V;
    }
    return fail("bad literal");
  }

  Result<JsonValue> parseNumber() {
    size_t Start = Pos;
    while (Pos < Text.size() &&
           (std::isdigit(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == '-' || Text[Pos] == '+' || Text[Pos] == '.' ||
            Text[Pos] == 'e' || Text[Pos] == 'E' || Text[Pos] == 'x'))
      ++Pos;
    if (Pos == Start)
      return fail("expected value");
    JsonValue V;
    V.K = JsonValue::Num;
    V.N = std::strtoull(Text.substr(Start, Pos - Start).c_str(), nullptr, 0);
    return V;
  }

  const std::string &Text;
  size_t Pos = 0;
};

} // namespace

Result<ParsedLineage> classfuzz::parseLineageJson(const std::string &Json) {
  auto Root = JsonParser(Json).parse();
  if (!Root)
    return makeError(Root.error());
  if (Root->K != JsonValue::Obj)
    return makeError("lineage.json: top level is not an object");

  ParsedLineage Out;
  if (const JsonValue *V = Root->find("mutant"))
    Out.MutantName = V->S;
  if (const JsonValue *V = Root->find("expected_encoded"))
    Out.ExpectedEncoded = V->S;

  const JsonValue *Env = Root->find("env");
  if (!Env || Env->K != JsonValue::Obj)
    return makeError("lineage.json: missing env object");
  if (const JsonValue *V = Env->find("rng_seed"))
    Out.Spec.RngSeed = V->asU64();
  if (const JsonValue *V = Env->find("num_seeds"))
    Out.Spec.NumSeeds = static_cast<size_t>(V->asU64());
  if (const JsonValue *V = Env->find("seed_dir"))
    Out.Spec.SeedDir = V->S;
  if (const JsonValue *V = Env->find("reference_policy"))
    Out.Spec.ReferencePolicyName = V->S;
  if (const JsonValue *V = Env->find("tier"))
    Out.Spec.TierName = V->S;
  if (const JsonValue *V = Env->find("tier_diff"))
    Out.Spec.TierDiff = V->B;

  const JsonValue *Seed = Root->find("root_seed");
  if (!Seed || Seed->K != JsonValue::Obj)
    return makeError("lineage.json: missing root_seed object");
  if (const JsonValue *V = Seed->find("index"))
    Out.Prov.RootSeedIndex = static_cast<size_t>(V->asU64());
  if (const JsonValue *V = Seed->find("name"))
    Out.Prov.RootSeedName = V->S;

  const JsonValue *Steps = Root->find("steps");
  if (!Steps || Steps->K != JsonValue::Arr)
    return makeError("lineage.json: missing steps array");
  for (const JsonValue &StepV : Steps->Elements) {
    if (StepV.K != JsonValue::Obj)
      return makeError("lineage.json: step is not an object");
    LineageStep Step;
    if (const JsonValue *V = StepV.find("mutator"))
      Step.MutatorIndex = static_cast<size_t>(V->asU64());
    if (const JsonValue *V = StepV.find("draws"))
      Step.Draws = V->asU64();
    const JsonValue *RngV = StepV.find("rng");
    if (!RngV || RngV->K != JsonValue::Arr || RngV->Elements.size() != 5)
      return makeError("lineage.json: step rng must be a 5-element array");
    for (size_t W = 0; W != 4; ++W)
      Step.RngBefore.Words[W] = RngV->Elements[W].asU64();
    Step.RngBefore.Draws = RngV->Elements[4].asU64();
    Out.Prov.Steps.push_back(Step);
  }
  if (Out.Prov.Steps.empty())
    return makeError("lineage.json: empty steps array");
  return Out;
}
