//===- fuzzing/SeedScheduler.cpp ------------------------------------------===//

#include "fuzzing/SeedScheduler.h"

#include "telemetry/Telemetry.h"

#include <algorithm>
#include <cassert>
#include <numeric>

using namespace classfuzz;

const char *classfuzz::seedSchedPolicyName(SeedSchedPolicy Policy) {
  switch (Policy) {
  case SeedSchedPolicy::Uniform:
    return "uniform";
  case SeedSchedPolicy::Rare:
    return "rare";
  case SeedSchedPolicy::Cluster:
    return "cluster";
  }
  return "?";
}

bool classfuzz::parseSeedSchedPolicy(const std::string &Text,
                                     SeedSchedPolicy &Out) {
  if (Text == "uniform") {
    Out = SeedSchedPolicy::Uniform;
    return true;
  }
  if (Text == "rare") {
    Out = SeedSchedPolicy::Rare;
    return true;
  }
  if (Text == "cluster") {
    Out = SeedSchedPolicy::Cluster;
    return true;
  }
  return false;
}

void SeedScheduler::addEntry(const Tracefile &Trace) {
  Entry E;
  E.Branches.assign(Trace.branches().begin(), Trace.branches().end());
  E.Fingerprint = Trace.fingerprint();
  Entries.push_back(std::move(E));
}

void SeedScheduler::noteTrace(const Tracefile &Trace) {
  for (uint32_t B : Trace.branches())
    ++Hits[B];
}

void SeedScheduler::rebuild() {
  ++EpochCount;

  // Rare scores: how many of the entry's branch directions are still
  // below the rarity threshold in the folded hit table.
  size_t TotalScore = 0;
  RareCount = 0;
  for (Entry &E : Entries) {
    size_t Score = 0;
    for (uint32_t B : E.Branches) {
      auto It = Hits.find(B);
      uint64_t H = It == Hits.end() ? 0 : It->second;
      Score += H <= Opts.RareThreshold ? 1 : 0;
    }
    E.RareScore = Score;
    TotalScore += Score;
    RareCount += Score > 0 ? 1 : 0;
  }

  // Clusters keyed on the coverage fingerprint, in first-appearance
  // order (deterministic: entry order is commit order).
  std::vector<std::vector<size_t>> Clusters;
  std::unordered_map<uint64_t, size_t> KeyToCluster;
  for (size_t I = 0; I != Entries.size(); ++I) {
    auto [It, Fresh] =
        KeyToCluster.try_emplace(Entries[I].Fingerprint, Clusters.size());
    if (Fresh)
      Clusters.emplace_back();
    Clusters[It->second].push_back(I);
  }
  ClusterCount = Clusters.size();

  rebuildDrawMap(TotalScore, Clusters);

  if (telemetry::enabled()) {
    auto &M = telemetry::metrics();
    M.counter("campaign.sched_epochs").inc();
    M.gauge("campaign.sched_entries")
        .set(static_cast<int64_t>(Entries.size()));
    M.gauge("campaign.sched_rare_entries")
        .set(static_cast<int64_t>(RareCount));
    M.gauge("campaign.sched_clusters")
        .set(static_cast<int64_t>(ClusterCount));
    M.gauge("campaign.sched_policy")
        .set(static_cast<int64_t>(Opts.Policy));
  }
}

void SeedScheduler::rebuildDrawMap(
    size_t TotalScore, const std::vector<std::vector<size_t>> &Clusters) {
  const size_t N = Entries.size();
  DrawMap.clear();
  DrawMap.reserve(N);

  // Uniform -- and every degenerate case -- is the identity table, so
  // pick() is bit-compatible with the historical uniform draw.
  auto identity = [&] {
    for (size_t I = 0; I != N; ++I)
      DrawMap.push_back(I);
  };

  switch (Opts.Policy) {
  case SeedSchedPolicy::Uniform:
    identity();
    return;

  case SeedSchedPolicy::Rare: {
    if (TotalScore == 0) {
      identity(); // Nothing is rare: fall back to uniform mass.
      return;
    }
    // Largest-remainder apportionment of the N slots by rare score
    // (ties broken by entry index, so the table is deterministic).
    std::vector<size_t> Slots(N, 0);
    std::vector<uint64_t> Remainder(N, 0);
    size_t Assigned = 0;
    for (size_t I = 0; I != N; ++I) {
      uint64_t Scaled =
          static_cast<uint64_t>(N) * Entries[I].RareScore;
      Slots[I] = static_cast<size_t>(Scaled / TotalScore);
      Remainder[I] = Scaled % TotalScore;
      Assigned += Slots[I];
    }
    std::vector<size_t> Order(N);
    std::iota(Order.begin(), Order.end(), 0);
    std::sort(Order.begin(), Order.end(), [&](size_t A, size_t B) {
      if (Remainder[A] != Remainder[B])
        return Remainder[A] > Remainder[B];
      return A < B;
    });
    for (size_t K = 0; Assigned < N; ++K, ++Assigned)
      ++Slots[Order[K % N]];
    for (size_t I = 0; I != N; ++I)
      DrawMap.insert(DrawMap.end(), Slots[I], I);
    return;
  }

  case SeedSchedPolicy::Cluster: {
    const size_t C = Clusters.size();
    if (C == 0) {
      identity();
      return;
    }
    // Equal slot budget per cluster (first clusters absorb the
    // remainder), round-robin over members in entry order. One cluster
    // of N entries gets N slots -> the identity table.
    const size_t Base = N / C;
    const size_t Extra = N % C;
    for (size_t Cl = 0; Cl != C; ++Cl) {
      const std::vector<size_t> &Members = Clusters[Cl];
      const size_t Budget = Base + (Cl < Extra ? 1 : 0);
      for (size_t K = 0; K != Budget; ++K)
        DrawMap.push_back(Members[K % Members.size()]);
    }
    return;
  }
  }
  identity();
}

size_t SeedScheduler::pick(Rng &R) const {
  assert(!Entries.empty() && "pick() from an empty pool");
  // One nextBelow(entries()) per pick, for every policy: the bound --
  // and therefore the Rng's rejection-sampling raw-draw pattern -- must
  // not depend on the policy or the slot table's contents.
  size_t Draw = static_cast<size_t>(R.nextBelow(Entries.size()));
  return DrawMap.size() == Entries.size() ? DrawMap[Draw] : Draw;
}
