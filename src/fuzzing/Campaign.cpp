//===- fuzzing/Campaign.cpp ------------------------------------------------===//

#include "fuzzing/Campaign.h"

#include "analysis/StaticAnalyzer.h"
#include "jvm/ExecEngine.h"
#include "jvm/Phase.h"
#include "jvm/Vm.h"
#include "mutation/Engine.h"
#include "runtime/RuntimeLib.h"
#include "support/Hashing.h"
#include "support/ThreadPool.h"
#include "telemetry/FlightRecorder.h"
#include "telemetry/Telemetry.h"
#include "telemetry/TimeSeries.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>

using namespace classfuzz;

const char *classfuzz::fuzzAlgorithmName(FuzzAlgorithm Algo) {
  switch (Algo) {
  case FuzzAlgorithm::ClassfuzzStBr:
    return "classfuzz[stbr]";
  case FuzzAlgorithm::ClassfuzzSt:
    return "classfuzz[st]";
  case FuzzAlgorithm::ClassfuzzTr:
    return "classfuzz[tr]";
  case FuzzAlgorithm::ClassfuzzDdCoarse:
    return "classfuzz[dd-coarse]";
  case FuzzAlgorithm::ClassfuzzDdFine:
    return "classfuzz[dd-fine]";
  case FuzzAlgorithm::Uniquefuzz:
    return "uniquefuzz";
  case FuzzAlgorithm::Greedyfuzz:
    return "greedyfuzz";
  case FuzzAlgorithm::Randfuzz:
    return "randfuzz";
  }
  return "?";
}

bool classfuzz::usesDeltaDiversity(FuzzAlgorithm Algo) {
  return Algo == FuzzAlgorithm::ClassfuzzDdCoarse ||
         Algo == FuzzAlgorithm::ClassfuzzDdFine;
}

CampaignConfig::CampaignConfig() : ReferencePolicy(referenceJvmPolicy()) {}

double CampaignResult::successRatePercent() const {
  if (Iterations == 0)
    return 0.0;
  return 100.0 * static_cast<double>(TestClassIndices.size()) /
         static_cast<double>(Iterations);
}

size_t CampaignResult::uniqueCoverageStats() const {
  std::set<std::pair<size_t, size_t>> Stats;
  for (const GeneratedClass &G : GenClasses)
    Stats.insert({G.Trace.stmtCount(), G.Trace.branchCount()});
  return Stats.size();
}

size_t CampaignResult::ddDistinctDiscrepancies() const {
  size_t N = 0;
  for (const auto &[Sequence, Count] : DdOutcomeCounts) {
    bool Constant = true;
    for (char C : Sequence)
      Constant &= C == Sequence[0];
    N += !Constant;
  }
  return N;
}

ClassPath CampaignResult::corpusClassPath() const {
  ClassPath Out;
  for (const SeedClass &Seed : Seeds) {
    Out.add(Seed.Name, Seed.Data);
    for (const auto &[Name, Data] : Seed.Helpers)
      Out.add(Name, Data);
  }
  for (const GeneratedClass &G : GenClasses)
    Out.add(G.Name, G.Data);
  return Out;
}

namespace {

/// The acceptance discipline, dispatching on the algorithm. The δ
/// algorithms judge cross-profile observation tuples (acceptDd); the
/// others judge reference-JVM tracefiles (accept).
class Acceptor {
public:
  explicit Acceptor(FuzzAlgorithm Algo)
      : Algo(Algo), Unique(criterionFor(Algo)) {
    if (usesDeltaDiversity(Algo))
      Delta.emplace(criterionFor(Algo));
  }

  /// True when a mutant with \p Trace is representative.
  bool accept(const Tracefile &Trace) {
    switch (Algo) {
    case FuzzAlgorithm::Randfuzz:
      return true; // Every produced mutant is kept.
    case FuzzAlgorithm::Greedyfuzz:
      return Greedy.tryAdd(Trace);
    default:
      return Unique.tryInsert(Trace);
    }
  }

  /// δ-diversity acceptance: representative iff the cross-profile tuple
  /// is novel. The decomposition feeds campaign.dd_* telemetry.
  DeltaDiversityChecker::Novelty
  acceptDd(const std::vector<ProfileObservation> &Obs) {
    return Delta->tryInsert(Obs);
  }

  /// Seeds participate in the uniqueness pool (TestClasses starts as
  /// Seeds, Algorithm 1 line 1).
  void registerSeed(const Tracefile &Trace) {
    switch (Algo) {
    case FuzzAlgorithm::Randfuzz:
      break;
    case FuzzAlgorithm::Greedyfuzz:
      Greedy.add(Trace);
      break;
    default:
      Unique.insert(Trace);
      break;
    }
  }

  /// Seed registration for the δ algorithms: the seed's cross-profile
  /// tuple joins the pool so mutants must behave differently from it.
  void registerSeedDd(const std::vector<ProfileObservation> &Obs) {
    Delta->insert(Obs);
  }

  const DeltaDiversityChecker &delta() const { return *Delta; }

private:
  static UniquenessCriterion criterionFor(FuzzAlgorithm Algo) {
    switch (Algo) {
    case FuzzAlgorithm::ClassfuzzSt:
      return UniquenessCriterion::St;
    case FuzzAlgorithm::ClassfuzzTr:
      return UniquenessCriterion::Tr;
    case FuzzAlgorithm::ClassfuzzDdCoarse:
      return UniquenessCriterion::DdCoarse;
    case FuzzAlgorithm::ClassfuzzDdFine:
      return UniquenessCriterion::DdFine;
    default:
      return UniquenessCriterion::StBr;
    }
  }

  FuzzAlgorithm Algo;
  UniquenessChecker Unique;
  AccumulativeCoverage Greedy;
  std::optional<DeltaDiversityChecker> Delta; ///< δ algorithms only.
};

bool usesMcmc(FuzzAlgorithm Algo) {
  return Algo == FuzzAlgorithm::ClassfuzzStBr ||
         Algo == FuzzAlgorithm::ClassfuzzSt ||
         Algo == FuzzAlgorithm::ClassfuzzTr ||
         usesDeltaDiversity(Algo);
}

bool usesCoverage(FuzzAlgorithm Algo) {
  return Algo != FuzzAlgorithm::Randfuzz;
}

/// The mutation pool holds (name, bytes) copies; seeds also prime the
/// uniqueness pool so mutants must differ from them. Each entry carries
/// its lineage so descendants extend the chain (seeds have no steps).
struct PoolEntry {
  std::string Name;
  Bytes Data;
  Provenance Prov;
};

/// Packs a committed iteration's outcome for FlightKind::Iteration:
/// bit0 produced, bit1 representative, bits8..15 the MutationResult.
uint64_t packIterationOutcome(MutationResult MR, bool Produced,
                              bool Representative) {
  return (Produced ? 1u : 0u) | (Representative ? 2u : 0u) |
         (static_cast<uint64_t>(MR) << 8);
}

/// The campaign's telemetry handles, resolved once per process so the
/// per-iteration hot path never touches the registry mutex. All
/// recording is observation-only (see DESIGN.md §8): no Rng access, no
/// interaction with speculation commit order.
struct CampaignTelemetry {
  telemetry::Counter &Accepted;
  telemetry::Counter &Rejected;
  telemetry::Counter &Inapplicable;
  telemetry::Counter &NoChange;
  telemetry::Counter &AssemblyFailed;
  telemetry::Counter &SpecHits;
  telemetry::Counter &SpecRollbacks;
  telemetry::Counter &SpecCancelled;
  /// δ-diversity pipeline counters; all incremented at the in-order
  /// commit stage only, so their values are identical across --jobs.
  telemetry::Counter &DdBatches;
  telemetry::Counter &DdDiscrepancies;
  telemetry::Counter &DdNovelTuple;
  telemetry::Counter &DdNovelOutcome;
  telemetry::Counter &DdNovelCoverage;
  /// Tier-diff pipeline counters; commit stage only, --jobs-invariant.
  telemetry::Counter &TierBatches;
  telemetry::Counter &TierDisagreements;
  /// Seed-scheduler counters; commit stage only, --jobs-invariant
  /// (the sched_epochs counter and sched_* gauges are published by the
  /// scheduler itself at rebuild time, also commit-stage).
  telemetry::Counter &SchedDraws;
  telemetry::Counter &SchedRareDraws;
  /// Analyzer pre-filter counters (--prefilter); commit stage only,
  /// --jobs-invariant (predictions run on the driver thread).
  telemetry::Counter &PrefilterSkipped;
  telemetry::Counter &PrefilterPassed;
  telemetry::Counter &PrefilterAudited;
  telemetry::Counter &PrefilterMispredict;
  telemetry::Histogram &MutateNs;
  telemetry::Histogram &ExecuteNs;
  telemetry::Histogram &CommitNs;

  static CampaignTelemetry &get() {
    auto &M = telemetry::metrics();
    static CampaignTelemetry T{
        M.counter("campaign.accepted"),
        M.counter("campaign.rejected"),
        M.counter("campaign.inapplicable"),
        M.counter("campaign.nochange"),
        M.counter("campaign.assembly_failed"),
        M.counter("campaign.speculation.hits"),
        M.counter("campaign.speculation.rollbacks"),
        M.counter("campaign.speculation.cancelled"),
        M.counter("campaign.dd_batches"),
        M.counter("campaign.dd_discrepancies"),
        M.counter("campaign.dd_novel_tuple"),
        M.counter("campaign.dd_novel_outcome"),
        M.counter("campaign.dd_novel_coverage"),
        M.counter("campaign.tier_batches"),
        M.counter("campaign.tier_disagreements"),
        M.counter("campaign.sched_draws"),
        M.counter("campaign.sched_rare_draws"),
        M.counter("campaign.prefilter_skipped"),
        M.counter("campaign.prefilter_passed"),
        M.counter("campaign.prefilter_audited"),
        M.counter("campaign.prefilter_mispredict"),
        M.histogram("campaign.stage.mutate_ns"),
        M.histogram("campaign.stage.execute_ns"),
        M.histogram("campaign.stage.commit_ns"),
    };
    return T;
  }
};

/// What one reference-JVM coverage execution yields: the trace driving
/// acceptance plus the encoded startup phase the analyzer's prediction
/// is checked against.
struct RefRun {
  Tracefile Trace;
  int Phase = -1;
  /// Tier-diff mode: the (interpreter, baseline) two-code outcome plus
  /// the baseline code cache's deferred jit.* stats, both committed at
  /// the in-order commit stage. Empty/zero otherwise.
  std::string TierEncoded;
  JitStats TierJit;
};

/// What one δ-diversity batch (all profiles, coverage on) yields. The
/// reference profile's run doubles as the RefRun of the classic
/// pipeline, keeping the analyzer's predict-vs-observe contract intact.
struct DdRun {
  std::vector<ProfileObservation> Obs; ///< One per profile, in order.
  std::string Encoded;  ///< Figure 3 sequence, e.g. "00012".
  Tracefile RefTrace;   ///< Reference profile's coverage.
  int RefPhase = -1;    ///< Reference profile's encoded phase.
  /// (profile index, raw phase) per InternalError abort, for the
  /// commit-stage VmInternalError flight events.
  std::vector<std::pair<uint64_t, uint64_t>> InternalErrors;
  /// Tier-diff mode: see RefRun.
  std::string TierEncoded;
  JitStats TierJit;

  bool isDiscrepancy() const {
    for (char C : Encoded)
      if (C != Encoded[0])
        return true;
    return false;
  }
};

/// One speculated-but-uncommitted iteration of the parallel pipeline.
/// Everything the commit stage needs to either finalize the iteration or
/// rewind the campaign state when the presumed-rejection speculation
/// turns out wrong.
struct PendingIteration {
  /// The pool entry this iteration mutated (drawn by the scheduler at
  /// speculation time; the commit stage charges the draw counters from
  /// it so they stay Jobs-invariant).
  size_t PoolIndex = 0;
  size_t MutatorIndex = 0;
  MutationResult MutResult = MutationResult::Inapplicable;
  bool Produced = false;
  GeneratedClass G; ///< Valid when Produced (Trace filled at commit).
  std::future<RefRun> Trace; ///< Valid when Produced (classic modes).
  std::future<DdRun> Dd;     ///< Valid when Produced (δ modes).
  std::shared_ptr<std::atomic<bool>> Cancelled; ///< Worker skip flag.
  Rng RngAfter; ///< Driver RNG state after this iteration's draws.
  /// Selector state before this iteration's presumed-rejection
  /// recordOutcome (MCMC algorithms only).
  std::optional<McmcSelector> SelectorBefore;
  /// Pre-filter verdict, decided on the driver at speculation time
  /// (--prefilter). A skipped iteration ships no execution unless it is
  /// in the audit sample; the commit stage charges the counters.
  bool PrefilterSkip = false;
  bool PrefilterAudited = false;
  int PredictedPhase = -1; ///< 1 or 2 when PrefilterSkip.
};

} // namespace

CampaignResult classfuzz::runCampaign(const CampaignConfig &Config) {
  auto StartTime = std::chrono::steady_clock::now();

  CampaignResult Result;
  Result.Algo = Config.Algo;
  Result.Iterations = Config.Iterations;

  Rng R(Config.RngSeed);
  Result.Seeds = Config.ExternalSeeds.empty()
                     ? generateSeedCorpus(R, Config.NumSeeds)
                     : Config.ExternalSeeds;

  // The reference environment: reference JRE + the whole corpus. Mutants
  // are added as they are accepted so later runs can reference them.
  ClassPath RefEnv = runtimeLibraryFor(Config.ReferencePolicy);
  for (const SeedClass &Seed : Result.Seeds) {
    RefEnv.add(Seed.Name, Seed.Data);
    for (const auto &[Name, Data] : Seed.Helpers)
      RefEnv.add(Name, Data);
  }
  // Seal the base corpus: per-mutant environments below are then cheap
  // copy-on-write overlays instead of O(corpus) deep copies.
  RefEnv.freeze();

  std::vector<std::string> KnownClasses = RefEnv.names();
  MutationContext Ctx{R, KnownClasses};

  // Typed-hole extraction (--typed-mutators): an analyzer bound to its
  // own COW view of the *frozen base* corpus -- never fed accepted
  // mutants -- so the hole list for a given (name, bytes) is a pure
  // function replay can re-derive (fuzzing/Provenance.h). Extraction
  // consumes no RNG, so caching order cannot perturb the trajectory.
  std::optional<StaticAnalyzer> HoleAnalyzer;
  std::map<std::string, TypedHoleList> HoleCache;
  if (Config.TypedMutators)
    HoleAnalyzer.emplace(RefEnv, Config.ReferencePolicy);
  auto holesFor = [&](const std::string &Name,
                      const Bytes &Data) -> const TypedHoleList * {
    if (!HoleAnalyzer)
      return nullptr;
    auto It = HoleCache.find(Name);
    if (It == HoleCache.end())
      It = HoleCache.emplace(Name, HoleAnalyzer->typedHolesFor(Name, Data))
               .first;
    return &It->second;
  };

  // The mutator pool: the paper's 129 syntax/statement mutators, plus
  // the analyzer-driven typed mutators when --typed-mutators is on. The
  // extended registry shares the first 129 indices, so provenance and
  // telemetry indices mean the same thing either way.
  const std::vector<Mutator> &Registry =
      Config.TypedMutators ? extendedMutatorRegistry() : mutatorRegistry();
  const size_t NumMu = Registry.size();
  McmcSelector Selector(NumMu, Config.GeometricP > 0
                                   ? Config.GeometricP
                                   : defaultGeometricP(NumMu));
  Selector.setDeepReward(Config.DeepRewardWeight);
  Result.MutatorSelected.assign(NumMu, 0);
  Result.MutatorSucceeded.assign(NumMu, 0);
  Result.MutatorInapplicable.assign(NumMu, 0);
  Result.MutatorNoChange.assign(NumMu, 0);
  Result.MutatorDeepestPhase.assign(NumMu, -1);
  Result.MutatorDeepHits.assign(NumMu, 0);

  // Telemetry handles. Observation-only: sampled through relaxed
  // atomics and never read back, so the committed trajectory is
  // bit-identical with telemetry on or off. Disabled-mode cost is one
  // branch per record site plus inert PhaseTimers.
  CampaignTelemetry &TM = CampaignTelemetry::get();
  const bool Telem = telemetry::enabled();

  const bool Mcmc = usesMcmc(Config.Algo);
  const bool Coverage = usesCoverage(Config.Algo);
  const bool DdMode = usesDeltaDiversity(Config.Algo);
  // Deep-phase MCMC reward (--deep-reward): needs an MCMC selector to
  // reward and a reference run to observe the phase from.
  const bool DeepRewardOn = Mcmc && Coverage && Config.DeepRewardWeight > 0;
  // Analyzer pre-filter (--prefilter): needs a reference execution to
  // skip, so randfuzz (Coverage off) ignores the flag.
  const bool PrefilterOn = Config.Prefilter && Coverage;
  // Audit membership is a pure function of the mutant bytes (no RNG, no
  // iteration index), so the set of audited skips -- and therefore the
  // mispredict oracle -- is identical across --jobs values, and the
  // committed trajectory is identical across audit fractions.
  const uint64_t AuditThreshold = static_cast<uint64_t>(
      std::min(1.0, std::max(0.0, Config.PrefilterAudit)) * 1000000.0);
  auto inAuditSample = [&](const Bytes &Data) {
    return hashBytes(Data) % 1000000 < AuditThreshold;
  };
  /// Phase depth for the deep-phase reward: loading(1) < linking(2) <
  /// init(3) < runtime(4) < completed normally(0).
  auto phaseDepth = [](int Phase) { return Phase == 0 ? 5 : Phase; };
  /// Deep = survived loading and linking.
  auto isDeepPhase = [](int Phase) { return Phase == 0 || Phase >= 3; };
  // Workers only overlap coverage executions; algorithms that collect no
  // coverage (randfuzz) have nothing to offload.
  const size_t Jobs = Coverage ? std::max<size_t>(1, Config.Jobs) : 1;

  // δ-diversity batch state: the paper's five profiles plus one frozen
  // environment per profile (each its own runtime-library version, the
  // Definition 1 setup). RefEnv above still serves the analyzer and the
  // class-name universe; the reference profile's batch run doubles as
  // the classic pipeline's reference run.
  std::vector<JvmPolicy> DdPolicies;
  std::vector<ClassPath> DdEnvs;
  size_t DdRefIndex = 0;
  if (DdMode) {
    DdPolicies = allJvmPolicies();
    bool Found = false;
    for (size_t I = 0; I != DdPolicies.size() && !Found; ++I)
      if (DdPolicies[I].Name == Config.ReferencePolicy.Name) {
        DdRefIndex = I;
        Found = true;
      }
    if (!Found) {
      DdRefIndex = DdPolicies.size();
      DdPolicies.push_back(Config.ReferencePolicy);
    }
    for (const JvmPolicy &P : DdPolicies) {
      ClassPath Env = runtimeLibraryFor(P);
      for (const SeedClass &Seed : Result.Seeds) {
        Env.add(Seed.Name, Seed.Data);
        for (const auto &[Name, Data] : Seed.Helpers)
          Env.add(Name, Data);
      }
      Env.freeze();
      DdEnvs.push_back(std::move(Env));
    }
  }

  // Tier-diff axis (--tier-diff): the reference policy pinned to its
  // two fast tiers. Needs an execution stage to ride, so randfuzz
  // (Coverage off) ignores the flag. JitTelemetry is deferred: the
  // baseline engines run on workers whose count varies with Jobs, so
  // each run's JitStats travel with it and publish at the in-order
  // commit stage instead of at engine teardown.
  const bool TierDiff = Config.TierDiff && Coverage;
  JvmPolicy TierInterp = Config.ReferencePolicy;
  JvmPolicy TierBase = Config.ReferencePolicy;
  if (TierDiff) {
    TierInterp.Tier = ExecTier::Threaded;
    TierInterp.JitTelemetry = false;
    TierBase.Tier = ExecTier::Baseline;
    TierBase.JitTelemetry = false;
  }

  /// Runs \p Name on the tier pair over \p Env, appending the two
  /// encoded phases and collecting the baseline engine's deferred jit
  /// stats. Reads only frozen / call-local state, so workers may run it
  /// concurrently.
  auto tierRunInto = [&](const std::string &Name, const ClassPath &Env,
                         std::string &Encoded, JitStats &Jit) {
    {
      Vm Interp(TierInterp, Env, nullptr);
      Encoded += static_cast<char>('0' + encodePhase(Interp.run(Name)));
    }
    Vm Base(TierBase, Env, nullptr);
    Encoded += static_cast<char>('0' + encodePhase(Base.run(Name)));
    if (const JitStats *S = Base.engine().jitStats())
      Jit.merge(*S);
  };

  /// Runs \p Name on the reference JVM, collecting coverage and the
  /// encoded startup phase (plus the tier pair when --tier-diff is on).
  auto coverageOf = [&](const std::string &Name,
                        const Bytes &Data) -> RefRun {
    CoverageRecorder Recorder;
    ClassPath Env = RefEnv; // COW overlay: shares the frozen corpus.
    Env.add(Name, Data);
    Vm Jvm(Config.ReferencePolicy, Env, &Recorder);
    JvmResult RunResult = Jvm.run(Name);
    RefRun Run{Recorder.takeTrace(), encodePhase(RunResult)};
    if (TierDiff)
      tierRunInto(Name, Env, Run.TierEncoded, Run.TierJit);
    return Run;
  };

  /// Runs \p Name on every profile with coverage on, building the
  /// δ-diversity batch observation. \p Envs must already contain the
  /// mutant overlay, one ClassPath per profile; reads only frozen /
  /// call-local state, so workers may run it concurrently.
  auto ddRunOver = [&](const std::string &Name,
                       const std::vector<ClassPath> &Envs) -> DdRun {
    DdRun Run;
    Run.Obs.reserve(DdPolicies.size());
    Run.Encoded.reserve(DdPolicies.size());
    for (size_t I = 0; I != DdPolicies.size(); ++I) {
      CoverageRecorder Recorder;
      Vm Jvm(DdPolicies[I], Envs[I], &Recorder);
      JvmResult RunResult = Jvm.run(Name);
      int Code = encodePhase(RunResult);
      Tracefile Trace = Recorder.takeTrace();
      Run.Obs.push_back(ProfileObservation::of(Code, Trace));
      Run.Encoded += static_cast<char>('0' + Code);
      if (RunResult.Error == JvmErrorKind::InternalError)
        Run.InternalErrors.push_back(
            {I, static_cast<uint64_t>(RunResult.Phase)});
      if (I == DdRefIndex) {
        Run.RefTrace = std::move(Trace);
        Run.RefPhase = Code;
      }
    }
    if (TierDiff)
      tierRunInto(Name, Envs[DdRefIndex], Run.TierEncoded, Run.TierJit);
    return Run;
  };

  /// Driver-side convenience: overlay \p Data onto every profile
  /// environment (O(1) COW copies) and run the batch.
  auto ddRunOf = [&](const std::string &Name, const Bytes &Data) -> DdRun {
    std::vector<ClassPath> Envs = DdEnvs;
    for (ClassPath &E : Envs)
      E.add(Name, Data);
    return ddRunOver(Name, Envs);
  };

  // The frontier.mutator_phase grid's column count (Frontier.cpp) must
  // track the phase encoding.
  static_assert(NumPhaseCodes == 5,
                "frontier.mutator_phase columns assume 5 phase codes");

  Acceptor Accept(Config.Algo);

  // The seed scheduler: picks the pool entry each iteration mutates.
  // It owns its hit-count table (independent of --frontier) and is fed
  // only at deterministic driver-side points -- seed registration
  // below, then the in-order commit stage -- with rebuilds restricted
  // to commits that discard in-flight speculation, so every pick and
  // every campaign.sched_* value is identical across Jobs values.
  // Randfuzz collects no coverage to learn from and degrades to the
  // uniform policy (the CLI rejects rare/cluster there up front).
  SeedScheduler::Options SchedOpts;
  SchedOpts.Policy = Coverage ? Config.SeedSched : SeedSchedPolicy::Uniform;
  SchedOpts.RareThreshold = Config.RareBranchThreshold;
  SeedScheduler Sched(SchedOpts);

  /// Commit-stage draw accounting: one per committed iteration, charged
  /// against the scheduler state the entry was drawn under (no rebuild
  /// can intervene between a committed pick and its commit).
  auto countSchedDraw = [&](size_t PoolIndex) {
    ++Result.SchedDraws;
    const bool RareDraw = Sched.rareScore(PoolIndex) > 0;
    if (RareDraw)
      ++Result.SchedRareDraws;
    if (Telem) {
      TM.SchedDraws.inc();
      if (RareDraw)
        TM.SchedRareDraws.inc();
    }
  };

  // Coverage-frontier tracker (--frontier): folds every reference run
  // in driver order -- seed registrations below, then each produced
  // mutant at the in-order commit stage -- so its census is identical
  // across Jobs values.
  std::shared_ptr<FrontierTracker> Frontier;
  if (Config.TrackFrontier && Coverage) {
    FrontierTracker::Options FOpts;
    FOpts.RareThreshold = Config.RareBranchThreshold;
    FOpts.MutatorIds.reserve(NumMu);
    for (const Mutator &Mu : Registry)
      FOpts.MutatorIds.push_back(Mu.Id);
    Frontier = std::make_shared<FrontierTracker>(std::move(FOpts));
    Result.Frontier = Frontier;
  }
  /// Folds one seed-registration run into the frontier (iteration 0, no
  /// mutator -- per-seed coverage attribution).
  auto frontierSeed = [&](size_t SeedIndex, const std::string &SeedName,
                          const Tracefile &Trace, int Phase) {
    if (!Frontier)
      return;
    FrontierTracker::CommitInfo Info;
    Info.Iteration = 0;
    Info.SeedIndex = SeedIndex;
    Info.SeedName = SeedName;
    Info.Phase = Phase;
    Frontier->recordCommit(Trace, Info);
  };

  // Saturation detection (--plateau-window / --stop-on-plateau). Pure
  // function of the per-commit discovery signals, so the plateau
  // iteration -- and the stop -- is identical across Jobs values.
  std::optional<telemetry::SaturationDetector> Saturation;
  if (Config.PlateauWindow > 0)
    Saturation.emplace(telemetry::SaturationDetector::Options{
        Config.PlateauWindow, Config.PlateauMinDiscoveries});
  bool PlateauStop = false;

  /// The observability hook of the commit stage: runs as the LAST
  /// action of every committed iteration, in both loops, after all of
  /// the iteration's counters and result state have been written -- so
  /// everything it samples or folds reflects exactly the first
  /// \p CommittedSoFar committed iterations for every Jobs value.
  /// \p G is null for non-produced iterations.
  auto observeCommitted = [&](size_t CommittedSoFar, const GeneratedClass *G,
                              bool Representative, bool Discrepancy) {
    uint64_t NewBranches = 0;
    if (Frontier && G) {
      FrontierTracker::CommitInfo Info;
      Info.Iteration = CommittedSoFar - 1;
      Info.SeedIndex = G->Prov.RootSeedIndex;
      Info.SeedName = G->Prov.RootSeedName;
      if (!G->Prov.Steps.empty()) {
        Info.MutatorIndex = G->Prov.Steps.back().MutatorIndex;
        Info.MutatorId = extendedMutatorRegistry()[Info.MutatorIndex].Id;
      }
      Info.Phase = G->RefPhase;
      NewBranches = Frontier->recordCommit(G->Trace, Info).NewBranches;
    }
    if (Saturation && !Saturation->plateaued()) {
      telemetry::SaturationDetector::Signals S;
      S.NewBranches = NewBranches;
      S.NewTuples = Representative ? 1 : 0;
      S.Discrepancies = Discrepancy ? 1 : 0;
      if (Saturation->onCommit(S)) {
        Result.Plateaued = true;
        Result.PlateauAt = Saturation->plateauIteration();
        if (Telem)
          telemetry::metrics()
              .gauge("campaign.plateau_at")
              .set(static_cast<int64_t>(Result.PlateauAt));
        if (telemetry::eventSink())
          telemetry::EventBuilder("campaign.plateau")
              .field("iter", Result.PlateauAt)
              .field("window", static_cast<uint64_t>(Config.PlateauWindow))
              .field("stopping", Config.StopOnPlateau)
              .emit();
        if (Config.StopOnPlateau)
          PlateauStop = true;
      }
    }
    if (Config.TimeSeries)
      Config.TimeSeries->onCommit(CommittedSoFar);
  };

  // Mutation-outcome accounting shared by both loops. In the parallel
  // pipeline this runs at the in-order commit stage only, so the
  // numbers are identical across Jobs values.
  auto recordMutation = [&](size_t MutatorIndex, MutationResult MR,
                            bool Produced) {
    switch (MR) {
    case MutationResult::Inapplicable:
      ++Result.MutatorInapplicable[MutatorIndex];
      if (Telem)
        TM.Inapplicable.inc();
      break;
    case MutationResult::NoChange:
      ++Result.MutatorNoChange[MutatorIndex];
      if (Telem)
        TM.NoChange.inc();
      break;
    case MutationResult::Applied:
      break;
    }
    if (Telem && MR != MutationResult::Inapplicable && !Produced)
      TM.AssemblyFailed.inc();
  };

  // One JSONL event per committed iteration. Commit order is the
  // sequential order for every Jobs value, so the event stream is too.
  auto emitIteration = [&](size_t IterIndex, size_t MutatorIndex,
                           MutationResult MR, bool Produced,
                           bool Representative) {
    if (!telemetry::eventSink())
      return;
    telemetry::EventBuilder("campaign.iteration")
        .field("iter", static_cast<uint64_t>(IterIndex))
        .field("mutator", extendedMutatorRegistry()[MutatorIndex].Id)
        .field("result", mutationResultName(MR))
        .field("produced", Produced)
        .field("representative", Representative)
        .emit();
  };

  // Periodic one-line stderr progress (--progress). Reads campaign
  // state and the wall clock only, never the RNG. The cheap modulo
  // keeps the clock off the per-iteration path.
  auto LastProgress = StartTime;
  auto maybeProgress = [&](size_t IterDone) {
    if (Config.ProgressIntervalSeconds <= 0 || IterDone % 32 != 0 ||
        IterDone == 0)
      return;
    auto Now = std::chrono::steady_clock::now();
    if (std::chrono::duration<double>(Now - LastProgress).count() <
        Config.ProgressIntervalSeconds)
      return;
    LastProgress = Now;
    std::fprintf(
        stderr,
        "[classfuzz] %s iter=%zu gen=%zu test=%zu succ=%.2f%% "
        "elapsed=%.1fs\n",
        fuzzAlgorithmName(Config.Algo), IterDone, Result.GenClasses.size(),
        Result.TestClassIndices.size(),
        100.0 * static_cast<double>(Result.TestClassIndices.size()) /
            static_cast<double>(IterDone),
        std::chrono::duration<double>(Now - StartTime).count());
  };

  // TestClasses <- Seeds (Algorithm 1 line 1). Seeds root the lineage
  // chains: a seed's provenance is itself (no steps).
  std::vector<PoolEntry> Pool;
  for (size_t SeedIndex = 0; SeedIndex != Result.Seeds.size(); ++SeedIndex) {
    const SeedClass &Seed = Result.Seeds[SeedIndex];
    Provenance Prov;
    Prov.RootSeedIndex = SeedIndex;
    Prov.RootSeedName = Seed.Name;
    Pool.push_back({Seed.Name, Seed.Data, std::move(Prov)});
    if (DdMode) {
      DdRun Run = ddRunOf(Seed.Name, Seed.Data);
      frontierSeed(SeedIndex, Seed.Name, Run.RefTrace, Run.RefPhase);
      Accept.registerSeedDd(Run.Obs);
      Sched.addEntry(Run.RefTrace);
      Sched.noteTrace(Run.RefTrace);
    } else if (Coverage) {
      RefRun Run = coverageOf(Seed.Name, Seed.Data);
      frontierSeed(SeedIndex, Seed.Name, Run.Trace, Run.Phase);
      Accept.registerSeed(Run.Trace);
      Sched.addEntry(Run.Trace);
      Sched.noteTrace(Run.Trace);
    } else {
      Sched.addEntryNoCoverage();
    }
  }
  // Scores and slot table over the registered seed corpus; epoch 1.
  Sched.rebuild();

  // Stopping rule: wall-clock budget when configured (Algorithm 1's
  // "until the time budget is used up"), else the iteration budget.
  auto budgetLeft = [&](size_t Iter) {
    if (Config.TimeBudgetSeconds > 0) {
      double Elapsed = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - StartTime)
                           .count();
      return Elapsed < Config.TimeBudgetSeconds;
    }
    return Iter < Config.Iterations;
  };

  // Flight-recorder handle. Records happen at deterministic driver-side
  // sites only (commit order), so dumps are identical across --jobs.
  telemetry::FlightRecorder &FR = telemetry::flightRecorder();

  // The static analyzer, bound to its own COW view of the reference
  // environment. It runs at the in-order commit stage only -- never on
  // worker threads -- so its memo state, the analysis records, and all
  // analysis.* telemetry follow the committed trajectory and are
  // identical across Jobs values.
  std::optional<StaticAnalyzer> Analyzer;
  if (Config.RunAnalysis || PrefilterOn)
    Analyzer.emplace(RefEnv, Config.ReferencePolicy);
  // Per-mutator x per-pass finding counts for the analysis.mutator_diag
  // telemetry grid (filled into the registry at end of run).
  std::vector<std::array<size_t, NumPassIds>> MutatorDiag(
      Config.RunAnalysis ? NumMu : 0);

  /// Runs the analyzer over one committed mutant, checks the
  /// predict-vs-observe contract, and latches any violation as a
  /// self-check report. Nothing here is allowed to touch the RNG, the
  /// selector, or the acceptance state.
  auto analyzeCommitted = [&](const GeneratedClass &Stored,
                              size_t GenIndex) {
    AnalysisReport Rep = Analyzer->analyzeClass(Stored.Name, Stored.Data);
    MutantAnalysisRecord Rec;
    Rec.GenIndex = GenIndex;
    Rec.Outcome = Rep.Prediction.Outcome;
    Rec.ObservedPhase = Stored.RefPhase;
    Rec.Findings = Rep.Diagnostics.size();
    Rec.Mismatch = Stored.RefPhase >= 0 &&
                   !Rep.Prediction.isCompatibleWith(Stored.RefPhase);
    std::array<size_t, NumPassIds> ByPass = countByPass(Rep.Diagnostics);
    for (size_t P = 0; P != NumPassIds; ++P)
      MutatorDiag[Stored.MutatorIndex][P] += ByPass[P];
    if (Telem) {
      auto &M = telemetry::metrics();
      M.counter("analysis.classes").inc();
      M.counter("analysis.findings").inc(Rec.Findings);
      switch (Rec.Outcome) {
      case PredictedOutcome::RejectLoading:
        M.counter("analysis.predict.loading").inc();
        break;
      case PredictedOutcome::RejectLinking:
        M.counter("analysis.predict.linking").inc();
        break;
      case PredictedOutcome::PassStatic:
        M.counter("analysis.predict.pass").inc();
        break;
      }
      M.histogram("analysis.findings_per_class").record(Rec.Findings);
      if (Rec.Mismatch)
        M.counter("analysis.mismatches").inc();
    }
    if (Rec.Mismatch)
      Result.SelfChecks.push_back({GenIndex, Stored.RefPhase, std::move(Rep)});
    Result.AnalysisRecords.push_back(Rec);
  };

  /// Driver-side pre-filter verdict for one produced mutant: true when
  /// the analyzer statically proves the mutant dies while loading or
  /// linking (both *definite* predictions -- see StaticAnalyzer.h), so
  /// the reference execution can be skipped. Also decides audit-sample
  /// membership (a pure function of the mutant bytes). Runs only on the
  /// driver thread against the committed environment; never draws from
  /// the RNG.
  auto prefilterVerdict = [&](const GeneratedClass &G, bool &Audited,
                              int &PredictedPhase) -> bool {
    Audited = false;
    PredictedPhase = -1;
    if (!PrefilterOn)
      return false;
    StartupPrediction Pred = Analyzer->predictStartupOutcome(G.Name, G.Data);
    if (Pred.Outcome == PredictedOutcome::PassStatic)
      return false;
    PredictedPhase = Pred.predictedPhase();
    Audited = inAuditSample(G.Data);
    return true;
  };

  /// Commit-stage accounting for one pre-filter skip; must run after
  /// commitProduced so the latched self-check indexes the stored
  /// mutant. \p ObservedPhase is the audited run's encoded phase (-1
  /// when the skip was not in the audit sample); a prediction the
  /// observation contradicts is an analyzer bug and latches the full
  /// report, exactly like the --analyze predict-vs-observe oracle.
  auto commitPrefilterSkip = [&](int PredictedPhase, bool Audited,
                                 int ObservedPhase) {
    ++Result.PrefilterSkipped;
    if (Telem)
      TM.PrefilterSkipped.inc();
    if (!Audited)
      return;
    ++Result.PrefilterAudited;
    if (Telem)
      TM.PrefilterAudited.inc();
    if (ObservedPhase == PredictedPhase)
      return;
    ++Result.PrefilterMispredicts;
    if (Telem)
      TM.PrefilterMispredict.inc();
    const size_t GenIndex = Result.GenClasses.size() - 1;
    const GeneratedClass &Stored = Result.GenClasses[GenIndex];
    Result.SelfChecks.push_back(
        {GenIndex, ObservedPhase,
         Analyzer->analyzeClass(Stored.Name, Stored.Data)});
  };

  /// Commit-stage accounting for a produced mutant the pre-filter let
  /// through to execution.
  auto commitPrefilterPass = [&] {
    if (!PrefilterOn)
      return;
    ++Result.PrefilterPassed;
    if (Telem)
      TM.PrefilterPassed.inc();
  };

  /// Commit-stage bookkeeping for one δ batch: the outcome census on
  /// the result, the campaign.dd_* counters, and the differential
  /// flight events (VmInternalError per aborting profile, then the
  /// DiffOutcome). Runs in commit order only, so every output is
  /// identical across Jobs values.
  auto recordDdBatch = [&](const GeneratedClass &G, const DdRun &Run,
                           DeltaDiversityChecker::Novelty Novelty) {
    ++Result.DdOutcomeCounts[Run.Encoded];
    const bool Discrepancy = Run.isDiscrepancy();
    if (Discrepancy)
      ++Result.DdDiscrepancies;
    if (Telem) {
      TM.DdBatches.inc();
      if (Discrepancy)
        TM.DdDiscrepancies.inc();
      if (Novelty.Tuple)
        TM.DdNovelTuple.inc();
      if (Novelty.Outcome)
        TM.DdNovelOutcome.inc();
      if (Novelty.Coverage)
        TM.DdNovelCoverage.inc();
    }
    if (FR.enabled()) {
      Hasher H;
      H.addString(G.Name);
      const uint64_t NameHash = H.value();
      for (const auto &[Profile, Phase] : Run.InternalErrors)
        FR.record(telemetry::FlightKind::VmInternalError, Profile, Phase,
                  NameHash);
      uint64_t Packed = 0;
      for (char C : Run.Encoded)
        Packed = Packed * 10 + static_cast<uint64_t>(C - '0');
      FR.record(telemetry::FlightKind::DiffOutcome, Packed,
                Discrepancy ? 1 : 0, NameHash);
    }
    if (telemetry::eventSink())
      telemetry::EventBuilder("campaign.dd_batch")
          .field("class", G.Name)
          .field("encoded", Run.Encoded)
          .field("discrepancy", Discrepancy)
          .field("novel_tuple", Novelty.Tuple)
          .emit();
  };

  /// Commit-stage bookkeeping for one tier-diff run: the two-code
  /// census, the campaign.tier_* counters, deferred jit.* publication,
  /// and the TierDisagreement flight event. Runs in commit order only,
  /// so every output is identical across Jobs values.
  auto recordTierBatch = [&](const GeneratedClass &G,
                             const std::string &Encoded,
                             const JitStats &Jit) {
    if (Encoded.size() != 2)
      return;
    ++Result.TierOutcomeCounts[Encoded];
    const bool Disagree = Encoded[0] != Encoded[1];
    if (Disagree)
      ++Result.TierDisagreements;
    if (Telem) {
      TM.TierBatches.inc();
      if (Disagree)
        TM.TierDisagreements.inc();
      Jit.publish();
    }
    if (Disagree && FR.enabled()) {
      Hasher H;
      H.addString(G.Name);
      FR.record(telemetry::FlightKind::TierDisagreement,
                static_cast<uint64_t>(Encoded[0] - '0'),
                static_cast<uint64_t>(Encoded[1] - '0'), H.value());
    }
    if (telemetry::eventSink())
      telemetry::EventBuilder("campaign.tier_batch")
          .field("class", G.Name)
          .field("encoded", Encoded)
          .field("disagreement", Disagree)
          .emit();
  };

  /// Commits one produced, coverage-checked mutant: acceptance
  /// bookkeeping plus the Algorithm 1 line 14 feedback loop. Returns
  /// whether the mutant was representative.
  auto commitProduced = [&](GeneratedClass &&G, size_t IterIndex) {
    bool Representative = G.Representative;
    if (Representative)
      ++Result.MutatorSucceeded[G.MutatorIndex];
    Result.GenClasses.push_back(std::move(G));
    const GeneratedClass &Stored = Result.GenClasses.back();
    // Deep-phase census: the deepest startup phase each mutator has
    // reached plus its deep-survival count, folded in commit order.
    // Pre-filter skips keep RefPhase = -1 and fold nothing.
    if (Stored.RefPhase >= 0) {
      int &Deepest = Result.MutatorDeepestPhase[Stored.MutatorIndex];
      if (Deepest < 0 || phaseDepth(Stored.RefPhase) > phaseDepth(Deepest))
        Deepest = Stored.RefPhase;
      if (isDeepPhase(Stored.RefPhase))
        ++Result.MutatorDeepHits[Stored.MutatorIndex];
    }
    // Analyze against the environment as the VM saw it: before the
    // mutant itself joins the corpus. (--prefilter alone constructs the
    // analyzer too, but only --analyze asks for the full lint record.)
    if (Analyzer && Config.RunAnalysis)
      analyzeCommitted(Stored, Result.GenClasses.size() - 1);
    // Every produced run's coverage ages the scheduler's hit table
    // (no-op for randfuzz, whose traces are empty).
    Sched.noteTrace(Stored.Trace);
    if (Representative) {
      Result.TestClassIndices.push_back(Result.GenClasses.size() - 1);
      FR.record(telemetry::FlightKind::Accepted, IterIndex,
                Result.GenClasses.size() - 1, hashBytes(Stored.Data));
      // Line 14: representative mutants become seeds; they also join
      // the reference environment so later mutants can reference them.
      RefEnv.add(Stored.Name, Stored.Data);
      RefEnv.freeze(); // Keep per-mutant overlay copies O(1).
      // The δ batch environments track the corpus the same way.
      for (ClassPath &E : DdEnvs) {
        E.add(Stored.Name, Stored.Data);
        E.freeze();
      }
      if (Analyzer)
        Analyzer->addEnvironmentClass(Stored.Name, Stored.Data);
      if (Config.FeedbackAcceptedMutants) {
        Pool.push_back({Stored.Name, Stored.Data, Stored.Prov});
        // Mirror the pool 1:1 (randfuzz has no trace to register).
        if (Coverage)
          Sched.addEntry(Stored.Trace);
        else
          Sched.addEntryNoCoverage();
      }
      // Rebuild only at accepted commits: in the parallel pipeline an
      // acceptance discards all in-flight speculation and rewinds the
      // RNG, so no speculated pick can ever straddle a rebuild -- the
      // committed pick sequence matches the sequential loop exactly.
      Sched.rebuild();
    }
  };

  size_t Iter = 0;

  if (Jobs <= 1) {
    // ---- Sequential reference loop (Algorithm 1, unchanged) ----------
    for (; budgetLeft(Iter) && !PlateauStop; ++Iter) {
      // Line 5: pick a classfile from TestClasses -- through the seed
      // scheduler's policy (uniform is bit-compatible with the old
      // R.choiceIndex draw). Index, not reference: the pool may grow
      // below. The sequential loop IS the commit stage, so the draw is
      // charged here, before any rebuild this iteration may trigger.
      size_t PoolIndex = Sched.pick(R);
      countSchedDraw(PoolIndex);

      // Lines 6-10: mutator selection.
      size_t MutatorIndex =
          Mcmc ? Selector.selectNext(R) : R.choiceIndex(NumMu);
      ++Result.MutatorSelected[MutatorIndex];

      // Line 11: mutate. The RNG snapshot taken here (before any
      // mutation draw) is the step's provenance record: restoring it
      // and re-applying the mutator re-derives the mutant bytes. The
      // typed-hole list (null unless --typed-mutators) is extracted
      // RNG-free, so it cannot perturb the snapshot.
      Ctx.Holes = holesFor(Pool[PoolIndex].Name, Pool[PoolIndex].Data);
      RngState RngBefore = R.state();
      telemetry::PhaseTimer MutT(TM.MutateNs, "mutate");
      MutationOutcome Mutant =
          mutateClass(Pool[PoolIndex].Data, MutatorIndex, Ctx);
      MutT.stop();
      recordMutation(MutatorIndex, Mutant.Result, Mutant.Produced);
      if (!Mutant.Produced) {
        if (Mcmc)
          Selector.recordOutcome(MutatorIndex, false);
        emitIteration(Iter, MutatorIndex, Mutant.Result, false, false);
        FR.record(telemetry::FlightKind::Iteration, Iter, MutatorIndex,
                  packIterationOutcome(Mutant.Result, false, false));
        observeCommitted(Iter + 1, nullptr, false, false);
        maybeProgress(Iter + 1);
        continue;
      }

      GeneratedClass G;
      G.Name = Mutant.ClassName;
      G.Data = std::move(Mutant.Data);
      G.MutatorIndex = MutatorIndex;
      G.Prov = Pool[PoolIndex].Prov;
      G.Prov.Steps.push_back(
          {MutatorIndex, RngBefore, R.drawCount() - RngBefore.Draws});

      // Analyzer pre-filter (--prefilter): mutants statically proven
      // dead in loading/linking skip execution and commit as
      // produced-but-rejected (empty trace, RefPhase -1). Audited skips
      // still execute -- to check the prediction -- but commit exactly
      // like unaudited ones, so the committed trajectory is independent
      // of the audit fraction.
      bool PfAudited = false;
      int PfPredicted = -1;
      if (prefilterVerdict(G, PfAudited, PfPredicted)) {
        int Observed = -1;
        if (PfAudited) {
          telemetry::PhaseTimer ExecT(TM.ExecuteNs, "execute");
          Observed = DdMode ? ddRunOf(G.Name, G.Data).RefPhase
                            : coverageOf(G.Name, G.Data).Phase;
        }
        if (Mcmc)
          Selector.recordOutcome(MutatorIndex, false);
        if (Telem)
          TM.Rejected.inc();
        emitIteration(Iter, MutatorIndex, Mutant.Result, true, false);
        FR.record(telemetry::FlightKind::Iteration, Iter, MutatorIndex,
                  packIterationOutcome(Mutant.Result, true, false));
        {
          telemetry::PhaseTimer CommitT(TM.CommitNs, "commit");
          commitProduced(std::move(G), Iter);
        }
        commitPrefilterSkip(PfPredicted, PfAudited, Observed);
        observeCommitted(Iter + 1, &Result.GenClasses.back(), false, false);
        maybeProgress(Iter + 1);
        continue;
      }
      commitPrefilterPass();

      // Lines 12-16: record, run on the reference JVM (δ modes: on all
      // profiles), accept on uniqueness (δ modes: on tuple novelty).
      bool Representative;
      bool DdDiscrepancy = false;
      if (DdMode) {
        telemetry::PhaseTimer ExecT(TM.ExecuteNs, "execute");
        DdRun Run = ddRunOf(G.Name, G.Data);
        ExecT.stop();
        G.Trace = std::move(Run.RefTrace);
        G.RefPhase = Run.RefPhase;
        G.DdEncoded = Run.Encoded;
        G.TierEncoded = Run.TierEncoded;
        DeltaDiversityChecker::Novelty Novelty = Accept.acceptDd(Run.Obs);
        Representative = Novelty.Tuple;
        DdDiscrepancy = Run.isDiscrepancy();
        recordDdBatch(G, Run, Novelty);
        recordTierBatch(G, Run.TierEncoded, Run.TierJit);
      } else if (Coverage) {
        telemetry::PhaseTimer ExecT(TM.ExecuteNs, "execute");
        RefRun Run = coverageOf(G.Name, G.Data);
        ExecT.stop();
        G.Trace = std::move(Run.Trace);
        G.RefPhase = Run.Phase;
        G.TierEncoded = Run.TierEncoded;
        Representative = Accept.accept(G.Trace);
        recordTierBatch(G, Run.TierEncoded, Run.TierJit);
      } else {
        Representative = true;
      }
      G.Representative = Representative;

      if (Mcmc)
        Selector.recordOutcome(MutatorIndex, Representative);
      // Deep-phase reward (--deep-reward): mutants surviving loading
      // and linking add to the mutator's blended MCMC success rate.
      if (DeepRewardOn && isDeepPhase(G.RefPhase))
        Selector.recordDeepReach(MutatorIndex);
      if (Telem)
        (Representative ? TM.Accepted : TM.Rejected).inc();
      emitIteration(Iter, MutatorIndex, Mutant.Result, true, Representative);
      FR.record(telemetry::FlightKind::Iteration, Iter, MutatorIndex,
                packIterationOutcome(Mutant.Result, true, Representative));
      {
        telemetry::PhaseTimer CommitT(TM.CommitNs, "commit");
        commitProduced(std::move(G), Iter);
      }
      const GeneratedClass &Stored = Result.GenClasses.back();
      const bool TierDisagree = Stored.TierEncoded.size() == 2 &&
                                Stored.TierEncoded[0] != Stored.TierEncoded[1];
      observeCommitted(Iter + 1, &Stored, Representative,
                       DdDiscrepancy || TierDisagree);
      maybeProgress(Iter + 1);
    }
  } else {
    // ---- Parallel pipeline: speculative lookahead, in-order commit ---
    //
    // The sequential algorithm's per-iteration RNG draws and MCMC state
    // depend on every earlier acceptance decision, so the pipeline
    // speculates: the driver runs the cheap chain (pool pick, mutator
    // selection, mutation) ahead of time under the presumption that
    // every in-flight mutant will be rejected (recording the rejection
    // in the selector, as the sequential loop would), and ships only
    // the expensive reference-JVM coverage execution to the workers.
    // The commit stage then processes iterations strictly in order:
    // a rejection confirms the speculation; an acceptance rewinds the
    // driver RNG and selector to this iteration's snapshot, applies the
    // true outcome, and discards all later in-flight work. The committed
    // trajectory is therefore bit-identical to the sequential loop for
    // any worker count.
    ThreadPool Workers(Jobs);
    std::deque<PendingIteration> InFlight;
    const size_t Window = Jobs * 2;

    auto speculate = [&]() {
      PendingIteration P;
      size_t PoolIndex = Sched.pick(R);
      P.PoolIndex = PoolIndex;
      P.MutatorIndex = Mcmc ? Selector.selectNext(R) : R.choiceIndex(NumMu);
      Ctx.Holes = holesFor(Pool[PoolIndex].Name, Pool[PoolIndex].Data);
      RngState RngBefore = R.state();
      telemetry::PhaseTimer MutT(TM.MutateNs, "mutate");
      MutationOutcome Mutant =
          mutateClass(Pool[PoolIndex].Data, P.MutatorIndex, Ctx);
      MutT.stop();
      P.MutResult = Mutant.Result;
      P.Produced = Mutant.Produced;
      if (P.Produced) {
        P.G.Name = Mutant.ClassName;
        P.G.Data = std::move(Mutant.Data);
        P.G.MutatorIndex = P.MutatorIndex;
        P.G.Prov = Pool[PoolIndex].Prov;
        P.G.Prov.Steps.push_back(
            {P.MutatorIndex, RngBefore, R.drawCount() - RngBefore.Draws});
        // Pre-filter verdict at speculation time, on the driver. The
        // analyzer's environment is the committed one -- an acceptance
        // discards all in-flight speculation -- so the verdict for
        // every *committed* iteration matches the sequential loop's.
        P.PrefilterSkip =
            prefilterVerdict(P.G, P.PrefilterAudited, P.PredictedPhase);
        P.Cancelled = std::make_shared<std::atomic<bool>>(false);
        // The worker's environment: a COW overlay of the corpus as of
        // this iteration (no accept can intervene before commit -- an
        // accept discards all later in-flight iterations).
        if (P.PrefilterSkip && !P.PrefilterAudited) {
          // Statically proven dead and not in the audit sample: ship
          // nothing; the commit stage charges the skip.
        } else if (DdMode) {
          // δ modes ship the whole five-profile batch to the worker;
          // the overlays are made here, on the driver, against this
          // iteration's view of the corpus.
          auto Envs = std::make_shared<std::vector<ClassPath>>(DdEnvs);
          for (ClassPath &E : *Envs)
            E.add(P.G.Name, P.G.Data);
          P.Dd = Workers.submit(
              [Envs, Name = P.G.Name, &ddRunOver,
               Cancelled = P.Cancelled,
               &ExecNs = TM.ExecuteNs]() -> DdRun {
                if (Cancelled->load(std::memory_order_relaxed))
                  return DdRun();
                telemetry::PhaseTimer ExecT(ExecNs, "execute");
                return ddRunOver(Name, *Envs);
              });
        } else {
          auto Env = std::make_shared<ClassPath>(RefEnv);
          Env->add(P.G.Name, P.G.Data);
          P.Trace = Workers.submit(
              [Env, Name = P.G.Name, &Policy = Config.ReferencePolicy,
               Cancelled = P.Cancelled, TierDiff, &tierRunInto,
               &ExecNs = TM.ExecuteNs]() -> RefRun {
                if (Cancelled->load(std::memory_order_relaxed))
                  return RefRun();
                // Worker-side timing is safe: Histogram is lock-free
                // atomics, and the timer never touches campaign state.
                // The span lands on this worker's Perfetto lane.
                telemetry::PhaseTimer ExecT(ExecNs, "execute");
                CoverageRecorder Recorder;
                Vm Jvm(Policy, *Env, &Recorder);
                JvmResult RunResult = Jvm.run(Name);
                RefRun Run{Recorder.takeTrace(), encodePhase(RunResult)};
                if (TierDiff)
                  tierRunInto(Name, *Env, Run.TierEncoded, Run.TierJit);
                return Run;
              });
        }
      }
      P.RngAfter = R;
      if (Mcmc) {
        P.SelectorBefore = Selector;
        // Presume rejection (the common case); exact for !Produced.
        Selector.recordOutcome(P.MutatorIndex, false);
      }
      InFlight.push_back(std::move(P));
    };

    for (;;) {
      while (InFlight.size() < Window && budgetLeft(Iter + InFlight.size()))
        speculate();
      if (InFlight.empty())
        break;

      // Stop at the plateau-latching commit, exactly like the
      // sequential loop: everything still in flight is uncommitted
      // speculative work and is discarded.
      auto discardInFlight = [&] {
        for (PendingIteration &Stale : InFlight)
          if (Stale.Cancelled)
            Stale.Cancelled->store(true, std::memory_order_relaxed);
        InFlight.clear();
      };

      PendingIteration P = std::move(InFlight.front());
      InFlight.pop_front();
      ++Result.MutatorSelected[P.MutatorIndex];
      recordMutation(P.MutatorIndex, P.MutResult, P.Produced);
      ++Iter;
      // Charge the pool draw at commit. The scheduler state is the one
      // the pick was speculated under: rebuilds happen only at accepted
      // commits, which discard everything still in flight.
      countSchedDraw(P.PoolIndex);
      if (!P.Produced) {
        // The rejection recorded at speculation time is exact.
        emitIteration(Iter - 1, P.MutatorIndex, P.MutResult, false, false);
        FR.record(telemetry::FlightKind::Iteration, Iter - 1, P.MutatorIndex,
                  packIterationOutcome(P.MutResult, false, false));
        observeCommitted(Iter, nullptr, false, false);
        maybeProgress(Iter);
        if (PlateauStop) {
          discardInFlight();
          break;
        }
        continue;
      }

      if (P.PrefilterSkip) {
        // The presumed rejection recorded at speculation time is exact
        // for a skip. Audited skips fetch the observed phase from their
        // worker; the committed mutant keeps an empty trace and
        // RefPhase -1 either way, so the trajectory matches the
        // sequential loop and is independent of the audit fraction.
        int Observed = -1;
        if (P.PrefilterAudited)
          Observed = DdMode ? P.Dd.get().RefPhase : P.Trace.get().Phase;
        if (Telem)
          TM.Rejected.inc();
        emitIteration(Iter - 1, P.MutatorIndex, P.MutResult, true, false);
        FR.record(telemetry::FlightKind::Iteration, Iter - 1, P.MutatorIndex,
                  packIterationOutcome(P.MutResult, true, false));
        {
          telemetry::PhaseTimer CommitT(TM.CommitNs, "commit");
          commitProduced(std::move(P.G), Iter - 1);
        }
        commitPrefilterSkip(P.PredictedPhase, P.PrefilterAudited, Observed);
        observeCommitted(Iter, &Result.GenClasses.back(), false, false);
        maybeProgress(Iter);
        if (PlateauStop) {
          discardInFlight();
          break;
        }
        continue;
      }
      commitPrefilterPass();

      DdRun DdResult;
      JitStats TierJit;
      if (DdMode) {
        DdResult = P.Dd.get();
        P.G.Trace = std::move(DdResult.RefTrace);
        P.G.RefPhase = DdResult.RefPhase;
        P.G.DdEncoded = DdResult.Encoded;
        P.G.TierEncoded = DdResult.TierEncoded;
        TierJit = DdResult.TierJit;
      } else {
        RefRun Run = P.Trace.get();
        P.G.Trace = std::move(Run.Trace);
        P.G.RefPhase = Run.Phase;
        P.G.TierEncoded = Run.TierEncoded;
        TierJit = Run.TierJit;
      }
      telemetry::PhaseTimer CommitT(TM.CommitNs, "commit");
      bool Representative;
      if (DdMode) {
        DeltaDiversityChecker::Novelty Novelty =
            Accept.acceptDd(DdResult.Obs);
        Representative = Novelty.Tuple;
        recordDdBatch(P.G, DdResult, Novelty);
      } else {
        Representative = Accept.accept(P.G.Trace);
      }
      recordTierBatch(P.G, P.G.TierEncoded, TierJit);
      P.G.Representative = Representative;
      // A deep-phase reach (--deep-reward) re-ranks the selector just
      // like an acceptance, so it too invalidates the presumed-
      // rejection speculation.
      const bool DeepReach = DeepRewardOn && isDeepPhase(P.G.RefPhase);
      if ((Representative || DeepReach) && Mcmc) {
        // Mispredicted: rewind the selector past the presumed rejection
        // and apply the true outcome, in the sequential loop's order.
        Selector = std::move(*P.SelectorBefore);
        Selector.recordOutcome(P.MutatorIndex, Representative);
        if (DeepReach)
          Selector.recordDeepReach(P.MutatorIndex);
      }
      FR.record(telemetry::FlightKind::Iteration, Iter - 1, P.MutatorIndex,
                packIterationOutcome(P.MutResult, true, Representative));
      commitProduced(std::move(P.G), Iter - 1);
      CommitT.stop();
      if (Telem)
        (Representative ? TM.Accepted : TM.Rejected).inc();
      emitIteration(Iter - 1, P.MutatorIndex, P.MutResult, true,
                    Representative);
      if (Representative || DeepReach) {
        // All later speculation saw a stale pool/ranking/environment
        // (a deep reach alone stales the ranking): cancel it and rewind
        // the RNG to just after this iteration.
        // Deliberately no flight event here: speculation depth is a
        // --jobs artifact, and the flight stream feeds incident bundles
        // that must stay byte-identical across --jobs values (the
        // SpecRollbacks counter tracks rollbacks instead).
        if (Telem) {
          TM.SpecRollbacks.inc();
          TM.SpecCancelled.inc(InFlight.size());
        }
        for (PendingIteration &Stale : InFlight)
          if (Stale.Cancelled)
            Stale.Cancelled->store(true, std::memory_order_relaxed);
        InFlight.clear();
        R = P.RngAfter;
      } else if (Telem) {
        // Presumed-rejection speculation confirmed: the pipeline kept
        // this iteration's work.
        TM.SpecHits.inc();
      }
      {
        const GeneratedClass &Stored = Result.GenClasses.back();
        const bool TierDisagree =
            Stored.TierEncoded.size() == 2 &&
            Stored.TierEncoded[0] != Stored.TierEncoded[1];
        const bool DdDiscrepancy = DdMode && DdResult.isDiscrepancy();
        observeCommitted(Iter, &Stored, Representative,
                         DdDiscrepancy || TierDisagree);
      }
      maybeProgress(Iter);
      if (PlateauStop) {
        discardInFlight();
        break;
      }
    }
  }

  Result.Iterations = Iter;
  Result.SchedEpochs = Sched.epochs();

  if (Telem) {
    // Per-mutator selection/success/inapplicable/no-change table for
    // the --stats-json snapshot, filled from the (always-maintained)
    // result vectors. The grid accumulates across campaigns in one
    // process.
    static const char *Cols[] = {"selected", "succeeded", "inapplicable",
                                 "nochange", "deep_hits"};
    // Grid dimensions are fixed at first registration, and one process
    // may run campaigns with and without --typed-mutators, so the grid
    // is always sized to the extended registry (a strict superset whose
    // first rows label the base registry identically).
    telemetry::CounterGrid &Grid = telemetry::metrics().grid(
        "campaign.mutator", extendedMutatorRegistry().size(), 5,
        [](size_t Row) { return extendedMutatorRegistry()[Row].Id; },
        [](size_t Col) { return std::string(Cols[Col]); });
    for (size_t I = 0; I != NumMu; ++I) {
      Grid.inc(I, 0, Result.MutatorSelected[I]);
      Grid.inc(I, 1, Result.MutatorSucceeded[I]);
      Grid.inc(I, 2, Result.MutatorInapplicable[I]);
      Grid.inc(I, 3, Result.MutatorNoChange[I]);
      Grid.inc(I, 4, Result.MutatorDeepHits[I]);
    }
    telemetry::metrics().counter("campaign.iterations").inc(Iter);
    if (DdMode) {
      // End-of-run census of the δ pool. Gauges, not counters: they
      // report the checker's absolute state, which already accumulates
      // across campaigns in one process.
      const DeltaDiversityChecker &Delta = Accept.delta();
      auto &M = telemetry::metrics();
      M.gauge("campaign.dd_distinct_tuples")
          .set(static_cast<int64_t>(Delta.distinctTuples()));
      M.gauge("campaign.dd_distinct_outcomes")
          .set(static_cast<int64_t>(Delta.distinctOutcomes()));
      for (size_t I = 0; I != DdPolicies.size(); ++I)
        M.gauge("campaign.dd_profile_signatures." + DdPolicies[I].Name)
            .set(static_cast<int64_t>(Delta.profileSignatures(I)));
    }
    if (Config.RunAnalysis) {
      // Per-mutator x per-diagnostic-pass finding counts: which
      // mutators produce which classes of statically detectable damage.
      telemetry::CounterGrid &DiagGrid = telemetry::metrics().grid(
          "analysis.mutator_diag", extendedMutatorRegistry().size(),
          NumPassIds,
          [](size_t Row) { return extendedMutatorRegistry()[Row].Id; },
          [](size_t Col) {
            return std::string(passIdName(static_cast<PassId>(Col)));
          });
      for (size_t I = 0; I != NumMu; ++I)
        for (size_t P = 0; P != NumPassIds; ++P)
          DiagGrid.inc(I, P, MutatorDiag[I][P]);
    }
  }
  // Final time-series row after the end-of-run metric fills above, so
  // it carries campaign.iterations and the dd census gauges. Everything
  // those fills read is Jobs-invariant result state.
  if (Config.TimeSeries)
    Config.TimeSeries->finish(Iter);
  if (telemetry::eventSink())
    telemetry::EventBuilder("campaign.end")
        .field("algorithm", fuzzAlgorithmName(Config.Algo))
        .field("iterations", static_cast<uint64_t>(Iter))
        .field("generated", static_cast<uint64_t>(Result.GenClasses.size()))
        .field("accepted",
               static_cast<uint64_t>(Result.TestClassIndices.size()))
        .emit();

  Result.ElapsedSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    StartTime)
          .count();
  return Result;
}
