//===- fuzzing/Campaign.cpp ------------------------------------------------===//

#include "fuzzing/Campaign.h"

#include "jvm/Vm.h"
#include "mutation/Engine.h"
#include "runtime/RuntimeLib.h"

#include <chrono>
#include <set>

using namespace classfuzz;

const char *classfuzz::fuzzAlgorithmName(FuzzAlgorithm Algo) {
  switch (Algo) {
  case FuzzAlgorithm::ClassfuzzStBr:
    return "classfuzz[stbr]";
  case FuzzAlgorithm::ClassfuzzSt:
    return "classfuzz[st]";
  case FuzzAlgorithm::ClassfuzzTr:
    return "classfuzz[tr]";
  case FuzzAlgorithm::Uniquefuzz:
    return "uniquefuzz";
  case FuzzAlgorithm::Greedyfuzz:
    return "greedyfuzz";
  case FuzzAlgorithm::Randfuzz:
    return "randfuzz";
  }
  return "?";
}

CampaignConfig::CampaignConfig() : ReferencePolicy(referenceJvmPolicy()) {}

double CampaignResult::successRatePercent() const {
  if (Iterations == 0)
    return 0.0;
  return 100.0 * static_cast<double>(TestClassIndices.size()) /
         static_cast<double>(Iterations);
}

size_t CampaignResult::uniqueCoverageStats() const {
  std::set<std::pair<size_t, size_t>> Stats;
  for (const GeneratedClass &G : GenClasses)
    Stats.insert({G.Trace.stmtCount(), G.Trace.branchCount()});
  return Stats.size();
}

ClassPath CampaignResult::corpusClassPath() const {
  ClassPath Out;
  for (const SeedClass &Seed : Seeds) {
    Out.add(Seed.Name, Seed.Data);
    for (const auto &[Name, Data] : Seed.Helpers)
      Out.add(Name, Data);
  }
  for (const GeneratedClass &G : GenClasses)
    Out.add(G.Name, G.Data);
  return Out;
}

namespace {

/// The acceptance discipline, dispatching on the algorithm.
class Acceptor {
public:
  explicit Acceptor(FuzzAlgorithm Algo)
      : Algo(Algo), Unique(criterionFor(Algo)) {}

  /// True when a mutant with \p Trace is representative.
  bool accept(const Tracefile &Trace) {
    switch (Algo) {
    case FuzzAlgorithm::Randfuzz:
      return true; // Every produced mutant is kept.
    case FuzzAlgorithm::Greedyfuzz:
      return Greedy.tryAdd(Trace);
    default:
      return Unique.tryInsert(Trace);
    }
  }

  /// Seeds participate in the uniqueness pool (TestClasses starts as
  /// Seeds, Algorithm 1 line 1).
  void registerSeed(const Tracefile &Trace) {
    switch (Algo) {
    case FuzzAlgorithm::Randfuzz:
      break;
    case FuzzAlgorithm::Greedyfuzz:
      Greedy.add(Trace);
      break;
    default:
      Unique.insert(Trace);
      break;
    }
  }

private:
  static UniquenessCriterion criterionFor(FuzzAlgorithm Algo) {
    switch (Algo) {
    case FuzzAlgorithm::ClassfuzzSt:
      return UniquenessCriterion::St;
    case FuzzAlgorithm::ClassfuzzTr:
      return UniquenessCriterion::Tr;
    default:
      return UniquenessCriterion::StBr;
    }
  }

  FuzzAlgorithm Algo;
  UniquenessChecker Unique;
  AccumulativeCoverage Greedy;
};

bool usesMcmc(FuzzAlgorithm Algo) {
  return Algo == FuzzAlgorithm::ClassfuzzStBr ||
         Algo == FuzzAlgorithm::ClassfuzzSt ||
         Algo == FuzzAlgorithm::ClassfuzzTr;
}

bool usesCoverage(FuzzAlgorithm Algo) {
  return Algo != FuzzAlgorithm::Randfuzz;
}

} // namespace

CampaignResult classfuzz::runCampaign(const CampaignConfig &Config) {
  auto StartTime = std::chrono::steady_clock::now();

  CampaignResult Result;
  Result.Algo = Config.Algo;
  Result.Iterations = Config.Iterations;

  Rng R(Config.RngSeed);
  Result.Seeds = Config.ExternalSeeds.empty()
                     ? generateSeedCorpus(R, Config.NumSeeds)
                     : Config.ExternalSeeds;

  // The reference environment: reference JRE + the whole corpus. Mutants
  // are added as they are accepted so later runs can reference them.
  ClassPath RefEnv = runtimeLibraryFor(Config.ReferencePolicy);
  for (const SeedClass &Seed : Result.Seeds) {
    RefEnv.add(Seed.Name, Seed.Data);
    for (const auto &[Name, Data] : Seed.Helpers)
      RefEnv.add(Name, Data);
  }

  std::vector<std::string> KnownClasses = RefEnv.names();
  MutationContext Ctx{R, KnownClasses};

  const size_t NumMu = mutatorRegistry().size();
  McmcSelector Selector(NumMu, Config.GeometricP > 0
                                   ? Config.GeometricP
                                   : defaultGeometricP(NumMu));
  Result.MutatorSelected.assign(NumMu, 0);
  Result.MutatorSucceeded.assign(NumMu, 0);

  /// Runs \p Name on the reference JVM, collecting coverage.
  auto coverageOf = [&](const std::string &Name,
                        const Bytes &Data) -> Tracefile {
    CoverageRecorder Recorder;
    ClassPath Env = RefEnv; // Copy: the mutant overlays the corpus.
    Env.add(Name, Data);
    Vm Jvm(Config.ReferencePolicy, Env, &Recorder);
    Jvm.run(Name);
    return Recorder.takeTrace();
  };

  Acceptor Accept(Config.Algo);

  // TestClasses <- Seeds (Algorithm 1 line 1): the mutation pool holds
  // (name, bytes) copies; seeds also prime the uniqueness pool so
  // mutants must differ from them.
  struct PoolEntry {
    std::string Name;
    Bytes Data;
  };
  std::vector<PoolEntry> Pool;
  for (const SeedClass &Seed : Result.Seeds) {
    Pool.push_back({Seed.Name, Seed.Data});
    if (usesCoverage(Config.Algo))
      Accept.registerSeed(coverageOf(Seed.Name, Seed.Data));
  }

  // Stopping rule: wall-clock budget when configured (Algorithm 1's
  // "until the time budget is used up"), else the iteration budget.
  auto budgetLeft = [&](size_t Iter) {
    if (Config.TimeBudgetSeconds > 0) {
      double Elapsed = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - StartTime)
                           .count();
      return Elapsed < Config.TimeBudgetSeconds;
    }
    return Iter < Config.Iterations;
  };

  size_t Iter = 0;
  for (; budgetLeft(Iter); ++Iter) {
    // Line 5: pick a classfile from TestClasses. (Index, not reference:
    // the pool may grow below.)
    size_t PoolIndex = R.choiceIndex(Pool.size());

    // Lines 6-10: mutator selection.
    size_t MutatorIndex = usesMcmc(Config.Algo)
                              ? Selector.selectNext(R)
                              : R.choiceIndex(NumMu);
    ++Result.MutatorSelected[MutatorIndex];

    // Line 11: mutate.
    MutationOutcome Mutant =
        mutateClass(Pool[PoolIndex].Data, MutatorIndex, Ctx);
    if (!Mutant.Produced) {
      if (usesMcmc(Config.Algo))
        Selector.recordOutcome(MutatorIndex, false);
      continue;
    }

    GeneratedClass G;
    G.Name = Mutant.ClassName;
    G.Data = std::move(Mutant.Data);
    G.MutatorIndex = MutatorIndex;

    // Lines 12-16: record, run on the reference JVM, accept on
    // uniqueness.
    bool Representative;
    if (usesCoverage(Config.Algo)) {
      G.Trace = coverageOf(G.Name, G.Data);
      Representative = Accept.accept(G.Trace);
    } else {
      Representative = true;
    }
    G.Representative = Representative;

    if (usesMcmc(Config.Algo))
      Selector.recordOutcome(MutatorIndex, Representative);
    if (Representative)
      ++Result.MutatorSucceeded[MutatorIndex];

    Result.GenClasses.push_back(std::move(G));
    const GeneratedClass &Stored = Result.GenClasses.back();

    if (Representative) {
      Result.TestClassIndices.push_back(Result.GenClasses.size() - 1);
      // Line 14: representative mutants become seeds; they also join
      // the reference environment so later mutants can reference them.
      RefEnv.add(Stored.Name, Stored.Data);
      if (Config.FeedbackAcceptedMutants)
        Pool.push_back({Stored.Name, Stored.Data});
    }
  }
  Result.Iterations = Iter;

  Result.ElapsedSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    StartTime)
          .count();
  return Result;
}
