//===- mcmc/McmcSelector.h - Metropolis-Hastings mutator selection -------===//
//
// Part of classfuzz-cpp (PLDI 2016 classfuzz reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The MCMC mutator-selection machinery of §2.2.2: mutators are ranked
/// by success rate (descending), the target distribution over ranks is
/// geometric Pr(X=k) = (1-p)^(k-1) p, and the Metropolis choice
///
///   A(mu1 -> mu2) = min(1, (1-p)^(k2-k1))
///
/// accepts proposals toward higher-ranked (more successful) mutators
/// always and toward lower-ranked ones with geometrically decaying
/// probability. Success rates are re-computed and the ranking re-sorted
/// after every acceptance decision (Algorithm 1 lines 15-16).
///
/// The notion of "success" is the campaign's acceptance signal: under
/// the [st]/[stbr]/[tr] criteria it is reference-JVM coverage novelty;
/// under the δ-diversity criteria ([dd-coarse]/[dd-fine]) the reward
/// recorded here is cross-profile tuple novelty, steering the sampler
/// toward mutators that produce *behavioral disagreement* between
/// profiles rather than new reference coverage.
///
/// Note on Algorithm 1 line 10: the paper's pseudocode loops
/// "until random() >= (1-p)^(k2-k1)", which as printed would never
/// accept a *better* mutator (threshold > 1). We implement the
/// Metropolis choice the surrounding text defines: accept mu2 iff
/// random() < min(1, (1-p)^(k2-k1)).
///
//===----------------------------------------------------------------------===//

#ifndef CLASSFUZZ_MCMC_MCMCSELECTOR_H
#define CLASSFUZZ_MCMC_MCMCSELECTOR_H

#include "support/Rng.h"

#include <cstddef>
#include <vector>

namespace classfuzz {

/// Bounds for the geometric parameter p.
struct PBounds {
  double Lo = 0;
  double Hi = 0;
};

/// True when \p P satisfies the paper's three conditions (§2.2.2
/// "Parameter estimation"):
///   1. 0.95 <= sum_{k=1..N} Pr(X=k) <= 1
///   2. p >= 1/N
///   3. (1-p)^(N-1) p > epsilon
bool satisfiesPConditions(double P, size_t NumMutators = 129,
                          double Epsilon = 0.001);

/// Numerically estimates the valid (Lo, Hi) range of p. The paper
/// reports (0.022, 0.025) for N = 129.
PBounds estimatePBounds(size_t NumMutators = 129, double Epsilon = 0.001);

/// The p the paper uses: 3/129 (~0.023).
inline double defaultGeometricP(size_t NumMutators = 129) {
  return 3.0 / static_cast<double>(NumMutators);
}

/// Metropolis-Hastings sampler over mutator indices.
class McmcSelector {
public:
  explicit McmcSelector(size_t NumMutators,
                        double P = defaultGeometricP());

  /// Safety bound on the proposal-rejection loop of selectNext: past
  /// this many rejected proposals the current mutator is kept. For any
  /// valid p the bound is unreachable in practice (the current mutator
  /// itself accepts with probability 1), so hitting it indicates a
  /// degenerate p (NaN or ~1) that would otherwise loop forever.
  static constexpr size_t MaxProposalAttempts = 4096;

  /// Algorithm 1 lines 6-10: proposes uniformly until a proposal is
  /// accepted by the Metropolis choice (bounded by MaxProposalAttempts,
  /// falling back to the current mutator); returns the mutator index
  /// and makes it the current sample.
  size_t selectNext(Rng &R);

  /// Records the outcome of applying \p MutatorIndex (whether the
  /// mutant was accepted as representative) and moves that mutator to
  /// its new rank. Equivalent to a full stable re-sort by descending
  /// success rate, at the cost of moving one element.
  void recordOutcome(size_t MutatorIndex, bool Representative);

  /// Records that \p MutatorIndex's mutant reached a deep JVM phase
  /// (survived loading/linking: completed normally or died at
  /// initialization/runtime) and re-ranks. With a nonzero deep-reward
  /// weight this blends into the success rate, steering selection
  /// toward mutators whose output gets past the front of the pipeline
  /// rather than just churning coverage.
  void recordDeepReach(size_t MutatorIndex);

  /// Sets the deep-phase reward weight w: the ranked rate becomes
  /// (succeeded + w * deep_hits) / selected. 0 (the default) restores
  /// the paper's pure success rate.
  void setDeepReward(double Weight) { DeepRewardWeight = Weight; }
  double deepReward() const { return DeepRewardWeight; }
  size_t deepHits(size_t MutatorIndex) const {
    return DeepHits[MutatorIndex];
  }

  double successRate(size_t MutatorIndex) const;
  size_t timesSelected(size_t MutatorIndex) const {
    return Selected[MutatorIndex];
  }
  size_t timesSucceeded(size_t MutatorIndex) const {
    return Succeeded[MutatorIndex];
  }

  /// Mutator indices in descending order of success rate.
  const std::vector<size_t> &ranking() const { return Ranking; }
  /// Rank (0-based) of a mutator in the current ordering.
  size_t rankOf(size_t MutatorIndex) const { return Rank[MutatorIndex]; }

  size_t current() const { return Current; }
  double p() const { return P; }

private:
  /// Moves \p MutatorIndex to its new rank after its rate changed
  /// (equivalent to a full stable re-sort; see recordOutcome).
  void reRank(size_t MutatorIndex);

  double P;
  double DeepRewardWeight = 0;
  size_t Current = 0;
  std::vector<size_t> Selected;
  std::vector<size_t> Succeeded;
  std::vector<size_t> DeepHits;
  std::vector<size_t> Ranking; ///< rank -> mutator index.
  std::vector<size_t> Rank;    ///< mutator index -> rank.
};

} // namespace classfuzz

#endif // CLASSFUZZ_MCMC_MCMCSELECTOR_H
