//===- mcmc/McmcSelector.cpp -----------------------------------------------===//

#include "mcmc/McmcSelector.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace classfuzz;

bool classfuzz::satisfiesPConditions(double P, size_t NumMutators,
                                     double Epsilon) {
  if (P <= 0.0 || P >= 1.0)
    return false;
  double N = static_cast<double>(NumMutators);
  // Condition 1: cumulative probability over the first N ranks in
  // [0.95, 1]. The geometric CDF at N is 1 - (1-p)^N.
  double Cumulative = 1.0 - std::pow(1.0 - P, N);
  if (Cumulative < 0.95)
    return false;
  // Condition 2: the top-ranked mutator gets at least uniform mass.
  if (P < 1.0 / N)
    return false;
  // Condition 3: the bottom-ranked mutator keeps a real chance.
  if (std::pow(1.0 - P, N - 1.0) * P <= Epsilon)
    return false;
  return true;
}

PBounds classfuzz::estimatePBounds(size_t NumMutators, double Epsilon) {
  PBounds Out;
  const double Step = 1e-5;
  bool InRange = false;
  for (double P = Step; P < 1.0; P += Step) {
    bool Ok = satisfiesPConditions(P, NumMutators, Epsilon);
    if (Ok && !InRange) {
      Out.Lo = P;
      InRange = true;
    }
    if (!Ok && InRange) {
      Out.Hi = P - Step;
      return Out;
    }
  }
  if (InRange)
    Out.Hi = 1.0 - Step;
  return Out;
}

McmcSelector::McmcSelector(size_t NumMutators, double P)
    : P(P), Selected(NumMutators, 0), Succeeded(NumMutators, 0),
      Ranking(NumMutators), Rank(NumMutators) {
  assert(NumMutators > 0 && "selector over empty mutator set");
  for (size_t I = 0; I != NumMutators; ++I) {
    Ranking[I] = I;
    Rank[I] = I;
  }
}

double McmcSelector::successRate(size_t MutatorIndex) const {
  // Optimistic prior for never-selected mutators: 0/0 ranks top so that
  // every mutator gets tried before the ranking settles (otherwise the
  // chain under-explores and the Figure 4 correlation degrades).
  if (Selected[MutatorIndex] == 0)
    return 1.0;
  return static_cast<double>(Succeeded[MutatorIndex]) /
         static_cast<double>(Selected[MutatorIndex]);
}

void McmcSelector::resort() {
  std::stable_sort(Ranking.begin(), Ranking.end(),
                   [this](size_t A, size_t B) {
                     return successRate(A) > successRate(B);
                   });
  for (size_t R = 0; R != Ranking.size(); ++R)
    Rank[Ranking[R]] = R;
}

size_t McmcSelector::selectNext(Rng &R) {
  size_t K1 = Rank[Current];
  // Propose uniformly (the symmetric proposal distribution g), accept
  // with min(1, (1-p)^(k2-k1)).
  for (;;) {
    size_t Proposal = R.choiceIndex(Selected.size());
    size_t K2 = Rank[Proposal];
    double Accept = std::pow(1.0 - P, static_cast<double>(K2) -
                                          static_cast<double>(K1));
    if (Accept >= 1.0 || R.nextDouble() < Accept) {
      Current = Proposal;
      return Current;
    }
  }
}

void McmcSelector::recordOutcome(size_t MutatorIndex,
                                 bool Representative) {
  assert(MutatorIndex < Selected.size() && "mutator index out of range");
  ++Selected[MutatorIndex];
  if (Representative)
    ++Succeeded[MutatorIndex];
  resort();
}
