//===- mcmc/McmcSelector.cpp -----------------------------------------------===//

#include "mcmc/McmcSelector.h"

#include "telemetry/Telemetry.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace classfuzz;

bool classfuzz::satisfiesPConditions(double P, size_t NumMutators,
                                     double Epsilon) {
  if (P <= 0.0 || P >= 1.0)
    return false;
  double N = static_cast<double>(NumMutators);
  // Condition 1: cumulative probability over the first N ranks in
  // [0.95, 1]. The geometric CDF at N is 1 - (1-p)^N.
  double Cumulative = 1.0 - std::pow(1.0 - P, N);
  if (Cumulative < 0.95)
    return false;
  // Condition 2: the top-ranked mutator gets at least uniform mass.
  if (P < 1.0 / N)
    return false;
  // Condition 3: the bottom-ranked mutator keeps a real chance.
  if (std::pow(1.0 - P, N - 1.0) * P <= Epsilon)
    return false;
  return true;
}

PBounds classfuzz::estimatePBounds(size_t NumMutators, double Epsilon) {
  PBounds Out;
  const double Step = 1e-5;
  const uint64_t Steps = static_cast<uint64_t>(1.0 / Step);
  bool InRange = false;
  // Iterate an integer index and derive P = I * Step each time: the
  // accumulating `P += Step` form drifts by an ulp per addition, which
  // after ~1e5 additions moves the detected boundary.
  for (uint64_t I = 1; I < Steps; ++I) {
    double P = static_cast<double>(I) * Step;
    bool Ok = satisfiesPConditions(P, NumMutators, Epsilon);
    if (Ok && !InRange) {
      Out.Lo = P;
      InRange = true;
    }
    if (!Ok && InRange) {
      Out.Hi = static_cast<double>(I - 1) * Step;
      return Out;
    }
  }
  if (InRange)
    Out.Hi = static_cast<double>(Steps - 1) * Step;
  return Out;
}

McmcSelector::McmcSelector(size_t NumMutators, double P)
    : P(P), Selected(NumMutators, 0), Succeeded(NumMutators, 0),
      DeepHits(NumMutators, 0), Ranking(NumMutators), Rank(NumMutators) {
  assert(NumMutators > 0 && "selector over empty mutator set");
  for (size_t I = 0; I != NumMutators; ++I) {
    Ranking[I] = I;
    Rank[I] = I;
  }
}

double McmcSelector::successRate(size_t MutatorIndex) const {
  // Optimistic prior for never-selected mutators: 0/0 ranks top so that
  // every mutator gets tried before the ranking settles (otherwise the
  // chain under-explores and the Figure 4 correlation degrades).
  if (Selected[MutatorIndex] == 0)
    return 1.0;
  // Deep-phase reward: each mutant that survived loading/linking adds
  // DeepRewardWeight on top of the acceptance reward. At weight 0 this
  // is exactly the paper's succ/selected.
  return (static_cast<double>(Succeeded[MutatorIndex]) +
          DeepRewardWeight * static_cast<double>(DeepHits[MutatorIndex])) /
         static_cast<double>(Selected[MutatorIndex]);
}

size_t McmcSelector::selectNext(Rng &R) {
  // Chain-health telemetry (observation only; the Rng is never touched
  // by the counters): proposals drawn, Metropolis acceptances, and
  // attempt-budget fallbacks.
  const bool Telem = telemetry::enabled();
  static telemetry::Counter &Proposals =
      telemetry::metrics().counter("mcmc.proposals");
  static telemetry::Counter &Accepted =
      telemetry::metrics().counter("mcmc.proposals_accepted");
  static telemetry::Counter &Fallbacks =
      telemetry::metrics().counter("mcmc.fallbacks");

  size_t K1 = Rank[Current];
  // Propose uniformly (the symmetric proposal distribution g), accept
  // with min(1, (1-p)^(k2-k1)). The loop terminates with probability 1
  // for any valid p (proposing the current mutator always accepts), but
  // is bounded so a degenerate p (NaN, ~1) cannot hang the campaign;
  // the fallback keeps the current mutator.
  for (size_t Attempt = 0; Attempt != MaxProposalAttempts; ++Attempt) {
    size_t Proposal = R.choiceIndex(Selected.size());
    size_t K2 = Rank[Proposal];
    double Accept = std::pow(1.0 - P, static_cast<double>(K2) -
                                          static_cast<double>(K1));
    if (Telem)
      Proposals.inc();
    if (Accept >= 1.0 || R.nextDouble() < Accept) {
      if (Telem)
        Accepted.inc();
      Current = Proposal;
      return Current;
    }
  }
  if (Telem)
    Fallbacks.inc();
  return Current;
}

void McmcSelector::recordOutcome(size_t MutatorIndex,
                                 bool Representative) {
  assert(MutatorIndex < Selected.size() && "mutator index out of range");
  ++Selected[MutatorIndex];
  if (Representative)
    ++Succeeded[MutatorIndex];
  reRank(MutatorIndex);
}

void McmcSelector::recordDeepReach(size_t MutatorIndex) {
  assert(MutatorIndex < DeepHits.size() && "mutator index out of range");
  ++DeepHits[MutatorIndex];
  reRank(MutatorIndex);
}

void McmcSelector::reRank(size_t MutatorIndex) {
  // Only MutatorIndex's success rate changed, so the ranking (kept
  // sorted by descending rate) needs at most one element moved. Bubble
  // it to its new position; the stopping conditions (strict
  // comparisons) reproduce exactly what a full stable_sort would do:
  // among equal rates the moved mutator lands after the equals when
  // moving up and before them when moving down, preserving the relative
  // order of everything else. The equivalence is asserted against a
  // shadow stable_sort in the tests.
  double Rate = successRate(MutatorIndex);
  size_t K = Rank[MutatorIndex];
  while (K > 0 && successRate(Ranking[K - 1]) < Rate) {
    Ranking[K] = Ranking[K - 1];
    Rank[Ranking[K]] = K;
    --K;
  }
  while (K + 1 < Ranking.size() && successRate(Ranking[K + 1]) > Rate) {
    Ranking[K] = Ranking[K + 1];
    Rank[Ranking[K]] = K;
    ++K;
  }
  Ranking[K] = MutatorIndex;
  Rank[MutatorIndex] = K;
}
