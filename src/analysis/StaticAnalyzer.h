//===- analysis/StaticAnalyzer.h - Execution-free classfile triage -------===//
//
// Part of classfuzz-cpp (PLDI 2016 classfuzz reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An execution-free static analyzer over parsed ClassFiles. Where the
/// VM pipeline (FormatChecker -> Verifier -> Vm) latches the first
/// failure and aborts, the analyzer runs every lint pass to completion
/// and reports all findings (analysis/Diagnostics.h), then predicts the
/// startup phase the reference VM would observe -- without interpreting
/// a single bytecode.
///
/// The prediction mirrors Vm::loadClass/linkClass exactly: same parse,
/// same format checks (shared runFormatChecks walk), same supertype
/// recursion and circularity detection, same hierarchy checks, and the
/// same verifyMethod over the same class-lookup view, under the same
/// JvmPolicy. Loading and linking rejections are therefore *definite*
/// predictions (the VM must observe encoded phase 1 resp. 2); a class
/// that passes static triage can still die later -- at initialization
/// or at runtime, including runtime resolution errors that canonicalize
/// back to the linking phase -- so "pass" only promises the VM will not
/// reject it while loading. Campaign wiring latches any violation of
/// this contract as a self-check incident (predict-vs-observe oracle).
///
/// Supertype chains that live entirely in the environment are memoized
/// across analyses (the environment is immutable), so analyzing a
/// campaign of mutants re-does only the mutant-specific work. The
/// analyzer is deliberately single-threaded state: share one instance
/// per thread or guard it externally.
///
//===----------------------------------------------------------------------===//

#ifndef CLASSFUZZ_ANALYSIS_STATICANALYZER_H
#define CLASSFUZZ_ANALYSIS_STATICANALYZER_H

#include "analysis/Diagnostics.h"
#include "analysis/TypedHoles.h"
#include "jvm/ClassPath.h"
#include "jvm/FormatChecker.h"
#include "jvm/JvmTypes.h"
#include "jvm/Policy.h"

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace classfuzz {

struct ClassFile;

/// What the analyzer expects the reference VM to observe.
enum class PredictedOutcome : uint8_t {
  RejectLoading, ///< Definite: encoded phase must be 1.
  RejectLinking, ///< Definite: encoded phase must be 2.
  PassStatic,    ///< Loading succeeds: encoded phase must not be 1.
};

const char *predictedOutcomeName(PredictedOutcome Outcome);

/// The analyzer's predict-vs-observe contract for one class.
struct StartupPrediction {
  PredictedOutcome Outcome = PredictedOutcome::PassStatic;
  /// For rejections: the error kind and message the VM will abort with.
  JvmErrorKind Error = JvmErrorKind::None;
  std::string Message;

  /// The encoded phase this prediction pins down: 1, 2, or -1 when the
  /// class passes static triage (no single phase is implied).
  int predictedPhase() const;

  /// True when \p ObservedPhase (0..4) satisfies the contract. A
  /// PassStatic prediction is compatible with everything except 1:
  /// runtime resolution errors legitimately canonicalize to phase 2.
  bool isCompatibleWith(int ObservedPhase) const;
};

/// Everything the analyzer found out about one class.
struct AnalysisReport {
  std::string ClassName;
  bool Parsed = false;
  std::vector<Diagnostic> Diagnostics;
  StartupPrediction Prediction;

  /// Number of Error-severity diagnostics.
  size_t errorCount() const;

  /// Stable single-line JSON: {"class":...,"parsed":...,
  /// "prediction":{...},"counts":{...},"diagnostics":[...]}. Keys and
  /// ordering are fixed so output is byte-diffable across runs.
  std::string toJson() const;
};

/// The execution-free analyzer, bound to an environment and a policy
/// (defaults to the reference policy, matching campaign triage).
class StaticAnalyzer {
public:
  explicit StaticAnalyzer(const ClassPath &Env);
  StaticAnalyzer(const ClassPath &Env, JvmPolicy Policy);

  /// Runs every pass over \p Data (which shadows \p Name in the
  /// environment, like Vm runs on a mutant) and predicts the outcome.
  AnalysisReport analyzeClass(const std::string &Name,
                              const Bytes &Data) const;

  /// Analyzes a class already present in the environment.
  AnalysisReport analyzeClass(const std::string &Name) const;

  /// Adds \p Name to the environment (the campaign feeds accepted
  /// mutants back into the corpus). Memoized chain walks that ever
  /// looked \p Name up -- including misses -- are invalidated; walks
  /// that never touched the name stay valid.
  void addEnvironmentClass(const std::string &Name, Bytes Data);

  /// Prediction only -- the load/link simulation without the exhaustive
  /// lint passes. This is the cheap triage path the paper's filtering
  /// step wants.
  StartupPrediction predictStartupOutcome(const std::string &Name,
                                          const Bytes &Data) const;

  /// Typed mutation sites of an environment class, memoized per name.
  /// Same invalidation contract as the chain memo: addEnvironmentClass
  /// drops every hole list whose extraction touched the redefined name
  /// or whose sibling sets hang off the class's old or new superclass.
  const TypedHoleList &typedHoles(const std::string &Name) const;

  /// Typed mutation sites of \p Data (shadowing \p Name in the
  /// environment, like analyzeClass runs on a mutant). Unmemoized.
  TypedHoleList typedHolesFor(const std::string &Name,
                              const Bytes &Data) const;

  /// Renders \p Report with a javap-style dump of \p Data (annotated
  /// output for `classfuzz analyze --print`).
  static std::string renderAnnotated(const AnalysisReport &Report,
                                     const Bytes &Data);

  const JvmPolicy &policy() const { return Policy; }

private:
  struct SimAbort {
    JvmPhase Phase = JvmPhase::Loading;
    JvmErrorKind Kind = JvmErrorKind::ClassFormatError;
    std::string Message;
    std::string Culprit; ///< The class the abort was raised for.
  };
  struct ChainMemo {
    std::optional<SimAbort> Abort;
    std::set<std::string> Touched; ///< Every name the chain walk used.
  };
  /// Per-environment-class artifacts every simulation shares: the parse
  /// result (or its error) and the loading-phase format check, each
  /// computed at most once per class per analyzer. This is what makes
  /// triaging a campaign of mutants cheap -- the runtime library is
  /// parsed once, not once per mutant.
  struct EnvClassInfo {
    bool Exists = false;
    std::optional<ClassFile> CF; ///< nullopt when the parse failed.
    std::string ParseError;
    std::optional<CheckFailure> FormatFailure;
  };
  struct SimState;
  /// Memoized typed-hole extraction for one environment class, plus
  /// the names the extraction looked up (Touched) and the parents
  /// whose child sets fed sibling alternatives (SiblingParents) --
  /// together the exact invalidation footprint.
  struct HoleMemo {
    TypedHoleList Holes;
    std::set<std::string> Touched;
    std::set<std::string> SiblingParents;
  };

  const EnvClassInfo &envClassInfo(const std::string &Name) const;

  /// The env's parent -> sorted children map, built lazily on the
  /// first sibling query and updated incrementally by
  /// addEnvironmentClass.
  const std::map<std::string, std::vector<std::string>> &
  childrenIndex() const;

  /// A HoleEnv whose sibling callback serves from childrenIndex() and
  /// records every touched name / queried parent into the given sets
  /// (either may be null).
  HoleEnv holeEnv(std::set<std::string> *Touched,
                  std::set<std::string> *SiblingParents) const;

  /// \p CF, when given, is \p Data already parsed (skips a re-parse);
  /// \p FirstVerifyFailure, when given, is the precomputed result of
  /// the eager per-method verification loop over \p CF (points to the
  /// first failure, or to nullopt when every method verifies).
  std::optional<SimAbort>
  simulate(const std::string &Name, const Bytes *Data,
           const ClassFile *CF = nullptr,
           const std::optional<CheckFailure> *FirstVerifyFailure =
               nullptr) const;
  std::optional<SimAbort> simulateFresh(const std::string &Name,
                                        const Bytes *Data,
                                        std::set<std::string> *Touched) const;
  const ChainMemo &chainMemo(const std::string &Name) const;
  StartupPrediction predictionFrom(const std::optional<SimAbort> &Abort) const;

  void runCpGraphPass(const ClassFile &CF,
                      std::vector<Diagnostic> &Out) const;
  void runFormatPass(const ClassFile &CF,
                     std::vector<Diagnostic> &Out) const;
  void runCodeShapePass(const ClassFile &CF,
                        std::vector<Diagnostic> &Out) const;
  /// \p FirstVerifyFailure, when non-null, receives the first failing
  /// method's failure (or nullopt) so the simulation can reuse it
  /// instead of re-verifying every method.
  void runTypeCheckPass(const ClassFile &CF, const std::string &Name,
                        const Bytes *Data, std::vector<Diagnostic> &Out,
                        std::optional<CheckFailure> *FirstVerifyFailure =
                            nullptr) const;
  void runHierarchyPass(const ClassFile &CF, const std::string &Name,
                        const std::optional<SimAbort> &Abort,
                        std::vector<Diagnostic> &Out) const;

  JvmPolicy Policy;
  ClassPath Env; ///< Copy-on-write copy of the caller's environment.
  /// Chain-simulation memo for environment classes, keyed by name. An
  /// entry is reusable for a mutant only when the mutant's name is not
  /// in its Touched set (the overlay would shadow that lookup).
  mutable std::map<std::string, ChainMemo> Memo;
  /// Parse/format cache for environment classes (node-stable, so
  /// pointers into it survive later insertions). Invalidated per-name
  /// by addEnvironmentClass.
  mutable std::map<std::string, EnvClassInfo> EnvCache;
  /// Typed-hole memo for environment classes, keyed by name.
  mutable std::map<std::string, HoleMemo> HoleMemos;
  /// Lazily built parent -> sorted children hierarchy index over the
  /// environment (nullopt until the first sibling query).
  mutable std::optional<std::map<std::string, std::vector<std::string>>>
      Children;
};

} // namespace classfuzz

#endif // CLASSFUZZ_ANALYSIS_STATICANALYZER_H
