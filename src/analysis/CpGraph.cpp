//===- analysis/CpGraph.cpp -----------------------------------------------===//

#include "analysis/CpGraph.h"

#include "classfile/Descriptor.h"
#include "classfile/Opcodes.h"

#include <algorithm>

using namespace classfuzz;

namespace {

/// Short tag name without the CONSTANT_ prefix.
std::string tagShortName(CpTag Tag) {
  return cpTagName(Tag) + 9; // Skip "CONSTANT_".
}

bool isMemberRefTag(CpTag Tag) {
  return Tag == CpTag::Fieldref || Tag == CpTag::Methodref ||
         Tag == CpTag::InterfaceMethodref;
}

/// True when \p Op carries a constant-pool index in Operand1.
bool opUsesCpIndex(uint8_t Op) {
  switch (Op) {
  case OP_ldc:
  case OP_ldc_w:
  case OP_ldc2_w:
  case OP_getstatic:
  case OP_putstatic:
  case OP_getfield:
  case OP_putfield:
  case OP_invokevirtual:
  case OP_invokespecial:
  case OP_invokestatic:
  case OP_invokeinterface:
  case OP_invokedynamic:
  case OP_new:
  case OP_anewarray:
  case OP_checkcast:
  case OP_instanceof:
  case OP_multianewarray:
    return true;
  default:
    return false;
  }
}

} // namespace

CpGraph CpGraph::build(const ClassFile &CF) {
  CpGraph G;
  G.CF = &CF;

  const ConstantPool &CP = CF.CP;
  for (uint16_t I = 1; I < CP.count(); ++I) {
    const CpEntry &E = CP.at(I);
    auto Edge = [&](uint16_t To, CpTag Expected, const char *Role) {
      G.Edges.push_back(CpEdge{I, To, Expected, Role});
    };
    switch (E.Tag) {
    case CpTag::Class:
      Edge(E.Ref1, CpTag::Utf8, "name");
      break;
    case CpTag::String:
      Edge(E.Ref1, CpTag::Utf8, "string");
      break;
    case CpTag::NameAndType:
      Edge(E.Ref1, CpTag::Utf8, "name");
      Edge(E.Ref2, CpTag::Utf8, "descriptor");
      break;
    case CpTag::Fieldref:
    case CpTag::Methodref:
    case CpTag::InterfaceMethodref:
      Edge(E.Ref1, CpTag::Class, "class");
      Edge(E.Ref2, CpTag::NameAndType, "name_and_type");
      break;
    case CpTag::MethodType:
      Edge(E.Ref1, CpTag::Utf8, "descriptor");
      break;
    case CpTag::MethodHandle:
      // The expected member-ref tag depends on reference_kind; check()
      // accepts any of the three member tags for this edge.
      Edge(E.Ref1, CpTag::Methodref, "reference");
      break;
    case CpTag::InvokeDynamic:
      // Ref1 indexes the BootstrapMethods attribute, not the pool.
      Edge(E.Ref2, CpTag::NameAndType, "name_and_type");
      break;
    default:
      break;
    }
  }

  // Bytecode roots: the constant-pool operands of every decodable
  // instruction of every method.
  for (const MethodInfo &M : CF.Methods) {
    if (!M.Code)
      continue;
    InsnDecoder Decoder(M.Code->Code);
    Insn I;
    while (Decoder.decodeNext(I))
      if (opUsesCpIndex(I.Op))
        G.Roots.push_back(static_cast<uint16_t>(I.Operand1));
  }
  std::sort(G.Roots.begin(), G.Roots.end());
  G.Roots.erase(std::unique(G.Roots.begin(), G.Roots.end()), G.Roots.end());

  G.computeReachability();
  G.computeCycles();
  return G;
}

void CpGraph::computeReachability() {
  const ConstantPool &CP = CF->CP;
  Reachable.assign(CP.count(), false);
  std::vector<uint16_t> Worklist;
  Worklist.reserve(Roots.size());
  for (uint16_t Root : Roots) {
    if (Root > 0 && Root < CP.count() && !Reachable[Root]) {
      Reachable[Root] = true;
      Worklist.push_back(Root);
    }
  }
  // Adjacency by linear scan: pools are small and edges are few, so a
  // scan per popped node is cheaper than materializing adjacency lists.
  while (!Worklist.empty()) {
    uint16_t Node = Worklist.back();
    Worklist.pop_back();
    for (const CpEdge &E : Edges) {
      if (E.From != Node)
        continue;
      if (E.To > 0 && E.To < CP.count() && !Reachable[E.To]) {
        Reachable[E.To] = true;
        Worklist.push_back(E.To);
      }
    }
  }
}

void CpGraph::computeCycles() {
  const ConstantPool &CP = CF->CP;
  uint16_t N = CP.count();
  OnCycle.assign(N, false);
  // Valid pools are strictly acyclic (all chains end at Utf8 leaves),
  // so any closed walk is a mutation artifact. Iterative coloring DFS:
  // a back edge to a gray node marks the path segment from that node
  // to the top of the path -- exactly the nodes on the cycle.
  std::vector<std::vector<uint16_t>> Adj(N);
  for (const CpEdge &E : Edges)
    if (E.To > 0 && E.To < N)
      Adj[E.From].push_back(E.To);

  enum : uint8_t { White, Gray, Black };
  std::vector<uint8_t> Color(N, White);
  std::vector<uint16_t> Path;

  for (uint16_t Start = 1; Start < N; ++Start) {
    if (Color[Start] != White)
      continue;
    std::vector<std::pair<uint16_t, size_t>> Stack;
    Stack.emplace_back(Start, 0);
    Color[Start] = Gray;
    Path.push_back(Start);
    while (!Stack.empty()) {
      uint16_t Node = Stack.back().first;
      size_t &Cursor = Stack.back().second;
      if (Cursor < Adj[Node].size()) {
        uint16_t Next = Adj[Node][Cursor++];
        if (Color[Next] == Gray) {
          auto It = std::find(Path.begin(), Path.end(), Next);
          for (; It != Path.end(); ++It)
            OnCycle[*It] = true;
        } else if (Color[Next] == White) {
          Color[Next] = Gray;
          Path.push_back(Next);
          Stack.emplace_back(Next, 0);
        }
      } else {
        Color[Node] = Black;
        Path.pop_back();
        Stack.pop_back();
      }
    }
  }
}

std::vector<Diagnostic> CpGraph::check() const {
  std::vector<Diagnostic> Out;
  const ConstantPool &CP = CF->CP;
  auto Add = [&](DiagSeverity Severity, uint16_t Index, std::string Message) {
    Diagnostic D;
    D.Pass = PassId::CpGraph;
    D.Severity = Severity;
    D.Location = DiagLocation::cp(Index);
    D.Message = std::move(Message);
    Out.push_back(std::move(D));
  };

  // Edge checks: dangling targets, type-confused targets.
  for (const CpEdge &E : Edges) {
    std::string EdgeDesc = tagShortName(CP.at(E.From).Tag) + " #" +
                           std::to_string(E.From) + " -> #" +
                           std::to_string(E.To) + " (" + E.Role + ")";
    if (E.To == 0 || E.To >= CP.count() ||
        CP.at(E.To).Tag == CpTag::Invalid) {
      Add(DiagSeverity::Error, E.From, EdgeDesc + " is dangling");
      continue;
    }
    CpTag Actual = CP.at(E.To).Tag;
    bool TagOk = CP.at(E.From).Tag == CpTag::MethodHandle
                     ? isMemberRefTag(Actual)
                     : Actual == E.ExpectedTag;
    if (!TagOk)
      Add(DiagSeverity::Error, E.From,
          EdgeDesc + " has tag " + tagShortName(Actual) + ", expected " +
              tagShortName(E.ExpectedTag));
  }

  // Context checks along intact chains: member-ref descriptors must
  // parse in their member kind, class names must be non-empty.
  for (uint16_t I = 1; I < CP.count(); ++I) {
    const CpEntry &E = CP.at(I);
    if (E.Tag == CpTag::Class) {
      auto Name = CP.getClassName(I);
      if (Name && Name->empty())
        Add(DiagSeverity::Error, I,
            "Class #" + std::to_string(I) + " has empty name");
    }
    if (!isMemberRefTag(E.Tag))
      continue;
    auto NaT = CP.getNameAndType(E.Ref2);
    if (!NaT)
      continue; // The edge checks above already reported the breakage.
    const std::string &Descriptor = NaT->second;
    if (E.Tag == CpTag::Fieldref) {
      if (!isValidFieldDescriptor(Descriptor))
        Add(DiagSeverity::Error, I,
            "Fieldref #" + std::to_string(I) + " -> NameAndType #" +
                std::to_string(E.Ref2) + " has non-field descriptor \"" +
                Descriptor + "\"");
    } else if (!isValidMethodDescriptor(Descriptor)) {
      Add(DiagSeverity::Error, I,
          tagShortName(E.Tag) + " #" + std::to_string(I) +
              " -> NameAndType #" + std::to_string(E.Ref2) +
              " has non-method descriptor \"" + Descriptor + "\"");
    }
    if (NaT->first.empty())
      Add(DiagSeverity::Error, I,
          tagShortName(E.Tag) + " #" + std::to_string(I) +
              " has empty member name");
  }

  // Cycles.
  for (uint16_t I = 1; I < CP.count(); ++I)
    if (isOnCycle(I))
      Add(DiagSeverity::Error, I,
          "constant-pool entry #" + std::to_string(I) +
              " participates in a reference cycle");

  // Dead-entry lints, capped so a large dead pool cannot flood output.
  constexpr size_t MaxDeadReports = 8;
  size_t Dead = 0;
  for (uint16_t I = 1; I < CP.count(); ++I) {
    const CpEntry &E = CP.at(I);
    if (E.Tag == CpTag::Invalid || isReachable(I))
      continue;
    ++Dead;
    if (Dead <= MaxDeadReports)
      Add(DiagSeverity::Info, I,
          "entry #" + std::to_string(I) + " (" + tagShortName(E.Tag) +
              ") is not referenced from bytecode");
  }
  if (Dead > MaxDeadReports)
    Add(DiagSeverity::Info, 0,
        std::to_string(Dead - MaxDeadReports) +
            " more unreferenced entries not listed");

  return Out;
}
