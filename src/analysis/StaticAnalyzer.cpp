//===- analysis/StaticAnalyzer.cpp ----------------------------------------===//

#include "analysis/StaticAnalyzer.h"

#include "analysis/CpGraph.h"
#include "classfile/ClassReader.h"
#include "classfile/Descriptor.h"
#include "classfile/Opcodes.h"
#include "classfile/Printer.h"
#include "jvm/Phase.h"
#include "jvm/FormatChecker.h"
#include "jvm/Verifier.h"
#include "jvm/VerifierLattice.h"
#include "telemetry/Telemetry.h"

#include <algorithm>
#include <deque>

using namespace classfuzz;

const char *classfuzz::predictedOutcomeName(PredictedOutcome Outcome) {
  switch (Outcome) {
  case PredictedOutcome::RejectLoading:
    return "reject-loading";
  case PredictedOutcome::RejectLinking:
    return "reject-linking";
  case PredictedOutcome::PassStatic:
    return "pass";
  }
  return "?";
}

int StartupPrediction::predictedPhase() const {
  switch (Outcome) {
  case PredictedOutcome::RejectLoading:
    return 1;
  case PredictedOutcome::RejectLinking:
    return 2;
  case PredictedOutcome::PassStatic:
    return -1;
  }
  return -1;
}

bool StartupPrediction::isCompatibleWith(int ObservedPhase) const {
  switch (Outcome) {
  case PredictedOutcome::RejectLoading:
    return ObservedPhase == 1;
  case PredictedOutcome::RejectLinking:
    return ObservedPhase == 2;
  case PredictedOutcome::PassStatic:
    return ObservedPhase != 1;
  }
  return false;
}

size_t AnalysisReport::errorCount() const {
  size_t N = 0;
  for (const Diagnostic &D : Diagnostics)
    if (D.Severity == DiagSeverity::Error)
      ++N;
  return N;
}

std::string AnalysisReport::toJson() const {
  std::string J = "{\"class\":\"" + telemetry::jsonEscape(ClassName) +
                  "\",\"parsed\":" + (Parsed ? "true" : "false");
  J += ",\"prediction\":{\"outcome\":\"";
  J += predictedOutcomeName(Prediction.Outcome);
  J += "\",\"phase\":" + std::to_string(Prediction.predictedPhase());
  if (Prediction.Outcome != PredictedOutcome::PassStatic) {
    J += ",\"error\":\"";
    J += errorKindName(Prediction.Error);
    J += "\",\"message\":\"" + telemetry::jsonEscape(Prediction.Message) +
         "\"";
  }
  J += "},\"counts\":{";
  std::array<size_t, NumPassIds> Counts = countByPass(Diagnostics);
  for (size_t I = 0; I != NumPassIds; ++I) {
    if (I)
      J += ",";
    J += "\"";
    J += passIdName(static_cast<PassId>(I));
    J += "\":" + std::to_string(Counts[I]);
  }
  J += "},\"diagnostics\":[";
  for (size_t I = 0; I != Diagnostics.size(); ++I) {
    if (I)
      J += ",";
    J += Diagnostics[I].toJson();
  }
  J += "]}";
  return J;
}

StaticAnalyzer::StaticAnalyzer(const ClassPath &Env)
    : StaticAnalyzer(Env, referenceJvmPolicy()) {}

StaticAnalyzer::StaticAnalyzer(const ClassPath &Env, JvmPolicy Policy)
    : Policy(std::move(Policy)), Env(Env) {}

//===----------------------------------------------------------------------===//
// Load/link simulation (the prediction engine)
//===----------------------------------------------------------------------===//

/// Mirror of the Vm's loading and linking state, without heap or
/// interpreter. Every check, message, and recursion order below is
/// copied from Vm::loadClass/linkClass so the predicted abort is the
/// abort the VM raises. Environment classes are parsed and
/// format-checked through the analyzer's shared EnvCache, so across a
/// campaign of mutants each runtime-library class pays those costs
/// once, not once per simulation.
struct StaticAnalyzer::SimState {
  const StaticAnalyzer &A;
  const JvmPolicy &Policy;
  const ClassPath &Env;
  const std::string *OverlayName = nullptr;
  const Bytes *OverlayData = nullptr;
  /// The overlay's bytes already parsed, when the caller has them.
  const ClassFile *OverlayCF = nullptr;
  /// Precomputed eager-verification result for the overlay class (see
  /// runTypeCheckPass); consulted only for *OverlayName.
  const std::optional<CheckFailure> *OverlayVerify = nullptr;
  std::set<std::string> *Touched = nullptr;

  std::map<std::string, const ClassFile *> Loaded;
  std::set<std::string> LoadingInProgress;
  std::set<std::string> Linked;
  std::optional<SimAbort> Abort;

  explicit SimState(const StaticAnalyzer &A)
      : A(A), Policy(A.Policy), Env(A.Env) {}

  /// Lazily parsed overlay when the caller handed raw bytes only.
  std::optional<ClassFile> OwnedOverlayCF;
  std::string OwnedOverlayError;
  bool OverlayParsed = false;

  bool isOverlay(const std::string &Name) const {
    return OverlayName && Name == *OverlayName;
  }

  /// Records that this walk resolved \p Name -- hits and misses alike,
  /// so chain memos know exactly which names could change their result.
  void touch(const std::string &Name) {
    if (Touched)
      Touched->insert(Name);
  }

  /// The overlay's parsed ClassFile, or nullptr when it fails to parse
  /// (OwnedOverlayError then holds the message).
  const ClassFile *overlayClassFile() {
    if (OverlayCF)
      return OverlayCF;
    if (!OverlayParsed) {
      OverlayParsed = true;
      auto Parsed = parseClassFile(*OverlayData);
      if (Parsed.ok())
        OwnedOverlayCF = Parsed.take();
      else
        OwnedOverlayError = Parsed.error();
    }
    return OwnedOverlayCF ? &*OwnedOverlayCF : nullptr;
  }

  void abort(JvmPhase Phase, JvmErrorKind Kind, std::string Message,
             const std::string &Culprit) {
    if (Abort)
      return;
    Abort = SimAbort{Phase, Kind, std::move(Message), Culprit};
  }

  /// Vm::lookupClassFile equivalent: loaded classes, then the shared
  /// parse cache over the environment.
  const ClassFile *lookupClassFile(const std::string &Name) {
    auto LoadedIt = Loaded.find(Name);
    if (LoadedIt != Loaded.end())
      return LoadedIt->second;
    touch(Name);
    if (isOverlay(Name))
      return overlayClassFile();
    const EnvClassInfo &Info = A.envClassInfo(Name);
    return Info.CF ? &*Info.CF : nullptr;
  }

  bool loadClass(const std::string &Name) {
    if (Loaded.contains(Name))
      return true;
    if (LoadingInProgress.contains(Name)) {
      abort(JvmPhase::Loading, JvmErrorKind::ClassCircularityError, Name,
            Name);
      return false;
    }
    touch(Name);
    const ClassFile *CF = nullptr;
    if (isOverlay(Name)) {
      CF = overlayClassFile();
      if (!CF) {
        abort(JvmPhase::Loading, JvmErrorKind::ClassFormatError,
              OwnedOverlayError, Name);
        return false;
      }
      if (CF->ThisClass != Name) {
        abort(JvmPhase::Loading, JvmErrorKind::NoClassDefFoundError,
              Name + " (wrong name: " + CF->ThisClass + ")", Name);
        return false;
      }
      if (auto Failure = checkClassFormat(*CF, Policy, nullptr)) {
        abort(JvmPhase::Loading, Failure->Kind, Failure->Message, Name);
        return false;
      }
    } else {
      const EnvClassInfo &Info = A.envClassInfo(Name);
      if (!Info.Exists) {
        abort(JvmPhase::Loading, JvmErrorKind::NoClassDefFoundError, Name,
              Name);
        return false;
      }
      if (!Info.CF) {
        abort(JvmPhase::Loading, JvmErrorKind::ClassFormatError,
              Info.ParseError, Name);
        return false;
      }
      if (Info.CF->ThisClass != Name) {
        abort(JvmPhase::Loading, JvmErrorKind::NoClassDefFoundError,
              Name + " (wrong name: " + Info.CF->ThisClass + ")", Name);
        return false;
      }
      if (Info.FormatFailure) {
        abort(JvmPhase::Loading, Info.FormatFailure->Kind,
              Info.FormatFailure->Message, Name);
        return false;
      }
      CF = &*Info.CF;
    }
    LoadingInProgress.insert(Name);
    if (!CF->SuperClass.empty() && !loadClass(CF->SuperClass)) {
      LoadingInProgress.erase(Name);
      return false;
    }
    for (const std::string &Iface : CF->Interfaces) {
      if (!loadClass(Iface)) {
        LoadingInProgress.erase(Name);
        return false;
      }
    }
    LoadingInProgress.erase(Name);
    Loaded.emplace(Name, CF);
    return true;
  }

  bool linkClass(const std::string &Name) {
    if (Linked.contains(Name))
      return true;
    auto It = Loaded.find(Name);
    if (It == Loaded.end())
      return true;
    const ClassFile &CF = *It->second;

    // Link supers first (matching Vm::linkClass recursion order).
    if (!CF.SuperClass.empty() && Loaded.contains(CF.SuperClass) &&
        !linkClass(CF.SuperClass))
      return false;
    for (const std::string &Iface : CF.Interfaces)
      if (Loaded.contains(Iface) && !linkClass(Iface))
        return false;

    if (!linkOwnChecks(CF, Name))
      return false;

    Linked.insert(Name);
    return true;
  }

  /// The non-recursive tail of linkClass: every check Vm::linkClass
  /// runs for \p Name itself, after its supertypes linked. Callable
  /// directly when the supertype chains are already proven clean.
  bool linkOwnChecks(const ClassFile &CF, const std::string &Name) {
    const ClassFile *Super =
        CF.SuperClass.empty() ? nullptr : lookupClassFile(CF.SuperClass);

    if (Policy.CheckHierarchyKinds && Super) {
      if (!CF.isInterface() && (Super->AccessFlags & ACC_INTERFACE)) {
        abort(JvmPhase::Linking,
              JvmErrorKind::IncompatibleClassChangeError,
              "class " + CF.ThisClass + " has interface " + CF.SuperClass +
                  " as super class",
              Name);
        return false;
      }
      for (const std::string &IfaceName : CF.Interfaces) {
        const ClassFile *Iface = lookupClassFile(IfaceName);
        if (Iface && !(Iface->AccessFlags & ACC_INTERFACE)) {
          abort(JvmPhase::Linking,
                JvmErrorKind::IncompatibleClassChangeError,
                "class " + CF.ThisClass + " implements non-interface " +
                    IfaceName,
                Name);
          return false;
        }
      }
    }

    if (Policy.CheckFinalSuperclass && Super &&
        (Super->AccessFlags & ACC_FINAL)) {
      abort(JvmPhase::Linking, JvmErrorKind::VerifyError,
            "Cannot inherit from final class " + CF.SuperClass, Name);
      return false;
    }

    if (Policy.CheckThrowsAccessibility) {
      for (const MethodInfo &M : CF.Methods) {
        for (const std::string &ExcName : M.Exceptions) {
          const ClassFile *Exc = lookupClassFile(ExcName);
          if (!Exc)
            continue;
          bool SamePackage =
              packagePrefix(ExcName) == packagePrefix(CF.ThisClass);
          if (!(Exc->AccessFlags & ACC_PUBLIC) && !SamePackage) {
            abort(JvmPhase::Linking, JvmErrorKind::IllegalAccessError,
                  "class " + CF.ThisClass + " cannot access class " +
                      ExcName + " declared in throws clause",
                  Name);
            return false;
          }
        }
      }
    }

    if (Policy.Verification == CheckMode::Eager) {
      if (OverlayVerify && isOverlay(Name)) {
        // The type-check pass already ran verifyMethod over this exact
        // class with this exact lookup view; reuse its first failure.
        if (*OverlayVerify) {
          abort(JvmPhase::Linking, (*OverlayVerify)->Kind,
                (*OverlayVerify)->Message, Name);
          return false;
        }
      } else {
        ClassLookupFn Lookup = [this](const std::string &N) {
          return lookupClassFile(N);
        };
        for (const MethodInfo &M : CF.Methods) {
          if (auto Failure = verifyMethod(CF, M, Policy, Lookup, nullptr)) {
            abort(JvmPhase::Linking, Failure->Kind, Failure->Message, Name);
            return false;
          }
        }
      }
    }
    if (Policy.Verification == CheckMode::Lazy &&
        Policy.StructuralVerifyOnLink) {
      for (const MethodInfo &M : CF.Methods) {
        if (auto Failure = verifyMethodStructural(CF, M, Policy, nullptr)) {
          abort(JvmPhase::Linking, Failure->Kind, Failure->Message, Name);
          return false;
        }
      }
    }

    return true;
  }

  static std::string packagePrefix(const std::string &InternalName) {
    size_t Slash = InternalName.rfind('/');
    return Slash == std::string::npos ? std::string()
                                      : InternalName.substr(0, Slash);
  }
};

const StaticAnalyzer::EnvClassInfo &
StaticAnalyzer::envClassInfo(const std::string &Name) const {
  auto It = EnvCache.find(Name);
  if (It != EnvCache.end())
    return It->second;
  EnvClassInfo Info;
  if (const Bytes *Data = Env.lookup(Name)) {
    Info.Exists = true;
    auto Parsed = parseClassFile(*Data);
    if (Parsed.ok()) {
      Info.CF = Parsed.take();
      Info.FormatFailure = checkClassFormat(*Info.CF, Policy, nullptr);
    } else {
      Info.ParseError = Parsed.error();
    }
  }
  return EnvCache.emplace(Name, std::move(Info)).first->second;
}

std::optional<StaticAnalyzer::SimAbort>
StaticAnalyzer::simulateFresh(const std::string &Name, const Bytes *Data,
                              std::set<std::string> *Touched) const {
  SimState Sim(*this);
  Sim.Touched = Touched;
  if (Data) {
    Sim.OverlayName = &Name;
    Sim.OverlayData = Data;
  }
  if (!Sim.loadClass(Name))
    return Sim.Abort;
  Sim.linkClass(Name);
  return Sim.Abort;
}

const StaticAnalyzer::ChainMemo &
StaticAnalyzer::chainMemo(const std::string &Name) const {
  auto It = Memo.find(Name);
  if (It != Memo.end())
    return It->second;
  ChainMemo Entry;
  Entry.Abort = simulateFresh(Name, nullptr, &Entry.Touched);
  return Memo.emplace(Name, std::move(Entry)).first->second;
}

std::optional<StaticAnalyzer::SimAbort>
StaticAnalyzer::simulate(const std::string &Name, const Bytes *Data,
                         const ClassFile *CFIn,
                         const std::optional<CheckFailure>
                             *FirstVerifyFailure) const {
  if (!Data) {
    // Environment class: the memoized chain walk is the whole answer.
    return chainMemo(Name).Abort;
  }
  // Mutant overlay. The mutant's own load steps always run fresh; its
  // supertype chains reuse memoized walks when the overlay cannot have
  // influenced them (the mutant's name was never looked up).
  std::optional<ClassFile> Owned;
  if (!CFIn) {
    auto Parsed = parseClassFile(*Data);
    if (!Parsed.ok())
      return SimAbort{JvmPhase::Loading, JvmErrorKind::ClassFormatError,
                      Parsed.error(), Name};
    Owned = Parsed.take();
    CFIn = &*Owned;
  }
  const ClassFile &CF = *CFIn;
  if (CF.ThisClass != Name)
    return SimAbort{JvmPhase::Loading, JvmErrorKind::NoClassDefFoundError,
                    Name + " (wrong name: " + CF.ThisClass + ")", Name};
  if (auto Failure = checkClassFormat(CF, Policy, nullptr))
    return SimAbort{JvmPhase::Loading, Failure->Kind, Failure->Message,
                    Name};

  // Direct supertypes: a chain that touches the mutant's name (shadowed
  // by the overlay, or a genuine cycle back into it) must re-simulate
  // with the overlay active; anything else reuses the memo.
  std::vector<std::string> DirectSupers;
  if (!CF.SuperClass.empty())
    DirectSupers.push_back(CF.SuperClass);
  for (const std::string &Iface : CF.Interfaces)
    DirectSupers.push_back(Iface);
  for (const std::string &Super : DirectSupers) {
    if (Super == Name)
      // Self-inheritance: Vm::loadClass hits LoadingInProgress.
      return SimAbort{JvmPhase::Loading,
                      JvmErrorKind::ClassCircularityError, Super, Super};
    const ChainMemo &M = chainMemo(Super);
    if (!M.Touched.contains(Name)) {
      if (M.Abort)
        return M.Abort;
      continue;
    }
    // The chain sees the overlay: run it fresh with the overlay and
    // the mutant marked in-progress, exactly like Vm::loadClass does.
    SimState Sim(*this);
    Sim.OverlayName = &Name;
    Sim.OverlayData = Data;
    Sim.OverlayCF = &CF;
    Sim.LoadingInProgress.insert(Name);
    if (!Sim.loadClass(Super))
      return Sim.Abort;
    Sim.linkClass(Super);
    if (Sim.Abort)
      return Sim.Abort;
  }

  // Every chain is clean: only the mutant's own link checks remain.
  // The mutant itself parsed and format-checked above, and its direct
  // supertypes load and link cleanly, so loadClass(Name) cannot abort;
  // linkClass(Name)'s supertype recursion cannot either. That leaves
  // exactly linkOwnChecks -- run it directly against a state whose
  // lookups see the overlay.
  SimState Sim(*this);
  Sim.OverlayName = &Name;
  Sim.OverlayData = Data;
  Sim.OverlayCF = &CF;
  Sim.OverlayVerify = FirstVerifyFailure;
  Sim.linkOwnChecks(CF, Name);
  return Sim.Abort;
}

StartupPrediction
StaticAnalyzer::predictionFrom(const std::optional<SimAbort> &Abort) const {
  StartupPrediction P;
  if (!Abort) {
    P.Outcome = PredictedOutcome::PassStatic;
    return P;
  }
  P.Outcome = Abort->Phase == JvmPhase::Loading
                  ? PredictedOutcome::RejectLoading
                  : PredictedOutcome::RejectLinking;
  P.Error = Abort->Kind;
  P.Message = Abort->Message;
  return P;
}

StartupPrediction
StaticAnalyzer::predictStartupOutcome(const std::string &Name,
                                      const Bytes &Data) const {
  return predictionFrom(simulate(Name, &Data));
}

void StaticAnalyzer::addEnvironmentClass(const std::string &Name,
                                         Bytes Data) {
  // Capture the hierarchy edges this redefinition rewires before the
  // caches forget them: sibling sets keyed off both the old and the
  // new parent change. Only needed once typed holes are in play --
  // any sibling query builds the children index, which parses every
  // env class into EnvCache, so the old parent is always on hand.
  std::string OldParent;
  std::string NewParent;
  if (Children || !HoleMemos.empty()) {
    if (auto CacheIt = EnvCache.find(Name);
        CacheIt != EnvCache.end() && CacheIt->second.CF)
      OldParent = CacheIt->second.CF->SuperClass;
    if (auto Parsed = parseClassFile(Data); Parsed.ok())
      NewParent = Parsed.take().SuperClass;
  }

  Env.add(Name, std::move(Data));
  EnvCache.erase(Name);
  // Touched records every environment lookup -- hits and misses alike
  // -- so "Touched contains Name" is exactly "this walk could now
  // resolve differently".
  for (auto It = Memo.begin(); It != Memo.end();) {
    if (It->second.Touched.contains(Name))
      It = Memo.erase(It);
    else
      ++It;
  }
  // Same contract for hole memos, plus the sibling dimension: a hole
  // list is stale when its extraction ever queried the children of the
  // class's old or new superclass.
  for (auto It = HoleMemos.begin(); It != HoleMemos.end();) {
    const HoleMemo &M = It->second;
    bool Stale = M.Touched.contains(Name) ||
                 (!OldParent.empty() && M.SiblingParents.contains(OldParent)) ||
                 (!NewParent.empty() && M.SiblingParents.contains(NewParent));
    if (Stale)
      It = HoleMemos.erase(It);
    else
      ++It;
  }
  if (Children) {
    if (!OldParent.empty()) {
      auto It = Children->find(OldParent);
      if (It != Children->end())
        std::erase(It->second, Name);
    }
    if (!NewParent.empty()) {
      std::vector<std::string> &Kids = (*Children)[NewParent];
      auto Pos = std::lower_bound(Kids.begin(), Kids.end(), Name);
      if (Pos == Kids.end() || *Pos != Name)
        Kids.insert(Pos, Name);
    }
  }
}

const std::map<std::string, std::vector<std::string>> &
StaticAnalyzer::childrenIndex() const {
  if (!Children) {
    Children.emplace();
    // names() is sorted, so every child list comes out sorted too.
    for (const std::string &Name : Env.names()) {
      const EnvClassInfo &Info = envClassInfo(Name);
      if (Info.CF && !Info.CF->SuperClass.empty())
        (*Children)[Info.CF->SuperClass].push_back(Name);
    }
  }
  return *Children;
}

HoleEnv StaticAnalyzer::holeEnv(std::set<std::string> *Touched,
                                std::set<std::string> *SiblingParents) const {
  HoleEnv E;
  E.Siblings = [this, Touched,
                SiblingParents](const std::string &Name) {
    if (Touched)
      Touched->insert(Name);
    const EnvClassInfo &Info = envClassInfo(Name);
    if (!Info.CF || Info.CF->SuperClass.empty())
      return std::vector<std::string>();
    const std::string &Parent = Info.CF->SuperClass;
    if (SiblingParents)
      SiblingParents->insert(Parent);
    std::vector<std::string> Out;
    auto It = childrenIndex().find(Parent);
    if (It != childrenIndex().end())
      for (const std::string &Kid : It->second)
        if (Kid != Name)
          Out.push_back(Kid);
    return Out;
  };
  return E;
}

const TypedHoleList &
StaticAnalyzer::typedHoles(const std::string &Name) const {
  auto It = HoleMemos.find(Name);
  if (It != HoleMemos.end())
    return It->second.Holes;
  HoleMemo Entry;
  Entry.Touched.insert(Name);
  const EnvClassInfo &Info = envClassInfo(Name);
  if (Info.CF)
    Entry.Holes = extractTypedHoles(
        *Info.CF, holeEnv(&Entry.Touched, &Entry.SiblingParents));
  return HoleMemos.emplace(Name, std::move(Entry)).first->second.Holes;
}

TypedHoleList StaticAnalyzer::typedHolesFor(const std::string &Name,
                                            const Bytes &Data) const {
  (void)Name; // The overlay name never feeds sibling queries: holes
              // skip self-references, so only referenced classes --
              // which live in the environment -- are looked up.
  auto Parsed = parseClassFile(Data);
  if (!Parsed.ok())
    return {};
  ClassFile CF = Parsed.take();
  return extractTypedHoles(CF, holeEnv(nullptr, nullptr));
}

//===----------------------------------------------------------------------===//
// Lint passes
//===----------------------------------------------------------------------===//

void StaticAnalyzer::runCpGraphPass(const ClassFile &CF,
                                    std::vector<Diagnostic> &Out) const {
  std::vector<Diagnostic> Findings = CpGraph::build(CF).check();
  Out.insert(Out.end(), std::make_move_iterator(Findings.begin()),
             std::make_move_iterator(Findings.end()));
}

void StaticAnalyzer::runFormatPass(const ClassFile &CF,
                                   std::vector<Diagnostic> &Out) const {
  // The same walk the VM's loading phase runs, but exhaustively: every
  // failure, not just the first. Message strings are identical by
  // construction, which the superset test pins.
  runFormatChecks(CF, Policy, nullptr, [&](const CheckFailure &Failure) {
    Diagnostic D;
    D.Pass = PassId::Format;
    D.Severity = DiagSeverity::Error;
    D.Location = DiagLocation::none();
    D.Message = Failure.Message;
    Out.push_back(std::move(D));
    return true;
  });
}

void StaticAnalyzer::runCodeShapePass(const ClassFile &CF,
                                      std::vector<Diagnostic> &Out) const {
  for (const MethodInfo &M : CF.Methods) {
    if (!M.Code)
      continue;
    auto Add = [&](DiagSeverity Severity, uint32_t Offset,
                   std::string Message) {
      Diagnostic D;
      D.Pass = PassId::CodeShape;
      D.Severity = Severity;
      D.Location = DiagLocation::bytecode(M.Name, M.Descriptor, Offset);
      D.Message = std::move(Message);
      Out.push_back(std::move(D));
    };

    if (M.Code->Code.empty()) {
      Add(DiagSeverity::Error, 0, "code array is empty");
      continue;
    }

    // Decode every instruction; a malformed encoding ends the method's
    // walk (nothing beyond it has defined instruction boundaries).
    std::map<uint32_t, Insn> Insns;
    bool Decodable = true;
    {
      InsnDecoder Decoder(M.Code->Code);
      Insn I;
      while (Decoder.decodeNext(I))
        Insns[I.Offset] = I;
      if (!Decoder.valid()) {
        Add(DiagSeverity::Error, Decoder.position(),
            "malformed bytecode at offset " +
                std::to_string(Decoder.position()));
        Decodable = false;
      }
    }

    // Branch targets and switch-free control flow.
    for (const auto &[Offset, I] : Insns) {
      bool IsBranch = (I.Op >= OP_ifeq && I.Op <= OP_jsr) ||
                      I.Op == OP_ifnull || I.Op == OP_ifnonnull ||
                      I.Op == OP_goto_w;
      if (IsBranch && !Insns.contains(static_cast<uint32_t>(I.Operand1)))
        Add(DiagSeverity::Error, Offset,
            "branch target " + std::to_string(I.Operand1) +
                " is not an instruction start");
    }

    // Exception-table shape.
    for (const ExceptionTableEntry &E : M.Code->ExceptionTable) {
      bool Malformed = E.StartPc >= E.EndPc ||
                       E.EndPc > M.Code->Code.size() ||
                       !Insns.contains(E.StartPc) || !Insns.contains(E.HandlerPc);
      if (Malformed)
        Add(DiagSeverity::Error, E.StartPc,
            "malformed exception table entry [" +
                std::to_string(E.StartPc) + ", " + std::to_string(E.EndPc) +
                ") -> " + std::to_string(E.HandlerPc));
    }

    // Constant-pool operand tags per opcode (report all, keep going).
    for (const auto &[Offset, I] : Insns) {
      uint16_t Index = static_cast<uint16_t>(I.Operand1);
      auto TagOf = [&](uint16_t Idx) {
        return CF.CP.isValidIndex(Idx) ? CF.CP.at(Idx).Tag : CpTag::Invalid;
      };
      CpTag Tag = TagOf(Index);
      auto Complain = [&](const std::string &Expected) {
        Add(DiagSeverity::Error, Offset,
            std::string(opcodeName(I.Op)) + " operand #" +
                std::to_string(Index) + " is not " + Expected);
      };
      switch (I.Op) {
      case OP_ldc:
      case OP_ldc_w:
        if (Tag != CpTag::Integer && Tag != CpTag::Float &&
            Tag != CpTag::String && Tag != CpTag::Class)
          Complain("a loadable single-slot constant");
        break;
      case OP_ldc2_w:
        if (Tag != CpTag::Long && Tag != CpTag::Double)
          Complain("a long or double constant");
        break;
      case OP_getstatic:
      case OP_putstatic:
      case OP_getfield:
      case OP_putfield:
        if (Tag != CpTag::Fieldref)
          Complain("a CONSTANT_Fieldref");
        break;
      case OP_invokevirtual:
      case OP_invokespecial:
      case OP_invokestatic:
        if (Tag != CpTag::Methodref && Tag != CpTag::InterfaceMethodref)
          Complain("a method reference");
        break;
      case OP_invokeinterface:
        if (Tag != CpTag::InterfaceMethodref)
          Complain("a CONSTANT_InterfaceMethodref");
        break;
      case OP_new:
      case OP_anewarray:
      case OP_checkcast:
      case OP_instanceof:
      case OP_multianewarray:
        if (Tag != CpTag::Class)
          Complain("a CONSTANT_Class");
        break;
      default:
        break;
      }
    }

    if (!Decodable)
      continue;

    // Abstract stack-shape walk over the shared lattice's depth table
    // (the same insnStackEffect the verifier's pre-pass uses). First
    // inconsistency ends the method's walk; later methods still run.
    MethodDescriptor MD;
    if (!parseMethodDescriptor(M.Descriptor, MD))
      continue; // The format pass already reported the descriptor.
    int ArgSlots = MD.argSlots() + (M.isStatic() ? 0 : 1);
    if (ArgSlots > M.Code->MaxLocals) {
      Add(DiagSeverity::Error, 0, "arguments exceed max_locals");
      continue;
    }

    std::map<uint32_t, int> DepthAt;
    std::deque<uint32_t> Worklist;
    DepthAt[0] = 0;
    Worklist.push_back(0);
    for (const ExceptionTableEntry &E : M.Code->ExceptionTable) {
      if (!Insns.contains(E.HandlerPc))
        continue;
      DepthAt[E.HandlerPc] = 1;
      Worklist.push_back(E.HandlerPc);
    }
    size_t Steps = 0;
    bool WalkFailed = false;
    while (!Worklist.empty() && !WalkFailed) {
      if (++Steps > 4 * Insns.size() + 64)
        break;
      uint32_t Offset = Worklist.front();
      Worklist.pop_front();
      auto InsnIt = Insns.find(Offset);
      if (InsnIt == Insns.end())
        continue;
      const Insn &I = InsnIt->second;
      int Pops = 0, Pushes = 0;
      if (!insnStackEffect(CF, I, Pops, Pushes))
        break; // Unknown effect (already diagnosed via operand checks).
      int Depth = DepthAt[Offset];
      if (Depth < Pops) {
        Add(DiagSeverity::Error, Offset,
            "operand stack underflow: depth " + std::to_string(Depth) +
                ", " + std::string(opcodeName(I.Op)) + " pops " +
                std::to_string(Pops));
        break;
      }
      int Next = Depth - Pops + Pushes;
      if (Next > M.Code->MaxStack) {
        Add(DiagSeverity::Error, Offset,
            "operand stack overflow: depth " + std::to_string(Next) +
                " exceeds max_stack " + std::to_string(M.Code->MaxStack));
        break;
      }
      bool LocalOp = (I.Op >= OP_iload && I.Op <= OP_aload) ||
                     (I.Op >= OP_istore && I.Op <= OP_astore) ||
                     I.Op == OP_iinc;
      if (LocalOp && I.Operand1 >= M.Code->MaxLocals) {
        Add(DiagSeverity::Error, Offset,
            "local variable index " + std::to_string(I.Operand1) +
                " out of range (max_locals " +
                std::to_string(M.Code->MaxLocals) + ")");
        break;
      }
      auto Propagate = [&](uint32_t Succ) {
        auto It = DepthAt.find(Succ);
        if (It == DepthAt.end()) {
          DepthAt[Succ] = Next;
          Worklist.push_back(Succ);
        } else if (It->second != Next) {
          Add(DiagSeverity::Error, Succ,
              "inconsistent stack depth at join: " +
                  std::to_string(It->second) + " vs " +
                  std::to_string(Next));
          WalkFailed = true;
        }
      };
      bool IsBranch = (I.Op >= OP_ifeq && I.Op <= OP_jsr) ||
                      I.Op == OP_ifnull || I.Op == OP_ifnonnull ||
                      I.Op == OP_goto_w;
      bool Terminates = (I.Op >= OP_ireturn && I.Op <= OP_return) ||
                        I.Op == OP_athrow || I.Op == OP_goto ||
                        I.Op == OP_goto_w || I.Op == OP_ret ||
                        I.Op == OP_tableswitch || I.Op == OP_lookupswitch;
      if (IsBranch && Insns.contains(static_cast<uint32_t>(I.Operand1)))
        Propagate(static_cast<uint32_t>(I.Operand1));
      if (!Terminates && !WalkFailed) {
        uint32_t FallThrough = Offset + I.Length;
        if (Insns.contains(FallThrough)) {
          Propagate(FallThrough);
        } else {
          Add(DiagSeverity::Error, Offset,
              "execution falls off the end of the code");
          break;
        }
      }
    }
  }
}

void StaticAnalyzer::runTypeCheckPass(
    const ClassFile &CF, const std::string &Name, const Bytes *Data,
    std::vector<Diagnostic> &Out,
    std::optional<CheckFailure> *FirstVerifyFailure) const {
  // Full dataflow verification of every method -- the VM stops at the
  // first failing method; the analyzer reports each method's failure.
  if (FirstVerifyFailure)
    FirstVerifyFailure->reset();
  SimState Sim(*this);
  if (Data) {
    Sim.OverlayName = &Name;
    Sim.OverlayData = Data;
    Sim.OverlayCF = &CF;
  }
  // Self-references resolve to the class under analysis even when its
  // recorded name differs from the lookup name.
  ClassLookupFn Lookup = [&](const std::string &N) -> const ClassFile * {
    if (N == CF.ThisClass)
      return &CF;
    return Sim.lookupClassFile(N);
  };
  for (const MethodInfo &M : CF.Methods) {
    if (auto Failure = verifyMethod(CF, M, Policy, Lookup, nullptr)) {
      if (FirstVerifyFailure && !*FirstVerifyFailure)
        *FirstVerifyFailure = *Failure;
      Diagnostic D;
      D.Pass = PassId::TypeCheck;
      D.Severity = DiagSeverity::Error;
      D.Location = DiagLocation::method(M.Name, M.Descriptor);
      D.Message = Failure->Message;
      Out.push_back(std::move(D));
    }
  }
}

void StaticAnalyzer::runHierarchyPass(const ClassFile &CF,
                                      const std::string &Name,
                                      const std::optional<SimAbort> &Abort,
                                      std::vector<Diagnostic> &Out) const {
  auto Add = [&](DiagSeverity Severity, std::string Message) {
    Diagnostic D;
    D.Pass = PassId::Hierarchy;
    D.Severity = Severity;
    D.Location = DiagLocation::none();
    D.Message = std::move(Message);
    Out.push_back(std::move(D));
  };

  // Lookups below run against the plain environment: the class's own
  // file is already in hand, and its supertypes come from Env.
  SimState Sim(*this);

  // Existence and kind of every direct supertype.
  auto Inspect = [&](const std::string &SuperName, bool AsInterface) {
    if (SuperName == Name || SuperName == CF.ThisClass) {
      Add(DiagSeverity::Error,
          "class " + CF.ThisClass + " is its own supertype");
      return;
    }
    const ClassFile *Super = Sim.lookupClassFile(SuperName);
    if (!Super) {
      Add(DiagSeverity::Error,
          std::string(AsInterface ? "interface " : "superclass ") +
              SuperName + " cannot be resolved on the class path");
      return;
    }
    bool IsInterface = (Super->AccessFlags & ACC_INTERFACE) != 0;
    if (AsInterface && !IsInterface)
      Add(DiagSeverity::Error, "class " + CF.ThisClass +
                                   " implements non-interface " + SuperName);
    if (!AsInterface && IsInterface && !CF.isInterface())
      Add(DiagSeverity::Error, "class " + CF.ThisClass + " has interface " +
                                   SuperName + " as super class");
    if (!AsInterface && (Super->AccessFlags & ACC_FINAL))
      Add(DiagSeverity::Error,
          "Cannot inherit from final class " + SuperName);
  };
  if (!CF.SuperClass.empty())
    Inspect(CF.SuperClass, false);
  for (const std::string &Iface : CF.Interfaces)
    Inspect(Iface, true);

  // Superclass-chain circularity (bounded walk, like the VM's
  // LoadingInProgress detection but without loading).
  {
    std::set<std::string> Seen{CF.ThisClass};
    std::string Cur = CF.SuperClass;
    for (int Depth = 0; !Cur.empty() && Depth < 64; ++Depth) {
      if (!Seen.insert(Cur).second) {
        Add(DiagSeverity::Error,
            "superclass chain of " + CF.ThisClass + " cycles at " + Cur);
        break;
      }
      const ClassFile *Super = Sim.lookupClassFile(Cur);
      if (!Super)
        break;
      Cur = Super->SuperClass;
    }
  }

  // Throws-clause accessibility (Problem 3), policy-gated like the VM.
  if (Policy.CheckThrowsAccessibility) {
    for (const MethodInfo &M : CF.Methods) {
      for (const std::string &ExcName : M.Exceptions) {
        const ClassFile *Exc = Sim.lookupClassFile(ExcName);
        if (!Exc)
          continue;
        bool SamePackage = SimState::packagePrefix(ExcName) ==
                           SimState::packagePrefix(CF.ThisClass);
        if (!(Exc->AccessFlags & ACC_PUBLIC) && !SamePackage)
          Add(DiagSeverity::Error,
              "class " + CF.ThisClass + " cannot access class " + ExcName +
                  " declared in throws clause");
      }
    }
  }

  // A chain failure the per-class passes cannot see (the culprit is a
  // supertype, not this class) surfaces as one hierarchy finding.
  if (Abort && Abort->Culprit != Name && Abort->Culprit != CF.ThisClass)
    Add(DiagSeverity::Error, "supertype chain: " + Abort->Message +
                                 " (in " + Abort->Culprit + ")");
}

//===----------------------------------------------------------------------===//
// Entry points
//===----------------------------------------------------------------------===//

AnalysisReport StaticAnalyzer::analyzeClass(const std::string &Name,
                                            const Bytes &Data) const {
  AnalysisReport Report;
  Report.ClassName = Name;

  auto Parsed = parseClassFile(Data);
  if (!Parsed.ok()) {
    Diagnostic D;
    D.Pass = PassId::Parse;
    D.Severity = DiagSeverity::Error;
    D.Location = DiagLocation::none();
    D.Message = Parsed.error();
    Report.Diagnostics.push_back(std::move(D));
    Report.Prediction.Outcome = PredictedOutcome::RejectLoading;
    Report.Prediction.Error = JvmErrorKind::ClassFormatError;
    Report.Prediction.Message = Parsed.error();
    return Report;
  }
  ClassFile CF = Parsed.take();
  Report.Parsed = true;

  if (CF.ThisClass != Name) {
    Diagnostic D;
    D.Pass = PassId::Parse;
    D.Severity = DiagSeverity::Error;
    D.Location = DiagLocation::none();
    D.Message =
        "class file for " + Name + " has wrong name " + CF.ThisClass;
    Report.Diagnostics.push_back(std::move(D));
  }

  runCpGraphPass(CF, Report.Diagnostics);
  runFormatPass(CF, Report.Diagnostics);
  runCodeShapePass(CF, Report.Diagnostics);
  std::optional<CheckFailure> FirstVerifyFailure;
  runTypeCheckPass(CF, Name, &Data, Report.Diagnostics, &FirstVerifyFailure);

  std::optional<SimAbort> Abort =
      simulate(Name, &Data, &CF, &FirstVerifyFailure);
  runHierarchyPass(CF, Name, Abort, Report.Diagnostics);
  Report.Prediction = predictionFrom(Abort);
  return Report;
}

AnalysisReport StaticAnalyzer::analyzeClass(const std::string &Name) const {
  const Bytes *Data = Env.lookup(Name);
  if (!Data) {
    AnalysisReport Report;
    Report.ClassName = Name;
    Diagnostic D;
    D.Pass = PassId::Parse;
    D.Severity = DiagSeverity::Error;
    D.Location = DiagLocation::none();
    D.Message = "class " + Name + " not found on class path";
    Report.Diagnostics.push_back(std::move(D));
    Report.Prediction.Outcome = PredictedOutcome::RejectLoading;
    Report.Prediction.Error = JvmErrorKind::NoClassDefFoundError;
    Report.Prediction.Message = Name;
    return Report;
  }
  return analyzeClass(Name, *Data);
}

std::string StaticAnalyzer::renderAnnotated(const AnalysisReport &Report,
                                            const Bytes &Data) {
  std::string Out;
  auto Parsed = parseClassFile(Data);
  if (Parsed.ok())
    Out += printClassFile(*Parsed);
  else
    Out += "<unparseable class file: " + Parsed.error() + ">\n";

  Out += "\nAnalysis of " + Report.ClassName + ":\n";
  Out += "  prediction: ";
  Out += predictedOutcomeName(Report.Prediction.Outcome);
  if (Report.Prediction.Outcome != PredictedOutcome::PassStatic) {
    Out += " (";
    Out += errorKindName(Report.Prediction.Error);
    Out += ": " + Report.Prediction.Message + ")";
  }
  Out += "\n";
  if (Report.Diagnostics.empty()) {
    Out += "  no findings\n";
    return Out;
  }
  for (const Diagnostic &D : Report.Diagnostics) {
    Out += "  [";
    Out += passIdName(D.Pass);
    Out += "/";
    Out += severityName(D.Severity);
    Out += "] ";
    std::string Loc = D.Location.toString();
    if (!Loc.empty())
      Out += Loc + ": ";
    Out += D.Message + "\n";
  }
  return Out;
}
