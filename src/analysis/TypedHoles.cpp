//===- analysis/TypedHoles.cpp - Typed mutation sites --------------------===//
//
// Part of classfuzz-cpp (PLDI 2016 classfuzz reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/TypedHoles.h"

#include "analysis/CpGraph.h"
#include "classfile/ClassFile.h"
#include "classfile/Descriptor.h"
#include "jvm/VerifierLattice.h"
#include "telemetry/Telemetry.h"

#include <algorithm>
#include <set>

using namespace classfuzz;

namespace {

/// Caps every hole's near-miss set so sibling-rich hierarchies (the
/// runtime library roots dozens of classes under Object) stay compact.
constexpr size_t MaxAlternatives = 8;

void capAlternatives(std::vector<std::string> &Alts) {
  if (Alts.size() > MaxAlternatives)
    Alts.resize(MaxAlternatives);
}

/// The confusable twin of a loadable constant tag: same operand width
/// (Integer/Float share one slot, Long/Double two) or same symbolic
/// payload (String/Class both name a Utf8).
const char *confusableTag(CpTag Tag) {
  switch (Tag) {
  case CpTag::Integer:
    return "Float";
  case CpTag::Float:
    return "Integer";
  case CpTag::Long:
    return "Double";
  case CpTag::Double:
    return "Long";
  case CpTag::String:
    return "Class";
  case CpTag::Class:
    return "String";
  default:
    return nullptr;
  }
}

/// Lattice-adjacent / plausibly-confused near-miss types for one
/// descriptor position. Deterministic; never yields \p T itself.
std::vector<JType> nearMissTypes(const JType &T, const HoleEnv &Env) {
  std::vector<JType> Out;
  if (T.ArrayDims > 0) {
    JType Fewer = T;
    Fewer.ArrayDims = static_cast<uint8_t>(T.ArrayDims - 1);
    if (!(Fewer.ArrayDims == 0 && Fewer.Kind == TypeKind::Void))
      Out.push_back(Fewer);
    JType More = T;
    More.ArrayDims = static_cast<uint8_t>(T.ArrayDims + 1);
    Out.push_back(More);
    return Out;
  }
  switch (T.Kind) {
  case TypeKind::Void:
    Out.push_back(intType());
    break;
  case TypeKind::Boolean:
    Out.push_back(JType{TypeKind::Byte, 0, ""});
    Out.push_back(intType());
    break;
  case TypeKind::Byte:
    Out.push_back(JType{TypeKind::Short, 0, ""});
    Out.push_back(JType{TypeKind::Boolean, 0, ""});
    break;
  case TypeKind::Char:
    Out.push_back(JType{TypeKind::Short, 0, ""});
    Out.push_back(intType());
    break;
  case TypeKind::Short:
    Out.push_back(intType());
    Out.push_back(JType{TypeKind::Byte, 0, ""});
    break;
  case TypeKind::Int:
    Out.push_back(JType{TypeKind::Long, 0, ""});
    Out.push_back(JType{TypeKind::Float, 0, ""});
    Out.push_back(JType{TypeKind::Short, 0, ""});
    break;
  case TypeKind::Long:
    Out.push_back(intType());
    Out.push_back(JType{TypeKind::Double, 0, ""});
    break;
  case TypeKind::Float:
    Out.push_back(JType{TypeKind::Double, 0, ""});
    Out.push_back(intType());
    break;
  case TypeKind::Double:
    Out.push_back(JType{TypeKind::Float, 0, ""});
    Out.push_back(JType{TypeKind::Long, 0, ""});
    break;
  case TypeKind::Reference: {
    if (T.ClassName != "java/lang/Object")
      Out.push_back(refType("java/lang/Object"));
    std::vector<std::string> Sibs = Env.Siblings(T.ClassName);
    for (size_t I = 0; I != Sibs.size() && I != 2; ++I)
      Out.push_back(refType(Sibs[I]));
    Out.push_back(arrayOf(T));
    break;
  }
  case TypeKind::Array:
    break;
  }
  return Out;
}

/// Rebuilds \p MD with position \p Which (params first, then the
/// return type at index Params.size()) replaced by \p NewType.
std::string withPosition(const MethodDescriptor &MD, size_t Which,
                         const JType &NewType) {
  MethodDescriptor Copy = MD;
  if (Which < Copy.Params.size())
    Copy.Params[Which] = NewType;
  else
    Copy.ReturnType = NewType;
  return Copy.toDescriptor();
}

void pushUnique(std::vector<std::string> &Alts, const std::string &Original,
                std::string Candidate) {
  if (Candidate == Original)
    return;
  if (std::find(Alts.begin(), Alts.end(), Candidate) != Alts.end())
    return;
  Alts.push_back(std::move(Candidate));
}

/// Near-miss verification kinds for a local slot: category-1 pairs
/// confuse with each other, category-2 pairs with each other, and
/// references with int (aload <-> iload is the classic verifier probe).
std::vector<std::string> adjacentVKinds(VKind K) {
  switch (K) {
  case VKind::Int:
    return {"float", "reference"};
  case VKind::Float:
    return {"int"};
  case VKind::Long:
    return {"double"};
  case VKind::Double:
    return {"long"};
  case VKind::Ref:
  case VKind::Null:
    return {"int"};
  default:
    return {};
  }
}

void extractCpHoles(const ClassFile &CF, const HoleEnv &Env,
                    TypedHoleList &Out) {
  CpGraph Graph = CpGraph::build(CF);

  // Tag-confusion holes: loadable constants referenced from bytecode.
  std::set<uint16_t> SeenRoots;
  for (uint16_t Root : Graph.bytecodeRoots()) {
    if (!CF.CP.isValidIndex(Root) || !SeenRoots.insert(Root).second)
      continue;
    CpTag Tag = CF.CP.at(Root).Tag;
    const char *Twin = confusableTag(Tag);
    if (!Twin)
      continue;
    TypedHole H;
    H.Kind = HoleKind::CpTagConfusion;
    H.Location = DiagLocation::cp(Root);
    H.Expected = cpTagName(Tag) + 9; // Skip the "CONSTANT_" prefix.
    H.Alternatives = {Twin};
    H.CpIndex = Root;
    Out.push_back(std::move(H));
  }

  // Sibling-class holes: every distinct class reference in the pool
  // with siblings in the env hierarchy (covers super, interfaces,
  // member refs, catch types, and class-operand bytecodes alike).
  std::set<std::string> SeenClasses;
  for (uint16_t I = 1; I != CF.CP.count(); ++I) {
    if (CF.CP.at(I).Tag != CpTag::Class)
      continue;
    Result<std::string> Name = CF.CP.getClassName(I);
    if (!Name || Name->empty() || (*Name)[0] == '[' || *Name == CF.ThisClass)
      continue;
    if (!SeenClasses.insert(*Name).second)
      continue;
    std::vector<std::string> Sibs = Env.Siblings(*Name);
    if (Sibs.empty())
      continue;
    capAlternatives(Sibs);
    TypedHole H;
    H.Kind = HoleKind::SiblingClass;
    H.Location = DiagLocation::cp(I);
    H.Expected = *Name;
    H.Alternatives = std::move(Sibs);
    H.CpIndex = I;
    Out.push_back(std::move(H));
  }
}

void extractFieldHoles(const ClassFile &CF, const HoleEnv &Env,
                       TypedHoleList &Out) {
  for (const FieldInfo &F : CF.Fields) {
    JType T;
    if (!parseFieldDescriptor(F.Descriptor, T))
      continue;
    TypedHole H;
    H.Kind = HoleKind::DescriptorType;
    H.Location = DiagLocation::field(F.Name, F.Descriptor);
    H.Expected = F.Descriptor;
    H.MemberName = F.Name;
    H.MemberDesc = F.Descriptor;
    for (const JType &Alt : nearMissTypes(T, Env))
      pushUnique(H.Alternatives, H.Expected, Alt.toDescriptor());
    capAlternatives(H.Alternatives);
    if (!H.Alternatives.empty())
      Out.push_back(std::move(H));
  }
}

void extractMethodHoles(const ClassFile &CF, const HoleEnv &Env,
                        TypedHoleList &Out) {
  for (const MethodInfo &M : CF.Methods) {
    MethodDescriptor MD;
    if (!parseMethodDescriptor(M.Descriptor, MD))
      continue;

    // Type near-misses: one hole per member, alternatives drawn from
    // every descriptor position (params and return).
    TypedHole TypeHole;
    TypeHole.Kind = HoleKind::DescriptorType;
    TypeHole.Location = DiagLocation::method(M.Name, M.Descriptor);
    TypeHole.Expected = M.Descriptor;
    TypeHole.MemberName = M.Name;
    TypeHole.MemberDesc = M.Descriptor;
    for (size_t Pos = 0; Pos != MD.Params.size() + 1; ++Pos) {
      const JType &T =
          Pos < MD.Params.size() ? MD.Params[Pos] : MD.ReturnType;
      for (const JType &Alt : nearMissTypes(T, Env))
        pushUnique(TypeHole.Alternatives, TypeHole.Expected,
                   withPosition(MD, Pos, Alt));
      if (TypeHole.Alternatives.size() >= MaxAlternatives)
        break;
    }
    capAlternatives(TypeHole.Alternatives);
    if (!TypeHole.Alternatives.empty())
      Out.push_back(std::move(TypeHole));

    // Arity near-misses: drop the last parameter, duplicate the first,
    // append a fresh int.
    TypedHole ArityHole;
    ArityHole.Kind = HoleKind::DescriptorArity;
    ArityHole.Location = DiagLocation::method(M.Name, M.Descriptor);
    ArityHole.Expected = M.Descriptor;
    ArityHole.MemberName = M.Name;
    ArityHole.MemberDesc = M.Descriptor;
    if (!MD.Params.empty()) {
      MethodDescriptor Dropped = MD;
      Dropped.Params.pop_back();
      pushUnique(ArityHole.Alternatives, M.Descriptor,
                 Dropped.toDescriptor());
      MethodDescriptor Doubled = MD;
      Doubled.Params.insert(Doubled.Params.begin(), MD.Params.front());
      pushUnique(ArityHole.Alternatives, M.Descriptor,
                 Doubled.toDescriptor());
    }
    MethodDescriptor Extended = MD;
    Extended.Params.push_back(intType());
    pushUnique(ArityHole.Alternatives, M.Descriptor,
               Extended.toDescriptor());
    if (!ArityHole.Alternatives.empty())
      Out.push_back(std::move(ArityHole));

    // Local-slot holes: the declared parameter slots, typed through
    // the verifier lattice ('this' stays untouched).
    if (M.Code) {
      int Slot = M.isStatic() ? 0 : 1;
      for (const JType &P : MD.Params) {
        VType V = vtypeFromJType(P);
        std::vector<std::string> Adjacent = adjacentVKinds(V.Kind);
        if (!Adjacent.empty()) {
          TypedHole H;
          H.Kind = HoleKind::LocalSlotType;
          H.Location = DiagLocation::bytecode(M.Name, M.Descriptor, 0);
          H.Expected = vkindName(V.Kind);
          H.Alternatives = std::move(Adjacent);
          H.MemberName = M.Name;
          H.MemberDesc = M.Descriptor;
          H.Slot = Slot;
          Out.push_back(std::move(H));
        }
        Slot += P.slotWidth();
      }
    }
  }
}

} // namespace

TypedHoleList classfuzz::extractTypedHoles(const ClassFile &CF,
                                           const HoleEnv &Env) {
  TypedHoleList Out;
  extractCpHoles(CF, Env, Out);
  extractFieldHoles(CF, Env, Out);
  extractMethodHoles(CF, Env, Out);
  std::stable_sort(Out.begin(), Out.end(),
                   [](const TypedHole &A, const TypedHole &B) {
                     std::string LA = A.Location.toString();
                     std::string LB = B.Location.toString();
                     if (LA != LB)
                       return LA < LB;
                     if (A.Kind != B.Kind)
                       return std::string(holeKindName(A.Kind)) <
                              holeKindName(B.Kind);
                     if (A.Expected != B.Expected)
                       return A.Expected < B.Expected;
                     return A.Slot < B.Slot;
                   });
  return Out;
}

std::string classfuzz::holeToJson(const std::string &ClassName,
                                  const TypedHole &Hole) {
  std::string J = "{\"class\":\"";
  J += telemetry::jsonEscape(ClassName);
  J += "\",\"kind\":\"";
  J += holeKindName(Hole.Kind);
  J += "\",\"location\":\"";
  J += telemetry::jsonEscape(Hole.Location.toString());
  J += "\",\"expected\":\"";
  J += telemetry::jsonEscape(Hole.Expected);
  J += "\",\"alternatives\":[";
  for (size_t I = 0; I != Hole.Alternatives.size(); ++I) {
    if (I)
      J += ',';
    J += '"';
    J += telemetry::jsonEscape(Hole.Alternatives[I]);
    J += '"';
  }
  J += "],\"member\":\"";
  J += telemetry::jsonEscape(Hole.MemberName);
  J += "\",\"slot\":";
  J += std::to_string(Hole.Slot);
  J += ",\"cp\":";
  J += std::to_string(Hole.CpIndex);
  J += '}';
  return J;
}

std::string classfuzz::holesToJsonl(const std::string &ClassName,
                                    const TypedHoleList &Holes) {
  std::string Out;
  for (const TypedHole &H : Holes) {
    Out += holeToJson(ClassName, H);
    Out += '\n';
  }
  return Out;
}
