//===- analysis/CpGraph.h - Constant-pool reference graph ----------------===//
//
// Part of classfuzz-cpp (PLDI 2016 classfuzz reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A typed reference graph over a class file's constant pool: every
/// entry's outgoing index edges (Class.name, ref.class,
/// ref.name_and_type, NameAndType.name/.descriptor, ...) with the tag
/// each edge is required to land on. Mutated pools routinely contain
/// dangling indices, type-confused targets (a Methodref whose
/// name_and_type slot holds an Integer), reference cycles, and dead
/// entries; the graph detects all of them and powers precise
/// diagnostics like "Methodref #14 -> NameAndType #9 has non-method
/// descriptor". Reachability is computed from the bytecode operands of
/// every method, since the parsed ClassFile model resolves structural
/// references (this/super/members) to strings eagerly.
///
//===----------------------------------------------------------------------===//

#ifndef CLASSFUZZ_ANALYSIS_CPGRAPH_H
#define CLASSFUZZ_ANALYSIS_CPGRAPH_H

#include "analysis/Diagnostics.h"
#include "classfile/ClassFile.h"

#include <cstdint>
#include <string>
#include <vector>

namespace classfuzz {

/// One typed edge of the constant-pool graph.
struct CpEdge {
  uint16_t From = 0;
  uint16_t To = 0;
  /// The tag the target must have for the source entry to resolve.
  CpTag ExpectedTag = CpTag::Utf8;
  /// Which slot of the source this edge is ("name", "class",
  /// "name_and_type", "descriptor", "string").
  const char *Role = "";
};

/// The constant-pool reference graph of one class file.
class CpGraph {
public:
  /// Builds the graph over \p CF's pool and collects the bytecode
  /// roots (constant-pool operands of every decodable instruction).
  static CpGraph build(const ClassFile &CF);

  const std::vector<CpEdge> &edges() const { return Edges; }

  /// Constant-pool indices referenced directly from bytecode operands.
  const std::vector<uint16_t> &bytecodeRoots() const { return Roots; }

  /// True when entry \p Index is reachable from any bytecode root.
  bool isReachable(uint16_t Index) const {
    return Index < Reachable.size() && Reachable[Index];
  }

  /// True when entry \p Index participates in a reference cycle.
  bool isOnCycle(uint16_t Index) const {
    return Index < OnCycle.size() && OnCycle[Index];
  }

  /// Runs every graph check -- dangling/type-confused edges, descriptor
  /// sanity in context, reference cycles, dead entries -- and returns
  /// all findings in deterministic order.
  std::vector<Diagnostic> check() const;

private:
  const ClassFile *CF = nullptr;
  std::vector<CpEdge> Edges;
  std::vector<uint16_t> Roots;
  std::vector<bool> Reachable;
  std::vector<bool> OnCycle;

  void computeReachability();
  void computeCycles();
};

} // namespace classfuzz

#endif // CLASSFUZZ_ANALYSIS_CPGRAPH_H
