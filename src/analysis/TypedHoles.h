//===- analysis/TypedHoles.h - Typed mutation sites ----------------------===//
//
// Part of classfuzz-cpp (PLDI 2016 classfuzz reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Typed-hole extraction: the analyzer pass that turns CpGraph + the
/// verifier lattice from a diagnoser into the campaign's steering
/// layer. A typed hole is one mutation site whose expected type the
/// spec pins down -- a constant-pool slot with a required tag, a
/// descriptor position, a local slot with a verification type, a class
/// reference with a known place in the env hierarchy -- together with
/// the *near-miss* alternatives a type-aware mutator should substitute
/// (wrong-but-plausible tag, off-by-one descriptor arity, sibling
/// class, lattice-adjacent verification type).
///
/// The data model in this header is deliberately link-free (plain
/// structs, no out-of-line members beyond what Diagnostics.h already
/// provides) so `src/mutation` can consume hole lists through
/// MutationContext without a dependency edge on cf_analysis; the
/// extraction itself (extractTypedHoles) is implemented in cf_analysis.
///
//===----------------------------------------------------------------------===//

#ifndef CLASSFUZZ_ANALYSIS_TYPEDHOLES_H
#define CLASSFUZZ_ANALYSIS_TYPEDHOLES_H

#include "analysis/Diagnostics.h"

#include <functional>
#include <string>
#include <vector>

namespace classfuzz {

struct ClassFile;

/// What kind of typed site a hole describes.
enum class HoleKind : uint8_t {
  CpTagConfusion,  ///< A loadable constant whose tag has a confusable twin.
  DescriptorArity, ///< A method descriptor with off-by-one arity near-misses.
  DescriptorType,  ///< A member descriptor position with near-miss types.
  SiblingClass,    ///< A class reference with siblings in the env hierarchy.
  LocalSlotType,   ///< A local slot with lattice-adjacent verification types.
};

inline constexpr size_t NumHoleKinds = 5;

/// Stable lowercase hole-kind name ("cp-tag-confusion", ...), used in
/// the JSONL rendering and the golden file.
inline const char *holeKindName(HoleKind K) {
  switch (K) {
  case HoleKind::CpTagConfusion:
    return "cp-tag-confusion";
  case HoleKind::DescriptorArity:
    return "descriptor-arity";
  case HoleKind::DescriptorType:
    return "descriptor-type";
  case HoleKind::SiblingClass:
    return "sibling-class";
  case HoleKind::LocalSlotType:
    return "local-slot-type";
  }
  return "?";
}

/// One typed mutation site.
struct TypedHole {
  HoleKind Kind = HoleKind::CpTagConfusion;
  /// Where the site is (cp index / member / bytecode anchor).
  DiagLocation Location;
  /// The type the spec expects here: a constant tag name ("Integer"),
  /// a full descriptor, an internal class name, or a verification-type
  /// name ("int", "reference", ...), depending on Kind.
  std::string Expected;
  /// Near-miss substitutions; every entry differs from Expected.
  std::vector<std::string> Alternatives;
  /// Member context for descriptor/local holes (name of the field or
  /// method the hole lives in; empty for class-level and cp holes).
  std::string MemberName;
  /// The member's original descriptor (parallel to MemberName).
  std::string MemberDesc;
  /// Local slot for LocalSlotType holes; -1 otherwise.
  int Slot = -1;
  /// Constant-pool index for cp-anchored holes; -1 otherwise.
  int CpIndex = -1;
};

using TypedHoleList = std::vector<TypedHole>;

/// The environment view hole extraction needs: just enough hierarchy
/// to compute sibling-class substitutions. Callbacks (instead of a
/// ClassPath) so the StaticAnalyzer can record touched-set membership
/// for memo invalidation while serving the queries from its own cache.
struct HoleEnv {
  /// Classes sharing \p Name's direct superclass, sorted, excluding
  /// \p Name itself; empty when \p Name is unknown or has no siblings.
  std::function<std::vector<std::string>(const std::string &Name)> Siblings;
};

/// Extracts every typed hole of \p CF against \p Env, in deterministic
/// order: sorted by (location, kind, expected). Holes whose near-miss
/// set would be empty are not emitted.
TypedHoleList extractTypedHoles(const ClassFile &CF, const HoleEnv &Env);

/// Renders one hole as a stable single-line JSON object:
/// {"class":...,"kind":...,"location":...,"expected":...,
///  "alternatives":[...],"member":...,"slot":...,"cp":...}.
std::string holeToJson(const std::string &ClassName, const TypedHole &Hole);

/// Renders a whole hole list as JSONL (one holeToJson line per hole,
/// each '\n'-terminated) -- the `classfuzz analyze --holes` format.
std::string holesToJsonl(const std::string &ClassName,
                         const TypedHoleList &Holes);

} // namespace classfuzz

#endif // CLASSFUZZ_ANALYSIS_TYPEDHOLES_H
