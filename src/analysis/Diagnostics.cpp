//===- analysis/Diagnostics.cpp -------------------------------------------===//

#include "analysis/Diagnostics.h"

#include "telemetry/Telemetry.h"

using namespace classfuzz;

const char *classfuzz::passIdName(PassId Pass) {
  switch (Pass) {
  case PassId::Parse:
    return "parse";
  case PassId::CpGraph:
    return "cpgraph";
  case PassId::Format:
    return "format";
  case PassId::CodeShape:
    return "codeshape";
  case PassId::TypeCheck:
    return "typecheck";
  case PassId::Hierarchy:
    return "hierarchy";
  }
  return "?";
}

const char *classfuzz::severityName(DiagSeverity Severity) {
  switch (Severity) {
  case DiagSeverity::Info:
    return "info";
  case DiagSeverity::Warning:
    return "warning";
  case DiagSeverity::Error:
    return "error";
  }
  return "?";
}

DiagLocation DiagLocation::none() { return DiagLocation{}; }

DiagLocation DiagLocation::cp(uint16_t Index) {
  DiagLocation L;
  L.LocKind = Kind::CpIndex;
  L.CpIndex = Index;
  return L;
}

DiagLocation DiagLocation::field(const std::string &Name,
                                 const std::string &Descriptor) {
  DiagLocation L;
  L.LocKind = Kind::Field;
  L.Member = Name + ":" + Descriptor;
  return L;
}

DiagLocation DiagLocation::method(const std::string &Name,
                                  const std::string &Descriptor) {
  DiagLocation L;
  L.LocKind = Kind::Method;
  L.Member = Name + Descriptor;
  return L;
}

DiagLocation DiagLocation::bytecode(const std::string &MethodName,
                                    const std::string &Descriptor,
                                    uint32_t Offset) {
  DiagLocation L;
  L.LocKind = Kind::Bytecode;
  L.Member = MethodName + Descriptor;
  L.BytecodeOffset = Offset;
  return L;
}

std::string DiagLocation::toString() const {
  switch (LocKind) {
  case Kind::None:
    return "";
  case Kind::CpIndex:
    return "cp#" + std::to_string(CpIndex);
  case Kind::Field:
    return "field " + Member;
  case Kind::Method:
    return "method " + Member;
  case Kind::Bytecode:
    return "method " + Member + " @" + std::to_string(BytecodeOffset);
  }
  return "";
}

std::string Diagnostic::toJson() const {
  std::string J = "{\"pass\":\"";
  J += passIdName(Pass);
  J += "\",\"severity\":\"";
  J += severityName(Severity);
  J += "\",\"location\":\"";
  J += telemetry::jsonEscape(Location.toString());
  J += "\",\"message\":\"";
  J += telemetry::jsonEscape(Message);
  J += "\"}";
  return J;
}

std::array<size_t, NumPassIds>
classfuzz::countByPass(const std::vector<Diagnostic> &Diagnostics) {
  std::array<size_t, NumPassIds> Counts{};
  for (const Diagnostic &D : Diagnostics) {
    size_t Index = static_cast<size_t>(D.Pass);
    if (Index < NumPassIds)
      ++Counts[Index];
  }
  return Counts;
}
