//===- analysis/Diagnostics.h - Structured analyzer findings -------------===//
//
// Part of classfuzz-cpp (PLDI 2016 classfuzz reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The static analyzer's finding model. Unlike the VM pipeline --
/// FormatChecker/Verifier latch the *first* failure because a real JVM
/// raises one error and stops -- the analyzer reports *all* findings as
/// structured Diagnostics: which pass found it, how severe it is, where
/// it is (constant-pool index, member, or bytecode offset), and the
/// human-readable message. Rendering (JSON lines, javap-style
/// annotations) is deterministic so analyzer output can be diffed
/// byte-for-byte across runs and job counts.
///
//===----------------------------------------------------------------------===//

#ifndef CLASSFUZZ_ANALYSIS_DIAGNOSTICS_H
#define CLASSFUZZ_ANALYSIS_DIAGNOSTICS_H

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace classfuzz {

/// The lint passes of the static analyzer, in execution order.
enum class PassId : uint8_t {
  Parse,     ///< Structural classfile parsing (ClassReader).
  CpGraph,   ///< Constant-pool reference graph checks.
  Format,    ///< Loading-phase format checks (shared with FormatChecker).
  CodeShape, ///< Code-attribute shape: decode, branches, ranges, depth.
  TypeCheck, ///< Full type-inference verification per method.
  Hierarchy, ///< Supertype chain: existence, kinds, finality, throws.
};

inline constexpr size_t NumPassIds = 6;

/// Stable lowercase pass name ("cpgraph", "typecheck", ...), used as
/// telemetry grid column labels and JSON field values.
const char *passIdName(PassId Pass);

/// Finding severity. Errors are findings a reference JVM rejects the
/// class for; warnings are suspicious but accepted; infos are lints
/// (dead constant-pool entries and the like).
enum class DiagSeverity : uint8_t {
  Info,
  Warning,
  Error,
};

const char *severityName(DiagSeverity Severity);

/// Where a finding is anchored.
struct DiagLocation {
  enum class Kind : uint8_t {
    None,     ///< Whole-class finding.
    CpIndex,  ///< A constant-pool slot.
    Field,    ///< A field, identified by "name:descriptor".
    Method,   ///< A method, identified by "name(descriptor)".
    Bytecode, ///< An offset inside a method's code array.
  };

  Kind LocKind = Kind::None;
  uint16_t CpIndex = 0;        ///< For CpIndex.
  std::string Member;          ///< For Field/Method/Bytecode.
  uint32_t BytecodeOffset = 0; ///< For Bytecode.

  static DiagLocation none();
  static DiagLocation cp(uint16_t Index);
  static DiagLocation field(const std::string &Name,
                            const std::string &Descriptor);
  static DiagLocation method(const std::string &Name,
                             const std::string &Descriptor);
  static DiagLocation bytecode(const std::string &MethodName,
                               const std::string &Descriptor,
                               uint32_t Offset);

  /// Compact rendering: "", "cp#14", "field f:I", "method m()V",
  /// "method m()V @7".
  std::string toString() const;
};

/// One analyzer finding.
struct Diagnostic {
  PassId Pass = PassId::Parse;
  DiagSeverity Severity = DiagSeverity::Error;
  DiagLocation Location;
  std::string Message;

  /// One stable JSON object (keys in fixed order, no whitespace
  /// variation), e.g.
  /// {"pass":"cpgraph","severity":"error","location":"cp#14","message":"..."}.
  std::string toJson() const;
};

/// Per-pass finding counts over \p Diagnostics.
std::array<size_t, NumPassIds>
countByPass(const std::vector<Diagnostic> &Diagnostics);

} // namespace classfuzz

#endif // CLASSFUZZ_ANALYSIS_DIAGNOSTICS_H
