//===- bench/bench_ablation.cpp - Design-choice ablations ------------------===//
//
// Ablation studies for the design decisions DESIGN.md §6 calls out,
// beyond the algorithm comparison of Table 4:
//
//  1. Geometric parameter p: the paper derives p ∈ (0.022, 0.025) and
//     picks 3/129. Sweep p across and beyond that range to show the
//     trade-off (too flat = uniform selection, too sharp = starved
//     exploration).
//  2. Seed feedback (Algorithm 1 line 14): accepted mutants rejoin the
//     mutation pool. Ablating the feedback isolates the §3.2 claim
//     that representative seeds breed representative mutants.
//
//===----------------------------------------------------------------------===//

#include "../bench/BenchUtil.h"
#include "mcmc/McmcSelector.h"

#include <cstdio>

using namespace classfuzz;
using namespace classfuzz::bench;

namespace {

/// Averages |TestClasses| over \p Trials campaign runs.
double meanTests(CampaignConfig Config, size_t Trials = 3) {
  double Sum = 0;
  for (size_t T = 0; T != Trials; ++T) {
    Config.RngSeed = CampaignRngSeed + T * 7919;
    Sum += static_cast<double>(runCampaign(Config).numTests());
  }
  return Sum / static_cast<double>(Trials);
}

} // namespace

int main() {
  std::printf("Ablation studies (scale=%.2f, 3 trials per cell)\n\n",
              scale());

  // --- 1. p sweep -----------------------------------------------------------
  PBounds Bounds = estimatePBounds(129, 0.001);
  std::printf("1. Geometric parameter p "
              "(valid range per the paper's conditions: %.4f..%.4f)\n\n",
              Bounds.Lo, Bounds.Hi);
  std::printf("%-22s %14s\n", "p", "mean |TestClasses|");
  rule(38);
  struct PPoint {
    const char *Label;
    double P;
  };
  const PPoint Points[] = {
      {"1/129 (cond.2 floor)", 1.0 / 129.0},
      {"3/129 (paper)", 3.0 / 129.0},
      {"10/129", 10.0 / 129.0},
      {"0.20 (too sharp)", 0.20},
      {"0.50 (degenerate)", 0.50},
  };
  for (const PPoint &Pt : Points) {
    CampaignConfig Config = configFor(FuzzAlgorithm::ClassfuzzStBr);
    Config.Iterations /= 2; // Keep the sweep quick.
    Config.GeometricP = Pt.P;
    std::printf("%-22s %14.1f\n", Pt.Label, meanTests(Config));
  }

  // --- 2. seed feedback -----------------------------------------------------
  std::printf("\n2. Mutation-pool feedback (Algorithm 1 line 14)\n\n");
  std::printf("%-36s %14s\n", "configuration", "mean |TestClasses|");
  rule(52);
  for (bool Feedback : {true, false}) {
    CampaignConfig Config = configFor(FuzzAlgorithm::ClassfuzzStBr);
    Config.Iterations /= 2;
    Config.FeedbackAcceptedMutants = Feedback;
    std::printf("%-36s %14.1f\n",
                Feedback ? "feedback ON (mutate accepted mutants)"
                         : "feedback OFF (mutate seeds only)",
                meanTests(Config));
  }
  std::printf(
      "\nExpected shape: feedback ON clearly beats OFF (the §3.2 "
      "representative-seeds claim).\nFor p, sharper-than-paper values "
      "keep helping here because our smaller coverage space\nmakes "
      "exploitation cheap; the paper's conditions trade that against "
      "exploration headroom\n(condition 3) that matters at its scale.\n");
  return 0;
}
