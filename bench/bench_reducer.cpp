//===- bench/bench_reducer.cpp - Chunked HDD vs per-element reduction ----===//
//
// Part of classfuzz-cpp (PLDI 2016 classfuzz reproduction).
//
//===----------------------------------------------------------------------===//
//
// Measures the §2.3 reducer on a bloated discrepancy-triggering fixture
// (the Figure 2 <clinit> defect buried under junk fields, noise methods,
// and padded bodies), where every oracle query is a full five-profile
// differential run:
//
//   * legacy     one-element-at-a-time scan (ChunkedHdd = false)
//   * chunked    ddmin chunks n/2, n/4, ..., 1 + memo cache
//   * parallel   chunked with --reduce-jobs worker probing
//
// Prints oracle queries, cache hits, and wall time per configuration,
// verifies the reduced bytes are identical across all three, and exits
// non-zero when chunking saves fewer than 30% of the legacy queries or
// the jobs-determinism contract breaks (so CI enforces both).
//
//   bench_reducer [--write-fixture PATH]   write the fixture classfile
//                                          and exit (for CLI smoke tests)
//
//===----------------------------------------------------------------------===//

#include "classfile/ClassWriter.h"
#include "classfile/CodeBuilder.h"
#include "difftest/DiffTest.h"
#include "reducer/Reducer.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>

using namespace classfuzz;

namespace {

constexpr const char *FixtureName = "BloatedFixture";

/// The reduction workload: one real trigger under layers of junk the
/// reducer must strip -- wide member lists so chunking has room to win.
Bytes buildFixture() {
  ClassFile CF;
  CF.ThisClass = FixtureName;
  CF.SuperClass = "java/lang/Object";
  CF.AccessFlags = ACC_PUBLIC | ACC_SUPER;
  CF.Interfaces.push_back("java/io/Serializable");

  for (int I = 0; I != 48; ++I) {
    FieldInfo F;
    F.Name = "junk" + std::to_string(I);
    F.Descriptor = I % 3 == 0 ? "Ljava/lang/String;" : (I % 3 == 1 ? "I" : "J");
    F.AccessFlags = I % 2 ? ACC_PRIVATE : ACC_PUBLIC;
    CF.Fields.push_back(std::move(F));
  }

  for (int I = 0; I != 10; ++I) {
    MethodInfo M;
    M.Name = "noise" + std::to_string(I);
    M.Descriptor = "()I";
    M.AccessFlags = ACC_PUBLIC | ACC_STATIC;
    CodeBuilder B(CF.CP);
    for (int K = 0; K != 4; ++K) {
      B.pushInt(I * 100 + K);
      B.emit(OP_pop);
    }
    B.pushInt(I);
    B.emit(OP_ireturn);
    CodeAttr Code;
    Code.MaxStack = 1;
    Code.MaxLocals = 0;
    Code.Code = B.build();
    M.Code = std::move(Code);
    M.Exceptions.push_back("java/lang/Exception");
    M.Exceptions.push_back("java/lang/RuntimeException");
    CF.Methods.push_back(std::move(M));
  }

  {
    MethodInfo Main;
    Main.Name = "main";
    Main.Descriptor = "([Ljava/lang/String;)V";
    Main.AccessFlags = ACC_PUBLIC | ACC_STATIC;
    CodeBuilder B(CF.CP);
    for (int K = 0; K != 6; ++K)
      B.emit(OP_nop);
    B.getStatic("java/lang/System", "out", "Ljava/io/PrintStream;");
    B.pushString("Completed!");
    B.invokeVirtual("java/io/PrintStream", "println",
                    "(Ljava/lang/String;)V");
    B.emit(OP_return);
    CodeAttr Code;
    Code.MaxStack = 2;
    Code.MaxLocals = 1;
    Code.Code = B.build();
    Main.Code = std::move(Code);
    CF.Methods.push_back(std::move(Main));
  }

  // The trigger (Problem 1): abstract <clinit> splits the five VMs.
  MethodInfo Clinit;
  Clinit.Name = "<clinit>";
  Clinit.Descriptor = "()V";
  Clinit.AccessFlags = ACC_PUBLIC | ACC_ABSTRACT;
  CF.Methods.push_back(std::move(Clinit));

  auto Data = writeClassFile(CF);
  if (!Data) {
    std::fprintf(stderr, "fixture build failed: %s\n",
                 Data.error().c_str());
    std::exit(1);
  }
  return Data.take();
}

struct RunResult {
  ReductionStats Stats;
  Bytes Reduced;
  double WallMs = 0;
};

RunResult runOnce(const Bytes &Input, const ReductionOracle &Oracle,
                  const ReducerOptions &Opts) {
  RunResult R;
  auto T0 = std::chrono::steady_clock::now();
  auto Out = reduceClassfile(Input, Oracle, Opts, &R.Stats);
  auto T1 = std::chrono::steady_clock::now();
  if (!Out) {
    std::fprintf(stderr, "reduction failed: %s\n", Out.error().c_str());
    std::exit(1);
  }
  R.Reduced = Out.take();
  R.WallMs =
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
          T1 - T0)
          .count();
  return R;
}

} // namespace

int main(int Argc, char **Argv) {
  Bytes Fixture = buildFixture();

  if (Argc == 3 && std::strcmp(Argv[1], "--write-fixture") == 0) {
    std::ofstream Out(Argv[2], std::ios::binary);
    Out.write(reinterpret_cast<const char *>(Fixture.data()),
              static_cast<std::streamsize>(Fixture.size()));
    if (!Out) {
      std::fprintf(stderr, "cannot write %s\n", Argv[2]);
      return 1;
    }
    std::printf("wrote %zu-byte fixture to %s\n", Fixture.size(), Argv[2]);
    return 0;
  }

  auto Tester = DifferentialTester::withAllProfiles(
      ClassPath(), EnvironmentMode::Shared, "jre8");
  const std::string Target =
      Tester.testClass(FixtureName, Fixture).encodedString();
  bool Constant = true;
  for (char C : Target)
    Constant &= C == Target[0];
  if (Constant) {
    std::fprintf(stderr, "fixture triggers no discrepancy (\"%s\")\n",
                 Target.c_str());
    return 1;
  }
  ReductionOracle Oracle = [&](const std::string &Name,
                               const Bytes &Candidate) {
    return Tester.testClass(Name, Candidate).encodedString() == Target;
  };

  size_t Jobs = std::thread::hardware_concurrency();
  Jobs = Jobs < 2 ? 2 : (Jobs > 8 ? 8 : Jobs);

  ReducerOptions Legacy;
  Legacy.ChunkedHdd = false;
  ReducerOptions Chunked;
  ReducerOptions Parallel;
  Parallel.Jobs = Jobs;

  std::printf("reducing a %zu-byte fixture (discrepancy \"%s\"), "
              "oracle = 5-profile differential run\n\n",
              Fixture.size(), Target.c_str());
  RunResult L = runOnce(Fixture, Oracle, Legacy);
  RunResult C1 = runOnce(Fixture, Oracle, Chunked);
  RunResult CN = runOnce(Fixture, Oracle, Parallel);

  std::printf("%-22s %8s %8s %8s %10s %9s\n", "configuration", "queries",
              "hits", "kept", "wall-ms", "bytes");
  auto Row = [](const char *Name, const RunResult &R) {
    std::printf("%-22s %8zu %8zu %8zu %10.1f %9zu\n", Name,
                R.Stats.OracleQueries, R.Stats.CacheHits,
                R.Stats.DeletionsKept, R.WallMs, R.Reduced.size());
  };
  Row("legacy per-element", L);
  Row("chunked jobs=1", C1);
  char Label[32];
  std::snprintf(Label, sizeof(Label), "chunked jobs=%zu", Jobs);
  Row(Label, CN);

  double Savings =
      100.0 * (1.0 - static_cast<double>(C1.Stats.OracleQueries) /
                         static_cast<double>(L.Stats.OracleQueries));
  double Speedup = C1.WallMs > 0 ? L.WallMs / C1.WallMs : 0;
  double ParSpeedup = CN.WallMs > 0 ? L.WallMs / CN.WallMs : 0;
  std::printf("\nchunked saves %.1f%% oracle queries vs legacy "
              "(%.2fx wall; %.2fx with %zu jobs)\n",
              Savings, Speedup, ParSpeedup, Jobs);

  int Exit = 0;
  if (C1.Reduced != CN.Reduced) {
    std::fprintf(stderr,
                 "FAIL: reduced bytes differ between jobs=1 and jobs=%zu\n",
                 Jobs);
    Exit = 1;
  }
  if (Savings < 30.0) {
    std::fprintf(stderr,
                 "FAIL: chunked HDD saved %.1f%% queries (budget: >= 30%%)\n",
                 Savings);
    Exit = 1;
  }
  return Exit;
}
