//===- bench/bench_table7_phases.cpp ---------------------------------------===//
//
// Regenerates Table 7 ("Results on testing of JVMs using the classfile
// mutants in TestClasses_classfuzz[stbr]"): per-JVM counts of normally
// invoked / rejected during creation-loading / linking / initialization
// / runtime, plus a Figure 3-style encoded sequence for one discrepancy.
//
// Expected shape: most rejections happen during linking; J9 rejects the
// most classfiles and GIJ accepts the most (is the most lenient).
//
//===----------------------------------------------------------------------===//

#include "../bench/BenchUtil.h"
#include "difftest/DiffTest.h"

#include <cstdio>

using namespace classfuzz;
using namespace classfuzz::bench;

int main() {
  std::printf("Table 7: per-JVM outcomes of TestClasses_classfuzz[stbr] "
              "(scale=%.2f)\n\n",
              scale());
  std::fprintf(stderr, "campaign...\n");
  CampaignResult R =
      runPaperCampaign(FuzzAlgorithm::ClassfuzzStBr);
  ClassPath Corpus = R.corpusClassPath();
  auto Tester = DifferentialTester::withAllProfiles(
      Corpus, EnvironmentMode::PerJvm);

  DiffStats Stats;
  std::string ExampleName;
  DiffOutcome Example;
  std::fprintf(stderr, "differential testing %zu test classes...\n",
               R.numTests());
  for (size_t I : R.TestClassIndices) {
    DiffOutcome O = Tester.testClass(R.GenClasses[I].Name);
    if (O.isDiscrepancy() && ExampleName.empty()) {
      ExampleName = R.GenClasses[I].Name;
      Example = O;
    }
    Stats.add(O);
  }

  static const char *RowNames[5] = {
      "Normally invoked",
      "Rejected during the creation/loading phase",
      "Rejected during the linking phase",
      "Rejected during the initialization phase",
      "Rejected at runtime",
  };
  std::printf("%-44s", "");
  for (const JvmPolicy &P : Tester.policies())
    std::printf("%20s", P.Name.substr(0, 19).c_str());
  std::printf("\n");
  rule(44 + 20 * 5);
  for (int Phase = 0; Phase != 5; ++Phase) {
    std::printf("%-44s", RowNames[Phase]);
    for (size_t Jvm = 0; Jvm != Stats.PhaseCounts.size(); ++Jvm)
      std::printf("%20zu",
                  Stats.PhaseCounts[Jvm][static_cast<size_t>(Phase)]);
    std::printf("\n");
  }

  // Leniency summary (the paper's "GIJ is the most lenient" point).
  std::printf("\nAccepted classfiles per JVM (row 'Normally invoked'):\n");
  for (size_t Jvm = 0; Jvm != Stats.PhaseCounts.size(); ++Jvm)
    std::printf("  %-22s %zu\n",
                Tester.policies()[Jvm].Name.c_str(),
                Stats.PhaseCounts[Jvm][0]);

  if (!ExampleName.empty()) {
    std::printf("\nFigure 3-style encoded sequence for %s:\n",
                ExampleName.c_str());
    std::printf("  %-22s %s\n", "JVM", "output");
    for (size_t Jvm = 0; Jvm != Example.Encoded.size(); ++Jvm)
      std::printf("  %-22s %d   (%s)\n",
                  Tester.policies()[Jvm].Name.c_str(),
                  Example.Encoded[Jvm],
                  Example.Results[Jvm].toString().c_str());
    std::printf("  => encoded \"%s\" (theoretically 5^5 possibilities)\n",
                Example.encodedString().c_str());
  }
  return 0;
}
