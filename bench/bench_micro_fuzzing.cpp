//===- bench/bench_micro_fuzzing.cpp ---------------------------------------===//
//
// Microbenchmarks of the fuzzing machinery: single mutation, MCMC
// selection, coverage uniqueness checks, and the reducer. Together with
// bench_micro_jvm these decompose the per-iteration cost of Table 4.
//
//===----------------------------------------------------------------------===//

#include "coverage/Uniqueness.h"
#include "fuzzing/Campaign.h"
#include "jvm/ClassPath.h"
#include "mcmc/McmcSelector.h"
#include "mutation/Engine.h"
#include "runtime/RuntimeLib.h"
#include "runtime/SeedCorpus.h"

#include <benchmark/benchmark.h>

#include <map>
#include <string>

using namespace classfuzz;

namespace {

void BM_MutateClass(benchmark::State &State) {
  Rng SeedRng(7);
  auto Seeds = generateSeedCorpus(SeedRng, 1);
  auto Known = buildRuntimeLibrary("jre8").names();
  Rng R(11);
  MutationContext Ctx{R, Known};
  size_t Index = 0;
  for (auto _ : State) {
    MutationOutcome Out =
        mutateClass(Seeds[0].Data, Index % NumMutators, Ctx);
    benchmark::DoNotOptimize(Out.Produced);
    ++Index;
  }
}
BENCHMARK(BM_MutateClass);

void BM_McmcSelectNext(benchmark::State &State) {
  McmcSelector S(NumMutators);
  Rng R(3);
  // Pre-train with a skewed profile so the ranking is non-trivial.
  for (size_t I = 0; I != NumMutators; ++I)
    S.recordOutcome(I, I % 3 == 0);
  for (auto _ : State)
    benchmark::DoNotOptimize(S.selectNext(R));
}
BENCHMARK(BM_McmcSelectNext);

void BM_McmcRecordOutcome(benchmark::State &State) {
  McmcSelector S(NumMutators);
  Rng R(3);
  size_t I = 0;
  for (auto _ : State) {
    S.recordOutcome(I % NumMutators, I % 5 == 0);
    ++I;
  }
}
BENCHMARK(BM_McmcRecordOutcome);

Tracefile makeTrace(uint64_t Salt, size_t Size) {
  Tracefile T;
  for (size_t I = 0; I != Size; ++I) {
    T.addStmt(static_cast<uint32_t>((Salt * 31 + I * 7) % 4096));
    T.addBranch(static_cast<uint32_t>((Salt * 17 + I * 13) % 2048),
                I % 2 == 0);
  }
  return T;
}

void BM_UniquenessCheckStBr(benchmark::State &State) {
  UniquenessChecker C(UniquenessCriterion::StBr);
  for (uint64_t I = 0; I != 1000; ++I)
    C.insert(makeTrace(I, 64 + I % 64));
  uint64_t Salt = 0;
  for (auto _ : State) {
    ++Salt;
    Tracefile T = makeTrace(Salt, 64 + Salt % 64);
    benchmark::DoNotOptimize(C.isUnique(T));
  }
}
BENCHMARK(BM_UniquenessCheckStBr);

void BM_UniquenessCheckTr(benchmark::State &State) {
  UniquenessChecker C(UniquenessCriterion::Tr);
  for (uint64_t I = 0; I != 1000; ++I)
    C.insert(makeTrace(I, 64));
  uint64_t Salt = 0;
  for (auto _ : State) {
    Tracefile T = makeTrace(Salt++, 64);
    benchmark::DoNotOptimize(C.isUnique(T));
  }
}
BENCHMARK(BM_UniquenessCheckTr);

void BM_TracefileMerge(benchmark::State &State) {
  Tracefile A = makeTrace(1, 512);
  Tracefile B = makeTrace(2, 512);
  for (auto _ : State) {
    Tracefile M = A.mergedWith(B);
    benchmark::DoNotOptimize(M.stmtCount());
  }
}
BENCHMARK(BM_TracefileMerge);

void BM_TracefileFingerprint(benchmark::State &State) {
  Tracefile T = makeTrace(5, 1024);
  for (auto _ : State)
    benchmark::DoNotOptimize(T.fingerprint());
}
BENCHMARK(BM_TracefileFingerprint);

ClassPath makeCorpus(size_t NumClasses) {
  ClassPath CP;
  for (size_t I = 0; I != NumClasses; ++I) {
    std::string Name = "Seed" + std::to_string(I);
    CP.add(Name, Bytes(256 + I % 512, static_cast<uint8_t>(I)));
  }
  return CP;
}

/// Per-mutant environment setup, old style: a full deep copy of the
/// corpus map. Cost grows linearly with corpus size.
void BM_EnvSetupDeepCopy(benchmark::State &State) {
  ClassPath Corpus = makeCorpus(static_cast<size_t>(State.range(0)));
  std::map<std::string, Bytes> Flat;
  for (const std::string &Name : Corpus.names())
    Flat.emplace(Name, *Corpus.lookup(Name));
  Bytes Mutant(300, 0xCF);
  for (auto _ : State) {
    std::map<std::string, Bytes> Env = Flat;
    Env["Mutant"] = Mutant;
    benchmark::DoNotOptimize(Env.size());
  }
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_EnvSetupDeepCopy)->Range(8, 4096)->Complexity();

/// Per-mutant environment setup, current style: copy shares the frozen
/// base; only the single mutant lands in the overlay. Cost is O(1) in
/// corpus size.
void BM_EnvSetupOverlay(benchmark::State &State) {
  ClassPath Corpus = makeCorpus(static_cast<size_t>(State.range(0)));
  Corpus.freeze();
  Bytes Mutant(300, 0xCF);
  for (auto _ : State) {
    ClassPath Env = Corpus;
    Env.add("Mutant", Mutant);
    benchmark::DoNotOptimize(Env.lookup("Mutant"));
  }
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_EnvSetupOverlay)->Range(8, 4096)->Complexity();

/// End-to-end campaign throughput by worker count. On multi-core hosts
/// the coverage executions overlap; results are bit-identical at every
/// job count, so this isolates the pipeline's wall-clock effect.
void BM_CampaignJobsScaling(benchmark::State &State) {
  CampaignConfig Config;
  Config.Algo = FuzzAlgorithm::ClassfuzzStBr;
  Config.Iterations = 120;
  Config.NumSeeds = 10;
  Config.RngSeed = 17;
  Config.Jobs = static_cast<size_t>(State.range(0));
  for (auto _ : State) {
    CampaignResult R = runCampaign(Config);
    benchmark::DoNotOptimize(R.numGenerated());
  }
}
BENCHMARK(BM_CampaignJobsScaling)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
