//===- bench/bench_micro_fuzzing.cpp ---------------------------------------===//
//
// Microbenchmarks of the fuzzing machinery: single mutation, MCMC
// selection, coverage uniqueness checks, and the reducer. Together with
// bench_micro_jvm these decompose the per-iteration cost of Table 4.
//
//===----------------------------------------------------------------------===//

#include "coverage/Uniqueness.h"
#include "mcmc/McmcSelector.h"
#include "mutation/Engine.h"
#include "runtime/RuntimeLib.h"
#include "runtime/SeedCorpus.h"

#include <benchmark/benchmark.h>

using namespace classfuzz;

namespace {

void BM_MutateClass(benchmark::State &State) {
  Rng SeedRng(7);
  auto Seeds = generateSeedCorpus(SeedRng, 1);
  auto Known = buildRuntimeLibrary("jre8").names();
  Rng R(11);
  MutationContext Ctx{R, Known};
  size_t Index = 0;
  for (auto _ : State) {
    MutationOutcome Out =
        mutateClass(Seeds[0].Data, Index % NumMutators, Ctx);
    benchmark::DoNotOptimize(Out.Produced);
    ++Index;
  }
}
BENCHMARK(BM_MutateClass);

void BM_McmcSelectNext(benchmark::State &State) {
  McmcSelector S(NumMutators);
  Rng R(3);
  // Pre-train with a skewed profile so the ranking is non-trivial.
  for (size_t I = 0; I != NumMutators; ++I)
    S.recordOutcome(I, I % 3 == 0);
  for (auto _ : State)
    benchmark::DoNotOptimize(S.selectNext(R));
}
BENCHMARK(BM_McmcSelectNext);

void BM_McmcRecordOutcome(benchmark::State &State) {
  McmcSelector S(NumMutators);
  Rng R(3);
  size_t I = 0;
  for (auto _ : State) {
    S.recordOutcome(I % NumMutators, I % 5 == 0);
    ++I;
  }
}
BENCHMARK(BM_McmcRecordOutcome);

Tracefile makeTrace(uint64_t Salt, size_t Size) {
  Tracefile T;
  for (size_t I = 0; I != Size; ++I) {
    T.addStmt(static_cast<uint32_t>((Salt * 31 + I * 7) % 4096));
    T.addBranch(static_cast<uint32_t>((Salt * 17 + I * 13) % 2048),
                I % 2 == 0);
  }
  return T;
}

void BM_UniquenessCheckStBr(benchmark::State &State) {
  UniquenessChecker C(UniquenessCriterion::StBr);
  for (uint64_t I = 0; I != 1000; ++I)
    C.insert(makeTrace(I, 64 + I % 64));
  uint64_t Salt = 0;
  for (auto _ : State) {
    ++Salt;
    Tracefile T = makeTrace(Salt, 64 + Salt % 64);
    benchmark::DoNotOptimize(C.isUnique(T));
  }
}
BENCHMARK(BM_UniquenessCheckStBr);

void BM_UniquenessCheckTr(benchmark::State &State) {
  UniquenessChecker C(UniquenessCriterion::Tr);
  for (uint64_t I = 0; I != 1000; ++I)
    C.insert(makeTrace(I, 64));
  uint64_t Salt = 0;
  for (auto _ : State) {
    Tracefile T = makeTrace(Salt++, 64);
    benchmark::DoNotOptimize(C.isUnique(T));
  }
}
BENCHMARK(BM_UniquenessCheckTr);

void BM_TracefileMerge(benchmark::State &State) {
  Tracefile A = makeTrace(1, 512);
  Tracefile B = makeTrace(2, 512);
  for (auto _ : State) {
    Tracefile M = A.mergedWith(B);
    benchmark::DoNotOptimize(M.stmtCount());
  }
}
BENCHMARK(BM_TracefileMerge);

void BM_TracefileFingerprint(benchmark::State &State) {
  Tracefile T = makeTrace(5, 1024);
  for (auto _ : State)
    benchmark::DoNotOptimize(T.fingerprint());
}
BENCHMARK(BM_TracefileFingerprint);

} // namespace

BENCHMARK_MAIN();
