//===- bench/bench_seedsched.cpp -------------------------------------------===//
//
// A/B comparison of the seed-scheduling policies over the dd-fine
// acceptance algorithm: uniform (the historical behaviour), rare
// (slots apportioned by how many still-rare branch directions each
// pool entry covers), and cluster (equal slot budget per coverage
// cluster). All three trials run the identical fixed-seed campaign
// config, so they see the same scaled seed corpus; only the slot table
// behind the pool pick differs.
//
// Reported metric: distinct discrepancy categories per 1k iterations,
// plus the scheduler census (draws, rare draws, epochs).
//
// CI gate: the rare policy must not lose to uniform on distinct
// discrepancy yield -- the process exits non-zero otherwise.
//
//===----------------------------------------------------------------------===//

#include "../bench/BenchUtil.h"

#include <cstdio>
#include <vector>

using namespace classfuzz;
using namespace classfuzz::bench;

namespace {

const SeedSchedPolicy Policies[] = {
    SeedSchedPolicy::Uniform,
    SeedSchedPolicy::Rare,
    SeedSchedPolicy::Cluster,
};

double per1k(size_t Distinct, size_t Iterations) {
  return Iterations ? 1e3 * static_cast<double>(Distinct) /
                          static_cast<double>(Iterations)
                    : 0.0;
}

} // namespace

int main() {
  std::printf("Seed-scheduler A/B: dd-fine yield per policy "
              "(scale=%.2f, seeds=%zu, fixed seed %llu)\n\n",
              scale(), numSeeds(),
              static_cast<unsigned long long>(CampaignRngSeed));

  std::vector<CampaignResult> Results;
  for (SeedSchedPolicy Policy : Policies) {
    std::fprintf(stderr, "running dd-fine / --seed-sched %s...\n",
                 seedSchedPolicyName(Policy));
    CampaignConfig Config = configFor(FuzzAlgorithm::ClassfuzzDdFine);
    Config.SeedSched = Policy;
    Results.push_back(runCampaign(Config));
  }

  std::printf("%-28s", "");
  for (SeedSchedPolicy Policy : Policies)
    std::printf("%16s", seedSchedPolicyName(Policy));
  std::printf("\n");
  rule(28 + 16 * 3);

  std::printf("%-28s", "#iterations");
  for (const CampaignResult &R : Results)
    std::printf("%16zu", R.Iterations);
  std::printf("\n");

  std::printf("%-28s", "|GenClasses|");
  for (const CampaignResult &R : Results)
    std::printf("%16zu", R.numGenerated());
  std::printf("\n");

  std::printf("%-28s", "distinct discrepancies");
  for (const CampaignResult &R : Results)
    std::printf("%16zu", R.ddDistinctDiscrepancies());
  std::printf("\n");

  std::printf("%-28s", "per 1k iterations");
  for (const CampaignResult &R : Results)
    std::printf("%16.2f", per1k(R.ddDistinctDiscrepancies(), R.Iterations));
  std::printf("\n");

  std::printf("%-28s", "sched draws");
  for (const CampaignResult &R : Results)
    std::printf("%16llu", static_cast<unsigned long long>(R.SchedDraws));
  std::printf("\n");

  std::printf("%-28s", "sched rare draws");
  for (const CampaignResult &R : Results)
    std::printf("%16llu", static_cast<unsigned long long>(R.SchedRareDraws));
  std::printf("\n");

  std::printf("%-28s", "sched epochs");
  for (const CampaignResult &R : Results)
    std::printf("%16llu", static_cast<unsigned long long>(R.SchedEpochs));
  std::printf("\n");

  // CI gate: biasing the pool pick toward entries that still cover rare
  // branch directions must not lose to uniform selection on discrepancy
  // yield at the shared fixed seed.
  const CampaignResult &Uniform = Results[0];
  const CampaignResult &Rare = Results[1];
  double UniformYield =
      per1k(Uniform.ddDistinctDiscrepancies(), Uniform.Iterations);
  double RareYield = per1k(Rare.ddDistinctDiscrepancies(), Rare.Iterations);
  if (RareYield < UniformYield) {
    std::printf("\nFAIL: [rare] yield %.2f/1k < [uniform] yield %.2f/1k\n",
                RareYield, UniformYield);
    return 1;
  }
  std::printf("\nPASS: [rare] yield %.2f/1k >= [uniform] yield %.2f/1k\n",
              RareYield, UniformYield);
  return 0;
}
