//===- bench/bench_micro_classfile.cpp -------------------------------------===//
//
// Microbenchmarks of the classfile substrate: parse, serialize, round
// trip, JIR lowering/assembly, and printing. These quantify the cost
// per fuzzing iteration that Table 4's timing columns build on.
//
//===----------------------------------------------------------------------===//

#include "classfile/ClassReader.h"
#include "classfile/ClassWriter.h"
#include "classfile/Printer.h"
#include "jir/Jir.h"
#include "runtime/SeedCorpus.h"

#include <benchmark/benchmark.h>

using namespace classfuzz;

namespace {

Bytes sampleClass(size_t Which = 0) {
  Rng R(99);
  auto Seeds = generateSeedCorpus(R, Which + 1);
  return Seeds[Which].Data;
}

void BM_ParseClassFile(benchmark::State &State) {
  Bytes Data = sampleClass();
  for (auto _ : State) {
    auto CF = parseClassFile(Data);
    benchmark::DoNotOptimize(CF.ok());
  }
}
BENCHMARK(BM_ParseClassFile);

void BM_WriteClassFile(benchmark::State &State) {
  Bytes Data = sampleClass();
  auto CF = parseClassFile(Data);
  for (auto _ : State) {
    ClassFile Copy = *CF;
    auto Out = writeClassFile(Copy);
    benchmark::DoNotOptimize(Out.ok());
  }
}
BENCHMARK(BM_WriteClassFile);

void BM_RoundTrip(benchmark::State &State) {
  Bytes Data = sampleClass();
  for (auto _ : State) {
    auto CF = parseClassFile(Data);
    auto Out = writeClassFile(*CF);
    benchmark::DoNotOptimize(Out.ok());
  }
}
BENCHMARK(BM_RoundTrip);

void BM_LowerToJir(benchmark::State &State) {
  Bytes Data = sampleClass(2); // the arithmetic/loop seed
  for (auto _ : State) {
    auto J = lowerClassBytes(Data);
    benchmark::DoNotOptimize(J.ok());
  }
}
BENCHMARK(BM_LowerToJir);

void BM_AssembleFromJir(benchmark::State &State) {
  Bytes Data = sampleClass(2);
  auto J = lowerClassBytes(Data);
  for (auto _ : State) {
    auto Out = assembleToBytes(*J);
    benchmark::DoNotOptimize(Out.ok());
  }
}
BENCHMARK(BM_AssembleFromJir);

void BM_PrintClassFile(benchmark::State &State) {
  auto CF = parseClassFile(sampleClass());
  for (auto _ : State) {
    std::string Dump = printClassFile(*CF);
    benchmark::DoNotOptimize(Dump.size());
  }
}
BENCHMARK(BM_PrintClassFile);

void BM_SeedCorpusGeneration(benchmark::State &State) {
  for (auto _ : State) {
    Rng R(static_cast<uint64_t>(State.iterations()));
    auto Seeds = generateSeedCorpus(R, 13);
    benchmark::DoNotOptimize(Seeds.size());
  }
}
BENCHMARK(BM_SeedCorpusGeneration);

} // namespace

BENCHMARK_MAIN();
