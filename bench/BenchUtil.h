//===- bench/BenchUtil.h - Shared helpers for the table benches ----------===//
//
// Part of classfuzz-cpp (PLDI 2016 classfuzz reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared scaffolding for the benches that regenerate the paper's tables
/// and figures: campaign scale (mirroring the paper's iteration counts,
/// scaled by CLASSFUZZ_BENCH_SCALE), campaign caching so Table 5 /
/// Figure 4 / Tables 6-7 reuse one classfuzz[stbr] run, and fixed-width
/// table printing.
///
//===----------------------------------------------------------------------===//

#ifndef CLASSFUZZ_BENCH_BENCHUTIL_H
#define CLASSFUZZ_BENCH_BENCHUTIL_H

#include "fuzzing/Campaign.h"

#include <cstdio>
#include <cstdlib>
#include <string>

namespace classfuzz {
namespace bench {

/// Scale factor from the environment (default 1.0). The paper's directed
/// algorithms ran ~2,100 iterations in three days; randfuzz ~46,000.
inline double scale() {
  if (const char *S = std::getenv("CLASSFUZZ_BENCH_SCALE"))
    return std::atof(S) > 0 ? std::atof(S) : 1.0;
  return 1.0;
}

/// Iteration budget of a directed algorithm (paper: ~2,130).
inline size_t directedIterations() {
  return static_cast<size_t>(2130 * scale());
}

/// Iteration budget of randfuzz: the same wall-clock budget buys ~21x
/// more iterations because no coverage is collected (Table 4).
inline size_t randfuzzIterations() {
  return static_cast<size_t>(46318 * scale());
}

/// Seed corpus size (paper: 1,216; scaled down to keep mutation pressure
/// per seed comparable at our iteration counts).
inline size_t numSeeds() { return 128; }

/// Deterministic campaign seed shared across benches.
inline constexpr uint64_t CampaignRngSeed = 20160613; // PLDI'16 day one.

inline CampaignConfig configFor(FuzzAlgorithm Algo) {
  CampaignConfig Config;
  Config.Algo = Algo;
  Config.Iterations = Algo == FuzzAlgorithm::Randfuzz
                          ? randfuzzIterations()
                          : directedIterations();
  Config.NumSeeds = numSeeds();
  Config.RngSeed = CampaignRngSeed;
  return Config;
}

/// The paper's protocol (§3.1.3): "To account for randomness in the
/// algorithms, we executed each algorithm five times, but only chose one
/// test suite with the largest size among the five resulting test
/// suites." randfuzz is deterministic in its acceptance (keeps all), so
/// one trial suffices there.
inline CampaignResult runPaperCampaign(FuzzAlgorithm Algo) {
  CampaignConfig Config = configFor(Algo);
  size_t Trials = Algo == FuzzAlgorithm::Randfuzz ? 1 : 5;
  CampaignResult Best;
  for (size_t Trial = 0; Trial != Trials; ++Trial) {
    Config.RngSeed = CampaignRngSeed + Trial * 977;
    CampaignResult R = runCampaign(Config);
    if (Trial == 0 || R.numTests() > Best.numTests())
      Best = std::move(R);
  }
  return Best;
}

/// One campaign at the shared fixed seed, no best-of-five: the
/// δ-diversity yield comparison wants both contenders on the identical
/// seed corpus and RNG trajectory.
inline CampaignResult runFixedSeedCampaign(FuzzAlgorithm Algo) {
  return runCampaign(configFor(Algo));
}

/// All six algorithms in the paper's column order.
inline const FuzzAlgorithm AllAlgorithms[] = {
    FuzzAlgorithm::ClassfuzzStBr, FuzzAlgorithm::ClassfuzzSt,
    FuzzAlgorithm::ClassfuzzTr,   FuzzAlgorithm::Uniquefuzz,
    FuzzAlgorithm::Greedyfuzz,    FuzzAlgorithm::Randfuzz,
};

/// The two δ-diversity extensions (not part of the paper's table; they
/// get their own yield section in bench_table4).
inline const FuzzAlgorithm DdAlgorithms[] = {
    FuzzAlgorithm::ClassfuzzDdCoarse,
    FuzzAlgorithm::ClassfuzzDdFine,
};

/// Prints a horizontal rule of \p Width characters.
inline void rule(int Width) {
  for (int I = 0; I < Width; ++I)
    std::putchar('-');
  std::putchar('\n');
}

} // namespace bench
} // namespace classfuzz

#endif // CLASSFUZZ_BENCH_BENCHUTIL_H
