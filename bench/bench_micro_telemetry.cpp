//===- bench/bench_micro_telemetry.cpp -------------------------------------===//
//
// Microbenchmarks of the telemetry substrate. The contract in
// DESIGN.md §8 is "near-zero cost when disabled": the disabled-path
// benchmarks here measure exactly the code the campaign hot loop runs
// when no --stats-json/--trace-events flag is given, and the
// campaign-level pair at the bottom measures the end-to-end overhead
// of running with telemetry on.
//
// `--sampler-gate` runs a standalone throughput check instead of the
// google-benchmark suite: attaching the time-series sampler at the
// default stride (K=64) must cost <= 2% of campaign wall clock over an
// identical telemetry-on baseline (exit 1 otherwise). The sampler
// snapshots the scalar registry once per K commits; this gate keeps
// that snapshot honest as the metric population grows.
//
//===----------------------------------------------------------------------===//

#include "fuzzing/Campaign.h"
#include "telemetry/Telemetry.h"
#include "telemetry/TimeSeries.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>

using namespace classfuzz;

namespace {

/// The disabled fast path the instrumented layers take: one relaxed
/// atomic load.
void BM_EnabledCheckDisabled(benchmark::State &State) {
  telemetry::setEnabled(false);
  for (auto _ : State)
    benchmark::DoNotOptimize(telemetry::enabled());
}
BENCHMARK(BM_EnabledCheckDisabled);

/// PhaseTimer when telemetry is off: construction must not read the
/// clock, destruction must not touch the histogram.
void BM_PhaseTimerDisabled(benchmark::State &State) {
  telemetry::setEnabled(false);
  telemetry::Histogram &H = telemetry::metrics().histogram("bench.t_ns");
  for (auto _ : State) {
    telemetry::PhaseTimer T(H);
    benchmark::DoNotOptimize(&T);
  }
}
BENCHMARK(BM_PhaseTimerDisabled);

/// PhaseTimer when telemetry is on: two clock reads plus one histogram
/// record.
void BM_PhaseTimerEnabled(benchmark::State &State) {
  telemetry::setEnabled(true);
  telemetry::Histogram &H = telemetry::metrics().histogram("bench.t_ns");
  for (auto _ : State) {
    telemetry::PhaseTimer T(H);
    benchmark::DoNotOptimize(&T);
  }
  telemetry::setEnabled(false);
}
BENCHMARK(BM_PhaseTimerEnabled);

void BM_CounterInc(benchmark::State &State) {
  telemetry::Counter &C = telemetry::metrics().counter("bench.counter");
  for (auto _ : State)
    C.inc();
}
BENCHMARK(BM_CounterInc);

void BM_HistogramRecord(benchmark::State &State) {
  telemetry::Histogram &H = telemetry::metrics().histogram("bench.h");
  uint64_t Sample = 1;
  for (auto _ : State)
    H.record(Sample += 97);
}
BENCHMARK(BM_HistogramRecord);

void BM_GaugeRecordMax(benchmark::State &State) {
  telemetry::Gauge &G = telemetry::metrics().gauge("bench.gauge");
  int64_t V = 0;
  for (auto _ : State)
    G.recordMax(++V);
}
BENCHMARK(BM_GaugeRecordMax);

void BM_EventBuilderNoSink(benchmark::State &State) {
  telemetry::setEventSink(nullptr);
  for (auto _ : State)
    telemetry::EventBuilder("bench.event")
        .field("iter", uint64_t{42})
        .field("ok", true)
        .emit();
}
BENCHMARK(BM_EventBuilderNoSink);

CampaignConfig benchConfig() {
  CampaignConfig Config;
  Config.Algo = FuzzAlgorithm::ClassfuzzStBr;
  Config.Iterations = 120;
  Config.NumSeeds = 10;
  Config.RngSeed = 17;
  return Config;
}

/// Baseline: the campaign with telemetry disabled (the default).
void BM_CampaignTelemetryOff(benchmark::State &State) {
  telemetry::setEnabled(false);
  CampaignConfig Config = benchConfig();
  for (auto _ : State) {
    CampaignResult R = runCampaign(Config);
    benchmark::DoNotOptimize(R.numGenerated());
  }
}
BENCHMARK(BM_CampaignTelemetryOff)->Unit(benchmark::kMillisecond);

/// Same campaign with counters/timers live (no event sink). The
/// trajectory is bit-identical; only the wall clock may differ.
void BM_CampaignTelemetryOn(benchmark::State &State) {
  telemetry::setEnabled(true);
  CampaignConfig Config = benchConfig();
  for (auto _ : State) {
    CampaignResult R = runCampaign(Config);
    benchmark::DoNotOptimize(R.numGenerated());
  }
  telemetry::setEnabled(false);
}
BENCHMARK(BM_CampaignTelemetryOn)->Unit(benchmark::kMillisecond);

/// Telemetry on plus the K=64 time-series sampler (no output stream):
/// the configuration `--timeseries` runs. The delta over
/// BM_CampaignTelemetryOn is the sampler's own cost.
void BM_CampaignWithSampler(benchmark::State &State) {
  telemetry::setEnabled(true);
  CampaignConfig Config = benchConfig();
  for (auto _ : State) {
    telemetry::TimeSeriesSampler Sampler({});
    Config.TimeSeries = &Sampler;
    CampaignResult R = runCampaign(Config);
    benchmark::DoNotOptimize(R.numGenerated());
  }
  telemetry::setEnabled(false);
}
BENCHMARK(BM_CampaignWithSampler)->Unit(benchmark::kMillisecond);

/// The --sampler-gate mode: sampling every 64 commits must stay within
/// 2% of the telemetry-on baseline. Runs interleave and each arm keeps
/// its fastest run, so scheduler noise inflates both arms equally.
int runSamplerGate() {
  telemetry::setEnabled(true);
  CampaignConfig Config = benchConfig();
  Config.Iterations = 400;
  constexpr int Runs = 10;
  constexpr double MaxOverhead = 0.02;

  auto RunOnce = [&Config](bool WithSampler) {
    telemetry::TimeSeriesSampler Sampler({}); // SampleEvery defaults to 64.
    Config.TimeSeries = WithSampler ? &Sampler : nullptr;
    auto Start = std::chrono::steady_clock::now();
    CampaignResult R = runCampaign(Config);
    benchmark::DoNotOptimize(R.numGenerated());
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         Start)
        .count();
  };

  RunOnce(false); // Warm both arms before timing.
  RunOnce(true);
  double Baseline = 1e30, Sampled = 1e30;
  for (int I = 0; I != Runs; ++I) {
    Baseline = std::min(Baseline, RunOnce(false));
    Sampled = std::min(Sampled, RunOnce(true));
  }
  telemetry::setEnabled(false);

  double Overhead = Sampled / Baseline - 1.0;
  std::printf("baseline  %8.2f ms/run\n", Baseline * 1000);
  std::printf("sampled   %8.2f ms/run  (K=64)\n", Sampled * 1000);
  std::printf("overhead  %+7.2f%% (gate: <= %.0f%%)\n", Overhead * 100,
              MaxOverhead * 100);
  if (Overhead > MaxOverhead) {
    std::fprintf(stderr,
                 "** sampler gate FAILED: %+.2f%% > %.0f%% overhead at "
                 "K=64 **\n",
                 Overhead * 100, MaxOverhead * 100);
    return 1;
  }
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  for (int I = 1; I != argc; ++I)
    if (std::strcmp(argv[I], "--sampler-gate") == 0)
      return runSamplerGate();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
