//===- bench/bench_micro_telemetry.cpp -------------------------------------===//
//
// Microbenchmarks of the telemetry substrate. The contract in
// DESIGN.md §8 is "near-zero cost when disabled": the disabled-path
// benchmarks here measure exactly the code the campaign hot loop runs
// when no --stats-json/--trace-events flag is given, and the
// campaign-level pair at the bottom measures the end-to-end overhead
// of running with telemetry on.
//
//===----------------------------------------------------------------------===//

#include "fuzzing/Campaign.h"
#include "telemetry/Telemetry.h"

#include <benchmark/benchmark.h>

using namespace classfuzz;

namespace {

/// The disabled fast path the instrumented layers take: one relaxed
/// atomic load.
void BM_EnabledCheckDisabled(benchmark::State &State) {
  telemetry::setEnabled(false);
  for (auto _ : State)
    benchmark::DoNotOptimize(telemetry::enabled());
}
BENCHMARK(BM_EnabledCheckDisabled);

/// PhaseTimer when telemetry is off: construction must not read the
/// clock, destruction must not touch the histogram.
void BM_PhaseTimerDisabled(benchmark::State &State) {
  telemetry::setEnabled(false);
  telemetry::Histogram &H = telemetry::metrics().histogram("bench.t_ns");
  for (auto _ : State) {
    telemetry::PhaseTimer T(H);
    benchmark::DoNotOptimize(&T);
  }
}
BENCHMARK(BM_PhaseTimerDisabled);

/// PhaseTimer when telemetry is on: two clock reads plus one histogram
/// record.
void BM_PhaseTimerEnabled(benchmark::State &State) {
  telemetry::setEnabled(true);
  telemetry::Histogram &H = telemetry::metrics().histogram("bench.t_ns");
  for (auto _ : State) {
    telemetry::PhaseTimer T(H);
    benchmark::DoNotOptimize(&T);
  }
  telemetry::setEnabled(false);
}
BENCHMARK(BM_PhaseTimerEnabled);

void BM_CounterInc(benchmark::State &State) {
  telemetry::Counter &C = telemetry::metrics().counter("bench.counter");
  for (auto _ : State)
    C.inc();
}
BENCHMARK(BM_CounterInc);

void BM_HistogramRecord(benchmark::State &State) {
  telemetry::Histogram &H = telemetry::metrics().histogram("bench.h");
  uint64_t Sample = 1;
  for (auto _ : State)
    H.record(Sample += 97);
}
BENCHMARK(BM_HistogramRecord);

void BM_GaugeRecordMax(benchmark::State &State) {
  telemetry::Gauge &G = telemetry::metrics().gauge("bench.gauge");
  int64_t V = 0;
  for (auto _ : State)
    G.recordMax(++V);
}
BENCHMARK(BM_GaugeRecordMax);

void BM_EventBuilderNoSink(benchmark::State &State) {
  telemetry::setEventSink(nullptr);
  for (auto _ : State)
    telemetry::EventBuilder("bench.event")
        .field("iter", uint64_t{42})
        .field("ok", true)
        .emit();
}
BENCHMARK(BM_EventBuilderNoSink);

CampaignConfig benchConfig() {
  CampaignConfig Config;
  Config.Algo = FuzzAlgorithm::ClassfuzzStBr;
  Config.Iterations = 120;
  Config.NumSeeds = 10;
  Config.RngSeed = 17;
  return Config;
}

/// Baseline: the campaign with telemetry disabled (the default).
void BM_CampaignTelemetryOff(benchmark::State &State) {
  telemetry::setEnabled(false);
  CampaignConfig Config = benchConfig();
  for (auto _ : State) {
    CampaignResult R = runCampaign(Config);
    benchmark::DoNotOptimize(R.numGenerated());
  }
}
BENCHMARK(BM_CampaignTelemetryOff)->Unit(benchmark::kMillisecond);

/// Same campaign with counters/timers live (no event sink). The
/// trajectory is bit-identical; only the wall clock may differ.
void BM_CampaignTelemetryOn(benchmark::State &State) {
  telemetry::setEnabled(true);
  CampaignConfig Config = benchConfig();
  for (auto _ : State) {
    CampaignResult R = runCampaign(Config);
    benchmark::DoNotOptimize(R.numGenerated());
  }
  telemetry::setEnabled(false);
}
BENCHMARK(BM_CampaignTelemetryOn)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
