//===- bench/bench_micro_jvm.cpp -------------------------------------------===//
//
// Microbenchmarks of the JVM substrate: format checking, verification,
// full startup with and without coverage collection (the latter gap is
// what makes randfuzz ~20x cheaper per class in Table 4), and the
// execution tiers of DESIGN.md §13 over an invoke-heavy workload.
//
// `--tier-gate` runs a standalone throughput check instead of the
// google-benchmark suite: the threaded interpreter must beat the legacy
// switch interpreter by >= 2x on the invoke-heavy workload (exit 1
// otherwise). The switch tier re-decodes every method per invocation;
// the gate keeps the predecoded tiers honest about earning their keep.
//
//===----------------------------------------------------------------------===//

#include "classfile/ClassReader.h"
#include "classfile/ClassWriter.h"
#include "classfile/CodeBuilder.h"
#include "classfile/Opcodes.h"
#include "jvm/Phase.h"
#include "jvm/FormatChecker.h"
#include "jvm/Verifier.h"
#include "jvm/Vm.h"
#include "runtime/RuntimeLib.h"
#include "runtime/SeedCorpus.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>

using namespace classfuzz;

namespace {

struct Fixture {
  Fixture() : Env(buildRuntimeLibrary("jre9")) {
    Rng R(5);
    auto Seeds = generateSeedCorpus(R, 3);
    Seed = Seeds[2]; // the loop seed
    Env.add(Seed.Name, Seed.Data);
    CF = parseClassFile(Seed.Data).take();
  }
  ClassPath Env;
  SeedClass Seed;
  ClassFile CF;
};

Fixture &fixture() {
  static Fixture F;
  return F;
}

void BM_FormatCheck(benchmark::State &State) {
  Fixture &F = fixture();
  JvmPolicy Policy = makeHotSpot9Policy();
  for (auto _ : State) {
    auto Out = checkClassFormat(F.CF, Policy, nullptr);
    benchmark::DoNotOptimize(Out.has_value());
  }
}
BENCHMARK(BM_FormatCheck);

void BM_VerifyMethod(benchmark::State &State) {
  Fixture &F = fixture();
  JvmPolicy Policy = makeHotSpot9Policy();
  const MethodInfo *Main = F.CF.findMethodByName("main");
  ClassLookupFn Lookup = [](const std::string &) { return nullptr; };
  for (auto _ : State) {
    auto Out = verifyMethod(F.CF, *Main, Policy, Lookup, nullptr);
    benchmark::DoNotOptimize(Out.has_value());
  }
}
BENCHMARK(BM_VerifyMethod);

void BM_FullStartupNoCoverage(benchmark::State &State) {
  Fixture &F = fixture();
  JvmPolicy Policy = makeHotSpot9Policy();
  for (auto _ : State) {
    Vm Jvm(Policy, F.Env);
    JvmResult R = Jvm.run(F.Seed.Name);
    benchmark::DoNotOptimize(R.Invoked);
  }
}
BENCHMARK(BM_FullStartupNoCoverage);

void BM_FullStartupWithCoverage(benchmark::State &State) {
  Fixture &F = fixture();
  JvmPolicy Policy = makeHotSpot9Policy();
  for (auto _ : State) {
    CoverageRecorder Recorder;
    Vm Jvm(Policy, F.Env, &Recorder);
    JvmResult R = Jvm.run(F.Seed.Name);
    benchmark::DoNotOptimize(Recorder.trace().stmtCount());
    benchmark::DoNotOptimize(R.Invoked);
  }
}
BENCHMARK(BM_FullStartupWithCoverage);

void BM_StartupAcrossProfiles(benchmark::State &State) {
  Fixture &F = fixture();
  auto Policies = allJvmPolicies();
  for (auto _ : State) {
    for (const JvmPolicy &P : Policies) {
      Vm Jvm(P, F.Env);
      JvmResult R = Jvm.run(F.Seed.Name);
      benchmark::DoNotOptimize(encodePhase(R));
    }
  }
}
BENCHMARK(BM_StartupAcrossProfiles);

// ---- execution tiers -----------------------------------------------------

/// Invoke-heavy workload: main calls a ~30-instruction static method
/// 3,000 times. The per-invoke decode of the switch tier pays for every
/// call; the predecoded tiers pay once. This is the shape fuzzed
/// classfiles actually have (many small methods, many invocations), so
/// it is the fair dispatch comparison.
Bytes makeInvokeHeavyClass() {
  ClassFile CF;
  CF.ThisClass = "TierBench";
  CF.SuperClass = "java/lang/Object";
  CF.AccessFlags = ACC_PUBLIC | ACC_SUPER;
  CF.MajorVersion = MajorVersionJava7;
  {
    MethodInfo M;
    M.Name = "step";
    M.Descriptor = "(I)I";
    M.AccessFlags = ACC_PUBLIC | ACC_STATIC;
    CodeBuilder B(CF.CP);
    B.loadLocal('i', 0);
    for (int I = 0; I != 9; ++I) {
      B.pushInt(3);
      B.emit(OP_imul);
      B.pushInt(1);
      B.emit(OP_iadd);
      B.pushInt(1000);
      B.emit(OP_irem);
    }
    B.emit(OP_ireturn);
    CodeAttr C;
    C.MaxStack = 3;
    C.MaxLocals = 1;
    C.Code = B.build();
    M.Code = std::move(C);
    CF.Methods.push_back(std::move(M));
  }
  {
    MethodInfo Main;
    Main.Name = "main";
    Main.Descriptor = "([Ljava/lang/String;)V";
    Main.AccessFlags = ACC_PUBLIC | ACC_STATIC;
    CodeBuilder B(CF.CP);
    B.pushInt(1);
    B.storeLocal('i', 1);
    B.pushInt(0);
    B.storeLocal('i', 2);
    auto Head = B.newLabel();
    auto Done = B.newLabel();
    B.bind(Head);
    B.loadLocal('i', 2);
    B.pushInt(3000);
    B.branch(OP_if_icmpge, Done);
    B.loadLocal('i', 1);
    B.invokeStatic("TierBench", "step", "(I)I");
    B.storeLocal('i', 1);
    B.iinc(2, 1);
    B.branch(OP_goto, Head);
    B.bind(Done);
    B.emit(OP_return);
    CodeAttr C;
    C.MaxStack = 2;
    C.MaxLocals = 3;
    C.Code = B.build();
    Main.Code = std::move(C);
    CF.Methods.push_back(std::move(Main));
  }
  return writeClassFile(CF).take();
}

struct TierFixture {
  TierFixture() {
    Policy = referenceJvmPolicy();
    Policy.MaxInterpSteps = 10'000'000;
    Policy.JitTelemetry = false;
    Env = runtimeLibraryFor(Policy);
    Env.add("TierBench", makeInvokeHeavyClass());
  }
  JvmPolicy Policy;
  ClassPath Env;
};

TierFixture &tierFixture() {
  static TierFixture F;
  return F;
}

void benchTier(benchmark::State &State, ExecTier Tier) {
  TierFixture &F = tierFixture();
  JvmPolicy P = F.Policy;
  P.Tier = Tier;
  for (auto _ : State) {
    Vm Jvm(P, F.Env);
    JvmResult R = Jvm.run("TierBench");
    benchmark::DoNotOptimize(R.Invoked);
  }
}

void BM_InvokeHeavySwitchTier(benchmark::State &State) {
  benchTier(State, ExecTier::Switch);
}
BENCHMARK(BM_InvokeHeavySwitchTier);

void BM_InvokeHeavyThreadedTier(benchmark::State &State) {
  benchTier(State, ExecTier::Threaded);
}
BENCHMARK(BM_InvokeHeavyThreadedTier);

void BM_InvokeHeavyBaselineTier(benchmark::State &State) {
  benchTier(State, ExecTier::Baseline);
}
BENCHMARK(BM_InvokeHeavyBaselineTier);

/// The --tier-gate mode: threaded must be >= 2x switch throughput.
int runTierGate() {
  TierFixture &F = tierFixture();
  constexpr int Runs = 20;
  double Seconds[3] = {};
  const ExecTier Tiers[] = {ExecTier::Switch, ExecTier::Threaded,
                            ExecTier::Baseline};
  for (size_t T = 0; T != 3; ++T) {
    JvmPolicy P = F.Policy;
    P.Tier = Tiers[T];
    {
      Vm Warm(P, F.Env);
      if (!Warm.run("TierBench").Invoked) {
        std::fprintf(stderr, "tier gate: %s tier failed to run the "
                             "workload\n",
                     execTierName(Tiers[T]));
        return 1;
      }
    }
    auto Start = std::chrono::steady_clock::now();
    for (int I = 0; I != Runs; ++I) {
      Vm Jvm(P, F.Env);
      JvmResult R = Jvm.run("TierBench");
      benchmark::DoNotOptimize(R.Invoked);
    }
    Seconds[T] = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - Start)
                     .count();
    std::printf("%-9s %8.2f ms/run\n", execTierName(Tiers[T]),
                Seconds[T] * 1000 / Runs);
  }
  const double RequiredSpeedup = 2.0;
  double ThreadedSpeedup = Seconds[0] / Seconds[1];
  double BaselineSpeedup = Seconds[0] / Seconds[2];
  std::printf("threaded  %.2fx over switch (gate: >= %.0fx)\n",
              ThreadedSpeedup, RequiredSpeedup);
  std::printf("baseline  %.2fx over switch (ungated)\n", BaselineSpeedup);
  if (ThreadedSpeedup < RequiredSpeedup) {
    std::fprintf(stderr,
                 "** tier gate FAILED: threaded %.2fx < %.0fx over the "
                 "switch interpreter **\n",
                 ThreadedSpeedup, RequiredSpeedup);
    return 1;
  }
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  for (int I = 1; I != argc; ++I)
    if (std::strcmp(argv[I], "--tier-gate") == 0)
      return runTierGate();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
