//===- bench/bench_micro_jvm.cpp -------------------------------------------===//
//
// Microbenchmarks of the JVM substrate: format checking, verification,
// full startup with and without coverage collection (the latter gap is
// what makes randfuzz ~20x cheaper per class in Table 4).
//
//===----------------------------------------------------------------------===//

#include "classfile/ClassReader.h"
#include "jvm/Phase.h"
#include "jvm/FormatChecker.h"
#include "jvm/Verifier.h"
#include "jvm/Vm.h"
#include "runtime/RuntimeLib.h"
#include "runtime/SeedCorpus.h"

#include <benchmark/benchmark.h>

using namespace classfuzz;

namespace {

struct Fixture {
  Fixture() : Env(buildRuntimeLibrary("jre9")) {
    Rng R(5);
    auto Seeds = generateSeedCorpus(R, 3);
    Seed = Seeds[2]; // the loop seed
    Env.add(Seed.Name, Seed.Data);
    CF = parseClassFile(Seed.Data).take();
  }
  ClassPath Env;
  SeedClass Seed;
  ClassFile CF;
};

Fixture &fixture() {
  static Fixture F;
  return F;
}

void BM_FormatCheck(benchmark::State &State) {
  Fixture &F = fixture();
  JvmPolicy Policy = makeHotSpot9Policy();
  for (auto _ : State) {
    auto Out = checkClassFormat(F.CF, Policy, nullptr);
    benchmark::DoNotOptimize(Out.has_value());
  }
}
BENCHMARK(BM_FormatCheck);

void BM_VerifyMethod(benchmark::State &State) {
  Fixture &F = fixture();
  JvmPolicy Policy = makeHotSpot9Policy();
  const MethodInfo *Main = F.CF.findMethodByName("main");
  ClassLookupFn Lookup = [](const std::string &) { return nullptr; };
  for (auto _ : State) {
    auto Out = verifyMethod(F.CF, *Main, Policy, Lookup, nullptr);
    benchmark::DoNotOptimize(Out.has_value());
  }
}
BENCHMARK(BM_VerifyMethod);

void BM_FullStartupNoCoverage(benchmark::State &State) {
  Fixture &F = fixture();
  JvmPolicy Policy = makeHotSpot9Policy();
  for (auto _ : State) {
    Vm Jvm(Policy, F.Env);
    JvmResult R = Jvm.run(F.Seed.Name);
    benchmark::DoNotOptimize(R.Invoked);
  }
}
BENCHMARK(BM_FullStartupNoCoverage);

void BM_FullStartupWithCoverage(benchmark::State &State) {
  Fixture &F = fixture();
  JvmPolicy Policy = makeHotSpot9Policy();
  for (auto _ : State) {
    CoverageRecorder Recorder;
    Vm Jvm(Policy, F.Env, &Recorder);
    JvmResult R = Jvm.run(F.Seed.Name);
    benchmark::DoNotOptimize(Recorder.trace().stmtCount());
    benchmark::DoNotOptimize(R.Invoked);
  }
}
BENCHMARK(BM_FullStartupWithCoverage);

void BM_StartupAcrossProfiles(benchmark::State &State) {
  Fixture &F = fixture();
  auto Policies = allJvmPolicies();
  for (auto _ : State) {
    for (const JvmPolicy &P : Policies) {
      Vm Jvm(P, F.Env);
      JvmResult R = Jvm.run(F.Seed.Name);
      benchmark::DoNotOptimize(encodePhase(R));
    }
  }
}
BENCHMARK(BM_StartupAcrossProfiles);

} // namespace

BENCHMARK_MAIN();
